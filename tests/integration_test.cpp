//===- tests/integration_test.cpp - End-to-end pipeline tests --------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Full-stack tests: PCL source -> IR -> simulator, accurate and perforated,
// against the native reference implementations.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;

namespace {

Workload smoothWorkload(unsigned Size = 64) {
  return makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, Size, Size, 42));
}

TEST(Integration, GaussianPlainMatchesReference) {
  auto App = makeApp("gaussian");
  ASSERT_TRUE(App);
  rt::Session Ctx;
  Workload W = smoothWorkload();
  rt::Variant BK = cantFail(App->buildPlain(Ctx, {16, 16}));
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  std::vector<float> Ref = App->reference(W);
  ASSERT_EQ(R.Output.size(), Ref.size());
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_NEAR(R.Output[I], Ref[I], 1e-5f) << "pixel " << I;
}

TEST(Integration, GaussianBaselineLocalPrefetchIsExact) {
  auto App = makeApp("gaussian");
  rt::Session Ctx;
  Workload W = smoothWorkload();
  rt::Variant BK = cantFail(App->buildBaseline(Ctx, {16, 16}));
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  std::vector<float> Ref = App->reference(W);
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_NEAR(R.Output[I], Ref[I], 1e-5f) << "pixel " << I;
}

TEST(Integration, GaussianRows1HasSmallError) {
  auto App = makeApp("gaussian");
  rt::Session Ctx;
  Workload W = smoothWorkload();
  rt::Variant BK = cantFail(App->buildPerforated(
      Ctx,
      perf::PerforationScheme::rows(2,
                                    perf::ReconstructionKind::NearestNeighbor),
      {16, 16}));
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  double Err = App->score(App->reference(W), R.Output);
  EXPECT_GT(Err, 0.0);
  EXPECT_LT(Err, 0.10) << "Rows1:NN error should be small on smooth input";
}

TEST(Integration, GaussianPerforationIsFasterThanBaseline) {
  auto App = makeApp("gaussian");
  rt::Session Ctx;
  Workload W = smoothWorkload(128);
  rt::Variant Base = cantFail(App->buildBaseline(Ctx, {16, 16}));
  rt::Variant Perf = cantFail(App->buildPerforated(
      Ctx,
      perf::PerforationScheme::rows(2,
                                    perf::ReconstructionKind::NearestNeighbor),
      {16, 16}));
  RunOutcome RB = cantFail(App->run(Ctx, Base, W));
  RunOutcome RP = cantFail(App->run(Ctx, Perf, W));
  EXPECT_LT(RP.Report.Cycles, RB.Report.Cycles);
  EXPECT_LT(RP.Report.Totals.GlobalReadTransactions,
            RB.Report.Totals.GlobalReadTransactions);
}

TEST(Integration, AllAppsPlainMatchReference) {
  for (const auto &App : makeAllApps()) {
    rt::Session Ctx;
    Workload W = App->name() == "hotspot"
                     ? makeHotspotWorkload(64, 7, /*Iterations=*/2)
                     : smoothWorkload();
    rt::Variant BK = cantFail(App->buildPlain(Ctx, {16, 16}));
    RunOutcome R = cantFail(App->run(Ctx, BK, W));
    std::vector<float> Ref = App->reference(W);
    ASSERT_EQ(R.Output.size(), Ref.size()) << App->name();
    double MaxAbs = 0;
    for (size_t I = 0; I < Ref.size(); ++I)
      MaxAbs = std::max(MaxAbs,
                        static_cast<double>(std::fabs(R.Output[I] - Ref[I])));
    EXPECT_LT(MaxAbs, 1e-3) << App->name();
  }
}

TEST(Integration, AllAppsRows1RunsAndErrorsAreModerate) {
  for (const auto &App : makeAllApps()) {
    rt::Session Ctx;
    Workload W = App->name() == "hotspot"
                     ? makeHotspotWorkload(64, 7, /*Iterations=*/2)
                     : smoothWorkload();
    rt::Variant BK = cantFail(App->buildPerforated(
        Ctx,
        perf::PerforationScheme::rows(
            2, perf::ReconstructionKind::NearestNeighbor),
        {16, 16}));
    RunOutcome R = cantFail(App->run(Ctx, BK, W));
    double Err = App->score(App->reference(W), R.Output);
    EXPECT_LT(Err, 0.30) << App->name();
  }
}

TEST(Integration, OutputApproxRowsRuns) {
  auto App = makeApp("gaussian");
  rt::Session Ctx;
  Workload W = smoothWorkload();
  rt::Variant BK = cantFail(App->buildOutputApprox(
      Ctx, perf::OutputSchemeKind::Rows, /*ApproxPerComputed=*/2, {16, 16}));
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  double Err = App->score(App->reference(W), R.Output);
  EXPECT_GT(Err, 0.0);
  EXPECT_LT(Err, 0.5);
}

} // namespace
