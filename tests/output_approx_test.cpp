//===- tests/output_approx_test.cpp - Paraprox transform tests --------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/Kernels.h"
#include "img/Generators.h"
#include "pcl/Compiler.h"
#include "perforation/OutputApprox.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::perf;

namespace {

Expected<RunOutcome> runApprox(const App &TheApp, const Workload &W,
                               OutputSchemeKind Kind, unsigned N) {
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      TheApp.buildOutputApprox(Ctx, Kind, N, {16, 16});
  if (!BK)
    return BK.takeError();
  return TheApp.run(Ctx, *BK, W);
}

TEST(OutputApproxTest, ConstantInputExact) {
  // Copying computed outputs to neighbors is exact when all outputs are
  // equal.
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(img::Image(48, 48, 0.3f));
  std::vector<float> Ref = TheApp->reference(W);
  for (OutputSchemeKind K : {OutputSchemeKind::Rows, OutputSchemeKind::Cols,
                             OutputSchemeKind::Center}) {
    RunOutcome R = cantFail(runApprox(*TheApp, W, K, 2));
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_NEAR(R.Output[I], Ref[I], 1e-6) << I;
  }
}

TEST(OutputApproxTest, EveryOutputWritten) {
  // run() zero-initializes the output buffer; with inputs bounded away
  // from 1.0, inversion can never legitimately produce 0, so a remaining
  // zero means an output element was never written.
  auto TheApp = makeApp("inversion");
  img::Image In(48, 48);
  for (unsigned Y = 0; Y < 48; ++Y)
    for (unsigned X = 0; X < 48; ++X)
      In.set(X, Y, 0.2f + 0.01f * static_cast<float>((X * 7 + Y) % 31));
  rt::Session Ctx;
  rt::Variant BK = cantFail(
      TheApp->buildOutputApprox(Ctx, OutputSchemeKind::Rows, 2, {16, 16}));
  RunOutcome R = cantFail(TheApp->run(Ctx, BK, makeImageWorkload(In)));
  for (size_t I = 0; I < R.Output.size(); ++I)
    ASSERT_NE(R.Output[I], 0.0f) << "unwritten output " << I;
}

TEST(OutputApproxTest, ComputedRowsExactRowsScheme) {
  // Period 3, offset 1: global rows 3k+1 are computed exactly.
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 48, 48, 8);
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R = cantFail(runApprox(*TheApp, W, OutputSchemeKind::Rows, 2));
  for (unsigned Y = 1; Y < 48; Y += 3)
    for (unsigned X = 0; X < 48; ++X)
      ASSERT_EQ(R.Output[Y * 48 + X], Ref[Y * 48 + X]) << Y << "," << X;
}

TEST(OutputApproxTest, NeighborsAreCopies) {
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 48, 48, 8);
  Workload W = makeImageWorkload(In);
  RunOutcome R = cantFail(runApprox(*TheApp, W, OutputSchemeKind::Rows, 2));
  // Rows 3k and 3k+2 are copies of row 3k+1 (interior rows).
  for (unsigned K = 0; K + 2 < 48 / 3; ++K) {
    unsigned Computed = 3 * K + 1;
    for (unsigned X = 0; X < 48; ++X) {
      ASSERT_EQ(R.Output[(Computed - 1) * 48 + X],
                R.Output[Computed * 48 + X]);
      ASSERT_EQ(R.Output[(Computed + 1) * 48 + X],
                R.Output[Computed * 48 + X]);
    }
  }
}

TEST(OutputApproxTest, ColsSchemeCopiesColumns) {
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 48, 48, 8);
  Workload W = makeImageWorkload(In);
  RunOutcome R = cantFail(runApprox(*TheApp, W, OutputSchemeKind::Cols, 2));
  for (unsigned Y = 0; Y < 48; ++Y)
    for (unsigned K = 0; K + 2 < 48 / 3; ++K) {
      unsigned C = 3 * K + 1;
      ASSERT_EQ(R.Output[Y * 48 + C - 1], R.Output[Y * 48 + C]);
      ASSERT_EQ(R.Output[Y * 48 + C + 1], R.Output[Y * 48 + C]);
    }
}

TEST(OutputApproxTest, CenterSchemeCopies8Neighbors) {
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 48, 48, 8);
  Workload W = makeImageWorkload(In);
  RunOutcome R =
      cantFail(runApprox(*TheApp, W, OutputSchemeKind::Center, 2));
  for (unsigned Ky = 0; Ky + 2 < 48 / 3; ++Ky)
    for (unsigned Kx = 0; Kx + 2 < 48 / 3; ++Kx) {
      unsigned Cy = 3 * Ky + 1, Cx = 3 * Kx + 1;
      float Center = R.Output[Cy * 48 + Cx];
      for (int Dy = -1; Dy <= 1; ++Dy)
        for (int Dx = -1; Dx <= 1; ++Dx)
          ASSERT_EQ(R.Output[(Cy + Dy) * 48 + (Cx + Dx)], Center);
    }
}

TEST(OutputApproxTest, Scheme2UsesPeriod5) {
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 80, 80, 8);
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R = cantFail(runApprox(*TheApp, W, OutputSchemeKind::Rows, 4));
  // Computed rows are 5k+2.
  for (unsigned Y = 2; Y < 80; Y += 5)
    for (unsigned X = 0; X < 80; ++X)
      ASSERT_EQ(R.Output[Y * 80 + X], Ref[Y * 80 + X]);
}

TEST(OutputApproxTest, NonDivisibleSizeStillCoversImage) {
  // 52 is not divisible by 3; padding work items recompute clamped rows.
  auto TheApp = makeApp("inversion");
  img::Image In(52, 52, 0.0f);
  for (unsigned Y = 0; Y < 52; ++Y)
    for (unsigned X = 0; X < 52; ++X)
      In.set(X, Y, 0.2f + 0.01f * static_cast<float>((X + Y) % 13));
  rt::Session Ctx;
  // Local 4x4 keeps the padded launch small.
  rt::Variant BK = cantFail(
      TheApp->buildOutputApprox(Ctx, OutputSchemeKind::Rows, 2, {4, 4}));
  RunOutcome R = cantFail(TheApp->run(Ctx, BK, makeImageWorkload(In)));
  for (size_t I = 0; I < R.Output.size(); ++I)
    ASSERT_NE(R.Output[I], 0.0f) << I;
}

TEST(OutputApproxTest, ReducedNDRangeReducesWork) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, 96, 96, 2));
  rt::Session C1, C2;
  RunOutcome Plain = cantFail(TheApp->run(
      C1, cantFail(TheApp->buildPlain(C1, {16, 16})), W));
  rt::Variant BK = cantFail(
      TheApp->buildOutputApprox(C2, OutputSchemeKind::Rows, 2, {16, 16}));
  RunOutcome R = cantFail(TheApp->run(C2, BK, W));
  EXPECT_LT(R.Report.Totals.WorkItems, Plain.Report.Totals.WorkItems);
  // Stores do not shrink: every output is still written (with copies).
  EXPECT_GE(R.Report.Totals.GlobalWrites,
            Plain.Report.Totals.GlobalWrites);
}

TEST(OutputApproxTest, OddApproxCountRejected) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, inversionSource(), "inversion");
  OutputApproxPlan Plan;
  Plan.ApproxPerComputed = 3;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;
  Expected<OutputApproxResult> R =
      applyOutputApproximation(M, **F, Plan, "inv.oa");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("even"), std::string::npos);
}

TEST(OutputApproxTest, BadArgIndexRejected) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, inversionSource(), "inversion");
  OutputApproxPlan Plan;
  Plan.WidthArgIndex = 9;
  Plan.HeightArgIndex = 3;
  Expected<OutputApproxResult> R =
      applyOutputApproximation(M, **F, Plan, "inv.oa");
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST(OutputApproxTest, NonIntSizeArgRejected) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, inversionSource(), "inversion");
  OutputApproxPlan Plan;
  Plan.WidthArgIndex = 0; // The input pointer, not an int.
  Plan.HeightArgIndex = 3;
  Expected<OutputApproxResult> R =
      applyOutputApproximation(M, **F, Plan, "inv.oa");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("must be int"), std::string::npos);
}

TEST(OutputApproxTest, KernelWithoutStoresRejected) {
  ir::Module M;
  Expected<ir::Function *> F = pcl::compileKernel(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) { int x = get_global_id(0); }",
      "f");
  OutputApproxPlan Plan;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;
  Expected<OutputApproxResult> R =
      applyOutputApproximation(M, **F, Plan, "f.oa");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("no matched output"),
            std::string::npos);
}

TEST(OutputApproxTest, DivisorsMatchScheme) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, inversionSource(), "inversion");
  OutputApproxPlan Plan;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;

  Plan.Kind = OutputSchemeKind::Rows;
  Expected<OutputApproxResult> Rows =
      applyOutputApproximation(M, **F, Plan, "r");
  ASSERT_TRUE(static_cast<bool>(Rows));
  EXPECT_EQ(Rows->DivX, 1u);
  EXPECT_EQ(Rows->DivY, 3u);

  Plan.Kind = OutputSchemeKind::Cols;
  Expected<OutputApproxResult> Cols =
      applyOutputApproximation(M, **F, Plan, "c");
  ASSERT_TRUE(static_cast<bool>(Cols));
  EXPECT_EQ(Cols->DivX, 3u);
  EXPECT_EQ(Cols->DivY, 1u);

  Plan.Kind = OutputSchemeKind::Center;
  Plan.ApproxPerComputed = 4;
  Expected<OutputApproxResult> Center =
      applyOutputApproximation(M, **F, Plan, "z");
  ASSERT_TRUE(static_cast<bool>(Center));
  EXPECT_EQ(Center->DivX, 5u);
  EXPECT_EQ(Center->DivY, 5u);
}

} // namespace
