//===- tests/img_test.cpp - image substrate tests ---------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "img/Generators.h"
#include "img/Metrics.h"
#include "img/PGM.h"

#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::img;

namespace {

//===----------------------------------------------------------------------===//
// Image container
//===----------------------------------------------------------------------===//

TEST(ImageTest, Geometry) {
  Image I(10, 6, 0.5f);
  EXPECT_EQ(I.width(), 10u);
  EXPECT_EQ(I.height(), 6u);
  EXPECT_EQ(I.size(), 60u);
  EXPECT_FLOAT_EQ(I.at(9, 5), 0.5f);
}

TEST(ImageTest, SetGetRowMajor) {
  Image I(4, 4);
  I.set(1, 2, 0.7f);
  EXPECT_FLOAT_EQ(I.pixels()[2 * 4 + 1], 0.7f);
}

TEST(ImageTest, ClampedSampling) {
  Image I(3, 3);
  I.set(0, 0, 1.0f);
  I.set(2, 2, 2.0f);
  EXPECT_FLOAT_EQ(I.atClamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(I.atClamped(10, 10), 2.0f);
  EXPECT_FLOAT_EQ(I.atClamped(1, 1), 0.0f);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, MreZeroForIdentical) {
  std::vector<float> V = {0.5f, 0.7f, 0.2f};
  EXPECT_DOUBLE_EQ(meanRelativeError(V, V), 0.0);
}

TEST(MetricsTest, MreKnownValue) {
  // |0.5-0.6|/0.5 = 0.2 on one sample.
  EXPECT_NEAR(meanRelativeError({0.5f}, {0.6f}), 0.2, 1e-6);
}

TEST(MetricsTest, MreSkipsNearZeroTruth) {
  // The first sample's truth is below eps and must be skipped.
  EXPECT_NEAR(meanRelativeError({0.0f, 0.5f}, {9.0f, 0.5f}), 0.0, 1e-12);
}

TEST(MetricsTest, MreCapsOutliers) {
  // Relative error 10 on one sample is capped to 1.
  EXPECT_NEAR(meanRelativeError({0.1f}, {1.1f}), 1.0, 1e-6);
}

TEST(MetricsTest, MreEmptyIsZero) {
  EXPECT_DOUBLE_EQ(meanRelativeError({}, {}), 0.0);
}

TEST(MetricsTest, MeanErrorKnown) {
  EXPECT_NEAR(meanError({0.0f, 1.0f}, {0.5f, 0.5f}), 0.5, 1e-6);
}

TEST(MetricsTest, MeanErrorZeroSafe) {
  // Mean error is well-defined where MRE is not (paper's Sobel argument).
  EXPECT_NEAR(meanError({0.0f}, {0.25f}), 0.25, 1e-6);
}

TEST(MetricsTest, PsnrInfiniteForIdentical) {
  std::vector<float> V = {0.1f, 0.9f};
  EXPECT_TRUE(std::isinf(psnr(V, V)));
}

TEST(MetricsTest, PsnrKnownValue) {
  // MSE = 0.01 => PSNR = 10*log10(1/0.01) = 20 dB (float rounding).
  EXPECT_NEAR(psnr({0.5f}, {0.6f}), 20.0, 1e-4);
}

TEST(MetricsTest, PsnrDecreasesWithError) {
  std::vector<float> T = {0.5f, 0.5f, 0.5f};
  EXPECT_GT(psnr(T, {0.51f, 0.5f, 0.5f}), psnr(T, {0.6f, 0.5f, 0.5f}));
}

//===----------------------------------------------------------------------===//
// Generators
//===----------------------------------------------------------------------===//

TEST(GeneratorTest, Deterministic) {
  Image A = generateImage(ImageClass::Natural, 64, 64, 42);
  Image B = generateImage(ImageClass::Natural, 64, 64, 42);
  EXPECT_EQ(A.pixels(), B.pixels());
}

TEST(GeneratorTest, SeedsDiffer) {
  Image A = generateImage(ImageClass::Natural, 64, 64, 1);
  Image B = generateImage(ImageClass::Natural, 64, 64, 2);
  EXPECT_NE(A.pixels(), B.pixels());
}

TEST(GeneratorTest, PixelsInRange) {
  for (ImageClass C : {ImageClass::Flat, ImageClass::Smooth,
                       ImageClass::Natural, ImageClass::Pattern,
                       ImageClass::Noise}) {
    Image I = generateImage(C, 32, 32, 3);
    for (float P : I.pixels()) {
      EXPECT_GE(P, 0.0f) << imageClassName(C);
      EXPECT_LE(P, 1.0f) << imageClassName(C);
    }
  }
}

/// Mean absolute row-to-row difference: a proxy for vertical frequency,
/// which is exactly what row perforation is sensitive to.
double rowRoughness(const Image &I) {
  double Sum = 0;
  for (unsigned Y = 0; Y + 1 < I.height(); ++Y)
    for (unsigned X = 0; X < I.width(); ++X)
      Sum += std::fabs(I.at(X, Y + 1) - I.at(X, Y));
  return Sum / (I.width() * (I.height() - 1));
}

TEST(GeneratorTest, ClassesOrderedByRoughness) {
  double Flat = rowRoughness(generateImage(ImageClass::Flat, 64, 64, 5));
  double Smooth =
      rowRoughness(generateImage(ImageClass::Smooth, 64, 64, 5));
  double Pattern =
      rowRoughness(generateImage(ImageClass::Pattern, 64, 64, 5));
  double Noise = rowRoughness(generateImage(ImageClass::Noise, 64, 64, 5));
  EXPECT_LT(Flat, Smooth);
  EXPECT_LT(Smooth, Pattern);
  EXPECT_LT(Pattern, Noise * 2); // Pattern and noise are both rough.
}

TEST(GeneratorTest, DatasetSizeAndDeterminism) {
  auto A = generateDataset(10, 32, 32, 7);
  auto B = generateDataset(10, 32, 32, 7);
  ASSERT_EQ(A.size(), 10u);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].pixels(), B[I].pixels()) << I;
}

TEST(GeneratorTest, DatasetClassCycleCovered) {
  bool Seen[5] = {false, false, false, false, false};
  for (unsigned I = 0; I < 20; ++I)
    Seen[static_cast<unsigned>(datasetClassAt(I))] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(GeneratorTest, ClassNames) {
  EXPECT_STREQ(imageClassName(ImageClass::Flat), "flat");
  EXPECT_STREQ(imageClassName(ImageClass::Pattern), "pattern");
}

//===----------------------------------------------------------------------===//
// PGM I/O
//===----------------------------------------------------------------------===//

TEST(PgmTest, RoundTrip) {
  Image I = generateImage(ImageClass::Natural, 24, 16, 3);
  std::string Path = ::testing::TempDir() + "kperf_roundtrip.pgm";
  ASSERT_FALSE(writePGM(I, Path));
  Expected<Image> Back = readPGM(Path);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->width(), 24u);
  EXPECT_EQ(Back->height(), 16u);
  // Quantization to 8 bits: within 1/255 everywhere.
  for (unsigned Y = 0; Y < 16; ++Y)
    for (unsigned X = 0; X < 24; ++X)
      EXPECT_NEAR(Back->at(X, Y), I.at(X, Y), 1.0 / 255.0 + 1e-6);
  std::remove(Path.c_str());
}

TEST(PgmTest, CommentsAndWhitespaceInHeader) {
  std::string Path = ::testing::TempDir() + "kperf_comment.pgm";
  {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_TRUE(F);
    std::fputs("P5\n# a comment\n2 # inline\n2\n255\n", F);
    unsigned char Data[4] = {0, 85, 170, 255};
    std::fwrite(Data, 1, 4, F);
    std::fclose(F);
  }
  Expected<Image> I = readPGM(Path);
  ASSERT_TRUE(static_cast<bool>(I)) << I.error().message();
  EXPECT_NEAR(I->at(1, 1), 1.0f, 1e-6);
  EXPECT_NEAR(I->at(1, 0), 85.0f / 255.0f, 1e-6);
  std::remove(Path.c_str());
}

TEST(PgmTest, RejectsNonPgm) {
  std::string Path = ::testing::TempDir() + "kperf_bad.pgm";
  {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    std::fputs("P6\n2 2\n255\n", F);
    std::fclose(F);
  }
  Expected<Image> I = readPGM(Path);
  ASSERT_FALSE(static_cast<bool>(I));
  EXPECT_NE(I.error().message().find("P5"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(PgmTest, RejectsTruncatedData) {
  std::string Path = ::testing::TempDir() + "kperf_trunc.pgm";
  {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    std::fputs("P5\n4 4\n255\nxx", F); // 2 bytes instead of 16.
    std::fclose(F);
  }
  Expected<Image> I = readPGM(Path);
  ASSERT_FALSE(static_cast<bool>(I));
  EXPECT_NE(I.error().message().find("truncated"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(PgmTest, MissingFile) {
  Expected<Image> I = readPGM("/nonexistent/definitely/missing.pgm");
  ASSERT_FALSE(static_cast<bool>(I));
  EXPECT_NE(I.error().message().find("cannot open"), std::string::npos);
}

TEST(PgmTest, WriteClampsOutOfRange) {
  Image I(2, 1);
  I.set(0, 0, -0.5f);
  I.set(1, 0, 1.5f);
  std::string Path = ::testing::TempDir() + "kperf_clamp.pgm";
  ASSERT_FALSE(writePGM(I, Path));
  Expected<Image> Back = readPGM(Path);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_FLOAT_EQ(Back->at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Back->at(1, 0), 1.0f);
  std::remove(Path.c_str());
}

} // namespace
