//===- tests/grid_test.cpp - Grid perforation scheme tests ------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The Grid scheme (extension beyond the paper) loads only points whose
// global row AND column are divisible by the period, then reconstructs
// in two passes. Key properties mirror the Rows scheme's, plus the
// bilinear composition.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::perf;

namespace {

Expected<RunOutcome> runGrid(const App &TheApp, const Workload &W,
                             unsigned Period, ReconstructionKind R) {
  rt::Session Ctx;
  Expected<rt::Variant> BK = TheApp.buildPerforated(
      Ctx, PerforationScheme::grid(Period, R), {16, 16});
  if (!BK)
    return BK.takeError();
  return TheApp.run(Ctx, *BK, W);
}

TEST(GridTest, SchemeDescriptor) {
  PerforationScheme S =
      PerforationScheme::grid(2, ReconstructionKind::Linear);
  EXPECT_EQ(S.str(), "Grid2:LI");
  EXPECT_DOUBLE_EQ(S.loadedFraction(18, 18, 1, 1), 0.25);
  auto Mask = schemeMask(S, 6, 6, 1, 1, -1, -1);
  for (unsigned R = 0; R < 6; ++R)
    for (unsigned C = 0; C < 6; ++C) {
      bool Loaded = ((static_cast<int>(R) - 1) % 2 + 2) % 2 == 0 &&
                    ((static_cast<int>(C) - 1) % 2 + 2) % 2 == 0;
      EXPECT_EQ(Mask[R][C] == '#', Loaded) << R << "," << C;
    }
}

TEST(GridTest, ConstantInputExact) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(img::Image(64, 64, 0.55f));
  std::vector<float> Ref = TheApp->reference(W);
  for (ReconstructionKind R : {ReconstructionKind::NearestNeighbor,
                               ReconstructionKind::Linear}) {
    RunOutcome Out = cantFail(runGrid(*TheApp, W, 2, R));
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_NEAR(Out.Output[I], Ref[I], 1e-6) << I;
  }
}

TEST(GridTest, LoadedPointsExactForInversion) {
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 64, 64, 3);
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R = cantFail(
      runGrid(*TheApp, W, 2, ReconstructionKind::NearestNeighbor));
  for (unsigned Y = 0; Y < 64; Y += 2)
    for (unsigned X = 0; X < 64; X += 2)
      ASSERT_EQ(R.Output[Y * 64 + X], Ref[Y * 64 + X]) << X << "," << Y;
}

TEST(GridTest, ReadsFewerTransactionsThanRows) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, 128, 128, 4));
  rt::Session C1, C2;
  rt::Variant Rows = cantFail(TheApp->buildPerforated(
      C1, PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
      {16, 16}));
  rt::Variant Grid = cantFail(TheApp->buildPerforated(
      C2, PerforationScheme::grid(2, ReconstructionKind::NearestNeighbor),
      {16, 16}));
  uint64_t RowsReads = cantFail(TheApp->run(C1, Rows, W))
                           .Report.Totals.GlobalReads;
  uint64_t GridReads = cantFail(TheApp->run(C2, Grid, W))
                           .Report.Totals.GlobalReads;
  // Grid loads ~1/4 of the elements vs Rows' 1/2.
  EXPECT_LT(GridReads, RowsReads * 3 / 4);
}

TEST(GridTest, MoreAggressiveMeansMoreError) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 21));
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome Rows = cantFail([&] {
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPerforated(
        Ctx,
        PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
        {16, 16}));
    return TheApp->run(Ctx, BK, W);
  }());
  RunOutcome Grid = cantFail(
      runGrid(*TheApp, W, 2, ReconstructionKind::NearestNeighbor));
  EXPECT_GE(TheApp->score(Ref, Grid.Output),
            TheApp->score(Ref, Rows.Output));
  // But still sane on natural content.
  EXPECT_LT(TheApp->score(Ref, Grid.Output), 0.35);
}

TEST(GridTest, LinearBeatsNearestOnSmoothContent) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, 64, 64, 33));
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome NN = cantFail(
      runGrid(*TheApp, W, 2, ReconstructionKind::NearestNeighbor));
  RunOutcome LI =
      cantFail(runGrid(*TheApp, W, 2, ReconstructionKind::Linear));
  EXPECT_LT(TheApp->score(Ref, LI.Output), TheApp->score(Ref, NN.Output));
}

TEST(GridTest, BilinearExactOnPlaneInteriorForInversion) {
  // f(x,y) = ax + by + c is reproduced exactly by the two-pass linear
  // reconstruction wherever both passes interpolate (i.e. away from
  // tile-edge fallback lines).
  const unsigned Size = 64;
  img::Image In(Size, Size);
  for (unsigned Y = 0; Y < Size; ++Y)
    for (unsigned X = 0; X < Size; ++X)
      In.set(X, Y, 0.001f * X + 0.002f * Y + 0.1f);
  auto TheApp = makeApp("inversion");
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R =
      cantFail(runGrid(*TheApp, W, 2, ReconstructionKind::Linear));
  for (unsigned Y = 0; Y < Size; ++Y) {
    for (unsigned X = 0; X < Size; ++X) {
      if (X % 16 == 15 || Y % 16 == 15)
        continue; // Tile-edge NN fallback lines.
      ASSERT_NEAR(R.Output[Y * Size + X], Ref[Y * Size + X], 1e-5)
          << X << "," << Y;
    }
  }
}

TEST(GridTest, WorksOnAllApps) {
  for (const auto &TheApp : makeAllApps()) {
    Workload W = TheApp->name() == "hotspot"
                     ? makeHotspotWorkload(64, 13, 2)
                     : makeImageWorkload(img::generateImage(
                           img::ImageClass::Natural, 64, 64, 13));
    Expected<RunOutcome> R = runGrid(
        *TheApp, W, 2, ReconstructionKind::NearestNeighbor);
    ASSERT_TRUE(static_cast<bool>(R)) << TheApp->name();
    double Err = TheApp->score(TheApp->reference(W), R->Output);
    EXPECT_LT(Err, 0.4) << TheApp->name();
  }
}

TEST(GridTest, PeriodOneRejected) {
  rt::Session Ctx;
  auto TheApp = makeApp("gaussian");
  PerforationScheme S;
  S.Kind = SchemeKind::Grid;
  S.Period = 1;
  Expected<rt::Variant> BK = TheApp->buildPerforated(Ctx, S, {16, 16});
  EXPECT_FALSE(static_cast<bool>(BK));
}

} // namespace
