//===- tests/simplify_test.cpp - IR simplification pass tests ---------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/DCE.h"
#include "ir/IRBuilder.h"
#include "ir/Simplify.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Fixture providing a function with one global float* argument "buf" and
/// an entry block ready for instructions; finish() appends the ret and
/// verifies.
class SimplifyTest : public ::testing::Test {
protected:
  SimplifyTest() : B(M) {
    F = M.createFunction("f");
    Buf = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "buf",
        false);
    IBuf = F->addArgument(
        Type::pointerTo(ScalarKind::Int, AddressSpace::Global), "ibuf",
        false);
    W = F->addArgument(Type::intTy(), "w", false);
    Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
  }

  /// Stores \p V to buf[0] / ibuf[0] so it stays alive, rets, simplifies.
  unsigned finishWith(Value *V) {
    Value *Ptr = V->type().isFloat() ? static_cast<Value *>(Buf) : IBuf;
    B.createStore(V, B.createGep(Ptr, M.getInt(0)));
    B.createRet();
    unsigned N = simplifyFunction(*F, M);
    EXPECT_FALSE(verifyFunction(*F));
    return N;
  }

  /// Returns the value stored by the (single) store instruction.
  Value *storedValue() {
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions())
        if (I->opcode() == Opcode::Store)
          return I->operand(0);
    return nullptr;
  }

  Module M;
  Function *F = nullptr;
  Argument *Buf = nullptr;
  Argument *IBuf = nullptr;
  Argument *W = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B;
};

TEST_F(SimplifyTest, FoldsIntArithmetic) {
  Value *V = B.createMul(B.createAdd(M.getInt(2), M.getInt(3)),
                         M.getInt(4));
  EXPECT_GE(finishWith(V), 2u);
  auto *C = dyn_cast<ConstantInt>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_EQ(C->value(), 20);
}

TEST_F(SimplifyTest, FoldsFloatArithmetic) {
  Value *V = B.createDiv(B.createSub(M.getFloat(3.0f), M.getFloat(1.0f)),
                         M.getFloat(4.0f));
  finishWith(V);
  auto *C = dyn_cast<ConstantFloat>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_FLOAT_EQ(C->value(), 0.5f);
}

TEST_F(SimplifyTest, AddZeroIdentity) {
  Value *V = B.createAdd(W, M.getInt(0));
  finishWith(V);
  EXPECT_EQ(storedValue(), W);
}

TEST_F(SimplifyTest, MulOneAndZero) {
  Value *One = B.createMul(W, M.getInt(1));
  Value *Zero = B.createMul(W, M.getInt(0));
  Value *Sum = B.createAdd(One, Zero); // w*1 + w*0 -> w + 0 -> w.
  finishWith(Sum);
  EXPECT_EQ(storedValue(), W);
}

TEST_F(SimplifyTest, SubSelfIsZero) {
  Value *V = B.createSub(W, W);
  finishWith(V);
  auto *C = dyn_cast<ConstantInt>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_EQ(C->value(), 0);
}

TEST_F(SimplifyTest, DivRemByOne) {
  Value *V = B.createAdd(B.createDiv(W, M.getInt(1)),
                         B.createRem(W, M.getInt(1)));
  finishWith(V); // w/1 + w%1 -> w + 0 -> w.
  EXPECT_EQ(storedValue(), W);
}

TEST_F(SimplifyTest, DivByZeroNotFolded) {
  Value *V = B.createDiv(M.getInt(5), M.getInt(0));
  finishWith(V);
  EXPECT_TRUE(isa<Instruction>(storedValue())); // Left for runtime fault.
}

TEST_F(SimplifyTest, FoldsComparisons) {
  Value *V = B.createSelect(
      B.createCmp(Opcode::CmpLt, M.getInt(2), M.getInt(5)),
      M.getFloat(1.0f), M.getFloat(2.0f));
  finishWith(V);
  auto *C = dyn_cast<ConstantFloat>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_FLOAT_EQ(C->value(), 1.0f);
}

TEST_F(SimplifyTest, LogicalShortcuts) {
  Value *Dyn = B.createCmp(Opcode::CmpGt, W, M.getInt(0));
  // (dyn && true) || false -> dyn.
  Value *V = B.createLogical(
      Opcode::LogicalOr,
      B.createLogical(Opcode::LogicalAnd, Dyn, M.getBool(true)),
      M.getBool(false));
  Value *Sel = B.createSelect(V, M.getInt(1), M.getInt(0));
  finishWith(Sel);
  const auto *SelI = dyn_cast<Instruction>(storedValue());
  ASSERT_TRUE(SelI);
  EXPECT_EQ(SelI->operand(0), Dyn);
}

TEST_F(SimplifyTest, DoubleNotAndNeg) {
  Value *Dyn = B.createCmp(Opcode::CmpGt, W, M.getInt(0));
  Value *NotNot = B.createNot(B.createNot(Dyn));
  Value *Sel = B.createSelect(NotNot, M.getInt(1), M.getInt(0));
  finishWith(Sel);
  EXPECT_EQ(dyn_cast<Instruction>(storedValue())->operand(0), Dyn);
}

TEST_F(SimplifyTest, SelectSameArms) {
  Value *Dyn = B.createCmp(Opcode::CmpGt, W, M.getInt(0));
  Value *V = B.createSelect(Dyn, W, W);
  finishWith(V);
  EXPECT_EQ(storedValue(), W);
}

TEST_F(SimplifyTest, FoldsMathBuiltins) {
  Value *V = B.createAdd(
      B.createCall(Builtin::Min, {M.getFloat(2.0f), M.getFloat(7.0f)}),
      B.createCall(Builtin::Sqrt, {M.getFloat(9.0f)}));
  finishWith(V);
  auto *C = dyn_cast<ConstantFloat>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_FLOAT_EQ(C->value(), 5.0f);
}

TEST_F(SimplifyTest, FoldsClampInt) {
  Value *V = B.createClampInt(M.getInt(12), M.getInt(0), M.getInt(9));
  finishWith(V);
  auto *C = dyn_cast<ConstantInt>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_EQ(C->value(), 9);
}

TEST_F(SimplifyTest, FoldsCasts) {
  Value *V = B.createIntToFloat(M.getInt(3));
  finishWith(V);
  auto *C = dyn_cast<ConstantFloat>(storedValue());
  ASSERT_TRUE(C);
  EXPECT_FLOAT_EQ(C->value(), 3.0f);
}

TEST_F(SimplifyTest, CondBrOnConstantBecomesBr) {
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  B.createCondBr(M.getBool(true), Then, Else);
  B.setInsertPoint(Then);
  B.createRet();
  B.setInsertPoint(Else);
  B.createRet();
  EXPECT_GE(simplifyFunction(*F, M), 0u);
  Instruction *T = Entry->terminator();
  ASSERT_TRUE(T);
  EXPECT_EQ(T->opcode(), Opcode::Br);
  EXPECT_EQ(T->branchTarget(0), Then);
  EXPECT_FALSE(verifyFunction(*F));
}

TEST_F(SimplifyTest, PairsWithDCEToShrinkFunction) {
  Value *V = B.createMul(B.createAdd(M.getInt(1), M.getInt(2)),
                         B.createSub(M.getInt(9), M.getInt(3)));
  finishWith(V); // (1+2)*(9-3) = 18: three instructions fold away.
  unsigned Deleted = eliminateDeadCode(*F);
  EXPECT_EQ(Deleted, 3u);
  EXPECT_EQ(Entry->size(), 3u); // gep + store + ret.
}

TEST_F(SimplifyTest, FloatIdentitiesNotApplied) {
  // x + 0.0f must NOT fold (x could be -0.0 or NaN).
  Value *X = B.createLoad(B.createGep(Buf, M.getInt(1)));
  Value *V = B.createAdd(X, M.getFloat(0.0f));
  finishWith(V);
  EXPECT_EQ(storedValue(), V);
}

TEST_F(SimplifyTest, IdempotentAtFixpoint) {
  Value *V = B.createMul(B.createAdd(W, M.getInt(0)), M.getInt(1));
  finishWith(V);
  EXPECT_EQ(simplifyFunction(*F, M), 0u); // Second run: nothing to do.
}

} // namespace
