//===- tests/pareto_tuner_test.cpp - Pareto front + autotuner tests ---------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/Pareto.h"
#include "perforation/Scheme.h"
#include "perforation/Tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace kperf;
using namespace kperf::perf;

namespace {

TradeoffPoint pt(const char *L, double S, double E) { return {L, S, E}; }

//===----------------------------------------------------------------------===//
// Dominance and fronts
//===----------------------------------------------------------------------===//

TEST(ParetoTest, DominanceBasics) {
  EXPECT_TRUE(dominates(pt("a", 2.0, 0.01), pt("b", 1.5, 0.05)));
  EXPECT_FALSE(dominates(pt("b", 1.5, 0.05), pt("a", 2.0, 0.01)));
  // Equal points do not dominate each other.
  EXPECT_FALSE(dominates(pt("a", 1.0, 0.1), pt("b", 1.0, 0.1)));
  // One dimension equal, other better: dominates.
  EXPECT_TRUE(dominates(pt("a", 2.0, 0.1), pt("b", 1.0, 0.1)));
  EXPECT_TRUE(dominates(pt("a", 1.0, 0.05), pt("b", 1.0, 0.1)));
  // Trade-off: neither dominates.
  EXPECT_FALSE(dominates(pt("a", 2.0, 0.2), pt("b", 1.0, 0.1)));
  EXPECT_FALSE(dominates(pt("b", 1.0, 0.1), pt("a", 2.0, 0.2)));
}

TEST(ParetoTest, FrontOfEmptyIsEmpty) {
  EXPECT_TRUE(paretoFront({}).empty());
}

TEST(ParetoTest, SinglePointIsFront) {
  auto F = paretoFront({pt("a", 1.0, 0.1)});
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], 0u);
}

TEST(ParetoTest, DominatedPointsExcluded) {
  std::vector<TradeoffPoint> P = {
      pt("fast-bad", 3.0, 0.3), pt("slow-good", 1.2, 0.01),
      pt("dominated", 1.1, 0.2),  // Worse than slow-good in both.
      pt("balanced", 2.0, 0.05)};
  auto F = paretoFront(P);
  ASSERT_EQ(F.size(), 3u);
  // Sorted by ascending speedup: slow-good, balanced, fast-bad.
  EXPECT_EQ(P[F[0]].Label, "slow-good");
  EXPECT_EQ(P[F[1]].Label, "balanced");
  EXPECT_EQ(P[F[2]].Label, "fast-bad");
}

TEST(ParetoTest, AllIncomparableKept) {
  std::vector<TradeoffPoint> P = {pt("a", 1.0, 0.01), pt("b", 2.0, 0.02),
                                  pt("c", 3.0, 0.03)};
  EXPECT_EQ(paretoFront(P).size(), 3u);
}

TEST(ParetoTest, DuplicatesAllKept) {
  std::vector<TradeoffPoint> P = {pt("a", 1.0, 0.1), pt("b", 1.0, 0.1)};
  EXPECT_EQ(paretoFront(P).size(), 2u);
}

/// Property: no front member dominates another front member.
TEST(ParetoTest, FrontIsMutuallyNonDominating) {
  std::vector<TradeoffPoint> P;
  for (int I = 0; I < 40; ++I)
    P.push_back(pt("x", 1.0 + (I * 7 % 13) * 0.1, (I * 5 % 11) * 0.01));
  auto F = paretoFront(P);
  for (size_t A : F)
    for (size_t B : F)
      EXPECT_FALSE(A != B && dominates(P[A], P[B]));
}

/// Property: every non-front point is dominated by some front point.
TEST(ParetoTest, NonFrontPointsAreDominated) {
  std::vector<TradeoffPoint> P;
  for (int I = 0; I < 40; ++I)
    P.push_back(pt("x", 1.0 + (I * 3 % 17) * 0.1, (I * 7 % 19) * 0.01));
  auto F = paretoFront(P);
  std::vector<bool> InFront(P.size(), false);
  for (size_t I : F)
    InFront[I] = true;
  for (size_t I = 0; I < P.size(); ++I) {
    if (InFront[I])
      continue;
    bool Dominated = false;
    for (size_t J : F)
      if (dominates(P[J], P[I]))
        Dominated = true;
    EXPECT_TRUE(Dominated) << I;
  }
}

//===----------------------------------------------------------------------===//
// Tuner
//===----------------------------------------------------------------------===//

TEST(TunerTest, DefaultSpaceShape) {
  auto Space = defaultTuningSpace();
  // 7 schemes (baseline, Rows2/4 x NN/LI, Stencil1, Grid2) x 10 shapes
  // x 2 loop-perforation strides.
  EXPECT_EQ(Space.size(), 140u);
  EXPECT_EQ(figure9WorkGroupShapes().size(), 10u);
}

TEST(TunerTest, ConfigLabels) {
  TunerConfig C;
  C.Scheme = PerforationScheme::rows(2, ReconstructionKind::Linear);
  C.TileX = 8;
  C.TileY = 32;
  EXPECT_EQ(C.str(), "Rows2:LI@8x32");
  C.Scheme = PerforationScheme::stencil();
  EXPECT_EQ(C.str(), "Stencil1:NN@8x32");
  C.Scheme = PerforationScheme::none();
  EXPECT_EQ(C.str(), "Baseline@8x32");
}

TEST(TunerTest, ExhaustiveKeepsInfeasible) {
  std::vector<TunerConfig> Space(3);
  Space[1].TileX = 999; // Marker for the fake evaluator below.
  auto Results = tuneExhaustive(
      Space, [](const TunerConfig &C) -> Expected<Measurement> {
        if (C.TileX == 999)
          return makeError("infeasible by construction");
        return Measurement{2.0, 0.01};
      });
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_TRUE(Results[0].Feasible);
  EXPECT_FALSE(Results[1].Feasible);
  EXPECT_NE(Results[1].Note.find("infeasible"), std::string::npos);
  EXPECT_TRUE(Results[2].Feasible);
}

TEST(TunerTest, BudgetSelectionPicksFastestWithin) {
  std::vector<TunerResult> Results(4);
  Results[0].Feasible = true;
  Results[0].M = {3.0, 0.20}; // Too inaccurate.
  Results[1].Feasible = true;
  Results[1].M = {1.5, 0.01};
  Results[2].Feasible = true;
  Results[2].M = {2.0, 0.04}; // Fastest within budget.
  Results[3].Feasible = false;
  Results[3].M = {9.0, 0.0}; // Infeasible: ignored.
  EXPECT_EQ(bestWithinErrorBudget(Results, 0.05), 2u);
}

TEST(TunerTest, BudgetSelectionNoneQualifies) {
  std::vector<TunerResult> Results(1);
  Results[0].Feasible = true;
  Results[0].M = {2.0, 0.5};
  EXPECT_EQ(bestWithinErrorBudget(Results, 0.01), ~size_t(0));
}

TEST(TunerTest, BudgetSelectionRejectsNonFiniteError) {
  // A degenerate measurement (0/0 -> NaN error) compares false against
  // any budget; it must be treated as infeasible, not crowned fastest.
  std::vector<TunerResult> Results(3);
  Results[0].Feasible = true;
  Results[0].M = {9.0, std::nan("")};
  Results[1].Feasible = true;
  Results[1].M = {2.0, 0.02};
  Results[2].Feasible = true;
  Results[2].M = {8.0, std::numeric_limits<double>::infinity()};
  EXPECT_EQ(bestWithinErrorBudget(Results, 0.05), 1u);
  // All degenerate: nothing qualifies.
  std::vector<TunerResult> AllNaN(1);
  AllNaN[0].Feasible = true;
  AllNaN[0].M = {9.0, std::nan("")};
  EXPECT_EQ(bestWithinErrorBudget(AllNaN, 0.05), ~size_t(0));
}

TEST(TunerTest, BudgetSelectionBreaksSpeedupTiesTowardLowerError) {
  // The cost model is max(compute, memory), so configs that only trim
  // the non-bottleneck axis tie at the identical modeled speedup; the
  // one that also loses less accuracy must win regardless of order.
  std::vector<TunerResult> Results(4);
  Results[0].Feasible = true;
  Results[0].M = {4.0, 0.030};
  Results[1].Feasible = true;
  Results[1].M = {4.0, 0.025}; // Same speed, lower error: the winner.
  Results[2].Feasible = true;
  Results[2].M = {4.0, 0.028};
  Results[3].Feasible = true;
  Results[3].M = {3.5, 0.001}; // Slower never beats faster on a tie.
  EXPECT_EQ(bestWithinErrorBudget(Results, 0.05), 1u);
  // A strictly faster config still wins even with the worst error.
  Results[2].M = {4.5, 0.049};
  EXPECT_EQ(bestWithinErrorBudget(Results, 0.05), 2u);
}

TEST(TunerTest, StrideLabelAndSpaceCoverage) {
  TunerConfig C;
  C.Scheme = PerforationScheme::rows(2, ReconstructionKind::Linear);
  C.TileX = 8;
  C.TileY = 32;
  C.LoopStride = 2;
  EXPECT_EQ(C.str(), "Rows2:LI@8x32/L2"); // Stride 1 stays unsuffixed.
  unsigned Strided = 0;
  for (const TunerConfig &TC : defaultTuningSpace())
    Strided += TC.LoopStride > 1;
  EXPECT_EQ(Strided, defaultTuningSpace().size() / 2);
}

TEST(TunerTest, JointPipelineSpecSplicing) {
  // Stride 1: untouched.
  EXPECT_EQ(jointPipelineSpec("mem2reg,unroll", 1), "mem2reg,unroll");
  EXPECT_EQ(jointPipelineSpec("", 1), "");
  // Before the first top-level unroll, so strided loops still flatten.
  EXPECT_EQ(jointPipelineSpec("mem2reg,unroll", 2),
            "mem2reg,perforate-loop(2),unroll");
  EXPECT_EQ(jointPipelineSpec("mem2reg,unroll(64),gvn", 3),
            "mem2reg,perforate-loop(3),unroll(64),gvn");
  // No unroll: after the leading mem2reg run (induction phis exist only
  // after promotion), else at the front.
  EXPECT_EQ(jointPipelineSpec("mem2reg,gvn,dce", 2),
            "mem2reg,perforate-loop(2),gvn,dce");
  EXPECT_EQ(jointPipelineSpec("gvn,dce", 2), "perforate-loop(2),gvn,dce");
  EXPECT_EQ(jointPipelineSpec("", 2), "perforate-loop(2)");
  // An unroll nested in a fixpoint group is not a top-level slot.
  EXPECT_EQ(jointPipelineSpec("fixpoint(unroll,dce)", 2),
            "perforate-loop(2),fixpoint(unroll,dce)");
  // The spliced default must parse under the registered grammar.
  std::string Joint = jointPipelineSpec(ir::defaultPipelineSpec(), 2);
  EXPECT_NE(Joint.find("perforate-loop(2),unroll"), std::string::npos);
  EXPECT_TRUE(
      static_cast<bool>(ir::PassPipeline::parse(Joint)));
}

TEST(TunerTest, ToTradeoffPointsSkipsInfeasible) {
  std::vector<TunerResult> Results(2);
  Results[0].Feasible = true;
  Results[0].M = {2.0, 0.1};
  Results[1].Feasible = false;
  EXPECT_EQ(toTradeoffPoints(Results).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Scheme descriptors
//===----------------------------------------------------------------------===//

TEST(SchemeTest, Names) {
  EXPECT_EQ(PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor)
                .str(),
            "Rows2:NN");
  EXPECT_EQ(PerforationScheme::rows(4, ReconstructionKind::Linear).str(),
            "Rows4:LI");
  EXPECT_EQ(PerforationScheme::cols(2, ReconstructionKind::NearestNeighbor)
                .str(),
            "Cols2:NN");
  EXPECT_EQ(PerforationScheme::stencil().str(), "Stencil1:NN");
  EXPECT_EQ(PerforationScheme::none().str(), "Baseline");
}

TEST(SchemeTest, LoadedFraction) {
  EXPECT_DOUBLE_EQ(PerforationScheme::none().loadedFraction(18, 18, 1, 1),
                   1.0);
  EXPECT_DOUBLE_EQ(
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor)
          .loadedFraction(18, 18, 1, 1),
      0.5);
  EXPECT_DOUBLE_EQ(
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor)
          .loadedFraction(18, 18, 1, 1),
      0.25);
  EXPECT_NEAR(PerforationScheme::stencil().loadedFraction(18, 18, 1, 1),
              256.0 / 324.0, 1e-12);
}

TEST(SchemeTest, RowMaskGlobalParity) {
  PerforationScheme S =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  // Origin -1: tile row r is loaded iff (r - 1) is even.
  auto Mask = schemeMask(S, 6, 6, 1, 1, -1, -1);
  for (unsigned R = 0; R < 6; ++R)
    for (unsigned C = 0; C < 6; ++C)
      EXPECT_EQ(Mask[R][C] == '#',
                ((static_cast<int>(R) - 1) % 2 + 2) % 2 == 0)
          << R << "," << C;
}

TEST(SchemeTest, AdjacentTilesMatchSeamlessly) {
  PerforationScheme S =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  // Two tiles of height 8 (6 + 2 halo), the second starting 6 rows below:
  // overlapping rows must agree on loadedness.
  auto Top = schemeMask(S, 8, 8, 1, 1, -1, -1);
  auto Bottom = schemeMask(S, 8, 8, 1, 1, -1, 5);
  // Top rows 6,7 overlap Bottom rows 0,1 (global rows 5,6).
  EXPECT_EQ(Top[6][0], Bottom[0][0]);
  EXPECT_EQ(Top[7][0], Bottom[1][0]);
}

TEST(SchemeTest, StencilMaskIsFigure5) {
  // 6x6 tile with 3x3 stencil (halo 1): center 6x6... Figure 5 uses an
  // 8x8 storage tile; the ring is reconstructed, the center loaded.
  auto Mask = schemeMask(PerforationScheme::stencil(), 8, 8, 1, 1, -1, -1);
  for (unsigned R = 0; R < 8; ++R)
    for (unsigned C = 0; C < 8; ++C) {
      bool Center = R >= 1 && R < 7 && C >= 1 && C < 7;
      EXPECT_EQ(Mask[R][C] == '#', Center);
    }
}

TEST(SchemeTest, StencilLoadedFractionClampsOnSmallTiles) {
  // A tile smaller than twice the halo has no interior: the fraction is
  // 0, never the wrapped-unsigned garbage the subtraction would give.
  PerforationScheme S = PerforationScheme::stencil();
  EXPECT_DOUBLE_EQ(S.loadedFraction(2, 2, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(S.loadedFraction(1, 8, 2, 0), 0.0);  // Width collapses.
  EXPECT_DOUBLE_EQ(S.loadedFraction(8, 3, 0, 2), 0.0);  // Height collapses.
  EXPECT_DOUBLE_EQ(S.loadedFraction(2, 2, 1, 0), 0.0);  // Exactly 2*halo.
  // A tile just past the threshold keeps its one-element interior.
  EXPECT_DOUBLE_EQ(S.loadedFraction(3, 3, 1, 1), 1.0 / 9.0);
}

TEST(SchemeTest, RowMaskNegativeOriginParity) {
  // Work groups left/above the image get negative tile origins; the mask
  // must still follow *global* parity ((M % P + P) % P, not plain %).
  PerforationScheme S =
      PerforationScheme::rows(3, ReconstructionKind::NearestNeighbor);
  auto Mask = schemeMask(S, 4, 6, 0, 0, 0, -5);
  for (unsigned R = 0; R < 6; ++R) {
    int Global = -5 + static_cast<int>(R);
    bool Loaded = ((Global % 3) + 3) % 3 == 0; // Rows -3, 0 load.
    for (unsigned C = 0; C < 4; ++C)
      EXPECT_EQ(Mask[R][C], Loaded ? '#' : '.')
          << "row " << R << " col " << C;
  }
}

TEST(SchemeTest, GridMaskNegativeOriginParity) {
  PerforationScheme S =
      PerforationScheme::grid(3, ReconstructionKind::Linear);
  auto Mask = schemeMask(S, 7, 7, 0, 0, -4, -2);
  for (unsigned R = 0; R < 7; ++R)
    for (unsigned C = 0; C < 7; ++C) {
      int GR = -2 + static_cast<int>(R);
      int GC = -4 + static_cast<int>(C);
      bool Loaded = ((GR % 3) + 3) % 3 == 0 && ((GC % 3) + 3) % 3 == 0;
      EXPECT_EQ(Mask[R][C], Loaded ? '#' : '.')
          << "row " << R << " col " << C;
    }
}

TEST(SchemeTest, ColsMaskIsTransposedRows) {
  PerforationScheme Rows =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  PerforationScheme Cols =
      PerforationScheme::cols(2, ReconstructionKind::NearestNeighbor);
  auto RMask = schemeMask(Rows, 6, 6, 1, 1, -1, -1);
  auto CMask = schemeMask(Cols, 6, 6, 1, 1, -1, -1);
  for (unsigned R = 0; R < 6; ++R)
    for (unsigned C = 0; C < 6; ++C)
      EXPECT_EQ(RMask[R][C], CMask[C][R]);
}

} // namespace
