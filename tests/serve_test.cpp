//===- tests/serve_test.cpp - Multi-tenant serving layer tests ---------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// rt::Server: service registration and shard routing, serve() parity
// with a direct session launch, the online re-tune hot-swap (quality
// loop), degradation when the budget proves unreachable, the lint-gate
// accurate-only path, disk-cache warm restarts with zero variant
// compiles, and concurrent clients across services.
//
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "img/Generators.h"
#include "runtime/Server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>

using namespace kperf;
using namespace kperf::rt;

namespace {

ServiceConfig imageService(const char *Name, const char *Source,
                           unsigned Size = 64) {
  ServiceConfig C;
  C.Name = Name;
  C.Source = Source;
  C.Kernel = Name;
  C.Width = Size;
  C.Height = Size;
  C.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  return C;
}

std::vector<float> frame(img::ImageClass Class, unsigned Size,
                         uint64_t Seed) {
  return img::generateImage(Class, Size, Size, Seed).pixels();
}

TEST(ServerTest, RegistrationAndStableRouting) {
  Server Srv(ServerConfig{});
  std::vector<std::pair<const char *, const char *>> Defs = {
      {"gaussian", apps::gaussianSource()},
      {"inversion", apps::inversionSource()},
      {"sobel3", apps::sobel3Source()},
      {"mean", apps::meanSource()}};
  for (const auto &D : Defs)
    ASSERT_FALSE(
        static_cast<bool>(Srv.addService(imageService(D.first, D.second))));

  EXPECT_EQ(Srv.services(),
            (std::vector<std::string>{"gaussian", "inversion", "sobel3",
                                      "mean"}));
  for (const auto &D : Defs) {
    unsigned Shard = cantFail(Srv.shardOf(D.first));
    EXPECT_LT(Shard, Srv.config().Shards);
    // Routing is a pure hash of the service's key material: stable.
    EXPECT_EQ(Shard, cantFail(Srv.shardOf(D.first)));
  }
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.Services, 4u);
  EXPECT_EQ(St.Shards, 4u);
  EXPECT_EQ(St.Sessions.VariantCompiles, 4u);
  EXPECT_NE(St.str().find("services: 4"), std::string::npos);

  // Duplicate names are rejected; the original service stays.
  Error Dup = Srv.addService(imageService("gaussian", apps::gaussianSource()));
  ASSERT_TRUE(static_cast<bool>(Dup));
  EXPECT_NE(Dup.message().find("already registered"), std::string::npos);
  EXPECT_EQ(Srv.stats().Services, 4u);
}

TEST(ServerTest, ServeMatchesDirectSessionLaunch) {
  // An unchecked approximate serve must produce exactly what launching
  // the same perforated variant in a plain session produces.
  Server Srv(ServerConfig{});
  ASSERT_FALSE(static_cast<bool>(
      Srv.addService(imageService("gaussian", apps::gaussianSource()))));
  std::vector<float> Input = frame(img::ImageClass::Natural, 64, 3);
  ServeResult R = cantFail(Srv.serve("gaussian", Input));
  EXPECT_TRUE(R.UsedApproximate);
  EXPECT_FALSE(R.Checked); // CheckEvery=8: the first request is free.
  ASSERT_EQ(R.Output.size(), Input.size());

  Session S;
  Kernel K = cantFail(S.compile(apps::gaussianSource(), "gaussian"));
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  Variant V = cantFail(S.perforate(K, Plan));
  unsigned In = S.createBufferFrom(Input);
  unsigned Out = S.createBuffer(Input.size());
  cantFail(S.launch(V, {64, 64},
                    {arg::buffer(In), arg::buffer(Out), arg::i32(64),
                     arg::i32(64)}));
  EXPECT_EQ(R.Output, S.buffer(Out).downloadFloats());
}

TEST(ServerTest, ServeErrors) {
  Server Srv(ServerConfig{});
  ASSERT_FALSE(static_cast<bool>(
      Srv.addService(imageService("inversion", apps::inversionSource()))));

  Expected<ServeResult> Unknown = Srv.serve("nope", {});
  ASSERT_FALSE(static_cast<bool>(Unknown));
  EXPECT_NE(Unknown.error().message().find("no service"), std::string::npos);

  Expected<ServeResult> Short = Srv.serve("inversion", {1.0f, 2.0f});
  ASSERT_FALSE(static_cast<bool>(Short));
  EXPECT_NE(Short.error().message().find("expected"), std::string::npos);

  ServiceConfig Bad = imageService("zero", apps::meanSource());
  Bad.Width = 0;
  Error E = Srv.addService(Bad);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("nonzero"), std::string::npos);
}

TEST(ServerTest, QualityLoopReTunesAndHotSwaps) {
  // Deterministic quality loop: a test-controlled scorer reports the
  // first check catastrophically over budget (forcing the monitor to
  // fall back) and every later comparison clean. The server must spend
  // one online re-tune, hot-swap the winner, and recover to serving
  // approximate -- not degrade to permanently accurate.
  Server Srv(ServerConfig{});
  ServiceConfig C = imageService("gaussian", apps::gaussianSource());
  C.CheckEvery = 1; // Every request carries a check.
  auto Calls = std::make_shared<unsigned>(0);
  C.Score = [Calls](const std::vector<float> &,
                    const std::vector<float> &) {
    return ++*Calls == 1 ? 1.0 : 0.0;
  };
  ASSERT_FALSE(static_cast<bool>(Srv.addService(C)));

  std::vector<float> Input = frame(img::ImageClass::Pattern, 64, 5);
  ServeResult First = cantFail(Srv.serve("gaussian", Input));
  EXPECT_TRUE(First.Checked);
  EXPECT_FALSE(First.UsedApproximate); // The violating check serves accurate.
  EXPECT_GT(First.MeasuredError, 0.05);
  EXPECT_TRUE(First.ReTuned);

  ServeResult Second = cantFail(Srv.serve("gaussian", Input));
  EXPECT_TRUE(Second.UsedApproximate); // Hot-swapped monitor is re-armed.
  EXPECT_FALSE(Second.ReTuned);

  ServerStats St = Srv.stats();
  EXPECT_EQ(St.ReTunes, 1u);
  EXPECT_EQ(St.DegradedServices, 0u);
  EXPECT_EQ(St.Requests, 2u);
  EXPECT_EQ(St.Checks, 2u);
  // The re-tune evaluated its candidate space through the shard's
  // variant cache, and the winner's rebuild was a pure cache hit.
  EXPECT_GE(St.Sessions.VariantCacheHits, 1u);
  EXPECT_EQ(St.Sessions.SourceCompiles, 1u);
}

TEST(ServerTest, UnreachableBudgetDegradesToAccurate) {
  // Every comparison reports over budget: the re-tune finds no candidate
  // within budget and the service degrades to permanently accurate.
  ServerConfig SC;
  SC.MaxReTunesPerService = 1;
  Server Srv(SC);
  ServiceConfig C = imageService("mean", apps::meanSource());
  C.CheckEvery = 1;
  C.Score = [](const std::vector<float> &, const std::vector<float> &) {
    return 1.0;
  };
  ASSERT_FALSE(static_cast<bool>(Srv.addService(C)));

  std::vector<float> Input = frame(img::ImageClass::Smooth, 64, 9);
  ServeResult First = cantFail(Srv.serve("mean", Input));
  EXPECT_TRUE(First.ReTuned);
  EXPECT_FALSE(First.UsedApproximate);

  ServeResult Second = cantFail(Srv.serve("mean", Input));
  EXPECT_FALSE(Second.UsedApproximate);
  EXPECT_FALSE(Second.Checked); // Accurate-only: the monitor is bypassed.

  ServerStats St = Srv.stats();
  EXPECT_EQ(St.ReTunes, 1u);
  EXPECT_EQ(St.DegradedServices, 1u);
}

TEST(ServerTest, LintGateRejectionServesAccurateOnly) {
  // A kernel whose perforated form fails the static gate still registers
  // -- as an accurate-only service -- and keeps serving correct frames.
  // The proven division by zero hides behind a branch that never runs at
  // h > 0, so the accurate kernel executes cleanly; the gate rejects the
  // instruction statically all the same.
  const char *GatedSource = R"(
kernel void gated(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (h < 0) {
    int z = 0;
    out[x / z] = 0.0;
  }
  out[y * w + x] = in[y * w + x];
}
)";
  ServerConfig SC;
  SC.LintGate = true;
  Server Srv(SC);
  ASSERT_FALSE(static_cast<bool>(Srv.addService(imageService("gated",
                                                             GatedSource))));
  // A well-behaved kernel passes the gate and serves approximate.
  ASSERT_FALSE(static_cast<bool>(
      Srv.addService(imageService("inversion", apps::inversionSource()))));

  std::vector<float> Input = frame(img::ImageClass::Smooth, 64, 2);
  ServeResult R = cantFail(Srv.serve("gated", Input));
  EXPECT_FALSE(R.UsedApproximate);
  EXPECT_EQ(R.Output, Input); // The live path is an identity copy.
  EXPECT_TRUE(cantFail(Srv.serve("inversion", Input)).UsedApproximate);

  ServerStats St = Srv.stats();
  EXPECT_EQ(St.DegradedServices, 1u);
  EXPECT_EQ(St.Sessions.LintRejections, 1u);
}

TEST(ServerTest, DiskCacheWarmRestartCompilesNothing) {
  // The acceptance criterion: a cold-restarted server over a warm disk
  // cache reports zero variant compiles for the same service set, and
  // serves byte-identical frames.
  std::string Dir = ::testing::TempDir() + "kperf_server_diskcache";
  std::filesystem::remove_all(Dir);
  ServerConfig SC;
  SC.DiskCacheDir = Dir;

  std::vector<std::pair<const char *, const char *>> Defs = {
      {"gaussian", apps::gaussianSource()},
      {"inversion", apps::inversionSource()},
      {"sobel3", apps::sobel3Source()}};
  std::vector<float> Input = frame(img::ImageClass::Natural, 64, 7);

  std::vector<std::vector<float>> ColdOutputs;
  {
    Server Cold(SC);
    for (const auto &D : Defs)
      ASSERT_FALSE(static_cast<bool>(
          Cold.addService(imageService(D.first, D.second))));
    for (const auto &D : Defs)
      ColdOutputs.push_back(cantFail(Cold.serve(D.first, Input)).Output);
    ServerStats St = Cold.stats();
    EXPECT_EQ(St.Sessions.VariantCompiles, 3u);
    EXPECT_EQ(St.Sessions.DiskVariantStores, 3u);
    EXPECT_EQ(St.Sessions.DiskVariantHits, 0u);
  }

  Server Warm(SC);
  for (const auto &D : Defs)
    ASSERT_FALSE(static_cast<bool>(
        Warm.addService(imageService(D.first, D.second))));
  ServerStats St = Warm.stats();
  EXPECT_EQ(St.Sessions.VariantCompiles, 0u);
  EXPECT_EQ(St.Sessions.DiskVariantHits, 3u);
  for (size_t I = 0; I < Defs.size(); ++I)
    EXPECT_EQ(cantFail(Warm.serve(Defs[I].first, Input)).Output,
              ColdOutputs[I])
        << Defs[I].first;
}

TEST(ServerTest, ConcurrentClientsAcrossServices) {
  // Clients hammering different services proceed concurrently (distinct
  // service locks, shard sessions synchronized internally) and each
  // stream sees exactly the single-threaded outputs.
  Server Srv(ServerConfig{});
  std::vector<std::pair<const char *, const char *>> Defs = {
      {"gaussian", apps::gaussianSource()},
      {"inversion", apps::inversionSource()},
      {"sobel3", apps::sobel3Source()},
      {"sharpen", apps::sharpenSource()}};
  for (const auto &D : Defs)
    ASSERT_FALSE(
        static_cast<bool>(Srv.addService(imageService(D.first, D.second))));

  // Single-threaded reference outputs, from an identical fresh server.
  Server Ref(ServerConfig{});
  for (const auto &D : Defs)
    ASSERT_FALSE(
        static_cast<bool>(Ref.addService(imageService(D.first, D.second))));
  std::vector<float> Input = frame(img::ImageClass::Smooth, 64, 13);
  std::vector<std::vector<float>> Want;
  for (const auto &D : Defs)
    Want.push_back(cantFail(Ref.serve(D.first, Input)).Output);

  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Defs.size(); ++T)
    Threads.emplace_back([&, T]() {
      for (unsigned I = 0; I < 6; ++I) {
        Expected<ServeResult> R = Srv.serve(Defs[T].first, Input);
        if (!R || R->Output != Want[T])
          ++Mismatches;
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(Srv.stats().Requests, 24u);
}

} // namespace
