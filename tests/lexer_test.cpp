//===- tests/lexer_test.cpp - PCL lexer unit tests --------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "pcl/Lexer.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::pcl;

namespace {

std::vector<Token> lexOk(const std::string &Source) {
  Expected<std::vector<Token>> T = lex(Source);
  EXPECT_TRUE(static_cast<bool>(T)) << (T ? "" : T.error().message());
  return T ? T.takeValue() : std::vector<Token>{};
}

std::string lexErr(const std::string &Source) {
  Expected<std::vector<Token>> T = lex(Source);
  EXPECT_FALSE(static_cast<bool>(T));
  return T ? "" : T.error().message();
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, Identifiers) {
  auto Tokens = lexOk("foo _bar x1 camelCase");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x1");
  EXPECT_EQ(Tokens[3].Text, "camelCase");
}

TEST(LexerTest, Keywords) {
  auto Tokens = lexOk("kernel void float int global local const if else "
                      "for while return true false bool");
  TokenKind Expected[] = {
      TokenKind::KwKernel, TokenKind::KwVoid,  TokenKind::KwFloat,
      TokenKind::KwInt,    TokenKind::KwGlobal, TokenKind::KwLocal,
      TokenKind::KwConst,  TokenKind::KwIf,    TokenKind::KwElse,
      TokenKind::KwFor,    TokenKind::KwWhile, TokenKind::KwReturn,
      TokenKind::KwTrue,   TokenKind::KwFalse, TokenKind::KwBool};
  ASSERT_EQ(Tokens.size(), 16u);
  for (size_t I = 0; I < 15; ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(LexerTest, KeywordPrefixIsIdentifier) {
  auto Tokens = lexOk("iff formal kernels");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(LexerTest, IntLiterals) {
  auto Tokens = lexOk("0 7 12345");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 7);
  EXPECT_EQ(Tokens[2].IntValue, 12345);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, IntLiteralOverflow) {
  std::string Msg = lexErr("99999999999");
  EXPECT_NE(Msg.find("out of range"), std::string::npos);
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lexOk("1.5 0.25 2. .5");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::FloatLiteral);
  EXPECT_FLOAT_EQ(Tokens[0].FloatValue, 1.5f);
  EXPECT_FLOAT_EQ(Tokens[1].FloatValue, 0.25f);
  EXPECT_FLOAT_EQ(Tokens[2].FloatValue, 2.0f);
  EXPECT_FLOAT_EQ(Tokens[3].FloatValue, 0.5f);
}

TEST(LexerTest, FloatSuffixF) {
  auto Tokens = lexOk("1f 2.5f");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::FloatLiteral);
  EXPECT_FLOAT_EQ(Tokens[0].FloatValue, 1.0f);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::FloatLiteral);
}

TEST(LexerTest, FloatExponent) {
  auto Tokens = lexOk("1e3 2.5e-2 1E+1");
  EXPECT_FLOAT_EQ(Tokens[0].FloatValue, 1000.0f);
  EXPECT_FLOAT_EQ(Tokens[1].FloatValue, 0.025f);
  EXPECT_FLOAT_EQ(Tokens[2].FloatValue, 10.0f);
}

TEST(LexerTest, MalformedExponent) {
  std::string Msg = lexErr("1e+");
  EXPECT_NE(Msg.find("exponent"), std::string::npos);
}

TEST(LexerTest, Operators) {
  auto Tokens = lexOk("+ - * / % = == != < <= > >= && || ! ? : ++ -- "
                      "+= -= *= /= %=");
  TokenKind Expected[] = {
      TokenKind::Plus,        TokenKind::Minus,
      TokenKind::Star,        TokenKind::Slash,
      TokenKind::Percent,     TokenKind::Assign,
      TokenKind::EqEq,        TokenKind::NotEq,
      TokenKind::Less,        TokenKind::LessEq,
      TokenKind::Greater,     TokenKind::GreaterEq,
      TokenKind::AmpAmp,      TokenKind::PipePipe,
      TokenKind::Not,         TokenKind::Question,
      TokenKind::Colon,       TokenKind::PlusPlus,
      TokenKind::MinusMinus,  TokenKind::PlusAssign,
      TokenKind::MinusAssign, TokenKind::StarAssign,
      TokenKind::SlashAssign, TokenKind::PercentAssign};
  ASSERT_EQ(Tokens.size(), 25u);
  for (size_t I = 0; I < 24; ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(LexerTest, Punctuation) {
  auto Tokens = lexOk("( ) { } [ ] , ;");
  TokenKind Expected[] = {TokenKind::LParen,   TokenKind::RParen,
                          TokenKind::LBrace,   TokenKind::RBrace,
                          TokenKind::LBracket, TokenKind::RBracket,
                          TokenKind::Comma,    TokenKind::Semicolon};
  for (size_t I = 0; I < 8; ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]);
}

TEST(LexerTest, LineComments) {
  auto Tokens = lexOk("a // comment with * and / chars\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, BlockComments) {
  auto Tokens = lexOk("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, UnterminatedBlockComment) {
  std::string Msg = lexErr("a /* never closed");
  EXPECT_NE(Msg.find("unterminated"), std::string::npos);
}

TEST(LexerTest, UnexpectedCharacter) {
  std::string Msg = lexErr("a @ b");
  EXPECT_NE(Msg.find("unexpected character"), std::string::npos);
}

TEST(LexerTest, SingleAmpersandIsError) {
  std::string Msg = lexErr("a & b");
  EXPECT_FALSE(Msg.empty());
}

TEST(LexerTest, LineColumnTracking) {
  auto Tokens = lexOk("a\n  b\n\nc");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
  EXPECT_EQ(Tokens[2].Loc.Line, 4u);
}

TEST(LexerTest, ErrorPositionInMessage) {
  std::string Msg = lexErr("ok\n   @");
  EXPECT_EQ(Msg.substr(0, 4), "2:4:");
}

TEST(LexerTest, MinusVersusNegativeLiteral) {
  // '-' is always its own token; negation is handled by the parser.
  auto Tokens = lexOk("-3");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Minus);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::IntLiteral);
}

TEST(LexerTest, AdjacentOperatorsGreedy) {
  auto Tokens = lexOk("a+++b"); // Lexes as a ++ + b (maximal munch).
  EXPECT_EQ(Tokens[1].Kind, TokenKind::PlusPlus);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Plus);
}

TEST(LexerTest, WholeKernelLexes) {
  auto Tokens = lexOk("kernel void f(global const float* in) {\n"
                      "  int x = get_global_id(0);\n"
                      "}\n");
  EXPECT_GT(Tokens.size(), 10u);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Eof);
}

} // namespace
