//===- tests/loopperf_test.cpp - perforate-loop(stride) pass unit tests -----==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The generalized loop-perforation pass: stride 1 must be a structural
// no-op, stride N must rewrite eligible induction variables and rescale
// escaping add-reductions, and every illegal shape (memory-observing
// skipped iterations, variable steps, side exits, equality exit tests)
// must be refused with the function untouched.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"
#include "ir/PassManager.h"
#include "ir/Printer.h"
#include "img/Metrics.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Compiles the first kernel of \p Source, running \p Spec with
/// verify-each on; per-pass stats land in \p Stats when given.
rt::Kernel compileWith(rt::Session &S, const char *Source,
                       const std::string &Spec,
                       PipelineStats *Stats = nullptr) {
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = Spec;
  Opts.VerifyEach = true;
  Opts.Stats = Stats;
  Expected<std::vector<rt::Kernel>> Ks = S.compileAll(Source, Opts);
  EXPECT_TRUE(static_cast<bool>(Ks)) << Ks.error().message();
  return Ks->front();
}

bool hasBackEdge(const Function &F) {
  DominatorTree DT = DominatorTree::compute(F);
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : successors(BB.get()))
      if (DT.isReachable(BB.get()) && DT.dominates(Succ, BB.get()))
        return true;
  return false;
}

/// Runs a 16x16 launch of kernel(in, out, w, h) over \p In.
std::vector<float> runKernelOn(rt::Session &S, const rt::Kernel &K,
                               const std::vector<float> &In) {
  constexpr unsigned N = 16;
  unsigned InBuf = S.createBufferFrom(In);
  unsigned OutBuf = S.createBuffer(In.size());
  Expected<sim::SimReport> R =
      S.launch(K, {N, N}, {8, 8},
               {rt::arg::buffer(InBuf), rt::arg::buffer(OutBuf),
                rt::arg::i32(N), rt::arg::i32(N)});
  EXPECT_TRUE(static_cast<bool>(R)) << R.error().message();
  return S.buffer(OutBuf).downloadFloats();
}

std::vector<float> rampInput() {
  std::vector<float> In(16 * 16);
  for (unsigned I = 0; I < In.size(); ++I)
    In[I] = 0.25f * static_cast<float>(I % 17) + 1.0f;
  return In;
}

/// The two pipelines' outputs over \p In must agree bit for bit.
void expectSameOutput(const char *Source, const std::string &SpecA,
                      const std::string &SpecB,
                      const std::vector<float> &In) {
  rt::Session SA, SB;
  std::vector<float> A =
      runKernelOn(SA, compileWith(SA, Source, SpecA), In);
  std::vector<float> B =
      runKernelOn(SB, compileWith(SB, Source, SpecB), In);
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(std::memcmp(A.data(), B.data(), A.size() * sizeof(float)), 0)
      << "'" << SpecA << "' vs '" << SpecB << "'";
}

const char *WindowKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int i = 0; i < 4; i++) {
    acc += in[clamp(y + i - 1, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)";

const char *NestedKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int ky = 0; ky < 3; ky++) {
    for (int kx = 0; kx < 3; kx++) {
      acc += in[clamp(y + ky - 1, 0, h - 1) * w
                + clamp(x + kx - 1, 0, w - 1)];
    }
  }
  out[y * w + x] = acc / 9.0;
}
)";

TEST(LoopPerforateTest, Stride1IsStructuralNoOp) {
  // Bare name (default knob 1) and the explicit spelling: byte-identical
  // printed IR, zero reported changes.
  for (const char *Spec :
       {"mem2reg,perforate-loop", "mem2reg,perforate-loop(1)"}) {
    rt::Session SA, SB;
    PipelineStats Stats;
    rt::Kernel A = compileWith(SA, NestedKernel, "mem2reg");
    rt::Kernel B = compileWith(SB, NestedKernel, Spec, &Stats);
    EXPECT_EQ(Stats.changes("perforate-loop"), 0u) << Spec;
    EXPECT_EQ(printFunction(*A.F), printFunction(*B.F)) << Spec;
  }
}

TEST(LoopPerforateTest, Stride2RewritesInductionStep) {
  rt::Session S;
  PipelineStats Stats;
  rt::Kernel K =
      compileWith(S, WindowKernel, "mem2reg,perforate-loop(2)", &Stats);
  EXPECT_EQ(Stats.changes("perforate-loop"), 1u);
  EXPECT_TRUE(hasBackEdge(*K.F)); // Still a loop, just strided.
  // The rewritten increment carries the idempotence marker.
  bool SawPerfInc = false;
  for (const auto &BB : K.F->blocks())
    for (const auto &I : BB->instructions())
      SawPerfInc |= I->name().find(".perf") != std::string::npos;
  EXPECT_TRUE(SawPerfInc);
}

TEST(LoopPerforateTest, CompensationIsExactOnConstantInput) {
  // 4 trips at stride 2 leaves 2; each surviving contribution is scaled
  // by 4/2 = 2, so a constant input sums back to the full-trip total
  // exactly (all values representable): the perforated kernel is
  // byte-identical to baseline on constant data.
  std::vector<float> Ones(16 * 16, 1.0f);
  expectSameOutput(WindowKernel, "mem2reg", "mem2reg,perforate-loop(2)",
                   Ones);
}

TEST(LoopPerforateTest, NestedLoopsComposeMultiplicatively) {
  // Both 3-trip loops perforate (3 -> 2 trips, factor 1.5 each); the
  // leaves end up scaled by 1.5 * 1.5 = 2.25 = 9/4, so the 4 surviving
  // samples of a constant input still average to the input value.
  rt::Session S;
  PipelineStats Stats;
  compileWith(S, NestedKernel, "mem2reg,perforate-loop(2)", &Stats);
  EXPECT_EQ(Stats.changes("perforate-loop"), 2u);
  std::vector<float> Ones(16 * 16, 1.0f);
  expectSameOutput(NestedKernel, "mem2reg", "mem2reg,perforate-loop(2)",
                   Ones);
}

TEST(LoopPerforateTest, ApproximationErrorIsSmallOnSmoothInput) {
  rt::Session SA, SB;
  std::vector<float> In = rampInput();
  std::vector<float> Ref =
      runKernelOn(SA, compileWith(SA, NestedKernel, "mem2reg"), In);
  std::vector<float> Approx = runKernelOn(
      SB, compileWith(SB, NestedKernel, "mem2reg,perforate-loop(2)"), In);
  double MRE = img::meanRelativeError(Ref, Approx);
  EXPECT_TRUE(std::isfinite(MRE));
  EXPECT_LT(MRE, 0.2); // Approximate, but in the perforation regime.
}

TEST(LoopPerforateTest, PerforatedLoopStillUnrolls) {
  // The strided loop keeps a constant trip count, so the unroller
  // flattens it; the flattened form reproduces the rolled strided form
  // bit for bit.
  rt::Session S;
  rt::Kernel K =
      compileWith(S, WindowKernel, "mem2reg,perforate-loop(2),unroll");
  EXPECT_FALSE(hasBackEdge(*K.F));
  expectSameOutput(WindowKernel, "mem2reg,perforate-loop(2)",
                   "mem2reg,perforate-loop(2),unroll", rampInput());
}

TEST(LoopPerforateTest, FixpointDoesNotCompoundStride) {
  // Inside a fixpoint group the pass sees its own output; the ".perf"
  // marker on the rewritten increment keeps round 2 from striding again.
  rt::Session S;
  PipelineStats Stats;
  compileWith(S, WindowKernel, "mem2reg,fixpoint(perforate-loop(2),dce)",
              &Stats);
  EXPECT_EQ(Stats.changes("perforate-loop"), 1u);
  expectSameOutput(WindowKernel, "mem2reg,perforate-loop(2)",
                   "mem2reg,fixpoint(perforate-loop(2),dce)", rampInput());
}

//===----------------------------------------------------------------------===//
// Legality refusals: each illegal shape compiles unchanged (zero pass
// changes, byte-identical output to the un-perforated pipeline).
//===----------------------------------------------------------------------===//

void expectRefused(const char *Source) {
  rt::Session S;
  PipelineStats Stats;
  compileWith(S, Source, "mem2reg,perforate-loop(2)", &Stats);
  EXPECT_EQ(Stats.changes("perforate-loop"), 0u);
  expectSameOutput(Source, "mem2reg", "mem2reg,perforate-loop(2)",
                   rampInput());
}

TEST(LoopPerforateTest, RefusesMemoryObservingStores) {
  // The loop fills a private window array that straight-line code reads
  // afterwards: skipping an iteration would leave win[i] unwritten for
  // a read that observes it, so the pass must refuse (median's shape).
  expectRefused(R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float win[4];
  for (int i = 0; i < 4; i++) {
    win[i] = in[clamp(y + i - 1, 0, h - 1) * w + x];
  }
  out[y * w + x] = win[0] + win[1] + win[2] + win[3];
}
)");
}

TEST(LoopPerforateTest, RefusesVariableStep) {
  // Step is an argument, not a constant: a strided rewrite could walk an
  // arbitrary index set.
  expectRefused(R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int i = 0; i < 4; i = i + h) {
    acc += in[clamp(y + i, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)");
}

TEST(LoopPerforateTest, RefusesSideExit) {
  // A return inside the body is a second exit that could observe the
  // skipped iterations' partial state.
  expectRefused(R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  out[y * w + x] = 0.0;
  for (int i = 0; i < 4; i++) {
    if (in[y * w + x] > 1000000.0) {
      return;
    }
    acc += in[clamp(y + i - 1, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)");
}

TEST(LoopPerforateTest, RefusesEqualityExitTest) {
  // i != 4 terminates only by landing exactly on the bound; a strided
  // step hops over it, so only order relations qualify.
  expectRefused(R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int i = 0; i != 4; i++) {
    acc += in[clamp(y + i - 1, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)");
}

TEST(LoopPerforateTest, RefusesBeforePromotion) {
  // Ahead of mem2reg no induction phi exists; the pass must find
  // nothing rather than mangle memory-form loops.
  rt::Session S;
  PipelineStats Stats;
  compileWith(S, NestedKernel, "perforate-loop(2),mem2reg", &Stats);
  EXPECT_EQ(Stats.changes("perforate-loop"), 0u);
  expectSameOutput(NestedKernel, "mem2reg", "perforate-loop(2),mem2reg",
                   rampInput());
}

} // namespace
