//===- tests/codegen_test.cpp - AST-to-IR lowering tests --------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"

#include <gtest/gtest.h>

using namespace kperf;
namespace irns = kperf::ir;

namespace {

irns::Function *compileOk(irns::Module &M, const std::string &Source) {
  Expected<std::vector<irns::Function *>> F = pcl::compile(M, Source);
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.error().message());
  return F && !F->empty() ? F->front() : nullptr;
}

std::string compileErr(const std::string &Source) {
  irns::Module M;
  Expected<std::vector<irns::Function *>> F = pcl::compile(M, Source);
  EXPECT_FALSE(static_cast<bool>(F));
  return F ? "" : F.error().message();
}

std::string wrap(const std::string &Body) {
  return "kernel void k(global const float* in, global float* out, "
         "int w, int h) {" +
         Body + "}";
}

TEST(CodeGenTest, EmptyKernelVerifies) {
  irns::Module M;
  irns::Function *F = compileOk(M, "kernel void f() {}");
  ASSERT_TRUE(F);
  EXPECT_FALSE(irns::verifyFunction(*F));
  // Entry block ends with an implicit ret.
  EXPECT_EQ(F->entry()->terminator()->opcode(), irns::Opcode::Ret);
}

TEST(CodeGenTest, ArgumentsTyped) {
  irns::Module M;
  irns::Function *F = compileOk(M, wrap(""));
  ASSERT_TRUE(F);
  ASSERT_EQ(F->numArguments(), 4u);
  EXPECT_TRUE(F->argument(0)->type().isPointer());
  EXPECT_TRUE(F->argument(0)->isConst());
  EXPECT_EQ(F->argument(0)->type().addressSpace(),
            irns::AddressSpace::Global);
  EXPECT_FALSE(F->argument(1)->isConst());
  EXPECT_TRUE(F->argument(2)->type().isInt());
}

TEST(CodeGenTest, AllKernelsInModuleByName) {
  irns::Module M;
  compileOk(M, "kernel void a() {} kernel void b() {}");
  EXPECT_TRUE(M.function("a"));
  EXPECT_TRUE(M.function("b"));
  EXPECT_FALSE(M.function("c"));
}

TEST(CodeGenTest, CompileKernelSelectsByName) {
  irns::Module M;
  Expected<irns::Function *> F =
      pcl::compileKernel(M, "kernel void a() {} kernel void b() {}", "b");
  ASSERT_TRUE(static_cast<bool>(F));
  EXPECT_EQ((*F)->name(), "b");
}

TEST(CodeGenTest, CompileKernelUnknownName) {
  irns::Module M;
  Expected<irns::Function *> F =
      pcl::compileKernel(M, "kernel void a() {}", "zz");
  EXPECT_FALSE(static_cast<bool>(F));
}

TEST(CodeGenTest, ImplicitIntToFloatPromotion) {
  irns::Module M;
  EXPECT_TRUE(compileOk(M, wrap("float x = 1; float y = x + 2;")));
}

TEST(CodeGenTest, ImplicitFloatToIntOnAssign) {
  irns::Module M;
  EXPECT_TRUE(compileOk(M, wrap("int x = 2.5;")));
}

TEST(CodeGenTest, MixedComparisonPromotes) {
  irns::Module M;
  EXPECT_TRUE(compileOk(M, wrap("float f = 1.0; if (f < 2) return;")));
}

TEST(CodeGenTest, ModuloRequiresInt) {
  std::string Msg = compileErr(wrap("float f = 1.0; float g = f % 2.0;"));
  EXPECT_NE(Msg.find("'%'"), std::string::npos);
}

TEST(CodeGenTest, UndeclaredVariable) {
  std::string Msg = compileErr(wrap("int x = nope;"));
  EXPECT_NE(Msg.find("undeclared"), std::string::npos);
}

TEST(CodeGenTest, Redeclaration) {
  std::string Msg = compileErr(wrap("int x = 1; int x = 2;"));
  EXPECT_NE(Msg.find("redeclaration"), std::string::npos);
}

TEST(CodeGenTest, ShadowingInInnerScopeAllowed) {
  irns::Module M;
  EXPECT_TRUE(compileOk(M, wrap("int x = 1; { int x = 2; x = 3; }")));
}

TEST(CodeGenTest, ScopeEndsAtBlock) {
  std::string Msg = compileErr(wrap("{ int x = 1; } x = 2;"));
  EXPECT_NE(Msg.find("undeclared"), std::string::npos);
}

TEST(CodeGenTest, ConditionMustBeBool) {
  std::string Msg = compileErr(wrap("if (1) return;"));
  EXPECT_NE(Msg.find("bool"), std::string::npos);
}

TEST(CodeGenTest, LogicalOperandsMustBeBool) {
  std::string Msg = compileErr(wrap("if (true && 1) return;"));
  EXPECT_NE(Msg.find("bool"), std::string::npos);
}

TEST(CodeGenTest, PointerParamNotAssignable) {
  std::string Msg = compileErr(wrap("in = out;"));
  EXPECT_FALSE(Msg.empty());
}

TEST(CodeGenTest, StoreToConstBufferRejected) {
  std::string Msg = compileErr(wrap("in[0] = 1.0;"));
  EXPECT_NE(Msg.find("const"), std::string::npos);
}

TEST(CodeGenTest, ArrayNeedsFullIndexing) {
  std::string Msg = compileErr(wrap("float a[2][2]; float x = a[0];"));
  EXPECT_NE(Msg.find("indices"), std::string::npos);
}

TEST(CodeGenTest, ArrayUsedWithoutIndex) {
  std::string Msg = compileErr(wrap("float a[2]; float x = a;"));
  EXPECT_NE(Msg.find("without index"), std::string::npos);
}

TEST(CodeGenTest, PointerIndexedExactlyOnce) {
  std::string Msg = compileErr(wrap("float x = in[0][1];"));
  EXPECT_NE(Msg.find("exactly once"), std::string::npos);
}

TEST(CodeGenTest, IndexMustBeInt) {
  std::string Msg = compileErr(wrap("float x = in[1.5];"));
  EXPECT_NE(Msg.find("index must be int"), std::string::npos);
}

TEST(CodeGenTest, UnknownFunction) {
  std::string Msg = compileErr(wrap("float x = sinf(1.0);"));
  EXPECT_NE(Msg.find("unknown function"), std::string::npos);
}

TEST(CodeGenTest, BuiltinArityChecked) {
  std::string Msg = compileErr(wrap("float x = min(1.0);"));
  EXPECT_NE(Msg.find("expects 2"), std::string::npos);
}

TEST(CodeGenTest, IncDecRequiresIntLValue) {
  std::string Msg = compileErr(wrap("float f = 0.0; f++;"));
  EXPECT_NE(Msg.find("int lvalue"), std::string::npos);
}

TEST(CodeGenTest, IncDecOnLiteralRejected) {
  std::string Msg = compileErr(wrap("3++;"));
  EXPECT_FALSE(Msg.empty());
}

TEST(CodeGenTest, BarrierAsStatement) {
  irns::Module M;
  irns::Function *F = compileOk(
      M, wrap("local float t[4]; t[0] = 1.0; barrier(); float x = t[0];"));
  ASSERT_TRUE(F);
  bool FoundBarrier = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == irns::Opcode::Call &&
          I->callee() == irns::Builtin::Barrier)
        FoundBarrier = true;
  EXPECT_TRUE(FoundBarrier);
}

TEST(CodeGenTest, LocalAllocaHoistedToEntry) {
  irns::Module M;
  irns::Function *F = compileOk(
      M, wrap("if (true) return; local float t[8]; t[0] = 1.0;"));
  ASSERT_TRUE(F);
  // The local alloca must live in the entry block even though the
  // declaration is below an if; the verifier would reject otherwise.
  EXPECT_FALSE(irns::verifyFunction(*F));
}

TEST(CodeGenTest, MultiDimLinearization) {
  irns::Module M;
  irns::Function *F =
      compileOk(M, wrap("float a[3][4]; a[2][1] = 5.0; out[0] = a[2][1];"));
  ASSERT_TRUE(F);
  // One alloca of 12 elements.
  unsigned AllocaCount = 0;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == irns::Opcode::Alloca && I->allocaCount() == 12)
        ++AllocaCount;
  EXPECT_EQ(AllocaCount, 1u);
}

TEST(CodeGenTest, ForLoopStructure) {
  irns::Module M;
  irns::Function *F = compileOk(
      M, wrap("float s = 0.0; for (int i = 0; i < 4; i++) s += 1.0; "
              "out[0] = s;"));
  ASSERT_TRUE(F);
  // Expect cond/body/exit blocks.
  EXPECT_GE(F->numBlocks(), 4u);
}

TEST(CodeGenTest, ReturnInMiddleProducesValidIR) {
  irns::Module M;
  irns::Function *F =
      compileOk(M, wrap("return; out[0] = 1.0;")); // Dead store.
  ASSERT_TRUE(F);
  EXPECT_FALSE(irns::verifyFunction(*F));
}

TEST(CodeGenTest, TernaryProducesSelect) {
  irns::Module M;
  irns::Function *F =
      compileOk(M, wrap("int x = true ? 1 : 2; out[x] = 0.0;"));
  ASSERT_TRUE(F);
  bool FoundSelect = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == irns::Opcode::Select)
        FoundSelect = true;
  EXPECT_TRUE(FoundSelect);
}

TEST(CodeGenTest, DiagnosticHasPosition) {
  std::string Msg = compileErr("kernel void f() {\n  int x = nope;\n}");
  EXPECT_EQ(Msg.substr(0, 2), "2:");
}

TEST(CodeGenTest, PrinterRoundTripContainsKeyPieces) {
  irns::Module M;
  irns::Function *F = compileOk(
      M, wrap("int x = get_global_id(0); out[x] = in[x] * 2.0;"));
  ASSERT_TRUE(F);
  std::string Text = irns::printFunction(*F);
  EXPECT_NE(Text.find("call get_global_id(0)"), std::string::npos);
  EXPECT_NE(Text.find("store"), std::string::npos);
  EXPECT_NE(Text.find("kernel k("), std::string::npos);
}

TEST(CodeGenTest, CompoundAssignOnBufferElement) {
  irns::Module M;
  EXPECT_TRUE(compileOk(M, wrap("out[0] = 1.0; out[0] += 2.0;")));
}

TEST(CodeGenTest, WhileLoopCompiles) {
  irns::Module M;
  EXPECT_TRUE(compileOk(
      M, wrap("int i = 0; while (i < 10) { i = i + 2; } out[0] = 0.0;")));
}

TEST(CodeGenTest, CastChainCompiles) {
  irns::Module M;
  EXPECT_TRUE(
      compileOk(M, wrap("float f = (float)(int)2.7; out[0] = f;")));
}

TEST(CodeGenTest, AllSixAppKernelsCompile) {
  // Guards against regressions in the frontend breaking any benchmark.
  const char *Sources[] = {
      "kernel void t(global const float* in, global float* out, int w, "
      "int h) { int x = get_global_id(0); int y = get_global_id(1); "
      "out[y*w+x] = in[clamp(y-1,0,h-1)*w + x]; }",
  };
  for (const char *S : Sources) {
    irns::Module M;
    EXPECT_TRUE(compileOk(M, S));
  }
}

} // namespace
