//===- tests/support_test.cpp - support library unit tests ------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace kperf;

namespace {

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, DefaultIsSuccess) {
  Error E;
  EXPECT_FALSE(E);
}

TEST(ErrorTest, SuccessFactory) { EXPECT_FALSE(Error::success()); }

TEST(ErrorTest, FailureCarriesMessage) {
  Error E("something broke");
  ASSERT_TRUE(E);
  EXPECT_EQ(E.message(), "something broke");
}

TEST(ErrorTest, MakeErrorFormats) {
  Error E = makeError("bad value %d in %s", 42, "foo");
  ASSERT_TRUE(E);
  EXPECT_EQ(E.message(), "bad value 42 in foo");
}

TEST(ErrorTest, MakeErrorLongMessage) {
  std::string Long(500, 'x');
  Error E = makeError("%s", Long.c_str());
  EXPECT_EQ(E.message().size(), 500u);
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> E(7);
  ASSERT_TRUE(E);
  EXPECT_EQ(*E, 7);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> E(makeError("nope"));
  ASSERT_FALSE(E);
  EXPECT_EQ(E.error().message(), "nope");
}

TEST(ExpectedTest, TakeValueMoves) {
  Expected<std::string> E(std::string("payload"));
  std::string S = E.takeValue();
  EXPECT_EQ(S, "payload");
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string> E(std::string("abc"));
  EXPECT_EQ(E->size(), 3u);
}

TEST(ExpectedTest, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(3)), 3);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanEmpty) { EXPECT_EQ(mean({}), 0.0); }

TEST(StatisticsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatisticsTest, VarianceConstant) {
  EXPECT_DOUBLE_EQ(variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(StatisticsTest, VarianceKnown) {
  // Population variance of {1,2,3,4} = 1.25.
  EXPECT_DOUBLE_EQ(variance({1.0, 2.0, 3.0, 4.0}), 1.25);
}

TEST(StatisticsTest, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({4.0}, 0.5), 4.0);
}

TEST(StatisticsTest, QuantileEndpoints) {
  std::vector<double> V = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 3.0);
}

TEST(StatisticsTest, QuantileInterpolates) {
  // Sorted {10,20}: the 0.5 quantile interpolates to 15.
  EXPECT_DOUBLE_EQ(quantile({20.0, 10.0}, 0.5), 15.0);
}

TEST(StatisticsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(StatisticsTest, SummaryOrdering) {
  Summary S = summarize({0.5, 0.1, 0.9, 0.3, 0.7});
  EXPECT_LE(S.Min, S.Q1);
  EXPECT_LE(S.Q1, S.Median);
  EXPECT_LE(S.Median, S.Q3);
  EXPECT_LE(S.Q3, S.Max);
  EXPECT_EQ(S.Count, 5u);
  EXPECT_DOUBLE_EQ(S.Median, 0.5);
}

TEST(StatisticsTest, SummaryMeanMatches) {
  Summary S = summarize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(S.Mean, 2.0);
}

TEST(StatisticsTest, FractionBelow) {
  std::vector<double> V = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(fractionBelow(V, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(fractionBelow(V, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(fractionBelow(V, 0.0), 0.0);
}

/// Property: for sorted data, quantile is monotone in Q.
TEST(StatisticsTest, QuantileMonotoneProperty) {
  std::vector<double> V;
  Rng R(1);
  for (int I = 0; I < 50; ++I)
    V.push_back(R.uniform());
  double Prev = quantile(V, 0.0);
  for (double Q = 0.1; Q <= 1.0; Q += 0.1) {
    double Cur = quantile(V, Q);
    EXPECT_GE(Cur, Prev);
    Prev = Cur;
  }
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(RngTest, UniformInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformBounds) {
  Rng R(7);
  for (int I = 0; I < 100; ++I) {
    double U = R.uniform(5.0, 6.0);
    EXPECT_GE(U, 5.0);
    EXPECT_LT(U, 6.0);
  }
}

TEST(RngTest, BelowBound) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, GaussianMoments) {
  Rng R(42);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double G = R.gaussian();
    Sum += G;
    SumSq += G * G;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.03);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng R(0);
  EXPECT_NE(R.next(), R.next());
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, Format) {
  EXPECT_EQ(format("x=%d y=%s", 1, "two"), "x=1 y=two");
}

TEST(StringUtilsTest, FormatEmpty) { EXPECT_EQ(format("%s", ""), ""); }

TEST(StringUtilsTest, SplitBasic) {
  std::vector<std::string> Parts = split("a,b,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  std::vector<std::string> Parts = split("a,,b,", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[3], "");
}

TEST(StringUtilsTest, JoinInvertsSplit) {
  EXPECT_EQ(join(split("x;y;z", ';'), ";"), "x;y;z");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("foo", "foobar"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilsTest, Padding) {
  EXPECT_EQ(padLeft("7", 3), "  7");
  EXPECT_EQ(padRight("7", 3), "7  ");
  EXPECT_EQ(padLeft("long", 2), "long");
}

} // namespace
