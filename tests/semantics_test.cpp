//===- tests/semantics_test.cpp - Deeper execution-semantics tests ----------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Edge-case semantics of the simulated device: barriers inside loops,
// repeated launches over the same buffers, special float values, and
// generated-kernel interactions that the simpler suites do not cover.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Interpreter.h"
#include "pcl/Compiler.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::sim;

namespace {

class SemanticsTest : public ::testing::Test {
protected:
  ir::Function *compile(const std::string &Source,
                        const std::string &Name) {
    Expected<ir::Function *> F = pcl::compileKernel(M, Source, Name);
    EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.error().message());
    return F ? *F : nullptr;
  }

  Expected<SimReport> run(ir::Function *F, Range2 Global, Range2 Local,
                          const std::vector<KernelArg> &Args) {
    return launchKernel(*F, Global, Local, Args, Buffers, Device);
  }

  unsigned makeBuffer(size_t N) {
    Buffers.emplace_back(N);
    return static_cast<unsigned>(Buffers.size() - 1);
  }

  ir::Module M;
  std::vector<BufferData> Buffers;
  DeviceConfig Device;
};

TEST_F(SemanticsTest, BarrierInsideUniformLoop) {
  // A parallel prefix-style reduction: every iteration all items hit the
  // same barrier; values must propagate phase by phase.
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[8];"
      "  int l = get_local_id(0);"
      "  t[l] = 1;"
      "  barrier();"
      "  for (int step = 1; step < 8; step = step * 2) {"
      "    int v = 0;"
      "    if (l >= step) v = t[l - step];"
      "    barrier();"
      "    t[l] = t[l] + v;"
      "    barrier();"
      "  }"
      "  out[l] = t[l];"
      "}",
      "f");
  unsigned Out = makeBuffer(8);
  SimReport R =
      cantFail(run(F, {8, 1}, {8, 1}, {KernelArg::makeBuffer(Out)}));
  for (int L = 0; L < 8; ++L)
    EXPECT_EQ(Buffers[Out].intAt(L), L + 1) << L; // Inclusive prefix sum.
  EXPECT_EQ(R.Totals.Barriers, 8u * 7u); // 1 + 2*3 per item.
}

TEST_F(SemanticsTest, RelaunchSeesUpdatedBuffers) {
  // Ping-pong: out = in + 1, run twice with swapped roles.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x] + 1.0;"
      "}",
      "f");
  unsigned A = makeBuffer(4);
  unsigned B = makeBuffer(4);
  cantFail(run(F, {4, 1}, {4, 1},
               {KernelArg::makeBuffer(A), KernelArg::makeBuffer(B)}));
  cantFail(run(F, {4, 1}, {4, 1},
               {KernelArg::makeBuffer(B), KernelArg::makeBuffer(A)}));
  for (int I = 0; I < 4; ++I)
    EXPECT_FLOAT_EQ(Buffers[A].floatAt(I), 2.0f);
}

TEST_F(SemanticsTest, SameBufferAsTwoArguments) {
  // in and out may alias; reads happen per item before its write.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x] * 2.0;"
      "}",
      "f");
  unsigned A = makeBuffer(4);
  Buffers[A].setFloat(0, 3.0f);
  Buffers[A].setFloat(1, 5.0f);
  cantFail(run(F, {2, 1}, {2, 1},
               {KernelArg::makeBuffer(A), KernelArg::makeBuffer(A)}));
  EXPECT_FLOAT_EQ(Buffers[A].floatAt(0), 6.0f);
  EXPECT_FLOAT_EQ(Buffers[A].floatAt(1), 10.0f);
}

TEST_F(SemanticsTest, SpecialFloatsRoundTrip) {
  // NaN and infinity pass through loads/stores bit-correctly.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x];"
      "}",
      "f");
  unsigned In = makeBuffer(4);
  unsigned Out = makeBuffer(4);
  Buffers[In].setFloat(0, std::numeric_limits<float>::quiet_NaN());
  Buffers[In].setFloat(1, std::numeric_limits<float>::infinity());
  Buffers[In].setFloat(2, -0.0f);
  Buffers[In].setFloat(3, std::numeric_limits<float>::denorm_min());
  cantFail(run(F, {4, 1}, {4, 1},
               {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out)}));
  EXPECT_TRUE(std::isnan(Buffers[Out].floatAt(0)));
  EXPECT_TRUE(std::isinf(Buffers[Out].floatAt(1)));
  EXPECT_EQ(Buffers[Out].word(2), Buffers[In].word(2)); // -0.0 bits.
  EXPECT_EQ(Buffers[Out].word(3), Buffers[In].word(3));
}

TEST_F(SemanticsTest, NegativeIntDivisionTruncatesTowardZero) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  out[0] = -7 / 2; out[1] = -7 % 2;"
      "  out[2] = 7 / -2; out[3] = 7 % -2;"
      "}",
      "f");
  unsigned Out = makeBuffer(4);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(Buffers[Out].intAt(0), -3);
  EXPECT_EQ(Buffers[Out].intAt(1), -1);
  EXPECT_EQ(Buffers[Out].intAt(2), -3);
  EXPECT_EQ(Buffers[Out].intAt(3), 1);
}

TEST_F(SemanticsTest, TwoKernelsShareOneModule) {
  Expected<std::vector<ir::Function *>> Fns = pcl::compile(
      M, "kernel void a(global int* out) { out[0] = 1; }"
         "kernel void b(global int* out) { out[1] = 2; }");
  ASSERT_TRUE(static_cast<bool>(Fns));
  unsigned Out = makeBuffer(2);
  cantFail(run((*Fns)[0], {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  cantFail(run((*Fns)[1], {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(Buffers[Out].intAt(0), 1);
  EXPECT_EQ(Buffers[Out].intAt(1), 2);
}

TEST_F(SemanticsTest, PrivateStateIsPerItem) {
  // Each item accumulates into its own private array; no cross-talk.
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  int acc[4];"
      "  int l = get_global_id(0);"
      "  for (int i = 0; i < 4; i++) acc[i] = l * 10 + i;"
      "  int sum = 0;"
      "  for (int i = 0; i < 4; i++) sum += acc[i];"
      "  out[l] = sum;"
      "}",
      "f");
  unsigned Out = makeBuffer(8);
  cantFail(run(F, {8, 1}, {4, 1}, {KernelArg::makeBuffer(Out)}));
  for (int L = 0; L < 8; ++L)
    EXPECT_EQ(Buffers[Out].intAt(L), 4 * (L * 10) + 6) << L;
}

TEST_F(SemanticsTest, LocalArenaClearedBetweenLaunches) {
  ir::Function *F = compile(
      "kernel void f(global int* out, int v) {"
      "  local int t[4];"
      "  int l = get_local_id(0);"
      "  if (v > 0) t[l] = v;"
      "  barrier();"
      "  out[l] = t[l];"
      "}",
      "f");
  unsigned Out = makeBuffer(4);
  cantFail(run(F, {4, 1}, {4, 1},
               {KernelArg::makeBuffer(Out), KernelArg::makeInt(7)}));
  EXPECT_EQ(Buffers[Out].intAt(0), 7);
  // Second launch does not write t: it must read zeros, not stale 7s.
  cantFail(run(F, {4, 1}, {4, 1},
               {KernelArg::makeBuffer(Out), KernelArg::makeInt(0)}));
  EXPECT_EQ(Buffers[Out].intAt(0), 0);
}

TEST_F(SemanticsTest, OneDimensionalLaunch) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  out[get_global_id(0)] = get_global_id(1);"
      "}",
      "f");
  unsigned Out = makeBuffer(16);
  cantFail(run(F, {16, 1}, {8, 1}, {KernelArg::makeBuffer(Out)}));
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Buffers[Out].intAt(I), 0); // gid(1) == 0 in a 1-D launch.
}

TEST_F(SemanticsTest, WhileLoopWithComplexExit) {
  // Collatz steps for n=27 (known: 111 steps) -- exercises long-running
  // data-dependent control flow in a single item.
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  int n = 27;"
      "  int steps = 0;"
      "  while (n != 1) {"
      "    if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;"
      "    steps++;"
      "  }"
      "  out[0] = steps;"
      "}",
      "f");
  unsigned Out = makeBuffer(1);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(Buffers[Out].intAt(0), 111);
}

} // namespace
