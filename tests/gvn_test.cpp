//===- tests/gvn_test.cpp - Global value numbering unit tests ---------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"
#include "ir/GVN.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Builds `entry -> (then | else) -> join` with a data-dependent branch,
/// returning the four blocks. Arguments: out (mutable int buffer), in
/// (const int buffer), a, b (ints).
struct Diamond {
  Module M;
  Function *F = nullptr;
  Argument *Out = nullptr;
  Argument *In = nullptr;
  Argument *A = nullptr;
  Argument *B = nullptr;
  BasicBlock *Entry = nullptr;
  BasicBlock *Then = nullptr;
  BasicBlock *Else = nullptr;
  BasicBlock *Join = nullptr;

  Diamond() {
    F = M.createFunction("f");
    Out = F->addArgument(
        Type::pointerTo(ScalarKind::Int, AddressSpace::Global), "out",
        false);
    In = F->addArgument(
        Type::pointerTo(ScalarKind::Int, AddressSpace::Global), "in",
        true);
    A = F->addArgument(Type::intTy(), "a", false);
    B = F->addArgument(Type::intTy(), "b", false);
    Entry = F->createBlock("entry");
    Then = F->createBlock("then");
    Else = F->createBlock("else");
    Join = F->createBlock("join");
  }
};

/// Runs GVN on \p F and checks the result still verifies.
unsigned runGvn(Function &F) {
  DominatorTree DT = DominatorTree::compute(F);
  unsigned Changes = numberValuesGlobally(F, DT);
  Error E = verifyFunction(F);
  EXPECT_FALSE(E) << E.message();
  return Changes;
}

/// Stores \p V through a fresh gep of \p D.Out at \p Index (keeps values
/// alive without further sharing).
void storeOut(IRBuilder &B, Diamond &D, Value *V, int32_t Index) {
  B.createStore(V, B.createGep(D.Out, B.getInt(Index)));
}

TEST(GvnTest, LeaderReusedAcrossDominatedBlocks) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  Instruction *S1 = B.createAdd(D.A, D.B, "s");
  B.createCondBr(B.createCmp(Opcode::CmpLt, D.A, D.B), D.Then, D.Else);
  B.setInsertPoint(D.Then);
  Instruction *S2 = B.createAdd(D.A, D.B, "s");
  storeOut(B, D, S2, 0);
  B.createBr(D.Join);
  B.setInsertPoint(D.Else);
  Instruction *S3 = B.createAdd(D.A, D.B, "s");
  storeOut(B, D, S3, 1);
  B.createBr(D.Join);
  B.setInsertPoint(D.Join);
  Instruction *S4 = B.createAdd(D.A, D.B, "s");
  storeOut(B, D, S4, 2);
  B.createRet();

  // The entry copy dominates every block: all three duplicates fold.
  EXPECT_EQ(runGvn(*D.F), 3u);
  // Every store now stores the leader (the duplicates are left dead for
  // DCE).
  for (BasicBlock *BB : {D.Then, D.Else, D.Join})
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Store)
        EXPECT_EQ(I->operand(0), S1) << BB->name();
  // Idempotent: a second run finds nothing.
  EXPECT_EQ(runGvn(*D.F), 0u);
}

TEST(GvnTest, SiblingBlocksDoNotShareLeaders) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  B.createCondBr(B.createCmp(Opcode::CmpLt, D.A, D.B), D.Then, D.Else);
  B.setInsertPoint(D.Then);
  storeOut(B, D, B.createAdd(D.A, D.B, "s"), 0);
  B.createBr(D.Join);
  B.setInsertPoint(D.Else);
  // Identical expression, but neither branch dominates the other: the
  // then-leader must be out of scope here.
  storeOut(B, D, B.createAdd(D.A, D.B, "s"), 1);
  B.createBr(D.Join);
  B.setInsertPoint(D.Join);
  B.createRet();

  EXPECT_EQ(runGvn(*D.F), 0u);
}

TEST(GvnTest, CommutativeOperandsCanonicalize) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  Instruction *S1 = B.createAdd(D.A, D.B, "s");
  B.createCondBr(B.createCmp(Opcode::CmpLt, D.A, D.B), D.Then, D.Else);
  B.setInsertPoint(D.Then);
  storeOut(B, D, B.createAdd(D.B, D.A, "swapped"), 0); // b+a == a+b.
  storeOut(B, D, B.createSub(D.B, D.A, "noncomm"), 1); // b-a != a-b.
  B.createBr(D.Join);
  B.setInsertPoint(D.Else);
  storeOut(B, D, B.createSub(D.A, D.B, "sub"), 2);
  B.createBr(D.Join);
  B.setInsertPoint(D.Join);
  B.createRet();

  EXPECT_EQ(runGvn(*D.F), 1u);
  for (const auto &I : D.Then->instructions())
    if (I->opcode() == Opcode::Store && I->operand(0) == S1)
      return; // The swapped add was folded onto the leader.
  FAIL() << "commutative duplicate not merged";
}

TEST(GvnTest, IdenticalPhisInOneBlockMerge) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  B.createCondBr(B.createCmp(Opcode::CmpLt, D.A, D.B), D.Then, D.Else);
  B.setInsertPoint(D.Then);
  Instruction *V1 = B.createAdd(D.A, B.getInt(1), "v1");
  B.createBr(D.Join);
  B.setInsertPoint(D.Else);
  Instruction *V2 = B.createAdd(D.B, B.getInt(2), "v2");
  B.createBr(D.Join);
  B.setInsertPoint(D.Join);
  Instruction *P1 = B.createPhi(Type::intTy(), "p1");
  P1->addIncoming(V1, D.Then);
  P1->addIncoming(V2, D.Else);
  Instruction *P2 = B.createPhi(Type::intTy(), "p2");
  // Same per-edge values, inserted in the opposite order: still equal.
  P2->addIncoming(V2, D.Else);
  P2->addIncoming(V1, D.Then);
  Instruction *P3 = B.createPhi(Type::intTy(), "p3");
  // Crossed values: a genuinely different merge, must survive.
  P3->addIncoming(V2, D.Then);
  P3->addIncoming(V1, D.Else);
  storeOut(B, D, P1, 0);
  storeOut(B, D, P2, 1);
  storeOut(B, D, P3, 2);
  B.createRet();

  EXPECT_EQ(runGvn(*D.F), 1u); // P2 -> P1; P3 untouched.
  std::vector<Instruction *> Stores;
  for (const auto &I : D.Join->instructions())
    if (I->opcode() == Opcode::Store)
      Stores.push_back(I.get());
  ASSERT_EQ(Stores.size(), 3u);
  EXPECT_EQ(Stores[0]->operand(0), P1);
  EXPECT_EQ(Stores[1]->operand(0), P1);
  EXPECT_EQ(Stores[2]->operand(0), P3);
}

TEST(GvnTest, SingleIncomingPhisInDifferentBlocksStayPut) {
  // J1 and J2 each hold a phi with the same one incoming (value, block)
  // pair; merging them would let one block's phi be used where it does
  // not dominate. The per-block scope in the phi key forbids it.
  Module M;
  Function *F = M.createFunction("f");
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Int, AddressSpace::Global), "out",
      false);
  Argument *A = F->addArgument(Type::intTy(), "a", false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *J1 = F->createBlock("j1");
  BasicBlock *J2 = F->createBlock("j2");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createCondBr(B.createCmp(Opcode::CmpLt, A, B.getInt(0)), J1, J2);
  B.setInsertPoint(J1);
  Instruction *P1 = B.createPhi(Type::intTy(), "p");
  P1->addIncoming(A, Entry);
  B.createStore(P1, B.createGep(Out, B.getInt(0)));
  B.createRet();
  B.setInsertPoint(J2);
  Instruction *P2 = B.createPhi(Type::intTy(), "p");
  P2->addIncoming(A, Entry);
  B.createStore(P2, B.createGep(Out, B.getInt(1)));
  B.createRet();

  EXPECT_EQ(runGvn(*F), 0u);
}

TEST(GvnTest, ConstArgumentLoadsNumberAcrossBlocksAndBarriers) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  Instruction *G1 = B.createGep(D.In, D.A, "g");
  Instruction *L1 = B.createLoad(G1, "l");
  B.createCondBr(B.createCmp(Opcode::CmpLt, D.A, D.B), D.Then, D.Else);
  B.setInsertPoint(D.Then);
  // A barrier makes other work items' global writes visible -- but a
  // const buffer has no writers, so the load is still the same value.
  B.createCall(Builtin::Barrier, {});
  Instruction *G2 = B.createGep(D.In, D.A, "g");
  Instruction *L2 = B.createLoad(G2, "l");
  storeOut(B, D, L2, 0);
  B.createBr(D.Join);
  B.setInsertPoint(D.Else);
  B.createBr(D.Join);
  B.setInsertPoint(D.Join);
  B.createRet();

  // The gep pair and the load pair both fold.
  EXPECT_EQ(runGvn(*D.F), 2u);
  for (const auto &I : D.Then->instructions())
    if (I->opcode() == Opcode::Store)
      EXPECT_EQ(I->operand(0), L1);
}

TEST(GvnTest, MutableBufferLoadsAreNotNumbered) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  Instruction *G1 = B.createGep(D.Out, D.A, "g");
  Instruction *L1 = B.createLoad(G1, "l");
  storeOut(B, D, L1, 0); // out is written: its loads must not merge.
  B.createCondBr(B.createCmp(Opcode::CmpLt, D.A, D.B), D.Then, D.Else);
  B.setInsertPoint(D.Then);
  Instruction *G2 = B.createGep(D.Out, D.A, "g");
  Instruction *L2 = B.createLoad(G2, "l2");
  storeOut(B, D, L2, 1);
  B.createBr(D.Join);
  B.setInsertPoint(D.Else);
  B.createBr(D.Join);
  B.setInsertPoint(D.Join);
  B.createRet();

  // Only the gep (pure address arithmetic) folds; the loads stay.
  EXPECT_EQ(runGvn(*D.F), 1u);
  bool L2Survives = false;
  for (const auto &I : D.Then->instructions())
    L2Survives |= I.get() == L2;
  EXPECT_TRUE(L2Survives);
  for (const auto &I : D.Then->instructions())
    if (I->opcode() == Opcode::Store)
      EXPECT_EQ(I->operand(0), L2);
}

TEST(GvnTest, PrivateAllocaLoads) {
  // Loads are numbered by {pointer, memory-SSA clobbering access}: the
  // never-stored alloca's duplicate load merges (zero-filled arena,
  // live-on-entry clobber), and so does the stored alloca's -- its store
  // hits element 2 while the loads read element 0, and constant GEP
  // indices on the same alloca disambiguate, so the walk skips the store
  // and both loads share the live-on-entry clobber.
  Module M;
  Function *F = M.createFunction("f");
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Int, AddressSpace::Global), "out",
      false);
  Argument *A = F->addArgument(Type::intTy(), "a", false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  Instruction *Stored =
      B.createAlloca(ScalarKind::Int, 4, AddressSpace::Private, "st");
  Instruction *Clean =
      B.createAlloca(ScalarKind::Int, 4, AddressSpace::Private, "cl");
  B.createStore(A, B.createGep(Stored, B.getInt(2)));
  Instruction *G1 = B.createGep(Stored, B.getInt(0), "gs");
  Instruction *LS1 = B.createLoad(G1, "ls");
  Instruction *GC1 = B.createGep(Clean, B.getInt(1), "gc");
  Instruction *LC1 = B.createLoad(GC1, "lc");
  B.createBr(Next);
  B.setInsertPoint(Next);
  Instruction *LS2 = B.createLoad(G1, "ls2");
  Instruction *LC2 = B.createLoad(GC1, "lc2");
  B.createStore(LS1, B.createGep(Out, B.getInt(0)));
  B.createStore(LS2, B.createGep(Out, B.getInt(1)));
  B.createStore(LC1, B.createGep(Out, B.getInt(2)));
  B.createStore(LC2, B.createGep(Out, B.getInt(3)));
  B.createRet();

  // Two merges: LC2 onto LC1 and LS2 onto LS1.
  EXPECT_EQ(runGvn(*F), 2u);
  std::vector<Instruction *> Stores;
  for (const auto &I : Next->instructions())
    if (I->opcode() == Opcode::Store)
      Stores.push_back(I.get());
  ASSERT_EQ(Stores.size(), 4u);
  EXPECT_EQ(Stores[0]->operand(0), LS1);
  EXPECT_EQ(Stores[1]->operand(0), LS1); // LS2 merged onto LS1.
  EXPECT_EQ(Stores[2]->operand(0), LC1);
  EXPECT_EQ(Stores[3]->operand(0), LC1); // LC2 merged onto LC1.
  (void)LS2;
  (void)LC2;
}

TEST(GvnTest, OpaqueStoreDisqualifiesAllAllocaLoads) {
  // A store through a pointer select could target either alloca; no
  // alloca may be treated as immutable then. (The frontend never emits
  // pointer selects, but the verifier allows them.)
  Module M;
  Function *F = M.createFunction("f");
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Int, AddressSpace::Global), "out",
      false);
  Argument *A = F->addArgument(Type::intTy(), "a", false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  Instruction *PA =
      B.createAlloca(ScalarKind::Int, 1, AddressSpace::Private, "pa");
  Instruction *PB =
      B.createAlloca(ScalarKind::Int, 1, AddressSpace::Private, "pb");
  Instruction *Cond = B.createCmp(Opcode::CmpLt, A, B.getInt(0));
  Instruction *L1 = B.createLoad(PA, "l1");
  B.createStore(A, B.createSelect(Cond, PA, PB)); // May write pa.
  Instruction *L2 = B.createLoad(PA, "l2");
  B.createBr(Next);
  B.setInsertPoint(Next);
  B.createStore(L1, B.createGep(Out, B.getInt(0)));
  B.createStore(L2, B.createGep(Out, B.getInt(1)));
  B.createRet();

  EXPECT_EQ(runGvn(*F), 0u); // L2 must not merge onto L1.
}

} // namespace
