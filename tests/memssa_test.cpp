//===- tests/memssa_test.cpp - Memory SSA analysis tests --------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Pins the walk-based memory SSA (ir/MemorySSA.h): MemoryDef chains and
// reaching queries across barriers, MemoryPhi placement at joins,
// clobber conservatism for variable-indexed and opaque stores, the
// MemoryLoc alias rules, and the AnalysisManager caching contract (a
// repeated query hits the cache, any invalidation -- even CFG-preserving
// -- forces a fresh walk).
//
//===----------------------------------------------------------------------===//

#include "ir/AnalysisManager.h"
#include "ir/IRBuilder.h"
#include "ir/MemorySSA.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Fixture with a const input buffer, a mutable output buffer, an int
/// argument, and an open entry block.
class MemSSATest : public ::testing::Test {
protected:
  MemSSATest() : B(M) {
    F = M.createFunction("f");
    In = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "in",
        true);
    Out = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
        false);
    W = F->addArgument(Type::intTy(), "w", false);
    Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
  }

  /// Verifies \p F and computes its memory SSA.
  MemorySSA build() {
    Error E = verifyFunction(*F);
    EXPECT_FALSE(E) << E.message();
    DT = DominatorTree::compute(*F);
    DF = DominanceFrontier::compute(*F, DT);
    return MemorySSA::compute(*F, DT, DF);
  }

  Module M;
  Function *F = nullptr;
  Argument *In = nullptr;
  Argument *Out = nullptr;
  Argument *W = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B;
  DominatorTree DT;
  DominanceFrontier DF;
};

//===----------------------------------------------------------------------===//
// MemoryLoc alias rules
//===----------------------------------------------------------------------===//

TEST_F(MemSSATest, MemoryLocationResolvesGepChains) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 8, AddressSpace::Private, "a");
  Instruction *G1 = B.createGep(A, M.getInt(2), "g1");
  Instruction *G2 = B.createGep(G1, M.getInt(3), "g2");
  Instruction *GV = B.createGep(A, W, "gv");
  B.createRet();

  MemoryLoc Direct = memoryLocation(A);
  EXPECT_EQ(Direct.Root, A);
  EXPECT_TRUE(Direct.ConstIndex);
  EXPECT_EQ(Direct.Index, 0);

  MemoryLoc Nested = memoryLocation(G2); // Chain indices sum.
  EXPECT_EQ(Nested.Root, A);
  EXPECT_TRUE(Nested.ConstIndex);
  EXPECT_EQ(Nested.Index, 5);

  MemoryLoc Runtime = memoryLocation(GV);
  EXPECT_EQ(Runtime.Root, A);
  EXPECT_FALSE(Runtime.ConstIndex);
}

TEST_F(MemSSATest, AliasAndOverwriteRules) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  Instruction *C =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "c");
  Instruction *GV = B.createGep(A, W, "gv");
  B.createRet();

  MemoryLoc A0 = memoryLocation(A);
  MemoryLoc AVar = memoryLocation(GV);
  MemoryLoc C0 = memoryLocation(C);
  MemoryLoc InLoc = memoryLocation(In);
  MemoryLoc OutLoc = memoryLocation(Out);

  // Same root: constant indices disambiguate, variable aliases all.
  EXPECT_FALSE(mayAliasLocations(A0, C0));  // Distinct allocas.
  EXPECT_TRUE(mayAliasLocations(A0, AVar)); // Variable index.
  EXPECT_FALSE(mayAliasLocations(A0, InLoc));  // Alloca vs argument.
  EXPECT_TRUE(mayAliasLocations(InLoc, OutLoc)); // Args may double-bind.

  // mustOverwrite requires same root and equal constant indices.
  EXPECT_TRUE(mustOverwrite(A0, A0));
  EXPECT_FALSE(mustOverwrite(AVar, A0)); // Variable kill never proves.
  EXPECT_FALSE(mustOverwrite(A0, AVar)); // Variable victim never proved.
  EXPECT_FALSE(mustOverwrite(A0, C0));
}

//===----------------------------------------------------------------------===//
// Def chains, barriers, clobber walks
//===----------------------------------------------------------------------===//

TEST_F(MemSSATest, StraightLineDefChain) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  Instruction *S1 = B.createStore(M.getFloat(1.0f), A);
  Instruction *S2 = B.createStore(M.getFloat(2.0f), A);
  Instruction *L = B.createLoad(A, "l");
  B.createStore(L, B.createGep(Out, M.getInt(0)));
  B.createRet();

  MemorySSA MSSA = build();
  const MemorySSA::Access *D1 = MSSA.defFor(S1);
  const MemorySSA::Access *D2 = MSSA.defFor(S2);
  ASSERT_NE(D1, nullptr);
  ASSERT_NE(D2, nullptr);
  EXPECT_EQ(D1->Defining, MSSA.liveOnEntry());
  EXPECT_EQ(D2->Defining, D1);
  // The load observes the state after S2, and S2 is its clobber.
  EXPECT_EQ(MSSA.reachingAccess(L), D2);
  EXPECT_EQ(MSSA.clobberingAccess(L), D2);
  // Downward: D1's def-users contain D2; D2's load-users contain L.
  ASSERT_EQ(D1->DefUsers.size(), 1u);
  EXPECT_EQ(D1->DefUsers[0], D2);
  ASSERT_GE(D2->LoadUsers.size(), 1u);
  EXPECT_EQ(D2->LoadUsers[0], L);
}

TEST_F(MemSSATest, BarrierClobbersLocalAndArgsButNotPrivate) {
  Instruction *P =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "p");
  Instruction *T =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Local, "t");
  Instruction *SP = B.createStore(M.getFloat(1.0f), P);
  Instruction *G0 = B.createGep(T, M.getInt(0), "g0");
  B.createStore(M.getFloat(2.0f), G0);
  Instruction *Bar = B.createCall(Builtin::Barrier, {}, "");
  Instruction *LP = B.createLoad(P, "lp");   // Private: barrier-immune.
  Instruction *LT = B.createLoad(G0, "lt");  // Local: barrier publishes.
  Instruction *LI =
      B.createLoad(B.createGep(In, M.getInt(0)), "li"); // Const arg.
  B.createStore(B.createAdd(LP, B.createAdd(LT, LI)),
                B.createGep(Out, M.getInt(0)));
  B.createRet();

  MemorySSA MSSA = build();
  // The barrier is a def on top of the local store's state.
  const MemorySSA::Access *DBar = MSSA.defFor(Bar);
  ASSERT_NE(DBar, nullptr);
  EXPECT_EQ(DBar->Kind, MemorySSA::AccessKind::Def);
  // All three loads observe the post-barrier state...
  EXPECT_EQ(MSSA.reachingAccess(LP), DBar);
  EXPECT_EQ(MSSA.reachingAccess(LT), DBar);
  // ...but only the local load is actually clobbered by the barrier; the
  // private load's walk skips it (and the intervening local store) back
  // to its own store, and the const-arg load short-circuits to entry.
  EXPECT_EQ(MSSA.clobberingAccess(LP), MSSA.defFor(SP));
  EXPECT_EQ(MSSA.clobberingAccess(LT), DBar);
  EXPECT_EQ(MSSA.clobberingAccess(LI), MSSA.liveOnEntry());
}

TEST_F(MemSSATest, VariableIndexStoreClobbersWholeRoot) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  Instruction *C =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "c");
  B.createStore(M.getFloat(1.0f), B.createGep(A, M.getInt(2)));
  Instruction *SV =
      B.createStore(M.getFloat(2.0f), B.createGep(A, W, "gv"));
  Instruction *LA0 = B.createLoad(B.createGep(A, M.getInt(0), "ga0"), "la");
  Instruction *LC0 = B.createLoad(B.createGep(C, M.getInt(0), "gc0"), "lc");
  B.createStore(B.createAdd(LA0, LC0), B.createGep(Out, M.getInt(0)));
  B.createRet();

  MemorySSA MSSA = build();
  // a[0]'s walk stops at the variable-indexed store (may be element 0),
  // having skipped nothing: the a[2] store below it is irrelevant.
  EXPECT_EQ(MSSA.clobberingAccess(LA0), MSSA.defFor(SV));
  // c is a different object: both stores skip, never-stored root
  // short-circuits to entry.
  EXPECT_EQ(MSSA.clobberingAccess(LC0), MSSA.liveOnEntry());
}

TEST_F(MemSSATest, ConstIndexSiblingStoreIsSkipped) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  Instruction *S0 =
      B.createStore(M.getFloat(1.0f), B.createGep(A, M.getInt(0), "g0"));
  B.createStore(M.getFloat(2.0f), B.createGep(A, M.getInt(1), "g1"));
  Instruction *L0 = B.createLoad(B.createGep(A, M.getInt(0), "g0b"), "l0");
  B.createStore(L0, B.createGep(Out, M.getInt(0)));
  B.createRet();

  MemorySSA MSSA = build();
  // The a[1] store sits between the a[0] store and the a[0] load; the
  // walk disambiguates by constant index and lands on the a[0] store.
  EXPECT_EQ(MSSA.clobberingAccess(L0), MSSA.defFor(S0));
}

TEST_F(MemSSATest, MemoryPhiAtJoin) {
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  Instruction *Cond = B.createCmp(Opcode::CmpLt, W, M.getInt(0), "c");
  B.createCondBr(Cond, Then, Else);
  B.setInsertPoint(Then);
  Instruction *ST = B.createStore(M.getFloat(1.0f), A);
  B.createBr(Join);
  B.setInsertPoint(Else);
  B.createBr(Join);
  B.setInsertPoint(Join);
  Instruction *L = B.createLoad(A, "l");
  B.createStore(L, B.createGep(Out, M.getInt(0)));
  B.createRet();

  MemorySSA MSSA = build();
  // One store on one arm: the join needs a MemoryPhi merging the store's
  // state with live-on-entry; the load observes (and is clobbered at)
  // that phi -- the walk must not cross it for a stored-to root.
  const MemorySSA::Access *Phi = MSSA.phiFor(Join);
  ASSERT_NE(Phi, nullptr);
  EXPECT_EQ(Phi->Kind, MemorySSA::AccessKind::Phi);
  ASSERT_EQ(Phi->Incoming.size(), 2u);
  const MemorySSA::Access *DT_ = MSSA.defFor(ST);
  bool SawStore = false, SawEntry = false;
  for (const MemorySSA::Access *Inc : Phi->Incoming) {
    SawStore |= Inc == DT_;
    SawEntry |= Inc == MSSA.liveOnEntry();
  }
  EXPECT_TRUE(SawStore);
  EXPECT_TRUE(SawEntry);
  EXPECT_EQ(MSSA.reachingAccess(L), Phi);
  EXPECT_EQ(MSSA.clobberingAccess(L), Phi);
  EXPECT_EQ(MSSA.phiFor(Entry), nullptr);
  EXPECT_EQ(MSSA.phiFor(Then), nullptr);
}

TEST_F(MemSSATest, NoStoresMeansOneAccess) {
  Instruction *L =
      B.createLoad(B.createGep(In, M.getInt(0), "g"), "l");
  (void)L;
  B.createRet();
  MemorySSA MSSA = build();
  EXPECT_EQ(MSSA.numAccesses(), 1u); // LiveOnEntry only.
  EXPECT_EQ(MSSA.reachingAccess(L), MSSA.liveOnEntry());
  EXPECT_EQ(MSSA.clobberingAccess(L), MSSA.liveOnEntry());
  EXPECT_FALSE(MSSA.hasOpaqueStore());
}

TEST_F(MemSSATest, OpaqueStoreClobbersEverything) {
  Instruction *PA =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "pa");
  Instruction *PB =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "pb");
  Instruction *SA = B.createStore(M.getFloat(1.0f), PA);
  (void)SA;
  Instruction *Cond = B.createCmp(Opcode::CmpLt, W, M.getInt(0), "c");
  Instruction *Sel = B.createSelect(Cond, PA, PB, "sel");
  Instruction *SO = B.createStore(M.getFloat(2.0f), Sel);
  Instruction *LA = B.createLoad(PA, "la");
  Instruction *LIn = B.createLoad(B.createGep(In, M.getInt(0)), "li");
  B.createStore(B.createAdd(LA, LIn), B.createGep(Out, M.getInt(0)));
  B.createRet();

  MemorySSA MSSA = build();
  EXPECT_TRUE(MSSA.hasOpaqueStore());
  // The select-store may write pa; and with an opaque store in the
  // function even the const argument loses its immutability fast path.
  EXPECT_EQ(MSSA.clobberingAccess(LA), MSSA.defFor(SO));
  EXPECT_EQ(MSSA.clobberingAccess(LIn), MSSA.defFor(SO));
}

//===----------------------------------------------------------------------===//
// AnalysisManager caching and invalidation
//===----------------------------------------------------------------------===//

TEST(MemSSAAnalysisManagerTest, RepeatedQueryHitsCache) {
  rt::Session Ctx;
  Expected<Function *> F = pcl::compileKernel(Ctx.module(), R"(
kernel void k(global const float* in, global float* out, int w) {
  float a[2];
  a[0] = in[get_global_id(0)];
  a[1] = a[0] * 2.0;
  out[get_global_id(0)] = a[1];
}
)",
                                              "k");
  ASSERT_TRUE(static_cast<bool>(F)) << F.error().message();
  AnalysisManager AM;
  const MemorySSA &M1 = AM.getMemorySSA(**F);
  const MemorySSA &M2 = AM.getMemorySSA(**F);
  EXPECT_EQ(&M1, &M2);
  EXPECT_EQ(AM.counters().MemSSAComputes, 1u);
  EXPECT_EQ(AM.counters().MemSSAHits, 1u);
}

TEST(MemSSAAnalysisManagerTest, CfgPreservingInvalidationStillDrops) {
  rt::Session Ctx;
  Expected<Function *> F = pcl::compileKernel(Ctx.module(), R"(
kernel void k(global const float* in, global float* out, int w) {
  out[get_global_id(0)] = in[get_global_id(0)];
}
)",
                                              "k");
  ASSERT_TRUE(static_cast<bool>(F)) << F.error().message();
  AnalysisManager AM;
  AM.getDominatorTree(**F);
  AM.getMemorySSA(**F);
  EXPECT_EQ(AM.counters().MemSSAComputes, 1u);
  // Memory SSA is instruction-sensitive: a CFG-preserving mutation keeps
  // the dominator tree but must still drop the memory SSA.
  AM.invalidate(**F, /*CFGPreserved=*/true);
  AM.getMemorySSA(**F);
  EXPECT_EQ(AM.counters().MemSSAComputes, 2u);
  EXPECT_EQ(AM.counters().DomTreeComputes, 1u);
}

TEST(MemSSAAnalysisManagerTest, MutationYieldsFreshWalk) {
  // Build by hand so the IR can be mutated directly between queries.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  F->addArgument(Type::pointerTo(ScalarKind::Float, AddressSpace::Global),
                 "out", false);
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  Instruction *S1 = B.createStore(M.getFloat(1.0f), A);
  B.createStore(M.getFloat(2.0f), A);
  B.createRet();
  ASSERT_FALSE(static_cast<bool>(verifyFunction(*F)));

  AnalysisManager AM;
  size_t Before = AM.getMemorySSA(*F).numAccesses();
  EXPECT_EQ(Before, 3u); // LiveOnEntry + two defs.

  // Erase the first store, tell the manager, and expect the fresh walk
  // to see one def fewer.
  auto &Instrs = Entry->mutableInstructions();
  for (auto It = Instrs.begin(); It != Instrs.end(); ++It)
    if (It->get() == S1) {
      Instrs.erase(It);
      break;
    }
  AM.invalidate(*F, /*CFGPreserved=*/true);
  EXPECT_EQ(AM.getMemorySSA(*F).numAccesses(), 2u);
  EXPECT_EQ(AM.counters().MemSSAComputes, 2u);
}

} // namespace
