//===- tests/unroll_test.cpp - Constant-trip loop unrolling unit tests ------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"
#include "ir/PassManager.h"
#include "ir/Passes.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Compiles the first kernel of \p Source into \p S, running \p Spec as
/// the post-verify pipeline with verify-each on.
rt::Kernel compileWith(rt::Session &S, const char *Source,
                       const std::string &Spec) {
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = Spec;
  Opts.VerifyEach = true;
  Expected<std::vector<rt::Kernel>> Ks = S.compileAll(Source, Opts);
  EXPECT_TRUE(static_cast<bool>(Ks)) << Ks.error().message();
  return Ks->front();
}

bool hasBackEdge(const Function &F) {
  DominatorTree DT = DominatorTree::compute(F);
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : successors(BB.get()))
      if (DT.isReachable(BB.get()) && DT.dominates(Succ, BB.get()))
        return true;
  return false;
}

size_t phiCount(const Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    N += BB->firstNonPhiIndex();
  return N;
}

/// Runs a 16x16 launch of kernel(in, out, w, h) and returns the output.
std::vector<float> runKernel(rt::Session &S, const rt::Kernel &K) {
  constexpr unsigned N = 16;
  std::vector<float> In(N * N);
  for (unsigned I = 0; I < In.size(); ++I)
    In[I] = 0.25f * static_cast<float>(I % 17) - 1.0f;
  unsigned InBuf = S.createBufferFrom(In);
  unsigned OutBuf = S.createBuffer(In.size());
  Expected<sim::SimReport> R =
      S.launch(K, {N, N}, {8, 8},
               {rt::arg::buffer(InBuf), rt::arg::buffer(OutBuf),
                rt::arg::i32(N), rt::arg::i32(N)});
  EXPECT_TRUE(static_cast<bool>(R)) << R.error().message();
  return S.buffer(OutBuf).downloadFloats();
}

/// The two pipelines' outputs must agree bit for bit.
void expectSameOutput(const char *Source, const std::string &SpecA,
                      const std::string &SpecB) {
  rt::Session SA, SB;
  std::vector<float> A = runKernel(SA, compileWith(SA, Source, SpecA));
  std::vector<float> B = runKernel(SB, compileWith(SB, Source, SpecB));
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(std::memcmp(A.data(), B.data(), A.size() * sizeof(float)), 0)
      << "'" << SpecA << "' vs '" << SpecB << "'";
}

const char *WindowKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int i = 0; i < 4; i++) {
    acc += in[clamp(y + i - 1, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)";

const char *NestedKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int ky = 0; ky < 3; ky++) {
    for (int kx = 0; kx < 3; kx++) {
      acc += in[clamp(y + ky - 1, 0, h - 1) * w
                + clamp(x + kx - 1, 0, w - 1)];
    }
  }
  out[y * w + x] = acc / 9.0;
}
)";

TEST(UnrollTest, FullyUnrollsConstantTripLoop) {
  rt::Session S;
  rt::Kernel K = compileWith(S, WindowKernel, "mem2reg,unroll");
  EXPECT_FALSE(hasBackEdge(*K.F));
  EXPECT_EQ(phiCount(*K.F), 0u); // Induction + accumulator collapsed.
  // Straight-line chains merged: the whole kernel is one block.
  EXPECT_EQ(K.F->numBlocks(), 1u);
}

TEST(UnrollTest, DownwardCountingAndStridedLoopsUnroll) {
  const char *Down = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int i = 3; i >= 0; i = i - 1) {
    acc += in[clamp(y + i, 0, h - 1) * w + x];
  }
  for (int j = 0; j < 6; j = j + 2) {
    acc += in[y * w + clamp(x + j, 0, w - 1)];
  }
  out[y * w + x] = acc;
}
)";
  rt::Session S;
  rt::Kernel K = compileWith(S, Down, "mem2reg,unroll");
  EXPECT_FALSE(hasBackEdge(*K.F));
  EXPECT_EQ(K.F->numBlocks(), 1u);
  expectSameOutput(Down, "", "mem2reg,unroll");
}

TEST(UnrollTest, TripCountMustBeConstant) {
  const char *Dynamic = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int i = 0; i < w; i++) {
    acc += in[y * w + clamp(i, 0, w - 1)];
  }
  out[y * w + x] = acc;
}
)";
  rt::Session S;
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = "mem2reg,unroll";
  Opts.VerifyEach = true;
  PipelineStats Stats;
  Opts.Stats = &Stats;
  Expected<std::vector<rt::Kernel>> Ks = S.compileAll(Dynamic, Opts);
  ASSERT_TRUE(static_cast<bool>(Ks)) << Ks.error().message();
  EXPECT_EQ(Stats.unrolled(), 0u); // Bound is an argument: refused.
  EXPECT_TRUE(hasBackEdge(*Ks->front().F));
}

TEST(UnrollTest, BudgetRefusesOversizedLoops) {
  rt::Session S;
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = "mem2reg,unroll(8)"; // 4 trips x loop size >> 8.
  Opts.VerifyEach = true;
  PipelineStats Stats;
  Opts.Stats = &Stats;
  Expected<std::vector<rt::Kernel>> Ks = S.compileAll(WindowKernel, Opts);
  ASSERT_TRUE(static_cast<bool>(Ks)) << Ks.error().message();
  EXPECT_EQ(Stats.unrolled(), 0u);
  EXPECT_TRUE(hasBackEdge(*Ks->front().F));
  // The same loop within budget does unroll.
  rt::Session S2;
  rt::Kernel K2 = compileWith(S2, WindowKernel, "mem2reg,unroll(256)");
  EXPECT_FALSE(hasBackEdge(*K2.F));
}

TEST(UnrollTest, NestedWindowLoopsFlattenInnerFirst) {
  rt::Session S;
  rt::Kernel K = compileWith(S, NestedKernel, defaultPipelineSpec());
  EXPECT_FALSE(hasBackEdge(*K.F));
  EXPECT_EQ(K.F->numBlocks(), 1u);
  EXPECT_EQ(phiCount(*K.F), 0u);
}

TEST(UnrollTest, PostUnrollPipelineFoldsInductionArithmetic) {
  // After unroll, the default fixpoint group folds every induction use:
  // no comparison or integer constant arithmetic may survive, and one
  // simulated launch must execute strictly fewer ALU ops than the rolled
  // form (the loop overhead -- compare, branch, increment -- is gone).
  rt::Session S1, S2;
  rt::Kernel Rolled =
      compileWith(S1, WindowKernel,
                  "mem2reg,fixpoint(simplify,gvn,cse,memopt-forward,licm,"
                  "memopt-dse,dce)");
  rt::Kernel Unrolled = compileWith(S2, WindowKernel,
                                    defaultPipelineSpec());
  for (const auto &BB : Unrolled.F->blocks())
    for (const auto &I : BB->instructions()) {
      EXPECT_NE(I->opcode(), Opcode::CmpLt); // The trip test is gone.
      if (I->opcode() == Opcode::Add || I->opcode() == Opcode::Mul)
        EXPECT_FALSE(isa<ConstantInt>(I->operand(0)) &&
                     isa<ConstantInt>(I->operand(1)))
            << "unfolded constant arithmetic survived";
    }
  uint64_t RolledAlu = 0, UnrolledAlu = 0;
  {
    unsigned In = S1.createBuffer(16 * 16), Out = S1.createBuffer(16 * 16);
    RolledAlu = cantFail(S1.launch(Rolled, {16, 16}, {8, 8},
                                   {rt::arg::buffer(In),
                                    rt::arg::buffer(Out), rt::arg::i32(16),
                                    rt::arg::i32(16)}))
                    .Totals.AluOps;
  }
  {
    unsigned In = S2.createBuffer(16 * 16), Out = S2.createBuffer(16 * 16);
    UnrolledAlu = cantFail(S2.launch(Unrolled, {16, 16}, {8, 8},
                                     {rt::arg::buffer(In),
                                      rt::arg::buffer(Out),
                                      rt::arg::i32(16), rt::arg::i32(16)}))
                      .Totals.AluOps;
  }
  EXPECT_LT(UnrolledAlu, RolledAlu);
}

TEST(UnrollTest, ZeroTripLoopDisappears) {
  const char *ZeroTrip = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = in[y * w + x];
  for (int i = 0; i < 0; i++) {
    acc += in[clamp(y + i, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)";
  rt::Session S;
  rt::Kernel K = compileWith(S, ZeroTrip, "mem2reg,unroll");
  EXPECT_FALSE(hasBackEdge(*K.F));
  EXPECT_EQ(K.F->numBlocks(), 1u);
  expectSameOutput(ZeroTrip, "", "mem2reg,unroll");
}

TEST(UnrollTest, UnrolledOutputsBitIdentical) {
  for (const char *Source : {WindowKernel, NestedKernel}) {
    expectSameOutput(Source, "", "mem2reg,unroll");
    expectSameOutput(Source, "", defaultPipelineSpec());
    expectSameOutput(Source, "mem2reg", "mem2reg,unroll(64)");
  }
}

} // namespace
