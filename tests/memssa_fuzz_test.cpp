//===- tests/memssa_fuzz_test.cpp - Differential kernel fuzzer --------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Randomized differential oracle for the memory-SSA optimization stack:
// a seeded generator emits random PCL kernels exercising exactly the
// shapes sroa / widened mem2reg / memory-SSA GVN / region-local DSE /
// LICM reason about -- private scalars, constant- and variable-indexed
// private arrays, local-memory phases split by barriers, divergent
// stores, constant-trip loops -- and every kernel is compiled twice
// (empty pipeline vs the full default pipeline, verified after every
// pass) and run under all three execution tiers. All six runs must
// agree byte for byte on the output buffer and exactly on fault
// behavior. A run of >= 200 seeds is cheap (tiny NDRanges) and every
// failure message carries the seed and the generated source, so any
// miscompile reproduces from the log alone.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Interpreter.h"
#include "ir/Lint.h"
#include "ir/PassManager.h"
#include "pcl/Compiler.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace kperf;
using namespace kperf::sim;

namespace {

constexpr int GlobalItems = 64; ///< One row of 4 work groups of 16.
constexpr int GroupItems = 16;
constexpr int InputSize = 64;

/// Generates one random kernel. All global accesses are clamped in
/// bounds; private/local indices are clamped to their array's extent
/// (except the deliberate fault payload, see below); divisions use
/// nonzero constants only; sqrt takes fabs'd operands -- so baseline
/// and optimized builds can only diverge through a compiler bug, never
/// through genuinely undefined inputs. Roughly one seed in eight
/// additionally plants a guaranteed out-of-bounds private store behind
/// a divergent branch: both builds must then fault identically (DSE and
/// sroa must refuse to touch it).
class KernelGenerator {
public:
  explicit KernelGenerator(uint64_t Seed) : R(Seed) {}

  /// True if the last generate() planted the out-of-bounds payload (the
  /// static-lint companion test expects an error-severity diagnostic
  /// exactly for these seeds).
  bool plantedFault() const { return Planted; }

  std::string generate() {
    Stmts.clear();
    Floats = {"acc"};
    Arrays.clear();
    NextId = 0;
    Planted = false;

    // One or two private arrays to fuzz sroa/DSE/GVN against.
    unsigned NumArrays = 1 + R.below(2);
    for (unsigned I = 0; I < NumArrays; ++I)
      declareArray();

    unsigned NumStmts = 6 + R.below(7);
    for (unsigned I = 0; I < NumStmts; ++I)
      emitStatement();

    if (R.below(8) == 0 && !Arrays.empty()) {
      // Fault payload: a constant index provably past the end, behind a
      // divergent branch. sroa must refuse the array, DSE must keep the
      // store, and every build/tier must fault the same way. The offset
      // must clear the *whole* private segment, not just this array --
      // the simulator bounds-checks the per-item segment, and a near-OOB
      // write can silently land in a neighboring alloca in the baseline
      // build while faulting in the slimmer optimized one.
      const Arr &A = Arrays[R.below(Arrays.size())];
      Stmts.push_back("if (x == " + std::to_string(R.below(4)) + ") { " +
                      A.Name + "[" + std::to_string(A.Size + 4096) +
                      "] = 1.0; }");
      Planted = true;
    }

    std::string Src;
    Src += "kernel void k(global const float* in, global float* out, "
           "int n) {\n";
    Src += "  int x = get_global_id(0);\n";
    Src += "  int lx = get_local_id(0);\n";
    Src += "  float acc = 0.0;\n";
    for (const std::string &S : Stmts)
      Src += "  " + S + "\n";
    Src += "  out[x] = acc;\n";
    Src += "}\n";
    return Src;
  }

private:
  struct Arr {
    std::string Name;
    int Size;
  };

  std::string fresh(const char *Prefix) {
    return Prefix + std::to_string(NextId++);
  }

  std::string intLit(int Lo, int Hi) {
    return std::to_string(Lo + static_cast<int>(R.below(Hi - Lo + 1)));
  }

  std::string floatLit() {
    return std::to_string(static_cast<int>(R.below(4))) + "." +
           std::to_string(static_cast<int>(R.below(10)));
  }

  /// A well-defined int expression over x, lx, n, and literals.
  std::string intExpr(unsigned Depth) {
    if (Depth == 0)
      return intAtom();
    switch (R.below(6)) {
    case 0:
      return "(" + intExpr(Depth - 1) + " + " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " - " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + intExpr(Depth - 1) + " * " + intLit(1, 3) + ")";
    case 3:
      return "min(" + intExpr(Depth - 1) + ", " + intExpr(Depth - 1) + ")";
    case 4:
      return "max(" + intExpr(Depth - 1) + ", " + intExpr(Depth - 1) + ")";
    default:
      return intAtom();
    }
  }

  std::string intAtom() {
    switch (R.below(4)) {
    case 0:
      return "x";
    case 1:
      return "lx";
    case 2:
      return "n";
    default:
      return intLit(0, InputSize - 1);
    }
  }

  /// A clamped-in-bounds index expression for an extent of \p Bound.
  std::string index(int Bound) {
    return "clamp(" + intExpr(1 + R.below(2)) + ", 0, " +
           std::to_string(Bound - 1) + ")";
  }

  /// A well-defined float expression over the in-scope values.
  std::string floatExpr(unsigned Depth) {
    if (Depth == 0)
      return floatAtom();
    switch (R.below(8)) {
    case 0:
      return "(" + floatExpr(Depth - 1) + " + " + floatExpr(Depth - 1) +
             ")";
    case 1:
      return "(" + floatExpr(Depth - 1) + " - " + floatExpr(Depth - 1) +
             ")";
    case 2:
      return "(" + floatExpr(Depth - 1) + " * " + floatExpr(Depth - 1) +
             ")";
    case 3:
      return "min(" + floatExpr(Depth - 1) + ", " + floatExpr(Depth - 1) +
             ")";
    case 4:
      return "max(" + floatExpr(Depth - 1) + ", " + floatExpr(Depth - 1) +
             ")";
    case 5:
      return "clamp(" + floatExpr(Depth - 1) + ", 0.0, 8.0)";
    case 6:
      return "sqrt(fabs(" + floatExpr(Depth - 1) + "))";
    default:
      return floatAtom();
    }
  }

  std::string floatAtom() {
    switch (R.below(5)) {
    case 0:
      return floatLit();
    case 1:
      return "in[" + index(InputSize) + "]";
    case 2:
      if (!Arrays.empty()) {
        const Arr &A = Arrays[R.below(Arrays.size())];
        // Constant or runtime element read.
        if (R.below(2) == 0)
          return A.Name + "[" + intLit(0, A.Size - 1) + "]";
        return A.Name + "[" + index(A.Size) + "]";
      }
      return floatLit();
    case 3:
      return "(float)(" + intExpr(1) + ")";
    default:
      return Floats[R.below(Floats.size())];
    }
  }

  void declareArray() {
    static const int Sizes[] = {2, 3, 4, 8};
    Arr A{fresh("a"), Sizes[R.below(4)]};
    Stmts.push_back("float " + A.Name + "[" + std::to_string(A.Size) +
                    "];");
    // Seed a few elements so uninitialized (zero-filled) reads are the
    // exception, not the rule.
    for (int E = 0; E < A.Size && E < 3; ++E)
      Stmts.push_back(A.Name + "[" + std::to_string(E) +
                      "] = " + floatExpr(1) + ";");
    Arrays.push_back(A);
  }

  std::string arrayStore() {
    const Arr &A = Arrays[R.below(Arrays.size())];
    std::string Idx = R.below(2) == 0 ? intLit(0, A.Size - 1)
                                      : index(A.Size);
    return A.Name + "[" + Idx + "] = " + floatExpr(2) + ";";
  }

  void emitStatement() {
    switch (R.below(8)) {
    case 0: { // New scalar.
      std::string N = fresh("f");
      Stmts.push_back("float " + N + " = " + floatExpr(2) + ";");
      Floats.push_back(N);
      break;
    }
    case 1: // Accumulate.
      Stmts.push_back("acc = acc + " + floatExpr(2) + ";");
      break;
    case 2: // Array store (constant or runtime index).
      Stmts.push_back(arrayStore());
      break;
    case 3: { // Divergent store or scalar assignment.
      std::string Cond = intExpr(1) + " < " + intExpr(1);
      std::string Body = R.below(2) == 0
                             ? arrayStore()
                             : Floats[R.below(Floats.size())] + " = " +
                                   floatExpr(1) + ";";
      Stmts.push_back("if (" + Cond + ") { " + Body + " }");
      break;
    }
    case 4: { // Local-memory phase: write own slot, barrier, read a
              // shuffled slot. A fresh tile per phase keeps the phase
              // race-free without a trailing barrier.
      std::string T = fresh("t");
      Stmts.push_back("local float " + T + "[" +
                      std::to_string(GroupItems) + "];");
      Stmts.push_back(T + "[lx] = " + floatExpr(1) + ";");
      Stmts.push_back("barrier();");
      Stmts.push_back("acc = acc + " + T + "[clamp(" +
                      std::to_string(GroupItems - 1) + " - lx, 0, " +
                      std::to_string(GroupItems - 1) + ")];");
      break;
    }
    case 5: { // Constant-trip loader loop over an array prefix.
      const Arr &A = Arrays[R.below(Arrays.size())];
      int Trip = 2 + static_cast<int>(R.below(A.Size - 1));
      std::string I = fresh("i");
      Stmts.push_back("for (int " + I + " = 0; " + I + " < " +
                      std::to_string(Trip) + "; " + I + "++) { " + A.Name +
                      "[" + I + "] = in[clamp(x + " + I + ", 0, " +
                      std::to_string(InputSize - 1) + ")]; }");
      break;
    }
    case 6: { // Constant-trip reduce loop over an array prefix.
      const Arr &A = Arrays[R.below(Arrays.size())];
      int Trip = 2 + static_cast<int>(R.below(A.Size - 1));
      std::string I = fresh("i");
      Stmts.push_back("for (int " + I + " = 0; " + I + " < " +
                      std::to_string(Trip) + "; " + I + "++) { acc = acc + " +
                      A.Name + "[" + I + "] * 0.5; }");
      break;
    }
    default: // Overwriting scalar assignment (DSE food).
      Stmts.push_back(Floats[R.below(Floats.size())] + " = " +
                      floatExpr(2) + ";");
      break;
    }
  }

  Rng R;
  bool Planted = false;
  std::vector<std::string> Stmts;
  std::vector<std::string> Floats;
  std::vector<Arr> Arrays;
  unsigned NextId = 0;
};

struct TierRun {
  bool Ok = false;
  std::string Fault;
  std::vector<float> Output;
};

/// Compiles \p Source under \p Spec and runs it under every tier over
/// identical buffers. Returns one entry per tier, or nullopt-style empty
/// on compile failure (reported by the caller via \p CompileError).
std::vector<TierRun> compileAndRunAllTiers(const std::string &Source,
                                           const std::string &Spec,
                                           const std::vector<float> &Input,
                                           std::string &CompileError) {
  ir::Module M;
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = Spec;
  Opts.VerifyEach = true;
  Expected<ir::Function *> F = pcl::compileKernel(M, Source, "k", Opts);
  if (!F) {
    CompileError = F.error().message();
    return {};
  }
  DeviceConfig Device;
  const ExecTier Tiers[] = {ExecTier::Tree, ExecTier::Bytecode,
                            ExecTier::Batched};
  std::vector<TierRun> Runs;
  for (ExecTier Tier : Tiers) {
    BufferData InBuf, OutBuf(GlobalItems);
    InBuf.uploadFloats(Input);
    std::vector<BufferData *> Bank = {&InBuf, &OutBuf};
    std::vector<KernelArg> Args = {KernelArg::makeBuffer(0),
                                   KernelArg::makeBuffer(1),
                                   KernelArg::makeInt(InputSize)};
    LaunchOptions LOpts;
    LOpts.Tier = Tier;
    Expected<SimReport> Rep = launchKernel(
        **F, {GlobalItems, 1}, {GroupItems, 1}, Args, Bank, Device, LOpts);
    TierRun R;
    R.Ok = static_cast<bool>(Rep);
    if (!Rep)
      R.Fault = Rep.error().message();
    R.Output = OutBuf.downloadFloats();
    Runs.push_back(std::move(R));
  }
  return Runs;
}

bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

/// One differential trial: baseline (empty pipeline) vs the full default
/// pipeline, three tiers each.
void runSeed(uint64_t Seed) {
  KernelGenerator G(Seed);
  std::string Source = G.generate();
  SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);

  Rng InputRng(Seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<float> Input(InputSize);
  for (float &V : Input)
    V = static_cast<float>(InputRng.below(1024)) * 0.125f - 32.0f;

  std::string BaseErr, OptErr;
  std::vector<TierRun> Base =
      compileAndRunAllTiers(Source, "", Input, BaseErr);
  ASSERT_FALSE(Base.empty()) << "baseline compile failed: " << BaseErr;
  std::vector<TierRun> Opt = compileAndRunAllTiers(
      Source, ir::defaultPipelineSpec(), Input, OptErr);
  ASSERT_FALSE(Opt.empty()) << "optimized compile failed: " << OptErr;

  // Fault behavior must agree across all six runs.
  for (size_t T = 0; T < 3; ++T) {
    EXPECT_EQ(Base[0].Ok, Base[T].Ok) << "baseline tier " << T
                                      << " fault mismatch: " << Base[T].Fault;
    EXPECT_EQ(Base[0].Ok, Opt[T].Ok)
        << "optimized tier " << T << " fault mismatch (baseline "
        << (Base[0].Ok ? "ran" : "faulted: " + Base[0].Fault)
        << ", optimized " << (Opt[T].Ok ? "ran" : "faulted: " + Opt[T].Fault)
        << ")";
  }
  if (!Base[0].Ok)
    return; // All faulted alike; partial output bytes are not a contract.

  // Outputs must be byte-identical across pipelines and tiers.
  for (size_t T = 1; T < 3; ++T)
    EXPECT_TRUE(bitIdentical(Base[0].Output, Base[T].Output))
        << "baseline tier " << T << " diverged from the tree walker";
  for (size_t T = 0; T < 3; ++T)
    EXPECT_TRUE(bitIdentical(Base[0].Output, Opt[T].Output))
        << "optimized tier " << T << " diverged from the baseline";
}

} // namespace

TEST(MemSSAFuzzTest, TwoHundredSeedsDifferentiallyIdentical) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    runSeed(Seed);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(MemSSAFuzzTest, PlantedFaultsAreFlaggedStatically) {
  // The static checker (ir/Lint.h) over the same 200 seeds, after the
  // default pipeline: every planted far-OOB constant-index store must be
  // reported at error severity, and -- the severity contract -- no
  // fault-free kernel may produce any error-severity diagnostic
  // (warnings are fine: the generator deliberately leaves some array
  // elements uninitialized).
  unsigned Planted = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    KernelGenerator G(Seed);
    std::string Source = G.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Source);
    ir::Module M;
    pcl::CompileOptions Opts;
    Opts.PipelineSpec = ir::defaultPipelineSpec();
    Expected<ir::Function *> F = pcl::compileKernel(M, Source, "k", Opts);
    ASSERT_TRUE(static_cast<bool>(F)) << F.error().message();
    ir::AnalysisManager AM;
    ir::lint::LintOptions LO;
    LO.Bounds.GlobalSize[0] = GlobalItems;
    LO.Bounds.LocalSize[0] = GroupItems;
    ir::lint::LintResult R = ir::lint::run(**F, AM, LO);
    if (G.plantedFault()) {
      ++Planted;
      bool FlaggedOob = false;
      for (const ir::lint::Diagnostic &D : R.Diags)
        FlaggedOob |= D.Sev == ir::lint::Severity::Error && D.Check == "oob";
      EXPECT_TRUE(FlaggedOob)
          << "planted OOB store not flagged; diagnostics:\n" << R.str();
    } else {
      EXPECT_EQ(R.numErrors(), 0u)
          << "false positive on a fault-free kernel:\n" << R.str();
    }
  }
  EXPECT_GT(Planted, 10u); // The 1-in-8 payload actually exercised.
}

TEST(MemSSAFuzzTest, GeneratorIsDeterministic) {
  // The seed printed on failure must reproduce the exact kernel.
  EXPECT_EQ(KernelGenerator(42).generate(), KernelGenerator(42).generate());
}
