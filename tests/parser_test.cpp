//===- tests/parser_test.cpp - PCL parser unit tests ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "pcl/Parser.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::pcl;

namespace {

ProgramDecl parseOk(const std::string &Source) {
  Expected<ProgramDecl> P = parse(Source);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().message());
  return P ? P.takeValue() : ProgramDecl{};
}

std::string parseErr(const std::string &Source) {
  Expected<ProgramDecl> P = parse(Source);
  EXPECT_FALSE(static_cast<bool>(P));
  return P ? "" : P.error().message();
}

/// Wraps a statement list into a minimal kernel.
std::string wrap(const std::string &Body) {
  return "kernel void k(global const float* in, global float* out, "
         "int w, int h) {" +
         Body + "}";
}

TEST(ParserTest, EmptyProgramRejected) {
  EXPECT_FALSE(parseErr("").empty());
}

TEST(ParserTest, MinimalKernel) {
  ProgramDecl P = parseOk("kernel void f() {}");
  ASSERT_EQ(P.Kernels.size(), 1u);
  EXPECT_EQ(P.Kernels[0].Name, "f");
  EXPECT_TRUE(P.Kernels[0].Params.empty());
  EXPECT_TRUE(P.Kernels[0].Body->stmts().empty());
}

TEST(ParserTest, MultipleKernels) {
  ProgramDecl P = parseOk("kernel void a() {} kernel void b() {}");
  ASSERT_EQ(P.Kernels.size(), 2u);
  EXPECT_EQ(P.Kernels[1].Name, "b");
}

TEST(ParserTest, PointerParams) {
  ProgramDecl P = parseOk(
      "kernel void f(global const float* in, global int* out) {}");
  ASSERT_EQ(P.Kernels[0].Params.size(), 2u);
  const ParamDecl &In = P.Kernels[0].Params[0];
  EXPECT_TRUE(In.IsPointer);
  EXPECT_TRUE(In.IsConst);
  EXPECT_TRUE(In.IsFloat);
  EXPECT_TRUE(In.IsGlobalSpace);
  const ParamDecl &Out = P.Kernels[0].Params[1];
  EXPECT_FALSE(Out.IsConst);
  EXPECT_FALSE(Out.IsFloat);
}

TEST(ParserTest, ValueParams) {
  ProgramDecl P = parseOk("kernel void f(int w, float s) {}");
  EXPECT_FALSE(P.Kernels[0].Params[0].IsPointer);
  EXPECT_FALSE(P.Kernels[0].Params[0].IsFloat);
  EXPECT_TRUE(P.Kernels[0].Params[1].IsFloat);
}

TEST(ParserTest, MissingStarInPointerParam) {
  std::string Msg = parseErr("kernel void f(global float in) {}");
  EXPECT_NE(Msg.find("'*'"), std::string::npos);
}

TEST(ParserTest, ScalarDecl) {
  ProgramDecl P = parseOk(wrap("int x = 3;"));
  const auto *D = dyn_cast<DeclStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(D);
  EXPECT_EQ(D->name(), "x");
  EXPECT_FALSE(D->isFloat());
  EXPECT_TRUE(D->dims().empty());
  ASSERT_TRUE(D->init());
}

TEST(ParserTest, ArrayDecl) {
  ProgramDecl P = parseOk(wrap("float a[4][5];"));
  const auto *D = dyn_cast<DeclStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(D);
  ASSERT_EQ(D->dims().size(), 2u);
  EXPECT_EQ(D->dims()[0], 4);
  EXPECT_EQ(D->dims()[1], 5);
}

TEST(ParserTest, LocalArrayDecl) {
  ProgramDecl P = parseOk(wrap("local float tile[64];"));
  const auto *D = dyn_cast<DeclStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(D);
  EXPECT_TRUE(D->isLocalSpace());
}

TEST(ParserTest, LocalScalarRejected) {
  std::string Msg = parseErr(wrap("local float x;"));
  EXPECT_NE(Msg.find("arrays"), std::string::npos);
}

TEST(ParserTest, ArrayInitializerRejected) {
  std::string Msg = parseErr(wrap("float a[2] = 0.0;"));
  EXPECT_NE(Msg.find("initializer"), std::string::npos);
}

TEST(ParserTest, NonConstantDimRejected) {
  std::string Msg = parseErr(wrap("int n = 2; float a[n];"));
  EXPECT_NE(Msg.find("integer constant"), std::string::npos);
}

TEST(ParserTest, ZeroDimRejected) {
  std::string Msg = parseErr(wrap("float a[0];"));
  EXPECT_NE(Msg.find("positive"), std::string::npos);
}

TEST(ParserTest, IfElse) {
  ProgramDecl P = parseOk(wrap("if (true) return; else return;"));
  const auto *I = dyn_cast<IfStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(I);
  EXPECT_TRUE(I->elseStmt());
}

TEST(ParserTest, IfWithoutElse) {
  ProgramDecl P = parseOk(wrap("if (true) return;"));
  const auto *I = dyn_cast<IfStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(I);
  EXPECT_FALSE(I->elseStmt());
}

TEST(ParserTest, DanglingElseBindsInner) {
  ProgramDecl P =
      parseOk(wrap("if (true) if (false) return; else return;"));
  const auto *Outer = dyn_cast<IfStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(Outer);
  EXPECT_FALSE(Outer->elseStmt());
  const auto *Inner = dyn_cast<IfStmt>(Outer->thenStmt());
  ASSERT_TRUE(Inner);
  EXPECT_TRUE(Inner->elseStmt());
}

TEST(ParserTest, ForAllClauses) {
  ProgramDecl P = parseOk(wrap("for (int i = 0; i < 9; i++) { }"));
  const auto *F = dyn_cast<ForStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(F);
  EXPECT_TRUE(F->init());
  EXPECT_TRUE(F->cond());
  EXPECT_TRUE(F->inc());
}

TEST(ParserTest, ForEmptyClauses) {
  ProgramDecl P = parseOk(wrap("int i = 0; for (;;) { i = 1; }"));
  const auto *F = dyn_cast<ForStmt>(P.Kernels[0].Body->stmts()[1].get());
  ASSERT_TRUE(F);
  EXPECT_FALSE(F->init());
  EXPECT_FALSE(F->cond());
  EXPECT_FALSE(F->inc());
}

TEST(ParserTest, ForWithExprInit) {
  ProgramDecl P = parseOk(wrap("int i; for (i = 0; i < 3; i++) { }"));
  const auto *F = dyn_cast<ForStmt>(P.Kernels[0].Body->stmts()[1].get());
  ASSERT_TRUE(F);
  ASSERT_TRUE(F->init());
  EXPECT_TRUE(isa<ExprStmt>(F->init()));
}

TEST(ParserTest, While) {
  ProgramDecl P = parseOk(wrap("int i = 0; while (i < 3) i++;"));
  EXPECT_TRUE(isa<WhileStmt>(P.Kernels[0].Body->stmts()[1].get()));
}

TEST(ParserTest, NestedBlocks) {
  ProgramDecl P = parseOk(wrap("{ { int x = 1; } }"));
  const auto *B = dyn_cast<BlockStmt>(P.Kernels[0].Body->stmts()[0].get());
  ASSERT_TRUE(B);
  EXPECT_TRUE(isa<BlockStmt>(B->stmts()[0].get()));
}

//===----------------------------------------------------------------------===//
// Expression structure and precedence
//===----------------------------------------------------------------------===//

/// Parses "int r = <expr>;" and returns the initializer.
const Expr *initOf(const ProgramDecl &P) {
  const auto *D = cast<DeclStmt>(P.Kernels[0].Body->stmts()[0].get());
  return D->init();
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  ProgramDecl P = parseOk(wrap("int r = 1 + 2 * 3;"));
  const auto *Add = dyn_cast<BinaryExpr>(initOf(P));
  ASSERT_TRUE(Add);
  EXPECT_EQ(Add->op(), TokenKind::Plus);
  EXPECT_TRUE(isa<BinaryExpr>(Add->rhs()));
  EXPECT_TRUE(isa<IntLitExpr>(Add->lhs()));
}

TEST(ParserTest, PrecedenceCmpOverAnd) {
  ProgramDecl P = parseOk(wrap("if (1 < 2 && 3 < 4) return;"));
  const auto *I = cast<IfStmt>(P.Kernels[0].Body->stmts()[0].get());
  const auto *And = dyn_cast<BinaryExpr>(I->cond());
  ASSERT_TRUE(And);
  EXPECT_EQ(And->op(), TokenKind::AmpAmp);
  EXPECT_TRUE(isa<BinaryExpr>(And->lhs()));
}

TEST(ParserTest, AddLeftAssociative) {
  ProgramDecl P = parseOk(wrap("int r = 1 - 2 - 3;"));
  const auto *Outer = dyn_cast<BinaryExpr>(initOf(P));
  ASSERT_TRUE(Outer);
  // (1-2)-3: left child is the inner subtraction.
  EXPECT_TRUE(isa<BinaryExpr>(Outer->lhs()));
  EXPECT_TRUE(isa<IntLitExpr>(Outer->rhs()));
}

TEST(ParserTest, AssignRightAssociative) {
  ProgramDecl P = parseOk(wrap("int a; int b; a = b = 1;"));
  const auto *S = cast<ExprStmt>(P.Kernels[0].Body->stmts()[2].get());
  const auto *Outer = dyn_cast<AssignExpr>(S->expr());
  ASSERT_TRUE(Outer);
  EXPECT_TRUE(isa<AssignExpr>(Outer->rhs()));
}

TEST(ParserTest, Ternary) {
  ProgramDecl P = parseOk(wrap("int r = true ? 1 : 2;"));
  EXPECT_TRUE(isa<TernaryExpr>(initOf(P)));
}

TEST(ParserTest, UnaryChain) {
  ProgramDecl P = parseOk(wrap("int r = --x;")); // Prefix decrement of x.
  const auto *Dec = dyn_cast<IncDecExpr>(initOf(P));
  ASSERT_TRUE(Dec);
  EXPECT_TRUE(Dec->isPrefix());
  EXPECT_FALSE(Dec->isIncrement());
}

TEST(ParserTest, PostfixIncrement) {
  ProgramDecl P = parseOk(wrap("int i = 0; i++;"));
  const auto *S = cast<ExprStmt>(P.Kernels[0].Body->stmts()[1].get());
  const auto *Inc = dyn_cast<IncDecExpr>(S->expr());
  ASSERT_TRUE(Inc);
  EXPECT_FALSE(Inc->isPrefix());
}

TEST(ParserTest, IndexChain) {
  ProgramDecl P = parseOk(wrap("float a[2][3]; float r = a[1][2];"));
  const auto *D = cast<DeclStmt>(P.Kernels[0].Body->stmts()[1].get());
  const auto *Outer = dyn_cast<IndexExpr>(D->init());
  ASSERT_TRUE(Outer);
  EXPECT_TRUE(isa<IndexExpr>(Outer->base()));
}

TEST(ParserTest, CallWithArgs) {
  ProgramDecl P = parseOk(wrap("int r = clamp(1, 0, 5);"));
  const auto *C = dyn_cast<CallExpr>(initOf(P));
  ASSERT_TRUE(C);
  EXPECT_EQ(C->callee(), "clamp");
  EXPECT_EQ(C->args().size(), 3u);
}

TEST(ParserTest, CastFloat) {
  ProgramDecl P = parseOk(wrap("float r = (float)3;"));
  const auto *C = dyn_cast<CastExpr>(initOf(P));
  ASSERT_TRUE(C);
  EXPECT_TRUE(C->toFloat());
}

TEST(ParserTest, CastInt) {
  ProgramDecl P = parseOk(wrap("int r = (int)2.5;"));
  const auto *C = dyn_cast<CastExpr>(initOf(P));
  ASSERT_TRUE(C);
  EXPECT_FALSE(C->toFloat());
}

TEST(ParserTest, ParenExprIsNotCast) {
  ProgramDecl P = parseOk(wrap("int r = (1 + 2) * 3;"));
  const auto *Mul = dyn_cast<BinaryExpr>(initOf(P));
  ASSERT_TRUE(Mul);
  EXPECT_EQ(Mul->op(), TokenKind::Star);
}

//===----------------------------------------------------------------------===//
// Syntax errors carry positions
//===----------------------------------------------------------------------===//

TEST(ParserTest, MissingSemicolon) {
  std::string Msg = parseErr(wrap("int x = 1"));
  EXPECT_NE(Msg.find("';'"), std::string::npos);
}

TEST(ParserTest, MissingCloseBrace) {
  std::string Msg = parseErr("kernel void f() { int x = 1;");
  EXPECT_NE(Msg.find("end of input"), std::string::npos);
}

TEST(ParserTest, MissingKernelName) {
  std::string Msg = parseErr("kernel void () {}");
  EXPECT_NE(Msg.find("kernel name"), std::string::npos);
}

TEST(ParserTest, GarbageExpression) {
  std::string Msg = parseErr(wrap("int x = ;"));
  EXPECT_NE(Msg.find("expected expression"), std::string::npos);
}

TEST(ParserTest, ErrorHasLineColumn) {
  std::string Msg = parseErr("kernel void f() {\n  int x = ;\n}");
  EXPECT_EQ(Msg.substr(0, 2), "2:");
}

} // namespace
