//===- tests/fuzz_frontend_test.cpp - frontend robustness sweeps ------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Deterministic fuzz-style sweeps over the PCL frontend: every prefix
// and thousands of seeded random mutations of the shipped kernels must
// either compile cleanly or produce a diagnostic -- never crash, hang,
// or emit IR that fails the verifier. This pins down the property that
// the frontend is total over arbitrary byte strings, which a tool like
// kperfc (fed by user files) relies on.
//
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace kperf;

namespace {

const char *allKernelSources(unsigned I) {
  const char *Sources[] = {
      apps::gaussianSource(), apps::inversionSource(),
      apps::medianSource(),   apps::hotspotSource(),
      apps::sobel3Source(),   apps::sobel5Source(),
      apps::meanSource(),     apps::sharpenSource(),
      apps::convSepRowSource()};
  return I < 9 ? Sources[I] : nullptr;
}

/// Compiles \p Source into a fresh module; on success, the result must
/// pass the verifier.
void compileMustNotCrash(const std::string &Source) {
  ir::Module M;
  Expected<std::vector<ir::Function *>> Fns = pcl::compile(M, Source);
  if (!Fns) {
    EXPECT_FALSE(Fns.error().message().empty());
    return;
  }
  for (ir::Function *F : *Fns) {
    Error E = ir::verifyFunction(*F);
    EXPECT_FALSE(E) << "frontend emitted unverifiable IR: "
                    << E.message() << "\nsource:\n"
                    << Source;
  }
}

TEST(FuzzFrontendTest, EveryPrefixOfEveryKernel) {
  for (unsigned I = 0; allKernelSources(I); ++I) {
    std::string Source = allKernelSources(I);
    for (size_t Len = 0; Len <= Source.size(); ++Len)
      compileMustNotCrash(Source.substr(0, Len));
  }
}

TEST(FuzzFrontendTest, EverySuffixOfEveryKernel) {
  for (unsigned I = 0; allKernelSources(I); ++I) {
    std::string Source = allKernelSources(I);
    for (size_t Start = 0; Start <= Source.size(); ++Start)
      compileMustNotCrash(Source.substr(Start));
  }
}

TEST(FuzzFrontendTest, SingleCharacterMutations) {
  // Substitute one character at a seeded random position with a byte
  // drawn from an alphabet biased toward syntax-relevant characters.
  const std::string Alphabet =
      "{}()[];,*+-/%<>=!&|?:.0123456789abxyz_ \n\"\\$#@~^\t";
  Rng R(20180224);
  for (unsigned I = 0; allKernelSources(I); ++I) {
    std::string Original = allKernelSources(I);
    for (unsigned Trial = 0; Trial < 400; ++Trial) {
      std::string Mutated = Original;
      size_t Pos = static_cast<size_t>(R.below(Mutated.size()));
      Mutated[Pos] = Alphabet[static_cast<size_t>(
          R.below(Alphabet.size()))];
      compileMustNotCrash(Mutated);
    }
  }
}

TEST(FuzzFrontendTest, DeletionsAndDuplications) {
  Rng R(42);
  for (unsigned I = 0; allKernelSources(I); ++I) {
    std::string Original = allKernelSources(I);
    for (unsigned Trial = 0; Trial < 200; ++Trial) {
      std::string Mutated = Original;
      // Delete a random span of up to 8 characters.
      size_t Pos = static_cast<size_t>(R.below(Mutated.size()));
      size_t Len = 1 + static_cast<size_t>(R.below(8));
      Mutated.erase(Pos, Len);
      compileMustNotCrash(Mutated);
      // Duplicate a random span of up to 8 characters.
      Mutated = Original;
      Pos = static_cast<size_t>(R.below(Mutated.size()));
      Len = std::min<size_t>(1 + static_cast<size_t>(R.below(8)),
                             Mutated.size() - Pos);
      Mutated.insert(Pos, Mutated.substr(Pos, Len));
      compileMustNotCrash(Mutated);
    }
  }
}

TEST(FuzzFrontendTest, SpliceBetweenKernels) {
  // Cross prefixes of one kernel with suffixes of another.
  Rng R(7);
  for (unsigned Trial = 0; Trial < 500; ++Trial) {
    std::string A = allKernelSources(static_cast<unsigned>(R.below(9)));
    std::string B = allKernelSources(static_cast<unsigned>(R.below(9)));
    size_t CutA = static_cast<size_t>(R.below(A.size() + 1));
    size_t CutB = static_cast<size_t>(R.below(B.size() + 1));
    compileMustNotCrash(A.substr(0, CutA) + B.substr(CutB));
  }
}

TEST(FuzzFrontendTest, RandomBytes) {
  // Pure noise: mostly printable, sprinkled with control bytes.
  Rng R(123);
  for (unsigned Trial = 0; Trial < 300; ++Trial) {
    size_t Len = static_cast<size_t>(R.below(200));
    std::string Noise;
    Noise.reserve(Len);
    for (size_t J = 0; J < Len; ++J)
      Noise.push_back(static_cast<char>(32 + R.below(96)));
    compileMustNotCrash(Noise);
  }
}

} // namespace
