//===- tests/ir_test.cpp - IR core unit tests -------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"
#include "ir/DCE.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(TypeTest, ScalarPredicates) {
  EXPECT_TRUE(Type::voidTy().isVoid());
  EXPECT_TRUE(Type::boolTy().isBool());
  EXPECT_TRUE(Type::intTy().isInt());
  EXPECT_TRUE(Type::floatTy().isFloat());
  EXPECT_TRUE(Type::intTy().isNumeric());
  EXPECT_FALSE(Type::boolTy().isNumeric());
}

TEST(TypeTest, PointerRoundTrip) {
  Type P = Type::pointerTo(ScalarKind::Float, AddressSpace::Global);
  EXPECT_TRUE(P.isPointer());
  EXPECT_EQ(P.addressSpace(), AddressSpace::Global);
  EXPECT_TRUE(P.pointeeType().isFloat());
  EXPECT_EQ(P.storeSizeInBytes(), 4u);
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Type::intTy(), Type::intTy());
  EXPECT_NE(Type::intTy(), Type::floatTy());
  EXPECT_NE(Type::pointerTo(ScalarKind::Int, AddressSpace::Local),
            Type::pointerTo(ScalarKind::Int, AddressSpace::Global));
  EXPECT_NE(Type::intTy(),
            Type::pointerTo(ScalarKind::Int, AddressSpace::Private));
}

TEST(TypeTest, Printing) {
  EXPECT_EQ(Type::floatTy().str(), "float");
  EXPECT_EQ(Type::pointerTo(ScalarKind::Float, AddressSpace::Global).str(),
            "global float*");
  EXPECT_EQ(Type::pointerTo(ScalarKind::Int, AddressSpace::Local).str(),
            "local int*");
}

//===----------------------------------------------------------------------===//
// Constants and module
//===----------------------------------------------------------------------===//

TEST(ModuleTest, ConstantsInterned) {
  Module M;
  EXPECT_EQ(M.getInt(5), M.getInt(5));
  EXPECT_NE(M.getInt(5), M.getInt(6));
  EXPECT_EQ(M.getFloat(1.5f), M.getFloat(1.5f));
  EXPECT_EQ(M.getBool(true), M.getBool(true));
  EXPECT_NE(M.getBool(true), M.getBool(false));
}

TEST(ModuleTest, ConstantValues) {
  Module M;
  EXPECT_EQ(M.getInt(-3)->value(), -3);
  EXPECT_FLOAT_EQ(M.getFloat(2.5f)->value(), 2.5f);
  EXPECT_TRUE(M.getBool(true)->value());
}

TEST(ModuleTest, IsaCastDynCast) {
  Module M;
  Value *V = M.getInt(1);
  EXPECT_TRUE(isa<ConstantInt>(V));
  EXPECT_FALSE(isa<ConstantFloat>(V));
  EXPECT_EQ(cast<ConstantInt>(V)->value(), 1);
  EXPECT_EQ(dyn_cast<ConstantFloat>(V), nullptr);
  EXPECT_NE(dyn_cast<ConstantInt>(V), nullptr);
  EXPECT_TRUE(isConstant(V));
}

//===----------------------------------------------------------------------===//
// Builder + function structure
//===----------------------------------------------------------------------===//

/// Builds: kernel f(global float* buf) { buf[0] = 1.0 + 2.0; ret }
Function *buildSimple(Module &M) {
  Function *F = M.createFunction("f");
  F->addArgument(Type::pointerTo(ScalarKind::Float, AddressSpace::Global),
                 "buf", /*IsConst=*/false);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *Sum = B.createAdd(M.getFloat(1.0f), M.getFloat(2.0f));
  Value *Ptr = B.createGep(F->argument(0), M.getInt(0));
  B.createStore(Sum, Ptr);
  B.createRet();
  return F;
}

TEST(BuilderTest, SimpleFunctionVerifies) {
  Module M;
  Function *F = buildSimple(M);
  EXPECT_FALSE(verifyFunction(*F));
  EXPECT_EQ(F->entry()->size(), 4u);
}

TEST(BuilderTest, InsertAtIndex) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet();
  // Insert two instructions before the ret.
  B.setInsertPoint(BB, 0);
  B.createAdd(M.getInt(1), M.getInt(2), "first");
  B.createAdd(M.getInt(3), M.getInt(4), "second");
  ASSERT_EQ(BB->size(), 3u);
  EXPECT_EQ(BB->at(0)->name(), "first");
  EXPECT_EQ(BB->at(1)->name(), "second");
  EXPECT_TRUE(BB->at(2)->isTerminator());
}

TEST(BuilderTest, FoldAddConstants) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *V = B.foldAdd(M.getInt(2), M.getInt(3));
  EXPECT_EQ(cast<ConstantInt>(V)->value(), 5);
  // Adding zero folds to the other operand without a new instruction.
  Value *Dynamic = B.createAdd(M.getInt(1), M.getInt(1));
  EXPECT_EQ(B.foldAdd(M.getInt(0), Dynamic), Dynamic);
  EXPECT_EQ(B.foldAdd(Dynamic, M.getInt(0)), Dynamic);
}

TEST(FunctionTest, BlockIndexing) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B = F->createBlock("b");
  EXPECT_EQ(F->blockIndex(A), 0u);
  EXPECT_EQ(F->blockIndex(B), 1u);
  BasicBlock *C = F->createBlockAt(1, "c");
  EXPECT_EQ(F->blockIndex(C), 1u);
  EXPECT_EQ(F->blockIndex(B), 2u);
}

TEST(FunctionTest, ArgumentByName) {
  Module M;
  Function *F = M.createFunction("g");
  F->addArgument(Type::intTy(), "w", false);
  EXPECT_EQ(F->argumentByName("w"), F->argument(0));
  EXPECT_EQ(F->argumentByName("zz"), nullptr);
}

//===----------------------------------------------------------------------===//
// Verifier negative cases
//===----------------------------------------------------------------------===//

TEST(VerifierTest, EmptyFunctionRejected) {
  Module M;
  Function *F = M.createFunction("g");
  Error E = verifyFunction(*F);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("no blocks"), std::string::npos);
}

TEST(VerifierTest, MissingTerminator) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createAdd(M.getInt(1), M.getInt(2));
  Error E = verifyFunction(*F);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("terminator"), std::string::npos);
}

TEST(VerifierTest, EmptyBlockRejected) {
  Module M;
  Function *F = M.createFunction("g");
  F->createBlock("entry");
  EXPECT_TRUE(verifyFunction(*F));
}

TEST(VerifierTest, LocalAllocaOutsideEntry) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  B.createBr(Next);
  B.setInsertPoint(Next);
  B.createAlloca(ScalarKind::Float, 16, AddressSpace::Local, "tile");
  B.createRet();
  Error E = verifyFunction(*F);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("local alloca"), std::string::npos);
}

TEST(VerifierTest, StoreToConstArgument) {
  Module M;
  Function *F = M.createFunction("g");
  F->addArgument(Type::pointerTo(ScalarKind::Float, AddressSpace::Global),
                 "in", /*IsConst=*/true);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *P = B.createGep(F->argument(0), M.getInt(0));
  B.createStore(M.getFloat(0), P);
  B.createRet();
  Error E = verifyFunction(*F);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("const argument"), std::string::npos);
}

TEST(VerifierTest, UseBeforeDefAcrossBlocks) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  IRBuilder B(M);
  // Build b first so its instruction exists, then make a use it.
  B.setInsertPoint(Bb);
  Instruction *Late = B.createAdd(M.getInt(1), M.getInt(2));
  B.createRet();
  B.setInsertPoint(A);
  B.createAdd(Late, M.getInt(3));
  B.createBr(Bb);
  Error E = verifyFunction(*F);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("use before definition"), std::string::npos);
}

TEST(VerifierTest, TerminatorInMiddle) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createRet();
  // Manually append after the terminator via the block API.
  B.setInsertPoint(BB);
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F));
}

//===----------------------------------------------------------------------===//
// Clone
//===----------------------------------------------------------------------===//

TEST(CloneTest, StructurePreserved) {
  Module M;
  Function *F = buildSimple(M);
  CloneMap Map;
  Function *C = cloneFunction(M, *F, "f2", Map);
  EXPECT_EQ(C->name(), "f2");
  EXPECT_EQ(C->numArguments(), F->numArguments());
  EXPECT_EQ(C->numBlocks(), F->numBlocks());
  EXPECT_EQ(C->entry()->size(), F->entry()->size());
  EXPECT_FALSE(verifyFunction(*C));
}

TEST(CloneTest, OperandsRemapped) {
  Module M;
  Function *F = buildSimple(M);
  CloneMap Map;
  Function *C = cloneFunction(M, *F, "f2", Map);
  // The clone's store must point at the clone's gep, not the original's.
  const Instruction *Store = nullptr;
  for (const auto &I : C->entry()->instructions())
    if (I->opcode() == Opcode::Store)
      Store = I.get();
  ASSERT_TRUE(Store);
  const auto *Gep = cast<Instruction>(Store->operand(1));
  EXPECT_EQ(Gep->parent(), C->entry());
  EXPECT_EQ(Gep->operand(0), C->argument(0));
}

TEST(CloneTest, BranchTargetsRemapped) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  IRBuilder B(M);
  B.setInsertPoint(A);
  B.createCondBr(M.getBool(true), Bb, Bb);
  B.setInsertPoint(Bb);
  B.createRet();
  CloneMap Map;
  Function *C = cloneFunction(M, *F, "g2", Map);
  Instruction *T = C->entry()->terminator();
  EXPECT_EQ(T->branchTarget(0), C->block(1));
  EXPECT_EQ(T->branchTarget(1), C->block(1));
}

TEST(CloneTest, ConstantsShared) {
  Module M;
  Function *F = buildSimple(M);
  CloneMap Map;
  Function *C = cloneFunction(M, *F, "f2", Map);
  // Constants are module-interned: the clone uses the same objects.
  EXPECT_EQ(C->entry()->at(0)->operand(0), F->entry()->at(0)->operand(0));
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

TEST(DCETest, RemovesUnusedArithmetic) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createAdd(M.getInt(1), M.getInt(2)); // Dead.
  B.createRet();
  EXPECT_EQ(eliminateDeadCode(*F), 1u);
  EXPECT_EQ(BB->size(), 1u);
}

TEST(DCETest, RemovesTransitivelyDeadChains) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *A = B.createAdd(M.getInt(1), M.getInt(2));
  Value *C = B.createMul(A, M.getInt(3));
  B.createSub(C, M.getInt(4)); // Dead; makes C and then A dead too.
  B.createRet();
  EXPECT_EQ(eliminateDeadCode(*F), 3u);
  EXPECT_EQ(BB->size(), 1u);
}

TEST(DCETest, KeepsStoresAndUsedValues) {
  Module M;
  Function *F = buildSimple(M);
  EXPECT_EQ(eliminateDeadCode(*F), 0u);
  EXPECT_EQ(F->entry()->size(), 4u);
}

TEST(DCETest, KeepsBarrier) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  B.createCall(Builtin::Barrier, {});
  B.createRet();
  EXPECT_EQ(eliminateDeadCode(*F), 0u);
  EXPECT_EQ(BB->size(), 2u);
}

TEST(DCETest, RemovesDeadLoadAndAlloca) {
  Module M;
  Function *F = M.createFunction("g");
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Instruction *A =
      B.createAlloca(ScalarKind::Int, 1, AddressSpace::Private, "x");
  B.createLoad(A); // Dead load; then the alloca becomes dead too.
  B.createRet();
  EXPECT_EQ(eliminateDeadCode(*F), 2u);
  EXPECT_EQ(BB->size(), 1u);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

TEST(PrinterTest, GoldenSimpleFunction) {
  Module M;
  Function *F = buildSimple(M);
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("kernel f(global float* %buf)"), std::string::npos);
  EXPECT_NE(Text.find("add 1, 2"), std::string::npos);
  EXPECT_NE(Text.find("gep %buf, 0"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(PrinterTest, ModulePrintsAllFunctions) {
  Module M;
  buildSimple(M);
  Function *G = M.createFunction("g");
  IRBuilder B(M);
  B.setInsertPoint(G->createBlock("entry"));
  B.createRet();
  std::string Text = printModule(M);
  EXPECT_NE(Text.find("kernel f("), std::string::npos);
  EXPECT_NE(Text.find("kernel g("), std::string::npos);
}

} // namespace
