//===- tests/session_test.cpp - Session variant-cache tests ------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The rt::Session compiled-variant cache: source-compile caching, variant
// hit/miss accounting across identical and differing VariantKeys,
// invalidation after direct kernel mutation, identity of cached-vs-fresh
// variant outputs on a real app kernel, and the unified launch(Variant)
// entry point.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/Kernels.h"
#include "img/Generators.h"
#include "ir/Value.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace kperf;
using namespace kperf::rt;

namespace {

const char *ScaleSource = R"(
kernel void scale(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * w + x] = in[y * w + x] * 2.0;
}
)";

perf::PerforationPlan rows1Plan(unsigned TileX = 16, unsigned TileY = 16) {
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  Plan.TileX = TileX;
  Plan.TileY = TileY;
  return Plan;
}

TEST(SessionTest, SourceCompileCached) {
  Session S;
  Kernel A = cantFail(S.compile(ScaleSource, "scale"));
  Kernel B = cantFail(S.compile(ScaleSource, "scale"));
  EXPECT_EQ(A.F, B.F);
  EXPECT_EQ(S.stats().SourceCompiles, 1u);
  EXPECT_EQ(S.stats().SourceCacheHits, 1u);

  // A different pipeline option set is a different compile.
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = "fixpoint(simplify,dce)";
  Kernel C = cantFail(S.compile(ScaleSource, "scale", Opts));
  EXPECT_NE(A.F, C.F);
  EXPECT_EQ(S.stats().SourceCompiles, 2u);
}

TEST(SessionTest, VariantCacheHitsAndMisses) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));

  Variant A = cantFail(S.perforate(K, rows1Plan()));
  EXPECT_EQ(S.stats().VariantCompiles, 1u);
  EXPECT_EQ(S.stats().VariantCacheHits, 0u);

  // Identical key: served from cache, same generated kernel.
  Variant B = cantFail(S.perforate(K, rows1Plan()));
  EXPECT_EQ(S.stats().VariantCompiles, 1u);
  EXPECT_EQ(S.stats().VariantCacheHits, 1u);
  EXPECT_EQ(A.K.F, B.K.F);
  EXPECT_EQ(A.Local.X, B.Local.X);

  // Differing tile shape, scheme, or pipeline spec: distinct keys.
  Variant C = cantFail(S.perforate(K, rows1Plan(8, 8)));
  EXPECT_NE(A.K.F, C.K.F);
  perf::PerforationPlan LiPlan = rows1Plan();
  LiPlan.Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);
  Variant D = cantFail(S.perforate(K, LiPlan));
  EXPECT_NE(A.K.F, D.K.F);
  perf::PerforationPlan PipePlan = rows1Plan();
  PipePlan.PipelineSpec = "fixpoint(simplify,dce)";
  Variant E = cantFail(S.perforate(K, PipePlan));
  EXPECT_NE(A.K.F, E.K.F);
  EXPECT_EQ(S.stats().VariantCompiles, 4u);
  EXPECT_EQ(S.stats().VariantCacheHits, 1u);
  EXPECT_DOUBLE_EQ(S.stats().variantHitRate(), 0.2);
}

TEST(SessionTest, SameNamedKernelsDoNotCollide) {
  // Two distinct functions named "scale" coexist in one module (same
  // source compiled under different pipeline options); their variants
  // must be cached independently.
  Session S;
  Kernel A = cantFail(S.compile(ScaleSource, "scale"));
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = ir::defaultPipelineSpec();
  Kernel B = cantFail(S.compile(ScaleSource, "scale", Opts));
  ASSERT_NE(A.F, B.F);

  Variant VA = cantFail(S.perforate(A, rows1Plan()));
  Variant VB = cantFail(S.perforate(B, rows1Plan()));
  EXPECT_NE(VA.K.F, VB.K.F);
  EXPECT_EQ(S.stats().VariantCompiles, 2u);
  EXPECT_EQ(S.stats().VariantCacheHits, 0u);

  // Invalidating one kernel leaves the other's cached variant intact;
  // re-perforating the invalidated one is a fresh compile, not a cache
  // hit. (Compare counters, not pointers: the retired kernel is really
  // freed at quiescence, so the allocator may reuse its address.)
  S.invalidate(A);
  Variant VB2 = cantFail(S.perforate(B, rows1Plan()));
  EXPECT_EQ(VB2.K.F, VB.K.F);
  EXPECT_EQ(S.stats().VariantCacheHits, 1u);
  cantFail(S.perforate(A, rows1Plan()));
  EXPECT_EQ(S.stats().VariantCompiles, 3u);
  EXPECT_EQ(S.stats().VariantCacheHits, 1u);
}

TEST(SessionTest, OutputApproxCached) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  perf::OutputApproxPlan Plan;
  Plan.Kind = perf::OutputSchemeKind::Rows;
  Plan.ApproxPerComputed = 2;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;
  Variant A = cantFail(S.approximateOutput(K, Plan));
  Variant B = cantFail(S.approximateOutput(K, Plan));
  EXPECT_EQ(A.K.F, B.K.F);
  EXPECT_EQ(A.Kind, VariantKind::OutputApprox);
  EXPECT_EQ(A.DivY, 3u);
  EXPECT_EQ(S.stats().VariantCompiles, 1u);
  EXPECT_EQ(S.stats().VariantCacheHits, 1u);

  // A perforation of the same kernel is a different key space entirely.
  cantFail(S.perforate(K, rows1Plan()));
  EXPECT_EQ(S.stats().VariantCompiles, 2u);
}

TEST(SessionTest, InvalidateAfterKernelMutation) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  Variant Before = cantFail(S.perforate(K, rows1Plan()));

  // Run the cached variant on a small input: out = 2 * in.
  std::vector<float> Data(32 * 32, 1.0f);
  unsigned In = S.createBufferFrom(Data);
  unsigned Out = S.createBuffer(Data.size());
  std::vector<sim::KernelArg> Args = {arg::buffer(In), arg::buffer(Out),
                                      arg::i32(32), arg::i32(32)};
  cantFail(S.launch(Before, {32, 32}, Args));
  EXPECT_FLOAT_EQ(S.buffer(Out).floatAt(0), 2.0f);

  // Mutate the *source* kernel directly: scale by 3 instead of 2.
  bool Mutated = false;
  for (auto &BB : K.F->blocks())
    for (auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI)
        if (auto *CF = ir::dyn_cast<ir::ConstantFloat>(I->operand(OpI)))
          if (CF->value() == 2.0f) {
            I->setOperand(OpI, S.module().getFloat(3.0f));
            Mutated = true;
          }
  ASSERT_TRUE(Mutated);

  // Without invalidation the cache would keep serving the stale variant;
  // after invalidate() the next perforate() recompiles from the mutated
  // kernel.
  Variant Stale = cantFail(S.perforate(K, rows1Plan()));
  EXPECT_EQ(Stale.K.F, Before.K.F);

  S.invalidate(K);
  EXPECT_EQ(S.stats().Invalidations, 1u);
  Variant After = cantFail(S.perforate(K, rows1Plan()));
  // A fresh compile from the mutated kernel (counters, not pointers: the
  // retired kernel is freed at quiescence and its address may be
  // reused), now computing out = 3 * in.
  EXPECT_EQ(S.stats().VariantCompiles, 2u);
  cantFail(S.launch(After, {32, 32}, Args));
  EXPECT_FLOAT_EQ(S.buffer(Out).floatAt(0), 3.0f);
}

TEST(SessionTest, CachedVariantOutputMatchesFreshSession) {
  // A real app kernel: gaussian, Rows1:LI at 16x16. The cached variant's
  // output must be byte-identical to both a repeated (cache-hit) run in
  // the same session and a fresh session's run.
  auto App = apps::makeApp("gaussian");
  apps::Workload W = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 3));
  perf::PerforationScheme Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);

  Session S;
  Variant V1 = cantFail(App->buildPerforated(S, Scheme, {16, 16}));
  std::vector<float> First = cantFail(App->run(S, V1, W)).Output;
  Variant V2 = cantFail(App->buildPerforated(S, Scheme, {16, 16}));
  EXPECT_EQ(V1.K.F, V2.K.F);
  EXPECT_GE(S.stats().VariantCacheHits, 1u);
  EXPECT_EQ(S.stats().SourceCompiles, 1u);
  std::vector<float> Cached = cantFail(App->run(S, V2, W)).Output;
  EXPECT_EQ(First, Cached);

  Session Fresh;
  Variant V3 = cantFail(App->buildPerforated(Fresh, Scheme, {16, 16}));
  std::vector<float> FreshOut = cantFail(App->run(Fresh, V3, W)).Output;
  EXPECT_EQ(First, FreshOut);
}

TEST(SessionTest, UnifiedLaunchAppliesNDRangeShrink) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  perf::OutputApproxPlan Plan;
  Plan.Kind = perf::OutputSchemeKind::Rows;
  Plan.ApproxPerComputed = 2;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;
  Variant V = cantFail(S.approximateOutput(K, Plan));
  V.Local = sim::Range2{4, 4};

  std::vector<float> Data(48 * 48, 0.5f);
  unsigned In = S.createBufferFrom(Data);
  unsigned Out = S.createBuffer(Data.size());
  // 48/3 = 16 computed rows, divisible by 4: launches cleanly at 48x16.
  sim::SimReport R = cantFail(S.launch(
      V, {48, 48},
      {arg::buffer(In), arg::buffer(Out), arg::i32(48), arg::i32(48)}));
  EXPECT_EQ(R.Totals.WorkItems, 48u * 16u);
}

TEST(SessionTest, TwoPassVariantLaunchesStageByStage) {
  auto App = apps::makeApp("convsep");
  Session S;
  Variant V = cantFail(App->buildPlain(S, {16, 16}));
  ASSERT_TRUE(V.isTwoPass());
  EXPECT_FALSE(V.firstPass().isTwoPass());
  EXPECT_FALSE(V.secondPass().isTwoPass());
  EXPECT_EQ(V.secondPass().K.F, V.K2.F);

  // The unified entry point refuses a whole two-pass variant: chaining
  // needs the caller's intermediate buffer.
  std::vector<float> Data(32 * 32, 0.25f);
  unsigned In = S.createBufferFrom(Data);
  unsigned Out = S.createBuffer(Data.size());
  Expected<sim::SimReport> R = S.launch(
      V, {32, 32},
      {arg::buffer(In), arg::buffer(Out), arg::i32(32), arg::i32(32)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("two-pass"), std::string::npos);

  // And the app harness chains the passes for us.
  apps::Workload W = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, 32, 32, 5));
  apps::RunOutcome O = cantFail(App->run(S, V, W));
  EXPECT_EQ(O.Output.size(), W.Input.size());
}

TEST(SessionTest, VariantCarriesLaunchConstraints) {
  // The unified Variant handle carries the launch constraints that used
  // to live in the per-transform handle structs.
  Session Ctx;
  Kernel K = cantFail(Ctx.compile(ScaleSource, "scale"));
  Variant P = cantFail(Ctx.perforate(K, rows1Plan(8, 4)));
  EXPECT_EQ(P.Kind, VariantKind::Perforated);
  EXPECT_EQ(P.Local.X, 8u);
  EXPECT_EQ(P.Local.Y, 4u);

  perf::OutputApproxPlan Plan;
  Plan.Kind = perf::OutputSchemeKind::Rows;
  Plan.ApproxPerComputed = 2;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;
  Variant A = cantFail(Ctx.approximateOutput(K, Plan));
  EXPECT_EQ(A.Kind, VariantKind::OutputApprox);
  A.Local = {4, 4};
  std::vector<float> Data(48 * 48, 0.5f);
  unsigned In = Ctx.createBufferFrom(Data);
  unsigned Out = Ctx.createBuffer(Data.size());
  sim::SimReport R = cantFail(Ctx.launch(
      A, {48, 48},
      {arg::buffer(In), arg::buffer(Out), arg::i32(48), arg::i32(48)}));
  EXPECT_EQ(R.Totals.WorkItems, 48u * 16u);
}

TEST(SessionTest, InvalidateDoesNotLeakVariantKernels) {
  // Regression: invalidate() used to drop cache entries without
  // takeFunction()ing the generated kernels, so a mutate/re-perforate
  // loop leaked one module function (plus its cached analyses) per
  // cycle. The function count must return to baseline every cycle.
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  cantFail(S.perforate(K, rows1Plan()));
  size_t Baseline = S.module().numFunctions();

  for (unsigned I = 0; I < 100; ++I) {
    S.invalidate(K);
    cantFail(S.perforate(K, rows1Plan()));
    ASSERT_EQ(S.module().numFunctions(), Baseline) << "cycle " << I;
  }
  EXPECT_EQ(S.stats().Invalidations, 100u);
  EXPECT_EQ(S.stats().VariantCompiles, 101u);

  // Two-pass variants retire both stage kernels.
  auto App = apps::makeApp("convsep");
  Session S2;
  Variant V = cantFail(App->buildPlain(S2, {16, 16}));
  ASSERT_TRUE(V.isTwoPass());
  size_t Baseline2 = S2.module().numFunctions();
  for (unsigned I = 0; I < 20; ++I) {
    for (const std::string &Name : {std::string("convsep_row"),
                                    std::string("convsep_col")})
      S2.invalidate(Kernel{S2.module().function(Name)});
    cantFail(App->buildPlain(S2, {16, 16}));
    ASSERT_EQ(S2.module().numFunctions(), Baseline2) << "cycle " << I;
  }
}

TEST(SessionTest, InvalidateDefersReclaimToQuiescence) {
  // A Variant handle held across invalidate() must fail its next launch
  // with the evicted-variant error, never a dangling access.
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  Variant V = cantFail(S.perforate(K, rows1Plan()));
  S.invalidate(K);

  std::vector<float> Data(32 * 32, 1.0f);
  unsigned In = S.createBufferFrom(Data);
  unsigned Out = S.createBuffer(Data.size());
  Expected<sim::SimReport> R = S.launch(
      V, {32, 32},
      {arg::buffer(In), arg::buffer(Out), arg::i32(32), arg::i32(32)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_TRUE(Session::isEvictedError(R.error()));
}

TEST(SessionTest, LintRejectionsAreNotVariantCompiles) {
  // A gate rejection inserts nothing, so it must not count as a compile
  // (that would skew the hit rate); it gets its own appended counter.
  const char *OobSource = R"(
kernel void oob(global const float* in, global float* out, int w, int h) {
  float p[8];
  int x = get_global_id(0);
  int y = get_global_id(1);
  p[0] = in[y * w + x];
  p[8200] = 3.0;
  out[y * w + x] = p[0];
}
)";
  Session S;
  S.setLintGate(true);
  Kernel K = cantFail(S.compile(OobSource, "oob"));
  size_t Baseline = S.module().numFunctions();

  Expected<Variant> V = S.perforate(K, rows1Plan());
  ASSERT_FALSE(static_cast<bool>(V));
  EXPECT_NE(V.error().message().find("lint gate:"), std::string::npos);
  EXPECT_EQ(S.stats().LintRejections, 1u);
  EXPECT_EQ(S.stats().VariantCompiles, 0u);
  EXPECT_EQ(S.stats().VariantCacheHits, 0u);
  // The rejected kernel was removed from the module.
  EXPECT_EQ(S.module().numFunctions(), Baseline);

  std::string Line = S.stats().str();
  EXPECT_NE(Line.find("lint rejections: 1"), std::string::npos) << Line;
}

TEST(SessionTest, DiskCacheServesWarmRestart) {
  // A second session pointed at the same cache directory materializes
  // every variant from disk: zero variant compiles on the warm path.
  std::string Dir = ::testing::TempDir() + "kperf_diskcache_test";
  std::filesystem::remove_all(Dir); // Stale entries from a previous run.
  auto App = apps::makeApp("gaussian");
  perf::PerforationScheme Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);

  std::vector<float> Cold;
  {
    Session S;
    cantFail(S.setDiskCache(Dir));
    EXPECT_EQ(S.diskCache(), Dir);
    Variant V = cantFail(App->buildPerforated(S, Scheme, {16, 16}));
    EXPECT_EQ(S.stats().VariantCompiles, 1u);
    EXPECT_EQ(S.stats().DiskVariantStores, 1u);
    EXPECT_EQ(S.stats().DiskVariantHits, 0u);
    apps::Workload W = apps::makeImageWorkload(
        img::generateImage(img::ImageClass::Natural, 64, 64, 3));
    Cold = cantFail(App->run(S, V, W)).Output;
  }

  Session Warm;
  cantFail(Warm.setDiskCache(Dir));
  Variant V = cantFail(App->buildPerforated(Warm, Scheme, {16, 16}));
  EXPECT_EQ(Warm.stats().VariantCompiles, 0u);
  EXPECT_EQ(Warm.stats().DiskVariantHits, 1u);
  EXPECT_EQ(Warm.stats().DiskVariantStores, 0u);
  // Within one session the reloaded variant is then an in-memory hit.
  cantFail(App->buildPerforated(Warm, Scheme, {16, 16}));
  EXPECT_EQ(Warm.stats().VariantCacheHits, 1u);
  EXPECT_EQ(Warm.stats().DiskVariantHits, 1u);

  // And the reloaded kernel computes byte-identical output.
  apps::Workload W = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 3));
  EXPECT_EQ(Cold, cantFail(App->run(Warm, V, W)).Output);

  std::string Line = Warm.stats().str();
  EXPECT_NE(Line.find("disk: 1 hits, 0 stores"), std::string::npos) << Line;
}

TEST(SessionTest, DiskCacheKeyTracksSourceIR) {
  // The content address hashes the *printed source IR*, not just the
  // kernel name: a mutated kernel must miss the stale disk entry.
  std::string Dir = ::testing::TempDir() + "kperf_diskcache_mutate";
  std::filesystem::remove_all(Dir); // Stale entries from a previous run.
  Session S;
  cantFail(S.setDiskCache(Dir));
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  cantFail(S.perforate(K, rows1Plan()));
  EXPECT_EQ(S.stats().DiskVariantStores, 1u);

  // Mutate the source kernel (scale by 3, not 2) and invalidate.
  for (auto &BB : K.F->blocks())
    for (auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI)
        if (auto *CF = ir::dyn_cast<ir::ConstantFloat>(I->operand(OpI)))
          if (CF->value() == 2.0f)
            I->setOperand(OpI, S.module().getFloat(3.0f));
  S.invalidate(K);

  cantFail(S.perforate(K, rows1Plan()));
  EXPECT_EQ(S.stats().DiskVariantHits, 0u);
  EXPECT_EQ(S.stats().VariantCompiles, 2u);
  EXPECT_EQ(S.stats().DiskVariantStores, 2u);
}

TEST(SessionTest, StatsLineMentionsCompilesAndHitRate) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  cantFail(S.perforate(K, rows1Plan()));
  cantFail(S.perforate(K, rows1Plan()));
  std::string Line = S.stats().str();
  EXPECT_NE(Line.find("source compiles: 1"), std::string::npos);
  EXPECT_NE(Line.find("variant compiles: 1"), std::string::npos);
  EXPECT_NE(Line.find("50.0% hit rate"), std::string::npos);
}

} // namespace
