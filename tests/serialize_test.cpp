//===- tests/serialize_test.cpp - IR serialization round-trip tests ----------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The round-trippable ir/Serializer.h format backing the on-disk variant
// cache: serialize -> deserialize -> verify -> re-serialize must be a
// fixpoint for every app kernel and for generated (perforated /
// output-approximated) kernels, float constants must survive
// bit-identically, and any version mismatch or structural corruption must
// be rejected without mutating the target module.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/Kernels.h"
#include "img/Generators.h"
#include "ir/Printer.h"
#include "ir/Serializer.h"
#include "ir/Verifier.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace kperf;

namespace {

/// Serializes \p F, rebuilds it inside a fresh module, verifies it, and
/// checks the rebuilt function re-serializes to the identical text (a
/// fixpoint is the strongest cheap structural-equality proof we have).
void expectRoundTrip(const ir::Function &F) {
  std::string Text = ir::serializeFunction(F);
  EXPECT_EQ(Text.compare(0, std::string(ir::kSerialFormatVersion).size(),
                         ir::kSerialFormatVersion),
            0)
      << F.name() << ": missing version stamp";

  ir::Module Fresh;
  Expected<ir::Function *> Re = ir::deserializeFunction(Fresh, Text);
  ASSERT_TRUE(static_cast<bool>(Re))
      << F.name() << ": " << Re.error().message();
  EXPECT_EQ((*Re)->name(), F.name());
  Error VE = ir::verifyFunction(**Re);
  EXPECT_FALSE(static_cast<bool>(VE))
      << F.name() << ": " << VE.message();
  EXPECT_EQ(ir::serializeFunction(**Re), Text) << F.name();
  // The human-facing printer must also agree: same blocks, same
  // instructions, same constants.
  EXPECT_EQ(ir::printFunction(**Re), ir::printFunction(F)) << F.name();
}

TEST(SerializeTest, AllAppKernelsRoundTrip) {
  // Every kernel of all nine apps, compiled under the default pipeline
  // (phis, loops, allocas, calls, every builtin the apps use).
  rt::Session S;
  auto Apps = apps::makeAllApps();
  auto Ext = apps::makeExtensionApps();
  for (auto &A : Ext)
    Apps.push_back(std::move(A));
  ASSERT_FALSE(Apps.empty());
  for (const auto &A : Apps) {
    Expected<std::vector<rt::Kernel>> Kernels = S.compileAll(A->source());
    ASSERT_TRUE(static_cast<bool>(Kernels))
        << A->name() << ": " << Kernels.error().message();
    for (const rt::Kernel &K : *Kernels)
      expectRoundTrip(*K.F);
  }
}

TEST(SerializeTest, GeneratedVariantKernelsRoundTrip) {
  // The kernels the disk cache actually stores: perforated (local
  // prefetch, barriers, clamp calls) and output-approximated variants.
  rt::Session S;
  rt::Kernel K = cantFail(S.compile(apps::gaussianSource(), "gaussian"));

  perf::PerforationPlan Plan;
  Plan.Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);
  rt::Variant P = cantFail(S.perforate(K, Plan));
  expectRoundTrip(*P.K.F);

  perf::OutputApproxPlan OPlan;
  OPlan.Kind = perf::OutputSchemeKind::Rows;
  OPlan.ApproxPerComputed = 2;
  OPlan.WidthArgIndex = 2;
  OPlan.HeightArgIndex = 3;
  rt::Variant O = cantFail(S.approximateOutput(K, OPlan));
  expectRoundTrip(*O.K.F);
}

TEST(SerializeTest, FloatConstantsAreBitIdentical) {
  // 0.1f is not exactly representable; a decimal round-trip would
  // perturb it. The serializer stores raw IEEE-754 bits.
  const char *Source = R"(
kernel void f(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  out[x] = in[x] * 0.1 + 3.4028234e38 + 1.1754944e-38;
}
)";
  rt::Session S;
  rt::Kernel K = cantFail(S.compile(Source, "f"));
  std::string Text = ir::serializeFunction(*K.F);
  ir::Module Fresh;
  ir::Function *Re = cantFail(ir::deserializeFunction(Fresh, Text));

  auto collect = [](const ir::Function &F) {
    std::vector<float> Out;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI)
          if (auto *CF = ir::dyn_cast<ir::ConstantFloat>(I->operand(OpI)))
            Out.push_back(CF->value());
    return Out;
  };
  std::vector<float> A = collect(*K.F), B = collect(*Re);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    uint32_t ABits, BBits;
    std::memcpy(&ABits, &A[I], 4);
    std::memcpy(&BBits, &B[I], 4);
    EXPECT_EQ(ABits, BBits) << "constant " << I;
  }
}

TEST(SerializeTest, RejectsVersionMismatch) {
  rt::Session S;
  rt::Kernel K = cantFail(S.compile(apps::inversionSource(), "inversion"));
  std::string Text = ir::serializeFunction(*K.F);
  std::string Stale = "kperf-ir-v0" + Text.substr(Text.find('\n'));

  ir::Module Fresh;
  size_t Before = Fresh.numFunctions();
  Expected<ir::Function *> Re = ir::deserializeFunction(Fresh, Stale);
  ASSERT_FALSE(static_cast<bool>(Re));
  EXPECT_NE(Re.error().message().find("version"), std::string::npos)
      << Re.error().message();
  EXPECT_EQ(Fresh.numFunctions(), Before);
}

TEST(SerializeTest, RejectsCorruptionWithoutMutatingModule) {
  rt::Session S;
  rt::Kernel K = cantFail(S.compile(apps::sharpenSource(), "sharpen"));
  std::string Text = ir::serializeFunction(*K.F);

  // Truncation (no endfunction), a garbage operand token, and an
  // out-of-range value index must all fail cleanly; a failed
  // deserialization never leaves a half-built function behind.
  std::vector<std::string> Corrupt;
  Corrupt.push_back(Text.substr(0, Text.size() / 2));
  std::string BadToken = Text;
  size_t Pos = BadToken.find(" a0");
  ASSERT_NE(Pos, std::string::npos);
  BadToken.replace(Pos, 3, " z9");
  Corrupt.push_back(BadToken);
  std::string BadIndex = Text;
  Pos = BadIndex.find(" v0");
  if (Pos != std::string::npos)
    BadIndex.replace(Pos, 3, " v999999");
  Corrupt.push_back(BadIndex);
  Corrupt.push_back(std::string(ir::kSerialFormatVersion) + "\n");

  for (const std::string &C : Corrupt) {
    ir::Module Fresh;
    Expected<ir::Function *> Re = ir::deserializeFunction(Fresh, C);
    if (C == BadIndex && Text.find(" v0") == std::string::npos)
      continue; // Nothing was corrupted; skip.
    ASSERT_FALSE(static_cast<bool>(Re));
    EXPECT_FALSE(Re.error().message().empty());
    EXPECT_EQ(Fresh.numFunctions(), 0u);
  }
}

TEST(SerializeTest, DeserializedKernelExecutesIdentically) {
  // End-to-end: a kernel reloaded from its serialized form must produce
  // byte-identical output to the original (the disk cache's contract).
  rt::Session S;
  rt::Kernel K = cantFail(S.compile(apps::gaussianSource(), "gaussian"));
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  rt::Variant V = cantFail(S.perforate(K, Plan));

  std::string Text = ir::serializeFunction(*V.K.F);
  rt::Session S2;
  ir::Function *Re = cantFail(ir::deserializeFunction(S2.module(), Text));
  rt::Variant V2 = V;
  V2.K.F = Re;

  img::Image Img = img::generateImage(img::ImageClass::Natural, 64, 64, 11);
  auto runIn = [&](rt::Session &Sess, const rt::Variant &Var) {
    unsigned In = Sess.createBufferFrom(Img.pixels());
    unsigned Out = Sess.createBuffer(Img.pixels().size());
    cantFail(Sess.launch(Var, {64, 64},
                         {rt::arg::buffer(In), rt::arg::buffer(Out),
                          rt::arg::i32(64), rt::arg::i32(64)}));
    return Sess.buffer(Out).downloadFloats();
  };
  EXPECT_EQ(runIn(S, V), runIn(S2, V2));
}

} // namespace
