//===- tests/invariants_test.cpp - Cross-cutting perforation invariants -----==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Property-style sweeps complementing property_test.cpp with *analytic*
// invariants of the schemes and reconstructions:
//
//  * a Rows scheme is exact on inputs that are constant along y (skipped
//    rows are identical to their reconstruction sources), and Cols is
//    exact on inputs constant along x -- for every application;
//  * linear interpolation is exact on linear ramps where both neighbors
//    exist, so on a y-ramp LI must beat NN by a wide margin;
//  * global read transactions decrease monotonically with the
//    perforation period, and error grows monotonically with it;
//  * the modeled runtime depends only on the configuration, never on the
//    input content (paper 6.2: "the speedup only depends on the selected
//    approximation scheme");
//  * the simulator is fully deterministic.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::perf;
using namespace kperf::img;

namespace {

/// f(x, y) = Base + SlopeX*x + SlopeY*y, kept inside [0, 1].
Image rampImage(unsigned W, unsigned H, float SlopeX, float SlopeY,
                float Base) {
  Image I(W, H);
  for (unsigned Y = 0; Y < H; ++Y)
    for (unsigned X = 0; X < W; ++X)
      I.set(X, Y, Base + SlopeX * static_cast<float>(X) +
                      SlopeY * static_cast<float>(Y));
  return I;
}

/// Error of \p App under \p Scheme at 16x16 work groups on \p In.
double perforatedError(const char *AppName, const Image &In,
                       PerforationScheme Scheme) {
  auto TheApp = makeApp(AppName);
  Workload W = makeImageWorkload(In);
  rt::Session Ctx;
  rt::Variant BK = cantFail(TheApp->buildPerforated(Ctx, Scheme, {16, 16}));
  RunOutcome R = cantFail(TheApp->run(Ctx, BK, W));
  return TheApp->score(TheApp->reference(W), R.Output);
}

/// All eight image applications (hotspot excluded: its workload is not an
/// image ramp).
const char *const ImageApps[] = {"gaussian", "inversion", "median",
                                 "sobel3",   "sobel5",    "mean",
                                 "sharpen",  "convsep"};

//===----------------------------------------------------------------------===//
// Scheme/content alignment (paper 4.4: "the scheme also needs to match
// the applications input data structure")
//===----------------------------------------------------------------------===//

class AppSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(AppSweep, RowsSchemeExactWhenRowsRedundant) {
  // Input constant along y: every skipped row equals its reconstruction
  // source, so perforation is invisible for any period and recon.
  Image In = rampImage(64, 64, 0.01f, 0.0f, 0.1f);
  for (unsigned Period : {2u, 4u})
    for (ReconstructionKind R :
         {ReconstructionKind::NearestNeighbor, ReconstructionKind::Linear})
      EXPECT_LT(perforatedError(GetParam(), In,
                                PerforationScheme::rows(Period, R)),
                1e-5)
          << "period " << Period;
}

TEST_P(AppSweep, ColsSchemeExactWhenColsRedundant) {
  Image In = rampImage(64, 64, 0.0f, 0.01f, 0.1f);
  for (unsigned Period : {2u, 4u})
    for (ReconstructionKind R :
         {ReconstructionKind::NearestNeighbor, ReconstructionKind::Linear})
      EXPECT_LT(perforatedError(GetParam(), In,
                                PerforationScheme::cols(Period, R)),
                1e-5)
          << "period " << Period;
}

TEST_P(AppSweep, RowsSchemeNotExactAgainstTheGrain) {
  // The same content rotated 90 degrees defeats the Rows scheme with NN
  // reconstruction (paper: "skipping lines ... increases the error much
  // more"). Exactness above must come from alignment, not triviality.
  // Sharpen is excluded: its clamp to [0,1] can hide a uniform shift.
  if (std::string(GetParam()) == "sharpen")
    GTEST_SKIP();
  Image In = rampImage(64, 64, 0.0f, 0.01f, 0.1f);
  EXPECT_GT(perforatedError(
                GetParam(), In,
                PerforationScheme::rows(
                    2, ReconstructionKind::NearestNeighbor)),
            1e-5);
}

TEST_P(AppSweep, LinearReconstructionExactOnRampInterior) {
  // On a y-ramp, LI reconstructs skipped rows exactly wherever both
  // enclosing rows are in local memory; NN is off by a whole row step
  // everywhere. LI must therefore be far more accurate.
  Image In = rampImage(64, 64, 0.0f, 0.01f, 0.1f);
  double Nn = perforatedError(
      GetParam(), In,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor));
  double Li = perforatedError(
      GetParam(), In,
      PerforationScheme::rows(2, ReconstructionKind::Linear));
  std::string Name = GetParam();
  if (Name == "sharpen")
    GTEST_SKIP(); // Clamped output, error ratios are not meaningful.
  // Sobel's gradient magnitude is nonlinear and nearly constant on a
  // ramp, so both errors sit at the float noise floor and their ratio is
  // meaningless -- only the magnitude is asserted. The linear filters get
  // their skipped rows back almost exactly, so LI must clearly win.
  if (Name == "sobel3" || Name == "sobel5") {
    EXPECT_LT(Li, 5e-3) << "LI " << Li;
    EXPECT_LT(Nn, 5e-3) << "NN " << Nn;
    return;
  }
  EXPECT_LT(Li, Nn * 0.5) << "NN " << Nn << " LI " << Li;
}

TEST_P(AppSweep, ErrorMonotoneInPeriod) {
  // More aggressive perforation cannot reduce the error on natural
  // content (paper Fig. 8: Rows1 error is about half of Rows2's).
  Image In = generateImage(ImageClass::Natural, 64, 64, 31);
  double E2 = perforatedError(
      GetParam(), In,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor));
  double E4 = perforatedError(
      GetParam(), In,
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor));
  EXPECT_LE(E2, E4 * 1.05); // 5% slack for float accumulation noise.
}

TEST_P(AppSweep, ReadsMonotoneInPeriod) {
  auto TheApp = makeApp(GetParam());
  Workload W = makeImageWorkload(
      generateImage(ImageClass::Natural, 64, 64, 37));
  uint64_t Prev = ~uint64_t(0);
  for (unsigned Period : {2u, 4u, 8u}) {
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPerforated(
        Ctx,
        PerforationScheme::rows(Period,
                                ReconstructionKind::NearestNeighbor),
        {16, 16}));
    uint64_t Reads = cantFail(TheApp->run(Ctx, BK, W))
                         .Report.Totals.GlobalReadTransactions;
    EXPECT_LE(Reads, Prev) << "period " << Period;
    Prev = Reads;
  }
}

TEST_P(AppSweep, RuntimeIndependentOfContent) {
  // Identical configuration on different content: the interpreter
  // executes the same instruction stream, so the modeled time and all
  // counters must be *identical* (paper 6.2).
  auto TheApp = makeApp(GetParam());
  PerforationScheme S =
      PerforationScheme::rows(2, ReconstructionKind::Linear);
  double Times[3];
  uint64_t Reads[3];
  int I = 0;
  for (ImageClass C :
       {ImageClass::Flat, ImageClass::Natural, ImageClass::Pattern}) {
    Workload W = makeImageWorkload(generateImage(C, 64, 64, 41));
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPerforated(Ctx, S, {16, 16}));
    sim::SimReport R = cantFail(TheApp->run(Ctx, BK, W)).Report;
    Times[I] = R.TimeMs;
    Reads[I] = R.Totals.GlobalReadTransactions;
    ++I;
  }
  EXPECT_EQ(Times[0], Times[1]);
  EXPECT_EQ(Times[1], Times[2]);
  EXPECT_EQ(Reads[0], Reads[1]);
  EXPECT_EQ(Reads[1], Reads[2]);
}

TEST_P(AppSweep, ExecutionIsDeterministic) {
  auto TheApp = makeApp(GetParam());
  Workload W = makeImageWorkload(
      generateImage(ImageClass::Noise, 48, 48, 43));
  std::vector<float> First;
  double FirstTime = 0;
  for (int Round = 0; Round < 2; ++Round) {
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPerforated(
        Ctx,
        PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
        {16, 16}));
    RunOutcome R = cantFail(TheApp->run(Ctx, BK, W));
    if (Round == 0) {
      First = R.Output;
      FirstTime = R.Report.TimeMs;
      continue;
    }
    EXPECT_EQ(R.Output, First);       // Bit-identical results.
    EXPECT_EQ(R.Report.TimeMs, FirstTime);
  }
}

INSTANTIATE_TEST_SUITE_P(AllImageApps, AppSweep,
                         ::testing::ValuesIn(ImageApps),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Scheme descriptor invariants
//===----------------------------------------------------------------------===//

TEST(SchemeInvariants, LoadedFractionMonotoneInPeriod) {
  double Prev = 1.0;
  for (unsigned Period : {2u, 4u, 8u}) {
    double F = PerforationScheme::rows(
                   Period, ReconstructionKind::NearestNeighbor)
                   .loadedFraction(16, 16, 1, 1);
    EXPECT_GT(F, 0.0);
    EXPECT_LT(F, Prev) << "period " << Period;
    Prev = F;
  }
}

TEST(SchemeInvariants, GridLoadsLessThanRowsAtSamePeriod) {
  for (unsigned Period : {2u, 4u}) {
    double Rows = PerforationScheme::rows(
                      Period, ReconstructionKind::NearestNeighbor)
                      .loadedFraction(16, 16, 1, 1);
    double Grid = PerforationScheme::grid(
                      Period, ReconstructionKind::NearestNeighbor)
                      .loadedFraction(16, 16, 1, 1);
    EXPECT_LT(Grid, Rows) << "period " << Period;
  }
}

TEST(SchemeInvariants, BaselineLoadsEverything) {
  EXPECT_DOUBLE_EQ(
      PerforationScheme::none().loadedFraction(16, 16, 1, 1), 1.0);
}

TEST(SchemeInvariants, StencilLoadsTileInteriorOnly) {
  // Footprint 18x18 (16x16 tile + 1-element halo): the stencil scheme
  // fetches the 16x16 center and approximates the halo ring.
  double F = PerforationScheme::stencil().loadedFraction(18, 18, 1, 1);
  EXPECT_NEAR(F, 256.0 / 324.0, 1e-9);
}

} // namespace
