//===- tests/bytecode_test.cpp - Bytecode compiler and executor tests -------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Pins the IR-to-bytecode compiler (register allocation, phi edge
// copies, fusion) and the bytecode execution tiers against the
// tree-walking interpreter: every kernel here runs under all three
// tiers, and the fast tiers must reproduce the tree walker's output
// bytes, SimReport counters, and faults exactly. The structural tests
// (register reuse, fused opcodes) check the compiled bc::Program
// directly.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Bytecode.h"
#include "gpusim/Interpreter.h"
#include "pcl/Compiler.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace kperf;
using namespace kperf::sim;

namespace {

const ExecTier AllTiers[] = {ExecTier::Tree, ExecTier::Bytecode,
                             ExecTier::Batched};

/// One tier's run: the report (or error) plus the raw output bytes.
struct TierRun {
  Expected<SimReport> Report = makeError("not run");
  std::vector<float> Output;
};

/// Compiles kernels and runs them under every execution tier over fresh
/// buffers, so tier N never observes tier N-1's writes.
class BytecodeTest : public ::testing::Test {
protected:
  ir::Function *compile(const std::string &Source,
                        const std::string &Name = "f") {
    Expected<ir::Function *> F = pcl::compileKernel(M, Source, Name);
    EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.error().message());
    return F ? *F : nullptr;
  }

  /// Runs \p F once per tier. \p Input seeds buffer 0 of every run;
  /// \p OutSize elements of buffer 1 are captured as the output.
  std::vector<TierRun> runAllTiers(ir::Function *F, Range2 Global,
                                   Range2 Local,
                                   const std::vector<float> &Input,
                                   size_t OutSize,
                                   const std::vector<KernelArg> &Extra = {}) {
    std::vector<TierRun> Runs;
    for (ExecTier Tier : AllTiers) {
      std::vector<BufferData> Buffers;
      Buffers.emplace_back();
      Buffers.back().uploadFloats(Input);
      Buffers.emplace_back(OutSize);
      std::vector<BufferData *> Bank;
      for (BufferData &B : Buffers)
        Bank.push_back(&B);
      std::vector<KernelArg> Args = {KernelArg::makeBuffer(0),
                                     KernelArg::makeBuffer(1)};
      Args.insert(Args.end(), Extra.begin(), Extra.end());
      LaunchOptions Opts;
      Opts.Tier = Tier;
      TierRun R;
      R.Report = launchKernel(*F, Global, Local, Args, Bank, Device, Opts);
      R.Output = Buffers[1].downloadFloats();
      Runs.push_back(std::move(R));
    }
    return Runs;
  }

  /// Expects all tiers to have succeeded with tier 0's exact bytes and
  /// counters.
  void expectParity(const std::vector<TierRun> &Runs) {
    ASSERT_EQ(Runs.size(), 3u);
    for (size_t T = 0; T < Runs.size(); ++T)
      ASSERT_TRUE(static_cast<bool>(Runs[T].Report))
          << execTierName(AllTiers[T]) << ": "
          << Runs[T].Report.error().message();
    for (size_t T = 1; T < Runs.size(); ++T) {
      const char *Name = execTierName(AllTiers[T]);
      ASSERT_EQ(Runs[0].Output.size(), Runs[T].Output.size()) << Name;
      EXPECT_EQ(std::memcmp(Runs[0].Output.data(), Runs[T].Output.data(),
                            Runs[0].Output.size() * sizeof(float)),
                0)
          << Name << " changed the output bytes";
      const Counters &A = Runs[0].Report->Totals;
      const Counters &B = Runs[T].Report->Totals;
      EXPECT_EQ(A.AluOps, B.AluOps) << Name;
      EXPECT_EQ(A.PrivateAccesses, B.PrivateAccesses) << Name;
      EXPECT_EQ(A.LocalAccesses, B.LocalAccesses) << Name;
      EXPECT_EQ(A.LocalWavefrontOps, B.LocalWavefrontOps) << Name;
      EXPECT_EQ(A.BankConflictExtra, B.BankConflictExtra) << Name;
      EXPECT_EQ(A.GlobalReadTransactions, B.GlobalReadTransactions) << Name;
      EXPECT_EQ(A.GlobalWriteTransactions, B.GlobalWriteTransactions)
          << Name;
      EXPECT_EQ(A.GlobalReads, B.GlobalReads) << Name;
      EXPECT_EQ(A.GlobalWrites, B.GlobalWrites) << Name;
      EXPECT_EQ(A.Barriers, B.Barriers) << Name;
      EXPECT_EQ(A.WorkGroups, B.WorkGroups) << Name;
      EXPECT_EQ(A.WorkItems, B.WorkItems) << Name;
    }
  }

  ir::Module M;
  DeviceConfig Device;
};

std::vector<float> iota(size_t N, float Scale = 1.0f) {
  std::vector<float> V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = Scale * static_cast<float>((I * 7) % 23 + 1);
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tier-name plumbing
//===----------------------------------------------------------------------===//

TEST(ExecTierTest, ParseAndName) {
  ExecTier T = ExecTier::Tree;
  EXPECT_TRUE(parseExecTier("tree", T));
  EXPECT_EQ(T, ExecTier::Tree);
  EXPECT_TRUE(parseExecTier("bytecode", T));
  EXPECT_EQ(T, ExecTier::Bytecode);
  EXPECT_TRUE(parseExecTier("batched", T));
  EXPECT_EQ(T, ExecTier::Batched);
  EXPECT_FALSE(parseExecTier("warpspeed", T));
  EXPECT_EQ(T, ExecTier::Batched); // Untouched on failure.
  for (ExecTier Tier : AllTiers) {
    ExecTier Back = ExecTier::Tree;
    EXPECT_TRUE(parseExecTier(execTierName(Tier), Back));
    EXPECT_EQ(Back, Tier);
  }
}

//===----------------------------------------------------------------------===//
// Compiler structure: register allocation and fusion
//===----------------------------------------------------------------------===//

TEST_F(BytecodeTest, LinearScanReusesDeadRegisters) {
  // A long chain of single-use values: each intermediate dies at its one
  // use, so the linear scan packs the whole chain into a handful of
  // registers instead of one per SSA value.
  std::string Source = "kernel void f(global const float* in, "
                       "global float* out, int w) {"
                       "  int x = get_global_id(0);"
                       "  float a = in[x];";
  for (int I = 0; I < 40; ++I)
    Source += "  a = a * 1.5 + 2.0;";
  Source += "  out[x] = a;"
            "}";
  ir::Function *F = compile(Source);
  ASSERT_NE(F, nullptr);
  bc::Program P = cantFail(bc::compile(*F));
  ASSERT_GT(P.NumRegs, P.NumShared);
  unsigned Allocated = P.NumRegs - P.NumShared;
  // The chain alone defines 80+ values; liveness must keep the register
  // file near the peak-live bound (plus at most a pair of cycle-breaking
  // scratch registers), not near the value count.
  EXPECT_LE(Allocated, P.MaxLive + 2);
  EXPECT_LT(P.MaxLive, 16u);
  EXPECT_GT(P.Code.size(), 40u);
}

TEST_F(BytecodeTest, FusionEmitsSuperinstructions) {
  // in[y*w+x] lowers to MulAdd feeding a Gep feeding a Load: the
  // peephole must fold at least the address computation into the memory
  // op, and the fused program must stay within the unfused counters.
  ir::Function *F = compile("kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int x = get_global_id(0);"
                            "  int y = get_global_id(1);"
                            "  out[y * w + x] = in[y * w + x] * 2.0;"
                            "}");
  ASSERT_NE(F, nullptr);
  bc::Program P = cantFail(bc::compile(*F));
  bool HasFused = false;
  for (const bc::Instr &I : P.Code)
    HasFused |= I.Opc >= bc::Op::LdGX;
  EXPECT_TRUE(HasFused)
      << "no fused superinstruction in the compiled program";
}

//===----------------------------------------------------------------------===//
// Phi edge copies
//===----------------------------------------------------------------------===//

TEST_F(BytecodeTest, PhiSwapCycleOnLoopBackEdge) {
  // After mem2reg, a and b become phis whose back-edge incoming values
  // are each other: a parallel-copy swap cycle the compiler must break
  // with a scratch register. 5 iterations = odd swap count, so a wrong
  // sequentialization (copy a->b before b's read) changes the result.
  // mem2reg promotes the allocas into the phis this test is about.
  pcl::CompileOptions CO;
  CO.PipelineSpec = "mem2reg";
  Expected<ir::Function *> F =
      pcl::compileKernel(M,
                         "kernel void f(global const float* in, "
                         "global float* out, int w) {"
                         "  int x = get_global_id(0);"
                         "  float a = in[x];"
                         "  float b = a * 3.0 + 1.0;"
                         "  for (int i = 0; i < 5; i++) {"
                         "    float t = a;"
                         "    a = b;"
                         "    b = t;"
                         "  }"
                         "  out[x] = a * 2.0 - b;"
                         "}",
                         "f", CO);
  ASSERT_TRUE(static_cast<bool>(F)) << F.error().message();
  // The loop header phis must carry a back-edge copy list with the swap.
  bc::Program P = cantFail(bc::compile(**F));
  EXPECT_FALSE(P.CopyPool.empty())
      << "expected phi edge copies after mem2reg";
  expectParity(runAllTiers(*F, {64, 1}, {16, 1}, iota(64), 64,
                           {KernelArg::makeInt(64)}));
}

//===----------------------------------------------------------------------===//
// Divergence, barriers, faults
//===----------------------------------------------------------------------===//

TEST_F(BytecodeTest, DivergentBranchesReconverge) {
  // Data-dependent triple split inside a loop: items take different pc
  // paths each iteration and the batched tier must keep per-item masks
  // straight through the re-merges.
  ir::Function *F = compile("kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int x = get_global_id(0);"
                            "  float v = in[x];"
                            "  float acc = 0.0;"
                            "  for (int i = 0; i < 4; i++) {"
                            "    if (x % 3 == 0) {"
                            "      acc = acc + v;"
                            "    } else if (x % 3 == 1) {"
                            "      acc = acc - v * 0.5;"
                            "    } else {"
                            "      acc = acc * 1.25 + 1.0;"
                            "    }"
                            "  }"
                            "  out[x] = acc;"
                            "}");
  ASSERT_NE(F, nullptr);
  expectParity(runAllTiers(F, {64, 1}, {16, 1}, iota(64), 64,
                           {KernelArg::makeInt(64)}));
}

TEST_F(BytecodeTest, BarrierSuspendsAndResumes) {
  // Values live across two barriers (v1 spans the middle one), local
  // traffic on both sides, and a cross-item read pattern that fails if
  // any tier lets an item run ahead of the barrier.
  ir::Function *F = compile("kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  local float t[16];"
                            "  int l = get_local_id(0);"
                            "  int x = get_global_id(0);"
                            "  t[l] = in[x];"
                            "  barrier();"
                            "  float v1 = t[15 - l];"
                            "  barrier();"
                            "  t[l] = v1 * 2.0;"
                            "  barrier();"
                            "  out[x] = t[(l + 1) % 16] + v1;"
                            "}");
  ASSERT_NE(F, nullptr);
  std::vector<TierRun> Runs =
      runAllTiers(F, {64, 1}, {16, 1}, iota(64), 64,
                  {KernelArg::makeInt(64)});
  expectParity(Runs);
  EXPECT_EQ(Runs[0].Report->Totals.Barriers, 3u * 64u); // 3 per item.
}

TEST_F(BytecodeTest, DivergentBarrierFaultsOnAllTiers) {
  ir::Function *F = compile("kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int l = get_local_id(0);"
                            "  if (l < 2) { barrier(); }"
                            "  out[get_global_id(0)] = in[l];"
                            "}");
  ASSERT_NE(F, nullptr);
  std::vector<TierRun> Runs = runAllTiers(F, {8, 1}, {4, 1}, iota(8), 8,
                                          {KernelArg::makeInt(8)});
  for (size_t T = 0; T < Runs.size(); ++T) {
    ASSERT_FALSE(static_cast<bool>(Runs[T].Report))
        << execTierName(AllTiers[T])
        << " accepted a divergent barrier";
    EXPECT_NE(Runs[T].Report.error().message().find("barrier"),
              std::string::npos)
        << execTierName(AllTiers[T]);
  }
}

TEST_F(BytecodeTest, DivisionByZeroFaultsOnAllTiers) {
  // in[] holds a zero at one item: the per-item fault must fire on every
  // tier, including the batched tier's vectorized divide fast path
  // (which must prescan and fall back).
  std::vector<float> Input = iota(32);
  Input[17] = 0.0f;
  ir::Function *F = compile("kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int x = get_global_id(0);"
                            "  int d = (int)in[x];"
                            "  out[x] = (float)(100 / d);"
                            "}");
  ASSERT_NE(F, nullptr);
  std::vector<TierRun> Runs = runAllTiers(F, {32, 1}, {16, 1}, Input, 32,
                                          {KernelArg::makeInt(32)});
  for (size_t T = 0; T < Runs.size(); ++T) {
    ASSERT_FALSE(static_cast<bool>(Runs[T].Report))
        << execTierName(AllTiers[T]) << " missed the division by zero";
    EXPECT_NE(Runs[T].Report.error().message().find("division"),
              std::string::npos)
        << execTierName(AllTiers[T]) << ": "
        << Runs[T].Report.error().message();
  }
}

//===----------------------------------------------------------------------===//
// Counter parity on memory-heavy shapes
//===----------------------------------------------------------------------===//

TEST_F(BytecodeTest, StridedAccessCountersMatch) {
  // Non-contiguous global pattern + local bank structure: exercises the
  // batched tier's transaction/bank accounting against the tree
  // walker's, including the non-consecutive-offset paths.
  ir::Function *F = compile("kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  local float t[16];"
                            "  int l = get_local_id(0);"
                            "  int x = get_global_id(0);"
                            "  t[(l * 3) % 16] = in[(x * 5) % 64];"
                            "  barrier();"
                            "  out[x] = t[(l * 7) % 16] + in[x];"
                            "}");
  ASSERT_NE(F, nullptr);
  expectParity(runAllTiers(F, {64, 1}, {16, 1}, iota(64), 64,
                           {KernelArg::makeInt(64)}));
}
