//===- tests/lint_test.cpp - Range/divergence analyses and lint -------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Unit tests of the two dataflow analyses behind the static kernel
// checker -- interval ranges (refinement, widening, wraparound
// conservatism) and divergence (sync dependence, reconvergence) -- the
// lint diagnostics built on them, the AnalysisManager caching counters,
// the Session lint gate, and the nine-apps-are-diagnostic-free
// regression pinning the severity contract: error-severity means the
// fault is proven, so kernels that run fault-free must produce none.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "ir/AnalysisManager.h"
#include "ir/Lint.h"
#include "ir/Passes.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Compiles the single kernel "f" of \p Source under \p Spec.
Function *compileWith(Module &M, const char *Source,
                      const char *Spec = "mem2reg") {
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = Spec;
  Opts.VerifyEach = true;
  Expected<Function *> F = pcl::compileKernel(M, Source, "f", Opts);
  EXPECT_TRUE(static_cast<bool>(F)) << F.error().message();
  return F ? *F : nullptr;
}

const BasicBlock *blockNamed(const Function &F, const std::string &Name) {
  for (const auto &BB : F.blocks())
    if (BB->name() == Name)
      return BB.get();
  ADD_FAILURE() << "no block named " << Name;
  return nullptr;
}

const Instruction *firstInst(const Function &F, Opcode Op) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Op)
        return I.get();
  ADD_FAILURE() << "no instruction with the requested opcode";
  return nullptr;
}

const Instruction *valueNamed(const Function &F, const std::string &Name) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->name() == Name)
        return I.get();
  ADD_FAILURE() << "no value named " << Name;
  return nullptr;
}

unsigned countCheck(const lint::LintResult &R, const char *Check,
                    lint::Severity Sev) {
  unsigned N = 0;
  for (const lint::Diagnostic &D : R.Diags)
    N += D.Check == Check && D.Sev == Sev;
  return N;
}

//===----------------------------------------------------------------------===//
// RangeAnalysis
//===----------------------------------------------------------------------===//

TEST(RangeAnalysisTest, WorkItemIdsSeedFromBounds) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int x = get_global_id(0);"
                            "  out[x] = in[x];"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  const DominatorTree &DT = AM.getDominatorTree(*F);
  const Instruction *Id = firstInst(*F, Opcode::Call);
  ASSERT_NE(Id, nullptr);

  // Unknown launch: ids are non-negative but unbounded.
  RangeAnalysis Unbounded = RangeAnalysis::compute(*F, DT);
  EXPECT_EQ(Unbounded.rangeOf(Id), Interval::make(0, INT32_MAX));

  NDRangeBounds B;
  B.GlobalSize[0] = 64;
  RangeAnalysis RA = RangeAnalysis::compute(*F, DT, B);
  EXPECT_EQ(RA.rangeOf(Id), Interval::make(0, 63));
}

TEST(RangeAnalysisTest, BranchConditionRefinesDominatedCode) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int x = get_global_id(0);"
                            "  if (x < 10) { out[x + 1] = in[x]; }"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  RangeAnalysis RA = RangeAnalysis::compute(*F, AM.getDominatorTree(*F));
  const Instruction *Id = firstInst(*F, Opcode::Call);
  const Instruction *Plus1 = firstInst(*F, Opcode::Add);
  const BasicBlock *Then = blockNamed(*F, "if.then0");
  ASSERT_NE(Id, nullptr);
  ASSERT_NE(Plus1, nullptr);
  ASSERT_NE(Then, nullptr);

  // Flow-insensitive: only the id's own non-negativity.
  EXPECT_EQ(RA.rangeOf(Id), Interval::make(0, INT32_MAX));
  // Inside the taken edge the condition holds, and the refinement
  // reaches derived expressions: x in [0,9], x+1 in [1,10].
  EXPECT_EQ(RA.rangeAt(Id, Then), Interval::make(0, 9));
  EXPECT_EQ(RA.rangeAt(Plus1, Then), Interval::make(1, 10));
}

TEST(RangeAnalysisTest, LoopPhiWidensInsteadOfIterating) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int x = get_global_id(0);"
                            "  float acc = 0.0;"
                            "  for (int i = 0; i < w; i++) {"
                            "    acc = acc + in[clamp(i, 0, 63)];"
                            "  }"
                            "  out[x] = acc;"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  RangeAnalysis RA = RangeAnalysis::compute(*F, AM.getDominatorTree(*F));
  const Instruction *I = valueNamed(*F, "i");
  ASSERT_NE(I, nullptr);
  ASSERT_EQ(I->opcode(), Opcode::Phi);

  // The stable bound survives widening, the growing one jumps to the
  // int32 extreme (w's range gives the exit test no finite cap).
  EXPECT_EQ(RA.rangeOf(I), Interval::make(0, INT32_MAX));
  // In the body the i < w refinement shaves the upper bound: i can
  // never equal INT32_MAX there (w <= INT32_MAX means i <= max-1).
  Interval AtBody = RA.rangeAt(I, blockNamed(*F, "for.body0"));
  EXPECT_EQ(AtBody.Lo, 0);
  EXPECT_LT(AtBody.Hi, INT32_MAX);
}

TEST(RangeAnalysisTest, OverflowCollapsesToFullRange) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int x = get_global_id(0);"
                            "  int y = x + x;"
                            "  out[clamp(y, 0, 63)] = 1.0;"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  RangeAnalysis RA = RangeAnalysis::compute(*F, AM.getDominatorTree(*F));
  // x in [0, INT32_MAX], so x+x can wrap anywhere: the sound answer is
  // the full range (negatives included), not a clamped [0, INT32_MAX].
  const Instruction *Y = firstInst(*F, Opcode::Add);
  ASSERT_NE(Y, nullptr);
  EXPECT_TRUE(RA.rangeOf(Y).isFull());
  // The clamp restores an informative range.
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Call && I->callee() == Builtin::Clamp)
        EXPECT_EQ(RA.rangeOf(I.get()), Interval::make(0, 63));
}

//===----------------------------------------------------------------------===//
// DivergenceAnalysis
//===----------------------------------------------------------------------===//

TEST(DivergenceAnalysisTest, IdsDivergeUniformArgumentsDoNot) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int l = get_local_id(0);"
                            "  out[l] = (float)(w + 3);"
                            "}");
  ASSERT_NE(F, nullptr);
  DivergenceAnalysis DA = DivergenceAnalysis::compute(*F);
  const Instruction *L = firstInst(*F, Opcode::Call);
  const Instruction *WPlus3 = firstInst(*F, Opcode::Add);
  ASSERT_NE(L, nullptr);
  ASSERT_NE(WPlus3, nullptr);
  EXPECT_TRUE(DA.isDivergent(L));
  EXPECT_TRUE(DA.isUniform(WPlus3)); // Argument arithmetic.
}

TEST(DivergenceAnalysisTest, SyncDependenceMakesPhiDivergent) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int l = get_local_id(0);"
                            "  int v = 0;"
                            "  if (l < 2) { v = 1; }"
                            "  out[get_global_id(0)] = (float)v;"
                            "}");
  ASSERT_NE(F, nullptr);
  DivergenceAnalysis DA = DivergenceAnalysis::compute(*F);
  const Instruction *V = valueNamed(*F, "v");
  ASSERT_NE(V, nullptr);
  ASSERT_EQ(V->opcode(), Opcode::Phi);
  // Both incomings are constants; only the arrival edge differs per
  // item -- the phi is divergent purely through sync dependence.
  EXPECT_TRUE(DA.isDivergent(V));
}

TEST(DivergenceAnalysisTest, ControlReconvergesAtThePostDominator) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int l = get_local_id(0);"
                            "  int v = 0;"
                            "  if (l < 2) { v = 1; }"
                            "  out[get_global_id(0)] = (float)v;"
                            "}");
  ASSERT_NE(F, nullptr);
  DivergenceAnalysis DA = DivergenceAnalysis::compute(*F);
  // The guarded block is divergently executed; the join block is not --
  // every item reaches the post-dominator again.
  EXPECT_TRUE(DA.isDivergentBlock(blockNamed(*F, "if.then0")));
  EXPECT_FALSE(DA.isDivergentBlock(blockNamed(*F, "if.end0")));
  EXPECT_FALSE(DA.isDivergentBlock(blockNamed(*F, "entry")));
  EXPECT_FALSE(DA.hasUniformBranch(blockNamed(*F, "entry")));
}

TEST(DivergenceAnalysisTest, ArgumentBranchIsUniform) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w, int h) {"
                            "  int x = get_global_id(0);"
                            "  if (w > 10) { out[x] = in[x]; }"
                            "}");
  ASSERT_NE(F, nullptr);
  DivergenceAnalysis DA = DivergenceAnalysis::compute(*F);
  EXPECT_TRUE(DA.hasUniformBranch(blockNamed(*F, "entry")));
  // Every item takes the same edge: the guarded block is not divergent.
  EXPECT_FALSE(DA.isDivergentBlock(blockNamed(*F, "if.then0")));
}

//===----------------------------------------------------------------------===//
// Lint diagnostics
//===----------------------------------------------------------------------===//

TEST(LintTest, DivergentBarrierIsAnError) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int l = get_local_id(0);"
                            "  if (l < 2) { barrier(); }"
                            "  out[get_global_id(0)] = in[clamp(l, 0, 7)];"
                            "}",
                            "mem2reg,fixpoint(simplify,sroa,mem2reg,gvn,"
                            "cse,memopt-forward,licm,memopt-dse,dce)");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  EXPECT_EQ(countCheck(R, "divergent-barrier", lint::Severity::Error), 1u)
      << R.str();
  EXPECT_TRUE(R.hasErrors());
}

TEST(LintTest, UniformAndReconvergedBarriersAreClean) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int l = get_local_id(0);"
                            "  local float t[16];"
                            "  t[l] = in[clamp(l, 0, 63)];"
                            "  if (w > 10) { barrier(); }"  // Uniform guard.
                            "  if (l < 2) { t[l] = 0.0; }"
                            "  barrier();"                  // Post-join.
                            "  out[get_global_id(0)] = t[15 - l];"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  EXPECT_EQ(countCheck(R, "divergent-barrier", lint::Severity::Error), 0u)
      << R.str();
}

TEST(LintTest, ConstantOobStoreIsAnError) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  float p[8];"
                            "  int x = get_global_id(0);"
                            "  p[0] = in[clamp(x, 0, 63)];"
                            "  p[8200] = 3.0;"
                            "  out[x] = p[0];"
                            "}",
                            ir::defaultPipelineSpec());
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  EXPECT_EQ(countCheck(R, "oob", lint::Severity::Error), 1u) << R.str();
}

TEST(LintTest, PossiblyOobIndexIsAWarning) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  float p[8];"
                            "  int x = get_global_id(0);"
                            "  p[clamp(x, 0, 10)] = in[clamp(x, 0, 63)];"
                            "  out[x] = p[clamp(x, 0, 7)];"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  // [0,10] exceeds p[0..7] but overlaps it: unproven, so a warning.
  EXPECT_EQ(countCheck(R, "oob", lint::Severity::Warning), 1u) << R.str();
  EXPECT_EQ(R.numErrors(), 0u) << R.str();
}

TEST(LintTest, NegativeGlobalIndexIsAnError) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int m = 0 - 5;"
                            "  out[m] = 1.0;"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  EXPECT_EQ(countCheck(R, "oob", lint::Severity::Error), 1u) << R.str();
}

TEST(LintTest, DivByZeroSeverityTracksTheDivisorRange) {
  Module M;
  // Divisor provably zero: error. Divisor [0,4]: possible, warning.
  // Fully-unknown divisor (w): quiet.
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int x = get_global_id(0);"
                            "  int z = w * 0;"
                            "  int a = x / z;"
                            "  int b = x / clamp(w, 0, 4);"
                            "  int c = x / w;"
                            "  out[clamp(a + b + c, 0, 63)] = 1.0;"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  EXPECT_EQ(countCheck(R, "div-by-zero", lint::Severity::Error), 1u)
      << R.str();
  EXPECT_EQ(countCheck(R, "div-by-zero", lint::Severity::Warning), 1u)
      << R.str();
}

TEST(LintTest, UninitializedPrivateLoadIsAWarning) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  float p[4];"
                            "  int x = get_global_id(0);"
                            "  out[x] = p[2];"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*F, AM);
  EXPECT_EQ(countCheck(R, "uninit-private", lint::Severity::Warning), 1u)
      << R.str();
}

TEST(LintTest, UnsynchronizedLocalAccessesWarnButTileIdiomIsClean) {
  Module M;
  // Write t[l] and read t[15-l] with no barrier in between: a possible
  // read-write race.
  Function *Racy = compileWith(M,
                               "kernel void f(global const float* in, "
                               "global float* out, int w) {"
                               "  int l = get_local_id(0);"
                               "  local float t[16];"
                               "  t[l] = in[clamp(l, 0, 63)];"
                               "  out[get_global_id(0)] = t[15 - l];"
                               "}");
  ASSERT_NE(Racy, nullptr);
  AnalysisManager AM;
  lint::LintResult R = lint::run(*Racy, AM);
  EXPECT_GE(countCheck(R, "local-race", lint::Severity::Warning), 1u)
      << R.str();
  EXPECT_EQ(R.numErrors(), 0u) << R.str();

  // The same pattern with the barrier is the cooperative tile idiom.
  pcl::CompileOptions Opts;
  Opts.PipelineSpec = "mem2reg";
  Expected<Function *> G = pcl::compileKernel(
      M,
      "kernel void g(global const float* in, global float* out, int w) {"
      "  int l = get_local_id(0);"
      "  local float t[16];"
      "  t[l] = in[clamp(l, 0, 63)];"
      "  barrier();"
      "  out[get_global_id(0)] = t[15 - l];"
      "}",
      "g", Opts);
  ASSERT_TRUE(static_cast<bool>(G)) << G.error().message();
  lint::LintResult RG = lint::run(**G, AM);
  EXPECT_EQ(countCheck(RG, "local-race", lint::Severity::Warning), 0u)
      << RG.str();
}

//===----------------------------------------------------------------------===//
// AnalysisManager caching
//===----------------------------------------------------------------------===//

TEST(AnalysisCachingTest, RangeAndDivergenceAreCachedAndCounted) {
  Module M;
  Function *F = compileWith(M,
                            "kernel void f(global const float* in, "
                            "global float* out, int w) {"
                            "  int x = get_global_id(0);"
                            "  out[x] = in[clamp(x, 0, 63)];"
                            "}");
  ASSERT_NE(F, nullptr);
  AnalysisManager AM;
  AM.getRangeAnalysis(*F);
  AM.getRangeAnalysis(*F); // Hit.
  NDRangeBounds B;
  B.LocalSize[0] = 16;
  AM.getRangeAnalysis(*F, B); // Different bounds: recompute.
  AM.getRangeAnalysis(*F, B); // Hit again.
  AM.getDivergenceAnalysis(*F);
  AM.getDivergenceAnalysis(*F); // Hit.
  EXPECT_EQ(AM.counters().RangeComputes, 2u);
  EXPECT_EQ(AM.counters().RangeHits, 2u);
  EXPECT_EQ(AM.counters().DivComputes, 1u);
  EXPECT_EQ(AM.counters().DivHits, 1u);

  // Both are instruction-sensitive: any invalidation drops them, even a
  // CFG-preserving one.
  AM.invalidate(*F, /*CFGPreserved=*/true);
  AM.getRangeAnalysis(*F, B);
  AM.getDivergenceAnalysis(*F);
  EXPECT_EQ(AM.counters().RangeComputes, 3u);
  EXPECT_EQ(AM.counters().DivComputes, 2u);

  // The stats line carries all five analyses.
  std::string S = AM.counters().str();
  EXPECT_NE(S.find("range 3/2"), std::string::npos) << S;
  EXPECT_NE(S.find("divergence 2/1"), std::string::npos) << S;
}

//===----------------------------------------------------------------------===//
// Session lint gate and the apps regression
//===----------------------------------------------------------------------===//

TEST(LintGateTest, GatePassesEveryGeneratedVariant) {
  // The gate must never reject what the transform generates: perforated
  // kernels (local prefetch, barriers, clamped tile indexing) are
  // exactly the shapes the checks were tuned against.
  rt::Session S;
  EXPECT_FALSE(S.lintGate()); // Off by default.
  S.setLintGate(true);
  auto Apps = apps::makeAllApps();
  ASSERT_FALSE(Apps.empty());
  for (const auto &A : Apps) {
    Expected<rt::Variant> V = A->buildPerforated(
        S, perf::PerforationScheme::rows(
               2, perf::ReconstructionKind::NearestNeighbor),
        {16, 16});
    EXPECT_TRUE(static_cast<bool>(V))
        << A->name() << ": " << V.error().message();
  }
}

TEST(LintAppsTest, AllNineAppsAreDiagnosticFree) {
  // Acceptance regression: every app kernel, compiled under the default
  // pipeline, produces zero diagnostics -- not even warnings. The suite
  // runs fault-free, so any error here is a false positive by
  // construction; warnings would spam every `kperfc lint` run.
  auto Apps = apps::makeAllApps();
  auto Ext = apps::makeExtensionApps();
  for (auto &A : Ext)
    Apps.push_back(std::move(A));
  ASSERT_EQ(Apps.size(), 9u);
  for (const auto &A : Apps) {
    rt::Session S;
    pcl::CompileOptions CO;
    CO.PipelineSpec = ir::defaultPipelineSpec();
    Expected<std::vector<rt::Kernel>> Kernels =
        S.compileAll(A->source(), CO);
    ASSERT_TRUE(static_cast<bool>(Kernels))
        << A->name() << ": " << Kernels.error().message();
    lint::LintOptions LO;
    LO.Bounds.LocalSize[0] = 16;
    LO.Bounds.LocalSize[1] = 16;
    for (const rt::Kernel &K : *Kernels) {
      lint::LintResult R = lint::run(*K.F, S.analyses(), LO);
      EXPECT_TRUE(R.Diags.empty())
          << A->name() << "/" << K.name() << ":\n" << R.str();
    }
  }
}

} // namespace
