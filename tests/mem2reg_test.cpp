//===- tests/mem2reg_test.cpp - SSA promotion tests -------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// mem2reg coverage: straight-line promotion, if/else phi placement,
// loop-carried variables, the non-promotable cases (address taken through
// a GEP, local allocas, barrier-crossing scalars), phi verifier
// invariants, cloning of phi-form IR, and an interpreter-level check that
// promoted kernels compute bit-identical outputs with less private-memory
// traffic.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Interpreter.h"
#include "ir/AnalysisManager.h"
#include "ir/Clone.h"
#include "ir/IRBuilder.h"
#include "ir/Mem2Reg.h"
#include "ir/Passes.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Compiles \p Source and returns its single kernel.
Function *compileKernel(rt::Session &Ctx, const char *Source) {
  Expected<std::vector<Function *>> Fns =
      pcl::compile(Ctx.module(), Source);
  EXPECT_TRUE(static_cast<bool>(Fns)) << (Fns ? "" : Fns.error().message());
  return Fns ? Fns->front() : nullptr;
}

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      N += I->opcode() == Op ? 1 : 0;
  return N;
}

unsigned countPrivateAllocas(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Alloca &&
          I->allocaSpace() == AddressSpace::Private)
        ++N;
  return N;
}

/// Runs "mem2reg,dce" (the acceptance pipeline) over \p F.
PipelineStats promote(Function &F, Module &M) {
  Expected<PipelineStats> S = runPipelineSpec(F, M, "mem2reg,dce");
  EXPECT_TRUE(static_cast<bool>(S)) << (S ? "" : S.error().message());
  Error E = verifyFunction(F);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  return S ? *S : PipelineStats();
}

//===----------------------------------------------------------------------===//
// Promotion coverage
//===----------------------------------------------------------------------===//

TEST(Mem2RegTest, StraightLinePromotionLeavesNoAllocasOrPhis) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  int x = get_global_id(0);
  float a = in[x];
  float b = a * 2.0;
  float c = b + a;
  out[x] = c;
}
)");
  ASSERT_NE(F, nullptr);
  EXPECT_GT(countPrivateAllocas(*F), 0u);

  PipelineStats S = promote(*F, Ctx.module());
  EXPECT_GT(S.promoted(), 0u);
  // Every private scalar promotes; straight-line code needs no phis.
  EXPECT_EQ(countPrivateAllocas(*F), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Phi), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Load), 1u);  // The global input load.
  EXPECT_EQ(countOpcode(*F, Opcode::Store), 1u); // The global output store.
}

TEST(Mem2RegTest, IfElsePlacesPhiAtTheJoin) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  int x = get_global_id(0);
  float v = 0.0;
  if (x % 2 == 0) {
    v = in[x] * 2.0;
  } else {
    v = in[x] + 1.0;
  }
  out[x] = v;
}
)");
  ASSERT_NE(F, nullptr);
  PipelineStats S = promote(*F, Ctx.module());
  EXPECT_GT(S.promoted(), 0u);
  EXPECT_EQ(countPrivateAllocas(*F), 0u);
  // Exactly one merge point: v at the if/else join. The phi lives in the
  // join block and draws one incoming per predecessor.
  ASSERT_EQ(countOpcode(*F, Opcode::Phi), 1u);
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Phi) {
        EXPECT_EQ(I->numIncoming(), 2u);
        EXPECT_NE(BB->name().find("if.end"), std::string::npos)
            << "phi placed in '" << BB->name() << "'";
      }
}

TEST(Mem2RegTest, LoopCarriedVariableBecomesHeaderPhi) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  int x = get_global_id(0);
  float acc = 0.0;
  for (int i = 0; i < 4; i++) {
    acc += in[x + i];
  }
  out[x] = acc;
}
)");
  ASSERT_NE(F, nullptr);
  PipelineStats S = promote(*F, Ctx.module());
  EXPECT_GT(S.promoted(), 0u);
  EXPECT_EQ(countPrivateAllocas(*F), 0u);
  // acc and i are both loop-carried: phis in the loop header, each with
  // an incoming from the preheader side and one from the latch.
  unsigned HeaderPhis = 0;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Phi &&
          BB->name().find("for.cond") != std::string::npos) {
        ++HeaderPhis;
        EXPECT_EQ(I->numIncoming(), 2u);
      }
  EXPECT_EQ(HeaderPhis, 2u);
  EXPECT_EQ(countOpcode(*F, Opcode::Phi), HeaderPhis);
}

TEST(Mem2RegTest, PromotionIsIdempotent) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  float acc = 0.0;
  for (int i = 0; i < 3; i++) { acc += in[i]; }
  out[get_global_id(0)] = acc;
}
)");
  ASSERT_NE(F, nullptr);
  promote(*F, Ctx.module());
  AnalysisManager AM;
  EXPECT_EQ(promoteMemoryToRegisters(*F, Ctx.module(), AM), 0u);
}

//===----------------------------------------------------------------------===//
// Non-promotable cases
//===----------------------------------------------------------------------===//

TEST(Mem2RegTest, ArrayAllocaIndexedThroughGepStays) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  float window[3];
  int x = get_global_id(0);
  for (int i = 0; i < 3; i++) { window[i] = in[x + i]; }
  out[x] = window[0] + window[1] + window[2];
}
)");
  ASSERT_NE(F, nullptr);
  PipelineStats S = promote(*F, Ctx.module());
  EXPECT_GT(S.promoted(), 0u); // x and i still promote...
  EXPECT_EQ(countPrivateAllocas(*F), 1u); // ...but the array stays.
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Alloca)
        EXPECT_EQ(I->allocaCount(), 3u);
}

TEST(Mem2RegTest, LocalAllocaStays) {
  // PCL only declares local arrays, so build the local scalar directly:
  // a per-work-group counter is shared state and must stay in memory.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("k");
  F->addArgument(Type::pointerTo(ScalarKind::Float, AddressSpace::Global),
                 "out", false);
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);
  Instruction *L =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Local, "shared");
  B.createStore(M.getFloat(1.0f), L);
  Instruction *V = B.createLoad(L, "v");
  B.createStore(V, B.createGep(F->argument(0), M.getInt(0)));
  B.createRet();
  ASSERT_FALSE(static_cast<bool>(verifyFunction(*F)));

  AnalysisManager AM;
  EXPECT_EQ(promoteMemoryToRegisters(*F, M, AM), 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Alloca), 1u);
}

TEST(Mem2RegTest, BarrierCrossingScalarPromotes) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  int x = get_global_id(0);
  float v = in[x] * 2.0;
  barrier();
  out[get_global_id(0)] = v;
}
)");
  ASSERT_NE(F, nullptr);
  PipelineStats S = promote(*F, Ctx.module());
  // v's store and load sit on opposite sides of the barrier, but every
  // execution tier suspends and resumes work items with their live SSA
  // values intact, so barrier-crossing private scalars promote like any
  // other (barriers publish local and global memory, never private).
  EXPECT_GT(S.promoted(), 0u);
  EXPECT_EQ(countPrivateAllocas(*F), 0u);
}

TEST(Mem2RegTest, UsesEntirelyOnOneSideOfABarrierStillPromote) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  barrier();
  int x = get_global_id(0);
  float v = in[x] * 2.0;
  out[x] = v + 1.0;
}
)");
  ASSERT_NE(F, nullptr);
  promote(*F, Ctx.module());
  // Every scalar's whole live range sits after the barrier (and w's
  // parameter-copy store before it has no reader): nothing straddles the
  // synchronization point, everything promotes.
  EXPECT_EQ(countPrivateAllocas(*F), 0u);
}

TEST(Mem2RegTest, LoopCarriedValueAcrossInLoopBarrierPromotes) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  float acc = 0.0;
  for (int i = 0; i < 4; i++) {
    acc = acc + in[get_global_id(0) + i * w];
    out[get_global_id(0) + i * w] = acc;
    barrier();
  }
}
)");
  ASSERT_NE(F, nullptr);
  promote(*F, Ctx.module());
  // The loop back edge carries acc (and i) across the in-loop barrier.
  // The execution tiers keep live SSA values across barrier suspension,
  // so even loop-carried barrier-crossing scalars promote: nothing
  // private survives here.
  EXPECT_EQ(countPrivateAllocas(*F), 0u);
}

//===----------------------------------------------------------------------===//
// Phi invariants: verifier, printer, clone
//===----------------------------------------------------------------------===//

/// Builds   entry -> (then | else) -> join   returning the join block.
struct Diamond {
  Module M;
  Function *F = nullptr;
  BasicBlock *Entry = nullptr, *Then = nullptr, *Else = nullptr,
             *Join = nullptr;

  Diamond() {
    IRBuilder B(M);
    F = M.createFunction("f");
    Argument *Flag = F->addArgument(Type::intTy(), "flag", false);
    F->addArgument(Type::pointerTo(ScalarKind::Int, AddressSpace::Global),
                   "out", false);
    Entry = F->createBlock("entry");
    Then = F->createBlock("then");
    Else = F->createBlock("else");
    Join = F->createBlock("join");
    B.setInsertPoint(Entry);
    B.createCondBr(B.createCmp(Opcode::CmpGt, Flag, M.getInt(0)), Then,
                   Else);
    B.setInsertPoint(Then);
    B.createBr(Join);
    B.setInsertPoint(Else);
    B.createBr(Join);
  }
};

TEST(Mem2RegPhiIRTest, VerifierAcceptsWellFormedPhi) {
  Diamond D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Join);
  Instruction *Phi = B.createPhi(Type::intTy(), "v");
  Phi->addIncoming(D.M.getInt(1), D.Then);
  Phi->addIncoming(D.M.getInt(2), D.Else);
  B.createStore(Phi, B.createGep(D.F->argument(1), D.M.getInt(0)));
  B.createRet();
  Error E = verifyFunction(*D.F);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  // The printer renders incoming pairs.
  EXPECT_NE(printFunction(*D.F).find("phi [1, then], [2, else]"),
            std::string::npos)
      << printFunction(*D.F);
}

TEST(Mem2RegPhiIRTest, VerifierRejectsMissingAndMisplacedPhis) {
  {
    Diamond D;
    IRBuilder B(D.M);
    B.setInsertPoint(D.Join);
    Instruction *Phi = B.createPhi(Type::intTy(), "v");
    Phi->addIncoming(D.M.getInt(1), D.Then); // No incoming for else.
    B.createRet();
    Error E = verifyFunction(*D.F);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_NE(E.message().find("incoming"), std::string::npos)
        << E.message();
  }
  {
    Diamond D;
    IRBuilder B(D.M);
    B.setInsertPoint(D.Join);
    // Build a phi below a non-phi by hand.
    B.createStore(D.M.getInt(0),
                  B.createGep(D.F->argument(1), D.M.getInt(0)));
    auto Phi = std::make_unique<Instruction>(
        Opcode::Phi, Type::intTy(), std::vector<Value *>{}, "late");
    Instruction *P = D.Join->append(std::move(Phi));
    P->addIncoming(D.M.getInt(1), D.Then);
    P->addIncoming(D.M.getInt(2), D.Else);
    B.createRet();
    Error E = verifyFunction(*D.F);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_NE(E.message().find("phi below non-phi"), std::string::npos)
        << E.message();
  }
  {
    // Phis may not appear in the entry block (it has no predecessors).
    Module M;
    Function *F = M.createFunction("f");
    BasicBlock *Entry = F->createBlock("entry");
    IRBuilder B(M);
    B.setInsertPoint(Entry);
    B.createPhi(Type::intTy(), "v");
    B.createRet();
    Error E = verifyFunction(*F);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_NE(E.message().find("entry"), std::string::npos) << E.message();
  }
}

TEST(Mem2RegPhiIRTest, CloneRemapsPhiOperandsAcrossBackEdges) {
  // Loop-carried phi: the incoming on the latch edge is defined *after*
  // the phi's block in layout order, exercising the clone fixup pass.
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, R"(
kernel void k(global const float* in, global float* out, int w) {
  float acc = 0.0;
  for (int i = 0; i < 4; i++) { acc += in[i]; }
  out[get_global_id(0)] = acc;
}
)");
  ASSERT_NE(F, nullptr);
  promote(*F, Ctx.module());
  ASSERT_GT(countOpcode(*F, Opcode::Phi), 0u);

  CloneMap Map;
  Function *Copy = cloneFunction(Ctx.module(), *F, "k_copy", Map);
  Error E = verifyFunction(*Copy);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(countOpcode(*Copy, Opcode::Phi), countOpcode(*F, Opcode::Phi));
  // Every phi operand and incoming block must reference the clone, not
  // the original.
  for (const auto &BB : Copy->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Phi)
        for (unsigned OI = 0; OI < I->numIncoming(); ++OI) {
          EXPECT_EQ(I->incomingBlock(OI)->parent(), Copy);
          if (const auto *Op =
                  dyn_cast<Instruction>(I->incomingValue(OI)))
            EXPECT_EQ(Op->parent()->parent(), Copy);
        }
}

//===----------------------------------------------------------------------===//
// End-to-end: promoted kernels compute identical results, cheaper
//===----------------------------------------------------------------------===//

/// Launches \p F over a W x H float image and returns the output pixels
/// plus the simulator report.
struct RunResult {
  std::vector<float> Out;
  sim::SimReport Report;
};

RunResult launch(rt::Session &Ctx, Function *F,
                 const std::vector<float> &Input, unsigned W, unsigned H) {
  unsigned In = Ctx.createBufferFrom(Input);
  unsigned Out = Ctx.createBuffer(Input.size());
  sim::SimReport R = cantFail(
      Ctx.launch(rt::Kernel{F}, {W, H}, {4, 4},
                 {rt::arg::buffer(In), rt::arg::buffer(Out),
                  rt::arg::i32(static_cast<int32_t>(W)),
                  rt::arg::i32(static_cast<int32_t>(H))}));
  return {Ctx.buffer(Out).downloadFloats(), R};
}

TEST(Mem2RegEndToEndTest, PromotedKernelComputesIdenticalOutput) {
  // Control flow + loop-carried state + non-promotable array: every phi
  // shape mem2reg produces, executed through the interpreter.
  const char *Source = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float window[3];
  float acc = 0.0;
  for (int i = 0; i < 3; i++) {
    window[i] = in[clamp(y + i - 1, 0, h - 1) * w + x];
  }
  for (int i = 0; i < 3; i++) {
    acc += window[i];
  }
  float v = acc / 3.0;
  if (x % 2 == 0) { v = v * 2.0; } else { v = v + 0.5; }
  out[y * w + x] = v;
}
)";
  unsigned W = 16, H = 16;
  std::vector<float> Input(W * H);
  for (unsigned I = 0; I < W * H; ++I)
    Input[I] = 0.25f * static_cast<float>(I % 31) + 1.0f;

  rt::Session Plain;
  Function *FPlain = compileKernel(Plain, Source);
  ASSERT_NE(FPlain, nullptr);
  RunResult Before = launch(Plain, FPlain, Input, W, H);

  rt::Session Optimized;
  Function *FOpt = compileKernel(Optimized, Source);
  ASSERT_NE(FOpt, nullptr);
  promote(*FOpt, Optimized.module());
  ASSERT_GT(countOpcode(*FOpt, Opcode::Phi), 0u);
  RunResult After = launch(Optimized, FOpt, Input, W, H);

  ASSERT_EQ(Before.Out.size(), After.Out.size());
  for (size_t I = 0; I < Before.Out.size(); ++I)
    EXPECT_EQ(Before.Out[I], After.Out[I]) << "pixel " << I;

  // The point of the exercise: promoted kernels drop almost all private
  // memory traffic (phis execute as free register moves), never add ALU
  // work, and leave global traffic untouched.
  EXPECT_LT(After.Report.Totals.PrivateAccesses,
            Before.Report.Totals.PrivateAccesses / 2);
  EXPECT_LE(After.Report.Totals.AluOps, Before.Report.Totals.AluOps);
  EXPECT_EQ(After.Report.Totals.GlobalReads,
            Before.Report.Totals.GlobalReads);
  EXPECT_EQ(After.Report.Totals.GlobalWrites,
            Before.Report.Totals.GlobalWrites);
}

TEST(Mem2RegEndToEndTest, DefaultPipelinePerforatedKernelStaysCorrect) {
  // The perforation transform's cleanup pipeline now starts with
  // mem2reg, so perforated clones (whose loader/compute phases are
  // split by barriers) also carry phis; run one through the simulator
  // against its accurate sibling.
  const char *Source = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int dy = 0; dy < 3; dy++) {
    acc += in[clamp(y + dy - 1, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc / 3.0;
}
)";
  unsigned W = 16, H = 16;
  std::vector<float> Input(W * H);
  for (unsigned I = 0; I < W * H; ++I)
    Input[I] = static_cast<float>((I * 7) % 23);

  rt::Session Ctx;
  rt::Kernel K = cantFail(Ctx.compile(Source, "k"));
  perf::PerforationPlan Plan;
  Plan.Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);
  Plan.TileX = 4;
  Plan.TileY = 4;
  Plan.VerifyEach = true; // Verify after every cleanup pass.
  rt::Variant P = cantFail(Ctx.perforate(K, Plan));
  EXPECT_GT(P.PassStats.promoted(), 0u);

  unsigned In = Ctx.createBufferFrom(Input);
  unsigned Out = Ctx.createBuffer(Input.size());
  std::vector<sim::KernelArg> Args = {
      rt::arg::buffer(In), rt::arg::buffer(Out),
      rt::arg::i32(static_cast<int32_t>(W)),
      rt::arg::i32(static_cast<int32_t>(H))};
  cantFail(Ctx.launch(K, {W, H}, {4, 4}, Args));
  std::vector<float> Accurate = Ctx.buffer(Out).downloadFloats();
  cantFail(Ctx.launch(P, {W, H}, Args));
  std::vector<float> Approx = Ctx.buffer(Out).downloadFloats();

  // Perforation is lossy by design; linear reconstruction over a
  // vertically smooth kernel stays close. The real assertion is that
  // execution completes and produces sane values, not NaN garbage.
  for (size_t I = 0; I < Accurate.size(); ++I) {
    EXPECT_TRUE(std::isfinite(Approx[I])) << I;
    EXPECT_NEAR(Accurate[I], Approx[I], 25.0f) << I;
  }
}

} // namespace
