//===- tests/sroa_test.cpp - Scalar replacement of aggregates tests ---------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Pins ir/SROA.h: constant-indexed private array allocas split into
// per-element scalars (which mem2reg then promotes); every refusal case
// -- variable index, out-of-bounds constant index, escaping GEP, local
// arrays -- leaves the IR untouched; and the default pipeline drives
// window arrays all the way to zero private allocas.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Mem2Reg.h"
#include "ir/Passes.h"
#include "ir/SROA.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

unsigned countAllocas(const Function &F, AddressSpace Space,
                      unsigned MinCount = 1) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Alloca &&
          I->type().addressSpace() == Space &&
          I->allocaCount() >= MinCount)
        ++N;
  return N;
}

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Op)
        ++N;
  return N;
}

/// Fixture with in/out float buffers, an int argument, and an open entry
/// block.
class SroaTest : public ::testing::Test {
protected:
  SroaTest() : B(M) {
    F = M.createFunction("f");
    In = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "in",
        true);
    Out = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
        false);
    W = F->addArgument(Type::intTy(), "w", false);
    Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
  }

  void finishAndVerify() {
    B.createRet();
    Error E = verifyFunction(*F);
    ASSERT_FALSE(E) << E.message();
  }

  Module M;
  Function *F = nullptr;
  Argument *In = nullptr;
  Argument *Out = nullptr;
  Argument *W = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B;
};

TEST_F(SroaTest, SplitsConstIndexedPrivateArray) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 3, AddressSpace::Private, "win");
  for (int I = 0; I < 3; ++I)
    B.createStore(B.createLoad(B.createGep(In, M.getInt(I)), "li"),
                  B.createGep(A, M.getInt(I)));
  Value *Sum = B.createAdd(
      B.createLoad(B.createGep(A, M.getInt(0)), "l0"),
      B.createAdd(B.createLoad(B.createGep(A, M.getInt(1)), "l1"),
                  B.createLoad(B.createGep(A, M.getInt(2)), "l2")));
  B.createStore(Sum, B.createGep(Out, M.getInt(0)));
  finishAndVerify();

  EXPECT_GT(scalarizeAggregates(*F), 0u);
  Error E = verifyFunction(*F);
  EXPECT_FALSE(E) << E.message();
  // The array is gone, replaced by three scalar allocas; no GEP on
  // private memory survives (loads/stores hit the scalars directly).
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private, 2), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private), 3u);
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Gep)
        EXPECT_NE(I->operand(0)->type().addressSpace(),
                  AddressSpace::Private);

  // mem2reg then finishes the job: zero private allocas.
  AnalysisManager AM;
  EXPECT_GT(promoteMemoryToRegisters(*F, M, AM), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private), 0u);
}

TEST_F(SroaTest, DirectArrayPointerUseMapsToElementZero) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 2, AddressSpace::Private, "a");
  // A load/store of the raw array pointer addresses element 0.
  B.createStore(M.getFloat(1.0f), A);
  Instruction *L0 = B.createLoad(A, "l0");
  Instruction *L1 = B.createLoad(B.createGep(A, M.getInt(1)), "l1");
  B.createStore(B.createAdd(L0, L1), B.createGep(Out, M.getInt(0)));
  finishAndVerify();

  EXPECT_GT(scalarizeAggregates(*F), 0u);
  Error E = verifyFunction(*F);
  EXPECT_FALSE(E) << E.message();
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private, 2), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private), 2u);
}

TEST_F(SroaTest, RefusesVariableIndex) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  B.createStore(M.getFloat(1.0f), B.createGep(A, M.getInt(0)));
  Instruction *LV = B.createLoad(B.createGep(A, W, "gv"), "lv");
  B.createStore(LV, B.createGep(Out, M.getInt(0)));
  finishAndVerify();

  // One runtime index anywhere disqualifies the whole array.
  EXPECT_EQ(scalarizeAggregates(*F), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private, 4), 1u);
}

TEST_F(SroaTest, RefusesOutOfBoundsConstIndex) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 3, AddressSpace::Private, "a");
  B.createStore(M.getFloat(1.0f), B.createGep(A, M.getInt(0)));
  // A store past the end must keep its fault: splitting would drop it.
  B.createStore(M.getFloat(2.0f), B.createGep(A, M.getInt(5)));
  finishAndVerify();

  EXPECT_EQ(scalarizeAggregates(*F), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private, 3), 1u);
}

TEST_F(SroaTest, RefusesEscapingGep) {
  Instruction *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  // The GEP result feeds another GEP, not a direct load/store: the
  // element address escapes the pattern sroa can rewrite.
  Instruction *G1 = B.createGep(A, M.getInt(1), "g1");
  Instruction *G2 = B.createGep(G1, M.getInt(1), "g2");
  B.createStore(M.getFloat(1.0f), G2);
  finishAndVerify();

  EXPECT_EQ(scalarizeAggregates(*F), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private, 4), 1u);
}

TEST_F(SroaTest, LeavesLocalArraysAndScalarsAlone) {
  Instruction *T =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Local, "tile");
  B.createStore(M.getFloat(1.0f), B.createGep(T, M.getInt(0)));
  Instruction *S =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "s");
  B.createStore(M.getFloat(2.0f), S);
  finishAndVerify();

  // Local tiles are shared across work items; single-element allocas
  // are already mem2reg's job.
  EXPECT_EQ(scalarizeAggregates(*F), 0u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Local), 1u);
  EXPECT_EQ(countAllocas(*F, AddressSpace::Private), 1u);
}

TEST(SroaPipelineTest, WindowArrayPromotesToZeroPrivateAllocas) {
  // The motivating shape: a filter window filled by a constant-trip loop
  // with runtime index arithmetic. unroll flattens the loop, simplify
  // folds the indices to constants, sroa splits, the in-fixpoint mem2reg
  // promotes -- no private traffic survives.
  rt::Session Ctx;
  Expected<Function *> F = pcl::compileKernel(Ctx.module(), R"(
kernel void k(global const float* in, global float* out, int w) {
  int x = get_global_id(0);
  float win[3];
  for (int i = 0; i < 3; i++) {
    win[i] = in[clamp(x + i, 0, w - 1)];
  }
  float acc = 0.0;
  for (int i = 0; i < 3; i++) {
    acc += win[i];
  }
  out[x] = acc;
}
)",
                                              "k");
  ASSERT_TRUE(static_cast<bool>(F)) << F.error().message();

  PipelineStats Stats = runDefaultPipeline(**F, Ctx.module());
  EXPECT_GT(Stats.scalarized(), 0u);
  EXPECT_EQ(countAllocas(**F, AddressSpace::Private), 0u);
  EXPECT_EQ(countOpcode(**F, Opcode::Load), 3u); // The three in[] reads.
  Error E = verifyFunction(**F);
  EXPECT_FALSE(E) << E.message();
}

} // namespace
