//===- tests/property_test.cpp - Parameterized property sweeps --------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// TEST_P sweeps over (application x scheme x work-group shape) asserting
// the invariants that must hold for *every* configuration:
//
//  * the transform builds and the kernel verifies + runs;
//  * constant inputs are reproduced exactly (reconstruction of a constant
//    is the constant);
//  * loaded rows/columns are bit-exact on arbitrary inputs;
//  * errors on natural inputs stay within a loose sanity bound;
//  * perforation never reads MORE than the accurate local baseline.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "ir/PassManager.h"
#include "perforation/Tuner.h"
#include "img/Generators.h"
#include "support/Rng.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::perf;

namespace {

struct SweepParam {
  const char *AppName;
  SchemeKind Kind;
  unsigned Period;
  ReconstructionKind Recon;
  unsigned WgX, WgY;
  bool ExpectFeasible;

  PerforationScheme scheme() const {
    PerforationScheme S;
    S.Kind = Kind;
    S.Period = Period;
    S.Recon = Recon;
    return S;
  }
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  const SweepParam &P = Info.param;
  std::string Kind;
  switch (P.Kind) {
  case SchemeKind::None:
    Kind = "Base";
    break;
  case SchemeKind::Rows:
    Kind = "Rows" + std::to_string(P.Period);
    break;
  case SchemeKind::Cols:
    Kind = "Cols" + std::to_string(P.Period);
    break;
  case SchemeKind::Stencil:
    Kind = "Stencil";
    break;
  case SchemeKind::Grid:
    Kind = "Grid" + std::to_string(P.Period);
    break;
  }
  Kind += P.Recon == ReconstructionKind::Linear ? "LI" : "NN";
  return std::string(P.AppName) + "_" + Kind + "_" +
         std::to_string(P.WgX) + "x" + std::to_string(P.WgY);
}

class PerforationSweep : public ::testing::TestWithParam<SweepParam> {
protected:
  Workload naturalWorkload() const {
    if (std::string(GetParam().AppName) == "hotspot")
      return makeHotspotWorkload(64, 17, /*Iterations=*/2);
    return makeImageWorkload(
        img::generateImage(img::ImageClass::Natural, 64, 64, 17));
  }

  Workload constantWorkload() const {
    if (std::string(GetParam().AppName) == "hotspot") {
      Workload W = makeHotspotWorkload(64, 17, 2);
      W.Input = img::Image(64, 64, 85.0f);
      W.Power = img::Image(64, 64, 0.25f);
      return W;
    }
    return makeImageWorkload(img::Image(64, 64, 0.35f));
  }
};

TEST_P(PerforationSweep, BuildsAndRuns) {
  const SweepParam &P = GetParam();
  auto App = makeApp(P.AppName);
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      App->buildPerforated(Ctx, P.scheme(), {P.WgX, P.WgY});
  if (!P.ExpectFeasible) {
    // Degenerate combination (e.g. a halo-dependent scheme on a 1x1
    // kernel) must either fail cleanly or degenerate to the baseline.
    if (!BK)
      SUCCEED();
    return;
  }
  ASSERT_TRUE(static_cast<bool>(BK)) << BK.error().message();
  Expected<RunOutcome> R = App->run(Ctx, *BK, naturalWorkload());
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(R->Output.size(), size_t(64) * 64);
}

TEST_P(PerforationSweep, ConstantInputExact) {
  const SweepParam &P = GetParam();
  if (!P.ExpectFeasible)
    GTEST_SKIP();
  auto App = makeApp(P.AppName);
  Workload W = constantWorkload();
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      App->buildPerforated(Ctx, P.scheme(), {P.WgX, P.WgY});
  ASSERT_TRUE(static_cast<bool>(BK)) << BK.error().message();
  RunOutcome R = cantFail(App->run(Ctx, *BK, W));
  std::vector<float> Ref = App->reference(W);
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_NEAR(R.Output[I], Ref[I], 2e-4) << I;
}

TEST_P(PerforationSweep, ErrorWithinSanityBound) {
  const SweepParam &P = GetParam();
  if (!P.ExpectFeasible)
    GTEST_SKIP();
  auto App = makeApp(P.AppName);
  Workload W = naturalWorkload();
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      App->buildPerforated(Ctx, P.scheme(), {P.WgX, P.WgY});
  ASSERT_TRUE(static_cast<bool>(BK));
  RunOutcome R = cantFail(App->run(Ctx, *BK, W));
  double Err = App->score(App->reference(W), R.Output);
  // Loose sanity bound: even Rows2 on natural content stays far below
  // "completely wrong".
  EXPECT_LT(Err, 0.35) << Err;
  // The accurate baseline matches the reference up to float rounding
  // (median's sum-minus-extremes selection differs in the last ulp).
  if (P.Kind == SchemeKind::None) {
    EXPECT_LT(Err, 1e-5);
  }
}

TEST_P(PerforationSweep, NeverReadsMoreThanBaseline) {
  const SweepParam &P = GetParam();
  if (!P.ExpectFeasible)
    GTEST_SKIP();
  auto App = makeApp(P.AppName);
  Workload W = naturalWorkload();
  uint64_t BaseReads, PerfReads;
  {
    rt::Session Ctx;
    rt::Variant BK = cantFail(
        App->buildPerforated(Ctx, PerforationScheme::none(),
                             {P.WgX, P.WgY}));
    BaseReads = cantFail(App->run(Ctx, BK, W))
                    .Report.Totals.GlobalReadTransactions;
  }
  {
    rt::Session Ctx;
    rt::Variant BK =
        cantFail(App->buildPerforated(Ctx, P.scheme(), {P.WgX, P.WgY}));
    PerfReads = cantFail(App->run(Ctx, BK, W))
                    .Report.Totals.GlobalReadTransactions;
  }
  EXPECT_LE(PerfReads, BaseReads);
}

std::vector<SweepParam> makeSweep() {
  struct SchemeSpec {
    SchemeKind Kind;
    unsigned Period;
    ReconstructionKind Recon;
  };
  const SchemeSpec Schemes[] = {
      {SchemeKind::None, 1, ReconstructionKind::NearestNeighbor},
      {SchemeKind::Rows, 2, ReconstructionKind::NearestNeighbor},
      {SchemeKind::Rows, 2, ReconstructionKind::Linear},
      {SchemeKind::Rows, 4, ReconstructionKind::NearestNeighbor},
      {SchemeKind::Rows, 4, ReconstructionKind::Linear},
      {SchemeKind::Cols, 2, ReconstructionKind::NearestNeighbor},
      {SchemeKind::Stencil, 1, ReconstructionKind::NearestNeighbor},
  };
  // The paper's six applications plus the extension suite (mean,
  // sharpen, and the two-pass convsep) -- the invariants are
  // configuration-independent, so every app must satisfy them.
  const char *Apps[] = {"gaussian", "inversion", "median",
                        "sobel3",   "sobel5",    "hotspot",
                        "mean",     "sharpen",   "convsep"};
  const std::pair<unsigned, unsigned> Shapes[] = {
      {16, 16}, {8, 8}, {32, 8}};
  std::vector<SweepParam> Params;
  for (const char *App : Apps)
    for (const SchemeSpec &S : Schemes)
      for (auto [X, Y] : Shapes) {
        SweepParam P;
        P.AppName = App;
        P.Kind = S.Kind;
        P.Period = S.Period;
        P.Recon = S.Recon;
        P.WgX = X;
        P.WgY = Y;
        // Stencil on inversion degenerates (1x1 footprint): still builds
        // (it equals the baseline), so every combination is feasible.
        P.ExpectFeasible = true;
        Params.push_back(P);
      }
  return Params;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PerforationSweep,
                         ::testing::ValuesIn(makeSweep()), paramName);

//===----------------------------------------------------------------------===//
// Widened DSE property: random perforation configs
//===----------------------------------------------------------------------===//

TEST(WidenedDsePropertyTest, RandomConfigsOutputAndTrafficInvariant) {
  // Region-local DSE over memory SSA removes *private* stores no load
  // can observe. For seeded-random perforation configurations, the
  // default pipeline with and without memopt-dse must therefore produce
  // byte-identical outputs, and dropping dead stores may only ever
  // reduce traffic -- never add a global transaction.
  const std::string WithDse = ir::defaultPipelineSpec();
  const std::string WithoutDse =
      "mem2reg,unroll,fixpoint(simplify,sroa,mem2reg,gvn,cse,"
      "memopt-forward,licm,dce)";
  const char *Apps[] = {"gaussian", "inversion", "median",
                        "sobel3",   "sobel5",    "hotspot",
                        "mean",     "sharpen",   "convsep"};
  const SchemeKind Kinds[] = {SchemeKind::None, SchemeKind::Rows,
                              SchemeKind::Cols, SchemeKind::Stencil,
                              SchemeKind::Grid};
  const std::pair<unsigned, unsigned> Shapes[] = {{16, 16}, {8, 8}, {32, 8}};

  Rng R(20260807);
  for (int Trial = 0; Trial < 12; ++Trial) {
    SweepParam P;
    P.AppName = Apps[R.below(std::size(Apps))];
    P.Kind = Kinds[R.below(std::size(Kinds))];
    P.Period = R.below(2) == 0 ? 2 : 4;
    P.Recon = R.below(2) == 0 ? ReconstructionKind::NearestNeighbor
                              : ReconstructionKind::Linear;
    std::tie(P.WgX, P.WgY) = Shapes[R.below(std::size(Shapes))];
    SCOPED_TRACE("trial " + std::to_string(Trial) + ": " + P.AppName);

    auto App = makeApp(P.AppName);
    Workload W =
        std::string(P.AppName) == "hotspot"
            ? makeHotspotWorkload(64, 17, 2)
            : makeImageWorkload(
                  img::generateImage(img::ImageClass::Natural, 64, 64, 17));

    auto Build = [&](const std::string &Spec, rt::Session &Ctx) {
      App->setPipelineSpec(Spec);
      App->setVerifyEach(true);
      return cantFail(App->run(
          Ctx, cantFail(App->buildPerforated(Ctx, P.scheme(),
                                             {P.WgX, P.WgY})),
          W));
    };
    rt::Session C1, C2;
    RunOutcome Off = Build(WithoutDse, C1);
    RunOutcome On = Build(WithDse, C2);

    ASSERT_EQ(Off.Output.size(), On.Output.size());
    EXPECT_EQ(std::memcmp(Off.Output.data(), On.Output.data(),
                          Off.Output.size() * sizeof(float)),
              0)
        << "memopt-dse changed the output bytes";
    EXPECT_LE(On.Report.Totals.GlobalReadTransactions,
              Off.Report.Totals.GlobalReadTransactions);
    EXPECT_LE(On.Report.Totals.GlobalWriteTransactions,
              Off.Report.Totals.GlobalWriteTransactions);
    EXPECT_LE(On.Report.Totals.PrivateAccesses,
              Off.Report.Totals.PrivateAccesses);
  }
}

//===----------------------------------------------------------------------===//
// Output-approximation sweep
//===----------------------------------------------------------------------===//

struct OutputParam {
  const char *AppName;
  OutputSchemeKind Kind;
  unsigned N;
};

std::string outputParamName(
    const ::testing::TestParamInfo<OutputParam> &Info) {
  const char *K = Info.param.Kind == OutputSchemeKind::Rows   ? "Rows"
                  : Info.param.Kind == OutputSchemeKind::Cols ? "Cols"
                                                              : "Center";
  return std::string(Info.param.AppName) + "_" + K +
         std::to_string(Info.param.N);
}

class OutputApproxSweep : public ::testing::TestWithParam<OutputParam> {};

TEST_P(OutputApproxSweep, RunsAndConstantExact) {
  const OutputParam &P = GetParam();
  auto App = makeApp(P.AppName);
  Workload W = makeImageWorkload(img::Image(60, 60, 0.42f));
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      App->buildOutputApprox(Ctx, P.Kind, P.N, {4, 4});
  ASSERT_TRUE(static_cast<bool>(BK)) << BK.error().message();
  RunOutcome R = cantFail(App->run(Ctx, *BK, W));
  std::vector<float> Ref = App->reference(W);
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_NEAR(R.Output[I], Ref[I], 2e-4) << I;
}

TEST_P(OutputApproxSweep, ErrorBoundedOnNaturalInput) {
  const OutputParam &P = GetParam();
  auto App = makeApp(P.AppName);
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 60, 60, 23));
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      App->buildOutputApprox(Ctx, P.Kind, P.N, {4, 4});
  ASSERT_TRUE(static_cast<bool>(BK));
  RunOutcome R = cantFail(App->run(Ctx, *BK, W));
  EXPECT_LT(App->score(App->reference(W), R.Output), 0.5);
}

std::vector<OutputParam> makeOutputSweep() {
  std::vector<OutputParam> Params;
  for (const char *App : {"gaussian", "inversion", "median", "sobel3"})
    for (OutputSchemeKind K : {OutputSchemeKind::Rows,
                               OutputSchemeKind::Cols,
                               OutputSchemeKind::Center})
      for (unsigned N : {2u, 4u})
        Params.push_back({App, K, N});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, OutputApproxSweep,
                         ::testing::ValuesIn(makeOutputSweep()),
                         outputParamName);

//===----------------------------------------------------------------------===//
// Work-group shape sweep: the baseline transform is exact at every
// Figure-9 shape.
//===----------------------------------------------------------------------===//

class ShapeSweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(ShapeSweep, BaselineExactAtAnyShape) {
  auto [X, Y] = GetParam();
  auto App = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 128, 128, 29));
  rt::Session C1, C2;
  RunOutcome Plain = cantFail(
      App->run(C1, cantFail(App->buildPlain(C1, {16, 16})), W));
  rt::Variant BK = cantFail(
      App->buildPerforated(C2, PerforationScheme::none(), {X, Y}));
  RunOutcome R = cantFail(App->run(C2, BK, W));
  for (size_t I = 0; I < Plain.Output.size(); ++I)
    ASSERT_EQ(R.Output[I], Plain.Output[I]) << I;
}

INSTANTIATE_TEST_SUITE_P(
    Figure9Shapes, ShapeSweep,
    ::testing::ValuesIn(figure9WorkGroupShapes()),
    [](const ::testing::TestParamInfo<std::pair<unsigned, unsigned>> &I) {
      return std::to_string(I.param.first) + "x" +
             std::to_string(I.param.second);
    });

} // namespace
