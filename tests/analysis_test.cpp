//===- tests/analysis_test.cpp - Access analysis tests ----------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Checks that the affine access analysis recovers stencil footprints,
// width arguments, and store sites from kernels in all the syntactic
// shapes the benchmark apps use -- and that it refuses what it cannot
// prove.
//
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "pcl/Compiler.h"
#include "perforation/AccessAnalysis.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::perf;

namespace {

KernelAccessInfo analyze(ir::Module &M, const std::string &Source,
                         const std::string &Name) {
  Expected<ir::Function *> F = pcl::compileKernel(M, Source, Name);
  EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.error().message());
  Expected<KernelAccessInfo> Info = analyzeKernelAccesses(**F);
  EXPECT_TRUE(static_cast<bool>(Info));
  return Info.takeValue();
}

TEST(AnalysisTest, SimpleCopyFootprint) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[y * w + x];"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  const BufferAccess &A = Info.Inputs[0];
  EXPECT_EQ(A.Buffer->name(), "in");
  EXPECT_EQ(A.WidthArg->name(), "w");
  EXPECT_EQ(A.DyMin, 0);
  EXPECT_EQ(A.DyMax, 0);
  EXPECT_EQ(A.DxMin, 0);
  EXPECT_EQ(A.DxMax, 0);
  EXPECT_EQ(A.haloX(), 0);
  EXPECT_EQ(A.haloY(), 0);
  EXPECT_EQ(Info.UnmatchedInputLoads, 0u);
}

TEST(AnalysisTest, ConstantOffsetsUnrolled) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[(y - 2) * w + x] + in[y * w + (x + 3)];"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  EXPECT_EQ(Info.Inputs[0].DyMin, -2);
  EXPECT_EQ(Info.Inputs[0].DyMax, 0);
  EXPECT_EQ(Info.Inputs[0].DxMin, 0);
  EXPECT_EQ(Info.Inputs[0].DxMax, 3);
  EXPECT_EQ(Info.Inputs[0].haloY(), 2);
  EXPECT_EQ(Info.Inputs[0].haloX(), 3);
  EXPECT_EQ(Info.Inputs[0].Loads.size(), 2u);
}

TEST(AnalysisTest, ClampLookThrough) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[clamp(y - 1, 0, h - 1) * w"
      "                      + clamp(x + 1, 0, w - 1)];"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  EXPECT_EQ(Info.Inputs[0].DyMin, -1);
  EXPECT_EQ(Info.Inputs[0].DxMax, 1);
}

TEST(AnalysisTest, LoopInductionRange) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  float s = 0.0;"
      "  for (int k = 0; k < 5; k++)"
      "    s += in[(y + k - 2) * w + x];"
      "  out[y * w + x] = s;"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  EXPECT_EQ(Info.Inputs[0].DyMin, -2);
  EXPECT_EQ(Info.Inputs[0].DyMax, 2);
}

TEST(AnalysisTest, NestedLoops2D) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  float s = 0.0;"
      "  for (int ky = 0; ky < 3; ky++)"
      "    for (int kx = 0; kx < 3; kx++)"
      "      s += in[(y + ky - 1) * w + (x + kx - 1)];"
      "  out[y * w + x] = s;"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  EXPECT_EQ(Info.Inputs[0].haloX(), 1);
  EXPECT_EQ(Info.Inputs[0].haloY(), 1);
}

TEST(AnalysisTest, CommutedIndexForms) {
  // col + row*w instead of row*w + col; w*row instead of row*w.
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[x + w * (y + 1)];"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  EXPECT_EQ(Info.Inputs[0].DyMax, 1);
}

TEST(AnalysisTest, MultipleBuffersSeparated) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* a, global const float* b, "
      "global float* out, int w, int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = a[(y - 1) * w + x] + b[y * w + x];"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 2u);
  const BufferAccess *A = Info.inputForArg(0);
  const BufferAccess *B = Info.inputForArg(1);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->haloY(), 1);
  EXPECT_EQ(B->haloY(), 0);
}

TEST(AnalysisTest, HotspotKernelFootprints) {
  ir::Module M;
  KernelAccessInfo Info = analyze(M, apps::hotspotSource(), "hotspot");
  ASSERT_EQ(Info.Inputs.size(), 2u);
  const BufferAccess *Power = Info.inputForArg(0);
  const BufferAccess *Temp = Info.inputForArg(1);
  ASSERT_TRUE(Power && Temp);
  EXPECT_EQ(Power->haloX(), 0);
  EXPECT_EQ(Power->haloY(), 0);
  EXPECT_EQ(Temp->haloX(), 1);
  EXPECT_EQ(Temp->haloY(), 1);
}

TEST(AnalysisTest, AllSixAppKernels) {
  struct Case {
    const char *Source;
    const char *Name;
    int HaloX, HaloY;
  };
  const Case Cases[] = {
      {apps::gaussianSource(), "gaussian", 1, 1},
      {apps::inversionSource(), "inversion", 0, 0},
      {apps::medianSource(), "median", 1, 1},
      {apps::sobel3Source(), "sobel3", 1, 1},
      {apps::sobel5Source(), "sobel5", 2, 2},
  };
  for (const Case &C : Cases) {
    ir::Module M;
    KernelAccessInfo Info = analyze(M, C.Source, C.Name);
    ASSERT_EQ(Info.Inputs.size(), 1u) << C.Name;
    EXPECT_EQ(Info.Inputs[0].haloX(), C.HaloX) << C.Name;
    EXPECT_EQ(Info.Inputs[0].haloY(), C.HaloY) << C.Name;
    EXPECT_EQ(Info.UnmatchedInputLoads, 0u) << C.Name;
  }
}

TEST(AnalysisTest, StoreSitesMatched) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[y * w + x];"
      "}",
      "f");
  ASSERT_EQ(Info.Outputs.size(), 1u);
  EXPECT_EQ(Info.Outputs[0].Buffer->name(), "out");
  EXPECT_EQ(Info.Outputs[0].WidthArg->name(), "w");
  EXPECT_TRUE(Info.Outputs[0].StoredValue);
}

TEST(AnalysisTest, NonAffineIndexUnmatched) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[(y * y) * w + x];" // Quadratic row.
      "}",
      "f");
  EXPECT_TRUE(Info.Inputs.empty());
  EXPECT_EQ(Info.UnmatchedInputLoads, 1u);
}

TEST(AnalysisTest, OneDimensionalIndexUnmatched) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int n) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x];" // No row*width structure at all.
      "}",
      "f");
  EXPECT_TRUE(Info.Inputs.empty());
  EXPECT_EQ(Info.UnmatchedInputLoads, 1u);
}

TEST(AnalysisTest, NonConstBufferIgnoredAsInput) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global float* buf, int w, int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  buf[y * w + x] = buf[y * w + x] + 1.0;" // Read-write buffer.
      "}",
      "f");
  // Not const: never an input candidate (paper perforates inputs).
  EXPECT_TRUE(Info.Inputs.empty());
  EXPECT_EQ(Info.Outputs.size(), 1u);
}

TEST(AnalysisTest, VariableStrideUnmatched) {
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  int stride = w + 1;" // Not a bare argument.
      "  out[y * w + x] = in[y * stride + x];"
      "}",
      "f");
  EXPECT_TRUE(Info.Inputs.empty());
  EXPECT_EQ(Info.UnmatchedInputLoads, 1u);
}

TEST(AnalysisTest, WidthThroughSingleStoreScalar) {
  // Width copied into a local variable still resolves to the argument.
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  int stride = w;"
      "  out[y * w + x] = in[y * stride + x];"
      "}",
      "f");
  ASSERT_EQ(Info.Inputs.size(), 1u);
  EXPECT_EQ(Info.Inputs[0].WidthArg->name(), "w");
}

TEST(AnalysisTest, ReassignedScalarUnmatched) {
  // y is reassigned: not a single-store scalar, so the row expression is
  // no longer provably gid1-affine.
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  y = y + 1; y = y - 1;"
      "  out[get_global_id(1) * w + x] = in[y * w + x];"
      "}",
      "f");
  EXPECT_TRUE(Info.Inputs.empty());
  EXPECT_EQ(Info.UnmatchedInputLoads, 1u);
}

TEST(AnalysisTest, GidTimesTwoUnmatched) {
  // Coefficient 2 on gid1 is not a unit-stride stencil.
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[(2 * y) * w + x];"
      "}",
      "f");
  EXPECT_EQ(Info.UnmatchedInputLoads, 1u);
}

TEST(AnalysisTest, WhileLoopInductionNotRecognizedIsSafe) {
  // Induction detection targets canonical for-loops; a hand-rolled while
  // with the same effect must degrade to "unmatched", never misanalyze.
  ir::Module M;
  KernelAccessInfo Info = analyze(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  float s = 0.0;"
      "  int k = 0;"
      "  while (k < 3) { s += in[(y + k) * w + x]; k++; }"
      "  out[y * w + x] = s;"
      "}",
      "f");
  // A canonical while loop actually matches the same pattern (init store
  // + increment store + bounding compare); either outcome is sound, but
  // the footprint must be correct when matched.
  if (!Info.Inputs.empty()) {
    EXPECT_EQ(Info.Inputs[0].DyMin, 0);
    EXPECT_EQ(Info.Inputs[0].DyMax, 2);
  } else {
    EXPECT_EQ(Info.UnmatchedInputLoads, 1u);
  }
}

} // namespace
