//===- tests/licm_test.cpp - Dominators and LICM tests ----------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/LICM.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Finds the block named \p Name; null if absent.
BasicBlock *blockNamed(Function &F, const std::string &Name) {
  for (const auto &BB : F.blocks())
    if (BB->name() == Name)
      return BB.get();
  return nullptr;
}

/// Compiles \p Source and returns the single kernel.
Function *compileKernel(rt::Session &Ctx, const char *Source) {
  Expected<std::vector<Function *>> Fns =
      pcl::compile(Ctx.module(), Source);
  EXPECT_TRUE(static_cast<bool>(Fns)) << Fns.error().message();
  return Fns->front();
}

//===----------------------------------------------------------------------===//
// Dominator tree
//===----------------------------------------------------------------------===//

/// Builds the diamond entry -> (then | else) -> join.
class DominatorTest : public ::testing::Test {
protected:
  DominatorTest() : B(M) {
    F = M.createFunction("f");
    Entry = F->createBlock("entry");
    Then = F->createBlock("then");
    Else = F->createBlock("else");
    Join = F->createBlock("join");
    Cond = F->addArgument(Type::intTy(), "c", false);
    B.setInsertPoint(Entry);
    Value *C = B.createCmp(Opcode::CmpGt, Cond, M.getInt(0), "c");
    B.createCondBr(C, Then, Else);
    B.setInsertPoint(Then);
    B.createBr(Join);
    B.setInsertPoint(Else);
    B.createBr(Join);
    B.setInsertPoint(Join);
    B.createRet();
  }

  Module M;
  Function *F = nullptr;
  BasicBlock *Entry = nullptr, *Then = nullptr, *Else = nullptr,
             *Join = nullptr;
  Argument *Cond = nullptr;
  IRBuilder B;
};

TEST_F(DominatorTest, DiamondIdoms) {
  DominatorTree DT = DominatorTree::compute(*F);
  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(DT.idom(Then), Entry);
  EXPECT_EQ(DT.idom(Else), Entry);
  EXPECT_EQ(DT.idom(Join), Entry); // Neither branch dominates the join.
}

TEST_F(DominatorTest, DominatesIsReflexiveAndEntryDominatesAll) {
  DominatorTree DT = DominatorTree::compute(*F);
  for (BasicBlock *BB : {Entry, Then, Else, Join}) {
    EXPECT_TRUE(DT.dominates(BB, BB));
    EXPECT_TRUE(DT.dominates(Entry, BB));
  }
  EXPECT_FALSE(DT.dominates(Then, Join));
  EXPECT_FALSE(DT.dominates(Join, Then));
  EXPECT_FALSE(DT.dominates(Then, Else));
}

TEST_F(DominatorTest, UnreachableBlocksAreOutside) {
  BasicBlock *Dead = F->createBlock("dead");
  B.setInsertPoint(Dead);
  B.createBr(Join);
  DominatorTree DT = DominatorTree::compute(*F);
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_FALSE(DT.dominates(Entry, Dead));
  EXPECT_FALSE(DT.dominates(Dead, Join));
  // The reachable part is unaffected.
  EXPECT_EQ(DT.idom(Join), Entry);
}

TEST(DominatorCfgTest, SuccessorsAndPredecessors) {
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *C = F->createBlock("c");
  B.setInsertPoint(A);
  B.createBr(C);
  B.setInsertPoint(C);
  B.createRet();
  EXPECT_EQ(successors(A), std::vector<BasicBlock *>{C});
  EXPECT_TRUE(successors(C).empty());
  auto Preds = predecessors(*F);
  ASSERT_EQ(Preds[C].size(), 1u);
  EXPECT_EQ(Preds[C][0], A);
}

TEST(DominatorLoopTest, LoopHeaderDominatesLatch) {
  // entry -> header; header -> (body | exit); body -> header.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  Argument *N = F->addArgument(Type::intTy(), "n", false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.createBr(Header);
  B.setInsertPoint(Header);
  Value *C = B.createCmp(Opcode::CmpGt, N, M.getInt(0), "c");
  B.createCondBr(C, Body, Exit);
  B.setInsertPoint(Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRet();

  DominatorTree DT = DominatorTree::compute(*F);
  EXPECT_TRUE(DT.dominates(Header, Body));
  EXPECT_EQ(DT.idom(Body), Header);
  EXPECT_EQ(DT.idom(Exit), Header);
  EXPECT_EQ(DT.idom(Header), Entry);
}

//===----------------------------------------------------------------------===//
// LICM on compiled kernels
//===----------------------------------------------------------------------===//

/// Counts instructions of opcode \p Op in block \p BB.
unsigned countInBlock(const BasicBlock &BB, Opcode Op) {
  unsigned N = 0;
  for (const auto &I : BB.instructions())
    if (I->opcode() == Op)
      ++N;
  return N;
}

const char *LoopKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int k = 0; k < 4; k++) {
    acc += in[clamp(y + k, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)";

TEST(LicmTest, HoistsInvariantLoadsOutOfLoop) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  // Before: the loop body loads y/h/w/x afresh each iteration.
  BasicBlock *Body = blockNamed(*F, "for.body0");
  ASSERT_NE(Body, nullptr);
  unsigned LoadsBefore = countInBlock(*Body, Opcode::Load);
  EXPECT_GE(LoadsBefore, 4u);

  unsigned Hoisted = hoistLoopInvariants(*F);
  EXPECT_GT(Hoisted, 0u);
  Error E = verifyFunction(*F);
  EXPECT_FALSE(E) << E.message();

  // After: only the loads of loop-carried variables (k, acc) remain in
  // the loop.
  unsigned LoadsAfter = countInBlock(*Body, Opcode::Load);
  EXPECT_LT(LoadsAfter, LoadsBefore);
}

TEST(LicmTest, DoesNotHoistLoopCarriedLoads) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  hoistLoopInvariants(*F);
  // The induction variable's load must stay inside the loop: its alloca
  // is stored to by the increment.
  bool FoundLoopLoadOfK = false;
  for (const char *Name : {"for.cond0", "for.body0", "for.inc0"}) {
    BasicBlock *BB = blockNamed(*F, Name);
    if (!BB)
      continue;
    for (const auto &I : BB->instructions()) {
      if (I->opcode() != Opcode::Load)
        continue;
      const auto *A = dyn_cast<Instruction>(I->operand(0));
      if (A && A->name() == "k")
        FoundLoopLoadOfK = true;
    }
  }
  EXPECT_TRUE(FoundLoopLoadOfK);
}

TEST(LicmTest, NeverHoistsGlobalLoads) {
  // The in[...] load depends on k, but even an invariant-address global
  // load must stay put (a zero-trip loop must not fault).
  const char *InvariantGlobalLoad = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int k = 0; k < 4; k++) {
    acc += in[y * w + x];
  }
  out[y * w + x] = acc;
}
)";
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, InvariantGlobalLoad);
  hoistLoopInvariants(*F);
  BasicBlock *Body = blockNamed(*F, "for.body0");
  ASSERT_NE(Body, nullptr);
  // The gep'd load from 'in' is still in the body.
  bool GlobalLoadInBody = false;
  for (const auto &I : Body->instructions()) {
    if (I->opcode() != Opcode::Load)
      continue;
    if (I->operand(0)->type().addressSpace() == AddressSpace::Global)
      GlobalLoadInBody = true;
  }
  EXPECT_TRUE(GlobalLoadInBody);
}

TEST(LicmTest, IntegerDivisionByVariableStays) {
  const char *DivKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  int q = 0;
  for (int k = 0; k < 4; k++) {
    q += x / (h - 1);
  }
  out[y * w + x] = q;
}
)";
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, DivKernel);
  hoistLoopInvariants(*F);
  Error E = verifyFunction(*F);
  EXPECT_FALSE(E) << E.message();
  // x / (h-1) could fault for h == 1, so the div must stay in the loop
  // even though its operands are invariant.
  BasicBlock *Body = blockNamed(*F, "for.body0");
  ASSERT_NE(Body, nullptr);
  EXPECT_GE(countInBlock(*Body, Opcode::Div), 1u);
}

TEST(LicmTest, SemanticsPreservedOnAllApps) {
  // Hoisting must never change any application's accurate output.
  for (const char *Name :
       {"gaussian", "median", "sobel5", "mean", "convsep"}) {
    auto TheApp = apps::makeApp(Name);
    apps::Workload W = apps::makeImageWorkload(
        img::generateImage(img::ImageClass::Natural, 32, 32, 29));
    std::vector<float> Ref = TheApp->reference(W);
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPlain(Ctx, {16, 16}));
    unsigned Hoisted = hoistLoopInvariants(*BK.K.F);
    if (BK.isTwoPass())
      Hoisted += hoistLoopInvariants(*BK.K2.F);
    Error E = verifyFunction(*BK.K.F);
    ASSERT_FALSE(E) << E.message();
    apps::RunOutcome R = cantFail(TheApp->run(Ctx, BK, W));
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_NEAR(R.Output[I], Ref[I], 1e-4) << Name << " @" << I;
  }
}

TEST(LicmTest, ReducesDynamicAluWork) {
  // The point of the pass: fewer executed ALU ops per work item on a
  // loop-heavy kernel.
  auto TheApp = apps::makeApp("sobel5");
  apps::Workload W = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 31));
  auto AluPerItem = [&](bool Licm) {
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPlain(Ctx, {16, 16}));
    if (Licm)
      hoistLoopInvariants(*BK.K.F);
    sim::SimReport R = cantFail(TheApp->run(Ctx, BK, W)).Report;
    return static_cast<double>(R.Totals.AluOps) / R.Totals.WorkItems;
  };
  double Without = AluPerItem(false);
  double With = AluPerItem(true);
  EXPECT_LT(With, Without * 0.9) << Without << " -> " << With;
}

TEST(LicmTest, SkipsLoopsWithoutUniquePreheader) {
  // Two out-of-loop predecessors of the header: LICM must leave the
  // loop alone (and not crash) since there is no single safe insertion
  // point.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  Argument *N = F->addArgument(Type::intTy(), "n", false);
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
      false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Side = F->createBlock("side");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  Value *C0 = B.createCmp(Opcode::CmpGt, N, M.getInt(4), "c0");
  B.createCondBr(C0, Header, Side);
  B.setInsertPoint(Side);
  B.createBr(Header); // Second out-of-loop entry into the header.
  B.setInsertPoint(Header);
  Value *C1 = B.createCmp(Opcode::CmpGt, N, M.getInt(0), "c1");
  B.createCondBr(C1, Body, Exit);
  B.setInsertPoint(Body);
  // Loop-invariant work that LICM would love to hoist.
  Value *Inv = B.createMul(N, M.getInt(3), "inv");
  B.createStore(B.createIntToFloat(Inv), B.createGep(Out, M.getInt(0)));
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRet();
  ASSERT_FALSE(verifyFunction(*F));

  EXPECT_EQ(hoistLoopInvariants(*F), 0u);
  EXPECT_EQ(countInBlock(*Body, Opcode::Mul), 1u); // Still in the loop.
  EXPECT_FALSE(verifyFunction(*F));
}

TEST(LicmTest, SkipsConditionalPreheader) {
  // The only out-of-loop predecessor ends in a condbr: hoisting there
  // would execute loop code even when the branch bypasses the loop.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  Argument *N = F->addArgument(Type::intTy(), "n", false);
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
      false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  Value *C0 = B.createCmp(Opcode::CmpGt, N, M.getInt(4), "c0");
  B.createCondBr(C0, Header, Exit); // Conditional edge into the loop.
  B.setInsertPoint(Header);
  Value *C1 = B.createCmp(Opcode::CmpGt, N, M.getInt(0), "c1");
  B.createCondBr(C1, Body, Exit);
  B.setInsertPoint(Body);
  Value *Inv = B.createMul(N, M.getInt(3), "inv");
  B.createStore(B.createIntToFloat(Inv), B.createGep(Out, M.getInt(0)));
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRet();
  ASSERT_FALSE(verifyFunction(*F));

  EXPECT_EQ(hoistLoopInvariants(*F), 0u);
  EXPECT_EQ(countInBlock(*Body, Opcode::Mul), 1u);
}

TEST(LicmTest, IdempotentAfterFixpoint) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  unsigned First = hoistLoopInvariants(*F);
  EXPECT_GT(First, 0u);
  EXPECT_EQ(hoistLoopInvariants(*F), 0u);
}

} // namespace
