//===- tests/interp_test.cpp - Simulator/interpreter tests ------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Executes small PCL kernels on the simulator and checks results, OpenCL
// semantics (barriers, local memory, work-item queries), fault detection,
// and the performance counters (coalescing, bank conflicts, cost model).
//
//===----------------------------------------------------------------------===//

#include "gpusim/CostModel.h"
#include "gpusim/Interpreter.h"
#include "pcl/Compiler.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::sim;

namespace {

/// Fixture that compiles a kernel and runs it over buffers.
class InterpTest : public ::testing::Test {
protected:
  ir::Function *compile(const std::string &Source,
                        const std::string &Name) {
    Expected<ir::Function *> F = pcl::compileKernel(M, Source, Name);
    EXPECT_TRUE(static_cast<bool>(F)) << (F ? "" : F.error().message());
    return F ? *F : nullptr;
  }

  Expected<SimReport> run(ir::Function *F, Range2 Global, Range2 Local,
                          const std::vector<KernelArg> &Args) {
    return launchKernel(*F, Global, Local, Args, Buffers, Device);
  }

  unsigned makeBuffer(size_t N) {
    Buffers.emplace_back(N);
    return static_cast<unsigned>(Buffers.size() - 1);
  }

  unsigned makeBuffer(const std::vector<float> &V) {
    Buffers.emplace_back();
    Buffers.back().uploadFloats(V);
    return static_cast<unsigned>(Buffers.size() - 1);
  }

  ir::Module M;
  std::vector<BufferData> Buffers;
  DeviceConfig Device;
};

//===----------------------------------------------------------------------===//
// Basic execution and arithmetic
//===----------------------------------------------------------------------===//

TEST_F(InterpTest, GlobalIdWrite) {
  ir::Function *F = compile(
      "kernel void f(global float* out, int w, int h) {"
      "  out[get_global_id(1) * w + get_global_id(0)] ="
      "      (float)(get_global_id(0) + 10 * get_global_id(1));"
      "}",
      "f");
  unsigned Out = makeBuffer(16);
  cantFail(run(F, {4, 4}, {2, 2},
               {KernelArg::makeBuffer(Out), KernelArg::makeInt(4),
                KernelArg::makeInt(4)}));
  for (unsigned Y = 0; Y < 4; ++Y)
    for (unsigned X = 0; X < 4; ++X)
      EXPECT_FLOAT_EQ(Buffers[Out].floatAt(Y * 4 + X),
                      static_cast<float>(X + 10 * Y));
}

TEST_F(InterpTest, IntegerArithmetic) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  out[0] = 7 + 3; out[1] = 7 - 3; out[2] = 7 * 3;"
      "  out[3] = 7 / 3; out[4] = 7 % 3; out[5] = -7;"
      "}",
      "f");
  unsigned Out = makeBuffer(6);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  int32_t Expected[] = {10, 4, 21, 2, 1, -7};
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Buffers[Out].intAt(I), Expected[I]) << I;
}

TEST_F(InterpTest, FloatArithmetic) {
  ir::Function *F = compile(
      "kernel void f(global float* out) {"
      "  out[0] = 1.5 + 2.25; out[1] = 1.5 * 4.0; out[2] = 1.0 / 8.0;"
      "  out[3] = 5.5 - 10.0;"
      "}",
      "f");
  unsigned Out = makeBuffer(4);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_FLOAT_EQ(Buffers[Out].floatAt(0), 3.75f);
  EXPECT_FLOAT_EQ(Buffers[Out].floatAt(1), 6.0f);
  EXPECT_FLOAT_EQ(Buffers[Out].floatAt(2), 0.125f);
  EXPECT_FLOAT_EQ(Buffers[Out].floatAt(3), -4.5f);
}

TEST_F(InterpTest, MathBuiltins) {
  ir::Function *F = compile(
      "kernel void f(global float* out) {"
      "  out[0] = sqrt(16.0); out[1] = exp(0.0); out[2] = log(1.0);"
      "  out[3] = pow(2.0, 10.0); out[4] = floor(2.9);"
      "  out[5] = fabs(-3.5); out[6] = min(2.0, 7.0);"
      "  out[7] = max(2.0, 7.0); out[8] = clamp(9.0, 0.0, 5.0);"
      "}",
      "f");
  unsigned Out = makeBuffer(9);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  float Expected[] = {4, 1, 0, 1024, 2, 3.5f, 2, 7, 5};
  for (int I = 0; I < 9; ++I)
    EXPECT_FLOAT_EQ(Buffers[Out].floatAt(I), Expected[I]) << I;
}

TEST_F(InterpTest, IntBuiltins) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  out[0] = min(3, -2); out[1] = max(3, -2);"
      "  out[2] = clamp(-5, 0, 9); out[3] = clamp(12, 0, 9);"
      "  out[4] = abs(-6);"
      "}",
      "f");
  unsigned Out = makeBuffer(5);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  int32_t Expected[] = {-2, 3, 0, 9, 6};
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Buffers[Out].intAt(I), Expected[I]) << I;
}

TEST_F(InterpTest, ControlFlowSelectAndBranch) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  int x = get_global_id(0);"
      "  if (x % 2 == 0) out[x] = 100 + x; else out[x] = 200 + x;"
      "  out[8 + x] = x < 2 ? 1 : 0;"
      "}",
      "f");
  unsigned Out = makeBuffer(16);
  cantFail(run(F, {8, 1}, {4, 1}, {KernelArg::makeBuffer(Out)}));
  for (int X = 0; X < 8; ++X) {
    EXPECT_EQ(Buffers[Out].intAt(X), (X % 2 == 0 ? 100 : 200) + X);
    EXPECT_EQ(Buffers[Out].intAt(8 + X), X < 2 ? 1 : 0);
  }
}

TEST_F(InterpTest, LoopsAndPrivateArrays) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  int a[8];"
      "  for (int i = 0; i < 8; i++) a[i] = i * i;"
      "  int sum = 0;"
      "  for (int i = 0; i < 8; i++) sum += a[i];"
      "  out[0] = sum;"
      "  int j = 0; int steps = 0;"
      "  while (j < 100) { j += 7; steps++; }"
      "  out[1] = steps;"
      "}",
      "f");
  unsigned Out = makeBuffer(2);
  cantFail(run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(Buffers[Out].intAt(0), 140); // sum of squares 0..7
  EXPECT_EQ(Buffers[Out].intAt(1), 15);  // ceil(100/7)
}

TEST_F(InterpTest, WorkItemQueries) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  if (get_global_id(0) == 0 && get_global_id(1) == 0) {"
      "    out[0] = get_global_size(0); out[1] = get_global_size(1);"
      "    out[2] = get_local_size(0);  out[3] = get_local_size(1);"
      "    out[4] = get_num_groups(0);  out[5] = get_num_groups(1);"
      "  }"
      "  if (get_global_id(0) == 5 && get_global_id(1) == 3) {"
      "    out[6] = get_local_id(0); out[7] = get_local_id(1);"
      "    out[8] = get_group_id(0); out[9] = get_group_id(1);"
      "  }"
      "}",
      "f");
  unsigned Out = makeBuffer(10);
  cantFail(run(F, {8, 4}, {4, 2}, {KernelArg::makeBuffer(Out)}));
  int32_t Expected[] = {8, 4, 4, 2, 2, 2, /*lx=*/1, /*ly=*/1,
                        /*gx=*/1, /*gy=*/1};
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Buffers[Out].intAt(I), Expected[I]) << I;
}

TEST_F(InterpTest, ScalarArgsPassed) {
  ir::Function *F = compile(
      "kernel void f(global float* out, int k, float s) {"
      "  out[0] = (float)k * s;"
      "}",
      "f");
  unsigned Out = makeBuffer(1);
  cantFail(run(F, {1, 1}, {1, 1},
               {KernelArg::makeBuffer(Out), KernelArg::makeInt(6),
                KernelArg::makeFloat(2.5f)}));
  EXPECT_FLOAT_EQ(Buffers[Out].floatAt(0), 15.0f);
}

//===----------------------------------------------------------------------===//
// Local memory and barriers
//===----------------------------------------------------------------------===//

TEST_F(InterpTest, LocalMemoryReverseViaBarrier) {
  // Each item writes its lid, barrier, then reads the mirrored slot.
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[8];"
      "  int l = get_local_id(0);"
      "  t[l] = l * 10;"
      "  barrier();"
      "  out[get_global_id(0)] = t[7 - l];"
      "}",
      "f");
  unsigned Out = makeBuffer(16);
  cantFail(run(F, {16, 1}, {8, 1}, {KernelArg::makeBuffer(Out)}));
  for (int G = 0; G < 16; ++G)
    EXPECT_EQ(Buffers[Out].intAt(G), (7 - (G % 8)) * 10) << G;
}

TEST_F(InterpTest, LocalMemoryIsPerGroup) {
  // Group 1 must not observe group 0's writes.
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[4];"
      "  int l = get_local_id(0);"
      "  if (get_group_id(0) == 0) t[l] = 99;"
      "  barrier();"
      "  out[get_global_id(0)] = t[l];"
      "}",
      "f");
  unsigned Out = makeBuffer(8);
  cantFail(run(F, {8, 1}, {4, 1}, {KernelArg::makeBuffer(Out)}));
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Buffers[Out].intAt(I), 99);
  for (int I = 4; I < 8; ++I)
    EXPECT_EQ(Buffers[Out].intAt(I), 0); // Zero-initialized fresh arena.
}

TEST_F(InterpTest, MultipleBarrierPhases) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[4];"
      "  int l = get_local_id(0);"
      "  t[l] = l;"
      "  barrier();"
      "  int v1 = t[(l + 1) % 4];"
      "  barrier();"
      "  t[l] = v1 * 2;"
      "  barrier();"
      "  out[l] = t[(l + 1) % 4];"
      "}",
      "f");
  unsigned Out = makeBuffer(4);
  cantFail(run(F, {4, 1}, {4, 1}, {KernelArg::makeBuffer(Out)}));
  // t after phase 3: t[l] = ((l+1)%4)*2; out[l] = t[(l+1)%4].
  for (int L = 0; L < 4; ++L)
    EXPECT_EQ(Buffers[Out].intAt(L), ((L + 2) % 4) * 2) << L;
}

TEST_F(InterpTest, BarrierCountsInReport) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[2]; t[0] = 0;"
      "  barrier(); barrier();"
      "  out[0] = t[0];"
      "}",
      "f");
  unsigned Out = makeBuffer(1);
  SimReport R =
      cantFail(run(F, {8, 1}, {4, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.Barriers, 16u); // 8 items x 2 barriers.
}

TEST_F(InterpTest, DivergentBarrierDetected) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  if (get_local_id(0) == 0) barrier();"
      "  out[0] = 0;"
      "}",
      "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {4, 1}, {4, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("barrier"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Fault detection
//===----------------------------------------------------------------------===//

TEST_F(InterpTest, GlobalReadOutOfBounds) {
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  out[0] = in[100];"
      "}",
      "f");
  unsigned In = makeBuffer(4);
  unsigned Out = makeBuffer(4);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1},
          {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("out of bounds"), std::string::npos);
}

TEST_F(InterpTest, GlobalWriteOutOfBounds) {
  ir::Function *F = compile(
      "kernel void f(global float* out) { out[-1] = 0.0; }", "f");
  unsigned Out = makeBuffer(4);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
}

TEST_F(InterpTest, LocalOutOfBounds) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[4]; t[9] = 1; out[0] = t[0];"
      "}",
      "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("local write"), std::string::npos);
}

TEST_F(InterpTest, DivisionByZeroReported) {
  ir::Function *F = compile(
      "kernel void f(global int* out, int d) { out[0] = 5 / d; }", "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1},
          {KernelArg::makeBuffer(Out), KernelArg::makeInt(0)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("division by zero"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Launch validation
//===----------------------------------------------------------------------===//

TEST_F(InterpTest, IndivisibleNDRangeRejected) {
  ir::Function *F =
      compile("kernel void f(global int* out) { out[0] = 1; }", "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {10, 1}, {4, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("divisible"), std::string::npos);
}

TEST_F(InterpTest, ArgumentCountChecked) {
  ir::Function *F =
      compile("kernel void f(global int* out, int k) { out[0] = k; }", "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("arguments"), std::string::npos);
}

TEST_F(InterpTest, ArgumentKindChecked) {
  ir::Function *F =
      compile("kernel void f(global int* out, int k) { out[0] = k; }", "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1},
          {KernelArg::makeBuffer(Out), KernelArg::makeFloat(1)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("expects an int"), std::string::npos);
}

TEST_F(InterpTest, BufferIndexValidated) {
  ir::Function *F =
      compile("kernel void f(global int* out) { out[0] = 1; }", "f");
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(42)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("buffer index"), std::string::npos);
}

TEST_F(InterpTest, OversizedWorkGroupRejected) {
  ir::Function *F =
      compile("kernel void f(global int* out) { out[0] = 1; }", "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {2048, 1}, {2048, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("1024"), std::string::npos);
}

TEST_F(InterpTest, LocalMemoryOversubscriptionRejected) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local float t[10000];" // 40000 bytes > 32768.
      "  t[0] = 0.0; out[0] = (int)t[0];"
      "}",
      "f");
  unsigned Out = makeBuffer(1);
  Expected<SimReport> R =
      run(F, {1, 1}, {1, 1}, {KernelArg::makeBuffer(Out)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("local memory"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Performance counters: coalescing
//===----------------------------------------------------------------------===//

TEST_F(InterpTest, CoalescedReadCountsOneSegmentPer16Lanes) {
  // 64 items reading 64 consecutive floats = 256 B = 4 segments of 64 B.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x];"
      "}",
      "f");
  unsigned In = makeBuffer(64);
  unsigned Out = makeBuffer(64);
  SimReport R = cantFail(
      run(F, {64, 1}, {64, 1},
          {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.GlobalReadTransactions, 4u);
  EXPECT_EQ(R.Totals.GlobalWriteTransactions, 4u);
  EXPECT_EQ(R.Totals.GlobalReads, 64u);
  EXPECT_EQ(R.Totals.GlobalWrites, 64u);
}

TEST_F(InterpTest, StridedReadTouchesMoreSegments) {
  // Stride-16 reads: each lane hits its own segment.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x * 16];"
      "}",
      "f");
  unsigned In = makeBuffer(64 * 16);
  unsigned Out = makeBuffer(64);
  SimReport R = cantFail(
      run(F, {64, 1}, {64, 1},
          {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.GlobalReadTransactions, 64u);
}

TEST_F(InterpTest, RepeatedReadHitsWavefrontL1) {
  // The same segment read twice by one wavefront costs one transaction.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = in[x] + in[x];"
      "}",
      "f");
  unsigned In = makeBuffer(64);
  unsigned Out = makeBuffer(64);
  SimReport R = cantFail(
      run(F, {64, 1}, {64, 1},
          {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.GlobalReadTransactions, 4u);
  EXPECT_EQ(R.Totals.GlobalReads, 128u);
}

TEST_F(InterpTest, RepeatedWriteIsNotMerged) {
  // Writes flow through per-instruction write combining: two stores to
  // the same segment are two transactions.
  ir::Function *F = compile(
      "kernel void f(global float* out) {"
      "  int x = get_global_id(0);"
      "  out[x] = 1.0;"
      "  out[x] = 2.0;"
      "}",
      "f");
  unsigned Out = makeBuffer(64);
  SimReport R =
      cantFail(run(F, {64, 1}, {64, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.GlobalWriteTransactions, 8u);
}

TEST_F(InterpTest, NarrowWorkGroupCoalescesWorse) {
  // Same NDRange, two shapes: (16,16) rows coalesce; (2,128) do not.
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out, int w) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[y * w + x];"
      "}",
      "f");
  unsigned In = makeBuffer(256 * 256);
  unsigned Out = makeBuffer(256 * 256);
  std::vector<KernelArg> Args = {KernelArg::makeBuffer(In),
                                 KernelArg::makeBuffer(Out),
                                 KernelArg::makeInt(256)};
  SimReport Wide = cantFail(run(F, {256, 256}, {16, 16}, Args));
  SimReport Tall = cantFail(run(F, {256, 256}, {2, 128}, Args));
  EXPECT_GT(Tall.Totals.GlobalReadTransactions,
            2 * Wide.Totals.GlobalReadTransactions);
  EXPECT_GT(Tall.Cycles, Wide.Cycles);
}

//===----------------------------------------------------------------------===//
// Performance counters: local memory and cost model
//===----------------------------------------------------------------------===//

TEST_F(InterpTest, LocalAccessesCounted) {
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[64];"
      "  int l = get_local_id(0);"
      "  t[l] = l;"
      "  barrier();"
      "  out[l] = t[l];"
      "}",
      "f");
  unsigned Out = makeBuffer(64);
  SimReport R =
      cantFail(run(F, {64, 1}, {64, 1}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.LocalAccesses, 128u); // 64 stores + 64 loads.
  // Two access groups (one store point, one load point), conflict-free:
  // 64 lanes over 32 banks = factor 2 => extra = 1 per group.
  EXPECT_EQ(R.Totals.LocalWavefrontOps, 2u);
  EXPECT_EQ(R.Totals.BankConflictExtra, 2u);
}

TEST_F(InterpTest, BankConflictFactorCounted) {
  // Stride-32 local access: all 64 lanes hit bank 0 -> factor 64.
  ir::Function *F = compile(
      "kernel void f(global int* out) {"
      "  local int t[2048];"
      "  int l = get_local_id(0);"
      "  t[l * 32] = l;"
      "  barrier();"
      "  out[l] = t[l * 32];"
      "}",
      "f");
  unsigned Out = makeBuffer(64);
  SimReport R =
      cantFail(run(F, {64, 1}, {64, 1}, {KernelArg::makeBuffer(Out)}));
  // Two groups, each fully serialized: extra = 63 each.
  EXPECT_EQ(R.Totals.LocalWavefrontOps, 2u);
  EXPECT_EQ(R.Totals.BankConflictExtra, 126u);
}

TEST_F(InterpTest, CostModelMemoryBoundMax) {
  Counters C;
  C.GlobalReadTransactions = 100;
  C.AluOps = 64; // Tiny compute.
  GroupCost Cost = costOfGroup(C, Device);
  EXPECT_DOUBLE_EQ(Cost.MemoryCycles, 100 * Device.ReadCostCycles);
  EXPECT_DOUBLE_EQ(Cost.TotalCycles, Device.WorkGroupOverheadCycles +
                                         Cost.MemoryCycles);
}

TEST_F(InterpTest, CostModelComputeBoundMax) {
  Counters C;
  C.AluOps = 1000000;
  C.GlobalReadTransactions = 1;
  GroupCost Cost = costOfGroup(C, Device);
  EXPECT_GT(Cost.ComputeCycles, Cost.MemoryCycles);
  EXPECT_DOUBLE_EQ(Cost.TotalCycles, Device.WorkGroupOverheadCycles +
                                         Cost.ComputeCycles);
}

TEST_F(InterpTest, ReportTimeScalesWithClock) {
  Counters C;
  C.GlobalReadTransactions = 10;
  DeviceConfig Fast = Device;
  Fast.ClockGHz = Device.ClockGHz * 2;
  SimReport Slow = finalizeReport(C, 1000.0, 0, 0, Device);
  SimReport Quick = finalizeReport(C, 1000.0, 0, 0, Fast);
  EXPECT_NEAR(Slow.TimeMs, 2 * Quick.TimeMs, 1e-12);
}

TEST_F(InterpTest, CyclesDivideAcrossComputeUnits) {
  Counters C;
  DeviceConfig OneCU = Device;
  OneCU.NumComputeUnits = 1;
  DeviceConfig FourCU = Device;
  FourCU.NumComputeUnits = 4;
  SimReport R1 = finalizeReport(C, 4000.0, 0, 0, OneCU);
  SimReport R4 = finalizeReport(C, 4000.0, 0, 0, FourCU);
  EXPECT_DOUBLE_EQ(R1.Cycles, 4 * R4.Cycles);
}

TEST_F(InterpTest, DeterministicAcrossRuns) {
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out, int w) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[y * w + x] * 0.5;"
      "}",
      "f");
  std::vector<float> Data(64 * 64);
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<float>(I % 97) / 97.0f;
  unsigned In = makeBuffer(Data);
  unsigned Out = makeBuffer(64 * 64);
  std::vector<KernelArg> Args = {KernelArg::makeBuffer(In),
                                 KernelArg::makeBuffer(Out),
                                 KernelArg::makeInt(64)};
  SimReport A = cantFail(run(F, {64, 64}, {16, 16}, Args));
  SimReport B = cantFail(run(F, {64, 64}, {16, 16}, Args));
  EXPECT_EQ(A.Totals.GlobalReadTransactions,
            B.Totals.GlobalReadTransactions);
  EXPECT_DOUBLE_EQ(A.Cycles, B.Cycles);
}

TEST_F(InterpTest, EnergyModelTracksTrafficAndTime) {
  Counters C;
  C.GlobalReadTransactions = 1000;
  SimReport R = finalizeReport(C, 1000.0, 0, 0, Device);
  // Dynamic DRAM part: 1000 tx * 20 nJ = 20000 nJ = 0.02 mJ, plus static.
  EXPECT_GT(R.EnergyMJ, 0.02);
  Counters C2 = C;
  C2.GlobalReadTransactions = 2000;
  SimReport R2 = finalizeReport(C2, 1000.0, 0, 0, Device);
  EXPECT_NEAR(R2.EnergyMJ - R.EnergyMJ,
              1000 * Device.DramEnergyPerTransactionNJ * 1e-6, 1e-9);
}

TEST_F(InterpTest, EnergyScalesWithLaunchSize) {
  ir::Function *F = compile(
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = in[y * w + x];"
      "}",
      "f");
  unsigned In = makeBuffer(128 * 128);
  unsigned Out = makeBuffer(128 * 128);
  SimReport Full = cantFail(run(
      F, {128, 128}, {16, 16},
      {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out),
       KernelArg::makeInt(128), KernelArg::makeInt(128)}));
  SimReport Half = cantFail(run(
      F, {128, 64}, {16, 16},
      {KernelArg::makeBuffer(In), KernelArg::makeBuffer(Out),
       KernelArg::makeInt(128), KernelArg::makeInt(64)}));
  EXPECT_GT(Full.EnergyMJ, 1.8 * Half.EnergyMJ);
}

TEST_F(InterpTest, WorkGroupAndItemCounts) {
  ir::Function *F =
      compile("kernel void f(global int* out) {"
              "  out[get_global_id(1) * 8 + get_global_id(0)] = 1;"
              "}",
              "f");
  unsigned Out = makeBuffer(64);
  SimReport R =
      cantFail(run(F, {8, 8}, {4, 4}, {KernelArg::makeBuffer(Out)}));
  EXPECT_EQ(R.Totals.WorkGroups, 4u);
  EXPECT_EQ(R.Totals.WorkItems, 64u);
}

} // namespace
