//===- tests/tuner_parallel_test.cpp - Parallel tuning + session safety ------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The parallel tuning engine and the concurrency-hardened rt::Session:
//  * tuneParallel returns bit-identical TunerResult vectors for any job
//    count (the parallel sweep is a pure speedup, not a different tuner);
//  * hammering one variant/source cache key from many threads compiles it
//    exactly once, and the atomic SessionStats counters stay exact;
//  * the buffer free list hands released slots back to later checkouts
//    and refuses launches through stale released indices;
//  * the LRU variant-cache eviction (setVariantCapacity) evicts in
//    least-recently-used order and recompiles evicted keys on demand.
//
// This suite (with session_test) is the TSan tier: CI rebuilds both with
// -fsanitize=thread, so a data race in Session/Tuner fails the build.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "perforation/Tuner.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace kperf;
using namespace kperf::rt;

namespace {

const char *ScaleSource = R"(
kernel void scale(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * w + x] = in[y * w + x] * 2.0;
}
)";

perf::PerforationPlan rows1Plan(unsigned TileX = 16, unsigned TileY = 16) {
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  Plan.TileX = TileX;
  Plan.TileY = TileY;
  return Plan;
}

/// Runs \p Fn on \p NumThreads threads, all released at once so cache
/// probes genuinely overlap.
void runThreads(unsigned NumThreads, const std::function<void()> &Fn) {
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  Pool.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T)
    Pool.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      Fn();
    });
  Go = true;
  for (std::thread &T : Pool)
    T.join();
}

//===--- Parallel tuning ------------------------------------------------------//

/// A tuning harness over one shared Session, mirroring kperfc tune: the
/// quality reference and accurate per-shape times are measured up front,
/// then Evaluate is thread-safe (cached variants + checked-out buffers).
struct TuneHarness {
  std::unique_ptr<apps::App> App;
  Session S;
  apps::Workload W;
  std::vector<float> Reference;
  std::map<std::pair<unsigned, unsigned>, double> AccurateMs;
  std::vector<perf::TunerConfig> Space;

  explicit TuneHarness(const std::string &AppName, unsigned Size = 64)
      : App(apps::makeApp(AppName)),
        W(AppName == "hotspot"
              ? apps::makeHotspotWorkload(Size, 1000, /*Iterations=*/2)
              : apps::makeImageWorkload(img::generateImage(
                    img::ImageClass::Natural, Size, Size, 13))) {
    Reference = App->reference(W);
    // Two feasible shapes plus one that does not divide the image, so
    // the infeasible Note path is part of the determinism check too.
    std::vector<std::pair<unsigned, unsigned>> Shapes = {
        {8, 8}, {16, 16}, {48, 16}};
    std::vector<perf::PerforationScheme> Schemes = {
        perf::PerforationScheme::none(),
        perf::PerforationScheme::rows(2,
                                      perf::ReconstructionKind::NearestNeighbor),
        perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
        perf::PerforationScheme::stencil(),
    };
    for (const perf::PerforationScheme &Scheme : Schemes)
      for (auto [X, Y] : Shapes)
        Space.push_back(perf::TunerConfig{Scheme, X, Y});
    for (auto [X, Y] : Shapes) {
      if (Size % X != 0 || Size % Y != 0)
        continue;
      rt::Variant Plain = cantFail(App->buildPlain(S, {X, Y}));
      apps::RunOutcome R = cantFail(App->run(S, Plain, W));
      AccurateMs.emplace(std::make_pair(X, Y), R.Report.TimeMs);
    }
  }

  perf::EvaluateFn evaluate() {
    unsigned Size = W.Input.width();
    return [this, Size](const perf::TunerConfig &Config)
               -> Expected<perf::Measurement> {
      if (Size % Config.TileX != 0 || Size % Config.TileY != 0)
        return makeError("image %ux%u not divisible by %ux%u", Size, Size,
                         Config.TileX, Config.TileY);
      if (Config.Scheme.Kind == perf::SchemeKind::None)
        return perf::Measurement{1.0, 0.0, {}};
      Expected<rt::Variant> V = App->buildPerforated(
          S, Config.Scheme, {Config.TileX, Config.TileY});
      if (!V)
        return V.takeError();
      Expected<apps::RunOutcome> R = App->run(S, *V, W);
      if (!R)
        return R.takeError();
      perf::Measurement M;
      M.Speedup =
          AccurateMs.at({Config.TileX, Config.TileY}) / R->Report.TimeMs;
      M.Error = App->score(Reference, R->Output);
      M.PassStats = V->PassStats;
      return M;
    };
  }
};

void expectSameResults(const std::vector<perf::TunerResult> &A,
                       const std::vector<perf::TunerResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Config.str(), B[I].Config.str()) << "slot " << I;
    EXPECT_EQ(A[I].Feasible, B[I].Feasible) << A[I].Config.str();
    EXPECT_EQ(A[I].Note, B[I].Note) << A[I].Config.str();
    // Bit-exact: the simulator is deterministic and the cached variant
    // is the same kernel, so parallelism must not perturb a single bit.
    EXPECT_EQ(A[I].M.Speedup, B[I].M.Speedup) << A[I].Config.str();
    EXPECT_EQ(A[I].M.Error, B[I].M.Error) << A[I].Config.str();
  }
}

TEST(TunerParallelTest, ParallelMatchesSerialBitExact) {
  TuneHarness H("gaussian");
  perf::EvaluateFn Evaluate = H.evaluate();
  std::vector<perf::TunerResult> Serial =
      perf::tuneExhaustive(H.Space, Evaluate);
  ASSERT_FALSE(Serial.empty());

  for (unsigned Jobs : {1u, 2u, 8u}) {
    std::vector<perf::TunerResult> Parallel =
        perf::tuneParallel(H.Space, Evaluate, Jobs);
    expectSameResults(Serial, Parallel);
    size_t BestSerial = perf::bestWithinErrorBudget(Serial, 0.05);
    size_t BestParallel = perf::bestWithinErrorBudget(Parallel, 0.05);
    EXPECT_EQ(BestSerial, BestParallel) << "jobs " << Jobs;
  }
  // Results arrive in space order, so slot I is always configuration I.
  for (size_t I = 0; I < Serial.size(); ++I)
    EXPECT_EQ(Serial[I].Config.str(), H.Space[I].str());
}

TEST(TunerParallelTest, AllNineAppsParallelMatchesSerial) {
  // The acceptance bar for the parallel tuner: on every app the 8-job
  // sweep must select the same winning configuration and produce the
  // same per-config Measurements as the serial sweep.
  for (const char *AppName :
       {"gaussian", "inversion", "median", "hotspot", "sobel3", "sobel5",
        "mean", "sharpen", "convsep"}) {
    SCOPED_TRACE(AppName);
    TuneHarness H(AppName);
    perf::EvaluateFn Evaluate = H.evaluate();
    std::vector<perf::TunerResult> Serial =
        perf::tuneExhaustive(H.Space, Evaluate);
    std::vector<perf::TunerResult> Parallel =
        perf::tuneParallel(H.Space, Evaluate, 8);
    expectSameResults(Serial, Parallel);
    EXPECT_EQ(perf::bestWithinErrorBudget(Serial, 0.05),
              perf::bestWithinErrorBudget(Parallel, 0.05));
  }
}

TEST(TunerParallelTest, ParallelSweepCompilesEachVariantOnce) {
  TuneHarness H("median");
  SessionStats Before = H.S.stats();
  std::vector<perf::TunerResult> Results =
      perf::tuneParallel(H.Space, H.evaluate(), 8);
  ASSERT_EQ(Results.size(), H.Space.size());
  // 3 schemes x 2 feasible shapes of transformed variants; each must
  // have compiled exactly once despite 8 workers racing over them.
  unsigned NewCompiles =
      H.S.stats().VariantCompiles - Before.VariantCompiles;
  EXPECT_EQ(NewCompiles, 6u);
  EXPECT_EQ(H.S.stats().SourceCompiles, 1u);
}

//===--- Cache hammering ------------------------------------------------------//

TEST(TunerParallelTest, VariantCacheHammerCompilesOnce) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));

  const unsigned NumThreads = 8;
  std::vector<const ir::Function *> Seen(NumThreads, nullptr);
  std::atomic<unsigned> Slot{0};
  runThreads(NumThreads, [&] {
    Variant V = cantFail(S.perforate(K, rows1Plan()));
    Seen[Slot.fetch_add(1)] = V.K.F;
  });

  // N threads x one key => exactly 1 compile, N-1 hits, one kernel.
  EXPECT_EQ(S.stats().VariantCompiles, 1u);
  EXPECT_EQ(S.stats().VariantCacheHits, NumThreads - 1);
  for (const ir::Function *F : Seen)
    EXPECT_EQ(F, Seen.front());
}

TEST(TunerParallelTest, SourceCacheHammerCompilesOnce) {
  Session S;
  const unsigned NumThreads = 8;
  runThreads(NumThreads,
             [&] { cantFail(S.compile(ScaleSource, "scale")); });
  EXPECT_EQ(S.stats().SourceCompiles, 1u);
  EXPECT_EQ(S.stats().SourceCacheHits, NumThreads - 1);
}

TEST(TunerParallelTest, AtomicCountersExactUnderConcurrentLookups) {
  // Regression for the plain-int counters: every concurrent cache probe
  // must be counted exactly once now that they are atomics.
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  cantFail(S.perforate(K, rows1Plan())); // Warm: 1 compile.

  const unsigned NumThreads = 8, Lookups = 50;
  runThreads(NumThreads, [&] {
    for (unsigned I = 0; I < Lookups; ++I)
      cantFail(S.perforate(K, rows1Plan()));
  });
  EXPECT_EQ(S.stats().VariantCompiles, 1u);
  EXPECT_EQ(S.stats().VariantCacheHits, NumThreads * Lookups);
  EXPECT_EQ(S.stats().variantLookups(), NumThreads * Lookups + 1);
}

//===--- Buffer free list -----------------------------------------------------//

TEST(TunerParallelTest, BufferFreeListReusesReleasedSlots) {
  Session S;
  unsigned A = S.createBuffer(100);
  unsigned B = S.createBufferFrom(std::vector<float>(50, 1.0f));
  EXPECT_EQ(S.stats().BufferCreates, 2u);
  EXPECT_EQ(S.stats().BufferReuses, 0u);

  S.releaseBuffer(A);
  unsigned C = S.createBuffer(80);
  EXPECT_EQ(C, A); // Checkout reuses the released slot...
  EXPECT_EQ(S.buffer(C).size(), 80u);        // ...resized...
  EXPECT_FLOAT_EQ(S.buffer(C).floatAt(0), 0.0f); // ...and zeroed.
  EXPECT_EQ(S.stats().BufferCreates, 2u);
  EXPECT_EQ(S.stats().BufferReuses, 1u);

  // Untouched slots keep their contents across other releases.
  EXPECT_FLOAT_EQ(S.buffer(B).floatAt(49), 1.0f);
}

TEST(TunerParallelTest, LaunchThroughReleasedBufferFails) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  unsigned In = S.createBufferFrom(std::vector<float>(16 * 16, 1.0f));
  unsigned Out = S.createBuffer(16 * 16);
  std::vector<sim::KernelArg> Args = {arg::buffer(In), arg::buffer(Out),
                                      arg::i32(16), arg::i32(16)};
  cantFail(S.launch(K, {16, 16}, {16, 16}, Args));

  S.releaseBuffer(Out);
  Expected<sim::SimReport> R = S.launch(K, {16, 16}, {16, 16}, Args);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("out of range"), std::string::npos);
}

TEST(TunerParallelTest, ConcurrentCheckoutsGetDistinctSlots) {
  Session S;
  const unsigned NumThreads = 8, Rounds = 25;
  std::vector<std::vector<unsigned>> PerThread(NumThreads);
  std::atomic<unsigned> ThreadId{0};
  runThreads(NumThreads, [&] {
    unsigned T = ThreadId.fetch_add(1);
    for (unsigned I = 0; I < Rounds; ++I) {
      unsigned In = S.createBufferFrom(std::vector<float>(64, float(T)));
      unsigned Out = S.createBuffer(64);
      // The slots are exclusively ours until released.
      EXPECT_NE(In, Out);
      EXPECT_FLOAT_EQ(S.buffer(In).floatAt(0), float(T));
      PerThread[T].push_back(In);
      PerThread[T].push_back(Out);
      S.releaseBuffer(In);
      S.releaseBuffer(Out);
    }
  });
  // Free-list reuse keeps the buffer table bounded by the concurrency
  // level, not the total number of checkouts.
  unsigned Creates = S.stats().BufferCreates;
  unsigned Reuses = S.stats().BufferReuses;
  EXPECT_EQ(Creates + Reuses, NumThreads * Rounds * 2);
  EXPECT_LE(Creates, NumThreads * 2);
  EXPECT_GE(Reuses, NumThreads * Rounds * 2 - NumThreads * 2);
}

//===--- LRU variant eviction -------------------------------------------------//

TEST(TunerParallelTest, LruEvictsLeastRecentlyUsedVariant) {
  Session S;
  S.setVariantCapacity(2);
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  size_t FunctionsBefore = S.module().numFunctions();

  // Three distinct keys A(16x16), B(8x8), C(4x4) under capacity 2.
  cantFail(S.perforate(K, rows1Plan(16, 16))); // cache: [A]
  cantFail(S.perforate(K, rows1Plan(8, 8)));   // cache: [B, A]
  cantFail(S.perforate(K, rows1Plan(16, 16))); // touch A: [A, B]
  EXPECT_EQ(S.stats().VariantCompiles, 2u);
  EXPECT_EQ(S.stats().VariantEvictions, 0u);

  cantFail(S.perforate(K, rows1Plan(4, 4))); // evicts B: [C, A]
  EXPECT_EQ(S.stats().VariantCompiles, 3u);
  EXPECT_EQ(S.stats().VariantEvictions, 1u);
  // The evicted kernel left the module, so it holds the source kernel
  // plus exactly two variants.
  EXPECT_EQ(S.module().numFunctions(), FunctionsBefore + 2);

  // A survived (recent), so probing it is still a hit...
  unsigned HitsBefore = S.stats().VariantCacheHits;
  cantFail(S.perforate(K, rows1Plan(16, 16)));
  EXPECT_EQ(S.stats().VariantCacheHits, HitsBefore + 1);
  EXPECT_EQ(S.stats().VariantCompiles, 3u);

  // ...while the evicted B recompiles on demand.
  cantFail(S.perforate(K, rows1Plan(8, 8)));
  EXPECT_EQ(S.stats().VariantCompiles, 4u);
  EXPECT_EQ(S.stats().VariantEvictions, 2u); // C was LRU by then.
}

TEST(TunerParallelTest, SetVariantCapacityEvictsDownToCap) {
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  cantFail(S.perforate(K, rows1Plan(16, 16)));
  cantFail(S.perforate(K, rows1Plan(8, 8)));
  cantFail(S.perforate(K, rows1Plan(4, 4)));
  EXPECT_EQ(S.stats().VariantEvictions, 0u);

  S.setVariantCapacity(1);
  EXPECT_EQ(S.variantCapacity(), 1u);
  EXPECT_EQ(S.stats().VariantEvictions, 2u);

  // The survivor is the most recently used key (4x4): still a hit.
  unsigned CompilesBefore = S.stats().VariantCompiles;
  cantFail(S.perforate(K, rows1Plan(4, 4)));
  EXPECT_EQ(S.stats().VariantCompiles, CompilesBefore);
}

TEST(TunerParallelTest, LaunchingEvictedVariantFailsCleanly) {
  // A handle held past its eviction must fail the launch with a clear
  // error, never touch freed memory.
  Session S;
  S.setVariantCapacity(1);
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  Variant A = cantFail(S.perforate(K, rows1Plan(16, 16)));
  cantFail(S.perforate(K, rows1Plan(8, 8))); // Evicts A.

  unsigned In = S.createBufferFrom(std::vector<float>(32 * 32, 1.0f));
  unsigned Out = S.createBuffer(32 * 32);
  Expected<sim::SimReport> R = S.launch(
      A, {32, 32},
      {arg::buffer(In), arg::buffer(Out), arg::i32(32), arg::i32(32)});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_TRUE(Session::isEvictedError(R.error()));

  // Eviction is sticky: even after lifting the capacity, the stale
  // handle must keep failing cleanly (regression: the validation used
  // to be skipped once VariantCapacity was 0 again).
  S.setVariantCapacity(0);
  Expected<sim::SimReport> R2 = S.launch(
      A, {32, 32},
      {arg::buffer(In), arg::buffer(Out), arg::i32(32), arg::i32(32)});
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_TRUE(Session::isEvictedError(R2.error()));
}

TEST(TunerParallelTest, EvictedVariantRunsCorrectlyAfterRecompile) {
  // End-to-end: evict a variant, recompile it through the cache, and
  // check the recompiled kernel still computes the same output.
  Session S;
  S.setVariantCapacity(1);
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));

  std::vector<float> Data(32 * 32, 1.5f);
  unsigned In = S.createBufferFrom(Data);
  unsigned Out = S.createBuffer(Data.size());
  std::vector<sim::KernelArg> Args = {arg::buffer(In), arg::buffer(Out),
                                      arg::i32(32), arg::i32(32)};

  Variant A = cantFail(S.perforate(K, rows1Plan(16, 16)));
  cantFail(S.launch(A, {32, 32}, Args));
  std::vector<float> First = S.buffer(Out).downloadFloats();

  cantFail(S.perforate(K, rows1Plan(8, 8))); // Evicts the 16x16 variant.
  EXPECT_EQ(S.stats().VariantEvictions, 1u);

  Variant A2 = cantFail(S.perforate(K, rows1Plan(16, 16))); // Recompile.
  EXPECT_EQ(S.stats().VariantCompiles, 3u);
  cantFail(S.launch(A2, {32, 32}, Args));
  EXPECT_EQ(S.buffer(Out).downloadFloats(), First);
}

//===--- Concurrent end-to-end runs -------------------------------------------//

TEST(TunerParallelTest, ConcurrentAppRunsMatchSerialOutputs) {
  // Many workers share one session and one variant, each launching its
  // own simulator instance on checked-out buffers: every output must be
  // byte-identical to the serial run's.
  auto App = apps::makeApp("gaussian");
  apps::Workload W = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 3));
  Session S;
  Variant V = cantFail(App->buildPerforated(
      S, perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
      {16, 16}));
  std::vector<float> Serial = cantFail(App->run(S, V, W)).Output;

  const unsigned NumThreads = 8;
  std::vector<std::vector<float>> Outputs(NumThreads);
  std::atomic<unsigned> Slot{0};
  runThreads(NumThreads, [&] {
    unsigned T = Slot.fetch_add(1);
    Outputs[T] = cantFail(App->run(S, V, W)).Output;
  });
  for (const std::vector<float> &Out : Outputs)
    EXPECT_EQ(Out, Serial);
}

} // namespace
