//===- tests/quality_test.cpp - runtime quality monitor tests ---------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "img/Generators.h"
#include "img/Metrics.h"
#include "runtime/Quality.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::rt;

namespace {

/// Shared setup: a gaussian kernel + its Rows2 perforation over a 64x64
/// image already uploaded into the context.
struct MonitorSetup {
  std::unique_ptr<Session> Ctx;
  Kernel Accurate;
  Variant Approx;
  unsigned In = 0, Out = 0;
  std::vector<sim::KernelArg> Args;

  explicit MonitorSetup(img::ImageClass Class, unsigned Period = 4) {
    Ctx = std::make_unique<Session>();
    Accurate =
        cantFail(Ctx->compile(apps::gaussianSource(), "gaussian"));
    perf::PerforationPlan Plan;
    Plan.Scheme = perf::PerforationScheme::rows(
        Period, perf::ReconstructionKind::NearestNeighbor);
    Approx = cantFail(Ctx->perforate(Accurate, Plan));
    img::Image Img = img::generateImage(Class, 64, 64, 31);
    In = Ctx->createBufferFrom(Img.pixels());
    Out = Ctx->createBuffer(Img.size());
    Args = {arg::buffer(In), arg::buffer(Out), arg::i32(64), arg::i32(64)};
  }

  QualityMonitor monitor(double Budget, unsigned CheckEvery) {
    return QualityMonitor(*Ctx, Accurate, Approx, {64, 64}, {16, 16},
                          Budget, CheckEvery);
  }
};

ScoreFn mre() {
  return [](const std::vector<float> &R, const std::vector<float> &T) {
    return img::meanRelativeError(R, T);
  };
}

TEST(QualityMonitorTest, StaysApproximateWithinBudget) {
  MonitorSetup S(img::ImageClass::Smooth);
  QualityMonitor Mon = S.monitor(/*Budget=*/0.5, /*CheckEvery=*/2);
  for (int I = 0; I < 6; ++I) {
    MonitoredLaunch L = cantFail(Mon.launch(S.Args, S.Out, mre()));
    EXPECT_TRUE(L.UsedApproximate) << I;
  }
  EXPECT_FALSE(Mon.fellBack());
  EXPECT_EQ(Mon.history().size(), 3u); // Checked on launches 2, 4, 6.
}

TEST(QualityMonitorTest, FallsBackWhenBudgetViolated) {
  // Pattern input drives the Rows2 error above a tight budget.
  MonitorSetup S(img::ImageClass::Pattern);
  QualityMonitor Mon = S.monitor(/*Budget=*/0.001, /*CheckEvery=*/1);
  MonitoredLaunch First = cantFail(Mon.launch(S.Args, S.Out, mre()));
  EXPECT_TRUE(First.Checked);
  EXPECT_GT(First.MeasuredError, 0.001);
  EXPECT_FALSE(First.UsedApproximate); // Accurate result kept.
  EXPECT_TRUE(Mon.fellBack());

  // Subsequent launches run the accurate kernel without re-checking.
  MonitoredLaunch Next = cantFail(Mon.launch(S.Args, S.Out, mre()));
  EXPECT_FALSE(Next.UsedApproximate);
  EXPECT_FALSE(Next.Checked);
  EXPECT_EQ(Mon.history().size(), 1u);
}

TEST(QualityMonitorTest, FallbackOutputIsAccurate) {
  MonitorSetup S(img::ImageClass::Pattern);
  QualityMonitor Mon = S.monitor(0.0, 1); // Impossible budget.
  cantFail(Mon.launch(S.Args, S.Out, mre()));
  // The context's output buffer must now hold the accurate result.
  std::vector<float> Kept = S.Ctx->buffer(S.Out).downloadFloats();
  Expected<sim::SimReport> R =
      S.Ctx->launch(S.Accurate, {64, 64}, {16, 16}, S.Args);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(Kept, S.Ctx->buffer(S.Out).downloadFloats());
}

TEST(QualityMonitorTest, UncheckedLaunchesSkipAccurateRun) {
  MonitorSetup S(img::ImageClass::Smooth);
  QualityMonitor Mon = S.monitor(0.5, 4);
  MonitoredLaunch L1 = cantFail(Mon.launch(S.Args, S.Out, mre()));
  EXPECT_FALSE(L1.Checked);
  MonitoredLaunch L4 = [&] {
    cantFail(Mon.launch(S.Args, S.Out, mre()));
    cantFail(Mon.launch(S.Args, S.Out, mre()));
    return cantFail(Mon.launch(S.Args, S.Out, mre()));
  }();
  EXPECT_TRUE(L4.Checked);
  EXPECT_EQ(Mon.launches(), 4u);
}

TEST(QualityMonitorTest, CheckEveryZeroMeansAlways) {
  MonitorSetup S(img::ImageClass::Smooth);
  QualityMonitor Mon = S.monitor(0.5, 0);
  MonitoredLaunch L = cantFail(Mon.launch(S.Args, S.Out, mre()));
  EXPECT_TRUE(L.Checked);
}

TEST(QualityMonitorTest, HistoryAccumulates) {
  MonitorSetup S(img::ImageClass::Smooth);
  QualityMonitor Mon = S.monitor(0.5, 1);
  for (int I = 0; I < 3; ++I)
    cantFail(Mon.launch(S.Args, S.Out, mre()));
  ASSERT_EQ(Mon.history().size(), 3u);
  // Same input every time: identical measured error.
  EXPECT_DOUBLE_EQ(Mon.history()[0], Mon.history()[2]);
}

} // namespace
