//===- tests/session_hammer_test.cpp - Session lifetime hammer ---------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Concurrency hammer for the Session's kernel-lifetime discipline: client
// threads interleave launch, capacity-driven eviction, and
// invalidate/re-perforate cycles on one shared session. The TSan CI tier
// runs this binary; single-threaded phases pin the exact
// eviction/rejection counter accounting, and every phase asserts the
// module's function count stays bounded (no leaked variant kernels) and
// that a launch racing a retirement either completes correctly or fails
// with the evicted-variant error -- never a dangling access.
//
//===----------------------------------------------------------------------===//

#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace kperf;
using namespace kperf::rt;

namespace {

const char *ScaleSource = R"(
kernel void scale(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * w + x] = in[y * w + x] * 2.0;
}
)";

perf::PerforationPlan planWithTile(unsigned TileX, unsigned TileY) {
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  Plan.TileX = TileX;
  Plan.TileY = TileY;
  return Plan;
}

TEST(SessionHammerTest, ExactEvictionAndRejectionAccounting) {
  // Single-threaded: the counters must account exactly. Capacity 2 with
  // four distinct keys evicts exactly twice; two gate rejections count
  // as rejections and never as compiles.
  Session S;
  S.setVariantCapacity(2);
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  size_t Baseline = S.module().numFunctions();

  unsigned Tiles[4][2] = {{16, 16}, {8, 8}, {8, 4}, {4, 4}};
  for (auto &T : Tiles)
    cantFail(S.perforate(K, planWithTile(T[0], T[1])));
  EXPECT_EQ(S.stats().VariantCompiles, 4u);
  EXPECT_EQ(S.stats().VariantEvictions, 2u);
  // Live cached kernels = compiles - evictions, and the module holds
  // exactly the source kernel plus the live variants.
  EXPECT_EQ(S.module().numFunctions(), Baseline + 2);

  const char *OobSource = R"(
kernel void oob(global const float* in, global float* out, int w, int h) {
  float p[8];
  int x = get_global_id(0);
  int y = get_global_id(1);
  p[0] = in[y * w + x];
  p[8200] = 3.0;
  out[y * w + x] = p[0];
}
)";
  S.setLintGate(true);
  Kernel Bad = cantFail(S.compile(OobSource, "oob"));
  for (int I = 0; I < 2; ++I)
    EXPECT_FALSE(static_cast<bool>(S.perforate(Bad, planWithTile(16, 16))));
  EXPECT_EQ(S.stats().LintRejections, 2u);
  EXPECT_EQ(S.stats().VariantCompiles, 4u); // Unchanged by rejections.
  EXPECT_EQ(S.stats().VariantEvictions, 2u);
}

TEST(SessionHammerTest, ConcurrentLaunchEvictInvalidate) {
  // The race the graveyard/quiescence protocol exists for: launches in
  // flight while other threads evict (tiny capacity) and invalidate the
  // source kernel. Every launch either returns the correct output or
  // the evicted-variant error.
  Session S;
  S.setVariantCapacity(2); // Every fresh key evicts another thread's.
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  size_t Baseline = S.module().numFunctions();

  constexpr unsigned W = 32, H = 32, Iters = 40;
  const std::vector<float> Data(W * H, 1.0f);
  std::atomic<unsigned> WrongOutputs{0}, HardFailures{0}, Evicted{0},
      Launches{0};

  // Three launcher threads on distinct variant keys, one invalidator
  // cycling invalidate/re-perforate on the shared source kernel.
  unsigned Tiles[3][2] = {{16, 16}, {8, 8}, {4, 4}};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 3; ++T)
    Threads.emplace_back([&, T]() {
      unsigned In = S.createBufferFrom(Data);
      unsigned Out = S.createBuffer(Data.size());
      std::vector<sim::KernelArg> Args = {arg::buffer(In), arg::buffer(Out),
                                          arg::i32(W), arg::i32(H)};
      for (unsigned I = 0; I < Iters; ++I) {
        Expected<Variant> V =
            S.perforate(K, planWithTile(Tiles[T][0], Tiles[T][1]));
        if (!V) {
          ++HardFailures;
          continue;
        }
        Expected<sim::SimReport> R = S.launch(*V, {W, H}, Args);
        if (!R) {
          // The only acceptable failure: our kernel was retired between
          // perforate() and launch() by an eviction or invalidation.
          if (Session::isEvictedError(R.error()))
            ++Evicted;
          else
            ++HardFailures;
          continue;
        }
        ++Launches;
        if (S.buffer(Out).floatAt(0) != 2.0f)
          ++WrongOutputs;
      }
      S.releaseBuffer(In);
      S.releaseBuffer(Out);
    });
  Threads.emplace_back([&]() {
    for (unsigned I = 0; I < Iters; ++I) {
      S.invalidate(K);
      Expected<Variant> V = S.perforate(K, planWithTile(16, 16));
      if (!V)
        ++HardFailures;
    }
  });
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_EQ(HardFailures.load(), 0u);
  EXPECT_EQ(WrongOutputs.load(), 0u);
  EXPECT_GT(Launches.load(), 0u);

  // No leaked kernels: whatever the interleaving, the module ends with
  // the source kernel plus at most VariantCapacity live variants (the
  // graveyard holds only detached functions, freed at quiescence).
  EXPECT_LE(S.module().numFunctions(), Baseline + 2);

  // Cross-thread counter conservation: every lookup was a compile or a
  // hit, and live entries = compiles - evictions - invalidation-retired.
  const SessionStats &St = S.stats();
  EXPECT_EQ(St.variantLookups(), St.VariantCompiles + St.VariantCacheHits);
  EXPECT_LE(St.VariantEvictions.load(), St.VariantCompiles.load());

  // The session still works after the storm.
  Variant V = cantFail(S.perforate(K, planWithTile(16, 16)));
  unsigned In = S.createBufferFrom(Data);
  unsigned Out = S.createBuffer(Data.size());
  cantFail(S.launch(V, {W, H},
                    {arg::buffer(In), arg::buffer(Out), arg::i32(W),
                     arg::i32(H)}));
  EXPECT_FLOAT_EQ(S.buffer(Out).floatAt(0), 2.0f);
}

TEST(SessionHammerTest, InvalidateLoopUnderConcurrentLaunchesStaysBounded) {
  // The PR's leak regression under concurrency: 100 invalidate/
  // re-perforate cycles race two launcher threads; the function count
  // is re-checked after every join point.
  Session S;
  Kernel K = cantFail(S.compile(ScaleSource, "scale"));
  cantFail(S.perforate(K, planWithTile(16, 16)));
  size_t Baseline = S.module().numFunctions();

  constexpr unsigned W = 32, H = 32;
  const std::vector<float> Data(W * H, 0.5f);
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> HardFailures{0};

  std::vector<std::thread> Launchers;
  for (unsigned T = 0; T < 2; ++T)
    Launchers.emplace_back([&]() {
      unsigned In = S.createBufferFrom(Data);
      unsigned Out = S.createBuffer(Data.size());
      std::vector<sim::KernelArg> Args = {arg::buffer(In), arg::buffer(Out),
                                          arg::i32(W), arg::i32(H)};
      while (!Stop.load()) {
        Expected<Variant> V = S.perforate(K, planWithTile(16, 16));
        if (!V) {
          ++HardFailures;
          continue;
        }
        Expected<sim::SimReport> R = S.launch(*V, {W, H}, Args);
        if (!R && !Session::isEvictedError(R.error()))
          ++HardFailures;
      }
      S.releaseBuffer(In);
      S.releaseBuffer(Out);
    });

  for (unsigned I = 0; I < 100; ++I) {
    S.invalidate(K);
    cantFail(S.perforate(K, planWithTile(16, 16)));
  }
  Stop.store(true);
  for (std::thread &Th : Launchers)
    Th.join();

  EXPECT_EQ(HardFailures.load(), 0u);
  EXPECT_GE(S.stats().Invalidations, 100u);
  // One source kernel, one live variant; nothing accumulated.
  EXPECT_EQ(S.module().numFunctions(), Baseline);
}

} // namespace
