//===- tests/passes_test.cpp - Pass manager and pipeline tests --------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/AnalysisManager.h"
#include "ir/IRBuilder.h"
#include "ir/PassManager.h"
#include "ir/Passes.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Compiles \p Source and returns the single kernel.
Function *compileKernel(rt::Session &Ctx, const char *Source) {
  Expected<std::vector<Function *>> Fns =
      pcl::compile(Ctx.module(), Source);
  EXPECT_TRUE(static_cast<bool>(Fns)) << Fns.error().message();
  return Fns->front();
}

const char *LoopKernel = R"(
kernel void k(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int k = 0; k < 4; k++) {
    acc += in[clamp(y + k, 0, h - 1) * w + x];
  }
  out[y * w + x] = acc;
}
)";

//===----------------------------------------------------------------------===//
// PassRegistry
//===----------------------------------------------------------------------===//

TEST(PassRegistryTest, BuiltinPassesAreRegistered) {
  std::vector<std::string> Names =
      PassRegistry::instance().registeredNames();
  for (const char *Expected :
       {"cse", "dce", "gvn", "licm", "mem2reg", "memopt-dse",
        "memopt-forward", "perforate-loop", "simplify", "sroa",
        "unroll"})
    EXPECT_TRUE(PassRegistry::instance().contains(Expected)) << Expected;
  EXPECT_GE(Names.size(), 10u);
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
}

TEST(PassRegistryTest, CreateInstantiatesByName) {
  auto P = PassRegistry::instance().create("licm");
  ASSERT_NE(P, nullptr);
  EXPECT_STREQ(P->name(), "licm");
  EXPECT_TRUE(P->preservesCFG());
  EXPECT_EQ(PassRegistry::instance().create("nonexistent"), nullptr);
}

TEST(PassRegistryTest, ParameterizedPassCreation) {
  EXPECT_TRUE(PassRegistry::instance().isParameterized("unroll"));
  EXPECT_TRUE(PassRegistry::instance().isParameterized("perforate-loop"));
  EXPECT_FALSE(PassRegistry::instance().isParameterized("simplify"));
  EXPECT_FALSE(PassRegistry::instance().isParameterized("nonexistent"));
  // Bare creation uses the default budget; explicit budgets also work.
  auto Default = PassRegistry::instance().create("unroll");
  ASSERT_NE(Default, nullptr);
  EXPECT_STREQ(Default->name(), "unroll");
  EXPECT_FALSE(Default->preservesCFG()); // Rewrites the block set.
  auto Small = PassRegistry::instance().create("unroll", 16u);
  ASSERT_NE(Small, nullptr);
  // Stride-parameterized perforation: bare = stride 1 (the no-op).
  auto Perf = PassRegistry::instance().create("perforate-loop", 2u);
  ASSERT_NE(Perf, nullptr);
  EXPECT_STREQ(Perf->name(), "perforate-loop");
  EXPECT_TRUE(Perf->preservesCFG()); // Rewrites steps, never edges.
  // name(N) on a non-parameterized pass has no factory.
  EXPECT_EQ(PassRegistry::instance().create("simplify", 3u), nullptr);
}

//===----------------------------------------------------------------------===//
// Pipeline spec parsing
//===----------------------------------------------------------------------===//

TEST(PipelineParseTest, RoundTripsCanonicalSpecs) {
  for (const char *Spec :
       {"simplify", "simplify,cse,dce",
        "fixpoint(simplify,cse,dce)",
        "fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)",
        "simplify,fixpoint(cse,dce),licm",
        "fixpoint(simplify,fixpoint(cse,dce))", "unroll",
        "unroll(256)", "mem2reg,unroll(64),fixpoint(simplify,gvn,dce)",
        "fixpoint(gvn,unroll(512),dce)"}) {
    Expected<PassPipeline> P = PassPipeline::parse(Spec);
    ASSERT_TRUE(static_cast<bool>(P)) << Spec;
    EXPECT_EQ(P->str(), Spec);
  }
}

TEST(PipelineParseTest, NormalizesWhitespace) {
  Expected<PassPipeline> P =
      PassPipeline::parse("  fixpoint( simplify , cse ) , dce ");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->str(), "fixpoint(simplify,cse),dce");
}

TEST(PipelineParseTest, EmptySpecIsEmptyPipeline) {
  Expected<PassPipeline> P = PassPipeline::parse("");
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_TRUE(P->empty());
  EXPECT_EQ(P->str(), "");
}

TEST(PipelineParseTest, RejectsUnknownPass) {
  Expected<PassPipeline> P = PassPipeline::parse("simplify,frobnicate");
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.error().message().find("frobnicate"), std::string::npos);
  // The diagnostic lists what is available.
  EXPECT_NE(P.error().message().find("licm"), std::string::npos);
}

TEST(PipelineParseTest, RejectsMalformedSpecs) {
  for (const char *Spec :
       {"fixpoint(", "fixpoint()", "fixpoint(simplify", "simplify,,dce",
        "simplify)", ",simplify", "fixpoint(simplify))",
        // Parameter errors: simplify takes none; unroll needs an int
        // that fits unsigned.
        "simplify(3)", "unroll(", "unroll()", "unroll(abc)",
        "unroll(256", "unroll(4294967296)"}) {
    Expected<PassPipeline> P = PassPipeline::parse(Spec);
    EXPECT_FALSE(static_cast<bool>(P)) << Spec;
  }
}

//===----------------------------------------------------------------------===//
// Pipeline execution and stats
//===----------------------------------------------------------------------===//

TEST(PipelineRunTest, NestedFixpointRunsToCompletion) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  Expected<PassPipeline> P =
      PassPipeline::parse("fixpoint(simplify,fixpoint(cse,dce))");
  ASSERT_TRUE(static_cast<bool>(P));
  Expected<PipelineStats> Stats = P->run(*F, Ctx.module());
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_GT(Stats->total(), 0u);
  Error E = verifyFunction(*F);
  EXPECT_FALSE(E) << E.message();
  // Rerunning an already-converged pipeline changes nothing.
  Expected<PipelineStats> Again = P->run(*F, Ctx.module());
  ASSERT_TRUE(static_cast<bool>(Again));
  EXPECT_EQ(Again->total(), 0u);
}

TEST(PipelineRunTest, StatsDeriveFromSinglePerPassTable) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  PipelineStats Stats = runDefaultPipeline(*F, Ctx.module());

  // total() and every named accessor are views over the same table; the
  // counters cannot drift from the sum.
  unsigned TableSum = 0;
  for (const PassExecution &E : Stats.Passes)
    TableSum += E.Changes;
  EXPECT_EQ(Stats.total(), TableSum);
  EXPECT_EQ(Stats.promoted() + Stats.scalarized() + Stats.unrolled() +
                Stats.simplified() + Stats.numbered() + Stats.merged() +
                Stats.forwarded() + Stats.hoisted() + Stats.deadStores() +
                Stats.deleted(),
            Stats.total());
  EXPECT_GT(Stats.total(), 0u);
  EXPECT_GT(Stats.promoted(), 0u); // mem2reg promoted the scalar allocas.
  EXPECT_GT(Stats.unrolled(), 0u); // The k<4 loop fully unrolled.
  EXPECT_GE(Stats.Iterations, 2u); // Work round plus the no-change round.

  // unroll runs once ahead of the fixpoint group; mem2reg runs once up
  // front plus once per round (inside the group, after sroa); every
  // other group member ran once per round.
  ASSERT_EQ(Stats.Passes.size(), 10u);
  for (const PassExecution &E : Stats.Passes) {
    unsigned Expected = Stats.Iterations;
    if (E.Name == "unroll")
      Expected = 1;
    else if (E.Name == "mem2reg")
      Expected = 1 + Stats.Iterations;
    EXPECT_EQ(E.Invocations, Expected) << E.Name;
  }
}

TEST(PipelineRunTest, TimingIsRecordedPerPass) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  PipelineStats Stats = runDefaultPipeline(*F, Ctx.module());
  double Sum = 0;
  for (const PassExecution &E : Stats.Passes) {
    EXPECT_GE(E.Millis, 0.0) << E.Name;
    Sum += E.Millis;
  }
  EXPECT_DOUBLE_EQ(Stats.totalMillis(), Sum);
}

TEST(PipelineRunTest, VerifyEachPassesOnWellFormedKernels) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  Expected<PassPipeline> P = PassPipeline::parse(defaultPipelineSpec());
  ASSERT_TRUE(static_cast<bool>(P));
  PassRunOptions Opts;
  Opts.VerifyEach = true;
  AnalysisManager AM;
  Expected<PipelineStats> Stats = P->run(*F, Ctx.module(), AM, Opts);
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.error().message();
  EXPECT_GT(Stats->total(), 0u);
}

TEST(PipelineRunTest, MergeAccumulatesTables) {
  PipelineStats A, B;
  A.entry("cse").Changes = 3;
  A.entry("cse").Invocations = 1;
  A.Iterations = 2;
  B.entry("cse").Changes = 2;
  B.entry("dce").Changes = 5;
  B.Iterations = 1;
  A.merge(B);
  EXPECT_EQ(A.changes("cse"), 5u);
  EXPECT_EQ(A.changes("dce"), 5u);
  EXPECT_EQ(A.total(), 10u);
  EXPECT_EQ(A.Iterations, 3u);
}

//===----------------------------------------------------------------------===//
// PipelineOptions compatibility shim
//===----------------------------------------------------------------------===//

TEST(PipelineOptionsTest, SpecMapsOntoPipelineStrings) {
  EXPECT_EQ(PipelineOptions().spec(), defaultPipelineSpec());
  EXPECT_EQ(PipelineOptions::none().spec(), "");
  PipelineOptions NoCse;
  NoCse.CSE = false;
  NoCse.MemOpt = false;
  NoCse.LICM = false;
  NoCse.GVN = false;
  NoCse.Unroll = false;
  // With SROA on, the fixpoint group carries sroa plus the in-group
  // mem2reg that promotes its scalars.
  EXPECT_EQ(NoCse.spec(), "mem2reg,fixpoint(simplify,sroa,mem2reg,dce)");
  NoCse.SROA = false;
  EXPECT_EQ(NoCse.spec(), "mem2reg,fixpoint(simplify,dce)");
  NoCse.Mem2Reg = false;
  EXPECT_EQ(NoCse.spec(), "fixpoint(simplify,dce)");
  NoCse.Unroll = true;
  EXPECT_EQ(NoCse.spec(), "unroll,fixpoint(simplify,dce)");
  PipelineOptions OnlyMem2Reg = PipelineOptions::none();
  OnlyMem2Reg.Mem2Reg = true;
  EXPECT_EQ(OnlyMem2Reg.spec(), "mem2reg");
}

TEST(PipelineOptionsTest, ShimMatchesDirectSpecRun) {
  rt::Session C1, C2;
  Function *F1 = compileKernel(C1, LoopKernel);
  Function *F2 = compileKernel(C2, LoopKernel);
  PipelineOptions NoCse;
  NoCse.CSE = false;
  NoCse.MemOpt = false;
  NoCse.LICM = false;
  PipelineStats A = runPipeline(*F1, C1.module(), NoCse);
  Expected<PipelineStats> B = runPipelineSpec(
      *F2, C2.module(), "mem2reg,unroll,fixpoint(simplify,gvn,dce)");
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(A.total(), B->total());
  EXPECT_EQ(A.Iterations, B->Iterations);
}

//===----------------------------------------------------------------------===//
// AnalysisManager: dominator-tree caching and invalidation
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, DominatorTreeIsCachedAcrossQueries) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  AnalysisManager AM;
  const DominatorTree &DT1 = AM.getDominatorTree(*F);
  const DominatorTree &DT2 = AM.getDominatorTree(*F);
  EXPECT_EQ(&DT1, &DT2);
  EXPECT_EQ(AM.counters().DomTreeComputes, 1u);
  EXPECT_EQ(AM.counters().DomTreeHits, 1u);
}

TEST(AnalysisManagerTest, CfgPreservingInvalidationKeepsDomTree) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  AnalysisManager AM;
  const DominatorTree &DT1 = AM.getDominatorTree(*F);
  AM.invalidate(*F, /*CFGPreserved=*/true);
  const DominatorTree &DT2 = AM.getDominatorTree(*F);
  EXPECT_EQ(&DT1, &DT2);
  EXPECT_EQ(AM.counters().DomTreeComputes, 1u);
}

TEST(AnalysisManagerTest, MutatingInvalidationRecomputesCorrectTree) {
  // Build a kernel whose CFG the simplifier rewrites: a condbr on a
  // constant condition collapses to an unconditional branch.
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
      false);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertPoint(Entry);
  B.createCondBr(M.getBool(true), Then, Else);
  B.setInsertPoint(Then);
  B.createStore(M.getFloat(1.0f), B.createGep(Out, M.getInt(0)));
  B.createBr(Join);
  B.setInsertPoint(Else);
  B.createStore(M.getFloat(2.0f), B.createGep(Out, M.getInt(0)));
  B.createBr(Join);
  B.setInsertPoint(Join);
  B.createRet();

  AnalysisManager AM;
  const DominatorTree &Before = AM.getDominatorTree(*F);
  EXPECT_TRUE(Before.isReachable(Else));
  EXPECT_EQ(AM.counters().DomTreeComputes, 1u);

  // Run simplify through the pipeline: it folds the branch (a CFG
  // mutation), so the manager must drop the cached tree.
  Expected<PipelineStats> Stats =
      runPipelineSpec(*F, M, AM, "simplify");
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_GT(Stats->total(), 0u);

  const DominatorTree &After = AM.getDominatorTree(*F);
  EXPECT_EQ(AM.counters().DomTreeComputes, 2u);

  // The recomputed tree matches a fresh recompute on the mutated
  // function block-for-block.
  DominatorTree Fresh = DominatorTree::compute(*F);
  for (const auto &BB : F->blocks()) {
    EXPECT_EQ(After.isReachable(BB.get()), Fresh.isReachable(BB.get()))
        << BB->name();
    EXPECT_EQ(After.idom(BB.get()), Fresh.idom(BB.get())) << BB->name();
  }
  EXPECT_FALSE(After.isReachable(Else)); // else is dead after folding.
}

TEST(AnalysisManagerTest, GenericCacheDropsOnAnyMutation) {
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  AnalysisManager AM;
  struct Summary {
    int Marker;
  };
  AM.cache(*F, Summary{42});
  ASSERT_NE(AM.lookup<Summary>(*F), nullptr);
  EXPECT_EQ(AM.lookup<Summary>(*F)->Marker, 42);
  // Even a CFG-preserving mutation invalidates instruction-sensitive
  // generic entries.
  AM.invalidate(*F, /*CFGPreserved=*/true);
  EXPECT_EQ(AM.lookup<Summary>(*F), nullptr);
}

TEST(AnalysisManagerTest, DomTreeComputedAtMostOncePerFixpointRound) {
  // The acceptance bar for the pass-manager refactor: across the whole
  // default pipeline the dominator tree is computed at most once per
  // fixpoint round (it used to be once per LICM invocation, and LICM
  // recomputed it internally per hoisting wave on top of that).
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  Expected<PassPipeline> P = PassPipeline::parse(defaultPipelineSpec());
  ASSERT_TRUE(static_cast<bool>(P));
  AnalysisManager AM;
  Expected<PipelineStats> Stats = P->run(*F, Ctx.module(), AM);
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_GE(Stats->Iterations, 2u);
  // One compute for mem2reg, at most one after unroll rewrote the CFG,
  // then the (CFG-preserving) fixpoint group reuses the cache.
  EXPECT_LE(AM.counters().DomTreeComputes, Stats->Iterations + 2);
  // Many passes query the tree (directly, through the dominance
  // frontier, and through memory SSA, which derives both); all queries
  // beyond the computes were cache hits.
  EXPECT_GT(AM.counters().DomTreeHits, AM.counters().DomTreeComputes);
  // The frontier is computed at most twice: once for the up-front
  // mem2reg, once after unroll rewrote the CFG; the fixpoint group is
  // CFG-preserving and reuses it.
  EXPECT_LE(AM.counters().DomFrontierComputes, 2u);
  // Memory SSA is instruction-sensitive, so it recomputes after every
  // pass that changed something -- but the final no-change round serves
  // gvn, licm, and memopt-dse from one walk: hits must show up.
  EXPECT_GT(AM.counters().MemSSAComputes, 0u);
  EXPECT_GT(AM.counters().MemSSAHits, 0u);
}

TEST(AnalysisManagerTest, CseOnlyPipelineReusesOneTreeAcrossRounds) {
  // In a pipeline of purely CFG-preserving passes the tree is computed
  // exactly once no matter how many rounds run.
  rt::Session Ctx;
  Function *F = compileKernel(Ctx, LoopKernel);
  Expected<PassPipeline> P =
      PassPipeline::parse("fixpoint(cse,licm,dce)");
  ASSERT_TRUE(static_cast<bool>(P));
  AnalysisManager AM;
  Expected<PipelineStats> Stats = P->run(*F, Ctx.module(), AM);
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_GE(Stats->Iterations, 2u);
  EXPECT_EQ(AM.counters().DomTreeComputes, 1u);
  // LICM also queries the tree through memory SSA (and its dominance
  // frontier), so hits exceed the one-direct-query-per-round floor.
  EXPECT_GE(AM.counters().DomTreeHits, Stats->Iterations - 1);
}

//===----------------------------------------------------------------------===//
// Compiler integration: post-verify pipeline
//===----------------------------------------------------------------------===//

TEST(CompilerPipelineTest, PostVerifyPipelineOptimizesKernels) {
  rt::Session Plain, Optimized;
  Function *F1 = compileKernel(Plain, LoopKernel);

  pcl::CompileOptions Opts;
  Opts.PipelineSpec = defaultPipelineSpec();
  Opts.VerifyEach = true;
  PipelineStats Stats;
  Opts.Stats = &Stats;
  Expected<std::vector<Function *>> Fns =
      pcl::compile(Optimized.module(), LoopKernel, Opts);
  ASSERT_TRUE(static_cast<bool>(Fns)) << Fns.error().message();
  Function *F2 = Fns->front();

  auto Count = [](const Function &F) {
    size_t N = 0;
    for (const auto &BB : F.blocks())
      N += BB->size();
    return N;
  };
  EXPECT_LT(Count(*F2), Count(*F1));
  EXPECT_GT(Stats.total(), 0u);
  Error E = verifyFunction(*F2);
  EXPECT_FALSE(E) << E.message();
}

} // namespace
