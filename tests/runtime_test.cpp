//===- tests/runtime_test.cpp - host runtime facade tests -------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "runtime/Session.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::rt;

namespace {

const char *CopySource = R"(
kernel void copy(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * w + x] = in[y * w + x];
}
)";

TEST(RuntimeTest, CompileAndLaunch) {
  Session Ctx;
  Kernel K = cantFail(Ctx.compile(CopySource, "copy"));
  EXPECT_EQ(K.name(), "copy");
  std::vector<float> Data(64);
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<float>(I);
  unsigned In = Ctx.createBufferFrom(Data);
  unsigned Out = Ctx.createBuffer(64);
  cantFail(Ctx.launch(K, {8, 8}, {4, 4},
                      {arg::buffer(In), arg::buffer(Out), arg::i32(8),
                       arg::i32(8)}));
  EXPECT_EQ(Ctx.buffer(Out).downloadFloats(), Data);
}

TEST(RuntimeTest, CompileErrorPropagates) {
  Session Ctx;
  Expected<Kernel> K = Ctx.compile("kernel void broken( {}", "broken");
  ASSERT_FALSE(static_cast<bool>(K));
  EXPECT_FALSE(K.error().message().empty());
}

TEST(RuntimeTest, UnknownKernelName) {
  Session Ctx;
  Expected<Kernel> K = Ctx.compile(CopySource, "nope");
  ASSERT_FALSE(static_cast<bool>(K));
  EXPECT_NE(K.error().message().find("no kernel named"),
            std::string::npos);
}

TEST(RuntimeTest, BufferAccessors) {
  Session Ctx;
  unsigned B = Ctx.createBuffer(4);
  Ctx.buffer(B).setFloat(2, 1.25f);
  EXPECT_FLOAT_EQ(Ctx.buffer(B).floatAt(2), 1.25f);
  Ctx.buffer(B).setInt(0, -7);
  EXPECT_EQ(Ctx.buffer(B).intAt(0), -7);
}

TEST(RuntimeTest, PerforateProducesLaunchConstraints) {
  Session Ctx;
  Kernel K = cantFail(Ctx.compile(CopySource, "copy"));
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  Plan.TileX = 8;
  Plan.TileY = 4;
  Variant P = cantFail(Ctx.perforate(K, Plan));
  EXPECT_EQ(P.Kind, VariantKind::Perforated);
  EXPECT_EQ(P.Local.X, 8u);
  EXPECT_EQ(P.Local.Y, 4u);
  EXPECT_EQ(P.LocalMemWords, 8u * 4u); // Halo 0 for a copy kernel.
  EXPECT_NE(P.K.F, K.F);
}

TEST(RuntimeTest, GeneratedKernelNamesUniquePerKey) {
  Session Ctx;
  Kernel K = cantFail(Ctx.compile(CopySource, "copy"));
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  // Identical plans share one cached variant; a differing plan gets a
  // distinctly named kernel of its own.
  Variant A = cantFail(Ctx.perforate(K, Plan));
  Variant B = cantFail(Ctx.perforate(K, Plan));
  EXPECT_EQ(A.K.F, B.K.F);
  Plan.Scheme =
      perf::PerforationScheme::rows(4, perf::ReconstructionKind::Linear);
  Variant C = cantFail(Ctx.perforate(K, Plan));
  EXPECT_NE(A.K.F, C.K.F);
  EXPECT_NE(A.K.F->name(), C.K.F->name());
}

TEST(RuntimeTest, OutputApproxLaunchRoundsUp) {
  Session Ctx;
  Kernel K = cantFail(Ctx.compile(CopySource, "copy"));
  perf::OutputApproxPlan Plan;
  Plan.Kind = perf::OutputSchemeKind::Rows;
  Plan.ApproxPerComputed = 2;
  Plan.WidthArgIndex = 2;
  Plan.HeightArgIndex = 3;
  Variant A = cantFail(Ctx.approximateOutput(K, Plan));
  EXPECT_EQ(A.DivY, 3u);
  A.Local = {4, 4};
  std::vector<float> Data(48 * 48, 0.5f);
  unsigned In = Ctx.createBufferFrom(Data);
  unsigned Out = Ctx.createBuffer(Data.size());
  // 48/3 = 16 rows of computed items, divisible by 4: launches cleanly.
  sim::SimReport R = cantFail(Ctx.launch(
      A, {48, 48},
      {arg::buffer(In), arg::buffer(Out), arg::i32(48), arg::i32(48)}));
  EXPECT_EQ(R.Totals.WorkItems, 48u * 16u);
}

TEST(RuntimeTest, DeviceConfigurable) {
  sim::DeviceConfig D;
  D.NumComputeUnits = 2;
  Session Ctx(D);
  EXPECT_EQ(Ctx.device().NumComputeUnits, 2u);
  Ctx.device().ReadCostCycles = 99.0;
  EXPECT_DOUBLE_EQ(Ctx.device().ReadCostCycles, 99.0);
}

} // namespace
