//===- tests/transform_test.cpp - Perforation transform tests ---------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Semantic tests of the core transform. The key properties:
//
//  * SchemeKind::None (local prefetch) is bit-exact versus the plain run;
//  * any scheme is exact on constant inputs (NN and LI reconstruct
//    constants perfectly);
//  * linear interpolation is exact on row-linear inputs;
//  * NN errors are bounded by the input's neighboring-row difference;
//  * parity is seamless across adjacent work groups;
//  * infeasible inputs are rejected with useful messages.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/Kernels.h"
#include "ir/Verifier.h"
#include "pcl/Compiler.h"
#include "img/Generators.h"
#include "ir/Printer.h"
#include "perforation/Transform.h"
#include "runtime/Session.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::perf;

namespace {

img::Image constantImage(unsigned Size, float V) {
  return img::Image(Size, Size, V);
}

/// Image whose value depends linearly on the row: f(x,y) = a*y + b.
img::Image rowLinearImage(unsigned Size, float A, float B) {
  img::Image I(Size, Size);
  for (unsigned Y = 0; Y < Size; ++Y)
    for (unsigned X = 0; X < Size; ++X)
      I.set(X, Y, A * static_cast<float>(Y) + B);
  return I;
}

double maxAbsDiff(const std::vector<float> &A, const std::vector<float> &B) {
  double M = 0;
  for (size_t I = 0; I < A.size(); ++I)
    M = std::max(M, static_cast<double>(std::fabs(A[I] - B[I])));
  return M;
}

Expected<RunOutcome> runScheme(const App &TheApp, const Workload &W,
                               PerforationScheme Scheme,
                               sim::Range2 Local = {16, 16}) {
  rt::Session Ctx;
  Expected<rt::Variant> BK = TheApp.buildPerforated(Ctx, Scheme, Local);
  if (!BK)
    return BK.takeError();
  return TheApp.run(Ctx, *BK, W);
}

TEST(TransformTest, BaselineNoneIsExactForAllApps) {
  for (const auto &TheApp : makeAllApps()) {
    Workload W = TheApp->name() == "hotspot"
                     ? makeHotspotWorkload(32, 3, 2)
                     : makeImageWorkload(img::generateImage(
                           img::ImageClass::Natural, 32, 32, 5));
    rt::Session C1, C2;
    RunOutcome Plain = cantFail(TheApp->run(
        C1, cantFail(TheApp->buildPlain(C1, {16, 16})), W));
    Expected<RunOutcome> Pref = runScheme(*TheApp, W,
                                          PerforationScheme::none());
    ASSERT_TRUE(static_cast<bool>(Pref)) << TheApp->name();
    EXPECT_EQ(maxAbsDiff(Plain.Output, Pref->Output), 0.0)
        << TheApp->name();
  }
}

TEST(TransformTest, ConstantInputExactForEveryScheme) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(constantImage(64, 0.4f));
  std::vector<float> Ref = TheApp->reference(W);
  const PerforationScheme Schemes[] = {
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
      PerforationScheme::rows(2, ReconstructionKind::Linear),
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor),
      PerforationScheme::rows(4, ReconstructionKind::Linear),
      PerforationScheme::cols(2, ReconstructionKind::NearestNeighbor),
      PerforationScheme::cols(4, ReconstructionKind::Linear),
      PerforationScheme::stencil(),
  };
  for (const PerforationScheme &S : Schemes) {
    RunOutcome R = cantFail(runScheme(*TheApp, W, S));
    EXPECT_LT(maxAbsDiff(Ref, R.Output), 1e-6) << S.str();
  }
}

TEST(TransformTest, LinearInterpolationExactOnRowLinearInput) {
  // Inversion is linear in its input, so LI row reconstruction of a
  // row-linear image is exact wherever the skipped row is bracketed by
  // two loaded rows inside the tile. The last tile row has no in-tile
  // successor and falls back to NN (paper 5.1), producing exactly one
  // row-delta of error there.
  const unsigned Size = 64;
  const float Slope = 0.01f;
  auto TheApp = makeApp("inversion");
  Workload W = makeImageWorkload(rowLinearImage(Size, Slope, 0.1f));
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome LI = cantFail(runScheme(
      *TheApp, W, PerforationScheme::rows(2, ReconstructionKind::Linear)));
  for (unsigned Y = 0; Y < Size; ++Y) {
    bool TileEdgeFallback = Y % 16 == 15; // Skipped row, no next in tile.
    for (unsigned X = 0; X < Size; ++X) {
      float Diff = std::fabs(LI.Output[Y * Size + X] - Ref[Y * Size + X]);
      if (TileEdgeFallback)
        EXPECT_NEAR(Diff, Slope, 1e-5) << Y;
      else
        EXPECT_LT(Diff, 1e-5) << Y;
    }
  }
  // NN on the same input is nowhere-interpolating: larger overall error.
  RunOutcome NN = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor)));
  EXPECT_GT(maxAbsDiff(Ref, NN.Output), 1e-4);
}

TEST(TransformTest, NNErrorBoundedByRowDelta) {
  // For inversion (identity-like), NN row reconstruction substitutes a
  // neighbor row; the output error is bounded by the max row-to-row
  // difference of the input.
  unsigned Size = 64;
  img::Image In = img::generateImage(img::ImageClass::Smooth, Size, Size, 9);
  float MaxRowDelta = 0;
  for (unsigned Y = 0; Y + 1 < Size; ++Y)
    for (unsigned X = 0; X < Size; ++X)
      MaxRowDelta = std::max(
          MaxRowDelta, std::fabs(In.at(X, Y + 1) - In.at(X, Y)));
  auto TheApp = makeApp("inversion");
  Workload W = makeImageWorkload(In);
  RunOutcome R = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor)));
  EXPECT_LE(maxAbsDiff(TheApp->reference(W), R.Output),
            MaxRowDelta + 1e-6);
}

TEST(TransformTest, RowParityIsGlobalAcrossGroups) {
  // With period 2, even global rows are loaded exactly. Inversion output
  // on loaded rows must match the reference bit-exactly in EVERY work
  // group, including groups whose tile starts on an odd row.
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 64, 64, 4);
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
      {16, 16}));
  for (unsigned Y = 0; Y < 64; Y += 2) // Loaded rows.
    for (unsigned X = 0; X < 64; ++X)
      ASSERT_EQ(R.Output[Y * 64 + X], Ref[Y * 64 + X])
          << "loaded row " << Y << " col " << X;
}

TEST(TransformTest, ColParityIsGlobalAcrossGroups) {
  auto TheApp = makeApp("inversion");
  img::Image In = img::generateImage(img::ImageClass::Noise, 64, 64, 4);
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::cols(2, ReconstructionKind::NearestNeighbor)));
  for (unsigned Y = 0; Y < 64; ++Y)
    for (unsigned X = 0; X < 64; X += 2) // Loaded columns.
      ASSERT_EQ(R.Output[Y * 64 + X], Ref[Y * 64 + X]);
}

TEST(TransformTest, StencilCenterIsExact) {
  // Stencil1 loads every tile's center exactly; with a 16x16 tile and
  // halo 1, outputs at least 1 away from tile borders only read center
  // elements and must be exact.
  auto TheApp = makeApp("gaussian");
  img::Image In = img::generateImage(img::ImageClass::Natural, 64, 64, 6);
  Workload W = makeImageWorkload(In);
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome R =
      cantFail(runScheme(*TheApp, W, PerforationScheme::stencil()));
  for (unsigned Y = 0; Y < 64; ++Y) {
    for (unsigned X = 0; X < 64; ++X) {
      unsigned Lx = X % 16, Ly = Y % 16;
      bool Interior = Lx >= 1 && Lx <= 14 && Ly >= 1 && Ly <= 14;
      if (Interior) {
        ASSERT_EQ(R.Output[Y * 64 + X], Ref[Y * 64 + X])
            << "interior pixel " << X << "," << Y;
      }
    }
  }
}

TEST(TransformTest, Rows2SkipsMoreAndIsFaster) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, 128, 128, 2));
  RunOutcome R1 = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor)));
  RunOutcome R2 = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor)));
  EXPECT_LT(R2.Report.Totals.GlobalReadTransactions,
            R1.Report.Totals.GlobalReadTransactions);
  EXPECT_LT(R2.Report.Cycles, R1.Report.Cycles);
  // And less accurate.
  std::vector<float> Ref = TheApp->reference(W);
  EXPECT_GT(TheApp->score(Ref, R2.Output), TheApp->score(Ref, R1.Output));
}

TEST(TransformTest, LIErrorLowerThanNNOnSmoothInput) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Smooth, 128, 128, 12));
  std::vector<float> Ref = TheApp->reference(W);
  RunOutcome NN = cantFail(runScheme(
      *TheApp, W,
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor)));
  RunOutcome LI = cantFail(runScheme(
      *TheApp, W, PerforationScheme::rows(2, ReconstructionKind::Linear)));
  EXPECT_LT(TheApp->score(Ref, LI.Output), TheApp->score(Ref, NN.Output));
}

TEST(TransformTest, HotspotPerforatesBothBuffers) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::hotspotSource(), "hotspot");
  // Use the Transform API directly to check structure.
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  Expected<TransformResult> R =
      applyInputPerforation(M, **F, Plan, "hotspot.p");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  // Two tiles: temp (18x18) + power (16x16).
  EXPECT_EQ(R->LocalMemWords, 18u * 18u + 16u * 16u);
  EXPECT_FALSE(ir::verifyFunction(*R->Kernel));
}

TEST(TransformTest, ExplicitBufferSelection) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::hotspotSource(), "hotspot");
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  Plan.BufferArgs = {1}; // Only the temperature buffer.
  Expected<TransformResult> R =
      applyInputPerforation(M, **F, Plan, "hotspot.t");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(R->LocalMemWords, 18u * 18u);
}

TEST(TransformTest, SelectingNonBufferArgFails) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::gaussianSource(), "gaussian");
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  Plan.BufferArgs = {2}; // 'w' is a scalar.
  Expected<TransformResult> R =
      applyInputPerforation(M, **F, Plan, "g.p");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("not a recognized"),
            std::string::npos);
}

TEST(TransformTest, KernelWithLocalMemoryRejected) {
  ir::Module M;
  Expected<ir::Function *> F = pcl::compileKernel(
      M,
      "kernel void f(global const float* in, global float* out, int w, "
      "int h) {"
      "  local float t[16];"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  t[get_local_id(0)] = in[y * w + x];"
      "  barrier();"
      "  out[y * w + x] = t[get_local_id(0)];"
      "}",
      "f");
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  Expected<TransformResult> R = applyInputPerforation(M, **F, Plan, "f.p");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("local memory"), std::string::npos);
}

TEST(TransformTest, KernelWithoutRecognizedInputRejected) {
  ir::Module M;
  Expected<ir::Function *> F = pcl::compileKernel(
      M,
      "kernel void f(global float* out, int w, int h) {"
      "  int x = get_global_id(0); int y = get_global_id(1);"
      "  out[y * w + x] = 1.0;"
      "}",
      "f");
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  Expected<TransformResult> R = applyInputPerforation(M, **F, Plan, "f.p");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("no perforatable"), std::string::npos);
}

TEST(TransformTest, InvalidPeriodRejected) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::gaussianSource(), "gaussian");
  PerforationPlan Plan;
  Plan.Scheme.Kind = SchemeKind::Rows;
  Plan.Scheme.Period = 1;
  Expected<TransformResult> R = applyInputPerforation(M, **F, Plan, "g.p");
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST(TransformTest, OriginalKernelUntouched) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::gaussianSource(), "gaussian");
  std::string Before = ir::printFunction(**F);
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  cantFail(applyInputPerforation(M, **F, Plan, "g.p"));
  EXPECT_EQ(ir::printFunction(**F), Before);
}

TEST(TransformTest, GeneratedKernelReportsLocalFootprint) {
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::sobel5Source(), "sobel5");
  PerforationPlan Plan;
  Plan.Scheme = PerforationScheme::stencil();
  Plan.TileX = 8;
  Plan.TileY = 8;
  Expected<TransformResult> R =
      applyInputPerforation(M, **F, Plan, "s5.p");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->LocalX, 8u);
  EXPECT_EQ(R->LocalY, 8u);
  EXPECT_EQ(R->LocalMemWords, 12u * 12u); // 8 + 2*2 halo per side.
}

TEST(TransformTest, NonSquareTileWorks) {
  auto TheApp = makeApp("gaussian");
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 8));
  std::vector<float> Ref = TheApp->reference(W);
  for (auto [X, Y] : std::initializer_list<std::pair<unsigned, unsigned>>{
           {32, 8}, {8, 32}, {64, 4}}) {
    RunOutcome R = cantFail(runScheme(
        *TheApp, W, PerforationScheme::none(), {X, Y}));
    EXPECT_EQ(maxAbsDiff(Ref, R.Output), 0.0) << X << "x" << Y;
  }
}

TEST(TransformTest, DeadOldAddressCodeEliminated) {
  // After rewriting loads into the tile, the original global geps are
  // dead and must not survive (they would inflate simulated ALU work).
  ir::Module M;
  Expected<ir::Function *> F =
      pcl::compileKernel(M, apps::inversionSource(), "inversion");
  PerforationPlan Plan;
  Plan.Scheme =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  Expected<TransformResult> R =
      applyInputPerforation(M, **F, Plan, "inv.p");
  ASSERT_TRUE(static_cast<bool>(R));
  unsigned GepsOnInput = 0;
  for (const auto &BB : R->Kernel->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == ir::Opcode::Gep &&
          ir::dyn_cast<ir::Argument>(I->operand(0)) ==
              R->Kernel->argument(0))
        ++GepsOnInput;
  // The only geps on the input buffer are the loader's (one per load
  // site in the loader loop), not the body's.
  EXPECT_EQ(GepsOnInput, 1u);
}

} // namespace
