//===- tests/memopt_test.cpp - store forwarding / dead store tests ----------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "ir/DCE.h"
#include "ir/IRBuilder.h"
#include "ir/MemOpt.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Op)
        ++N;
  return N;
}

bool rootIsArgument(const Value *Ptr) {
  while (const auto *G = dyn_cast<Instruction>(Ptr)) {
    if (G->opcode() != Opcode::Gep)
      break;
    Ptr = G->operand(0);
  }
  return isa<Argument>(Ptr);
}

/// Fixture with in/out float buffers, an int argument, and an open entry
/// block.
class MemOptTest : public ::testing::Test {
protected:
  MemOptTest() : B(M) {
    F = M.createFunction("f");
    In = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "in",
        true);
    Out = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
        false);
    W = F->addArgument(Type::intTy(), "w", false);
    Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
  }

  void finishAndVerify() {
    B.createRet();
    Error E = verifyFunction(*F);
    ASSERT_FALSE(E) << E.message();
  }

  /// Keeps \p V alive via a store to out[Slot].
  void keep(Value *V, int Slot) {
    B.createStore(V, B.createGep(Out, M.getInt(Slot)));
  }

  Module M;
  Function *F = nullptr;
  Argument *In = nullptr;
  Argument *Out = nullptr;
  Argument *W = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B;
};

//===----------------------------------------------------------------------===//
// Store-to-load forwarding
//===----------------------------------------------------------------------===//

TEST_F(MemOptTest, ForwardsPrivateScalarRoundTrip) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  Value *V = B.createIntToFloat(W, "v");
  B.createStore(V, A);
  Value *L = B.createLoad(A, "l");
  keep(L, 0);
  finishAndVerify();
  EXPECT_EQ(forwardStores(*F), 1u);
  // The store's value now feeds the keep() store directly.
  for (const auto &I : Entry->instructions())
    if (I->opcode() == Opcode::Store &&
        rootIsArgument(I->operand(1)))
      EXPECT_EQ(I->operand(0), V);
  eliminateDeadCode(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::Load), 0u);
}

TEST_F(MemOptTest, AliasingElementStoreBlocksForwarding) {
  // a[i] = 1; a[j] = 2; load a[i] -- i and j may be equal at runtime.
  Value *A =
      B.createAlloca(ScalarKind::Float, 8, AddressSpace::Private, "a");
  Value *I1 = B.createCall(Builtin::GetGlobalId, {M.getInt(0)}, "i");
  Value *J = B.createCall(Builtin::GetGlobalId, {M.getInt(1)}, "j");
  Value *Pi = B.createGep(A, I1, "pi");
  Value *Pj = B.createGep(A, J, "pj");
  B.createStore(M.getFloat(1.0f), Pi);
  B.createStore(M.getFloat(2.0f), Pj);
  Value *L = B.createLoad(Pi, "l");
  keep(L, 0);
  finishAndVerify();
  EXPECT_EQ(forwardStores(*F), 0u);
}

TEST_F(MemOptTest, NoForwardingThroughArgumentBuffers) {
  // out[0] = v; x = out[0] -- the host may have bound 'in' and 'out' to
  // one buffer, and argument contents are never forwarded.
  Value *V = B.createIntToFloat(W, "v");
  Value *P = B.createGep(Out, M.getInt(0), "p");
  B.createStore(V, P);
  Value *L = B.createLoad(P, "l");
  keep(L, 1);
  finishAndVerify();
  EXPECT_EQ(forwardStores(*F), 0u);
}

TEST_F(MemOptTest, ArgumentStoreKeepsPrivateContents) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  B.createStore(M.getFloat(3.0f), A);
  keep(M.getFloat(9.0f), 0); // Store through 'out'.
  Value *L = B.createLoad(A, "l");
  keep(L, 1);
  finishAndVerify();
  EXPECT_EQ(forwardStores(*F), 1u);
}

TEST_F(MemOptTest, BarrierKillsLocalForwardingKeepsPrivate) {
  Value *Priv =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "p");
  Value *Loc =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Local, "t");
  Value *PLoc = B.createGep(Loc, M.getInt(0), "pl");
  B.createStore(M.getFloat(1.0f), Priv);
  B.createStore(M.getFloat(2.0f), PLoc);
  B.createCall(Builtin::Barrier, {}, "");
  Value *L1 = B.createLoad(Priv, "l1"); // Forwarded.
  Value *L2 = B.createLoad(PLoc, "l2"); // Another item may have written.
  keep(B.createAdd(L1, L2), 0);
  finishAndVerify();
  EXPECT_EQ(forwardStores(*F), 1u);
}

TEST_F(MemOptTest, ForwardingIsBlockLocal) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  B.createStore(M.getFloat(1.0f), A);
  BasicBlock *Next = F->createBlock("next");
  B.createBr(Next);
  B.setInsertPoint(Next);
  Value *L = B.createLoad(A, "l");
  keep(L, 0);
  finishAndVerify();
  // Cross-block forwarding needs dataflow; the pass must stay put.
  EXPECT_EQ(forwardStores(*F), 0u);
}

//===----------------------------------------------------------------------===//
// Dead-store elimination
//===----------------------------------------------------------------------===//

TEST_F(MemOptTest, RemovesOverwrittenStore) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  B.createStore(M.getFloat(1.0f), A);
  B.createStore(M.getFloat(2.0f), A); // Overwrites before any read.
  Value *L = B.createLoad(A, "l");
  keep(L, 0);
  finishAndVerify();
  EXPECT_EQ(eliminateDeadStores(*F), 1u);
  EXPECT_EQ(countOpcode(*F, Opcode::Store), 2u); // Second + keep().
  Error E = verifyFunction(*F);
  EXPECT_FALSE(E) << E.message();
}

TEST_F(MemOptTest, InterveningLoadKeepsStore) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  B.createStore(M.getFloat(1.0f), A);
  Value *L = B.createLoad(A, "l");
  keep(L, 0);
  B.createStore(M.getFloat(2.0f), A);
  Value *L2 = B.createLoad(A, "l2");
  keep(L2, 1);
  finishAndVerify();
  EXPECT_EQ(eliminateDeadStores(*F), 0u);
}

TEST_F(MemOptTest, SiblingElementStoresBothDeadAtExit) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  B.createStore(M.getFloat(1.0f), B.createGep(A, M.getInt(0)));
  B.createStore(M.getFloat(2.0f), B.createGep(A, M.getInt(1)));
  finishAndVerify();
  // Neither store overwrites the other (distinct constant elements), but
  // no load ever reads either one and private memory dies with the work
  // item: the memory-SSA walk reaches kernel exit and removes both.
  EXPECT_EQ(eliminateDeadStores(*F), 2u);
}

TEST_F(MemOptTest, SiblingElementStoresLiveWhenRead) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  Value *G0 = B.createGep(A, M.getInt(0));
  Value *G1 = B.createGep(A, M.getInt(1));
  B.createStore(M.getFloat(1.0f), G0);
  B.createStore(M.getFloat(2.0f), G1);
  keep(B.createLoad(G0, "l0"), 0);
  keep(B.createLoad(G1, "l1"), 1);
  finishAndVerify();
  // With readers of both elements, constant-index disambiguation must
  // not let either store kill its sibling.
  EXPECT_EQ(eliminateDeadStores(*F), 0u);
}

TEST_F(MemOptTest, VariableIndexStoreNeverRemoved) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Private, "a");
  Value *Idx = B.createCall(Builtin::GetGlobalId, {M.getInt(0)}, "x");
  B.createStore(M.getFloat(1.0f), B.createGep(A, Idx));
  finishAndVerify();
  // The runtime index may be out of bounds; removing the store would
  // change fault behavior, so only provably in-bounds constant-index
  // private stores are DSE candidates.
  EXPECT_EQ(eliminateDeadStores(*F), 0u);
}

TEST_F(MemOptTest, ArgumentAndLocalStoresNeverRemoved) {
  Value *Loc =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Local, "t");
  Value *PLoc = B.createGep(Loc, M.getInt(0), "pl");
  B.createStore(M.getFloat(1.0f), PLoc);
  B.createStore(M.getFloat(2.0f), PLoc); // Local: others may read.
  keep(M.getFloat(1.0f), 0);
  keep(M.getFloat(2.0f), 0); // Same out[0] twice: host-visible.
  finishAndVerify();
  EXPECT_EQ(eliminateDeadStores(*F), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end effect
//===----------------------------------------------------------------------===//

TEST(MemOptEffectTest, ReducesPrivateTrafficWithoutChangingResults) {
  auto TheApp = apps::makeApp("gaussian");
  apps::Workload Wl = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 32, 32, 33));
  std::vector<float> Ref = TheApp->reference(Wl);

  auto PrivatePerItem = [&](bool Enable) {
    rt::Session Ctx;
    rt::Variant BK = cantFail(TheApp->buildPlain(Ctx, {16, 16}));
    if (Enable) {
      forwardStores(*BK.K.F);
      eliminateDeadCode(*BK.K.F);
    }
    apps::RunOutcome R = cantFail(TheApp->run(Ctx, BK, Wl));
    for (size_t I = 0; I < Ref.size(); ++I) {
      EXPECT_NEAR(R.Output[I], Ref[I], 1e-4);
      if (std::abs(R.Output[I] - Ref[I]) > 1e-4)
        break;
    }
    return static_cast<double>(R.Report.Totals.PrivateAccesses) /
           R.Report.Totals.WorkItems;
  };
  double Without = PrivatePerItem(false);
  double With = PrivatePerItem(true);
  EXPECT_LT(With, Without) << Without << " -> " << With;
}

} // namespace
