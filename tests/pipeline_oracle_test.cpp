//===- tests/pipeline_oracle_test.cpp - Differential pipeline oracle --------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The oracle every optimization pass is pinned by: a legal pipeline spec
// must be a pure optimization. For all nine applications, the perforated
// variant built under ~twenty pipeline specs -- including the default,
// historical pipelines, the unroll/gvn/sroa passes alone, adversarial
// orderings that run sroa/gvn/memopt-dse *before* any promotion or
// simplification has normalized the IR they expect, and seeded-random
// orderings of every registered pass -- must produce
// byte-identical outputs to the variant built with the empty pipeline,
// and the IR must verify after every single pass invocation
// (App::setVerifyEach routes PassRunOptions::VerifyEach through the
// transform). A pass that changes float evaluation order, drops a store,
// or miscounts a trip fails here before it can skew a single benchmark.
//
// The same matrix also pins the execution tiers: every variant runs under
// the tree walker, the scalar bytecode tier, and the batched work-group
// tier, and the fast tiers must reproduce the tree walker's output byte
// for byte and its SimReport counters bit for bit.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "ir/PassManager.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace kperf;
using namespace kperf::apps;

namespace {

const char *AllAppNames[] = {"gaussian", "inversion", "median",
                             "hotspot",  "sobel3",    "sobel5",
                             "mean",     "sharpen",   "convsep"};

/// A small workload: enough items for every CFG path (interior + all
/// clamp borders) while keeping 9 apps x ~20 specs fast.
Workload smallWorkload(const App &A) {
  if (A.name() == "hotspot")
    return makeHotspotWorkload(64, /*Seed=*/7, /*Iterations=*/2);
  return makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 64, 64, 7));
}

/// Seeded-random ordering of every registered pass (each once). Any
/// ordering of registered passes is a legal pipeline, so these probe
/// orderings nobody hand-picked.
std::string shuffledSpec(uint64_t Seed) {
  std::vector<std::string> Names =
      ir::PassRegistry::instance().registeredNames();
  Rng R(Seed);
  for (size_t I = Names.size(); I > 1; --I)
    std::swap(Names[I - 1], Names[R.below(I)]);
  return join(Names, ",");
}

/// The spec battery: the default, its ancestors, the new passes alone
/// and in slices, a tight unroll budget (must refuse, not break),
/// adversarial orderings that feed sroa/gvn/memopt-dse IR no sane
/// pipeline would (runtime window indices, unpromoted scalars -- the
/// passes must refuse or stay semantics-preserving, never break), and
/// seeded-random orderings -- every one verified after every pass.
std::vector<std::string> oracleSpecs() {
  std::vector<std::string> Specs = {
      "mem2reg",
      "unroll",
      "gvn",
      "sroa",
      "unroll(64)",
      "mem2reg,unroll",
      "mem2reg,unroll,fixpoint(gvn,simplify,dce)",
      ir::defaultPipelineSpec(),
      "fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)",
      "mem2reg,fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)",
      // Adversarial: sroa/gvn/memopt-dse ahead of mem2reg and simplify,
      // so window indices are still runtime arithmetic and every scalar
      // is still in memory form.
      "sroa,mem2reg",
      "sroa,gvn,memopt-dse,mem2reg",
      "memopt-dse,sroa,unroll,gvn,mem2reg",
      "unroll,fixpoint(sroa,simplify,mem2reg,dce),gvn",
      "fixpoint(sroa,mem2reg,gvn,memopt-dse)",
      // perforate-loop(1) is the structural no-op stride: splicing it
      // anywhere in the pipeline must stay byte-identical to baseline.
      "perforate-loop",
      "perforate-loop(1)",
      "mem2reg,perforate-loop(1),unroll",
      // The default pipeline with the no-op stride spliced where the
      // tuner would put a real one (jointPipelineSpec's slot).
      "mem2reg,perforate-loop(1),unroll,fixpoint(simplify,sroa,mem2reg,"
      "gvn,cse,memopt-forward,licm,memopt-dse,dce)",
      // And the real strided pass parked where no induction phis exist
      // yet (before mem2reg): it must refuse cleanly, changing nothing.
      "perforate-loop(2),mem2reg,unroll",
      shuffledSpec(1),
      shuffledSpec(2),
      shuffledSpec(3),
      shuffledSpec(6),
      shuffledSpec(7),
      "fixpoint(" + shuffledSpec(4) + ")",
      "fixpoint(" + shuffledSpec(8) + ")",
  };
  return Specs;
}

const sim::ExecTier AllTiers[] = {sim::ExecTier::Tree,
                                  sim::ExecTier::Bytecode,
                                  sim::ExecTier::Batched};

/// Builds the Rows2:LI perforated variant of \p A under \p Spec (the
/// richest codepath: loader loops, barrier, reconstruction, rewritten
/// body) and runs it under every execution tier, verifying the IR after
/// every pass. Outcomes indexed like AllTiers; empty on build failure.
std::vector<RunOutcome> runPerforated(App &A, const Workload &W,
                                      const std::string &Spec) {
  rt::Session S;
  A.setPipelineSpec(Spec);
  A.setVerifyEach(true);
  Expected<rt::Variant> V = A.buildPerforated(
      S, perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
      {16, 16});
  EXPECT_TRUE(static_cast<bool>(V))
      << A.name() << " under '" << Spec << "': " << V.error().message();
  if (!V)
    return {};
  std::vector<RunOutcome> Outcomes;
  for (sim::ExecTier Tier : AllTiers) {
    S.setExecTier(Tier);
    Expected<RunOutcome> R = A.run(S, *V, W);
    EXPECT_TRUE(static_cast<bool>(R))
        << A.name() << " under '" << Spec << "' ("
        << sim::execTierName(Tier) << "): " << R.error().message();
    if (!R)
      return {};
    Outcomes.push_back(std::move(*R));
  }
  return Outcomes;
}

bool bitIdentical(const std::vector<float> &A,
                  const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

bool countersEqual(const sim::Counters &A, const sim::Counters &B) {
  return A.AluOps == B.AluOps && A.PrivateAccesses == B.PrivateAccesses &&
         A.LocalAccesses == B.LocalAccesses &&
         A.LocalWavefrontOps == B.LocalWavefrontOps &&
         A.BankConflictExtra == B.BankConflictExtra &&
         A.GlobalReadTransactions == B.GlobalReadTransactions &&
         A.GlobalWriteTransactions == B.GlobalWriteTransactions &&
         A.GlobalReads == B.GlobalReads &&
         A.GlobalWrites == B.GlobalWrites && A.Barriers == B.Barriers &&
         A.WorkGroups == B.WorkGroups && A.WorkItems == B.WorkItems;
}

/// Expects tiers 1.. of \p Outcomes to reproduce tier 0 (the tree walker)
/// exactly: output bytes and every SimReport counter.
void expectTierParity(const App &A, const std::string &Spec,
                      const std::vector<RunOutcome> &Outcomes) {
  for (size_t T = 1; T < Outcomes.size(); ++T) {
    EXPECT_TRUE(bitIdentical(Outcomes[0].Output, Outcomes[T].Output))
        << A.name() << " under '" << Spec << "': tier "
        << sim::execTierName(AllTiers[T])
        << " changed the output vs the tree walker";
    EXPECT_TRUE(
        countersEqual(Outcomes[0].Report.Totals, Outcomes[T].Report.Totals))
        << A.name() << " under '" << Spec << "': tier "
        << sim::execTierName(AllTiers[T])
        << " changed the simulated counters vs the tree walker";
  }
}

} // namespace

TEST(PipelineOracleTest, SpecsAllParse) {
  for (const std::string &Spec : oracleSpecs()) {
    Expected<ir::PassPipeline> P = ir::PassPipeline::parse(Spec);
    EXPECT_TRUE(static_cast<bool>(P)) << Spec;
  }
}

TEST(PipelineOracleTest, AllAppsByteIdenticalAcrossPipelinesAndTiers) {
  std::vector<std::string> Specs = oracleSpecs();
  for (const char *Name : AllAppNames) {
    auto A = makeApp(Name);
    ASSERT_NE(A, nullptr) << Name;
    Workload W = smallWorkload(*A);
    // The no-optimization baseline the specs must reproduce exactly.
    std::vector<RunOutcome> Baseline = runPerforated(*A, W, "");
    ASSERT_FALSE(Baseline.empty()) << Name;
    expectTierParity(*A, "", Baseline);
    for (const std::string &Spec : Specs) {
      std::vector<RunOutcome> Out = runPerforated(*A, W, Spec);
      ASSERT_FALSE(Out.empty()) << A->name() << " under '" << Spec << "'";
      EXPECT_TRUE(bitIdentical(Baseline[0].Output, Out[0].Output))
          << A->name() << ": pipeline '" << Spec
          << "' changed the output vs the empty pipeline";
      expectTierParity(*A, Spec, Out);
    }
  }
}

TEST(PipelineOracleTest, OutputApproxVariantsAreStableToo) {
  // The Paraprox-style variants run the same cleanup pipeline; spot-check
  // the spec x output invariance on one window app and one pointwise app.
  for (const char *Name : {"gaussian", "inversion"}) {
    auto A = makeApp(Name);
    ASSERT_NE(A, nullptr) << Name;
    Workload W = smallWorkload(*A);
    std::vector<float> Baseline;
    for (const std::string &Spec :
         {std::string(""), std::string(ir::defaultPipelineSpec()),
          shuffledSpec(5)}) {
      rt::Session S;
      A->setPipelineSpec(Spec);
      A->setVerifyEach(true);
      Expected<rt::Variant> V = A->buildOutputApprox(
          S, perf::OutputSchemeKind::Rows, 2, {16, 16});
      ASSERT_TRUE(static_cast<bool>(V))
          << Name << " under '" << Spec << "': " << V.error().message();
      Expected<RunOutcome> R = A->run(S, *V, W);
      ASSERT_TRUE(static_cast<bool>(R))
          << Name << " under '" << Spec << "': " << R.error().message();
      if (Baseline.empty())
        Baseline = R->Output;
      else
        EXPECT_TRUE(bitIdentical(Baseline, R->Output))
            << Name << ": output-approx pipeline '" << Spec
            << "' changed the output";
    }
  }
}
