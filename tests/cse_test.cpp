//===- tests/cse_test.cpp - common subexpression elimination tests ----------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "ir/CSE.h"
#include "ir/DCE.h"
#include "ir/IRBuilder.h"
#include "ir/Passes.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Counts all instructions in \p F.
size_t instructionCount(const Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    N += BB->size();
  return N;
}

/// Fixture with two global float* arguments and one int argument, plus an
/// open entry block.
class CseTest : public ::testing::Test {
protected:
  CseTest() : B(M) {
    F = M.createFunction("f");
    In = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "in",
        true);
    Out = F->addArgument(
        Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
        false);
    W = F->addArgument(Type::intTy(), "w", false);
    Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
  }

  /// Terminates, runs CSE + DCE, verifies, and returns (merged, final
  /// instruction count).
  std::pair<unsigned, size_t> finish() {
    B.createRet();
    unsigned Merged = eliminateCommonSubexpressions(*F);
    eliminateDeadCode(*F);
    Error E = verifyFunction(*F);
    EXPECT_FALSE(E) << E.message();
    return {Merged, instructionCount(*F)};
  }

  /// Keeps \p V alive by storing it to out[Slot].
  void keep(Value *V, int Slot) {
    B.createStore(V, B.createGep(Out, M.getInt(Slot)));
  }

  Module M;
  Function *F = nullptr;
  Argument *In = nullptr;
  Argument *Out = nullptr;
  Argument *W = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B;
};

TEST_F(CseTest, MergesIdenticalArithmetic) {
  Value *A = B.createMul(W, M.getInt(3), "a");
  Value *A2 = B.createMul(W, M.getInt(3), "a2");
  keep(B.createIntToFloat(A), 0);
  keep(B.createIntToFloat(A2), 1);
  auto [Merged, Count] = finish();
  // The mul merges, and the second cast becomes a duplicate once its
  // operand is redirected, so it merges too.
  EXPECT_EQ(Merged, 2u);
  // mul, cast, gep x2, store x2, ret.
  EXPECT_EQ(Count, 7u);
}

TEST_F(CseTest, CommutativeOperandsCanonicalize) {
  Value *X = B.createAdd(W, M.getInt(7), "x");
  Value *Y = B.createAdd(M.getInt(7), W, "y"); // Swapped operands.
  keep(B.createIntToFloat(X), 0);
  keep(B.createIntToFloat(Y), 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 2u); // Both the add and the dependent cast.
}

TEST_F(CseTest, NonCommutativeOperandsDoNotCanonicalize) {
  Value *X = B.createSub(W, M.getInt(7), "x");
  Value *Y = B.createSub(M.getInt(7), W, "y");
  keep(B.createIntToFloat(X), 0);
  keep(B.createIntToFloat(Y), 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 0u);
}

TEST_F(CseTest, MergesCommutativeMinMaxCalls) {
  Value *A = B.createCall(Builtin::Min, {W, M.getInt(5)}, "a");
  Value *C = B.createCall(Builtin::Min, {M.getInt(5), W}, "c");
  keep(B.createIntToFloat(A), 0);
  keep(B.createIntToFloat(C), 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 2u);
}

TEST_F(CseTest, MergesWorkItemQueries) {
  Value *G0 = B.createCall(Builtin::GetGlobalId, {M.getInt(0)}, "g0");
  Value *G0b = B.createCall(Builtin::GetGlobalId, {M.getInt(0)}, "g0b");
  Value *G1 = B.createCall(Builtin::GetGlobalId, {M.getInt(1)}, "g1");
  keep(B.createIntToFloat(B.createAdd(G0, G0b)), 0);
  keep(B.createIntToFloat(G1), 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 1u); // Same dimension merges, other dimension stays.
}

TEST_F(CseTest, BarriersNeverMerge) {
  B.createCall(Builtin::Barrier, {}, "");
  B.createCall(Builtin::Barrier, {}, "");
  B.createRet();
  EXPECT_EQ(eliminateCommonSubexpressions(*F), 0u);
  unsigned Barriers = 0;
  for (const auto &I : Entry->instructions())
    if (I->opcode() == Opcode::Call && I->callee() == Builtin::Barrier)
      ++Barriers;
  EXPECT_EQ(Barriers, 2u);
}

TEST_F(CseTest, MergesRepeatedLoads) {
  Value *P = B.createGep(In, M.getInt(4), "p");
  Value *L1 = B.createLoad(P, "l1");
  Value *L2 = B.createLoad(P, "l2");
  keep(B.createAdd(L1, L2), 0);
  auto [Merged, Count] = finish();
  EXPECT_EQ(Merged, 1u);
  // gep, load, add, gep, store, ret.
  EXPECT_EQ(Count, 6u);
}

TEST_F(CseTest, MergesLoadsThroughDuplicateGeps) {
  // Distinct gep instructions computing the same address: the geps merge
  // first, which then lets the loads merge.
  Value *L1 = B.createLoad(B.createGep(In, M.getInt(4), "p1"), "l1");
  Value *L2 = B.createLoad(B.createGep(In, M.getInt(4), "p2"), "l2");
  keep(B.createAdd(L1, L2), 0);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 2u);
}

TEST_F(CseTest, StoreThroughArgumentKillsArgumentLoads) {
  Value *P = B.createGep(In, M.getInt(4), "p");
  Value *L1 = B.createLoad(P, "l1");
  keep(L1, 0); // Store through 'out' -- may alias 'in' on the host.
  Value *L2 = B.createLoad(P, "l2");
  keep(L2, 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 0u);
}

TEST_F(CseTest, StoreToPrivateAllocaKeepsArgumentLoads) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "tmp");
  Value *P = B.createGep(In, M.getInt(4), "p");
  Value *L1 = B.createLoad(P, "l1");
  B.createStore(L1, B.createGep(A, M.getInt(0)));
  Value *L2 = B.createLoad(P, "l2"); // Still valid: allocas never alias
  keep(L2, 0);                       // arguments.
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 1u);
}

TEST_F(CseTest, StoreToOneAllocaKeepsOtherAllocaLoads) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  Value *C =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "c");
  Value *PA = B.createGep(A, M.getInt(0), "pa");
  Value *PC = B.createGep(C, M.getInt(0), "pc");
  B.createStore(M.getFloat(1.0f), PA);
  B.createStore(M.getFloat(2.0f), PC);
  Value *L1 = B.createLoad(PA, "l1");
  B.createStore(M.getFloat(3.0f), PC); // Unrelated alloca.
  Value *L2 = B.createLoad(PA, "l2");
  keep(B.createAdd(L1, L2), 0);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 1u);
}

TEST_F(CseTest, StoreToSameAllocaKillsItsLoads) {
  Value *A =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "a");
  Value *PA = B.createGep(A, M.getInt(0), "pa");
  B.createStore(M.getFloat(1.0f), PA);
  Value *L1 = B.createLoad(PA, "l1");
  B.createStore(M.getFloat(2.0f), PA);
  Value *L2 = B.createLoad(PA, "l2");
  keep(B.createAdd(L1, L2), 0);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 0u);
}

TEST_F(CseTest, BarrierKillsSharedLoadsButNotPrivate) {
  Value *Priv =
      B.createAlloca(ScalarKind::Float, 1, AddressSpace::Private, "priv");
  Value *Loc =
      B.createAlloca(ScalarKind::Float, 4, AddressSpace::Local, "loc");
  Value *PPriv = B.createGep(Priv, M.getInt(0), "pp");
  Value *PLoc = B.createGep(Loc, M.getInt(0), "pl");
  Value *PArg = B.createGep(In, M.getInt(0), "pa");
  B.createStore(M.getFloat(1.0f), PPriv);
  B.createStore(M.getFloat(2.0f), PLoc);
  Value *Priv1 = B.createLoad(PPriv, "priv1");
  Value *Loc1 = B.createLoad(PLoc, "loc1");
  Value *Arg1 = B.createLoad(PArg, "arg1");
  B.createCall(Builtin::Barrier, {}, "");
  Value *Priv2 = B.createLoad(PPriv, "priv2"); // Merges: private memory.
  Value *Loc2 = B.createLoad(PLoc, "loc2");    // Killed: other items write.
  Value *Arg2 = B.createLoad(PArg, "arg2");    // Killed likewise.
  keep(B.createAdd(B.createAdd(Priv1, Loc1), Arg1), 0);
  keep(B.createAdd(B.createAdd(Priv2, Loc2), Arg2), 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 1u);
}

TEST_F(CseTest, ChainedDuplicatesCollapseInOnePass) {
  // ((w*3)+1)*5 twice: all three levels merge in a single invocation.
  auto Chain = [&](const char *Tag) {
    Value *V = B.createMul(W, M.getInt(3), std::string(Tag) + ".m");
    V = B.createAdd(V, M.getInt(1), std::string(Tag) + ".a");
    return B.createMul(V, M.getInt(5), std::string(Tag) + ".m2");
  };
  Value *C1 = Chain("x");
  Value *C2 = Chain("y");
  keep(B.createIntToFloat(C1), 0);
  keep(B.createIntToFloat(C2), 1);
  unsigned Merged = eliminateCommonSubexpressions(*F);
  EXPECT_EQ(Merged, 4u); // Three chain levels + the dependent cast.
}

TEST_F(CseTest, CrossBlockUsesAreRedirected) {
  Value *A = B.createMul(W, M.getInt(3), "a");
  Value *A2 = B.createMul(W, M.getInt(3), "a2");
  BasicBlock *Next = F->createBlock("next");
  B.createBr(Next);
  B.setInsertPoint(Next);
  keep(B.createIntToFloat(A), 0);
  keep(B.createIntToFloat(A2), 1); // Uses the duplicate from 'entry'.
  auto [Merged, Count] = finish();
  // The entry-block mul merges; the casts live in 'next' where the
  // redirected operands make the second cast a duplicate as well.
  EXPECT_EQ(Merged, 2u);
  (void)Count;
  // After DCE the duplicate mul is gone; verify() already checked
  // def-before-use of the redirected operand.
  unsigned Muls = 0;
  for (const auto &BB : F->blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == Opcode::Mul)
        ++Muls;
  EXPECT_EQ(Muls, 1u);
}

TEST_F(CseTest, NoMergeAcrossBlocks) {
  // Value numbering is block-local by design: the same expression in two
  // blocks stays duplicated (merging would require dominance analysis).
  Value *A = B.createMul(W, M.getInt(3), "a");
  keep(B.createIntToFloat(A), 0);
  BasicBlock *Next = F->createBlock("next");
  B.createBr(Next);
  B.setInsertPoint(Next);
  Value *A2 = B.createMul(W, M.getInt(3), "a2");
  keep(B.createIntToFloat(A2), 1);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_EQ(Merged, 0u);
}

TEST_F(CseTest, SelectsAndGepsMerge) {
  Value *Cond = B.createCmp(Opcode::CmpLt, W, M.getInt(8), "c");
  Value *S1 = B.createSelect(Cond, M.getInt(1), M.getInt(2), "s1");
  Value *S2 = B.createSelect(Cond, M.getInt(1), M.getInt(2), "s2");
  keep(B.createIntToFloat(B.createAdd(S1, S2)), 0);
  auto [Merged, Count] = finish();
  (void)Count;
  EXPECT_GE(Merged, 1u);
}

//===----------------------------------------------------------------------===//
// Default pipeline
//===----------------------------------------------------------------------===//

TEST(PipelineTest, ReachesFixpoint) {
  Module M;
  IRBuilder B(M);
  Function *F = M.createFunction("f");
  Argument *Out = F->addArgument(
      Type::pointerTo(ScalarKind::Float, AddressSpace::Global), "out",
      false);
  Argument *W = F->addArgument(Type::intTy(), "w", false);
  B.setInsertPoint(F->createBlock("entry"));
  // (w*1+0) and (w*1) fold to w, exposing a duplicate cast, whose merge
  // leaves dead code -- exercises all three passes interacting.
  Value *X = B.createAdd(B.createMul(W, M.getInt(1)), M.getInt(0));
  Value *Y = B.createMul(W, M.getInt(1));
  B.createStore(B.createIntToFloat(X), B.createGep(Out, M.getInt(0)));
  B.createStore(B.createIntToFloat(Y), B.createGep(Out, M.getInt(1)));
  B.createRet();

  PipelineStats S1 = runDefaultPipeline(*F, M);
  EXPECT_GT(S1.total(), 0u);
  EXPECT_FALSE(verifyFunction(*F));
  // A second run must be a no-op.
  PipelineStats S2 = runDefaultPipeline(*F, M);
  EXPECT_EQ(S2.total(), 0u);
  EXPECT_EQ(S2.Iterations, 1u);
}

TEST(PipelineTest, PreservesKernelSemantics) {
  // Optimizing a freshly compiled kernel must not change its output.
  auto TheApp = apps::makeApp("gaussian");
  apps::Workload Wl = apps::makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, 32, 32, 21));
  std::vector<float> Ref = TheApp->reference(Wl);

  rt::Session Ctx;
  rt::Variant BK = cantFail(TheApp->buildPlain(Ctx, {16, 16}));
  size_t Before = instructionCount(*BK.K.F);
  PipelineStats S = runDefaultPipeline(*BK.K.F, Ctx.module());
  EXPECT_FALSE(verifyFunction(*BK.K.F));
  EXPECT_LE(instructionCount(*BK.K.F), Before);
  (void)S;

  apps::RunOutcome R = cantFail(TheApp->run(Ctx, BK, Wl));
  ASSERT_EQ(R.Output.size(), Ref.size());
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_NEAR(R.Output[I], Ref[I], 1e-4) << I;
}

TEST(PipelineTest, ShrinksPerforatedKernels) {
  // The perforation transform's generated loader/reconstruction code is
  // where CSE pays off: the pipeline (already run inside perforate())
  // must leave no further opportunity, i.e. running it again is a no-op.
  auto TheApp = apps::makeApp("sobel3");
  rt::Session Ctx;
  rt::Variant BK = cantFail(TheApp->buildPerforated(
      Ctx,
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
      {16, 16}));
  PipelineStats S = runDefaultPipeline(*BK.K.F, Ctx.module());
  EXPECT_EQ(S.total(), 0u);
}

} // namespace
