//===- tests/apps_test.cpp - application and reference tests ----------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::img;

namespace {

//===----------------------------------------------------------------------===//
// Reference implementation invariants
//===----------------------------------------------------------------------===//

TEST(ReferenceTest, GaussianPreservesConstants) {
  Image C(16, 16, 0.6f);
  Image Out = referenceGaussian(C);
  for (float P : Out.pixels())
    EXPECT_NEAR(P, 0.6f, 1e-6);
}

TEST(ReferenceTest, GaussianSmooths) {
  // The blurred image has smaller row-to-row differences than the input.
  Image In = generateImage(ImageClass::Noise, 32, 32, 2);
  Image Out = referenceGaussian(In);
  auto Roughness = [](const Image &I) {
    double S = 0;
    for (unsigned Y = 0; Y + 1 < I.height(); ++Y)
      for (unsigned X = 0; X < I.width(); ++X)
        S += std::fabs(I.at(X, Y + 1) - I.at(X, Y));
    return S;
  };
  EXPECT_LT(Roughness(Out), Roughness(In));
}

TEST(ReferenceTest, InversionIsInvolution) {
  Image In = generateImage(ImageClass::Natural, 16, 16, 3);
  Image Twice = referenceInversion(referenceInversion(In));
  for (unsigned Y = 0; Y < 16; ++Y)
    for (unsigned X = 0; X < 16; ++X)
      EXPECT_NEAR(Twice.at(X, Y), In.at(X, Y), 1e-6);
}

TEST(ReferenceTest, MedianOfConstantIsConstant) {
  Image C(16, 16, 0.3f);
  Image Out = referenceMedian(C);
  for (float P : Out.pixels())
    EXPECT_FLOAT_EQ(P, 0.3f);
}

TEST(ReferenceTest, MedianRemovesSaltAndPepper) {
  // A single outlier pixel in a flat image disappears entirely.
  Image In(16, 16, 0.5f);
  In.set(8, 8, 1.0f);
  Image Out = referenceMedian(In);
  for (float P : Out.pixels())
    EXPECT_FLOAT_EQ(P, 0.5f);
}

TEST(ReferenceTest, MedianOutputIsAnInputValue) {
  Image In = generateImage(ImageClass::Noise, 16, 16, 4);
  Image Out = referenceMedian(In);
  for (int Y = 0; Y < 16; ++Y)
    for (int X = 0; X < 16; ++X) {
      bool Found = false;
      for (int Dy = -1; Dy <= 1 && !Found; ++Dy)
        for (int Dx = -1; Dx <= 1 && !Found; ++Dx)
          if (In.atClamped(X + Dx, Y + Dy) ==
              Out.at(static_cast<unsigned>(X), static_cast<unsigned>(Y)))
            Found = true;
      EXPECT_TRUE(Found) << X << "," << Y;
    }
}

TEST(ReferenceTest, SobelOfConstantIsZero) {
  Image C(16, 16, 0.8f);
  Image S3 = referenceSobel3(C);
  for (float P : S3.pixels())
    EXPECT_FLOAT_EQ(P, 0.0f);
  // Sobel5's +/- weights cancel only up to float rounding.
  Image S5 = referenceSobel5(C);
  for (float P : S5.pixels())
    EXPECT_NEAR(P, 0.0f, 1e-6f);
}

TEST(ReferenceTest, SobelDetectsVerticalEdge) {
  Image In(16, 16, 0.0f);
  for (unsigned Y = 0; Y < 16; ++Y)
    for (unsigned X = 8; X < 16; ++X)
      In.set(X, Y, 1.0f);
  Image Out = referenceSobel3(In);
  // Strong response on the edge column, none far away.
  EXPECT_GT(Out.at(8, 8), 0.4f);
  EXPECT_FLOAT_EQ(Out.at(2, 8), 0.0f);
}

TEST(ReferenceTest, SobelIsNonNegative) {
  Image In = generateImage(ImageClass::Pattern, 16, 16, 7);
  Image Out = referenceSobel3(In);
  for (float P : Out.pixels())
    EXPECT_GE(P, 0.0f);
}

TEST(ReferenceTest, HotspotEquilibriumIsStable) {
  // temp == ambient everywhere, zero power: nothing changes.
  HotspotParams P;
  Image Temp(16, 16, P.Ambient);
  Image Power(16, 16, 0.0f);
  Image Out = referenceHotspotStep(Power, Temp, P);
  for (float V : Out.pixels())
    EXPECT_NEAR(V, P.Ambient, 1e-4);
}

TEST(ReferenceTest, HotspotPowerHeats) {
  HotspotParams P;
  Image Temp(16, 16, P.Ambient);
  Image Power(16, 16, 0.0f);
  Power.set(8, 8, 1.0f);
  Image Out = referenceHotspot(Power, Temp, P, 4);
  EXPECT_GT(Out.at(8, 8), P.Ambient);
  // Heat diffuses to neighbors over iterations.
  EXPECT_GT(Out.at(9, 8), P.Ambient);
}

TEST(ReferenceTest, HotspotIterationsCompose) {
  HotspotParams P;
  Workload W = makeHotspotWorkload(16, 5, 1);
  Image OneTwice = referenceHotspotStep(
      W.Power, referenceHotspotStep(W.Power, W.Input, P), P);
  Image Two = referenceHotspot(W.Power, W.Input, P, 2);
  EXPECT_EQ(OneTwice.pixels(), Two.pixels());
}

//===----------------------------------------------------------------------===//
// App registry and harness
//===----------------------------------------------------------------------===//

TEST(AppsTest, RegistryComplete) {
  auto All = makeAllApps();
  ASSERT_EQ(All.size(), 6u);
  const char *Names[] = {"gaussian", "median",
                         "hotspot",  "inversion",
                         "sobel3",   "sobel5"};
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(All[I]->name(), Names[I]);
  EXPECT_EQ(makeApp("no_such_app"), nullptr);
}

TEST(AppsTest, MetricSelectionMatchesTable1) {
  EXPECT_STREQ(makeApp("gaussian")->metricName(), "Mean relative error");
  EXPECT_STREQ(makeApp("median")->metricName(), "Mean relative error");
  EXPECT_STREQ(makeApp("hotspot")->metricName(), "Mean relative error");
  EXPECT_STREQ(makeApp("inversion")->metricName(), "Mean relative error");
  EXPECT_STREQ(makeApp("sobel3")->metricName(), "Mean error");
  EXPECT_STREQ(makeApp("sobel5")->metricName(), "Mean error");
}

TEST(AppsTest, BaselineLocalChoiceMatchesPaper) {
  // Inversion has no data reuse: plain baseline (paper 6.1). Others use
  // local-memory prefetch.
  EXPECT_FALSE(makeApp("inversion")->baselineUsesLocalMemory());
  EXPECT_TRUE(makeApp("gaussian")->baselineUsesLocalMemory());
  EXPECT_TRUE(makeApp("median")->baselineUsesLocalMemory());
  EXPECT_TRUE(makeApp("sobel5")->baselineUsesLocalMemory());
}

TEST(AppsTest, ScoreUsesSelectedMetric) {
  auto Sobel = makeApp("sobel3");
  // Mean error of {0 vs 0.5} is 0.5; MRE would skip the zero sample.
  EXPECT_NEAR(Sobel->score({0.0f}, {0.5f}), 0.5, 1e-9);
  auto Gauss = makeApp("gaussian");
  EXPECT_NEAR(Gauss->score({0.0f}, {0.5f}), 0.0, 1e-9);
}

TEST(AppsTest, HotspotWorkloadShape) {
  Workload W = makeHotspotWorkload(32, 1, 5);
  EXPECT_EQ(W.Input.width(), 32u);
  EXPECT_EQ(W.Power.width(), 32u);
  EXPECT_EQ(W.Iterations, 5u);
  // Power has hot units above the leakage floor.
  float MaxPower = 0;
  for (float P : W.Power.pixels())
    MaxPower = std::max(MaxPower, P);
  EXPECT_GT(MaxPower, 0.4f);
}

TEST(AppsTest, HotspotRunMatchesIterationCount) {
  auto App = makeApp("hotspot");
  Workload W = makeHotspotWorkload(32, 2, 3);
  rt::Session Ctx;
  rt::Variant BK = cantFail(App->buildPlain(Ctx, {16, 16}));
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  // Three launches of 32x32 items.
  EXPECT_EQ(R.Report.Totals.WorkItems, 3u * 32 * 32);
  // And the result matches three reference steps.
  std::vector<float> Ref = App->reference(W);
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_NEAR(R.Output[I], Ref[I], 1e-3) << I;
}

TEST(AppsTest, ImageWorkloadRoundTrip) {
  Image I = generateImage(ImageClass::Flat, 16, 16, 1);
  Workload W = makeImageWorkload(I);
  EXPECT_EQ(W.Input.pixels(), I.pixels());
}

//===----------------------------------------------------------------------===//
// Extension applications (paper 4.3 Paraprox suite)
//===----------------------------------------------------------------------===//

TEST(ExtensionReferenceTest, MeanPreservesConstants) {
  Image C(16, 16, 0.4f);
  Image Out = referenceMean(C);
  for (float P : Out.pixels())
    EXPECT_NEAR(P, 0.4f, 1e-6);
}

TEST(ExtensionReferenceTest, MeanIsWindowAverage) {
  Image In(8, 8, 0.0f);
  In.set(4, 4, 0.9f);
  Image Out = referenceMean(In);
  // Every pixel whose 3x3 window contains the spike averages it in.
  EXPECT_NEAR(Out.at(4, 4), 0.1f, 1e-6);
  EXPECT_NEAR(Out.at(3, 3), 0.1f, 1e-6);
  EXPECT_NEAR(Out.at(2, 2), 0.0f, 1e-6);
}

TEST(ExtensionReferenceTest, SharpenPreservesConstantsInRange) {
  Image C(16, 16, 0.5f);
  // 5c - 4c = c for any in-range constant.
  Image Out = referenceSharpen(C);
  for (float P : Out.pixels())
    EXPECT_NEAR(P, 0.5f, 1e-6);
}

TEST(ExtensionReferenceTest, SharpenAmplifiesEdges) {
  // A step edge: sharpen overshoots on both sides (clamped to [0,1]).
  Image In(16, 16, 0.2f);
  for (unsigned Y = 0; Y < 16; ++Y)
    for (unsigned X = 8; X < 16; ++X)
      In.set(X, Y, 0.8f);
  Image Out = referenceSharpen(In);
  EXPECT_LT(Out.at(7, 8), 0.2f);  // Dark side dips darker.
  EXPECT_GT(Out.at(8, 8), 0.8f);  // Bright side overshoots.
  for (float P : Out.pixels()) {
    EXPECT_GE(P, 0.0f);
    EXPECT_LE(P, 1.0f);
  }
}

TEST(ExtensionReferenceTest, ConvSepPassesCommute) {
  // Row-then-column equals column-then-row for a separable filter.
  Image In = generateImage(ImageClass::Natural, 24, 24, 7);
  Image RC = referenceConvSepCol(referenceConvSepRow(In));
  Image CR = referenceConvSepRow(referenceConvSepCol(In));
  for (unsigned Y = 0; Y < 24; ++Y)
    for (unsigned X = 0; X < 24; ++X)
      EXPECT_NEAR(RC.at(X, Y), CR.at(X, Y), 1e-5);
}

TEST(ExtensionReferenceTest, ConvSepPreservesConstants) {
  Image C(16, 16, 0.7f);
  Image Out = referenceConvSep(C);
  for (float P : Out.pixels())
    EXPECT_NEAR(P, 0.7f, 1e-5);
}

TEST(ExtensionReferenceTest, ConvSepMatchesDense5x5) {
  // The two 1D passes must equal the dense separable 5x5 convolution.
  Image In = generateImage(ImageClass::Noise, 20, 20, 9);
  Image Sep = referenceConvSep(In);
  static const float Taps[5] = {0.0625f, 0.25f, 0.375f, 0.25f, 0.0625f};
  for (int Y = 0; Y < 20; ++Y)
    for (int X = 0; X < 20; ++X) {
      float Acc = 0;
      for (int Ky = -2; Ky <= 2; ++Ky)
        for (int Kx = -2; Kx <= 2; ++Kx)
          Acc += Taps[Ky + 2] * Taps[Kx + 2] * In.atClamped(X + Kx, Y + Ky);
      // Interior only: at clamped borders the order of clamping differs
      // between "clamp then convolve per axis" and the dense form.
      if (X >= 2 && X < 18 && Y >= 2 && Y < 18) {
        EXPECT_NEAR(Sep.at(static_cast<unsigned>(X),
                           static_cast<unsigned>(Y)),
                    Acc, 1e-5)
            << X << "," << Y;
      }
    }
}

TEST(ExtensionAppsTest, RegistryComplete) {
  auto Ext = makeExtensionApps();
  ASSERT_EQ(Ext.size(), 3u);
  EXPECT_EQ(Ext[0]->name(), "mean");
  EXPECT_EQ(Ext[1]->name(), "sharpen");
  EXPECT_EQ(Ext[2]->name(), "convsep");
  // The paper's Table 1 registry stays exactly six entries.
  EXPECT_EQ(makeAllApps().size(), 6u);
}

TEST(ExtensionAppsTest, MetricSelection) {
  EXPECT_STREQ(makeApp("mean")->metricName(), "Mean relative error");
  EXPECT_STREQ(makeApp("convsep")->metricName(), "Mean relative error");
  // Sharpen clamps to [0,1] and produces exact zeros: mean error.
  EXPECT_STREQ(makeApp("sharpen")->metricName(), "Mean error");
}

TEST(ExtensionAppsTest, PlainVariantsMatchReferences) {
  for (const char *Name : {"mean", "sharpen", "convsep"}) {
    auto App = makeApp(Name);
    ASSERT_NE(App, nullptr);
    Workload W =
        makeImageWorkload(generateImage(ImageClass::Natural, 32, 32, 11));
    rt::Session Ctx;
    rt::Variant BK = cantFail(App->buildPlain(Ctx, {16, 16}));
    RunOutcome R = cantFail(App->run(Ctx, BK, W));
    std::vector<float> Ref = App->reference(W);
    ASSERT_EQ(R.Output.size(), Ref.size());
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_NEAR(R.Output[I], Ref[I], 1e-4) << Name << " @" << I;
  }
}

TEST(ExtensionAppsTest, ConvSepIsTwoPass) {
  auto App = makeApp("convsep");
  rt::Session Ctx;
  rt::Variant Plain = cantFail(App->buildPlain(Ctx, {16, 16}));
  EXPECT_TRUE(Plain.isTwoPass());
  rt::Variant Perf = cantFail(App->buildPerforated(
      Ctx, perf::PerforationScheme::rows(2,
                                         perf::ReconstructionKind::Linear),
      {16, 16}));
  EXPECT_TRUE(Perf.isTwoPass());
  // Single-pass apps never set a second kernel.
  auto Gauss = makeApp("gaussian");
  rt::Variant G = cantFail(Gauss->buildPlain(Ctx, {16, 16}));
  EXPECT_FALSE(G.isTwoPass());
}

TEST(ExtensionAppsTest, ConvSepWorkItemsCoverBothPasses) {
  auto App = makeApp("convsep");
  Workload W =
      makeImageWorkload(generateImage(ImageClass::Flat, 32, 32, 3));
  rt::Session Ctx;
  rt::Variant BK = cantFail(App->buildPlain(Ctx, {16, 16}));
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  EXPECT_EQ(R.Report.Totals.WorkItems, 2u * 32 * 32);
}

TEST(ExtensionAppsTest, ConvSepStencilSchemeBuilds) {
  // The row pass has a halo only in x, the column pass only in y; the
  // stencil scheme must handle one-sided halos.
  auto App = makeApp("convsep");
  Workload W =
      makeImageWorkload(generateImage(ImageClass::Natural, 32, 32, 13));
  rt::Session Ctx;
  Expected<rt::Variant> BK =
      App->buildPerforated(Ctx, perf::PerforationScheme::stencil(),
                           {16, 16});
  ASSERT_TRUE(static_cast<bool>(BK)) << BK.error().message();
  RunOutcome R = cantFail(App->run(Ctx, *BK, W));
  double Err = App->score(App->reference(W), R.Output);
  EXPECT_LT(Err, 0.02); // Stencil approximates only the halo ring.
}

TEST(ExtensionAppsTest, ConvSepOutputApproxShrinksSecondPassOnly) {
  auto App = makeApp("convsep");
  Workload W =
      makeImageWorkload(generateImage(ImageClass::Natural, 32, 32, 17));
  rt::Session Ctx;
  rt::Variant BK = cantFail(App->buildOutputApprox(
      Ctx, perf::OutputSchemeKind::Rows, 2, {16, 16}));
  EXPECT_TRUE(BK.isTwoPass());
  RunOutcome R = cantFail(App->run(Ctx, BK, W));
  // Pass 1 runs all 32x32 items; pass 2 runs a third of the rows
  // (rounded up to work-group multiples).
  EXPECT_LT(R.Report.Totals.WorkItems, 2u * 32 * 32);
  EXPECT_GE(R.Report.Totals.WorkItems, 32u * 32 + 32 * 32 / 3);
  double Err = App->score(App->reference(W), R.Output);
  EXPECT_GT(Err, 0.0);
  EXPECT_LT(Err, 0.25);
}

TEST(ExtensionAppsTest, PerforatedVariantsStayAccurateEnough) {
  // Rows1:LI on smooth input: each extension app's perforated output must
  // stay within a few percent of the reference.
  for (const char *Name : {"mean", "sharpen", "convsep"}) {
    auto App = makeApp(Name);
    Workload W =
        makeImageWorkload(generateImage(ImageClass::Natural, 64, 64, 5));
    rt::Session Ctx;
    rt::Variant BK = cantFail(App->buildPerforated(
        Ctx,
        perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
        {16, 16}));
    RunOutcome R = cantFail(App->run(Ctx, BK, W));
    double Err = App->score(App->reference(W), R.Output);
    EXPECT_LT(Err, 0.06) << Name;
    EXPECT_GT(Err, 0.0) << Name << " (perforation must not be a no-op)";
  }
}

} // namespace
