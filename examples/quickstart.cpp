//===- examples/quickstart.cpp - Library quickstart --------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The 60-second tour: write a kernel in PCL, run it accurately on the
// simulated GPU, then apply local memory-aware kernel perforation and
// compare speed and output quality.
//
//===----------------------------------------------------------------------===//

#include "img/Generators.h"
#include "img/Metrics.h"
#include "ir/Printer.h"
#include "runtime/Session.h"

#include <cstdio>

using namespace kperf;

// A 3x3 box blur written in PCL, the project's OpenCL-C-like kernel
// language. Plain global loads: the local-memory machinery is *generated*.
static const char *BlurSource = R"(
kernel void blur(global const float* in, global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  float acc = 0.0;
  for (int ky = 0; ky < 3; ky++) {
    for (int kx = 0; kx < 3; kx++) {
      acc += in[clamp(y + ky - 1, 0, h - 1) * w
                + clamp(x + kx - 1, 0, w - 1)];
    }
  }
  out[y * w + x] = acc / 9.0;
}
)";

int main() {
  const unsigned Size = 256;

  // 1. A session owns the simulated device, compiled kernels, buffers,
  //    and the compiled-variant cache.
  rt::Session S;
  rt::Kernel Blur = cantFail(S.compile(BlurSource, "blur"));

  // 2. Upload an input image and allocate the output.
  img::Image Input =
      img::generateImage(img::ImageClass::Natural, Size, Size, 1);
  unsigned In = S.createBufferFrom(Input.pixels());
  unsigned OutAccurate = S.createBuffer(Input.size());
  unsigned OutApprox = S.createBuffer(Input.size());

  std::vector<sim::KernelArg> ArgsAccurate = {
      rt::arg::buffer(In), rt::arg::buffer(OutAccurate),
      rt::arg::i32(Size), rt::arg::i32(Size)};

  // 3. Accurate run.
  sim::SimReport Accurate = cantFail(
      S.launch(Blur, {Size, Size}, {16, 16}, ArgsAccurate));

  // 4. Perforate: skip every other row of the input, reconstruct by
  //    linear interpolation in local memory (paper scheme Rows1:LI).
  perf::PerforationPlan Plan;
  Plan.Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);
  Plan.TileX = 16;
  Plan.TileY = 16;
  rt::Variant Fast = cantFail(S.perforate(Blur, Plan));

  //    The variant handle carries its launch constraints; the unified
  //    launch() entry point applies them. Asking for the same variant
  //    again would be served from the session's cache.
  std::vector<sim::KernelArg> ArgsApprox = {
      rt::arg::buffer(In), rt::arg::buffer(OutApprox), rt::arg::i32(Size),
      rt::arg::i32(Size)};
  sim::SimReport Approx =
      cantFail(S.launch(Fast, {Size, Size}, ArgsApprox));

  // 5. Compare.
  double Mre = img::meanRelativeError(
      S.buffer(OutAccurate).downloadFloats(),
      S.buffer(OutApprox).downloadFloats());
  std::printf("accurate:   %8.4f ms  (%llu read transactions)\n",
              Accurate.TimeMs,
              static_cast<unsigned long long>(
                  Accurate.Totals.GlobalReadTransactions));
  std::printf("perforated: %8.4f ms  (%llu read transactions)\n",
              Approx.TimeMs,
              static_cast<unsigned long long>(
                  Approx.Totals.GlobalReadTransactions));
  std::printf("speedup:    %8.2fx\n", Accurate.TimeMs / Approx.TimeMs);
  std::printf("energy:     %8.2fx less (%.4f -> %.4f mJ)\n",
              Accurate.EnergyMJ / Approx.EnergyMJ, Accurate.EnergyMJ,
              Approx.EnergyMJ);
  std::printf("MRE:        %8.4f (Rows1:LI)\n", Mre);

  // 6. For the curious: the generated kernel is ordinary IR.
  std::printf("\nFirst lines of the generated perforated kernel:\n");
  std::string Text = ir::printFunction(*Fast.K.F);
  size_t Pos = 0;
  for (int Line = 0; Line < 12 && Pos != std::string::npos; ++Line) {
    size_t End = Text.find('\n', Pos);
    std::printf("  %s\n", Text.substr(Pos, End - Pos).c_str());
    Pos = End == std::string::npos ? End : End + 1;
  }
  std::printf("  ...\n");
  return 0;
}
