//===- examples/autotune.cpp - Autotuning demo -------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's future-work scenario realized: given a kernel and an error
// budget, automatically explore scheme x reconstruction x work-group
// configurations, print the Pareto front, and pick the fastest
// configuration within the budget.
//
// Usage: autotune [app] [error-budget]     (default: median 0.05)
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "perforation/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

using namespace kperf;
using namespace kperf::apps;

int main(int Argc, char **Argv) {
  std::string AppName = Argc > 1 ? Argv[1] : "median";
  double Budget = Argc > 2 ? std::atof(Argv[2]) : 0.05;
  auto App = makeApp(AppName);
  if (!App) {
    std::fprintf(stderr, "unknown app '%s'\n", AppName.c_str());
    return 1;
  }

  const unsigned Size = 128;
  Workload W = AppName == "hotspot"
                   ? makeHotspotWorkload(Size, 11, 4)
                   : makeImageWorkload(img::generateImage(
                         img::ImageClass::Natural, Size, Size, 11));
  std::vector<float> Reference = App->reference(W);

  // One session for the whole sweep: the kernel source compiles once,
  // each unique variant at most once, and the accurate baseline is
  // measured once per work-group shape.
  rt::Session S;
  std::map<std::pair<unsigned, unsigned>, double> BaselineMs;

  // Measure one configuration: speedup vs. the baseline at the same
  // work-group shape, plus output error.
  perf::EvaluateFn Evaluate =
      [&](const perf::TunerConfig &Config)
      -> Expected<perf::Measurement> {
    sim::Range2 Local{Config.TileX, Config.TileY};
    auto Key = std::make_pair(Local.X, Local.Y);
    auto It = BaselineMs.find(Key);
    if (It == BaselineMs.end()) {
      Expected<rt::Variant> Base = App->buildBaseline(S, Local);
      if (!Base)
        return Base.takeError();
      Expected<RunOutcome> R = App->run(S, *Base, W);
      if (!R)
        return R.takeError();
      It = BaselineMs.emplace(Key, R->Report.TimeMs).first;
    }
    double BaseMs = It->second;
    Expected<rt::Variant> BK =
        Config.Scheme.Kind == perf::SchemeKind::None
            ? App->buildBaseline(S, Local)
            : App->buildPerforated(S, Config.Scheme, Local);
    if (!BK)
      return BK.takeError();
    Expected<RunOutcome> R = App->run(S, *BK, W);
    if (!R)
      return R.takeError();
    perf::Measurement M;
    M.Speedup = BaseMs / R->Report.TimeMs;
    M.Error = App->score(Reference, R->Output);
    return M;
  };

  std::printf("autotuning %s, error budget %.3f, %zu configurations...\n\n",
              AppName.c_str(), Budget, perf::defaultTuningSpace().size());
  std::vector<perf::TunerResult> Results =
      perf::tuneExhaustive(perf::defaultTuningSpace(), Evaluate);

  unsigned Feasible = 0;
  for (const perf::TunerResult &R : Results)
    if (R.Feasible)
      ++Feasible;
  std::printf("%u/%zu configurations feasible\n", Feasible, Results.size());

  std::printf("\nPareto front (speedup vs. error):\n");
  std::vector<perf::TradeoffPoint> Points = toTradeoffPoints(Results);
  for (size_t I : perf::paretoFront(Points))
    std::printf("  %-24s speedup %5.2fx  error %.5f\n",
                Points[I].Label.c_str(), Points[I].Speedup,
                Points[I].Error);

  size_t Best = perf::bestWithinErrorBudget(Results, Budget);
  if (Best == ~size_t(0)) {
    std::printf("\nno configuration meets the %.3f budget\n", Budget);
    return 0;
  }
  std::printf("\nchosen for budget %.3f: %s (speedup %.2fx, error %.5f)\n",
              Budget, Results[Best].Config.str().c_str(),
              Results[Best].M.Speedup, Results[Best].M.Error);
  std::printf("session: %s\n", S.stats().str().c_str());
  return 0;
}
