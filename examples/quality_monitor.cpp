//===- examples/quality_monitor.cpp - Runtime quality control demo ------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// A Sage/Paraprox-style runtime scenario: a filter runs over a stream of
// frames with a perforated kernel, and a QualityMonitor re-validates the
// output quality every few frames against the accurate kernel. The
// stream starts with smooth, countryside-like content the approximation
// handles easily, then switches to high-frequency pattern content
// (paper Fig. 7c: ~19% error on patterns) -- the monitor notices the
// budget violation at its next check and permanently falls back to the
// accurate kernel.
//
// Usage: quality_monitor [error-budget] [check-every]   (default 0.05 4)
//
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "img/Generators.h"
#include "img/Metrics.h"
#include "runtime/Quality.h"

#include <cstdio>
#include <cstdlib>

using namespace kperf;

int main(int Argc, char **Argv) {
  double Budget = Argc > 1 ? std::atof(Argv[1]) : 0.05;
  unsigned CheckEvery = Argc > 2
                            ? static_cast<unsigned>(std::atoi(Argv[2]))
                            : 4;
  const unsigned Size = 128;
  const unsigned NumFrames = 24;

  rt::Session S;
  rt::Kernel Accurate =
      cantFail(S.compile(apps::medianSource(), "median"));
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor); // Rows1.
  rt::Variant Approx = cantFail(S.perforate(Accurate, Plan));

  unsigned In = S.createBuffer(size_t(Size) * Size);
  unsigned Out = S.createBuffer(size_t(Size) * Size);
  std::vector<sim::KernelArg> Args = {
      rt::arg::buffer(In), rt::arg::buffer(Out),
      rt::arg::i32(static_cast<int32_t>(Size)),
      rt::arg::i32(static_cast<int32_t>(Size))};

  rt::QualityMonitor Mon(S, Accurate, Approx, {Size, Size}, {16, 16},
                         Budget, CheckEvery);
  rt::ScoreFn Score = [](const std::vector<float> &R,
                         const std::vector<float> &T) {
    return img::meanRelativeError(R, T);
  };

  std::printf("median Rows1:NN stream, budget %.3f, check every %u "
              "frames\n\n",
              Budget, CheckEvery);
  std::printf("%5s  %-12s %-11s %9s %10s\n", "frame", "content",
              "kernel", "checked", "error");

  double ApproxMs = 0, TotalMs = 0;
  for (unsigned Frame = 0; Frame < NumFrames; ++Frame) {
    // Content drift: smooth natural footage for the first two thirds,
    // then a cut to high-frequency pattern content.
    bool Pattern = Frame >= 2 * NumFrames / 3;
    img::Image F = img::generateImage(Pattern ? img::ImageClass::Pattern
                                              : img::ImageClass::Smooth,
                                      Size, Size, 100 + Frame);
    S.buffer(In).uploadFloats(F.pixels());

    rt::MonitoredLaunch L = cantFail(Mon.launch(Args, Out, Score));
    TotalMs += L.Report.TimeMs;
    if (L.UsedApproximate)
      ApproxMs += L.Report.TimeMs;
    const char *Content = Pattern ? "pattern" : "smooth";
    const char *Used = L.UsedApproximate ? "perforated" : "accurate";
    if (L.Checked)
      std::printf("%5u  %-12s %-11s %9s %10.5f\n", Frame, Content, Used,
                  "yes", L.MeasuredError);
    else
      std::printf("%5u  %-12s %-11s %9s %10s\n", Frame, Content, Used,
                  "-", "-");
  }

  std::printf("\nfell back: %s after %zu checks\n",
              Mon.fellBack() ? "yes" : "no", Mon.history().size());
  std::printf("modeled stream time %.3f ms (%.0f%% spent in the "
              "perforated kernel)\n",
              TotalMs, 100.0 * ApproxMs / TotalMs);
  std::printf("\nThe monitor kept the fast kernel while the content was "
              "smooth and\nswitched to the accurate kernel once the "
              "pattern content blew the\nerror budget -- the runtime "
              "side of the paper's \"library can\nautomatically apply "
              "and tune the technique\".\n");
  return 0;
}
