//===- examples/edge_pipeline.cpp - Edge-detection pipeline ------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The workload the paper's introduction motivates: an edge-detection
// pipeline (denoise with a Gaussian, then Sobel). Runs the pipeline
// accurately and with both stages perforated, reports end-to-end speedup
// and quality, and optionally writes the results as PGM images.
//
// Usage: edge_pipeline [input.pgm] [output-prefix]
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"
#include "img/PGM.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::apps;

namespace {

/// Runs gaussian then sobel3 with the given builder, returning the final
/// output and total modeled time.
struct PipelineResult {
  std::vector<float> Edges;
  double TimeMs = 0;
};

Expected<PipelineResult> runPipeline(const img::Image &Input,
                                     bool Perforated) {
  auto Gaussian = makeApp("gaussian");
  auto Sobel = makeApp("sobel3");
  perf::PerforationScheme Scheme =
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear);

  PipelineResult Result;

  // One session hosts both stages; each stage is one rt::Variant.
  rt::Session S;

  // Stage 1: denoise.
  Expected<rt::Variant> K1 =
      Perforated ? Gaussian->buildPerforated(S, Scheme, {16, 16})
                 : Gaussian->buildBaseline(S, {16, 16});
  if (!K1)
    return K1.takeError();
  Expected<RunOutcome> R1 =
      Gaussian->run(S, *K1, makeImageWorkload(Input));
  if (!R1)
    return R1.takeError();
  Result.TimeMs += R1->Report.TimeMs;

  // Stage 2: edges over the denoised image.
  img::Image Denoised(Input.width(), Input.height());
  Denoised.pixels() = R1->Output;
  Expected<rt::Variant> K2 =
      Perforated ? Sobel->buildPerforated(S, Scheme, {16, 16})
                 : Sobel->buildBaseline(S, {16, 16});
  if (!K2)
    return K2.takeError();
  Expected<RunOutcome> R2 =
      Sobel->run(S, *K2, makeImageWorkload(Denoised));
  if (!R2)
    return R2.takeError();
  Result.TimeMs += R2->Report.TimeMs;
  Result.Edges = R2->Output;
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  img::Image Input;
  if (Argc > 1) {
    Expected<img::Image> Loaded = img::readPGM(Argv[1]);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Loaded.error().message().c_str());
      return 1;
    }
    Input = Loaded.takeValue();
    std::printf("input: %s (%ux%u)\n", Argv[1], Input.width(),
                Input.height());
  } else {
    Input = img::generateImage(img::ImageClass::Natural, 256, 256, 77);
    std::printf("input: synthetic natural image 256x256 "
                "(pass a .pgm path to use a real one)\n");
  }
  if (Input.width() % 16 != 0 || Input.height() % 16 != 0) {
    std::fprintf(stderr,
                 "error: image dimensions must be multiples of 16\n");
    return 1;
  }

  PipelineResult Accurate = cantFail(runPipeline(Input, false));
  PipelineResult Fast = cantFail(runPipeline(Input, true));

  double MeanErr = img::meanError(Accurate.Edges, Fast.Edges);
  std::printf("accurate pipeline:   %8.4f ms\n", Accurate.TimeMs);
  std::printf("perforated pipeline: %8.4f ms\n", Fast.TimeMs);
  std::printf("speedup:             %8.2fx\n",
              Accurate.TimeMs / Fast.TimeMs);
  std::printf("mean error vs accurate edges: %.5f\n", MeanErr);

  if (Argc > 2) {
    img::Image Edges(Input.width(), Input.height());
    Edges.pixels() = Fast.Edges;
    // Stretch for visibility.
    for (float &P : Edges.pixels())
      P = std::min(1.0f, P * 4.0f);
    std::string Path = std::string(Argv[2]) + "_edges.pgm";
    cantFail(img::writePGM(Edges, Path));
    std::printf("wrote %s\n", Path.c_str());
  }
  return 0;
}
