//===- examples/thermal_sim.cpp - Approximate thermal simulation -------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Hotspot as a downstream user would run it: a multi-step transient
// thermal simulation where every step's temperature input is perforated.
// Shows how the error accumulates (or does not) over simulation time and
// what the end-to-end speedup is.
//
// Usage: thermal_sim [grid-size] [steps]    (default: 128 16)
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"

#include <cstdio>
#include <cstdlib>

using namespace kperf;
using namespace kperf::apps;

int main(int Argc, char **Argv) {
  unsigned Size = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 128;
  unsigned Steps = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 16;
  if (Size % 16 != 0) {
    std::fprintf(stderr, "grid size must be a multiple of 16\n");
    return 1;
  }

  auto App = makeApp("hotspot");
  std::printf("hotspot: %ux%u grid, %u steps, Rows1:LI perforation of the "
              "temperature field\n\n",
              Size, Size, Steps);

  std::printf("%6s %14s %14s %10s\n", "step", "max temp (acc)",
              "max temp (perf)", "MRE");

  // One session serves every run below; the perforated variant compiles
  // once and later builds are cache hits.
  rt::Session S;

  // Error trajectory: compare accurate and perforated after 1..Steps.
  for (unsigned Checkpoint : {1u, Steps / 4, Steps / 2, Steps}) {
    if (Checkpoint == 0)
      continue;
    Workload W = makeHotspotWorkload(Size, 5, Checkpoint);
    std::vector<float> Ref = App->reference(W);

    rt::Variant BK = cantFail(App->buildPerforated(
        S,
        perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
        {16, 16}));
    RunOutcome R = cantFail(App->run(S, BK, W));

    float MaxAcc = 0, MaxPerf = 0;
    for (float V : Ref)
      MaxAcc = std::max(MaxAcc, V);
    for (float V : R.Output)
      MaxPerf = std::max(MaxPerf, V);
    std::printf("%6u %14.3f %14.3f %10.5f\n", Checkpoint, MaxAcc, MaxPerf,
                App->score(Ref, R.Output));
  }

  // End-to-end timing over the full run.
  Workload W = makeHotspotWorkload(Size, 5, Steps);
  double BaseMs, PerfMs;
  {
    rt::Variant BK = cantFail(App->buildBaseline(S, {16, 16}));
    BaseMs = cantFail(App->run(S, BK, W)).Report.TimeMs;
  }
  {
    rt::Variant BK = cantFail(App->buildPerforated(
        S,
        perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
        {16, 16}));
    PerfMs = cantFail(App->run(S, BK, W)).Report.TimeMs;
  }
  std::printf("\naccurate:   %.4f ms\nperforated: %.4f ms\nspeedup:    "
              "%.2fx over %u steps\n",
              BaseMs, PerfMs, BaseMs / PerfMs, Steps);
  return 0;
}
