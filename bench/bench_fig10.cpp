//===- bench/bench_fig10.cpp - Paper Fig. 10 --------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 10: Pareto-optimal configurations, our local
// memory-aware perforation (Rows1, Stencil1) versus the Paraprox
// output-approximation schemes (Center/Rows/Cols, variants 1 and 2), on
// Gaussian, Inversion, and Median. Prints (speedup, error) per
// configuration and marks the Pareto front.
//
// Expected shapes (paper 6.4): our schemes dominate Paraprox's at similar
// speedup with much lower error; Cols is slower than Rows (layout
// mismatch); Stencil1 is infeasible for Inversion (1x1 kernel).
//
// --jobs N (or KPERF_JOBS): evaluate each app's variant list on N worker
// threads sharing one rt::Session; the printed numbers are identical to
// the serial run.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "perforation/Pareto.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

int main(int Argc, char **Argv) {
  BenchSettings S = BenchSettings::fromEnvironment();
  unsigned Jobs = parseJobsFlag(Argc, Argv);
  std::printf("=== Figure 10: Pareto fronts, ours vs. Paraprox ===\n");
  std::printf("dataset: %u inputs, %ux%u\n\n", S.NumImages, S.ImageSize,
              S.ImageSize);

  for (const char *AppName : {"gaussian", "inversion", "median"}) {
    auto App = makeApp(AppName);
    std::vector<Workload> Workloads = workloadsFor(*App, S);

    std::vector<VariantSpec> Variants;
    Variants.push_back(VariantSpec::baseline()); // "Accurate": speedup 1.
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Center, 2));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Center, 4));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Rows, 2));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Rows, 4));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Cols, 2));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Cols, 4));
    if (std::string(AppName) != "inversion")
      Variants.push_back(
          VariantSpec::perforated(perf::PerforationScheme::stencil()));
    Variants.push_back(VariantSpec::perforated(perf::PerforationScheme::rows(
        2, perf::ReconstructionKind::NearestNeighbor)));

    std::vector<perf::TradeoffPoint> Points;
    std::printf("%s:\n  %-16s %10s %10s\n", AppName, "config", "speedup",
                "mean err");
    std::vector<Expected<VariantEval>> Evals =
        evaluateVariantsParallel(*App, Variants, {16, 16}, Workloads, Jobs);
    for (size_t I = 0; I < Variants.size(); ++I) {
      Expected<VariantEval> &E = Evals[I];
      if (!E) {
        std::printf("  %-16s infeasible: %s\n", Variants[I].Label.c_str(),
                    E.error().message().c_str());
        continue;
      }
      std::printf("  %-16s %9.2fx %10.4f\n", E->Label.c_str(),
                  E->SpeedupVsBaseline, E->ErrorSummary.Mean);
      Points.push_back(
          {E->Label, E->SpeedupVsBaseline, E->ErrorSummary.Mean});
    }

    std::printf("  Pareto front:");
    for (size_t I : perf::paretoFront(Points))
      std::printf(" %s", Points[I].Label.c_str());
    std::printf("\n\n");
  }
  return 0;
}
