//===- bench/bench_fig6.cpp - Paper Fig. 6 ----------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 6: the distribution of the output error over the
// input dataset (boxplot summary) and the speedup of the perforated
// version over the accurate baseline, per application.
//
// Paper configuration (section 6.2): row scheme 1 for Hotspot and
// Inversion, stencil scheme for the other applications; NN reconstruction;
// Pareto-chosen work-group shapes. Paper-reported speedups for reference:
// gaussian 2.2x, inversion 1.59x, median 1.62x, hotspot 1.98x,
// sobel3 1.79x, sobel5 3.05x; average error below ~6%.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::printf("=== Figure 6: error distribution and speedup per app ===\n");
  std::printf("dataset: %u inputs, %ux%u (paper: 100 inputs, 1024x1024)\n\n",
              S.NumImages, S.ImageSize, S.ImageSize);
  printSummaryHeader();

  struct Row {
    const char *AppName;
    perf::PerforationScheme Scheme;
    double PaperSpeedup;
  };
  const Row Rows[] = {
      {"gaussian", perf::PerforationScheme::stencil(), 2.2},
      {"inversion",
       perf::PerforationScheme::rows(
           2, perf::ReconstructionKind::NearestNeighbor),
       1.59},
      {"median", perf::PerforationScheme::stencil(), 1.62},
      {"hotspot",
       perf::PerforationScheme::rows(
           2, perf::ReconstructionKind::NearestNeighbor),
       1.98},
      {"sobel3", perf::PerforationScheme::stencil(), 1.79},
      {"sobel5", perf::PerforationScheme::stencil(), 3.05},
  };

  for (const Row &R : Rows) {
    auto App = apps::makeApp(R.AppName);
    std::vector<apps::Workload> Workloads = workloadsFor(*App, S);
    Expected<VariantEval> E = evaluateVariant(
        *App, VariantSpec::perforated(R.Scheme), {16, 16}, Workloads);
    if (!E) {
      std::printf("%-10s ERROR: %s\n", R.AppName,
                  E.error().message().c_str());
      continue;
    }
    printSummaryRow(App->name(), E->Label, E->SpeedupVsBaseline,
                    E->ErrorSummary);
    std::printf("%-10s %-14s %7.2fx | (paper-reported speedup)\n", "",
                "paper", R.PaperSpeedup);
  }
  return 0;
}
