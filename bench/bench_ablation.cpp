//===- bench/bench_ablation.cpp - Cost-model ablation ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: sensitivity of the headline result (Gaussian Rows1
// speedup) to the simulator's cost-model parameters, demonstrating which
// modeled effects carry the result:
//
//  * read-transaction cost sweep -- the speedup saturates once kernels are
//    memory-bound and collapses toward 1x when reads become free;
//  * ALU issue width sweep -- models more/less effective kernel compilers;
//  * segment size sweep -- coalescing granularity;
//  * write cost sweep -- cheaper writes emphasize the read savings.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

double speedupWith(const sim::DeviceConfig &Device, unsigned ImageSize,
                   const char *AppName = "gaussian") {
  auto App = makeApp(AppName);
  Workload W = makeImageWorkload(img::generateImage(
      img::ImageClass::Natural, ImageSize, ImageSize, 3));
  double Base = 0, Perf = 0;
  {
    rt::Session Ctx(Device);
    rt::Variant BK = cantFail(App->buildBaseline(Ctx, {16, 16}));
    Base = cantFail(App->run(Ctx, BK, W)).Report.TimeMs;
  }
  {
    rt::Session Ctx(Device);
    rt::Variant BK = cantFail(App->buildPerforated(
        Ctx,
        perf::PerforationScheme::rows(
            2, perf::ReconstructionKind::NearestNeighbor),
        {16, 16}));
    Perf = cantFail(App->run(Ctx, BK, W)).Report.TimeMs;
  }
  return Base / Perf;
}

} // namespace

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  unsigned Size = S.ImageSize;
  std::printf("=== Ablation: Gaussian Rows1 speedup vs. cost-model "
              "parameters ===\n\n");

  std::printf("read cost sweep (cycles/transaction):\n");
  for (double Read : {2.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    sim::DeviceConfig D;
    D.ReadCostCycles = Read;
    std::printf("  read=%6.1f  speedup=%5.2fx\n", Read,
                speedupWith(D, Size));
  }

  std::printf("\nALU issue width sweep (gaussian is memory-bound and "
              "insensitive;\nsobel5 crosses from compute- to "
              "memory-bound):\n");
  for (double Issue : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    sim::DeviceConfig D;
    D.AluIssueWidth = Issue;
    std::printf("  issue=%5.1f  gaussian=%5.2fx  sobel5=%5.2fx\n", Issue,
                speedupWith(D, Size), speedupWith(D, Size, "sobel5"));
  }

  std::printf("\nsegment size sweep (bytes):\n");
  for (unsigned Seg : {16u, 32u, 64u, 128u}) {
    sim::DeviceConfig D;
    D.SegmentBytes = Seg;
    std::printf("  segment=%4u  speedup=%5.2fx\n", Seg,
                speedupWith(D, Size));
  }

  std::printf("\nwrite cost sweep (cycles/transaction):\n");
  for (double Write : {0.0, 5.0, 10.0, 20.0, 32.0}) {
    sim::DeviceConfig D;
    D.WriteCostCycles = Write;
    std::printf("  write=%5.1f  speedup=%5.2fx\n", Write,
                speedupWith(D, Size));
  }
  return 0;
}
