//===- bench/bench_passes.cpp - Compiler-pass ablation ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: ablation of the cleanup pipeline that runs over
// every generated perforated kernel, across all nine paper/extension
// applications. The perforation transform clones the original address
// arithmetic into the loader, the reconstruction, and the rewritten body,
// so without the pipeline the generated kernels carry substantial
// redundant ALU and private-memory work -- enough to shift compute-bound
// kernels' modeled time and hence the reported speedups.
//
// Per application and pipeline setting the table shows:
//
//   instrs      static instruction count (both passes for convsep)
//   loads/item  dynamic memory accesses per work item
//               (private + local + global lanes, loads and stores)
//   priv/item   the private-memory share of the above
//   ALU/item    dynamic ALU ops per work item
//   time        modeled execution time of the workload
//   energy      modeled energy
//
// for the pipeline specs (the ablation reconstructs the pipeline's
// history; each row adds what the next generation of passes bought):
//
//   none          ""
//   simplify+DCE  fixpoint(simplify,dce)
//   full          fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)
//   +mem2reg      mem2reg ahead of the full fixpoint group
//   +unroll+gvn   mem2reg,unroll,fixpoint(...,gvn,...)
//   +sroa         the default: sroa + in-fixpoint mem2reg on top, with
//                 gvn/licm/memopt-dse widened over memory SSA
//
// The final row's per-pass instrumentation (invocations, changes, net
// IR-size delta, net static-ALU delta) is printed per app underneath,
// straight from the variant's PipelineStats.
//
// --json[=FILE]: also emit every row as a JSON array (default
// BENCH_passes.json) so the trajectory can be tracked across revisions;
// per-pass rows are emitted as bench="passes_pass" records.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "ir/Passes.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

struct AblationRow {
  size_t Instructions = 0;
  double LoadsPerItem = 0; ///< All memory lanes: private+local+global.
  double PrivPerItem = 0;  ///< Private share of the above.
  double AluPerItem = 0;
  double TimeMs = 0;
  double EnergyMJ = 0;
  ir::PipelineStats PassStats; ///< What the pipeline did (per-pass rows).
};

/// Builds the Rows1:LI perforated variant of \p TheApp with the cleanup
/// pipeline \p PipelineSpec and measures one run of workload \p W. The
/// session is shared across an app's pipeline rows: the pipeline spec is
/// part of every variant's cache key, so each row still gets its own
/// freshly optimized variant from a single source compile.
AblationRow measure(rt::Session &S, apps::App &TheApp, const Workload &W,
                    const std::string &PipelineSpec) {
  TheApp.setPipelineSpec(PipelineSpec);

  rt::Variant BK = cantFail(TheApp.buildPerforated(
      S,
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
      {16, 16}));
  RunOutcome R = cantFail(TheApp.run(S, BK, W));

  AblationRow Row;
  Row.Instructions = ir::functionInstructionCount(*BK.K.F);
  if (BK.isTwoPass())
    Row.Instructions += ir::functionInstructionCount(*BK.K2.F);
  double Items = static_cast<double>(R.Report.Totals.WorkItems);
  Row.LoadsPerItem =
      static_cast<double>(R.Report.Totals.PrivateAccesses +
                          R.Report.Totals.LocalAccesses +
                          R.Report.Totals.GlobalReads +
                          R.Report.Totals.GlobalWrites) /
      Items;
  Row.PrivPerItem =
      static_cast<double>(R.Report.Totals.PrivateAccesses) / Items;
  Row.AluPerItem = static_cast<double>(R.Report.Totals.AluOps) / Items;
  Row.TimeMs = R.Report.TimeMs;
  Row.EnergyMJ = R.Report.EnergyMJ;
  Row.PassStats = BK.PassStats;
  return Row;
}

void printRow(const char *Label, const AblationRow &R) {
  std::printf("  %-14s %8zu %12.1f %11.1f %10.1f %9.3f %9.3f\n", Label,
              R.Instructions, R.LoadsPerItem, R.PrivPerItem, R.AluPerItem,
              R.TimeMs, R.EnergyMJ);
}

/// Per-pass instrumentation of the default pipeline's run: what each
/// pass changed and the net IR-size / static-ALU movement it caused.
void printPassTable(const ir::PipelineStats &Stats) {
  std::printf("    %-16s %5s %8s %8s %8s\n", "pass", "runs", "changes",
              "d-instr", "d-alu");
  for (const ir::PassExecution &E : Stats.Passes)
    std::printf("    %-16s %5u %8u %+8lld %+8lld\n", E.Name.c_str(),
                E.Invocations, E.Changes, E.SizeDelta, E.AluDelta);
}

void recordRow(std::vector<JsonRecord> &Records, const char *AppName,
               const char *Label, const AblationRow &R) {
  JsonRecord Rec;
  Rec.add("bench", "passes");
  Rec.add("app", AppName);
  Rec.add("pipeline", Label);
  Rec.add("instrs", static_cast<unsigned long long>(R.Instructions));
  Rec.add("loads_per_item", R.LoadsPerItem);
  Rec.add("priv_per_item", R.PrivPerItem);
  Rec.add("alu_per_item", R.AluPerItem);
  Rec.add("time_ms", R.TimeMs);
  Rec.add("energy_mj", R.EnergyMJ);
  Records.push_back(std::move(Rec));
}

void recordPassRows(std::vector<JsonRecord> &Records, const char *AppName,
                    const ir::PipelineStats &Stats) {
  for (const ir::PassExecution &E : Stats.Passes) {
    JsonRecord Rec;
    Rec.add("bench", "passes_pass");
    Rec.add("app", AppName);
    Rec.add("pass", E.Name);
    Rec.add("invocations",
            static_cast<unsigned long long>(E.Invocations));
    Rec.add("changes", static_cast<unsigned long long>(E.Changes));
    Rec.add("size_delta", static_cast<double>(E.SizeDelta));
    Rec.add("alu_delta", static_cast<double>(E.AluDelta));
    Records.push_back(std::move(Rec));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "passes", JsonPath);
  std::vector<JsonRecord> Records;

  // The pipeline's history as ablation rows: the pre-mem2reg fixpoint
  // ("full"), SSA promotion on top ("+mem2reg"), constant-trip unrolling
  // + cross-block GVN ("+unroll+gvn"), and the current default with SROA
  // + memory-SSA-widened gvn/licm/memopt-dse ("+sroa").
  const char *FullNoMem2Reg =
      "fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)";
  const char *Mem2RegOnly =
      "mem2reg,fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)";
  const char *UnrollGvn =
      "mem2reg,unroll,fixpoint(simplify,gvn,cse,memopt-forward,licm,"
      "memopt-dse,dce)";

  std::printf("=== Pass ablation: Rows1:LI perforated kernels, %ux%u "
              "input ===\n\n",
              S.ImageSize, S.ImageSize);
  std::printf("  %-14s %8s %12s %11s %10s %9s %9s\n", "pipeline",
              "instrs", "loads/item", "priv/item", "ALU/item", "ms",
              "mJ");

  for (const char *Name : {"gaussian", "inversion", "median", "hotspot",
                           "sobel3", "sobel5", "mean", "sharpen",
                           "convsep"}) {
    std::printf("%s\n", Name);
    auto TheApp = makeApp(Name);
    Workload W = workloadsFor(*TheApp, S).front();
    rt::Session Session;
    struct Setting {
      const char *Label;
      std::string Spec;
    };
    const Setting Settings[] = {
        {"none", ""},
        {"simplify+DCE", "fixpoint(simplify,dce)"},
        {"full", FullNoMem2Reg},
        {"+mem2reg", Mem2RegOnly},
        {"+unroll+gvn", UnrollGvn},
        {"+sroa", ir::defaultPipelineSpec()},
    };
    ir::PipelineStats DefaultStats;
    for (const Setting &Set : Settings) {
      AblationRow Row = measure(Session, *TheApp, W, Set.Spec);
      printRow(Set.Label, Row);
      if (Json)
        recordRow(Records, Name, Set.Label, Row);
      if (Set.Spec == ir::defaultPipelineSpec())
        DefaultStats = Row.PassStats;
    }
    printPassTable(DefaultStats);
    if (Json)
      recordPassRows(Records, Name, DefaultStats);
  }

  std::printf("\nExpected shape: +sroa <= +unroll+gvn <= +mem2reg < full "
              "< simplify+DCE < none\nin static size, dynamic loads, and "
              "energy. mem2reg removes the private\ntraffic store "
              "forwarding (block-local) cannot; unroll flattens the\n"
              "constant-trip filter windows into straight-line blocks "
              "whose collapsed\ninduction arithmetic simplify folds and "
              "whose cross-block recomputations\ngvn merges; sroa then "
              "splits the constant-indexed window arrays the\nfolded "
              "indices expose into scalars the in-fixpoint mem2reg "
              "promotes, and\nthe memory-SSA-widened gvn/licm/memopt-dse "
              "clean up the rest -- priv/item\nreaches 0.0 on every app "
              "in the final row, with byte-identical outputs\n"
              "(pipeline_oracle_test certifies this across all nine "
              "apps). Modeled time\nonly moves for compute-bound kernels; "
              "with the default device every\nperforated kernel here "
              "stays memory-bound, which is exactly why input\n"
              "perforation pays off on it.\n");
  if (Json && !writeJsonRecords(JsonPath, Records))
    return 1;
  return 0;
}
