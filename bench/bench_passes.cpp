//===- bench/bench_passes.cpp - Compiler-pass ablation ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: ablation of the cleanup pipeline that runs over
// every generated perforated kernel, across all nine paper/extension
// applications. The perforation transform clones the original address
// arithmetic into the loader, the reconstruction, and the rewritten body,
// so without the pipeline the generated kernels carry substantial
// redundant ALU and private-memory work -- enough to shift compute-bound
// kernels' modeled time and hence the reported speedups.
//
// Per application and pipeline setting the table shows:
//
//   instrs      static instruction count (both passes for convsep)
//   loads/item  dynamic memory accesses per work item
//               (private + local + global lanes, loads and stores)
//   priv/item   the private-memory share of the above
//   ALU/item    dynamic ALU ops per work item
//   time        modeled execution time of the workload
//   energy      modeled energy
//
// for the pipeline specs (the ablation drops pass names from the full
// spec; "full" is the pre-mem2reg pipeline kept for comparison):
//
//   none          ""
//   simplify+DCE  fixpoint(simplify,dce)
//   full          fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)
//   +mem2reg      the default: mem2reg ahead of the full fixpoint group
//
// --json[=FILE]: also emit every row as a JSON array (default
// BENCH_passes.json) so the trajectory can be tracked across revisions.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "ir/Passes.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

size_t instructionCount(const ir::Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    N += BB->size();
  return N;
}

struct AblationRow {
  size_t Instructions = 0;
  double LoadsPerItem = 0; ///< All memory lanes: private+local+global.
  double PrivPerItem = 0;  ///< Private share of the above.
  double AluPerItem = 0;
  double TimeMs = 0;
  double EnergyMJ = 0;
};

/// Builds the Rows1:LI perforated variant of \p TheApp with the cleanup
/// pipeline \p PipelineSpec and measures one run of workload \p W. The
/// session is shared across an app's pipeline rows: the pipeline spec is
/// part of every variant's cache key, so each row still gets its own
/// freshly optimized variant from a single source compile.
AblationRow measure(rt::Session &S, apps::App &TheApp, const Workload &W,
                    const std::string &PipelineSpec) {
  TheApp.setPipelineSpec(PipelineSpec);

  rt::Variant BK = cantFail(TheApp.buildPerforated(
      S,
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
      {16, 16}));
  RunOutcome R = cantFail(TheApp.run(S, BK, W));

  AblationRow Row;
  Row.Instructions = instructionCount(*BK.K.F);
  if (BK.isTwoPass())
    Row.Instructions += instructionCount(*BK.K2.F);
  double Items = static_cast<double>(R.Report.Totals.WorkItems);
  Row.LoadsPerItem =
      static_cast<double>(R.Report.Totals.PrivateAccesses +
                          R.Report.Totals.LocalAccesses +
                          R.Report.Totals.GlobalReads +
                          R.Report.Totals.GlobalWrites) /
      Items;
  Row.PrivPerItem =
      static_cast<double>(R.Report.Totals.PrivateAccesses) / Items;
  Row.AluPerItem = static_cast<double>(R.Report.Totals.AluOps) / Items;
  Row.TimeMs = R.Report.TimeMs;
  Row.EnergyMJ = R.Report.EnergyMJ;
  return Row;
}

void printRow(const char *Label, const AblationRow &R) {
  std::printf("  %-14s %8zu %12.1f %11.1f %10.1f %9.3f %9.3f\n", Label,
              R.Instructions, R.LoadsPerItem, R.PrivPerItem, R.AluPerItem,
              R.TimeMs, R.EnergyMJ);
}

void recordRow(std::vector<JsonRecord> &Records, const char *AppName,
               const char *Label, const AblationRow &R) {
  JsonRecord Rec;
  Rec.add("bench", "passes");
  Rec.add("app", AppName);
  Rec.add("pipeline", Label);
  Rec.add("instrs", static_cast<unsigned long long>(R.Instructions));
  Rec.add("loads_per_item", R.LoadsPerItem);
  Rec.add("priv_per_item", R.PrivPerItem);
  Rec.add("alu_per_item", R.AluPerItem);
  Rec.add("time_ms", R.TimeMs);
  Rec.add("energy_mj", R.EnergyMJ);
  Records.push_back(std::move(Rec));
}

} // namespace

int main(int Argc, char **Argv) {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "passes", JsonPath);
  std::vector<JsonRecord> Records;

  // "full" is the complete pre-mem2reg pipeline; the default now leads
  // with mem2reg, so the last two rows isolate exactly what SSA
  // promotion buys on top of the memory-traffic cleanups.
  const char *FullNoMem2Reg =
      "fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)";

  std::printf("=== Pass ablation: Rows1:LI perforated kernels, %ux%u "
              "input ===\n\n",
              S.ImageSize, S.ImageSize);
  std::printf("  %-14s %8s %12s %11s %10s %9s %9s\n", "pipeline",
              "instrs", "loads/item", "priv/item", "ALU/item", "ms",
              "mJ");

  for (const char *Name : {"gaussian", "inversion", "median", "hotspot",
                           "sobel3", "sobel5", "mean", "sharpen",
                           "convsep"}) {
    std::printf("%s\n", Name);
    auto TheApp = makeApp(Name);
    Workload W = workloadsFor(*TheApp, S).front();
    rt::Session Session;
    struct Setting {
      const char *Label;
      std::string Spec;
    };
    const Setting Settings[] = {
        {"none", ""},
        {"simplify+DCE", "fixpoint(simplify,dce)"},
        {"full", FullNoMem2Reg},
        {"+mem2reg", ir::defaultPipelineSpec()},
    };
    for (const Setting &Set : Settings) {
      AblationRow Row = measure(Session, *TheApp, W, Set.Spec);
      printRow(Set.Label, Row);
      if (Json)
        recordRow(Records, Name, Set.Label, Row);
    }
  }

  std::printf("\nExpected shape: +mem2reg < full < simplify+DCE < none "
              "in static size,\ndynamic loads, and energy. mem2reg "
              "removes the private-memory traffic\nthat store forwarding "
              "(block-local) cannot -- loop-carried accumulators\nand "
              "cross-block scalars -- and phis execute as free register "
              "moves, so\npriv/item collapses. Modeled time only moves "
              "for compute-bound kernels;\nwith the default device every "
              "perforated kernel here stays memory-bound,\nwhich is "
              "exactly why input perforation pays off on it.\n");
  if (Json && !writeJsonRecords(JsonPath, Records))
    return 1;
  return 0;
}
