//===- bench/bench_passes.cpp - Compiler-pass ablation ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: ablation of the cleanup pipeline (simplify, CSE,
// DCE) that runs over every generated perforated kernel. The perforation
// transform clones the original address arithmetic into the loader, the
// reconstruction, and the rewritten body, so without the pipeline the
// generated kernels carry substantial redundant ALU work -- enough to
// shift compute-bound kernels' modeled time and hence the reported
// speedups. The table shows, per application:
//
//   instructions  static instruction count of the perforated kernel
//   ALU/item      dynamic ALU ops per work item
//   time          modeled execution time
//
// for three pipeline settings, expressed as pass-pipeline specs (the
// ablation drops pass names from the full spec):
//
//   none          ""
//   simplify+DCE  fixpoint(simplify,dce)
//   full          fixpoint(simplify,cse,memopt-forward,licm,memopt-dse,dce)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "ir/Passes.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

size_t instructionCount(const ir::Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    N += BB->size();
  return N;
}

struct AblationRow {
  size_t Instructions = 0;
  double AluPerItem = 0;
  double TimeMs = 0;
  double EnergyMJ = 0;
};

/// Builds the Rows1:LI perforated kernel of \p AppName with the cleanup
/// pipeline \p PipelineSpec and measures one launch on \p W.
AblationRow measure(const char *AppName, const Workload &W,
                    const std::string &PipelineSpec) {
  auto TheApp = makeApp(AppName);
  rt::Context Ctx;
  rt::Kernel K =
      cantFail(Ctx.compile(TheApp->source(), TheApp->kernelName()));
  perf::PerforationPlan Plan;
  Plan.Scheme = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::Linear);
  Plan.TileX = 16;
  Plan.TileY = 16;
  Plan.PipelineSpec = PipelineSpec;
  rt::PerforatedKernel P = cantFail(Ctx.perforate(K, Plan));

  unsigned Width = W.Input.width();
  unsigned Height = W.Input.height();
  unsigned In = Ctx.createBufferFrom(W.Input.pixels());
  unsigned Out = Ctx.createBuffer(W.Input.size());
  sim::SimReport R = cantFail(
      Ctx.launch(P.K, {Width, Height}, {P.LocalX, P.LocalY},
                 {rt::arg::buffer(In), rt::arg::buffer(Out),
                  rt::arg::i32(static_cast<int32_t>(Width)),
                  rt::arg::i32(static_cast<int32_t>(Height))}));

  AblationRow Row;
  Row.Instructions = instructionCount(*P.K.F);
  Row.AluPerItem =
      static_cast<double>(R.Totals.AluOps) / R.Totals.WorkItems;
  Row.TimeMs = R.TimeMs;
  Row.EnergyMJ = R.EnergyMJ;
  return Row;
}

} // namespace

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  unsigned Size = S.ImageSize;
  Workload W = makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, Size, Size, 3));

  std::printf("=== Pass ablation: Rows1:LI perforated kernels, %ux%u "
              "input ===\n\n",
              Size, Size);
  std::printf("pipeline settings: none | simplify+DCE | full "
              "(simplify+CSE+MemOpt+LICM+DCE)\n\n");
  std::printf("%-10s %35s %35s %35s\n", "", "none", "simplify+DCE",
              "full");
  std::printf("%-10s %8s %9s %7s %8s %8s %9s %7s %8s %8s %9s %7s %8s\n",
              "app", "instrs", "ALU/item", "ms", "mJ", "instrs",
              "ALU/item", "ms", "mJ", "instrs", "ALU/item", "ms", "mJ");

  // Single-pass image apps only: convsep/hotspot need their own launch
  // plumbing and add nothing to the pass comparison.
  for (const char *Name : {"gaussian", "inversion", "median", "sobel3",
                           "sobel5", "mean", "sharpen"}) {
    AblationRow RNone = measure(Name, W, "");
    AblationRow RNoCse = measure(Name, W, "fixpoint(simplify,dce)");
    AblationRow RFull = measure(Name, W, ir::defaultPipelineSpec());
    std::printf("%-10s %8zu %9.1f %7.3f %8.3f %8zu %9.1f %7.3f %8.3f "
                "%8zu %9.1f %7.3f %8.3f\n",
                Name, RNone.Instructions, RNone.AluPerItem, RNone.TimeMs,
                RNone.EnergyMJ, RNoCse.Instructions, RNoCse.AluPerItem,
                RNoCse.TimeMs, RNoCse.EnergyMJ, RFull.Instructions,
                RFull.AluPerItem, RFull.TimeMs, RFull.EnergyMJ);
  }

  std::printf("\nExpected shape: full < simplify+DCE < none in static "
              "and dynamic ALU\ncounts, and in energy (ALU events cost "
              "energy even when latency hides\nthem). Modeled time only "
              "moves for compute-bound kernels; with the\ndefault device "
              "every perforated kernel here stays memory-bound, which\n"
              "is exactly why input perforation pays off on it.\n");
  return 0;
}
