//===- bench/bench_energy.cpp - Modeled energy savings ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: the paper motivates approximate computing with
// "significant improvements in terms of execution time or energy
// consumption" (section 1) but evaluates only time. This benchmark
// reports the modeled energy side for every application: DRAM traffic
// dominates GPU dynamic energy, so skipping global-memory loads saves
// energy even where latency hiding would mask the time benefit. Columns:
//
//   time x     speedup vs the paper baseline (same as Fig. 6);
//   energy x   baseline energy / variant energy;
//   dram -%    percentage of DRAM transactions eliminated.
//
// Flags: --json[=FILE] additionally emits records {app, scheme, time_x,
// energy_x, dram_saved_pct} (default file BENCH_energy.json).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

struct EnergyRow {
  double TimeMs = 0;
  double EnergyMJ = 0;
  uint64_t DramTx = 0;
  bool Feasible = false;
};

EnergyRow measure(const App &TheApp, const Workload &W,
                  const perf::PerforationScheme &Scheme) {
  rt::Session S;
  Expected<rt::Variant> BK =
      Scheme.Kind == perf::SchemeKind::None
          ? TheApp.buildBaseline(S, {16, 16})
          : TheApp.buildPerforated(S, Scheme, {16, 16});
  EnergyRow Row;
  if (!BK)
    return Row;
  Expected<RunOutcome> R = TheApp.run(S, *BK, W);
  if (!R)
    return Row;
  Row.TimeMs = R->Report.TimeMs;
  Row.EnergyMJ = R->Report.EnergyMJ;
  Row.DramTx = R->Report.Totals.GlobalReadTransactions +
               R->Report.Totals.GlobalWriteTransactions;
  Row.Feasible = true;
  return Row;
}

void reportApp(const App &TheApp, const Workload &W,
               std::vector<JsonRecord> *Records) {
  EnergyRow Base = measure(TheApp, W, perf::PerforationScheme::none());
  if (!Base.Feasible)
    return;
  struct NamedScheme {
    const char *Label;
    perf::PerforationScheme S;
  };
  const NamedScheme Schemes[] = {
      {"Rows1:NN", perf::PerforationScheme::rows(
                       2, perf::ReconstructionKind::NearestNeighbor)},
      {"Rows2:NN", perf::PerforationScheme::rows(
                       4, perf::ReconstructionKind::NearestNeighbor)},
      {"Stencil1", perf::PerforationScheme::stencil()},
  };
  for (const NamedScheme &NS : Schemes) {
    EnergyRow R = measure(TheApp, W, NS.S);
    if (!R.Feasible) {
      std::printf("%-10s %-9s %27s\n", TheApp.name().c_str(), NS.Label,
                  "(infeasible for this kernel)");
      continue;
    }
    double SavedDram =
        Base.DramTx == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(R.DramTx) /
                                 static_cast<double>(Base.DramTx));
    std::printf("%-10s %-9s %8.2fx %9.2fx %8.1f%%\n",
                TheApp.name().c_str(), NS.Label, Base.TimeMs / R.TimeMs,
                Base.EnergyMJ / R.EnergyMJ, SavedDram);
    if (Records) {
      JsonRecord Rec;
      Rec.add("app", TheApp.name());
      Rec.add("scheme", NS.Label);
      Rec.add("time_x", Base.TimeMs / R.TimeMs);
      Rec.add("energy_x", Base.EnergyMJ / R.EnergyMJ);
      Rec.add("dram_saved_pct", SavedDram);
      Records->push_back(std::move(Rec));
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "energy", JsonPath);
  std::vector<JsonRecord> Records;
  std::printf("=== Energy: modeled baseline/variant ratios, %ux%u inputs "
              "===\n\n",
              S.ImageSize, S.ImageSize);
  std::printf("%-10s %-9s %9s %10s %9s\n", "app", "scheme", "time x",
              "energy x", "dram -%");

  img::Image Natural = img::generateImage(img::ImageClass::Natural,
                                          S.ImageSize, S.ImageSize, 3);
  auto workloadOf = [&](const App &TheApp) {
    if (TheApp.name() == "hotspot")
      return makeHotspotWorkload(S.ImageSize, /*Seed=*/3,
                                 /*Iterations=*/4);
    return makeImageWorkload(Natural);
  };
  for (const auto &TheApp : makeAllApps())
    reportApp(*TheApp, workloadOf(*TheApp), Json ? &Records : nullptr);
  for (const auto &TheApp : makeExtensionApps())
    reportApp(*TheApp, workloadOf(*TheApp), Json ? &Records : nullptr);

  std::printf("\nExpected shape: energy ratios track the DRAM savings but "
              "stay below the\ntime ratios -- writes and ALU energy are "
              "untouched by input perforation,\nand the reconstruction "
              "adds ALU work. Rows2 saves more than Rows1.\nInversion "
              "(1x1 kernel, one read per item) can even lose energy "
              "under\nRows1: the reconstruction costs more than the saved "
              "traffic, which is\nwhy the paper motivates perforation "
              "with kernels that have data reuse.\n");
  if (Json && !writeJsonRecords(JsonPath, Records))
    return 1;
  return 0;
}
