//===- bench/BenchUtil.h - Shared benchmark harness helpers -------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-regeneration benchmarks: dataset
/// construction, config evaluation (speedup vs. the paper's baseline +
/// error distribution over inputs), and table printing.
///
/// Environment knobs (all benchmarks):
///   KPERF_IMG_SIZE   image edge length (default 256; paper used 1024)
///   KPERF_NUM_IMAGES dataset size      (default 40;  paper used 100)
///   KPERF_IMG_DIR    directory of .pgm images to use instead of the
///                    synthetic dataset (e.g. the USC-SIPI misc/pattern
///                    images the paper used, converted to PGM). Images
///                    are center-cropped to multiples of 128 so every
///                    Fig. 9 work-group shape divides them; images
///                    smaller than 128x128 are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_BENCH_BENCHUTIL_H
#define KPERF_BENCH_BENCHUTIL_H

#include "apps/App.h"
#include "img/Generators.h"
#include "perforation/Scheme.h"
#include "support/Statistics.h"

#include <string>
#include <vector>

namespace kperf {
namespace bench {

/// Benchmark-wide workload sizing, overridable via environment.
struct BenchSettings {
  unsigned ImageSize = 256;
  unsigned NumImages = 40;
  std::string ImageDir; ///< Empty: synthetic dataset.

  static BenchSettings fromEnvironment();
};

/// How a kernel variant is constructed.
struct VariantSpec {
  enum class Kind : uint8_t { Baseline, Plain, Perforated, OutputApprox };
  Kind K = Kind::Baseline;
  perf::PerforationScheme Scheme;          ///< Perforated only.
  perf::OutputSchemeKind OutKind =
      perf::OutputSchemeKind::Rows;        ///< OutputApprox only.
  unsigned ApproxPerComputed = 2;          ///< OutputApprox only.
  std::string Label;

  static VariantSpec baseline();
  static VariantSpec perforated(perf::PerforationScheme S);
  static VariantSpec outputApprox(perf::OutputSchemeKind K, unsigned N);
};

/// Evaluation of one (app, variant, work-group shape) triple.
struct VariantEval {
  std::string Label;
  double SpeedupVsBaseline = 0; ///< Modeled-time ratio on the first input.
  double TimeMs = 0;            ///< Modeled time of the variant itself.
  double BaselineTimeMs = 0;
  std::vector<double> Errors;   ///< Per-input output error.
  Summary ErrorSummary;         ///< Five-number summary of Errors.
};

/// Builds and runs \p Variant for \p TheApp over \p Workloads; speedup is
/// measured against the paper baseline (local prefetch where beneficial)
/// at the same work-group shape. Each evaluation uses one rt::Session:
/// the kernel compiles once and the variant is built once, then reused
/// across all workloads.
Expected<VariantEval> evaluateVariant(const apps::App &TheApp,
                                      const VariantSpec &Variant,
                                      sim::Range2 Local,
                                      const std::vector<apps::Workload>
                                          &Workloads);

/// Evaluates every spec of \p Variants on \p Jobs worker threads (0 =
/// one per hardware thread), sharing ONE rt::Session across the whole
/// batch: each variant's kernels compile at most once, and workers run
/// concurrent simulator instances over the shared read-only variants
/// with buffer sets checked out from the session free list. Results come
/// back in \p Variants order and are identical to calling
/// evaluateVariant per spec (modulo the shared session's compile
/// counters).
std::vector<Expected<VariantEval>> evaluateVariantsParallel(
    const apps::App &TheApp, const std::vector<VariantSpec> &Variants,
    sim::Range2 Local, const std::vector<apps::Workload> &Workloads,
    unsigned Jobs, rt::SessionStats *StatsOut = nullptr);

/// Scans a benchmark's argv for "--jobs N" / "--jobs=N"; falls back to
/// the KPERF_JOBS environment variable. Returns \p Default when neither
/// is given (benches default to 1: serial, byte-reproducible without
/// opting in).
unsigned parseJobsFlag(int Argc, char **Argv, unsigned Default = 1);

//===--- Machine-readable output (--json) -----------------------------------//

/// One flat JSON object built key by key, for the benchmarks' --json
/// flags.
class JsonRecord {
public:
  void add(const std::string &Key, const std::string &Value);
  void add(const std::string &Key, const char *Value);
  void add(const std::string &Key, double Value);
  void add(const std::string &Key, unsigned long long Value);
  const std::string &body() const { return Body; }

private:
  std::string Body;
};

/// Scans a benchmark's argv for "--json" or "--json=FILE". Returns true
/// when JSON output was requested; \p Path receives FILE or, for the
/// bare flag, "BENCH_<benchname>.json".
bool parseJsonFlag(int Argc, char **Argv, const std::string &BenchName,
                   std::string &Path);

/// Writes \p Records as a JSON array of objects to \p Path. Reports to
/// stderr and returns false on I/O failure.
bool writeJsonRecords(const std::string &Path,
                      const std::vector<JsonRecord> &Records);

/// Builds the standard per-app workload set: images for image apps, the
/// eight Rodinia-style sizes for Hotspot (paper 6.2).
std::vector<apps::Workload> workloadsFor(const apps::App &TheApp,
                                         const BenchSettings &S);

/// Prints "name  value" aligned rows for boxplot-style summaries.
void printSummaryRow(const std::string &Name, const std::string &Config,
                     double Speedup, const Summary &S);

/// Prints the shared header for summary tables.
void printSummaryHeader();

} // namespace bench
} // namespace kperf

#endif // KPERF_BENCH_BENCHUTIL_H
