//===- bench/bench_serve.cpp - Serving-layer throughput benchmark ------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the multi-tenant serving layer (rt::Server) under a sustained
// zipfian request mix across the nine standard-signature kernels:
// launches/sec, p50/p99 request latency, variant/bytecode/disk cache hit
// rates, quality checks, and online re-tunes triggered. One service
// (sobel5) runs with a deliberately unreachable error budget so exactly
// one deterministic re-tune fires and the re-tune/degrade path is always
// on the measured trajectory.
//
//   bench_serve [--requests N] [--clients N] [--size N] [--shards N]
//               [--cache DIR] [--seed S] [--json[=FILE]]
//
// The request schedule (service choice and frame content) is a pure
// function of the seed, so per-service request counts are deterministic
// and CI pins them exactly; wall-clock fields are checked within a
// tolerance (tools/check_bench.py). With --cache, a second run over the
// same directory must report zero variant compiles -- the warm-restart
// acceptance criterion (wired in CI).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "apps/Kernels.h"
#include "img/Generators.h"
#include "runtime/Server.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace kperf;

namespace {

struct ServiceDef {
  const char *Name;
  const char *Source;
};

std::vector<ServiceDef> serviceDefs() {
  return {{"gaussian", apps::gaussianSource()},
          {"inversion", apps::inversionSource()},
          {"median", apps::medianSource()},
          {"sobel3", apps::sobel3Source()},
          {"sobel5", apps::sobel5Source()},
          {"mean", apps::meanSource()},
          {"sharpen", apps::sharpenSource()},
          {"convsep_row", apps::convSepRowSource()},
          {"convsep_col", apps::convSepColSource()}};
}

/// Zipf(1) sampler over \p N ranks: weight of rank R is 1/(R+1).
struct Zipf {
  std::vector<double> Cdf;
  explicit Zipf(size_t N) {
    double Total = 0;
    for (size_t I = 0; I < N; ++I)
      Total += 1.0 / static_cast<double>(I + 1);
    double Acc = 0;
    for (size_t I = 0; I < N; ++I) {
      Acc += 1.0 / static_cast<double>(I + 1) / Total;
      Cdf.push_back(Acc);
    }
  }
  size_t sample(Rng &R) const {
    double U = R.uniform();
    for (size_t I = 0; I < Cdf.size(); ++I)
      if (U < Cdf[I])
        return I;
    return Cdf.size() - 1;
  }
};

unsigned flagValue(int Argc, char **Argv, const char *Flag,
                   unsigned Default) {
  std::string Eq = std::string(Flag) + "=";
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == Flag && I + 1 < Argc)
      return static_cast<unsigned>(std::strtoul(Argv[I + 1], nullptr, 10));
    if (A.rfind(Eq, 0) == 0)
      return static_cast<unsigned>(
          std::strtoul(A.c_str() + Eq.size(), nullptr, 10));
  }
  return Default;
}

std::string stringFlag(int Argc, char **Argv, const char *Flag) {
  std::string Eq = std::string(Flag) + "=";
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == Flag && I + 1 < Argc)
      return Argv[I + 1];
    if (A.rfind(Eq, 0) == 0)
      return A.substr(Eq.size());
  }
  return "";
}

} // namespace

int main(int Argc, char **Argv) {
  const unsigned Requests = flagValue(Argc, Argv, "--requests", 180);
  const unsigned Clients =
      std::max(1u, flagValue(Argc, Argv, "--clients", 4));
  const unsigned Size = flagValue(Argc, Argv, "--size", 64);
  const unsigned Seed = flagValue(Argc, Argv, "--seed", 7);
  std::string JsonPath;
  const bool Json = bench::parseJsonFlag(Argc, Argv, "serve", JsonPath);

  rt::ServerConfig Cfg;
  Cfg.Shards = flagValue(Argc, Argv, "--shards", 4);
  Cfg.DiskCacheDir = stringFlag(Argc, Argv, "--cache");

  rt::Server Server(Cfg);
  std::vector<ServiceDef> Defs = serviceDefs();
  for (const ServiceDef &D : Defs) {
    rt::ServiceConfig SC;
    SC.Name = D.Name;
    SC.Source = D.Source;
    SC.Kernel = D.Name;
    SC.Width = Size;
    SC.Height = Size;
    SC.Scheme = perf::PerforationScheme::rows(
        2, perf::ReconstructionKind::NearestNeighbor);
    SC.CheckEvery = 8;
    // sobel5's budget is unreachable by construction: its first quality
    // check always fails, firing exactly one deterministic online
    // re-tune (which finds no candidate and degrades the service), so
    // the quality loop is always on the measured trajectory.
    SC.ErrorBudget = std::strcmp(D.Name, "sobel5") == 0 ? 1e-12 : 0.05;
    if (Error E = Server.addService(SC)) {
      std::fprintf(stderr, "bench_serve: %s\n", E.message().c_str());
      return 1;
    }
  }

  // Deterministic zipfian schedule over a small pool of smooth frames.
  Rng ScheduleRng(Seed);
  Zipf Mix(Defs.size());
  std::vector<size_t> Schedule;
  Schedule.reserve(Requests);
  for (unsigned I = 0; I < Requests; ++I)
    Schedule.push_back(Mix.sample(ScheduleRng));
  std::vector<std::vector<float>> Frames;
  for (unsigned I = 0; I < 16; ++I)
    Frames.push_back(
        img::generateImage(img::ImageClass::Smooth, Size, Size, 100 + I)
            .pixels());

  struct PerService {
    std::atomic<unsigned> Served{0};
    std::atomic<unsigned> Approx{0};
    std::atomic<unsigned> Checks{0};
    std::atomic<unsigned> ReTunes{0};
  };
  std::vector<PerService> Counts(Defs.size());
  std::vector<double> LatencyMs(Requests, 0.0);
  std::atomic<size_t> NextRequest{0};
  std::atomic<unsigned> Failures{0};

  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  auto Client = [&]() {
    for (;;) {
      size_t I = NextRequest.fetch_add(1);
      if (I >= Schedule.size())
        return;
      size_t SvcIdx = Schedule[I];
      const Clock::time_point T0 = Clock::now();
      Expected<rt::ServeResult> Res =
          Server.serve(Defs[SvcIdx].Name, Frames[I % Frames.size()]);
      LatencyMs[I] =
          std::chrono::duration<double, std::milli>(Clock::now() - T0)
              .count();
      if (!Res) {
        ++Failures;
        continue;
      }
      PerService &C = Counts[SvcIdx];
      ++C.Served;
      if (Res->UsedApproximate)
        ++C.Approx;
      if (Res->Checked)
        ++C.Checks;
      if (Res->ReTuned)
        ++C.ReTunes;
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back(Client);
  for (std::thread &T : Threads)
    T.join();
  const double TotalSec =
      std::chrono::duration<double>(Clock::now() - Start).count();

  std::vector<double> Sorted = LatencyMs;
  std::sort(Sorted.begin(), Sorted.end());
  auto percentile = [&](double P) {
    if (Sorted.empty())
      return 0.0;
    size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1));
    return Sorted[Idx];
  };
  const double LaunchesPerSec =
      TotalSec > 0 ? static_cast<double>(Requests) / TotalSec : 0;
  const rt::ServerStats St = Server.stats();

  std::printf("bench_serve: %u requests, %u clients, %u shards, %ux%u "
              "frames%s\n",
              Requests, Clients, Server.config().Shards, Size, Size,
              Cfg.DiskCacheDir.empty() ? "" : " (disk cache)");
  std::printf("%-12s %8s %8s %8s %8s\n", "service", "served", "approx",
              "checks", "retunes");
  for (size_t I = 0; I < Defs.size(); ++I)
    std::printf("%-12s %8u %8u %8u %8u\n", Defs[I].Name,
                Counts[I].Served.load(), Counts[I].Approx.load(),
                Counts[I].Checks.load(), Counts[I].ReTunes.load());
  std::printf("throughput: %.1f launches/sec; latency p50 %.2f ms, "
              "p99 %.2f ms\n",
              LaunchesPerSec, percentile(0.50), percentile(0.99));
  std::printf("server: %s\n", St.str().c_str());
  if (Failures.load() != 0)
    std::printf("failed requests: %u\n", Failures.load());

  if (Json) {
    std::vector<bench::JsonRecord> Records;
    for (size_t I = 0; I < Defs.size(); ++I) {
      bench::JsonRecord R;
      R.add("bench", "serve");
      R.add("service", Defs[I].Name);
      R.add("shard", static_cast<unsigned long long>(
                         cantFail(Server.shardOf(Defs[I].Name))));
      R.add("requests",
            static_cast<unsigned long long>(Counts[I].Served.load()));
      R.add("approx",
            static_cast<unsigned long long>(Counts[I].Approx.load()));
      R.add("checks",
            static_cast<unsigned long long>(Counts[I].Checks.load()));
      R.add("retunes",
            static_cast<unsigned long long>(Counts[I].ReTunes.load()));
      Records.push_back(R);
    }
    bench::JsonRecord Total;
    Total.add("bench", "serve");
    Total.add("service", "__total__");
    Total.add("requests", static_cast<unsigned long long>(Requests));
    Total.add("failed",
              static_cast<unsigned long long>(Failures.load()));
    Total.add("clients", static_cast<unsigned long long>(Clients));
    Total.add("shards",
              static_cast<unsigned long long>(Server.config().Shards));
    Total.add("size", static_cast<unsigned long long>(Size));
    Total.add("launches_per_sec", LaunchesPerSec);
    Total.add("p50_ms", percentile(0.50));
    Total.add("p99_ms", percentile(0.99));
    Total.add("checks", static_cast<unsigned long long>(St.Checks));
    Total.add("retunes", static_cast<unsigned long long>(St.ReTunes));
    Total.add("degraded_services",
              static_cast<unsigned long long>(St.DegradedServices));
    Total.add("variant_compiles", static_cast<unsigned long long>(
                                      St.Sessions.VariantCompiles.load()));
    Total.add("variant_cache_hits",
              static_cast<unsigned long long>(
                  St.Sessions.VariantCacheHits.load()));
    Total.add("variant_hit_rate", St.Sessions.variantHitRate());
    Total.add("bytecode_compiles",
              static_cast<unsigned long long>(
                  St.Sessions.BytecodeCompiles.load()));
    Total.add("bytecode_cache_hits",
              static_cast<unsigned long long>(
                  St.Sessions.BytecodeCacheHits.load()));
    Total.add("disk_hits", static_cast<unsigned long long>(
                               St.Sessions.DiskVariantHits.load()));
    Total.add("disk_stores", static_cast<unsigned long long>(
                                 St.Sessions.DiskVariantStores.load()));
    Records.push_back(Total);
    if (!bench::writeJsonRecords(JsonPath, Records))
      return 1;
  }
  return Failures.load() == 0 ? 0 : 1;
}
