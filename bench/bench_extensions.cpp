//===- bench/bench_extensions.cpp - Paraprox-suite extension apps -------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Beyond the paper's Table 1: the remaining stencil benchmarks of the
// Paraprox suite the paper quotes in section 4.3 ("more than 1.7x for
// ConvolutionSeparable to more than 3x for Gaussian and Mean"), plus
// Sharpen. For each extension app this prints the same (speedup, error)
// rows as Fig. 10, comparing our input perforation against Paraprox
// output approximation, and the Pareto front.
//
// Expected shapes:
//  * Mean behaves like Gaussian (same 3x3 footprint and reuse): similar
//    speedup band, low Rows1/Stencil1 error;
//  * ConvolutionSeparable lands in Paraprox's "more than 1.7x" band,
//    below the 3x3 single-pass filters: each 1D pass has less reuse per
//    fetched element and the intermediate buffer round-trips through
//    global memory untouched by perforation;
//  * our schemes dominate output approximation on error at comparable
//    speedup, as for the Table 1 apps.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "perforation/Pareto.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::printf("=== Extension suite: Paraprox benchmarks beyond Table 1 "
              "===\n");
  std::printf("dataset: %u inputs, %ux%u\n\n", S.NumImages, S.ImageSize,
              S.ImageSize);

  for (const char *AppName : {"mean", "sharpen", "convsep"}) {
    auto App = makeApp(AppName);
    std::vector<Workload> Workloads = workloadsFor(*App, S);

    std::vector<VariantSpec> Variants;
    Variants.push_back(VariantSpec::baseline());
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Rows, 2));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Rows, 4));
    Variants.push_back(
        VariantSpec::outputApprox(perf::OutputSchemeKind::Center, 2));
    Variants.push_back(
        VariantSpec::perforated(perf::PerforationScheme::stencil()));
    Variants.push_back(
        VariantSpec::perforated(perf::PerforationScheme::rows(
            2, perf::ReconstructionKind::NearestNeighbor)));
    Variants.push_back(
        VariantSpec::perforated(perf::PerforationScheme::rows(
            2, perf::ReconstructionKind::Linear)));

    std::vector<perf::TradeoffPoint> Points;
    std::printf("%s:\n  %-16s %10s %10s\n", AppName, "config", "speedup",
                "mean err");
    for (const VariantSpec &V : Variants) {
      Expected<VariantEval> E =
          evaluateVariant(*App, V, {16, 16}, Workloads);
      if (!E) {
        std::printf("  %-16s infeasible: %s\n", V.Label.c_str(),
                    E.error().message().c_str());
        continue;
      }
      std::printf("  %-16s %9.2fx %10.4f\n", E->Label.c_str(),
                  E->SpeedupVsBaseline, E->ErrorSummary.Mean);
      Points.push_back(
          {E->Label, E->SpeedupVsBaseline, E->ErrorSummary.Mean});
    }

    std::printf("  Pareto front:");
    for (size_t I : perf::paretoFront(Points))
      std::printf(" %s", Points[I].Label.c_str());
    std::printf("\n\n");
  }
  return 0;
}
