//===- bench/bench_probe.cpp - Cost-model diagnostic ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: prints the raw simulator counters and cost
// decomposition per app and variant, used to understand and calibrate the
// performance model (see DeviceConfig.h).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

void probe(const App &TheApp, const char *Label, const rt::Variant &BK,
           rt::Session &S, const Workload &W) {
  Expected<RunOutcome> R = TheApp.run(S, BK, W);
  if (!R) {
    std::printf("  %-12s ERROR: %s\n", Label, R.error().message().c_str());
    return;
  }
  const sim::Counters &C = R->Report.Totals;
  std::printf("  %-12s cyc=%10.0f comp=%10.0f mem=%10.0f | rdTx=%8llu "
              "wrTx=%7llu loc=%9llu locWf=%8llu bank+=%7llu alu=%10llu "
              "priv=%9llu\n",
              Label, R->Report.Cycles, R->Report.ComputeCycles,
              R->Report.MemoryCycles,
              static_cast<unsigned long long>(C.GlobalReadTransactions),
              static_cast<unsigned long long>(C.GlobalWriteTransactions),
              static_cast<unsigned long long>(C.LocalAccesses),
              static_cast<unsigned long long>(C.LocalWavefrontOps),
              static_cast<unsigned long long>(C.BankConflictExtra),
              static_cast<unsigned long long>(C.AluOps),
              static_cast<unsigned long long>(C.PrivateAccesses));
}

} // namespace

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  for (const auto &App : makeAllApps()) {
    Workload W = App->name() == "hotspot"
                     ? makeHotspotWorkload(S.ImageSize, 7, 1)
                     : makeImageWorkload(img::generateImage(
                           img::ImageClass::Smooth, S.ImageSize,
                           S.ImageSize, 42));
    std::printf("%s:\n", App->name().c_str());
    // One session per app: the four variants below share one source
    // compile.
    rt::Session S;
    probe(*App, "plain", cantFail(App->buildPlain(S, {16, 16})), S, W);
    probe(*App, "baseline", cantFail(App->buildBaseline(S, {16, 16})), S,
          W);
    probe(*App, "rows1",
          cantFail(App->buildPerforated(
              S,
              perf::PerforationScheme::rows(
                  2, perf::ReconstructionKind::NearestNeighbor),
              {16, 16})),
          S, W);
    Expected<rt::Variant> Stencil = App->buildPerforated(
        S, perf::PerforationScheme::stencil(), {16, 16});
    if (Stencil)
      probe(*App, "stencil1", *Stencil, S, W);
  }
  return 0;
}
