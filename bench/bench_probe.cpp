//===- bench/bench_probe.cpp - Cost-model diagnostic ------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Not a paper figure: prints the raw simulator counters and cost
// decomposition per app and variant, used to understand and calibrate the
// performance model (see DeviceConfig.h).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

namespace {

void probe(const App &TheApp, const char *Label, const BuiltKernel &BK,
           rt::Context &Ctx, const Workload &W) {
  Expected<RunOutcome> R = TheApp.run(Ctx, BK, W);
  if (!R) {
    std::printf("  %-12s ERROR: %s\n", Label, R.error().message().c_str());
    return;
  }
  const sim::Counters &C = R->Report.Totals;
  std::printf("  %-12s cyc=%10.0f comp=%10.0f mem=%10.0f | rdTx=%8llu "
              "wrTx=%7llu loc=%9llu locWf=%8llu bank+=%7llu alu=%10llu "
              "priv=%9llu\n",
              Label, R->Report.Cycles, R->Report.ComputeCycles,
              R->Report.MemoryCycles,
              static_cast<unsigned long long>(C.GlobalReadTransactions),
              static_cast<unsigned long long>(C.GlobalWriteTransactions),
              static_cast<unsigned long long>(C.LocalAccesses),
              static_cast<unsigned long long>(C.LocalWavefrontOps),
              static_cast<unsigned long long>(C.BankConflictExtra),
              static_cast<unsigned long long>(C.AluOps),
              static_cast<unsigned long long>(C.PrivateAccesses));
}

} // namespace

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  for (const auto &App : makeAllApps()) {
    Workload W = App->name() == "hotspot"
                     ? makeHotspotWorkload(S.ImageSize, 7, 1)
                     : makeImageWorkload(img::generateImage(
                           img::ImageClass::Smooth, S.ImageSize,
                           S.ImageSize, 42));
    std::printf("%s:\n", App->name().c_str());
    {
      rt::Context Ctx;
      probe(*App, "plain", cantFail(App->buildPlain(Ctx, {16, 16})), Ctx, W);
    }
    {
      rt::Context Ctx;
      probe(*App, "baseline", cantFail(App->buildBaseline(Ctx, {16, 16})),
            Ctx, W);
    }
    {
      rt::Context Ctx;
      probe(*App, "rows1",
            cantFail(App->buildPerforated(
                Ctx,
                perf::PerforationScheme::rows(
                    2, perf::ReconstructionKind::NearestNeighbor),
                {16, 16})),
            Ctx, W);
    }
    {
      rt::Context Ctx;
      Expected<BuiltKernel> BK = App->buildPerforated(
          Ctx, perf::PerforationScheme::stencil(), {16, 16});
      if (BK)
        probe(*App, "stencil1", *BK, Ctx, W);
    }
  }
  return 0;
}
