//===- bench/BenchUtil.cpp -------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "img/PGM.h"
#include "support/ParallelFor.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

BenchSettings BenchSettings::fromEnvironment() {
  BenchSettings S;
  if (const char *E = std::getenv("KPERF_IMG_SIZE"))
    S.ImageSize = static_cast<unsigned>(std::atoi(E));
  if (const char *E = std::getenv("KPERF_NUM_IMAGES"))
    S.NumImages = static_cast<unsigned>(std::atoi(E));
  if (const char *E = std::getenv("KPERF_IMG_DIR"))
    S.ImageDir = E;
  if (S.ImageSize < 32)
    S.ImageSize = 32;
  if (S.NumImages < 1)
    S.NumImages = 1;
  return S;
}

VariantSpec VariantSpec::baseline() {
  VariantSpec V;
  V.K = Kind::Baseline;
  V.Label = "Baseline";
  return V;
}

VariantSpec VariantSpec::perforated(perf::PerforationScheme S) {
  VariantSpec V;
  V.K = Kind::Perforated;
  V.Scheme = S;
  V.Label = S.str();
  return V;
}

VariantSpec VariantSpec::outputApprox(perf::OutputSchemeKind K,
                                      unsigned N) {
  VariantSpec V;
  V.K = Kind::OutputApprox;
  V.OutKind = K;
  V.ApproxPerComputed = N;
  const char *KindName = K == perf::OutputSchemeKind::Rows   ? "Rows"
                         : K == perf::OutputSchemeKind::Cols ? "Cols"
                                                             : "Center";
  V.Label = format("Paraprox-%s%u", KindName, N / 2);
  return V;
}

namespace {

Expected<rt::Variant> buildVariant(const App &TheApp, rt::Session &S,
                                   const VariantSpec &Variant,
                                   sim::Range2 Local) {
  switch (Variant.K) {
  case VariantSpec::Kind::Baseline:
    return TheApp.buildBaseline(S, Local);
  case VariantSpec::Kind::Plain:
    return TheApp.buildPlain(S, Local);
  case VariantSpec::Kind::Perforated:
    return TheApp.buildPerforated(S, Variant.Scheme, Local);
  case VariantSpec::Kind::OutputApprox:
    return TheApp.buildOutputApprox(S, Variant.OutKind,
                                    Variant.ApproxPerComputed, Local);
  }
  return makeError("unknown variant kind");
}

} // namespace

namespace {

/// The body shared by the serial and parallel evaluation paths: builds
/// the baseline and the variant in \p S (served from the session cache
/// when another worker already built them) and measures time + errors.
Expected<VariantEval> evaluateVariantIn(rt::Session &S, const App &TheApp,
                                        const VariantSpec &Variant,
                                        sim::Range2 Local,
                                        const std::vector<Workload>
                                            &Workloads) {
  if (Workloads.empty())
    return makeError("evaluateVariant: no workloads");

  VariantEval Eval;
  Eval.Label = Variant.Label;

  Expected<rt::Variant> Base = TheApp.buildBaseline(S, Local);
  if (!Base)
    return Base.takeError();
  Expected<rt::Variant> BK = buildVariant(TheApp, S, Variant, Local);
  if (!BK)
    return BK.takeError();

  // Timing: baseline vs. variant on the first workload (speedup does not
  // depend on input content, paper section 6.2).
  Expected<RunOutcome> RB = TheApp.run(S, *Base, Workloads.front());
  if (!RB)
    return RB.takeError();
  Eval.BaselineTimeMs = RB->Report.TimeMs;
  Expected<RunOutcome> RV = TheApp.run(S, *BK, Workloads.front());
  if (!RV)
    return RV.takeError();
  Eval.TimeMs = RV->Report.TimeMs;
  Eval.SpeedupVsBaseline = Eval.BaselineTimeMs / Eval.TimeMs;

  // Error distribution over all workloads, reusing the built variant.
  for (const Workload &W : Workloads) {
    Expected<RunOutcome> R = TheApp.run(S, *BK, W);
    if (!R)
      return R.takeError();
    Eval.Errors.push_back(TheApp.score(TheApp.reference(W), R->Output));
  }
  Eval.ErrorSummary = summarize(Eval.Errors);
  return Eval;
}

} // namespace

Expected<VariantEval>
bench::evaluateVariant(const App &TheApp, const VariantSpec &Variant,
                       sim::Range2 Local,
                       const std::vector<Workload> &Workloads) {
  // One session for the whole evaluation: the source compiles once and
  // the variant is built once (the baseline shares the compile through
  // the session's cache).
  rt::Session S;
  return evaluateVariantIn(S, TheApp, Variant, Local, Workloads);
}

std::vector<Expected<VariantEval>> bench::evaluateVariantsParallel(
    const App &TheApp, const std::vector<VariantSpec> &Variants,
    sim::Range2 Local, const std::vector<Workload> &Workloads,
    unsigned Jobs, rt::SessionStats *StatsOut) {
  // One shared session: compiles serialize (and dedupe) inside it, the
  // simulator runs are per-worker, and every run's buffers come from the
  // session free list.
  rt::Session S;
  std::vector<std::optional<Expected<VariantEval>>> Slots(Variants.size());
  parallelFor(Variants.size(), Jobs, [&](size_t I) {
    Slots[I].emplace(
        evaluateVariantIn(S, TheApp, Variants[I], Local, Workloads));
  });

  if (StatsOut)
    *StatsOut = S.stats();
  std::vector<Expected<VariantEval>> Results;
  Results.reserve(Slots.size());
  for (auto &Slot : Slots)
    Results.push_back(std::move(*Slot));
  return Results;
}

namespace {

/// Parses a job-count value strictly; a malformed value is a usage
/// error, not a silent fallback (0 would mean "every hardware thread").
unsigned parseJobsValue(const char *Value, const char *Origin) {
  char *End = nullptr;
  long Jobs = std::strtol(Value, &End, 10);
  if (End == Value || *End != '\0' || Jobs < 0) {
    std::fprintf(stderr,
                 "error: bad %s value '%s' (expected a non-negative "
                 "integer; 0 = hardware threads)\n",
                 Origin, Value);
    std::exit(2);
  }
  return static_cast<unsigned>(Jobs);
}

} // namespace

unsigned bench::parseJobsFlag(int Argc, char **Argv, unsigned Default) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--jobs" && I + 1 < Argc)
      return parseJobsValue(Argv[I + 1], "--jobs");
    if (A.rfind("--jobs=", 0) == 0)
      return parseJobsValue(A.c_str() + 7, "--jobs");
  }
  if (const char *E = std::getenv("KPERF_JOBS"))
    return parseJobsValue(E, "KPERF_JOBS");
  return Default;
}

namespace {

/// Center-crops \p In to the largest multiple of 128 in each dimension,
/// so that every work-group shape the benchmarks sweep divides it.
/// Returns an empty image if \p In is smaller than 128x128.
img::Image cropToWorkGroupMultiple(const img::Image &In) {
  unsigned W = In.width() / 128 * 128;
  unsigned H = In.height() / 128 * 128;
  if (W == 0 || H == 0)
    return img::Image();
  unsigned X0 = (In.width() - W) / 2;
  unsigned Y0 = (In.height() - H) / 2;
  img::Image Out(W, H);
  for (unsigned Y = 0; Y < H; ++Y)
    for (unsigned X = 0; X < W; ++X)
      Out.set(X, Y, In.at(X0 + X, Y0 + Y));
  return Out;
}

/// Loads up to \p Limit PGM images from \p Dir (sorted by filename for
/// reproducibility), cropped for the benchmark work-group shapes.
std::vector<img::Image> loadPgmDataset(const std::string &Dir,
                                       unsigned Limit) {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec))
    if (Entry.is_regular_file() && Entry.path().extension() == ".pgm")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());

  std::vector<img::Image> Images;
  for (const std::string &Path : Paths) {
    if (Images.size() >= Limit)
      break;
    Expected<img::Image> I = img::readPGM(Path);
    if (!I) {
      std::fprintf(stderr, "warning: skipping %s: %s\n", Path.c_str(),
                   I.error().message().c_str());
      continue;
    }
    img::Image Cropped = cropToWorkGroupMultiple(*I);
    if (Cropped.size() == 0) {
      std::fprintf(stderr, "warning: skipping %s: smaller than 128x128\n",
                   Path.c_str());
      continue;
    }
    Images.push_back(std::move(Cropped));
  }
  return Images;
}

} // namespace

std::vector<Workload> bench::workloadsFor(const App &TheApp,
                                          const BenchSettings &S) {
  std::vector<Workload> Workloads;
  if (TheApp.name() == "hotspot") {
    // Eight input sets differing in size (paper 6.2), scaled down with
    // the benchmark image size.
    unsigned Base = std::max(32u, S.ImageSize / 4);
    for (unsigned I = 0; I < 8; ++I) {
      unsigned Size = std::min(Base * (1u + I / 2), S.ImageSize);
      Workloads.push_back(
          makeHotspotWorkload(Size, 1000 + I, /*Iterations=*/4));
    }
    return Workloads;
  }
  std::vector<img::Image> Images;
  if (!S.ImageDir.empty()) {
    Images = loadPgmDataset(S.ImageDir, S.NumImages);
    if (Images.empty())
      std::fprintf(stderr,
                   "warning: no usable .pgm images in %s, using the "
                   "synthetic dataset\n",
                   S.ImageDir.c_str());
  }
  if (Images.empty())
    Images = img::generateDataset(S.NumImages, S.ImageSize, S.ImageSize,
                                  20180224);
  for (img::Image &I : Images)
    Workloads.push_back(makeImageWorkload(std::move(I)));
  return Workloads;
}

void bench::printSummaryHeader() {
  std::printf("%-10s %-14s %8s | %8s %8s %8s %8s %8s %8s\n", "app",
              "config", "speedup", "min", "q1", "median", "q3", "max",
              "mean");
  std::printf("%.*s\n", 100,
              "--------------------------------------------------------"
              "--------------------------------------------");
}

void bench::printSummaryRow(const std::string &Name,
                            const std::string &Config, double Speedup,
                            const Summary &S) {
  std::printf("%-10s %-14s %7.2fx | %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
              Name.c_str(), Config.c_str(), Speedup, S.Min, S.Q1, S.Median,
              S.Q3, S.Max, S.Mean);
}

//===--- Machine-readable output (--json) -------------------------------------//

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

} // namespace

void JsonRecord::add(const std::string &Key, const std::string &Value) {
  if (!Body.empty())
    Body += ", ";
  Body += format("\"%s\": \"%s\"", jsonEscape(Key).c_str(),
                 jsonEscape(Value).c_str());
}

void JsonRecord::add(const std::string &Key, const char *Value) {
  add(Key, std::string(Value));
}

void JsonRecord::add(const std::string &Key, double Value) {
  if (!Body.empty())
    Body += ", ";
  Body += format("\"%s\": %.6g", jsonEscape(Key).c_str(), Value);
}

void JsonRecord::add(const std::string &Key, unsigned long long Value) {
  if (!Body.empty())
    Body += ", ";
  Body += format("\"%s\": %llu", jsonEscape(Key).c_str(), Value);
}

bool bench::parseJsonFlag(int Argc, char **Argv,
                          const std::string &BenchName,
                          std::string &Path) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json") {
      Path = "BENCH_" + BenchName + ".json";
      return true;
    }
    if (A.rfind("--json=", 0) == 0) {
      Path = A.substr(7);
      return true;
    }
  }
  return false;
}

bool bench::writeJsonRecords(const std::string &Path,
                             const std::vector<JsonRecord> &Records) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fputs("[\n", F);
  for (size_t I = 0; I < Records.size(); ++I)
    std::fprintf(F, "  {%s}%s\n", Records[I].body().c_str(),
                 I + 1 < Records.size() ? "," : "");
  std::fputs("]\n", F);
  std::fclose(F);
  std::printf("wrote %s (%zu records)\n", Path.c_str(), Records.size());
  return true;
}
