//===- bench/BenchUtil.cpp -------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "img/PGM.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

BenchSettings BenchSettings::fromEnvironment() {
  BenchSettings S;
  if (const char *E = std::getenv("KPERF_IMG_SIZE"))
    S.ImageSize = static_cast<unsigned>(std::atoi(E));
  if (const char *E = std::getenv("KPERF_NUM_IMAGES"))
    S.NumImages = static_cast<unsigned>(std::atoi(E));
  if (const char *E = std::getenv("KPERF_IMG_DIR"))
    S.ImageDir = E;
  if (S.ImageSize < 32)
    S.ImageSize = 32;
  if (S.NumImages < 1)
    S.NumImages = 1;
  return S;
}

VariantSpec VariantSpec::baseline() {
  VariantSpec V;
  V.K = Kind::Baseline;
  V.Label = "Baseline";
  return V;
}

VariantSpec VariantSpec::perforated(perf::PerforationScheme S) {
  VariantSpec V;
  V.K = Kind::Perforated;
  V.Scheme = S;
  V.Label = S.str();
  return V;
}

VariantSpec VariantSpec::outputApprox(perf::OutputSchemeKind K,
                                      unsigned N) {
  VariantSpec V;
  V.K = Kind::OutputApprox;
  V.OutKind = K;
  V.ApproxPerComputed = N;
  const char *KindName = K == perf::OutputSchemeKind::Rows   ? "Rows"
                         : K == perf::OutputSchemeKind::Cols ? "Cols"
                                                             : "Center";
  V.Label = format("Paraprox-%s%u", KindName, N / 2);
  return V;
}

namespace {

Expected<BuiltKernel> buildVariant(const App &TheApp, rt::Context &Ctx,
                                   const VariantSpec &Variant,
                                   sim::Range2 Local) {
  switch (Variant.K) {
  case VariantSpec::Kind::Baseline:
    return TheApp.buildBaseline(Ctx, Local);
  case VariantSpec::Kind::Plain:
    return TheApp.buildPlain(Ctx, Local);
  case VariantSpec::Kind::Perforated:
    return TheApp.buildPerforated(Ctx, Variant.Scheme, Local);
  case VariantSpec::Kind::OutputApprox:
    return TheApp.buildOutputApprox(Ctx, Variant.OutKind,
                                    Variant.ApproxPerComputed, Local);
  }
  return makeError("unknown variant kind");
}

} // namespace

Expected<VariantEval>
bench::evaluateVariant(const App &TheApp, const VariantSpec &Variant,
                       sim::Range2 Local,
                       const std::vector<Workload> &Workloads) {
  if (Workloads.empty())
    return makeError("evaluateVariant: no workloads");

  VariantEval Eval;
  Eval.Label = Variant.Label;

  // Timing: baseline vs. variant on the first workload (speedup does not
  // depend on input content, paper section 6.2).
  {
    rt::Context Ctx;
    Expected<BuiltKernel> Base = TheApp.buildBaseline(Ctx, Local);
    if (!Base)
      return Base.takeError();
    Expected<RunOutcome> RB = TheApp.run(Ctx, *Base, Workloads.front());
    if (!RB)
      return RB.takeError();
    Eval.BaselineTimeMs = RB->Report.TimeMs;
  }
  {
    rt::Context Ctx;
    Expected<BuiltKernel> BK = buildVariant(TheApp, Ctx, Variant, Local);
    if (!BK)
      return BK.takeError();
    Expected<RunOutcome> RV = TheApp.run(Ctx, *BK, Workloads.front());
    if (!RV)
      return RV.takeError();
    Eval.TimeMs = RV->Report.TimeMs;
  }
  Eval.SpeedupVsBaseline = Eval.BaselineTimeMs / Eval.TimeMs;

  // Error distribution over all workloads.
  for (const Workload &W : Workloads) {
    rt::Context Ctx;
    Expected<BuiltKernel> BK = buildVariant(TheApp, Ctx, Variant, Local);
    if (!BK)
      return BK.takeError();
    Expected<RunOutcome> R = TheApp.run(Ctx, *BK, W);
    if (!R)
      return R.takeError();
    Eval.Errors.push_back(TheApp.score(TheApp.reference(W), R->Output));
  }
  Eval.ErrorSummary = summarize(Eval.Errors);
  return Eval;
}

namespace {

/// Center-crops \p In to the largest multiple of 128 in each dimension,
/// so that every work-group shape the benchmarks sweep divides it.
/// Returns an empty image if \p In is smaller than 128x128.
img::Image cropToWorkGroupMultiple(const img::Image &In) {
  unsigned W = In.width() / 128 * 128;
  unsigned H = In.height() / 128 * 128;
  if (W == 0 || H == 0)
    return img::Image();
  unsigned X0 = (In.width() - W) / 2;
  unsigned Y0 = (In.height() - H) / 2;
  img::Image Out(W, H);
  for (unsigned Y = 0; Y < H; ++Y)
    for (unsigned X = 0; X < W; ++X)
      Out.set(X, Y, In.at(X0 + X, Y0 + Y));
  return Out;
}

/// Loads up to \p Limit PGM images from \p Dir (sorted by filename for
/// reproducibility), cropped for the benchmark work-group shapes.
std::vector<img::Image> loadPgmDataset(const std::string &Dir,
                                       unsigned Limit) {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec))
    if (Entry.is_regular_file() && Entry.path().extension() == ".pgm")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());

  std::vector<img::Image> Images;
  for (const std::string &Path : Paths) {
    if (Images.size() >= Limit)
      break;
    Expected<img::Image> I = img::readPGM(Path);
    if (!I) {
      std::fprintf(stderr, "warning: skipping %s: %s\n", Path.c_str(),
                   I.error().message().c_str());
      continue;
    }
    img::Image Cropped = cropToWorkGroupMultiple(*I);
    if (Cropped.size() == 0) {
      std::fprintf(stderr, "warning: skipping %s: smaller than 128x128\n",
                   Path.c_str());
      continue;
    }
    Images.push_back(std::move(Cropped));
  }
  return Images;
}

} // namespace

std::vector<Workload> bench::workloadsFor(const App &TheApp,
                                          const BenchSettings &S) {
  std::vector<Workload> Workloads;
  if (TheApp.name() == "hotspot") {
    // Eight input sets differing in size (paper 6.2), scaled down with
    // the benchmark image size.
    unsigned Base = std::max(32u, S.ImageSize / 4);
    for (unsigned I = 0; I < 8; ++I) {
      unsigned Size = std::min(Base * (1u + I / 2), S.ImageSize);
      Workloads.push_back(
          makeHotspotWorkload(Size, 1000 + I, /*Iterations=*/4));
    }
    return Workloads;
  }
  std::vector<img::Image> Images;
  if (!S.ImageDir.empty()) {
    Images = loadPgmDataset(S.ImageDir, S.NumImages);
    if (Images.empty())
      std::fprintf(stderr,
                   "warning: no usable .pgm images in %s, using the "
                   "synthetic dataset\n",
                   S.ImageDir.c_str());
  }
  if (Images.empty())
    Images = img::generateDataset(S.NumImages, S.ImageSize, S.ImageSize,
                                  20180224);
  for (img::Image &I : Images)
    Workloads.push_back(makeImageWorkload(std::move(I)));
  return Workloads;
}

void bench::printSummaryHeader() {
  std::printf("%-10s %-14s %8s | %8s %8s %8s %8s %8s %8s\n", "app",
              "config", "speedup", "min", "q1", "median", "q3", "max",
              "mean");
  std::printf("%.*s\n", 100,
              "--------------------------------------------------------"
              "--------------------------------------------");
}

void bench::printSummaryRow(const std::string &Name,
                            const std::string &Config, double Speedup,
                            const Summary &S) {
  std::printf("%-10s %-14s %7.2fx | %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
              Name.c_str(), Config.c_str(), Speedup, S.Min, S.Q1, S.Median,
              S.Q3, S.Max, S.Mean);
}
