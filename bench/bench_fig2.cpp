//===- bench/bench_fig2.cpp - Paper Fig. 2 -----------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 2 (original / perforated / approximated data): an
// identity kernel is run through the Rows1 perforation machinery, so its
// output *is* the reconstructed input tile -- exactly what the kernel
// body of any perforated application observes. Writes three PGMs next to
// the working directory and prints the reconstruction error per image
// class and reconstruction technique.
//
//   fig2_original.pgm      the input;
//   fig2_perforated.pgm    skipped rows blacked out (Fig. 2b);
//   fig2_reconstructed.pgm the identity kernel's output (Fig. 2c).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "img/PGM.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;

namespace {

const char *IdentitySource = R"(
kernel void identity(global const float* in, global float* out,
                     int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * w + x] = in[y * w + x];
}
)";

/// Runs the identity kernel perforated with \p Scheme on the shared
/// session; the output equals the reconstructed input. Variants dedupe
/// through the session's cache, so the per-class loop below recompiles
/// nothing, and the workload buffers go back to the free list.
img::Image reconstruct(rt::Session &S, const img::Image &In,
                       perf::PerforationScheme Scheme) {
  rt::Kernel K = cantFail(S.compile(IdentitySource, "identity"));
  perf::PerforationPlan Plan;
  Plan.Scheme = Scheme;
  rt::Variant V = cantFail(S.perforate(K, Plan));
  unsigned InBuf = S.createBufferFrom(In.pixels());
  unsigned OutBuf = S.createBuffer(In.size());
  cantFail(S.launch(V, {In.width(), In.height()},
                    {rt::arg::buffer(InBuf), rt::arg::buffer(OutBuf),
                     rt::arg::i32(static_cast<int32_t>(In.width())),
                     rt::arg::i32(static_cast<int32_t>(In.height()))}));
  img::Image Out(In.width(), In.height());
  Out.pixels() = S.buffer(OutBuf).downloadFloats();
  S.releaseBuffer(InBuf);
  S.releaseBuffer(OutBuf);
  return Out;
}

/// Fig. 2b: the raw perforated data, skipped rows black.
img::Image blackOutSkippedRows(const img::Image &In, unsigned Period) {
  img::Image Out = In;
  for (unsigned Y = 0; Y < In.height(); ++Y) {
    if (Y % Period == 0)
      continue;
    for (unsigned X = 0; X < In.width(); ++X)
      Out.set(X, Y, 0.0f);
  }
  return Out;
}

} // namespace

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  unsigned Size = S.ImageSize;
  std::printf("=== Figure 2: original / perforated / reconstructed "
              "===\n\n");

  // One session serves every reconstruction below: one source compile,
  // one variant per (scheme, recon) pair.
  rt::Session Session;
  img::Image Exemplar =
      img::generateImage(img::ImageClass::Natural, Size, Size, 3);
  perf::PerforationScheme Rows1Nn = perf::PerforationScheme::rows(
      2, perf::ReconstructionKind::NearestNeighbor);
  img::Image Reconstructed = reconstruct(Session, Exemplar, Rows1Nn);

  cantFail(Error(img::writePGM(Exemplar, "fig2_original.pgm")));
  cantFail(Error(img::writePGM(blackOutSkippedRows(Exemplar, 2),
                               "fig2_perforated.pgm")));
  cantFail(
      Error(img::writePGM(Reconstructed, "fig2_reconstructed.pgm")));
  std::printf("wrote fig2_original.pgm, fig2_perforated.pgm, "
              "fig2_reconstructed.pgm (%ux%u)\n\n",
              Size, Size);

  // Reconstruction quality of the raw input data per class x technique
  // (the paper's point: reconstructed data is visually close to the
  // original because real content has spatial locality).
  std::printf("%-10s %12s %12s\n", "class", "Rows1:NN MRE",
              "Rows1:LI MRE");
  for (img::ImageClass C :
       {img::ImageClass::Flat, img::ImageClass::Smooth,
        img::ImageClass::Natural, img::ImageClass::Pattern,
        img::ImageClass::Noise}) {
    img::Image In = img::generateImage(C, Size, Size, 9);
    double Nn = img::meanRelativeError(
        In.pixels(), reconstruct(Session, In, Rows1Nn).pixels());
    double Li = img::meanRelativeError(
        In.pixels(),
        reconstruct(Session, In,
                    perf::PerforationScheme::rows(
                        2, perf::ReconstructionKind::Linear))
            .pixels());
    std::printf("%-10s %12.4f %12.4f\n", img::imageClassName(C), Nn,
                Li);
  }
  std::printf("\nsession: %s\n", Session.stats().str().c_str());
  std::printf("\nExpected shape: reconstruction error rises with spatial "
              "frequency\n(flat lowest, noise worst); LI clearly beats NN "
              "on smooth and natural\ncontent, while on flat-with-noise "
              "and pure noise the two are comparable\n(there is no "
              "structure for interpolation to exploit).\n");
  return 0;
}
