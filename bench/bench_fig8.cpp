//===- bench/bench_fig8.cpp - Paper Fig. 8 ----------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8: runtime vs. mean relative error for different
// perforation scheme / reconstruction configurations on Gaussian,
// Inversion, and Median:
//   Rows1:NN    perforate every other row, nearest-neighbor
//   Rows2:NN    perforate 3 of 4 rows, nearest-neighbor
//   Rows1:LI    perforate every other row, linear interpolation
//   Stencil1:NN perforate the work-group halo only
//
// Expected shapes (paper 6.3): error(Rows2) ~ 2x error(Rows1); LI lowers
// the Rows1 error by ~20-45%; Stencil1 error < 1%.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::printf("=== Figure 8: perforation schemes with different "
              "parameters ===\n");
  std::printf("dataset: %u inputs, %ux%u\n\n", S.NumImages, S.ImageSize,
              S.ImageSize);

  // The paper's four configurations plus two extensions (Cols1, Grid1).
  const perf::PerforationScheme Schemes[] = {
      perf::PerforationScheme::rows(2,
                                    perf::ReconstructionKind::NearestNeighbor),
      perf::PerforationScheme::rows(4,
                                    perf::ReconstructionKind::NearestNeighbor),
      perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
      perf::PerforationScheme::stencil(),
      perf::PerforationScheme::cols(2,
                                    perf::ReconstructionKind::NearestNeighbor),
      perf::PerforationScheme::grid(2, perf::ReconstructionKind::Linear),
  };

  for (const char *AppName : {"gaussian", "inversion", "median"}) {
    auto App = makeApp(AppName);
    std::vector<Workload> Workloads = workloadsFor(*App, S);
    std::printf("%s:\n", AppName);
    std::printf("  %-14s %12s %12s %12s\n", "config", "runtime[ms]",
                "mean MRE", "median MRE");
    for (const perf::PerforationScheme &Scheme : Schemes) {
      if (Scheme.Kind == perf::SchemeKind::Stencil &&
          std::string(AppName) == "inversion")
        continue; // 1x1 filter: stencil degenerates (paper Fig. 8b).
      Expected<VariantEval> E = evaluateVariant(
          *App, VariantSpec::perforated(Scheme), {16, 16}, Workloads);
      if (!E) {
        std::printf("  %-14s ERROR: %s\n", Scheme.str().c_str(),
                    E.error().message().c_str());
        continue;
      }
      std::printf("  %-14s %12.4f %12.4f %12.4f\n", E->Label.c_str(),
                  E->TimeMs, E->ErrorSummary.Mean, E->ErrorSummary.Median);
    }
    std::printf("\n");
  }
  return 0;
}
