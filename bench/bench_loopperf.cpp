//===- bench/bench_loopperf.cpp - Loop-perforation stride benchmark ---------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the generalized perforate-loop(stride) IR pass on the
// loop-bearing window apps (mean's 3x3 and sobel5's 5x5 reductions).
// Section 1 perforates the *interior* loops of the plain (untiled)
// kernel -- the case the paper's input/output schemes never touch --
// and reports per-stride modeled speedup (skipped iterations skip
// their global loads) and error vs. the unmodified kernel. The cost
// model is max(compute, memory), so a stride pays off only once it
// shrinks the bottleneck axis: mean breaks even at stride 2 and gains
// at stride 3. Section 2
// runs the joint tuner search (scheme x work-group shape x stride) the
// way `kperfc tune` does and reports the winner within the error
// budget -- on mean the top configs are memory-bound on the tile
// loader, so the interior stride ties them on modeled time while
// strictly lowering the error, and the accuracy tie-break makes a
// strided variant the winner. That pins the joint search end to end.
//
// Flags: --json[=FILE] emits records {bench, app, stride, speedup,
// mre} plus a {bench: "loopperf_tune", ...} winner row with its config
// label. KPERF_IMG_SIZE overrides the 256x256 default workload edge
// (256, not the other benches' 128: mean's strided variants clear the
// tune budget at 256 but not on the smaller, boundary-heavy image).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ir/PassManager.h"
#include "perforation/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::bench;

namespace {

/// Joint-tune error budget. 0.06 rather than the CLI's 0.05 default:
/// mean's Rows4@128x2 family lands at MRE ~0.052, just past the
/// tighter budget, and this bench pins that once admitted, the strided
/// member wins (equal modeled speed, strictly lower error).
constexpr double TuneBudget = 0.06;

unsigned workloadSize() {
  if (const char *Env = std::getenv("KPERF_IMG_SIZE"))
    if (unsigned V = static_cast<unsigned>(std::atoi(Env)))
      return V;
  return 256;
}

Workload benchWorkload(unsigned Size) {
  // Seed 11 matches `kperfc tune`'s synthetic workload, so the winner
  // row below reproduces what the CLI reports on the same kernel.
  return makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, Size, Size, 11));
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "loopperf", JsonPath);
  unsigned Size = workloadSize();
  std::vector<JsonRecord> Records;

  std::printf("perforate-loop(stride) on the window apps (%ux%u)\n\n",
              Size, Size);
  std::printf("%-8s %-7s %-44s %9s %9s\n", "app", "stride", "pipeline",
              "speedup", "MRE");

  for (const char *Name : {"mean", "sobel5"}) {
    auto A = makeApp(Name);
    if (!A) {
      std::fprintf(stderr, "unknown app '%s'\n", Name);
      return 1;
    }
    const std::string Base = A->pipelineSpec();
    Workload W = benchWorkload(Size);
    rt::Session S;

    // Reference: the kernel as written under the unmodified pipeline.
    // No tiling machinery -- section 1 is pure interior-loop
    // perforation, so every skipped iteration skips its global loads.
    std::optional<RunOutcome> BR;
    for (unsigned Stride : {1u, 2u, 3u}) {
      std::string Spec = perf::jointPipelineSpec(Base, Stride);
      pcl::CompileOptions CO;
      CO.PipelineSpec = Spec;
      Expected<rt::Kernel> K =
          S.compile(A->source(), A->kernelName(), CO);
      if (!K) {
        std::fprintf(stderr, "%s: %s\n", Name,
                     K.error().message().c_str());
        return 1;
      }
      Expected<RunOutcome> R =
          A->run(S, S.accurate(*K, {16, 16}), W);
      if (!R) {
        std::fprintf(stderr, "%s: %s\n", Name,
                     R.error().message().c_str());
        return 1;
      }
      if (Stride == 1)
        BR = std::move(*R);
      const RunOutcome &Run = Stride == 1 ? *BR : *R;
      double Speedup = Run.Report.TimeMs > 0
                           ? BR->Report.TimeMs / Run.Report.TimeMs
                           : 0;
      double Mre = A->score(BR->Output, Run.Output);
      std::printf("%-8s %-7u %-44s %8.2fx %9.5f\n", Name, Stride,
                  Spec.c_str(), Speedup, Mre);
      if (Json) {
        JsonRecord Rec;
        Rec.add("bench", "loopperf");
        Rec.add("app", Name);
        Rec.add("stride", static_cast<unsigned long long>(Stride));
        Rec.add("speedup", Speedup);
        Rec.add("mre", Mre);
        Records.push_back(std::move(Rec));
      }
    }
  }

  // Joint tuner search on mean, mirroring `kperfc tune`: scheme x
  // work-group shape x stride, speedup vs. the unmodified kernel at
  // the same shape, fastest within the error budget wins.
  {
    auto A = makeApp("mean");
    const std::string Base = A->pipelineSpec();
    Workload W = benchWorkload(Size);
    rt::Session S;

    Expected<rt::Variant> Plain16 = A->buildPlain(S, {16, 16});
    if (!Plain16) {
      std::fprintf(stderr, "mean: %s\n",
                   Plain16.error().message().c_str());
      return 1;
    }
    Expected<RunOutcome> Ref = A->run(S, *Plain16, W);
    if (!Ref) {
      std::fprintf(stderr, "mean: %s\n", Ref.error().message().c_str());
      return 1;
    }

    std::map<std::pair<unsigned, unsigned>, double> AccurateMs;
    AccurateMs.emplace(std::make_pair(16u, 16u), Ref->Report.TimeMs);
    perf::EvaluateFn Evaluate =
        [&](const perf::TunerConfig &Config)
        -> Expected<perf::Measurement> {
      if (Size % Config.TileX != 0 || Size % Config.TileY != 0)
        return makeError("image not divisible by %ux%u", Config.TileX,
                         Config.TileY);
      auto Key = std::make_pair(Config.TileX, Config.TileY);
      auto Acc = AccurateMs.find(Key);
      if (Acc == AccurateMs.end()) {
        Expected<rt::Variant> P =
            A->buildPlain(S, {Config.TileX, Config.TileY});
        if (!P)
          return P.takeError();
        Expected<RunOutcome> R = A->run(S, *P, W);
        if (!R)
          return R.takeError();
        Acc = AccurateMs.emplace(Key, R->Report.TimeMs).first;
      }
      if (Config.Scheme.Kind == perf::SchemeKind::None &&
          Config.LoopStride <= 1)
        return perf::Measurement{1.0, 0.0, {}};
      A->setPipelineSpec(
          perf::jointPipelineSpec(Base, Config.LoopStride));
      Expected<rt::Variant> V = A->buildPerforated(
          S, Config.Scheme, {Config.TileX, Config.TileY});
      if (!V)
        return V.takeError();
      Expected<RunOutcome> R = A->run(S, *V, W);
      if (!R)
        return R.takeError();
      perf::Measurement M;
      M.Speedup =
          R->Report.TimeMs > 0 ? Acc->second / R->Report.TimeMs : 0;
      M.Error = A->score(Ref->Output, R->Output);
      M.PassStats = V->PassStats;
      return M;
    };

    std::vector<perf::TunerConfig> Space = perf::defaultTuningSpace();
    std::vector<perf::TunerResult> Results =
        perf::tuneExhaustive(Space, Evaluate);
    size_t Best = perf::bestWithinErrorBudget(Results, TuneBudget);
    if (Best == ~size_t(0)) {
      std::fprintf(stderr,
                   "FAIL: no configuration within budget %.3f\n",
                   TuneBudget);
      return 1;
    }
    const perf::TunerResult &Win = Results[Best];
    std::printf("\njoint tune over %zu configs, budget %.3f: %s "
                "(speedup %.2fx, MRE %.5f)\n",
                Space.size(), TuneBudget, Win.Config.str().c_str(),
                Win.M.Speedup, Win.M.Error);
    if (Win.Config.LoopStride <= 1) {
      std::fprintf(stderr, "FAIL: joint search no longer selects a "
                           "strided variant on mean\n");
      return 1;
    }
    if (Json) {
      JsonRecord Rec;
      Rec.add("bench", "loopperf_tune");
      Rec.add("app", "mean");
      Rec.add("stride",
              static_cast<unsigned long long>(Win.Config.LoopStride));
      Rec.add("speedup", Win.M.Speedup);
      Rec.add("mre", Win.M.Error);
      Rec.add("config", Win.Config.str());
      Records.push_back(std::move(Rec));
    }
  }

  if (Json && !writeJsonRecords(JsonPath, Records))
    return 1;
  return 0;
}
