//===- bench/bench_fig9.cpp - Paper Fig. 9 ----------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 9: local work-group size tuning. For Gaussian,
// Inversion, and Median, sweeps the ten work-group shapes {2x128 ...
// 128x2} for the accurate baseline, Rows1, and Stencil1 variants and
// prints runtimes normalized to the slowest configuration of each variant.
//
// Each app's whole sweep shares one rt::Session: the kernel source
// compiles once and every (variant, shape) combination compiles at most
// once -- the per-app "session:" line shows the compile counts and cache
// hit rate that used to be 30 fresh compiles per app.
//
// Expected shapes (paper 6.3): wide-x shapes beat tall-y shapes (they
// align with the memory interface / coalescing); the optimal shape differs
// between the baseline and the perforated kernels.
//
// --json[=FILE]: also emit the absolute runtimes and per-app session
// counters as a JSON array (default BENCH_fig9.json) so the performance
// trajectory can be tracked across revisions.
//
// --jobs N (or KPERF_JOBS): run the (variant, shape) sweep cells on N
// worker threads sharing the app's session. The simulated times, and
// therefore the whole table and the --json output, are identical to the
// serial run -- CI diffs the two to pin that down.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "perforation/Tuner.h"
#include "support/ParallelFor.h"

#include <cstdio>
#include <vector>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

int main(int Argc, char **Argv) {
  BenchSettings S = BenchSettings::fromEnvironment();
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "fig9", JsonPath);
  unsigned Jobs = parseJobsFlag(Argc, Argv);
  std::vector<JsonRecord> Records;

  std::printf("=== Figure 9: local work-group size tuning ===\n");
  std::printf("image %ux%u; runtimes normalized per variant (lower is "
              "better)\n\n",
              S.ImageSize, S.ImageSize);

  auto Shapes = perf::figure9WorkGroupShapes();

  for (const char *AppName : {"gaussian", "inversion", "median"}) {
    auto App = makeApp(AppName);
    Workload W = makeImageWorkload(img::generateImage(
        img::ImageClass::Natural, S.ImageSize, S.ImageSize, 9));

    struct VariantRow {
      const char *Name;
      VariantSpec Spec;
      bool Applicable = true;
    };
    std::vector<VariantRow> Variants;
    Variants.push_back({"Baseline", VariantSpec::baseline(), true});
    Variants.push_back(
        {"Rows1",
         VariantSpec::perforated(perf::PerforationScheme::rows(
             2, perf::ReconstructionKind::NearestNeighbor)),
         true});
    Variants.push_back(
        {"Stencil1",
         VariantSpec::perforated(perf::PerforationScheme::stencil()),
         std::string(AppName) != "inversion"});

    std::printf("%s:\n  %-10s", AppName, "wg");
    for (const VariantRow &V : Variants)
      if (V.Applicable)
        std::printf(" %10s", V.Name);
    std::printf("\n");

    // One session per app: every (variant, shape) build below compiles
    // its kernel at most once, from a single source compile.
    rt::Session Session;

    // Collect absolute times first so each variant can be normalized to
    // its own maximum, as the paper's per-plot normalization does. The
    // sweep cells are independent given the session's internal
    // synchronization, so they run on a worker pool: builds dedupe in
    // the variant cache, each run checks its buffers out of the session
    // free list, and each cell writes its own Times slot.
    std::vector<std::vector<double>> Times(
        Variants.size(), std::vector<double>(Shapes.size(), -1));
    auto RunCell = [&](size_t SI, size_t VI) {
      auto [X, Y] = Shapes[SI];
      Expected<rt::Variant> BK = [&]() -> Expected<rt::Variant> {
        switch (Variants[VI].Spec.K) {
        case VariantSpec::Kind::Baseline:
          return App->buildBaseline(Session, {X, Y});
        default:
          return App->buildPerforated(Session, Variants[VI].Spec.Scheme,
                                      {X, Y});
        }
      }();
      if (!BK)
        return;
      Expected<RunOutcome> R = App->run(Session, *BK, W);
      if (R)
        Times[VI][SI] = R->Report.TimeMs;
    };
    parallelFor(Shapes.size() * Variants.size(), Jobs, [&](size_t C) {
      size_t SI = C / Variants.size(), VI = C % Variants.size();
      if (Variants[VI].Applicable)
        RunCell(SI, VI);
    });
    std::vector<double> Max(Variants.size(), 0);
    for (size_t VI = 0; VI < Variants.size(); ++VI)
      for (double T : Times[VI])
        Max[VI] = std::max(Max[VI], T);

    for (size_t SI = 0; SI < Shapes.size(); ++SI) {
      std::printf("  %3ux%-6u", Shapes[SI].first, Shapes[SI].second);
      for (size_t VI = 0; VI < Variants.size(); ++VI) {
        if (!Variants[VI].Applicable)
          continue;
        double T = Times[VI][SI];
        if (T < 0)
          std::printf(" %10s", "n/a");
        else
          std::printf(" %10.3f", Max[VI] > 0 ? T / Max[VI] : 0);
        if (Json && T >= 0) {
          JsonRecord Rec;
          Rec.add("bench", "fig9");
          Rec.add("app", AppName);
          Rec.add("variant", Variants[VI].Name);
          Rec.add("wg_x", static_cast<unsigned long long>(Shapes[SI].first));
          Rec.add("wg_y",
                  static_cast<unsigned long long>(Shapes[SI].second));
          Rec.add("time_ms", T);
          Records.push_back(std::move(Rec));
        }
      }
      std::printf("\n");
    }

    // Report each variant's best shape (paper: optima differ).
    std::printf("  best:     ");
    for (size_t VI = 0; VI < Variants.size(); ++VI) {
      if (!Variants[VI].Applicable)
        continue;
      size_t Best = 0;
      for (size_t SI = 0; SI < Shapes.size(); ++SI)
        if (Times[VI][SI] >= 0 &&
            (Times[VI][Best] < 0 || Times[VI][SI] < Times[VI][Best]))
          Best = SI;
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%ux%u", Shapes[Best].first,
                    Shapes[Best].second);
      std::printf(" %10s", Buf);
    }
    const rt::SessionStats &St = Session.stats();
    std::printf("\n  session:  %s\n\n", St.str().c_str());
    if (Json) {
      JsonRecord Rec;
      Rec.add("bench", "fig9");
      Rec.add("app", AppName);
      Rec.add("source_compiles",
              static_cast<unsigned long long>(St.SourceCompiles));
      Rec.add("variant_compiles",
              static_cast<unsigned long long>(St.VariantCompiles));
      Rec.add("variant_cache_hits",
              static_cast<unsigned long long>(St.VariantCacheHits));
      Records.push_back(std::move(Rec));
    }
  }
  if (Json && !writeJsonRecords(JsonPath, Records))
    return 1;
  return 0;
}
