//===- bench/bench_schemes.cpp - Paper Figs. 2-5 visualizations -------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Renders the perforation schemes of Figures 4 and 5 (and the Paraprox
// schemes of Figure 3 by construction) as ASCII masks: '#' elements are
// fetched from global memory, '.' elements are reconstructed in local
// memory. Shows two adjacent work groups so the seamless global parity of
// the row scheme is visible (paper 4.4: "the schemes match each other").
//
//===----------------------------------------------------------------------===//

#include "perforation/Scheme.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::perf;

namespace {

void show(const char *Title, const PerforationScheme &Scheme,
          unsigned TileW, unsigned TileH, unsigned HaloX, unsigned HaloY,
          int OriginX, int OriginY) {
  std::printf("%s (tile %ux%u, halo %ux%u, origin %d,%d):\n", Title, TileW,
              TileH, HaloX, HaloY, OriginX, OriginY);
  for (const std::string &Row :
       schemeMask(Scheme, TileW, TileH, HaloX, HaloY, OriginX, OriginY))
    std::printf("  %s\n", Row.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Perforation schemes (Figures 4 and 5) ===\n\n");

  // Rows1 on two vertically adjacent 8x8 tiles with halo 1: the loaded
  // rows continue seamlessly across the group boundary.
  PerforationScheme Rows1 =
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor);
  show("Rows1, work group (0,0)", Rows1, 10, 10, 1, 1, -1, -1);
  show("Rows1, work group (0,1)", Rows1, 10, 10, 1, 1, -1, 7);

  PerforationScheme Rows2 =
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor);
  show("Rows2 (3 of 4 rows skipped)", Rows2, 10, 10, 1, 1, -1, -1);

  PerforationScheme Cols1 =
      PerforationScheme::cols(2, ReconstructionKind::NearestNeighbor);
  show("Cols1 (extension)", Cols1, 10, 10, 1, 1, -1, -1);

  // Stencil scheme of Figure 5: 6x6 tile, 3x3 stencil -> halo 1.
  show("Stencil1 (Figure 5: 6x6 tile, 3x3 stencil)",
       PerforationScheme::stencil(), 8, 8, 1, 1, -1, -1);

  PerforationScheme Grid1 =
      PerforationScheme::grid(2, ReconstructionKind::Linear);
  show("Grid1 (extension: rows x cols, bilinear reconstruction)", Grid1,
       10, 10, 1, 1, -1, -1);

  // Loaded-fraction summary per scheme.
  std::printf("loaded fraction of an 18x18 tile (halo 1):\n");
  for (const PerforationScheme &S :
       {PerforationScheme::none(), Rows1, Rows2, Cols1, Grid1,
        PerforationScheme::stencil()})
    std::printf("  %-12s %5.1f%%\n", S.str().c_str(),
                100.0 * S.loadedFraction(18, 18, 1, 1));
  return 0;
}
