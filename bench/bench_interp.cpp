//===- bench/bench_interp.cpp - Execution-tier wall-clock benchmark ---------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the *wall-clock* cost of the simulator itself (not the modeled
// GPU time) across the three execution tiers: the tree-walking reference
// interpreter, the register-allocated bytecode tier, and the batched
// work-group tier. Each of the nine applications runs its Rows2:Linear
// perforated variant (the richest codepath: loader loops, barrier,
// reconstruction) under the default cleanup pipeline on every tier;
// outputs and simulated counters are cross-checked against the tree
// walker while timing. Useful to size experiment sweeps.
//
// Flags: --json[=FILE] emits records {app, tier, wall_ms, speedup,
// outputs_identical, counters_identical}. KPERF_IMG_SIZE overrides the
// 128x128 default workload edge.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "ir/PassManager.h"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::bench;

namespace {

const char *AllAppNames[] = {"gaussian", "inversion", "median",
                             "hotspot",  "sobel3",    "sobel5",
                             "mean",     "sharpen",   "convsep"};

const sim::ExecTier AllTiers[] = {sim::ExecTier::Tree,
                                  sim::ExecTier::Bytecode,
                                  sim::ExecTier::Batched};

unsigned workloadSize() {
  if (const char *Env = std::getenv("KPERF_IMG_SIZE"))
    if (unsigned V = static_cast<unsigned>(std::atoi(Env)))
      return V;
  return 128;
}

Workload benchWorkload(const App &A, unsigned Size) {
  if (A.name() == "hotspot")
    return makeHotspotWorkload(Size, /*Seed=*/5, /*Iterations=*/1);
  return makeImageWorkload(
      img::generateImage(img::ImageClass::Natural, Size, Size, 5));
}

bool sameBytes(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

bool sameCounters(const sim::Counters &A, const sim::Counters &B) {
  return A.AluOps == B.AluOps && A.PrivateAccesses == B.PrivateAccesses &&
         A.LocalAccesses == B.LocalAccesses &&
         A.LocalWavefrontOps == B.LocalWavefrontOps &&
         A.BankConflictExtra == B.BankConflictExtra &&
         A.GlobalReadTransactions == B.GlobalReadTransactions &&
         A.GlobalWriteTransactions == B.GlobalWriteTransactions &&
         A.GlobalReads == B.GlobalReads &&
         A.GlobalWrites == B.GlobalWrites && A.Barriers == B.Barriers &&
         A.WorkGroups == B.WorkGroups && A.WorkItems == B.WorkItems;
}

/// Minimum of \p Reps timed runs after one untimed warm-up (which also
/// yields the outcome used for the parity checks).
struct TimedRun {
  double WallMs = 0;
  RunOutcome Outcome;
};

Expected<TimedRun> timeTier(const App &A, rt::Session &S,
                            const rt::Variant &V, const Workload &W,
                            sim::ExecTier Tier, int Reps) {
  S.setExecTier(Tier);
  Expected<RunOutcome> Warm = A.run(S, V, W);
  if (!Warm)
    return Warm.takeError();
  TimedRun T;
  T.Outcome = std::move(*Warm);
  T.WallMs = 1e30;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    Expected<RunOutcome> R = A.run(S, V, W);
    auto End = std::chrono::steady_clock::now();
    if (!R)
      return R.takeError();
    double Ms = std::chrono::duration<double, std::milli>(End - Start).count();
    if (Ms < T.WallMs)
      T.WallMs = Ms;
  }
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "interp", JsonPath);
  unsigned Size = workloadSize();
  std::vector<JsonRecord> Records;
  bool AllParity = true;

  std::printf("Simulator wall clock by execution tier "
              "(%ux%u, Rows2:Linear perforated, min of 3)\n\n",
              Size, Size);
  std::printf("%-10s %-9s %10s %9s %9s %9s\n", "app", "tier", "wall ms",
              "speedup", "outputs", "counters");

  for (const char *Name : AllAppNames) {
    auto A = makeApp(Name);
    if (!A) {
      std::fprintf(stderr, "unknown app '%s'\n", Name);
      return 1;
    }
    A->setPipelineSpec(ir::defaultPipelineSpec());
    Workload W = benchWorkload(*A, Size);

    rt::Session S;
    Expected<rt::Variant> V = A->buildPerforated(
        S,
        perf::PerforationScheme::rows(2, perf::ReconstructionKind::Linear),
        {16, 16});
    if (!V) {
      std::fprintf(stderr, "%s: %s\n", Name, V.error().message().c_str());
      return 1;
    }

    TimedRun Tree;
    for (sim::ExecTier Tier : AllTiers) {
      Expected<TimedRun> T = timeTier(*A, S, *V, W, Tier, /*Reps=*/3);
      if (!T) {
        std::fprintf(stderr, "%s (%s): %s\n", Name,
                     sim::execTierName(Tier), T.error().message().c_str());
        return 1;
      }
      bool SameOut = true, SameCnt = true;
      double Speedup = 1.0;
      if (Tier == sim::ExecTier::Tree) {
        Tree = std::move(*T);
      } else {
        SameOut = sameBytes(Tree.Outcome.Output, T->Outcome.Output);
        SameCnt = sameCounters(Tree.Outcome.Report.Totals,
                               T->Outcome.Report.Totals);
        Speedup = T->WallMs > 0 ? Tree.WallMs / T->WallMs : 0;
        AllParity = AllParity && SameOut && SameCnt;
      }
      const TimedRun &Shown =
          Tier == sim::ExecTier::Tree ? Tree : *T;
      std::printf("%-10s %-9s %10.3f %8.1fx %9s %9s\n", Name,
                  sim::execTierName(Tier), Shown.WallMs, Speedup,
                  SameOut ? "same" : "DIFFER", SameCnt ? "same" : "DIFFER");
      if (Json) {
        JsonRecord R;
        R.add("app", Name);
        R.add("tier", sim::execTierName(Tier));
        R.add("wall_ms", Shown.WallMs);
        R.add("speedup", Speedup);
        R.add("outputs_identical",
              static_cast<unsigned long long>(SameOut ? 1 : 0));
        R.add("counters_identical",
              static_cast<unsigned long long>(SameCnt ? 1 : 0));
        Records.push_back(std::move(R));
      }
    }
  }

  if (Json && !writeJsonRecords(JsonPath, Records))
    return 1;
  if (!AllParity) {
    std::fprintf(stderr,
                 "FAIL: a fast tier diverged from the tree walker\n");
    return 1;
  }
  return 0;
}
