//===- bench/bench_interp.cpp - Interpreter microbenchmarks -----------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the *wall-clock* cost of the
// simulator itself (not the modeled GPU time): end-to-end kernel execution
// for representative apps and variants, plus compile/transform latency.
// Useful to size experiment sweeps.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "img/Generators.h"

#include <benchmark/benchmark.h>

using namespace kperf;
using namespace kperf::apps;

namespace {

void BM_CompileGaussian(benchmark::State &State) {
  auto App = makeApp("gaussian");
  for (auto _ : State) {
    // Fresh session per iteration: this measures cold compile latency,
    // not the variant cache.
    rt::Session S;
    benchmark::DoNotOptimize(cantFail(App->buildPlain(S, {16, 16})));
  }
}
BENCHMARK(BM_CompileGaussian);

void BM_PerforateGaussian(benchmark::State &State) {
  auto App = makeApp("gaussian");
  for (auto _ : State) {
    rt::Session S;
    benchmark::DoNotOptimize(cantFail(App->buildPerforated(
        S,
        perf::PerforationScheme::rows(
            2, perf::ReconstructionKind::NearestNeighbor),
        {16, 16})));
  }
}
BENCHMARK(BM_PerforateGaussian);

void BM_RunApp(benchmark::State &State, const char *Name, bool Perforated) {
  auto App = makeApp(Name);
  unsigned Size = static_cast<unsigned>(State.range(0));
  Workload W =
      std::string(Name) == "hotspot"
          ? makeHotspotWorkload(Size, 5, 1)
          : makeImageWorkload(img::generateImage(img::ImageClass::Natural,
                                                 Size, Size, 5));
  // One session across iterations: the variant compiles once and the
  // loop measures the simulator, which is what this benchmark is for
  // (App::run checks its workload buffers out of the session free list).
  rt::Session S;
  rt::Variant V = cantFail(
      Perforated ? App->buildPerforated(
                       S,
                       perf::PerforationScheme::rows(
                           2, perf::ReconstructionKind::NearestNeighbor),
                       {16, 16})
                 : App->buildBaseline(S, {16, 16}));
  for (auto _ : State)
    benchmark::DoNotOptimize(cantFail(App->run(S, V, W)));
  State.SetItemsProcessed(State.iterations() * Size * Size);
}

void BM_GaussianBaseline(benchmark::State &State) {
  BM_RunApp(State, "gaussian", false);
}
BENCHMARK(BM_GaussianBaseline)->Arg(64)->Arg(128)->Arg(256);

void BM_GaussianRows1(benchmark::State &State) {
  BM_RunApp(State, "gaussian", true);
}
BENCHMARK(BM_GaussianRows1)->Arg(64)->Arg(128)->Arg(256);

void BM_MedianRows1(benchmark::State &State) {
  BM_RunApp(State, "median", true);
}
BENCHMARK(BM_MedianRows1)->Arg(64)->Arg(128);

void BM_HotspotBaseline(benchmark::State &State) {
  BM_RunApp(State, "hotspot", false);
}
BENCHMARK(BM_HotspotBaseline)->Arg(64)->Arg(128);

} // namespace

BENCHMARK_MAIN();
