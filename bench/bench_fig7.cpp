//===- bench/bench_fig7.cpp - Paper Fig. 7 ----------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 7: input-class sensitivity of the Median application.
// The paper shows three exemplary inputs: a flat image (error 0.12%), a
// countryside photograph (5.05%), and a high-frequency pattern (19.32%).
// The synthetic classes reproduce the same orders-of-magnitude spread.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::bench;
using namespace kperf::apps;

int main() {
  BenchSettings S = BenchSettings::fromEnvironment();
  auto App = makeApp("median");
  std::printf("=== Figure 7: Median error by input class (Rows1:NN) ===\n");
  std::printf("image size %ux%u; paper exemplars: flat 0.12%%, "
              "countryside 5.05%%, pattern 19.32%%\n\n",
              S.ImageSize, S.ImageSize);

  struct Case {
    img::ImageClass Class;
    double PaperError;
  };
  const Case Cases[] = {
      {img::ImageClass::Flat, 0.0012},
      {img::ImageClass::Smooth, 0.0505},
      {img::ImageClass::Pattern, 0.1932},
  };

  std::printf("%-10s %12s %12s\n", "class", "our MRE", "paper MRE");
  for (const Case &C : Cases) {
    // Average over a few seeds so one lucky layout does not dominate.
    double Sum = 0;
    const unsigned Seeds = 5;
    for (unsigned SeedIdx = 0; SeedIdx < Seeds; ++SeedIdx) {
      rt::Session Ctx;
      Workload W = makeImageWorkload(img::generateImage(
          C.Class, S.ImageSize, S.ImageSize, 100 + SeedIdx));
      rt::Variant BK = cantFail(App->buildPerforated(
          Ctx,
          perf::PerforationScheme::rows(
              2, perf::ReconstructionKind::NearestNeighbor),
          {16, 16}));
      RunOutcome R = cantFail(App->run(Ctx, BK, W));
      Sum += App->score(App->reference(W), R.Output);
    }
    std::printf("%-10s %12.4f %12.4f\n", img::imageClassName(C.Class),
                Sum / Seeds, C.PaperError);
  }
  return 0;
}
