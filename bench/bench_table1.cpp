//===- bench/bench_table1.cpp - Paper Table 1 -------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: the application inventory (name, domain, error
// metric), extended with the footprint the access analysis derives and the
// kernel's input-buffer count -- demonstrating that the analysis recovers
// each app's stencil shape automatically.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "perforation/AccessAnalysis.h"
#include "runtime/Context.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::apps;

int main() {
  std::printf("=== Table 1: applications used in the evaluation ===\n\n");
  std::printf("%-10s %-20s %-20s %-22s\n", "app", "domain", "error metric",
              "detected footprint");
  std::printf("%.*s\n", 78,
              "-----------------------------------------------------------"
              "--------------------");
  for (const auto &App : makeAllApps()) {
    rt::Context Ctx;
    Expected<rt::Kernel> K = Ctx.compile(App->source(), App->kernelName());
    if (!K) {
      std::printf("%-10s compile error: %s\n", App->name().c_str(),
                  K.error().message().c_str());
      continue;
    }
    Expected<perf::KernelAccessInfo> Info =
        perf::analyzeKernelAccesses(*K->F);
    std::string Footprint;
    if (Info) {
      for (const perf::BufferAccess &A : Info->Inputs) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%s[%dx%d] ",
                      A.Buffer->name().c_str(), A.DyMax - A.DyMin + 1,
                      A.DxMax - A.DxMin + 1);
        Footprint += Buf;
      }
    }
    std::printf("%-10s %-20s %-20s %-22s\n", App->name().c_str(),
                App->domain().c_str(), App->metricName(),
                Footprint.c_str());
  }
  return 0;
}
