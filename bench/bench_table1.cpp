//===- bench/bench_table1.cpp - Paper Table 1 -------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: the application inventory (name, domain, error
// metric), extended with the footprint the access analysis derives and the
// kernel's input-buffer count -- demonstrating that the analysis recovers
// each app's stencil shape automatically.
//
// All apps share one rt::Session, so each kernel source compiles exactly
// once for the whole table (the final "session:" line proves it).
//
// --json[=FILE]: also emit the table rows plus the session compile
// counters as a JSON array (default BENCH_table1.json).
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "bench/BenchUtil.h"
#include "perforation/AccessAnalysis.h"
#include "runtime/Session.h"

#include <cstdio>

using namespace kperf;
using namespace kperf::apps;
using namespace kperf::bench;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  bool Json = parseJsonFlag(Argc, Argv, "table1", JsonPath);
  std::vector<JsonRecord> Records;

  std::printf("=== Table 1: applications used in the evaluation ===\n\n");
  std::printf("%-10s %-20s %-20s %-22s\n", "app", "domain", "error metric",
              "detected footprint");
  std::printf("%.*s\n", 78,
              "-----------------------------------------------------------"
              "--------------------");
  // One session for every app: each source compiles once, and the access
  // analysis of each kernel is computed on that single compile.
  rt::Session S;
  for (const auto &App : makeAllApps()) {
    Expected<rt::Kernel> K = S.compile(App->source(), App->kernelName());
    if (!K) {
      std::printf("%-10s compile error: %s\n", App->name().c_str(),
                  K.error().message().c_str());
      continue;
    }
    Expected<perf::KernelAccessInfo> Info =
        perf::analyzeKernelAccesses(*K->F);
    std::string Footprint;
    if (Info) {
      for (const perf::BufferAccess &A : Info->Inputs) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%s[%dx%d] ",
                      A.Buffer->name().c_str(), A.DyMax - A.DyMin + 1,
                      A.DxMax - A.DxMin + 1);
        Footprint += Buf;
      }
    }
    std::printf("%-10s %-20s %-20s %-22s\n", App->name().c_str(),
                App->domain().c_str(), App->metricName(),
                Footprint.c_str());
    if (Json) {
      JsonRecord Rec;
      Rec.add("bench", "table1");
      Rec.add("app", App->name());
      Rec.add("domain", App->domain());
      Rec.add("metric", App->metricName());
      Rec.add("footprint", Footprint);
      Records.push_back(std::move(Rec));
    }
  }
  const rt::SessionStats &St = S.stats();
  std::printf("\nsession: %s\n", St.str().c_str());
  if (Json) {
    JsonRecord Rec;
    Rec.add("bench", "table1");
    Rec.add("source_compiles",
            static_cast<unsigned long long>(St.SourceCompiles));
    Rec.add("source_cache_hits",
            static_cast<unsigned long long>(St.SourceCacheHits));
    Records.push_back(std::move(Rec));
    if (!writeJsonRecords(JsonPath, Records))
      return 1;
  }
  return 0;
}
