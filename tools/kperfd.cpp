//===- tools/kperfd.cpp - Multi-tenant perforation serving daemon ------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Front-end over rt::Server: stands up the perforation serving layer with
// the nine standard-signature benchmark kernels registered as services,
// then drives it from concurrent client threads with a zipfian request
// mix -- the "compile once, serve many approximate launches behind a
// quality guarantee" deployment of the paper's end-game.
//
//   kperfd [--shards N]      lock stripes / shard sessions   (default 4)
//          [--clients N]     concurrent client threads       (default 4)
//          [--requests N]    total requests to serve         (default 360)
//          [--size N]        frame edge length               (default 128)
//          [--cache DIR]     on-disk variant cache (persists across runs;
//                            a warm restart recompiles nothing)
//          [--budget E]      per-service error budget        (default 0.05)
//          [--check-every N] quality-check cadence           (default 8)
//          [--variant-cap N] per-shard variant cache cap     (default 0)
//          [--lint-gate]     static-check every generated kernel
//          [--seed S]        request schedule seed           (default 7)
//
// The execution tier follows KPERF_EXEC_TIER, like every other launcher.
// Output: a per-service table (requests served, approximate share,
// checks, re-tunes) and the aggregated server stats line.
//
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "img/Generators.h"
#include "runtime/Server.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace kperf;

namespace {

struct ServiceDef {
  const char *Name;
  const char *Source;
};

/// The nine standard-signature kernels (in, out, w, h): the paper's image
/// apps plus the Paraprox extensions. Hotspot's ten-argument signature
/// does not fit the frame-serving plane and stays with the bench harness.
std::vector<ServiceDef> serviceDefs() {
  return {{"gaussian", apps::gaussianSource()},
          {"inversion", apps::inversionSource()},
          {"median", apps::medianSource()},
          {"sobel3", apps::sobel3Source()},
          {"sobel5", apps::sobel5Source()},
          {"mean", apps::meanSource()},
          {"sharpen", apps::sharpenSource()},
          {"convsep_row", apps::convSepRowSource()},
          {"convsep_col", apps::convSepColSource()}};
}

/// Zipf(1) sampler over \p N ranks: weight of rank R is 1/(R+1).
struct Zipf {
  std::vector<double> Cdf;
  explicit Zipf(size_t N) {
    double Total = 0;
    for (size_t I = 0; I < N; ++I)
      Total += 1.0 / static_cast<double>(I + 1);
    double Acc = 0;
    for (size_t I = 0; I < N; ++I) {
      Acc += 1.0 / static_cast<double>(I + 1) / Total;
      Cdf.push_back(Acc);
    }
  }
  size_t sample(Rng &R) const {
    double U = R.uniform();
    for (size_t I = 0; I < Cdf.size(); ++I)
      if (U < Cdf[I])
        return I;
    return Cdf.size() - 1;
  }
};

unsigned parseUnsigned(const char *Text, const char *Flag) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0') {
    std::fprintf(stderr, "kperfd: bad value '%s' for %s\n", Text, Flag);
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Clients = 4, Requests = 360, Size = 128, Seed = 7;
  rt::ServerConfig Cfg;
  double Budget = 0.05;
  unsigned CheckEvery = 8;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string Value;
    auto eat = [&](const char *Flag) {
      if (A == Flag) {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "kperfd: %s needs a value\n", Flag);
          std::exit(2);
        }
        Value = Argv[++I];
        return true;
      }
      std::string Prefix = std::string(Flag) + "=";
      if (A.rfind(Prefix, 0) == 0) {
        Value = A.substr(Prefix.size());
        return true;
      }
      return false;
    };
    if (eat("--shards"))
      Cfg.Shards = parseUnsigned(Value.c_str(), "--shards");
    else if (eat("--clients"))
      Clients = parseUnsigned(Value.c_str(), "--clients");
    else if (eat("--requests"))
      Requests = parseUnsigned(Value.c_str(), "--requests");
    else if (eat("--size"))
      Size = parseUnsigned(Value.c_str(), "--size");
    else if (eat("--cache"))
      Cfg.DiskCacheDir = Value;
    else if (eat("--budget"))
      Budget = std::atof(Value.c_str());
    else if (eat("--check-every"))
      CheckEvery = parseUnsigned(Value.c_str(), "--check-every");
    else if (eat("--variant-cap"))
      Cfg.VariantCapacity = parseUnsigned(Value.c_str(), "--variant-cap");
    else if (eat("--seed"))
      Seed = parseUnsigned(Value.c_str(), "--seed");
    else if (A == "--lint-gate")
      Cfg.LintGate = true;
    else {
      std::fprintf(stderr, "kperfd: unknown flag '%s'\n", A.c_str());
      return 2;
    }
  }
  if (Clients == 0)
    Clients = 1;

  rt::Server Server(Cfg);
  std::vector<ServiceDef> Defs = serviceDefs();
  for (const ServiceDef &D : Defs) {
    rt::ServiceConfig SC;
    SC.Name = D.Name;
    SC.Source = D.Source;
    SC.Kernel = D.Name;
    SC.Width = Size;
    SC.Height = Size;
    SC.Scheme = perf::PerforationScheme::rows(
        2, perf::ReconstructionKind::NearestNeighbor);
    SC.ErrorBudget = Budget;
    SC.CheckEvery = CheckEvery;
    if (Error E = Server.addService(SC)) {
      std::fprintf(stderr, "kperfd: %s\n", E.message().c_str());
      return 1;
    }
  }
  std::printf("kperfd: %u shards, %zu services, %u clients, %u requests, "
              "%ux%u frames%s\n",
              Server.config().Shards, Defs.size(), Clients, Requests, Size,
              Size,
              Cfg.DiskCacheDir.empty()
                  ? ""
                  : format(", disk cache %s",
                           Cfg.DiskCacheDir.c_str())
                        .c_str());
  for (const std::string &Name : Server.services())
    std::printf("  service %-12s -> shard %u\n", Name.c_str(),
                cantFail(Server.shardOf(Name)));

  // Precomputed deterministic request schedule: zipfian service choice,
  // mostly smooth frames with occasional pattern content (the content
  // class the approximation handles worst).
  struct Request {
    size_t Service;
    img::ImageClass Content;
    uint64_t FrameSeed;
  };
  Rng ScheduleRng(Seed);
  Zipf Mix(Defs.size());
  std::vector<Request> Schedule;
  Schedule.reserve(Requests);
  for (unsigned I = 0; I < Requests; ++I) {
    Request R;
    R.Service = Mix.sample(ScheduleRng);
    R.Content = ScheduleRng.uniform() < 0.9 ? img::ImageClass::Smooth
                                            : img::ImageClass::Pattern;
    R.FrameSeed = 1000 + I;
    Schedule.push_back(R);
  }

  struct PerService {
    std::atomic<unsigned> Served{0};
    std::atomic<unsigned> Approx{0};
    std::atomic<unsigned> Checks{0};
    std::atomic<unsigned> ReTunes{0};
  };
  std::vector<PerService> Counts(Defs.size());
  std::atomic<size_t> NextRequest{0};
  std::atomic<unsigned> Failures{0};

  auto Client = [&]() {
    for (;;) {
      size_t I = NextRequest.fetch_add(1);
      if (I >= Schedule.size())
        return;
      const Request &R = Schedule[I];
      img::Image Frame = img::generateImage(R.Content, Size, Size,
                                            R.FrameSeed);
      Expected<rt::ServeResult> Res =
          Server.serve(Defs[R.Service].Name, Frame.pixels());
      if (!Res) {
        ++Failures;
        continue;
      }
      PerService &C = Counts[R.Service];
      ++C.Served;
      if (Res->UsedApproximate)
        ++C.Approx;
      if (Res->Checked)
        ++C.Checks;
      if (Res->ReTuned)
        ++C.ReTunes;
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back(Client);
  for (std::thread &T : Threads)
    T.join();

  std::printf("\n%-12s %8s %8s %8s %8s\n", "service", "served", "approx",
              "checks", "retunes");
  for (size_t I = 0; I < Defs.size(); ++I)
    std::printf("%-12s %8u %8u %8u %8u\n", Defs[I].Name,
                Counts[I].Served.load(), Counts[I].Approx.load(),
                Counts[I].Checks.load(), Counts[I].ReTunes.load());
  if (Failures.load() != 0)
    std::printf("failed requests: %u\n", Failures.load());
  std::printf("\nserver: %s\n", Server.stats().str().c_str());
  return Failures.load() == 0 ? 0 : 1;
}
