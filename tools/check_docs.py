#!/usr/bin/env python3
"""Documentation link checker (the CI docs job).

Scans every Markdown file in the repository (docs/, README.md, ...) and
fails if one contains:

  * a dead relative link -- [text](path) where path does not exist
    relative to the file (anchors and absolute URLs are skipped);
  * a reference to a nonexistent source path -- any `...`-quoted or
    table-cell token that looks like src/..., tests/..., bench/...,
    tools/..., examples/... and does not exist.

Usage: python3 tools/check_docs.py [repo-root]
"""

import os
import re
import sys


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
# Paths quoted in backticks or bare in tables: src/ir/Foo.h, tests/x.cpp,
# and the `src/ir/Foo.{h,cpp}` pair shorthand.
SRC_RE = re.compile(
    r"`((?:src|tests|bench|tools|examples|docs)/"
    r"[A-Za-z0-9_./-]+(?:\{[A-Za-z0-9_.,]+\}[A-Za-z0-9_./-]*)?)`")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in {".git", "build", ".github"}
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    for md in markdown_files(root):
        rel_md = os.path.relpath(md, root)
        text = open(md, encoding="utf-8").read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md), target))
            if not os.path.exists(resolved):
                errors.append(f"{rel_md}: dead relative link '{target}'")
        for match in SRC_RE.finditer(text):
            target = match.group(1)
            # `a.h`-style pair shorthand: src/ir/Mem2Reg.{h,cpp}
            brace = re.match(r"(.*)\{([^}]*)\}(.*)", target)
            candidates = (
                [brace.group(1) + ext + brace.group(3)
                 for ext in brace.group(2).split(",")]
                if brace else [target])
            for candidate in candidates:
                if not os.path.exists(os.path.join(root, candidate)):
                    errors.append(
                        f"{rel_md}: reference to nonexistent path "
                        f"'{candidate}'")
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} documentation error(s).")
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
