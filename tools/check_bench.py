#!/usr/bin/env python3
"""Bench-trajectory checker (the CI bench-baseline jobs).

Diffs a fresh `bench_* --json` run against a committed BENCH_*.json
baseline and fails if the trajectory regressed. Works for any benchmark
given the fields that identify a record and the fields to compare:

  * --keys: the fields whose tuple identifies one record (default
    "app,tier", the BENCH_interp schema). A record present on one side
    but not the other fails.
  * --exact-flags: parity flags that must be exactly 1 on BOTH sides
    (default "outputs_identical,counters_identical"; bit-identity is
    not a statistic). Pass '' to disable.
  * --exact-fields: fields that must be equal between baseline and
    fresh (deterministic counters, e.g. request counts).
  * --ratio-fields: noisy throughput-like fields (default "speedup")
    checked within the multiplicative tolerance: fresh must lie in
    [baseline / tol, baseline * tol]. Wall-clock on shared CI runners
    is noisy, so the default tolerance is a factor of 3; the record-set
    and exact checks carry the precision.

A compared field absent from both records is skipped (schemas where
only the summary record carries throughput); absent from exactly one
side it is an error.

Usage:
  python3 tools/check_bench.py baseline.json fresh.json
  python3 tools/check_bench.py --keys bench,service \
    --exact-fields requests,failed --ratio-fields launches_per_sec \
    --exact-flags '' --tolerance 10 BENCH_serve.json fresh.json
"""

import argparse
import json
import sys


def split_fields(spec):
    return [f for f in spec.split(",") if f]


def load(path, keys):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    table = {}
    for r in rows:
        key = tuple(str(r.get(k)) for k in keys)
        if key in table:
            raise SystemExit(
                f"check_bench: duplicate record {key} in {path}")
        table[key] = r
    return table


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="multiplicative ratio-field tolerance "
                         "(default 3.0)")
    ap.add_argument("--keys", default="app,tier",
                    help="comma-separated record-identifying fields")
    ap.add_argument("--exact-flags",
                    default="outputs_identical,counters_identical",
                    help="fields that must be exactly 1 on both sides")
    ap.add_argument("--exact-fields", default="",
                    help="fields that must be equal on both sides")
    ap.add_argument("--ratio-fields", default="speedup",
                    help="fields checked within the tolerance")
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    args = ap.parse_args()

    keys = split_fields(args.keys)
    if not keys:
        raise SystemExit("check_bench: --keys must name at least one field")
    base = load(args.baseline, keys)
    fresh = load(args.fresh, keys)
    errors = []

    for key in sorted(set(base) | set(fresh)):
        name = "/".join(key)
        if key not in fresh:
            errors.append(f"{name}: missing from fresh run")
            continue
        if key not in base:
            errors.append(f"{name}: not in committed baseline")
            continue
        b, f = base[key], fresh[key]
        for flag in split_fields(args.exact_flags):
            if f.get(flag) != 1:
                errors.append(f"{name}: fresh {flag} = {f.get(flag)}")
            if b.get(flag) != 1:
                errors.append(f"{name}: baseline {flag} = {b.get(flag)}")
        for field in split_fields(args.exact_fields):
            bv, fv = b.get(field), f.get(field)
            if bv is None and fv is None:
                continue
            if bv != fv:
                errors.append(f"{name}: {field} {fv!r} != baseline {bv!r}")
        for field in split_fields(args.ratio_fields):
            bv, fv = b.get(field), f.get(field)
            if bv is None and fv is None:
                continue
            if not bv or not fv or bv <= 0 or fv <= 0:
                errors.append(f"{name}: bad {field} {bv!r} -> {fv!r}")
            elif not (bv / args.tolerance <= fv <= bv * args.tolerance):
                errors.append(
                    f"{name}: {field} {fv:.2f} outside "
                    f"[{bv / args.tolerance:.2f}, "
                    f"{bv * args.tolerance:.2f}] (baseline {bv:.2f})")

    if errors:
        print(f"check_bench: {len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"check_bench: {len(fresh)} records match the baseline "
          f"(ratios within {args.tolerance:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
