#!/usr/bin/env python3
"""Bench-trajectory checker (the CI bench-baseline job).

Diffs a fresh `bench_interp --json` run against the committed
BENCH_interp.json and fails if the trajectory regressed:

  * a (app, tier) record present in the baseline is missing from the
    fresh run, or vice versa;
  * a parity flag differs -- outputs_identical / counters_identical
    must be exactly 1 in both runs (bit-identity is not a statistic);
  * a speedup drifted outside the multiplicative tolerance: fresh
    must lie within [baseline / tol, baseline * tol].  Wall-clock on
    shared CI runners is noisy, so the default tolerance is a factor
    of 3; the ordering and parity checks carry the precision.

Usage: python3 tools/check_bench.py [--tolerance F] baseline.json fresh.json
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    return {(r["app"], r["tier"]): r for r in rows}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="multiplicative speedup tolerance (default 3.0)")
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    errors = []

    for key in sorted(set(base) | set(fresh)):
        app, tier = key
        if key not in fresh:
            errors.append(f"{app}/{tier}: missing from fresh run")
            continue
        if key not in base:
            errors.append(f"{app}/{tier}: not in committed baseline")
            continue
        b, f = base[key], fresh[key]
        for flag in ("outputs_identical", "counters_identical"):
            if f.get(flag) != 1:
                errors.append(f"{app}/{tier}: fresh {flag} = {f.get(flag)}")
            if b.get(flag) != 1:
                errors.append(f"{app}/{tier}: baseline {flag} = {b.get(flag)}")
        bs, fs = b.get("speedup"), f.get("speedup")
        if not bs or not fs or bs <= 0 or fs <= 0:
            errors.append(f"{app}/{tier}: bad speedup {bs!r} -> {fs!r}")
        elif not (bs / args.tolerance <= fs <= bs * args.tolerance):
            errors.append(
                f"{app}/{tier}: speedup {fs:.2f}x outside "
                f"[{bs / args.tolerance:.2f}, {bs * args.tolerance:.2f}] "
                f"(baseline {bs:.2f}x)")

    if errors:
        print(f"check_bench: {len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"check_bench: {len(fresh)} records match the baseline "
          f"(parity exact, speedups within {args.tolerance:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
