//===- tools/kperfc.cpp - Kernel perforation command-line driver -------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Developer tool over the library:
//
//   kperfc dump-ir <file.pcl> [--kernel name]
//       Compile and print the kernel IR.
//
//   kperfc analyze <file.pcl> [--kernel name]
//       Print the detected input footprints and output sites.
//
//   kperfc perforate <file.pcl> [--kernel name] [--scheme S] [--recon R]
//                    [--wg WxH] [--passes SPEC]
//       Apply the perforation transform and print the generated IR.
//       --passes selects the cleanup pipeline run over the perforated
//       clone (default: the mem2reg-led default pipeline); --time-passes
//       prints what it did.
//
//   kperfc run <file.pcl> --image in.pgm [--out out.pgm] [--kernel name]
//              [--scheme S] [--recon R] [--wg WxH] [--passes SPEC]
//       Run a kernel(in, out, w, h) image filter on a PGM file,
//       accurately or perforated, and report simulated time + quality.
//       --passes selects the perforated variant's cleanup pipeline;
//       --time-passes prints its per-pass statistics.
//
//   Commands that launch kernels (run, tune) accept
//   --exec-tier tree|bytecode|batched to pick the simulator's execution
//   tier (default: $KPERF_EXEC_TIER or the tree walker). All tiers
//   produce byte-identical outputs and identical SimReport counters;
//   the bytecode tiers are just faster wall-clock.
//
//   kperfc tune <file.pcl> [--kernel name] [--image in.pgm] [--budget E]
//               [--size N] [--jobs N] [--variant-cap N]
//       Explore scheme x reconstruction x work-group configurations for a
//       kernel(in, out, w, h) filter, print the Pareto front, and pick
//       the fastest configuration whose error stays within the budget
//       (default 0.05). Without --image a synthetic natural image of
//       edge length --size (default 256; must be a multiple of 128) is
//       used. The whole sweep shares one rt::Session, so the source is
//       compiled once and every unique (scheme, tile, pipeline) variant
//       at most once; the final "session:" line reports the compile
//       counts, the variant-cache hit rate, and the eviction/buffer-reuse
//       counts. --jobs N evaluates configurations on N worker threads
//       (0 = one per hardware thread; default 1) -- results and the
//       chosen configuration are identical to the serial sweep.
//       --variant-cap N bounds the session's variant cache to N entries
//       (LRU eviction; 0 = unlimited).
//
//   kperfc lint <file.pcl> [--kernel name] [--passes SPEC] [--wg WxH]
//               [--Werror] [--time-passes]
//       Run the static kernel checks (ir/Lint.h: out-of-bounds accesses,
//       barriers under divergent control flow, local-memory races,
//       never-initialized private loads, division by zero) over every
//       kernel in the file, after the default cleanup pipeline (or
//       --passes). --wg seeds the range analysis with the local shape.
//       Exit 1 when any error-severity diagnostic fires (warnings too
//       under --Werror); --time-passes adds the analysis-cache counters.
//
//   kperfc passes <file.pcl> [--kernel name] [--passes SPEC]
//               [--time-passes] [--verify-each]
//       Run an optimization pipeline on the kernel and print the
//       per-pass change counts with net IR-size and static-ALU deltas
//       (and, with --time-passes, wall-clock timings) plus the
//       optimized IR. The default pipeline is
//       mem2reg,unroll,fixpoint(simplify,sroa,mem2reg,gvn,cse,
//       memopt-forward,licm,memopt-dse,dce); --passes accepts any
//       spec in that grammar,
//       including parameterized passes such as unroll(512), e.g.
//       --passes=fixpoint(simplify,gvn,dce). Invoking kperfc with
//       --passes and no command is shorthand for the passes command.
//       See docs/PASSES.md for the full grammar and pass reference.
//
// Schemes: baseline | rows1 | rows2 | cols1 | cols2 | stencil
// Recon:   nn | li
//
// Flags may appear anywhere and accept both "--flag value" and
// "--flag=value". --passes also optimizes the compiled kernel for
// dump-ir; --time-passes adds per-variant pass statistics to tune.
//
//===----------------------------------------------------------------------===//

#include "img/Generators.h"
#include "img/Metrics.h"
#include "img/PGM.h"
#include "ir/Lint.h"
#include "ir/Passes.h"
#include "ir/Printer.h"
#include "perforation/AccessAnalysis.h"
#include "perforation/Pareto.h"
#include "perforation/Tuner.h"
#include "pcl/Compiler.h"
#include "runtime/Session.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

using namespace kperf;

namespace {

struct Options {
  std::string Command;
  std::string File;
  std::string KernelName; ///< Empty: first kernel in the file.
  std::string ImagePath;
  std::string OutPath;
  perf::PerforationScheme Scheme = perf::PerforationScheme::none();
  bool SchemeGiven = false;
  unsigned WgX = 16, WgY = 16;
  double Budget = 0.05;
  unsigned Size = 256; ///< tune: synthetic-image edge length.
  unsigned Jobs = 1;   ///< tune: worker threads (0 = hardware threads).
  unsigned VariantCap = 0; ///< tune: variant-cache capacity (0 = unlimited).
  std::string PassSpec; ///< --passes pipeline spec.
  bool PassSpecGiven = false;
  bool TimePasses = false;
  bool VerifyEach = false;
  bool Werror = false; ///< lint: warnings also fail the exit code.
  sim::ExecTier Tier = sim::defaultExecTier(); ///< --exec-tier.
};

int usage() {
  std::fprintf(stderr,
               "usage: kperfc <dump-ir|analyze|perforate|run|tune|passes|"
               "lint> <file.pcl>\n"
               "              [--kernel NAME] [--scheme baseline|rows1|"
               "rows2|cols1|cols2|stencil]\n"
               "              [--recon nn|li] [--wg WxH]\n"
               "              [--image in.pgm] [--out out.pgm] "
               "[--budget E] [--size N]\n"
               "              [--jobs N] [--variant-cap N]\n"
               "              [--exec-tier tree|bytecode|batched]\n"
               "              [--passes SPEC] [--time-passes] "
               "[--verify-each] [--Werror]\n"
               "       kperfc --passes=SPEC [--time-passes] <file.pcl>\n");
  return 2;
}

bool parseScheme(const std::string &Name, perf::PerforationScheme &S) {
  if (Name == "baseline")
    S = perf::PerforationScheme::none();
  else if (Name == "rows1")
    S.Kind = perf::SchemeKind::Rows, S.Period = 2;
  else if (Name == "rows2")
    S.Kind = perf::SchemeKind::Rows, S.Period = 4;
  else if (Name == "cols1")
    S.Kind = perf::SchemeKind::Cols, S.Period = 2;
  else if (Name == "cols2")
    S.Kind = perf::SchemeKind::Cols, S.Period = 4;
  else if (Name == "stencil")
    S = perf::PerforationScheme::stencil();
  else
    return false;
  return true;
}

Expected<Options> parseArgs(int Argc, char **Argv) {
  Options O;
  std::vector<std::string> Positional;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (!startsWith(A, "--")) {
      Positional.push_back(A);
      continue;
    }
    // Split "--flag=value" into the flag and an inline value.
    std::string Inline;
    bool HasInline = false;
    size_t Eq = A.find('=');
    if (Eq != std::string::npos) {
      Inline = A.substr(Eq + 1);
      HasInline = true;
      A = A.substr(0, Eq);
    }
    auto next = [&]() -> Expected<std::string> {
      if (HasInline)
        return Inline;
      if (I + 1 >= Argc)
        return makeError("missing value after %s", A.c_str());
      return std::string(Argv[++I]);
    };
    // Flags that take no value reject an inline one ("--flag=x").
    auto noValue = [&]() -> Error {
      if (HasInline)
        return makeError("option %s takes no value", A.c_str());
      return Error::success();
    };
    if (A == "--passes") {
      auto V = next();
      if (!V)
        return V.takeError();
      O.PassSpec = *V;
      O.PassSpecGiven = true;
    } else if (A == "--time-passes") {
      if (Error E = noValue())
        return E;
      O.TimePasses = true;
    } else if (A == "--verify-each") {
      if (Error E = noValue())
        return E;
      O.VerifyEach = true;
    } else if (A == "--Werror") {
      if (Error E = noValue())
        return E;
      O.Werror = true;
    } else if (A == "--kernel") {
      auto V = next();
      if (!V)
        return V.takeError();
      O.KernelName = *V;
    } else if (A == "--scheme") {
      auto V = next();
      if (!V)
        return V.takeError();
      if (!parseScheme(*V, O.Scheme))
        return makeError("unknown scheme '%s'", V->c_str());
      O.SchemeGiven = true;
    } else if (A == "--recon") {
      auto V = next();
      if (!V)
        return V.takeError();
      if (*V == "nn")
        O.Scheme.Recon = perf::ReconstructionKind::NearestNeighbor;
      else if (*V == "li")
        O.Scheme.Recon = perf::ReconstructionKind::Linear;
      else
        return makeError("unknown reconstruction '%s'", V->c_str());
    } else if (A == "--wg") {
      auto V = next();
      if (!V)
        return V.takeError();
      if (std::sscanf(V->c_str(), "%ux%u", &O.WgX, &O.WgY) != 2)
        return makeError("bad --wg value '%s' (expected WxH)", V->c_str());
    } else if (A == "--image") {
      auto V = next();
      if (!V)
        return V.takeError();
      O.ImagePath = *V;
    } else if (A == "--out") {
      auto V = next();
      if (!V)
        return V.takeError();
      O.OutPath = *V;
    } else if (A == "--budget") {
      auto V = next();
      if (!V)
        return V.takeError();
      char *End = nullptr;
      O.Budget = std::strtod(V->c_str(), &End);
      if (End == V->c_str() || O.Budget < 0)
        return makeError("bad --budget value '%s'", V->c_str());
    } else if (A == "--size") {
      auto V = next();
      if (!V)
        return V.takeError();
      int N = std::atoi(V->c_str());
      if (N <= 0 || N % 128 != 0)
        return makeError("bad --size value '%s' (expected a positive "
                         "multiple of 128)",
                         V->c_str());
      O.Size = static_cast<unsigned>(N);
    } else if (A == "--jobs") {
      auto V = next();
      if (!V)
        return V.takeError();
      char *End = nullptr;
      long N = std::strtol(V->c_str(), &End, 10);
      if (End == V->c_str() || *End != '\0' || N < 0)
        return makeError("bad --jobs value '%s' (expected a non-negative "
                         "integer; 0 = hardware threads)",
                         V->c_str());
      O.Jobs = static_cast<unsigned>(N);
    } else if (A == "--exec-tier") {
      auto V = next();
      if (!V)
        return V.takeError();
      if (!sim::parseExecTier(*V, O.Tier))
        return makeError("unknown execution tier '%s' (expected "
                         "tree|bytecode|batched)",
                         V->c_str());
    } else if (A == "--variant-cap") {
      auto V = next();
      if (!V)
        return V.takeError();
      char *End = nullptr;
      long N = std::strtol(V->c_str(), &End, 10);
      if (End == V->c_str() || *End != '\0' || N < 0)
        return makeError("bad --variant-cap value '%s' (expected a "
                         "non-negative integer; 0 = unlimited)",
                         V->c_str());
      O.VariantCap = static_cast<unsigned>(N);
    } else {
      return makeError("unknown option '%s'", A.c_str());
    }
  }
  // Two positionals: command + file. One positional with --passes:
  // shorthand for the passes command on that file.
  if (Positional.size() == 2) {
    O.Command = Positional[0];
    O.File = Positional[1];
  } else if (Positional.size() == 1 && O.PassSpecGiven) {
    O.Command = "passes";
    O.File = Positional[0];
  } else if (Positional.size() > 2) {
    return makeError("unexpected extra argument '%s'",
                     Positional[2].c_str());
  } else {
    return makeError("missing command or file");
  }
  return O;
}

Expected<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return makeError("cannot open '%s'", Path.c_str());
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Compiles the requested (or first) kernel of the file. When
/// \p ApplyPasses is set, the --passes pipeline (if any) runs over the
/// compiled kernels as a post-verify step.
Expected<rt::Kernel> compileFrom(rt::Session &S, const Options &O,
                                 const std::string &Source,
                                 bool ApplyPasses = false) {
  pcl::CompileOptions CO;
  if (ApplyPasses && O.PassSpecGiven) {
    CO.PipelineSpec = O.PassSpec;
    CO.VerifyEach = O.VerifyEach;
  }
  if (!O.KernelName.empty())
    return S.compile(Source, O.KernelName, CO);
  Expected<std::vector<rt::Kernel>> All = S.compileAll(Source, CO);
  if (!All)
    return All.takeError();
  return All->front();
}

int cmdDumpIR(const Options &O, const std::string &Source) {
  rt::Session Ctx;
  Expected<rt::Kernel> K =
      compileFrom(Ctx, O, Source, /*ApplyPasses=*/true);
  if (!K) {
    std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
    return 1;
  }
  std::fputs(ir::printFunction(*K->F).c_str(), stdout);
  return 0;
}

int cmdAnalyze(const Options &O, const std::string &Source) {
  rt::Session Ctx;
  Expected<rt::Kernel> K = compileFrom(Ctx, O, Source);
  if (!K) {
    std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
    return 1;
  }
  Expected<perf::KernelAccessInfo> Info =
      perf::analyzeKernelAccesses(*K->F);
  if (!Info) {
    std::fprintf(stderr, "error: %s\n", Info.error().message().c_str());
    return 1;
  }
  std::printf("kernel %s:\n", K->F->name().c_str());
  for (const perf::BufferAccess &A : Info->Inputs)
    std::printf("  input  %-10s footprint dy=[%d,%d] dx=[%d,%d] "
                "halo=%dx%d stride=%s (%zu loads)\n",
                A.Buffer->name().c_str(), A.DyMin, A.DyMax, A.DxMin,
                A.DxMax, A.haloX(), A.haloY(),
                A.WidthArg->name().c_str(), A.Loads.size());
  for (const perf::StoreSite &S : Info->Outputs)
    std::printf("  output %-10s stride=%s\n", S.Buffer->name().c_str(),
                S.WidthArg->name().c_str());
  if (Info->UnmatchedInputLoads)
    std::printf("  (%u input loads did not match the 2-D pattern)\n",
                Info->UnmatchedInputLoads);
  if (Info->Inputs.empty())
    std::printf("  no perforatable input buffers\n");
  return 0;
}

int cmdPerforate(const Options &O, const std::string &Source) {
  rt::Session Ctx;
  Expected<rt::Kernel> K = compileFrom(Ctx, O, Source);
  if (!K) {
    std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
    return 1;
  }
  perf::PerforationPlan Plan;
  Plan.Scheme = O.SchemeGiven
                    ? O.Scheme
                    : perf::PerforationScheme::rows(
                          2, perf::ReconstructionKind::NearestNeighbor);
  Plan.TileX = O.WgX;
  Plan.TileY = O.WgY;
  if (O.PassSpecGiven)
    Plan.PipelineSpec = O.PassSpec;
  Plan.VerifyEach = O.VerifyEach;
  Expected<rt::Variant> P = Ctx.perforate(*K, Plan);
  if (!P) {
    std::fprintf(stderr, "error: %s\n", P.error().message().c_str());
    return 1;
  }
  std::printf("; scheme %s, work group %ux%u, local memory %u words\n",
              Plan.Scheme.str().c_str(), P->Local.X, P->Local.Y,
              P->LocalMemWords);
  if (O.TimePasses)
    std::printf("; cleanup: %s\n", P->PassStats.str().c_str());
  std::fputs(ir::printFunction(*P->K.F).c_str(), stdout);
  return 0;
}

int cmdRun(const Options &O, const std::string &Source) {
  if (O.ImagePath.empty()) {
    std::fprintf(stderr, "error: run requires --image\n");
    return 1;
  }
  Expected<img::Image> In = img::readPGM(O.ImagePath);
  if (!In) {
    std::fprintf(stderr, "error: %s\n", In.error().message().c_str());
    return 1;
  }
  unsigned W = In->width(), H = In->height();
  if (W % O.WgX != 0 || H % O.WgY != 0) {
    std::fprintf(stderr,
                 "error: image %ux%u not divisible by work group %ux%u\n",
                 W, H, O.WgX, O.WgY);
    return 1;
  }

  rt::Session Ctx;
  Ctx.setExecTier(O.Tier);
  Expected<rt::Kernel> K = compileFrom(Ctx, O, Source);
  if (!K) {
    std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
    return 1;
  }
  unsigned InBuf = Ctx.createBufferFrom(In->pixels());
  unsigned OutBuf = Ctx.createBuffer(In->size());
  std::vector<sim::KernelArg> Args = {
      rt::arg::buffer(InBuf), rt::arg::buffer(OutBuf),
      rt::arg::i32(static_cast<int32_t>(W)),
      rt::arg::i32(static_cast<int32_t>(H))};

  // Accurate run (always, as the quality reference).
  Expected<sim::SimReport> Acc =
      Ctx.launch(*K, {W, H}, {O.WgX, O.WgY}, Args);
  if (!Acc) {
    std::fprintf(stderr, "error: %s\n", Acc.error().message().c_str());
    return 1;
  }
  std::vector<float> Reference = Ctx.buffer(OutBuf).downloadFloats();
  std::printf("accurate:   %.4f ms (%llu read tx)\n", Acc->TimeMs,
              static_cast<unsigned long long>(
                  Acc->Totals.GlobalReadTransactions));

  std::vector<float> Final = Reference;
  if (O.SchemeGiven && O.Scheme.Kind != perf::SchemeKind::None) {
    perf::PerforationPlan Plan;
    Plan.Scheme = O.Scheme;
    Plan.TileX = O.WgX;
    Plan.TileY = O.WgY;
    if (O.PassSpecGiven)
      Plan.PipelineSpec = O.PassSpec;
    Plan.VerifyEach = O.VerifyEach;
    Expected<rt::Variant> P = Ctx.perforate(*K, Plan);
    if (!P) {
      std::fprintf(stderr, "error: %s\n", P.error().message().c_str());
      return 1;
    }
    Expected<sim::SimReport> App = Ctx.launch(*P, {W, H}, Args);
    if (!App) {
      std::fprintf(stderr, "error: %s\n", App.error().message().c_str());
      return 1;
    }
    Final = Ctx.buffer(OutBuf).downloadFloats();
    std::printf("perforated: %.4f ms (%llu read tx)  [%s]\n", App->TimeMs,
                static_cast<unsigned long long>(
                    App->Totals.GlobalReadTransactions),
                O.Scheme.str().c_str());
    if (O.TimePasses)
      std::printf("cleanup:    %s\n", P->PassStats.str().c_str());
    std::printf("speedup:    %.2fx\n", Acc->TimeMs / App->TimeMs);
    std::printf("MRE:        %.5f   mean error: %.5f   PSNR: %.1f dB\n",
                img::meanRelativeError(Reference, Final),
                img::meanError(Reference, Final),
                img::psnr(Reference, Final));
  }

  if (!O.OutPath.empty()) {
    img::Image Out(W, H);
    Out.pixels() = Final;
    if (Error E = img::writePGM(Out, O.OutPath)) {
      std::fprintf(stderr, "error: %s\n", E.message().c_str());
      return 1;
    }
    std::printf("wrote %s\n", O.OutPath.c_str());
  }
  return 0;
}

int cmdTune(const Options &O, const std::string &Source) {
  // Workload: the user's PGM, or a synthetic natural image whose edge
  // length every Fig. 9 work-group shape divides.
  img::Image In(O.Size, O.Size);
  if (!O.ImagePath.empty()) {
    Expected<img::Image> Loaded = img::readPGM(O.ImagePath);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n",
                   Loaded.error().message().c_str());
      return 1;
    }
    In = *Loaded;
  } else {
    In = img::generateImage(img::ImageClass::Natural, O.Size, O.Size, 11);
  }
  unsigned W = In.width(), H = In.height();

  // One session for the whole sweep: the source compiles once, every
  // unique (scheme, tile, pipeline) variant compiles at most once, and
  // the accurate baseline is measured once per work-group shape instead
  // of once per configuration.
  rt::Session S;
  S.setExecTier(O.Tier);
  if (O.VariantCap != 0)
    S.setVariantCapacity(O.VariantCap);
  Expected<rt::Kernel> K = compileFrom(S, O, Source);
  if (!K) {
    std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
    return 1;
  }

  std::vector<perf::TunerConfig> Space = perf::defaultTuningSpace();

  // Accurate output once, as the quality reference (the kernel as
  // written is also the speedup denominator -- for arbitrary user
  // kernels we cannot know whether a local-prefetch baseline would be
  // faster, so the tool reports speedup vs. the unmodified kernel), and
  // accurate timing per work-group shape in the space (timing does not
  // depend on input content, so one launch per shape covers all schemes
  // at it). Both are measured up front on checked-out buffers so the
  // sweep itself only reads them -- that is what lets worker threads
  // evaluate configurations concurrently.
  std::vector<float> Reference;
  std::map<std::pair<unsigned, unsigned>, double> AccurateMs;
  {
    unsigned InBuf = S.createBufferFrom(In.pixels());
    unsigned OutBuf = S.createBuffer(In.size());
    std::vector<sim::KernelArg> Args = {
        rt::arg::buffer(InBuf), rt::arg::buffer(OutBuf),
        rt::arg::i32(static_cast<int32_t>(W)),
        rt::arg::i32(static_cast<int32_t>(H))};
    Expected<sim::SimReport> R = S.launch(*K, {W, H}, {16, 16}, Args);
    if (!R) {
      std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
      return 1;
    }
    Reference = S.buffer(OutBuf).downloadFloats();
    for (const perf::TunerConfig &Config : Space) {
      auto Key = std::make_pair(Config.TileX, Config.TileY);
      if (AccurateMs.count(Key) || W % Config.TileX != 0 ||
          H % Config.TileY != 0)
        continue;
      Expected<sim::SimReport> T =
          S.launch(*K, {W, H}, {Config.TileX, Config.TileY}, Args);
      if (!T) {
        std::fprintf(stderr, "error: %s\n", T.error().message().c_str());
        return 1;
      }
      AccurateMs.emplace(Key, T->TimeMs);
    }
    S.releaseBuffer(InBuf);
    S.releaseBuffer(OutBuf);
  }

  // Thread-safe evaluation: the session serializes variant compiles (a
  // concurrent duplicate request blocks, then hits the cache), and each
  // evaluation checks out its own input/output buffers from the session
  // free list, runs its own simulator instance, and releases them.
  perf::EvaluateFn Evaluate =
      [&](const perf::TunerConfig &Config)
      -> Expected<perf::Measurement> {
    if (W % Config.TileX != 0 || H % Config.TileY != 0)
      return makeError("image %ux%u not divisible by %ux%u", W, H,
                       Config.TileX, Config.TileY);
    auto Acc = AccurateMs.find({Config.TileX, Config.TileY});
    if (Acc == AccurateMs.end())
      return makeError("no accurate baseline at %ux%u", Config.TileX,
                       Config.TileY);
    if (Config.Scheme.Kind == perf::SchemeKind::None &&
        Config.LoopStride <= 1)
      return perf::Measurement{1.0, 0.0, {}};
    perf::PerforationPlan Plan;
    Plan.Scheme = Config.Scheme;
    Plan.TileX = Config.TileX;
    Plan.TileY = Config.TileY;
    // The stride axis rides in the pipeline spec (VariantKey embeds the
    // spec, so strided variants cache under distinct keys for free).
    Plan.PipelineSpec = perf::jointPipelineSpec(
        O.PassSpecGiven ? O.PassSpec : Plan.PipelineSpec,
        Config.LoopStride);
    Plan.VerifyEach = O.VerifyEach;
    // With --variant-cap, another worker's compile can evict our variant
    // between perforate() and launch(); re-requesting it recompiles the
    // same kernel, so a bounded retry preserves the serial measurements.
    for (unsigned Attempt = 0;; ++Attempt) {
      Expected<rt::Variant> P = S.perforate(*K, Plan);
      if (!P)
        return P.takeError();
      unsigned InBuf = S.createBufferFrom(In.pixels());
      unsigned OutBuf = S.createBuffer(In.size());
      Expected<sim::SimReport> App = S.launch(
          *P, {W, H},
          {rt::arg::buffer(InBuf), rt::arg::buffer(OutBuf),
           rt::arg::i32(static_cast<int32_t>(W)),
           rt::arg::i32(static_cast<int32_t>(H))});
      if (!App) {
        S.releaseBuffer(InBuf);
        S.releaseBuffer(OutBuf);
        if (Attempt < 8 && rt::Session::isEvictedError(App.error()))
          continue;
        return App.takeError();
      }
      perf::Measurement M;
      M.Speedup = Acc->second / App->TimeMs;
      M.Error = img::meanRelativeError(Reference,
                                       S.buffer(OutBuf).downloadFloats());
      M.PassStats = P->PassStats;
      S.releaseBuffer(InBuf);
      S.releaseBuffer(OutBuf);
      return M;
    }
  };

  std::printf("tuning over %zu configurations on %ux%u input (%u %s)"
              "...\n\n",
              Space.size(), W, H, O.Jobs,
              O.Jobs == 1 ? "job" : "jobs");
  std::vector<perf::TunerResult> Results =
      perf::tuneParallel(Space, Evaluate, O.Jobs);

  unsigned Feasible = 0;
  for (const perf::TunerResult &R : Results)
    if (R.Feasible)
      ++Feasible;
  std::printf("%u/%zu configurations feasible\n\nPareto front:\n",
              Feasible, Results.size());
  std::vector<perf::TradeoffPoint> Points = toTradeoffPoints(Results);
  for (size_t I : perf::paretoFront(Points))
    std::printf("  %-24s speedup %5.2fx  MRE %.5f\n",
                Points[I].Label.c_str(), Points[I].Speedup,
                Points[I].Error);

  if (O.TimePasses) {
    std::printf("\nper-variant pass statistics:\n");
    for (const perf::TunerResult &R : Results)
      if (R.Feasible)
        std::printf("  %s\n", R.summary().c_str());
  }

  size_t Best = perf::bestWithinErrorBudget(Results, O.Budget);
  if (Best == ~size_t(0)) {
    std::printf("\nno configuration meets the %.3f budget\n", O.Budget);
  } else {
    std::printf("\nchosen for budget %.3f: %s (speedup %.2fx, "
                "MRE %.5f)\n",
                O.Budget, Results[Best].Config.str().c_str(),
                Results[Best].M.Speedup, Results[Best].M.Error);
    // Re-evaluate the winner through the variant cache: no
    // recompilation, and the cached variant reproduces the measurement
    // exactly.
    Expected<perf::Measurement> Re = Evaluate(Results[Best].Config);
    if (Re)
      std::printf("re-validated from cache: speedup %.2fx, MRE %.5f\n",
                  Re->Speedup, Re->Error);
  }
  std::printf("session: %s\n", S.stats().str().c_str());
  return 0;
}

int cmdLint(const Options &O, const std::string &Source) {
  rt::Session Ctx;
  // Lint the kernels as they would execute: the default cleanup
  // pipeline (or --passes) first, checks over the optimized SSA.
  pcl::CompileOptions CO;
  CO.PipelineSpec =
      O.PassSpecGiven ? O.PassSpec : ir::defaultPipelineSpec();
  CO.VerifyEach = O.VerifyEach;
  std::vector<rt::Kernel> Kernels;
  if (!O.KernelName.empty()) {
    Expected<rt::Kernel> K = Ctx.compile(Source, O.KernelName, CO);
    if (!K) {
      std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
      return 1;
    }
    Kernels.push_back(*K);
  } else {
    Expected<std::vector<rt::Kernel>> All = Ctx.compileAll(Source, CO);
    if (!All) {
      std::fprintf(stderr, "error: %s\n", All.error().message().c_str());
      return 1;
    }
    Kernels = std::move(*All);
  }

  ir::lint::LintOptions LO;
  LO.Bounds.LocalSize[0] = O.WgX;
  LO.Bounds.LocalSize[1] = O.WgY;
  unsigned Errors = 0, Warnings = 0;
  for (const rt::Kernel &K : Kernels) {
    ir::lint::LintResult R = ir::lint::run(*K.F, Ctx.analyses(), LO);
    std::fputs(R.str().c_str(), stdout);
    Errors += R.numErrors();
    Warnings += R.numWarnings();
  }
  std::printf("%zu kernel%s checked: %u error%s, %u warning%s\n",
              Kernels.size(), Kernels.size() == 1 ? "" : "s", Errors,
              Errors == 1 ? "" : "s", Warnings,
              Warnings == 1 ? "" : "s");
  if (O.TimePasses)
    std::printf("analyses: %s\n",
                Ctx.analyses().counters().str().c_str());
  return Errors != 0 || (O.Werror && Warnings != 0) ? 1 : 0;
}

int cmdPasses(const Options &O, const std::string &Source) {
  rt::Session Ctx;
  Expected<rt::Kernel> K = compileFrom(Ctx, O, Source);
  if (!K) {
    std::fprintf(stderr, "error: %s\n", K.error().message().c_str());
    return 1;
  }
  const std::string Spec =
      O.PassSpecGiven ? O.PassSpec : ir::defaultPipelineSpec();
  Expected<ir::PassPipeline> Pipeline = ir::PassPipeline::parse(Spec);
  if (!Pipeline) {
    std::fprintf(stderr, "error: %s\n",
                 Pipeline.error().message().c_str());
    return 1;
  }

  size_t Before = 0;
  for (const auto &BB : K->F->blocks())
    Before += BB->size();

  ir::PassRunOptions RunOpts;
  RunOpts.VerifyEach = O.VerifyEach;
  Expected<ir::PipelineStats> StatsOr =
      Pipeline->run(*K->F, Ctx.module(), Ctx.analyses(), RunOpts);
  if (!StatsOr) {
    std::fprintf(stderr, "error: %s\n", StatsOr.error().message().c_str());
    return 1;
  }
  const ir::PipelineStats &Stats = *StatsOr;

  size_t After = 0;
  for (const auto &BB : K->F->blocks())
    After += BB->size();

  std::printf("; pipeline: %s\n", Pipeline->str().c_str());
  if (O.TimePasses)
    std::printf("; %-16s %6s %9s %8s %8s %9s\n", "pass", "runs",
                "changes", "d-instr", "d-alu", "ms");
  else
    std::printf("; %-16s %6s %9s %8s %8s\n", "pass", "runs", "changes",
                "d-instr", "d-alu");
  long long SizeDelta = 0, AluDelta = 0;
  for (const ir::PassExecution &E : Stats.Passes) {
    SizeDelta += E.SizeDelta;
    AluDelta += E.AluDelta;
    if (O.TimePasses)
      std::printf("; %-16s %6u %9u %+8lld %+8lld %9.3f\n", E.Name.c_str(),
                  E.Invocations, E.Changes, E.SizeDelta, E.AluDelta,
                  E.Millis);
    else
      std::printf("; %-16s %6u %9u %+8lld %+8lld\n", E.Name.c_str(),
                  E.Invocations, E.Changes, E.SizeDelta, E.AluDelta);
  }
  if (O.TimePasses)
    std::printf("; %-16s %6s %9u %+8lld %+8lld %9.3f  (%u rounds)\n",
                "total", "", Stats.total(), SizeDelta, AluDelta,
                Stats.totalMillis(), Stats.Iterations);
  else
    std::printf("; %-16s %6s %9u %+8lld %+8lld  (%u rounds)\n", "total",
                "", Stats.total(), SizeDelta, AluDelta, Stats.Iterations);
  std::printf("; instructions: %zu -> %zu\n", Before, After);
  if (O.TimePasses)
    std::printf("; analyses: %s\n",
                Ctx.analyses().counters().str().c_str());
  std::fputs(ir::printFunction(*K->F).c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Expected<Options> O = parseArgs(Argc, Argv);
  if (!O) {
    std::fprintf(stderr, "error: %s\n", O.error().message().c_str());
    return usage();
  }
  Expected<std::string> Source = readFile(O->File);
  if (!Source) {
    std::fprintf(stderr, "error: %s\n", Source.error().message().c_str());
    return 1;
  }
  if (O->Command == "dump-ir")
    return cmdDumpIR(*O, *Source);
  if (O->Command == "analyze")
    return cmdAnalyze(*O, *Source);
  if (O->Command == "perforate")
    return cmdPerforate(*O, *Source);
  if (O->Command == "run")
    return cmdRun(*O, *Source);
  if (O->Command == "tune")
    return cmdTune(*O, *Source);
  if (O->Command == "passes")
    return cmdPasses(*O, *Source);
  if (O->Command == "lint")
    return cmdLint(*O, *Source);
  std::fprintf(stderr, "error: unknown command '%s'\n",
               O->Command.c_str());
  return usage();
}
