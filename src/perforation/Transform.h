//===- perforation/Transform.h - Input perforation transform -----*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution as an IR-to-IR compiler transform
/// (sections 4-5): given an accurate kernel, produce a variant that
///
///  (Ia) *data perforation* -- cooperatively loads only the subset of the
///       work-group tile selected by the perforation scheme from global
///       memory into a local-memory tile (with halo);
///  (Ib) *data reconstruction* -- fills the skipped elements from loaded
///       neighbors (nearest-neighbor or linear interpolation) in local
///       memory;
///  then executes the original kernel body with every global load of the
///  perforated buffer redirected into the tile.
///
/// With SchemeKind::None the same machinery emits the classic accurate
/// local-memory prefetch, which serves as the optimized baseline of the
/// paper's evaluation.
///
/// Row/column parity is computed on *global* coordinates so the pattern is
/// seamless across adjacent work groups (paper 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_PERFORATION_TRANSFORM_H
#define KPERF_PERFORATION_TRANSFORM_H

#include "ir/Function.h"
#include "ir/Passes.h"
#include "perforation/AccessAnalysis.h"
#include "perforation/Scheme.h"
#include "support/Error.h"

#include <string>

namespace kperf {
namespace perf {

/// Parameters of one input-perforation application.
struct PerforationPlan {
  PerforationScheme Scheme;
  /// Work-group (tile) size the generated kernel is specialized for; it
  /// must be launched with exactly this local size.
  unsigned TileX = 16;
  unsigned TileY = 16;
  /// Argument indices of buffers to perforate. Empty = every input buffer
  /// the access analysis matched.
  std::vector<unsigned> BufferArgs;
  /// Cleanup pipeline run over the generated kernel (see
  /// ir::PassPipeline::parse for the grammar; bench_passes ablates this
  /// by dropping pass names from the spec). Empty = no cleanup.
  std::string PipelineSpec = ir::defaultPipelineSpec();
  /// Verify the generated kernel after every cleanup pass (debugging
  /// aid; the final verify always runs).
  bool VerifyEach = false;
};

/// Transform output: the new kernel plus its launch constraints.
struct TransformResult {
  ir::Function *Kernel = nullptr;
  unsigned LocalX = 0; ///< Required get_local_size(0).
  unsigned LocalY = 0; ///< Required get_local_size(1).
  unsigned LocalMemWords = 0; ///< Tile storage the kernel allocates.
  /// What the cleanup pipeline did to the generated kernel.
  ir::PipelineStats PassStats;
};

/// Applies the local memory-aware perforation described by \p Plan to
/// \p F, creating a new kernel \p NewName inside \p M. \p F itself is not
/// modified. Fails if the kernel already uses local memory or barriers, or
/// if no perforatable input buffer is found.
///
/// When \p AM is given, the access analysis of \p F is read through (and
/// cached in) it -- perforating the same kernel repeatedly, as the tuner
/// does, then analyzes it once instead of once per variant. The caller
/// must invalidate the entry if it mutates \p F afterwards.
Expected<TransformResult> applyInputPerforation(ir::Module &M,
                                                ir::Function &F,
                                                const PerforationPlan &Plan,
                                                const std::string &NewName,
                                                ir::AnalysisManager *AM =
                                                    nullptr);

} // namespace perf
} // namespace kperf

#endif // KPERF_PERFORATION_TRANSFORM_H
