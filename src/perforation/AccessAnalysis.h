//===- perforation/AccessAnalysis.h - Stencil footprint analysis -*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects, per input buffer of a kernel, the 2-D stencil access footprint
/// needed to plan a perforation (paper section 4: which data a work-group
/// tile must load, and how large its halo is).
///
/// The analysis pattern-matches every load from a `global const` pointer
/// argument whose address is structurally
///
/// \code
///   buf[ rowExpr * width + colExpr ]
/// \endcode
///
/// (modulo operand order), where `width` is an int kernel argument, and
/// `rowExpr`/`colExpr` are *affine* in get_global_id(1)/get_global_id(0)
/// with unit coefficient, integer constants, and canonical loop induction
/// variables of constant range. clamp(x, lo, hi) is looked through. From
/// the affine forms it derives the footprint rectangle
/// [DyMin,DyMax] x [DxMin,DxMax] relative to the work item.
///
/// Stores to non-const global pointer arguments are matched the same way
/// for the output-approximation (Paraprox) transform.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_PERFORATION_ACCESSANALYSIS_H
#define KPERF_PERFORATION_ACCESSANALYSIS_H

#include "ir/AnalysisManager.h"
#include "ir/Function.h"
#include "support/Error.h"

#include <vector>

namespace kperf {
namespace perf {

/// One matched load: handles into the IR that the transform rewrites.
struct LoadSite {
  ir::Instruction *Load = nullptr; ///< The load instruction.
  ir::Instruction *Gep = nullptr;  ///< Its address computation.
  ir::Value *RowVal = nullptr;     ///< IR value of the accessed row.
  ir::Value *ColVal = nullptr;     ///< IR value of the accessed column.
  int DyMin = 0, DyMax = 0;        ///< Row offset range vs. gid1.
  int DxMin = 0, DxMax = 0;        ///< Column offset range vs. gid0.
};

/// One matched store (output site).
struct StoreSite {
  ir::Instruction *Store = nullptr;
  ir::Instruction *Gep = nullptr;
  ir::Value *RowVal = nullptr;
  ir::Value *ColVal = nullptr;
  ir::Value *StoredValue = nullptr;
  const ir::Argument *Buffer = nullptr;
  const ir::Argument *WidthArg = nullptr;
};

/// Aggregated footprint of one input buffer.
struct BufferAccess {
  const ir::Argument *Buffer = nullptr;
  const ir::Argument *WidthArg = nullptr;
  std::vector<LoadSite> Loads;
  int DyMin = 0, DyMax = 0;
  int DxMin = 0, DxMax = 0;

  /// Halo sizes implied by the footprint.
  int haloY() const { return std::max(-DyMin, DyMax); }
  int haloX() const { return std::max(-DxMin, DxMax); }
};

/// Full analysis result for a kernel.
struct KernelAccessInfo {
  std::vector<BufferAccess> Inputs;
  std::vector<StoreSite> Outputs;
  /// Loads from const global buffers that did not match the 2-D pattern.
  unsigned UnmatchedInputLoads = 0;

  /// Finds the entry for \p ArgIndex, or null.
  const BufferAccess *inputForArg(unsigned ArgIndex) const {
    for (const BufferAccess &A : Inputs)
      if (A.Buffer->index() == ArgIndex)
        return &A;
    return nullptr;
  }
};

/// Runs the analysis over \p F. Fails only on malformed IR; kernels with
/// no recognizable accesses yield an empty result (callers decide whether
/// that is acceptable).
Expected<KernelAccessInfo> analyzeKernelAccesses(ir::Function &F);

/// Cached variant: returns the summary held in \p AM for \p F, running
/// the analysis and caching the result on a miss. The pointer stays valid
/// until \p AM invalidates the function's entry (any mutation does).
Expected<const KernelAccessInfo *>
analyzeKernelAccessesCached(ir::AnalysisManager &AM, ir::Function &F);

} // namespace perf
} // namespace kperf

#endif // KPERF_PERFORATION_ACCESSANALYSIS_H
