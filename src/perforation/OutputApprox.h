//===- perforation/OutputApprox.h - Paraprox-style baselines -----*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Output-approximation transform reproducing the Paraprox schemes the
/// paper compares against (Fig. 3 / section 4.3): compute only one row /
/// column / center element out of each period-sized block and copy the
/// computed result to the approximated neighbors.
///
/// The transform remaps get_global_id so one work item computes the block
/// center, then duplicates every matched output store to the neighbor
/// rows/columns. The launch shrinks by the period in the approximated
/// dimension(s); non-divisible image sizes are handled by clamping the
/// computed coordinate into the image (bottom/right blocks recompute a few
/// rows, exactly like padded real-GPU ports do).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_PERFORATION_OUTPUTAPPROX_H
#define KPERF_PERFORATION_OUTPUTAPPROX_H

#include "ir/Function.h"
#include "ir/Passes.h"
#include "support/Error.h"

#include <string>

namespace kperf {
namespace perf {

/// Which Paraprox scheme to emit.
enum class OutputSchemeKind : uint8_t {
  Rows,   ///< Compute one row per block, copy up/down (Fig. 3a).
  Cols,   ///< Compute one column per block, copy left/right (Fig. 3b).
  Center, ///< Compute the block center, copy all neighbors (Fig. 3c).
};

/// Parameters of an output-approximation application.
struct OutputApproxPlan {
  OutputSchemeKind Kind = OutputSchemeKind::Rows;
  /// Rows/columns approximated per computed one; 2 = paper scheme "1"
  /// (period 3), 4 = paper scheme "2" (period 5).
  unsigned ApproxPerComputed = 2;
  /// Argument indices of the image width/height scalars (used to clamp
  /// duplicated stores at the image border).
  unsigned WidthArgIndex = 0;
  unsigned HeightArgIndex = 0;
  /// Cleanup pipeline run over the generated kernel (see
  /// ir::PassPipeline::parse for the grammar). Empty = no cleanup.
  std::string PipelineSpec = ir::defaultPipelineSpec();
  /// Verify the generated kernel after every cleanup pass (debugging
  /// aid; the final verify always runs).
  bool VerifyEach = false;
};

/// Transform output and launch adaptation.
struct OutputApproxResult {
  ir::Function *Kernel = nullptr;
  unsigned DivX = 1; ///< Launch with global.x = ceil(imageW / DivX).
  unsigned DivY = 1; ///< Launch with global.y = ceil(imageH / DivY).
  /// What the cleanup pipeline did to the generated kernel.
  ir::PipelineStats PassStats;
};

/// Applies \p Plan to \p F, creating kernel \p NewName in \p M.
Expected<OutputApproxResult> applyOutputApproximation(
    ir::Module &M, ir::Function &F, const OutputApproxPlan &Plan,
    const std::string &NewName);

} // namespace perf
} // namespace kperf

#endif // KPERF_PERFORATION_OUTPUTAPPROX_H
