//===- perforation/Transform.cpp -------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/Transform.h"

#include "ir/Clone.h"
#include "ir/Passes.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <functional>

using namespace kperf;
using namespace kperf::perf;
namespace irns = kperf::ir;

namespace {

/// Translates an access summary of the original kernel into the clone:
/// every IR handle (loads, GEPs, row/column values, buffer and width
/// arguments) is pushed through the clone map. This is what lets the
/// analysis itself be cached on the original function while each variant
/// rewrites its own copy.
KernelAccessInfo remapAccessInfo(const KernelAccessInfo &Orig,
                                 const irns::CloneMap &Map) {
  auto MapArg = [&](const irns::Argument *A) {
    return irns::cast<irns::Argument>(Map.lookup(A));
  };
  auto MapInstr = [&](const irns::Instruction *I) {
    return irns::cast<irns::Instruction>(Map.lookup(I));
  };
  // Copy wholesale, then rewrite only the IR handles: fields added to
  // the analysis structs later stay correct on this path automatically.
  KernelAccessInfo Out = Orig;
  for (BufferAccess &A : Out.Inputs) {
    A.Buffer = MapArg(A.Buffer);
    A.WidthArg = MapArg(A.WidthArg);
    for (LoadSite &L : A.Loads) {
      L.Load = MapInstr(L.Load);
      L.Gep = MapInstr(L.Gep);
      L.RowVal = Map.lookup(L.RowVal);
      L.ColVal = Map.lookup(L.ColVal);
    }
  }
  for (StoreSite &S : Out.Outputs) {
    S.Store = MapInstr(S.Store);
    S.Gep = MapInstr(S.Gep);
    S.RowVal = Map.lookup(S.RowVal);
    S.ColVal = Map.lookup(S.ColVal);
    S.StoredValue = Map.lookup(S.StoredValue);
    S.Buffer = MapArg(S.Buffer);
    S.WidthArg = MapArg(S.WidthArg);
  }
  return Out;
}

/// Builds the perforated kernel. The preamble CFG (loader loops, barrier,
/// reconstruction loops, barrier) is emitted into fresh blocks inserted
/// before the cloned original entry; the body rewrite then redirects the
/// matched loads into the tiles.
class TransformImpl {
public:
  TransformImpl(irns::Module &M, irns::Function &F,
                const PerforationPlan &Plan, const std::string &NewName,
                irns::AnalysisManager *AM)
      : M(M), OrigF(F), Plan(Plan), NewName(NewName), AM(AM), B(M) {}

  Expected<TransformResult> run() {
    if (Plan.TileX == 0 || Plan.TileY == 0)
      return makeError("perforation: zero tile size");
    if ((Plan.Scheme.Kind == SchemeKind::Rows ||
         Plan.Scheme.Kind == SchemeKind::Cols ||
         Plan.Scheme.Kind == SchemeKind::Grid) &&
        Plan.Scheme.Period < 2)
      return makeError(
          "perforation: rows/cols/grid scheme needs period >= 2");

    // Reject kernels that already orchestrate local memory themselves.
    for (const auto &BB : OrigF.blocks())
      for (const auto &I : BB->instructions()) {
        if (I->opcode() == irns::Opcode::Alloca &&
            I->allocaSpace() == irns::AddressSpace::Local)
          return makeError("perforation: kernel '%s' already uses local "
                           "memory",
                           OrigF.name().c_str());
        if (I->opcode() == irns::Opcode::Call &&
            I->callee() == irns::Builtin::Barrier)
          return makeError("perforation: kernel '%s' already uses barriers",
                           OrigF.name().c_str());
      }

    // Validate the cleanup pipeline before any IR is created.
    Expected<irns::PassPipeline> Pipeline =
        irns::PassPipeline::parse(Plan.PipelineSpec);
    if (!Pipeline)
      return Pipeline.takeError();

    irns::CloneMap Map;
    F = irns::cloneFunction(M, OrigF, NewName, Map);

    if (AM) {
      // Analyze the original once (cached across variants) and translate
      // the summary into the clone.
      Expected<const KernelAccessInfo *> InfoOr =
          analyzeKernelAccessesCached(*AM, OrigF);
      if (!InfoOr)
        return InfoOr.takeError();
      Info = remapAccessInfo(**InfoOr, Map);
    } else {
      Expected<KernelAccessInfo> InfoOr = analyzeKernelAccesses(*F);
      if (!InfoOr)
        return InfoOr.takeError();
      Info = InfoOr.takeValue();
    }

    std::vector<const BufferAccess *> Targets;
    if (Plan.BufferArgs.empty()) {
      for (const BufferAccess &A : Info.Inputs)
        Targets.push_back(&A);
    } else {
      for (unsigned ArgIndex : Plan.BufferArgs) {
        const BufferAccess *A = Info.inputForArg(ArgIndex);
        if (!A)
          return makeError("perforation: argument %u of '%s' is not a "
                           "recognized 2-D input buffer",
                           ArgIndex, OrigF.name().c_str());
        Targets.push_back(A);
      }
    }
    if (Targets.empty())
      return makeError("perforation: no perforatable input buffer in '%s'",
                       OrigF.name().c_str());

    buildPreambleSkeleton();
    // Materialize all tiles and origins in the entry block before any
    // loader terminates it.
    for (const BufferAccess *A : Targets)
      tileFor(*A);
    for (const BufferAccess *A : Targets)
      emitLoader(*A);
    emitBarrier();
    bool AnyRecon = false;
    for (const BufferAccess *A : Targets)
      AnyRecon |= emitReconstruction(*A);
    if (AnyRecon)
      emitBarrier();
    finishPreamble();
    for (const BufferAccess *A : Targets)
      rewriteBody(*A);

    // The generated kernel is fresh, so the cleanup pipeline runs with
    // its own analysis state.
    irns::PassRunOptions RunOpts;
    RunOpts.VerifyEach = Plan.VerifyEach;
    Expected<irns::PipelineStats> Stats = Pipeline->run(*F, M, RunOpts);
    if (!Stats)
      return Stats.takeError();
    TransformResult Result;
    Result.PassStats = Stats.takeValue();
    if (Error E = irns::verifyFunction(*F))
      return E;

    Result.Kernel = F;
    Result.LocalX = Plan.TileX;
    Result.LocalY = Plan.TileY;
    Result.LocalMemWords = LocalWords;
    return Result;
  }

private:
  /// Per-buffer tile bookkeeping.
  struct TileInfo {
    irns::Value *Tile = nullptr;    ///< Local alloca.
    irns::Value *OriginX = nullptr; ///< Global coordinate of tile col 0.
    irns::Value *OriginY = nullptr;
    unsigned TileW = 0;
    unsigned TileH = 0;
    unsigned HaloX = 0;
    unsigned HaloY = 0;
  };

  /// Creates a fresh block placed before the original blocks and after the
  /// previously created preamble blocks.
  irns::BasicBlock *newBlock(const std::string &Name) {
    return F->createBlockAt(NextBlockPos++, Name);
  }

  void buildPreambleSkeleton() {
    irns::BasicBlock *Entry = newBlock("perf.entry");
    B.setInsertPoint(Entry);
    Lx = B.createCall(irns::Builtin::GetLocalId, {B.getInt(0)}, "lx");
    Ly = B.createCall(irns::Builtin::GetLocalId, {B.getInt(1)}, "ly");
    GlobalW =
        B.createCall(irns::Builtin::GetGlobalSize, {B.getInt(0)}, "gw");
    GlobalH =
        B.createCall(irns::Builtin::GetGlobalSize, {B.getInt(1)}, "gh");
    irns::Value *Gx0 = B.createMul(
        B.createCall(irns::Builtin::GetGroupId, {B.getInt(0)}, "grpx"),
        B.getInt(static_cast<int32_t>(Plan.TileX)), "gx0");
    irns::Value *Gy0 = B.createMul(
        B.createCall(irns::Builtin::GetGroupId, {B.getInt(1)}, "grpy"),
        B.getInt(static_cast<int32_t>(Plan.TileY)), "gy0");
    GroupOriginX = Gx0;
    GroupOriginY = Gy0;
    Lin = B.createAdd(
        B.createMul(Ly, B.getInt(static_cast<int32_t>(Plan.TileX))), Lx,
        "lin");
    EntryBlock = Entry;
  }

  /// Allocates the tile for \p A and records its geometry.
  TileInfo &tileFor(const BufferAccess &A) {
    auto It = Tiles.find(A.Buffer);
    if (It != Tiles.end())
      return It->second;
    TileInfo T;
    T.HaloX = static_cast<unsigned>(A.haloX());
    T.HaloY = static_cast<unsigned>(A.haloY());
    T.TileW = Plan.TileX + 2 * T.HaloX;
    T.TileH = Plan.TileY + 2 * T.HaloY;

    irns::IRBuilder EB(M);
    EB.setInsertPoint(EntryBlock, 0);
    T.Tile = EB.createAlloca(A.Buffer->type().scalarKind(),
                             T.TileW * T.TileH, irns::AddressSpace::Local,
                             "tile." + A.Buffer->name());
    LocalWords += T.TileW * T.TileH;

    B.setInsertPoint(EntryBlock); // Origins appended after lin etc.
    T.OriginX = B.createSub(GroupOriginX,
                            B.getInt(static_cast<int32_t>(T.HaloX)),
                            "originx." + A.Buffer->name());
    T.OriginY = B.createSub(GroupOriginY,
                            B.getInt(static_cast<int32_t>(T.HaloY)),
                            "originy." + A.Buffer->name());
    return Tiles.emplace(A.Buffer, T).first->second;
  }

  /// Emits `for (t = lin; t < Count; t += WgSize) Body(t)` as explicit CFG.
  /// On return the builder is positioned in the exit block.
  void emitStridedLoop(irns::Value *Count, const std::string &Tag,
                       const std::function<void(irns::Value *)> &Body) {
    irns::IRBuilder EB(M);
    EB.setInsertPoint(EntryBlock, 0);
    irns::Value *TVar = EB.createAlloca(irns::ScalarKind::Int, 1,
                                        irns::AddressSpace::Private,
                                        Tag + ".t");

    irns::BasicBlock *CondBB = newBlock(Tag + ".cond");
    irns::BasicBlock *BodyBB = newBlock(Tag + ".body");
    irns::BasicBlock *ExitBB = newBlock(Tag + ".exit");

    B.createStore(Lin, TVar);
    B.createBr(CondBB);

    B.setInsertPoint(CondBB);
    irns::Value *T = B.createLoad(TVar, Tag + ".tv");
    B.createCondBr(B.createCmp(irns::Opcode::CmpLt, T, Count), BodyBB,
                   ExitBB);

    B.setInsertPoint(BodyBB);
    irns::Value *TBody = B.createLoad(TVar);
    Body(TBody);
    B.createStore(
        B.createAdd(TBody,
                    B.getInt(static_cast<int32_t>(Plan.TileX * Plan.TileY))),
        TVar);
    B.createBr(CondBB);

    B.setInsertPoint(ExitBB);
  }

  /// firstLoad: smallest r >= 0 with (origin + r) % Period == 0.
  irns::Value *emitFirstLoad(irns::Value *Origin, unsigned Period,
                             const std::string &Tag) {
    irns::Value *P = B.getInt(static_cast<int32_t>(Period));
    irns::Value *M0 = B.createRem(Origin, P);
    irns::Value *M0p = B.createRem(B.createAdd(M0, P), P);
    return B.createRem(B.createSub(P, M0p), P, Tag + ".firstload");
  }

  /// Loads in[clamp(Gr)*w + clamp(Gc)] and stores it to tile slot
  /// [R*tileW + C].
  void emitTileFill(const BufferAccess &A, const TileInfo &T,
                    irns::Value *R, irns::Value *C, irns::Value *Gr,
                    irns::Value *Gc) {
    irns::Value *GrC = B.createClampInt(
        Gr, B.getInt(0), B.createSub(GlobalH, B.getInt(1)));
    irns::Value *GcC = B.createClampInt(
        Gc, B.getInt(0), B.createSub(GlobalW, B.getInt(1)));
    irns::Value *W = const_cast<irns::Argument *>(A.WidthArg);
    irns::Value *SrcIdx =
        B.createAdd(B.createMul(GrC, W), GcC);
    irns::Value *Val = B.createLoad(
        B.createGep(const_cast<irns::Argument *>(A.Buffer), SrcIdx));
    irns::Value *DstIdx = B.createAdd(
        B.createMul(R, B.getInt(static_cast<int32_t>(T.TileW))), C);
    B.createStore(Val, B.createGep(T.Tile, DstIdx));
  }

  void emitLoader(const BufferAccess &A) {
    TileInfo &T = tileFor(A);
    const std::string Tag = "load." + A.Buffer->name();
    switch (Plan.Scheme.Kind) {
    case SchemeKind::None:
      emitRowLoader(A, T, /*Period=*/1, Tag);
      break;
    case SchemeKind::Rows:
      emitRowLoader(A, T, Plan.Scheme.Period, Tag);
      break;
    case SchemeKind::Cols:
      emitColLoader(A, T, Plan.Scheme.Period, Tag);
      break;
    case SchemeKind::Stencil:
      emitStencilLoader(A, T);
      break;
    case SchemeKind::Grid:
      emitGridLoader(A, T, Plan.Scheme.Period, Tag);
      break;
    }
  }

  void emitRowLoader(const BufferAccess &A, TileInfo &T, unsigned Period,
                     const std::string &Tag) {
    irns::Value *FL = Period == 1 ? static_cast<irns::Value *>(B.getInt(0))
                                  : emitFirstLoad(T.OriginY, Period, Tag);
    // numLoadRows = (tileH - FL + Period - 1) / Period
    irns::Value *NumRows = B.createDiv(
        B.createAdd(B.createSub(B.getInt(static_cast<int32_t>(T.TileH)),
                                FL),
                    B.getInt(static_cast<int32_t>(Period - 1))),
        B.getInt(static_cast<int32_t>(Period)), Tag + ".numrows");
    irns::Value *Count = B.createMul(
        NumRows, B.getInt(static_cast<int32_t>(T.TileW)), Tag + ".count");
    irns::Value *PeriodV = B.getInt(static_cast<int32_t>(Period));
    emitStridedLoop(Count, Tag, [&](irns::Value *TIdx) {
      irns::Value *Lr = B.createDiv(
          TIdx, B.getInt(static_cast<int32_t>(T.TileW)), Tag + ".lr");
      irns::Value *C = B.createSub(
          TIdx,
          B.createMul(Lr, B.getInt(static_cast<int32_t>(T.TileW))),
          Tag + ".c");
      irns::Value *R =
          B.createAdd(FL, B.createMul(Lr, PeriodV), Tag + ".r");
      irns::Value *Gr = B.createAdd(T.OriginY, R);
      irns::Value *Gc = B.createAdd(T.OriginX, C);
      emitTileFill(A, T, R, C, Gr, Gc);
    });
  }

  void emitColLoader(const BufferAccess &A, TileInfo &T, unsigned Period,
                     const std::string &Tag) {
    irns::Value *FL = emitFirstLoad(T.OriginX, Period, Tag);
    irns::Value *NumCols = B.createDiv(
        B.createAdd(B.createSub(B.getInt(static_cast<int32_t>(T.TileW)),
                                FL),
                    B.getInt(static_cast<int32_t>(Period - 1))),
        B.getInt(static_cast<int32_t>(Period)), Tag + ".numcols");
    irns::Value *Count = B.createMul(
        NumCols, B.getInt(static_cast<int32_t>(T.TileH)), Tag + ".count");
    irns::Value *PeriodV = B.getInt(static_cast<int32_t>(Period));
    // Row-major over (row, loaded-column) so consecutive work items touch
    // the same row: this is exactly the poorly coalescing access pattern a
    // column perforation produces on real hardware.
    emitStridedLoop(Count, Tag, [&](irns::Value *TIdx) {
      irns::Value *R = B.createDiv(TIdx, NumCols, Tag + ".r");
      irns::Value *K =
          B.createSub(TIdx, B.createMul(R, NumCols), Tag + ".k");
      irns::Value *C =
          B.createAdd(FL, B.createMul(K, PeriodV), Tag + ".c");
      irns::Value *Gr = B.createAdd(T.OriginY, R);
      irns::Value *Gc = B.createAdd(T.OriginX, C);
      emitTileFill(A, T, R, C, Gr, Gc);
    });
  }

  /// numLoad = ceil((NumLines - FL) / Period) for one axis.
  irns::Value *emitNumLoaded(irns::Value *FL, unsigned NumLines,
                             unsigned Period, const std::string &Name) {
    return B.createDiv(
        B.createAdd(
            B.createSub(B.getInt(static_cast<int32_t>(NumLines)), FL),
            B.getInt(static_cast<int32_t>(Period - 1))),
        B.getInt(static_cast<int32_t>(Period)), Name);
  }

  void emitGridLoader(const BufferAccess &A, TileInfo &T, unsigned Period,
                      const std::string &Tag) {
    irns::Value *FLy = emitFirstLoad(T.OriginY, Period, Tag + ".y");
    irns::Value *FLx = emitFirstLoad(T.OriginX, Period, Tag + ".x");
    irns::Value *NumRows =
        emitNumLoaded(FLy, T.TileH, Period, Tag + ".numrows");
    irns::Value *NumCols =
        emitNumLoaded(FLx, T.TileW, Period, Tag + ".numcols");
    irns::Value *Count = B.createMul(NumRows, NumCols, Tag + ".count");
    irns::Value *PeriodV = B.getInt(static_cast<int32_t>(Period));
    // Row-major over (loaded row, loaded column): consecutive items load
    // column-strided elements of one row, like a strided gather.
    emitStridedLoop(Count, Tag, [&](irns::Value *TIdx) {
      irns::Value *Lr = B.createDiv(TIdx, NumCols, Tag + ".lr");
      irns::Value *Lc =
          B.createSub(TIdx, B.createMul(Lr, NumCols), Tag + ".lc");
      irns::Value *R =
          B.createAdd(FLy, B.createMul(Lr, PeriodV), Tag + ".r");
      irns::Value *C =
          B.createAdd(FLx, B.createMul(Lc, PeriodV), Tag + ".c");
      irns::Value *Gr = B.createAdd(T.OriginY, R);
      irns::Value *Gc = B.createAdd(T.OriginX, C);
      emitTileFill(A, T, R, C, Gr, Gc);
    });
  }

  void emitStencilLoader(const BufferAccess &A, TileInfo &T) {
    // One element per work item: the item's own pixel, placed at the tile
    // center. The halo ring is reconstructed later.
    irns::Value *R = B.createAdd(
        Ly, B.getInt(static_cast<int32_t>(T.HaloY)), "st.r");
    irns::Value *C = B.createAdd(
        Lx, B.getInt(static_cast<int32_t>(T.HaloX)), "st.c");
    irns::Value *Gr = B.createAdd(GroupOriginY, Ly);
    irns::Value *Gc = B.createAdd(GroupOriginX, Lx);
    emitTileFill(A, T, R, C, Gr, Gc);
  }

  void emitBarrier() { B.createCall(irns::Builtin::Barrier, {}); }

  /// Emits reconstruction; returns false if the scheme needs none.
  bool emitReconstruction(const BufferAccess &A) {
    TileInfo &T = Tiles.at(A.Buffer);
    const std::string Tag = "recon." + A.Buffer->name();
    switch (Plan.Scheme.Kind) {
    case SchemeKind::None:
      return false;
    case SchemeKind::Rows:
      emitAxisReconstruction(A, T, /*RowAxis=*/true, Tag);
      return true;
    case SchemeKind::Cols:
      emitAxisReconstruction(A, T, /*RowAxis=*/false, Tag);
      return true;
    case SchemeKind::Stencil:
      if (T.HaloX == 0 && T.HaloY == 0)
        return false;
      emitStencilReconstruction(A, T, Tag);
      return true;
    case SchemeKind::Grid:
      // Two passes: first complete the loaded rows along x, then fill
      // the skipped rows along y from the (now complete) loaded rows.
      emitGridStage1(A, T, Tag + ".x");
      emitBarrier();
      emitAxisReconstruction(A, T, /*RowAxis=*/true, Tag + ".yy");
      return true;
    }
    return false;
  }

  /// Reconstruction geometry of one skipped line/element on an axis.
  struct SkipMap {
    irns::Value *Pos = nullptr;      ///< Tile coordinate of the skipped line.
    irns::Value *Mm = nullptr;       ///< Distance to previous loaded line.
    irns::Value *Prev = nullptr;
    irns::Value *Next = nullptr;
    irns::Value *HavePrev = nullptr;
    irns::Value *HaveNext = nullptr;
  };

  /// Maps the \p SkipIdx-th skipped line (0-based among skipped lines) to
  /// its tile coordinate and bracketing loaded lines.
  SkipMap emitSkipMapping(irns::Value *SkipIdx, irns::Value *FL,
                          irns::Value *Origin, unsigned Period,
                          unsigned NumLines, const std::string &Tag) {
    irns::Value *P = B.getInt(static_cast<int32_t>(Period));
    // Sr < FL  -> leading skipped run: Pos = Sr.
    // Sr >= FL -> blocks of (Period-1) skipped lines after each loaded:
    //   Pos = FL + q*Period + 1 + rem.
    irns::Value *SrAdj = B.createSub(SkipIdx, FL);
    irns::Value *Pm1 = B.getInt(static_cast<int32_t>(Period - 1));
    irns::Value *SrPos =
        B.createCall(irns::Builtin::Max, {SrAdj, B.getInt(0)});
    irns::Value *Q = B.createDiv(SrPos, Pm1);
    irns::Value *Rem = B.createSub(SrPos, B.createMul(Q, Pm1));
    irns::Value *PosTail = B.createAdd(
        B.createAdd(FL, B.createMul(Q, P)),
        B.createAdd(B.getInt(1), Rem));
    SkipMap Map;
    Map.Pos = B.createSelect(
        B.createCmp(irns::Opcode::CmpLt, SkipIdx, FL), SkipIdx, PosTail,
        Tag + ".pos");
    irns::Value *MRaw = B.createRem(B.createAdd(Origin, Map.Pos), P);
    Map.Mm = B.createRem(B.createAdd(MRaw, P), P, Tag + ".m");
    Map.Prev = B.createSub(Map.Pos, Map.Mm, Tag + ".prev");
    Map.Next = B.createAdd(Map.Prev, P, Tag + ".next");
    Map.HavePrev =
        B.createCmp(irns::Opcode::CmpGe, Map.Prev, B.getInt(0));
    Map.HaveNext = B.createCmp(
        irns::Opcode::CmpLt, Map.Next,
        B.getInt(static_cast<int32_t>(NumLines)));
    return Map;
  }

  /// Emits the reconstructed value for a skipped position: NN picks the
  /// nearer existing loaded line; LI interpolates with weight m/Period
  /// and falls back to the available line at tile edges (paper 5.1).
  /// \p LineLoad reads the tile value on a given loaded line.
  irns::Value *
  emitReconValue(const SkipMap &Map, bool IsFloat, unsigned Period,
                 const std::string &Tag,
                 const std::function<irns::Value *(irns::Value *)>
                     &LineLoad) {
    irns::Value *P = B.getInt(static_cast<int32_t>(Period));
    if (Plan.Scheme.Recon == ReconstructionKind::NearestNeighbor ||
        !IsFloat) {
      irns::Value *UsePrev = B.createCmp(
          irns::Opcode::CmpLe, B.createMul(Map.Mm, B.getInt(2)), P);
      irns::Value *Choice = B.createSelect(UsePrev, Map.Prev, Map.Next);
      Choice = B.createSelect(Map.HavePrev, Choice, Map.Next);
      Choice = B.createSelect(Map.HaveNext, Choice, Map.Prev);
      return LineLoad(Choice);
    }
    irns::Value *PSrc = B.createSelect(Map.HavePrev, Map.Prev, Map.Next);
    irns::Value *NSrc = B.createSelect(Map.HaveNext, Map.Next, PSrc);
    irns::Value *VP = LineLoad(PSrc);
    irns::Value *VN = LineLoad(NSrc);
    irns::Value *Both = B.createLogical(irns::Opcode::LogicalAnd,
                                        Map.HavePrev, Map.HaveNext);
    irns::Value *WNum = B.createSelect(
        Both, Map.Mm, B.createSelect(Map.HavePrev, B.getInt(0), P));
    irns::Value *Wf = B.createDiv(
        B.createIntToFloat(WNum), B.getFloat(static_cast<float>(Period)),
        Tag + ".w");
    return B.createAdd(VP, B.createMul(B.createSub(VN, VP), Wf),
                       Tag + ".li");
  }

  /// Grid stage 1: on every *loaded* row, reconstruct the skipped
  /// columns from the loaded grid points of that row.
  void emitGridStage1(const BufferAccess &A, TileInfo &T,
                      const std::string &Tag) {
    unsigned Period = Plan.Scheme.Period;
    irns::Value *FLy = emitFirstLoad(T.OriginY, Period, Tag + ".fy");
    irns::Value *FLx = emitFirstLoad(T.OriginX, Period, Tag + ".fx");
    irns::Value *NumRows =
        emitNumLoaded(FLy, T.TileH, Period, Tag + ".numrows");
    irns::Value *NumCols =
        emitNumLoaded(FLx, T.TileW, Period, Tag + ".numcols");
    irns::Value *NumSkipCols = B.createSub(
        B.getInt(static_cast<int32_t>(T.TileW)), NumCols,
        Tag + ".numskip");
    irns::Value *Count =
        B.createMul(NumRows, NumSkipCols, Tag + ".count");
    bool IsFloat =
        A.Buffer->type().scalarKind() == irns::ScalarKind::Float;

    emitStridedLoop(Count, Tag, [&](irns::Value *TIdx) {
      irns::Value *K = B.createDiv(TIdx, NumSkipCols, Tag + ".k");
      irns::Value *S =
          B.createSub(TIdx, B.createMul(K, NumSkipCols), Tag + ".s");
      irns::Value *Row = B.createAdd(
          FLy, B.createMul(K, B.getInt(static_cast<int32_t>(Period))),
          Tag + ".row");
      SkipMap Map =
          emitSkipMapping(S, FLx, T.OriginX, Period, T.TileW, Tag);
      irns::Value *Val = emitReconValue(
          Map, IsFloat, Period, Tag, [&](irns::Value *Col) {
            return emitTileLoad(T, Row, Col);
          });
      irns::Value *DstIdx = B.createAdd(
          B.createMul(Row, B.getInt(static_cast<int32_t>(T.TileW))),
          Map.Pos);
      B.createStore(Val, B.createGep(T.Tile, DstIdx));
    });
  }

  /// Reads tile[R*tileW + C] (axis-aware) as the element scalar type.
  irns::Value *emitTileLoad(const TileInfo &T, irns::Value *R,
                            irns::Value *C) {
    irns::Value *Idx = B.createAdd(
        B.createMul(R, B.getInt(static_cast<int32_t>(T.TileW))), C);
    return B.createLoad(B.createGep(T.Tile, Idx));
  }

  /// Rows/Cols reconstruction: for every skipped line, interpolate (LI) or
  /// copy (NN) from the enclosing loaded lines; tile edges fall back to
  /// the single available line.
  void emitAxisReconstruction(const BufferAccess &A, TileInfo &T,
                              bool RowAxis, const std::string &Tag) {
    unsigned Period = Plan.Scheme.Period;
    unsigned LineLen = RowAxis ? T.TileW : T.TileH; // Elements per line.
    unsigned NumLines = RowAxis ? T.TileH : T.TileW;
    irns::Value *Origin = RowAxis ? T.OriginY : T.OriginX;

    irns::Value *P = B.getInt(static_cast<int32_t>(Period));
    irns::Value *FL = emitFirstLoad(Origin, Period, Tag);
    irns::Value *NumLoad = B.createDiv(
        B.createAdd(
            B.createSub(B.getInt(static_cast<int32_t>(NumLines)), FL),
            B.getInt(static_cast<int32_t>(Period - 1))),
        P, Tag + ".numload");
    irns::Value *NumSkip = B.createSub(
        B.getInt(static_cast<int32_t>(NumLines)), NumLoad, Tag + ".numskip");
    irns::Value *Count = B.createMul(
        NumSkip, B.getInt(static_cast<int32_t>(LineLen)), Tag + ".count");

    bool IsFloat =
        A.Buffer->type().scalarKind() == irns::ScalarKind::Float;
    emitStridedLoop(Count, Tag, [&](irns::Value *TIdx) {
      irns::Value *Sr = B.createDiv(
          TIdx, B.getInt(static_cast<int32_t>(LineLen)), Tag + ".sr");
      irns::Value *C = B.createSub(
          TIdx, B.createMul(Sr, B.getInt(static_cast<int32_t>(LineLen))),
          Tag + ".c");
      SkipMap Map = emitSkipMapping(Sr, FL, Origin, Period, NumLines, Tag);
      irns::Value *Val = emitReconValue(
          Map, IsFloat, Period, Tag, [&](irns::Value *Line) {
            return RowAxis ? emitTileLoad(T, Line, C)
                           : emitTileLoad(T, C, Line);
          });
      irns::Value *DstIdx =
          RowAxis
              ? B.createAdd(
                    B.createMul(Map.Pos,
                                B.getInt(static_cast<int32_t>(T.TileW))),
                    C)
              : B.createAdd(
                    B.createMul(C,
                                B.getInt(static_cast<int32_t>(T.TileW))),
                    Map.Pos);
      B.createStore(Val, B.createGep(T.Tile, DstIdx));
    });
  }

  /// Stencil reconstruction: every halo element copies its nearest center
  /// element (NN toward the tile interior).
  void emitStencilReconstruction(const BufferAccess &A, TileInfo &T,
                                 const std::string &Tag) {
    (void)A;
    unsigned TileElems = T.TileW * T.TileH;
    emitStridedLoop(
        B.getInt(static_cast<int32_t>(TileElems)), Tag,
        [&](irns::Value *TIdx) {
          irns::Value *R = B.createDiv(
              TIdx, B.getInt(static_cast<int32_t>(T.TileW)), Tag + ".r");
          irns::Value *C = B.createSub(
              TIdx,
              B.createMul(R, B.getInt(static_cast<int32_t>(T.TileW))),
              Tag + ".c");
          irns::Value *Sr = B.createClampInt(
              R, B.getInt(static_cast<int32_t>(T.HaloY)),
              B.getInt(static_cast<int32_t>(T.HaloY + Plan.TileY - 1)));
          irns::Value *Sc = B.createClampInt(
              C, B.getInt(static_cast<int32_t>(T.HaloX)),
              B.getInt(static_cast<int32_t>(T.HaloX + Plan.TileX - 1)));
          irns::Value *IsHalo = B.createLogical(
              irns::Opcode::LogicalOr,
              B.createCmp(irns::Opcode::CmpNe, R, Sr),
              B.createCmp(irns::Opcode::CmpNe, C, Sc));

          irns::BasicBlock *FillBB = newBlock(Tag + ".fill");
          irns::BasicBlock *ContBB = newBlock(Tag + ".cont");
          B.createCondBr(IsHalo, FillBB, ContBB);
          B.setInsertPoint(FillBB);
          irns::Value *Val = emitTileLoad(T, Sr, Sc);
          irns::Value *DstIdx = B.createAdd(
              B.createMul(R, B.getInt(static_cast<int32_t>(T.TileW))), C);
          B.createStore(Val, B.createGep(T.Tile, DstIdx));
          B.createBr(ContBB);
          B.setInsertPoint(ContBB);
        });
  }

  /// Jumps from the last preamble block into the original entry.
  void finishPreamble() {
    B.createBr(F->block(NextBlockPos));
  }

  /// Redirects every matched load of \p A from global memory into the
  /// tile: newIdx = (row - originY) * tileW + (col - originX).
  void rewriteBody(const BufferAccess &A) {
    const TileInfo &T = Tiles.at(A.Buffer);
    for (const LoadSite &L : A.Loads) {
      irns::BasicBlock *BB = L.Gep->parent();
      size_t Pos = BB->indexOf(L.Gep);
      irns::IRBuilder RB(M);
      RB.setInsertPoint(BB, Pos);
      irns::Value *NR = RB.createSub(L.RowVal, T.OriginY);
      irns::Value *NC = RB.createSub(L.ColVal, T.OriginX);
      irns::Value *NIdx = RB.createAdd(
          RB.createMul(NR, RB.getInt(static_cast<int32_t>(T.TileW))), NC);
      irns::Value *NGep = RB.createGep(T.Tile, NIdx);
      L.Load->setOperand(0, NGep);
    }
  }

  irns::Module &M;
  irns::Function &OrigF;
  const PerforationPlan &Plan;
  std::string NewName;
  irns::AnalysisManager *AM;
  irns::IRBuilder B;

  irns::Function *F = nullptr;
  KernelAccessInfo Info;
  std::map<const irns::Argument *, TileInfo> Tiles;
  irns::BasicBlock *EntryBlock = nullptr;
  irns::Value *Lx = nullptr;
  irns::Value *Ly = nullptr;
  irns::Value *Lin = nullptr;
  irns::Value *GlobalW = nullptr;
  irns::Value *GlobalH = nullptr;
  irns::Value *GroupOriginX = nullptr;
  irns::Value *GroupOriginY = nullptr;
  size_t NextBlockPos = 0;
  unsigned LocalWords = 0;
};

} // namespace

Expected<TransformResult>
perf::applyInputPerforation(ir::Module &M, ir::Function &F,
                            const PerforationPlan &Plan,
                            const std::string &NewName,
                            ir::AnalysisManager *AM) {
  return TransformImpl(M, F, Plan, NewName, AM).run();
}
