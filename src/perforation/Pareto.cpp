//===- perforation/Pareto.cpp ----------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/Pareto.h"

#include <algorithm>

using namespace kperf;
using namespace kperf::perf;

bool perf::dominates(const TradeoffPoint &A, const TradeoffPoint &B) {
  if (A.Speedup < B.Speedup || A.Error > B.Error)
    return false;
  return A.Speedup > B.Speedup || A.Error < B.Error;
}

std::vector<size_t>
perf::paretoFront(const std::vector<TradeoffPoint> &Points) {
  std::vector<size_t> Front;
  for (size_t I = 0; I < Points.size(); ++I) {
    bool Dominated = false;
    for (size_t J = 0; J < Points.size() && !Dominated; ++J)
      if (I != J && dominates(Points[J], Points[I]))
        Dominated = true;
    if (!Dominated)
      Front.push_back(I);
  }
  std::sort(Front.begin(), Front.end(), [&](size_t A, size_t B) {
    return Points[A].Speedup < Points[B].Speedup;
  });
  return Front;
}
