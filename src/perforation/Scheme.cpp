//===- perforation/Scheme.cpp ----------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/Scheme.h"

#include "support/StringUtils.h"

using namespace kperf;
using namespace kperf::perf;

std::string PerforationScheme::str() const {
  auto reconName = [&]() {
    return Recon == ReconstructionKind::NearestNeighbor ? "NN" : "LI";
  };
  // Labels carry the actual period: Period/2 used to collapse rows(2)
  // and rows(3) onto the same "Rows1" label, colliding tuner and bench
  // keys.
  switch (Kind) {
  case SchemeKind::None:
    return "Baseline";
  case SchemeKind::Rows:
    return format("Rows%u:%s", Period, reconName());
  case SchemeKind::Cols:
    return format("Cols%u:%s", Period, reconName());
  case SchemeKind::Stencil:
    return "Stencil1:NN";
  case SchemeKind::Grid:
    return format("Grid%u:%s", Period, reconName());
  }
  return "?";
}

double PerforationScheme::loadedFraction(unsigned TileW, unsigned TileH,
                                         unsigned HaloX,
                                         unsigned HaloY) const {
  double Total = static_cast<double>(TileW) * TileH;
  switch (Kind) {
  case SchemeKind::None:
    return 1.0;
  case SchemeKind::Rows:
    return 1.0 / static_cast<double>(Period);
  case SchemeKind::Cols:
    return 1.0 / static_cast<double>(Period);
  case SchemeKind::Stencil: {
    // Clamp to 0 when the tile is smaller than twice the halo: the
    // unsigned subtraction would otherwise wrap and report a loaded
    // fraction far above 1.
    double CenterW = TileW > 2 * HaloX
                         ? static_cast<double>(TileW - 2 * HaloX)
                         : 0.0;
    double CenterH = TileH > 2 * HaloY
                         ? static_cast<double>(TileH - 2 * HaloY)
                         : 0.0;
    return CenterW * CenterH / Total;
  }
  case SchemeKind::Grid:
    return 1.0 / (static_cast<double>(Period) * Period);
  }
  return 1.0;
}

std::vector<std::string> perf::schemeMask(const PerforationScheme &Scheme,
                                          unsigned TileW, unsigned TileH,
                                          unsigned HaloX, unsigned HaloY,
                                          int OriginX, int OriginY) {
  std::vector<std::string> Mask(TileH, std::string(TileW, '.'));
  for (unsigned R = 0; R < TileH; ++R) {
    for (unsigned C = 0; C < TileW; ++C) {
      bool Loaded = false;
      switch (Scheme.Kind) {
      case SchemeKind::None:
        Loaded = true;
        break;
      case SchemeKind::Rows: {
        int GlobalRow = OriginY + static_cast<int>(R);
        int M = GlobalRow % static_cast<int>(Scheme.Period);
        Loaded = ((M + static_cast<int>(Scheme.Period)) %
                  static_cast<int>(Scheme.Period)) == 0;
        break;
      }
      case SchemeKind::Cols: {
        int GlobalCol = OriginX + static_cast<int>(C);
        int M = GlobalCol % static_cast<int>(Scheme.Period);
        Loaded = ((M + static_cast<int>(Scheme.Period)) %
                  static_cast<int>(Scheme.Period)) == 0;
        break;
      }
      case SchemeKind::Stencil:
        Loaded = R >= HaloY && R < TileH - HaloY && C >= HaloX &&
                 C < TileW - HaloX;
        break;
      case SchemeKind::Grid: {
        int P = static_cast<int>(Scheme.Period);
        int GR = OriginY + static_cast<int>(R);
        int GC = OriginX + static_cast<int>(C);
        Loaded = ((GR % P + P) % P) == 0 && ((GC % P + P) % P) == 0;
        break;
      }
      }
      if (Loaded)
        Mask[R][C] = '#';
    }
  }
  return Mask;
}
