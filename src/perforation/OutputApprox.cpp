//===- perforation/OutputApprox.cpp ----------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/OutputApprox.h"

#include "ir/Clone.h"
#include "ir/Passes.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "perforation/AccessAnalysis.h"

#include <vector>

using namespace kperf;
using namespace kperf::perf;
namespace irns = kperf::ir;

namespace {

/// Replaces every use of \p From with \p To, except in \p SkipSet.
void replaceAllUses(irns::Function &F, irns::Value *From, irns::Value *To,
                    const std::vector<irns::Instruction *> &Skip) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions()) {
      bool Skipped = false;
      for (irns::Instruction *S : Skip)
        if (S == I.get())
          Skipped = true;
      if (!Skipped)
        I->replaceUsesOfWith(From, To);
    }
}

/// Remaps every get_global_id(Dim) call C to clamp(C * Period + Offset,
/// 0, boundArg - 1), so the (shrunk) launch computes block centers.
void remapGlobalId(irns::Module &M, irns::Function &F, int Dim,
                   unsigned Period, unsigned Offset,
                   irns::Argument *BoundArg) {
  std::vector<irns::Instruction *> Calls;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (I->opcode() == irns::Opcode::Call &&
          I->callee() == irns::Builtin::GetGlobalId)
        if (const auto *D =
                irns::dyn_cast<irns::ConstantInt>(I->operand(0)))
          if (D->value() == Dim)
            Calls.push_back(I.get());

  irns::IRBuilder B(M);
  for (irns::Instruction *Call : Calls) {
    irns::BasicBlock *BB = Call->parent();
    size_t Pos = BB->indexOf(Call);
    B.setInsertPoint(BB, Pos + 1);
    irns::Value *Scaled = B.createMul(
        Call, B.getInt(static_cast<int32_t>(Period)));
    irns::Value *Shifted =
        B.createAdd(Scaled, B.getInt(static_cast<int32_t>(Offset)));
    irns::Instruction *BoundLoad = nullptr;
    irns::Value *Bound = BoundArg;
    // Scalar args are values directly usable here.
    (void)BoundLoad;
    irns::Value *Mapped = B.createClampInt(
        Shifted, B.getInt(0), B.createSub(Bound, B.getInt(1)));
    std::vector<irns::Instruction *> Skip{
        irns::cast<irns::Instruction>(Scaled)};
    replaceAllUses(F, Call, Mapped, Skip);
  }
}

} // namespace

Expected<OutputApproxResult> perf::applyOutputApproximation(
    ir::Module &M, ir::Function &F, const OutputApproxPlan &Plan,
    const std::string &NewName) {
  if (Plan.ApproxPerComputed == 0 || Plan.ApproxPerComputed % 2 != 0)
    return makeError("output approximation: ApproxPerComputed must be a "
                     "positive even number (got %u)",
                     Plan.ApproxPerComputed);
  if (Plan.WidthArgIndex >= F.numArguments() ||
      Plan.HeightArgIndex >= F.numArguments())
    return makeError("output approximation: width/height argument index "
                     "out of range for '%s'",
                     F.name().c_str());

  // Validate the cleanup pipeline before any IR is created, so a bad
  // spec cannot leave an orphaned kernel in the module.
  Expected<ir::PassPipeline> Pipeline =
      ir::PassPipeline::parse(Plan.PipelineSpec);
  if (!Pipeline)
    return Pipeline.takeError();

  unsigned Period = Plan.ApproxPerComputed + 1;
  unsigned Offset = Period / 2;

  ir::CloneMap Map;
  ir::Function *NewF = ir::cloneFunction(M, F, NewName, Map);
  ir::Argument *WidthArg = NewF->argument(Plan.WidthArgIndex);
  ir::Argument *HeightArg = NewF->argument(Plan.HeightArgIndex);
  if (!WidthArg->type().isInt() || !HeightArg->type().isInt())
    return makeError("output approximation: width/height arguments of "
                     "'%s' must be int",
                     F.name().c_str());

  bool RemapY = Plan.Kind == OutputSchemeKind::Rows ||
                Plan.Kind == OutputSchemeKind::Center;
  bool RemapX = Plan.Kind == OutputSchemeKind::Cols ||
                Plan.Kind == OutputSchemeKind::Center;
  if (RemapY)
    remapGlobalId(M, *NewF, /*Dim=*/1, Period, Offset, HeightArg);
  if (RemapX)
    remapGlobalId(M, *NewF, /*Dim=*/0, Period, Offset, WidthArg);

  // Analyze after remapping so the store sites carry the remapped
  // row/column values.
  Expected<KernelAccessInfo> InfoOr = analyzeKernelAccesses(*NewF);
  if (!InfoOr)
    return InfoOr.takeError();
  if (InfoOr->Outputs.empty())
    return makeError("output approximation: no matched output store in "
                     "'%s'",
                     F.name().c_str());

  // Duplicate each matched store to the approximated neighbors.
  ir::IRBuilder B(M);
  for (const StoreSite &S : InfoOr->Outputs) {
    ir::BasicBlock *BB = S.Store->parent();
    size_t Pos = BB->indexOf(S.Store);
    B.setInsertPoint(BB, Pos + 1);

    std::vector<std::pair<int, int>> Offsets;
    int Lo = -static_cast<int>(Offset);
    int Hi = static_cast<int>(Period - 1 - Offset);
    if (Plan.Kind == OutputSchemeKind::Rows) {
      for (int D = Lo; D <= Hi; ++D)
        if (D != 0)
          Offsets.push_back({D, 0});
    } else if (Plan.Kind == OutputSchemeKind::Cols) {
      for (int D = Lo; D <= Hi; ++D)
        if (D != 0)
          Offsets.push_back({0, D});
    } else {
      for (int Dy = Lo; Dy <= Hi; ++Dy)
        for (int Dx = Lo; Dx <= Hi; ++Dx)
          if (Dy != 0 || Dx != 0)
            Offsets.push_back({Dy, Dx});
    }

    for (auto [Dy, Dx] : Offsets) {
      ir::Value *Row = S.RowVal;
      ir::Value *Col = S.ColVal;
      if (Dy != 0)
        Row = B.createClampInt(
            B.createAdd(Row, B.getInt(Dy)), B.getInt(0),
            B.createSub(HeightArg, B.getInt(1)));
      if (Dx != 0)
        Col = B.createClampInt(
            B.createAdd(Col, B.getInt(Dx)), B.getInt(0),
            B.createSub(WidthArg, B.getInt(1)));
      ir::Value *Idx = B.createAdd(
          B.createMul(Row, const_cast<ir::Argument *>(S.WidthArg)), Col);
      B.createStore(S.StoredValue,
                    B.createGep(const_cast<ir::Argument *>(S.Buffer), Idx));
    }
  }

  ir::PassRunOptions RunOpts;
  RunOpts.VerifyEach = Plan.VerifyEach;
  Expected<ir::PipelineStats> Stats = Pipeline->run(*NewF, M, RunOpts);
  if (!Stats)
    return Stats.takeError();
  OutputApproxResult Result;
  Result.PassStats = Stats.takeValue();
  if (Error E = ir::verifyFunction(*NewF))
    return E;

  Result.Kernel = NewF;
  Result.DivX = RemapX ? Period : 1;
  Result.DivY = RemapY ? Period : 1;
  return Result;
}
