//===- perforation/AccessAnalysis.cpp --------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/AccessAnalysis.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace kperf;
using namespace kperf::perf;
namespace irns = kperf::ir;

namespace {

/// Symbol in an affine form.
struct Symbol {
  enum class Kind : uint8_t { Gid0, Gid1, Arg, Loop } K;
  const irns::Value *V = nullptr; ///< Argument or induction alloca.

  bool operator<(const Symbol &O) const {
    if (K != O.K)
      return K < O.K;
    return V < O.V;
  }
  bool operator==(const Symbol &O) const { return K == O.K && V == O.V; }
};

/// c0 + sum(coeff_i * sym_i), or invalid ("not affine").
struct Affine {
  bool Valid = false;
  int64_t Const = 0;
  std::map<Symbol, int64_t> Coeffs;

  static Affine invalid() { return Affine(); }
  static Affine constant(int64_t C) {
    Affine A;
    A.Valid = true;
    A.Const = C;
    return A;
  }
  static Affine symbol(Symbol S) {
    Affine A;
    A.Valid = true;
    A.Coeffs[S] = 1;
    return A;
  }

  bool isConstant() const { return Valid && Coeffs.empty(); }

  /// Returns the coefficient of \p S (0 if absent).
  int64_t coeff(Symbol S) const {
    auto It = Coeffs.find(S);
    return It == Coeffs.end() ? 0 : It->second;
  }

  Affine add(const Affine &O, int64_t Sign) const {
    if (!Valid || !O.Valid)
      return invalid();
    Affine R = *this;
    R.Const += Sign * O.Const;
    for (const auto &[S, C] : O.Coeffs) {
      R.Coeffs[S] += Sign * C;
      if (R.Coeffs[S] == 0)
        R.Coeffs.erase(S);
    }
    return R;
  }

  Affine scale(int64_t Factor) const {
    if (!Valid)
      return invalid();
    Affine R;
    R.Valid = true;
    R.Const = Const * Factor;
    if (Factor != 0)
      for (const auto &[S, C] : Coeffs)
        R.Coeffs[S] = C * Factor;
    return R;
  }
};

/// Range of an induction variable (inclusive).
struct LoopRange {
  int64_t Lo = 0;
  int64_t Hi = 0;
};

/// Per-function affine evaluation with memoization, looking through
/// single-store private scalars and canonical induction variables.
class AffineEvaluator {
public:
  explicit AffineEvaluator(const irns::Function &F) : F(F) {
    indexAllocas();
  }

  Affine evaluate(const irns::Value *V) {
    auto It = Memo.find(V);
    if (It != Memo.end())
      return It->second;
    // Cycle guard: mark as invalid while in flight.
    Memo[V] = Affine::invalid();
    Affine Result = compute(V);
    Memo[V] = Result;
    return Result;
  }

  /// Returns the range of the loop symbol for \p InductionAlloca.
  const LoopRange *loopRange(const irns::Value *InductionAlloca) const {
    auto It = Inductions.find(InductionAlloca);
    return It == Inductions.end() ? nullptr : &It->second;
  }

  /// Computes the [min,max] value range of \p A given loop ranges; returns
  /// false if A contains Arg symbols (unbounded).
  bool valueRange(const Affine &A, int64_t &Lo, int64_t &Hi) const {
    if (!A.Valid)
      return false;
    Lo = Hi = A.Const;
    for (const auto &[S, C] : A.Coeffs) {
      if (S.K != Symbol::Kind::Loop)
        return false;
      const LoopRange *R = loopRange(S.V);
      if (!R)
        return false;
      int64_t T0 = C * R->Lo, T1 = C * R->Hi;
      Lo += std::min(T0, T1);
      Hi += std::max(T0, T1);
    }
    return true;
  }

private:
  struct AllocaInfo {
    std::vector<const irns::Instruction *> Stores;
    bool HasIndirectAccess = false; ///< Address taken through a Gep.
  };

  /// Catalogs direct stores to each private scalar alloca and detects
  /// canonical induction variables (init store of a constant + one
  /// self-increment + a bounding compare feeding a conditional branch).
  void indexAllocas() {
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        if (I->opcode() == irns::Opcode::Gep)
          if (const auto *Base = irns::dyn_cast<irns::Instruction>(
                  I->operand(0)))
            if (Base->opcode() == irns::Opcode::Alloca)
              Allocas[Base].HasIndirectAccess = true;
        if (I->opcode() != irns::Opcode::Store)
          continue;
        const auto *Ptr = irns::dyn_cast<irns::Instruction>(I->operand(1));
        if (Ptr && Ptr->opcode() == irns::Opcode::Alloca)
          Allocas[Ptr].Stores.push_back(I.get());
      }
    }
    for (auto &[A, Info] : Allocas)
      if (!Info.HasIndirectAccess && Info.Stores.size() == 2)
        detectInduction(A, Info);
  }

  void detectInduction(const irns::Value *A, const AllocaInfo &Info) {
    // One store must be `A = A + step`; the other the initial constant.
    const irns::Instruction *InitStore = nullptr;
    const irns::Instruction *StepStore = nullptr;
    int64_t Step = 0;
    for (const irns::Instruction *S : Info.Stores) {
      const auto *V = irns::dyn_cast<irns::Instruction>(S->operand(0));
      if (V && V->opcode() == irns::Opcode::Add) {
        const irns::Value *L = V->operand(0);
        const irns::Value *R = V->operand(1);
        const auto *LoadL = irns::dyn_cast<irns::Instruction>(L);
        const auto *CR = irns::dyn_cast<irns::ConstantInt>(R);
        if (LoadL && LoadL->opcode() == irns::Opcode::Load &&
            LoadL->operand(0) == A && CR) {
          StepStore = S;
          Step = CR->value();
          continue;
        }
      }
      InitStore = S;
    }
    if (!InitStore || !StepStore || Step <= 0)
      return;
    const auto *Init =
        irns::dyn_cast<irns::ConstantInt>(InitStore->operand(0));
    if (!Init)
      return;

    // Find the bounding comparison: cmp.lt/le(load A, const).
    std::optional<LoopRange> Range;
    for (const auto &BB : F.blocks()) {
      for (const auto &I : BB->instructions()) {
        if (I->opcode() != irns::Opcode::CmpLt &&
            I->opcode() != irns::Opcode::CmpLe)
          continue;
        const auto *L = irns::dyn_cast<irns::Instruction>(I->operand(0));
        const auto *Bound =
            irns::dyn_cast<irns::ConstantInt>(I->operand(1));
        if (!L || L->opcode() != irns::Opcode::Load ||
            L->operand(0) != A || !Bound)
          continue;
        int64_t Last = I->opcode() == irns::Opcode::CmpLt
                           ? Bound->value() - 1
                           : Bound->value();
        if (Last < Init->value())
          return; // Zero-trip or malformed; not a useful induction.
        // Largest value actually attained given the step.
        Last = Init->value() + ((Last - Init->value()) / Step) * Step;
        Range = LoopRange{Init->value(), Last};
        break;
      }
      if (Range)
        break;
    }
    if (Range)
      Inductions[A] = *Range;
  }

  Affine compute(const irns::Value *V) {
    if (const auto *CI = irns::dyn_cast<irns::ConstantInt>(V))
      return Affine::constant(CI->value());
    if (const auto *A = irns::dyn_cast<irns::Argument>(V)) {
      if (A->type().isInt())
        return Affine::symbol({Symbol::Kind::Arg, A});
      return Affine::invalid();
    }
    const auto *I = irns::dyn_cast<irns::Instruction>(V);
    if (!I)
      return Affine::invalid();

    switch (I->opcode()) {
    case irns::Opcode::Add:
      return evaluate(I->operand(0)).add(evaluate(I->operand(1)), +1);
    case irns::Opcode::Sub:
      return evaluate(I->operand(0)).add(evaluate(I->operand(1)), -1);
    case irns::Opcode::Neg:
      return evaluate(I->operand(0)).scale(-1);
    case irns::Opcode::Mul: {
      Affine L = evaluate(I->operand(0));
      Affine R = evaluate(I->operand(1));
      if (L.isConstant())
        return R.scale(L.Const);
      if (R.isConstant())
        return L.scale(R.Const);
      return Affine::invalid();
    }
    case irns::Opcode::Load: {
      const auto *Ptr = irns::dyn_cast<irns::Instruction>(I->operand(0));
      if (!Ptr || Ptr->opcode() != irns::Opcode::Alloca)
        return Affine::invalid();
      auto It = Inductions.find(Ptr);
      if (It != Inductions.end())
        return Affine::symbol({Symbol::Kind::Loop, Ptr});
      auto AIt = Allocas.find(Ptr);
      if (AIt == Allocas.end() || AIt->second.HasIndirectAccess ||
          AIt->second.Stores.size() != 1)
        return Affine::invalid();
      // Single-store scalar: its loaded value is the stored value.
      return evaluate(AIt->second.Stores.front()->operand(0));
    }
    case irns::Opcode::Call:
      switch (I->callee()) {
      case irns::Builtin::GetGlobalId: {
        const auto *Dim =
            irns::dyn_cast<irns::ConstantInt>(I->operand(0));
        if (!Dim)
          return Affine::invalid();
        if (Dim->value() == 0)
          return Affine::symbol({Symbol::Kind::Gid0, nullptr});
        if (Dim->value() == 1)
          return Affine::symbol({Symbol::Kind::Gid1, nullptr});
        return Affine::invalid();
      }
      case irns::Builtin::Clamp:
        // Look through boundary clamping; the unclamped range is a sound
        // overapproximation of the footprint (see header).
        return evaluate(I->operand(0));
      default:
        return Affine::invalid();
      }
    default:
      return Affine::invalid();
    }
  }

  const irns::Function &F;
  std::unordered_map<const irns::Value *, Affine> Memo;
  std::unordered_map<const irns::Value *, AllocaInfo> Allocas;
  std::unordered_map<const irns::Value *, LoopRange> Inductions;
};

/// Splits an address expression idx == rowVal * width + colVal.
struct IndexMatch {
  irns::Value *RowVal = nullptr;
  irns::Value *ColVal = nullptr;
  const irns::Argument *WidthArg = nullptr;
};

/// Matches Add(Mul(row, w), col) in any commutative arrangement where one
/// multiplication operand resolves affinely to a pure int argument.
bool matchIndex(AffineEvaluator &Eval, irns::Value *Idx, IndexMatch &M) {
  auto *AddI = irns::dyn_cast<irns::Instruction>(Idx);
  if (!AddI || AddI->opcode() != irns::Opcode::Add)
    return false;
  for (unsigned MulSide = 0; MulSide < 2; ++MulSide) {
    auto *MulI =
        irns::dyn_cast<irns::Instruction>(AddI->operand(MulSide));
    if (!MulI || MulI->opcode() != irns::Opcode::Mul)
      continue;
    irns::Value *Col = AddI->operand(1 - MulSide);
    for (unsigned WidthSide = 0; WidthSide < 2; ++WidthSide) {
      Affine WA = Eval.evaluate(MulI->operand(WidthSide));
      if (!WA.Valid || WA.Const != 0 || WA.Coeffs.size() != 1)
        continue;
      const auto &[Sym, Coeff] = *WA.Coeffs.begin();
      if (Sym.K != Symbol::Kind::Arg || Coeff != 1)
        continue;
      M.RowVal = MulI->operand(1 - WidthSide);
      M.ColVal = Col;
      M.WidthArg = irns::cast<irns::Argument>(Sym.V);
      return true;
    }
  }
  return false;
}

/// Checks that \p A == gid + [Lo, Hi] for the requested gid dimension.
bool offsetRange(AffineEvaluator &Eval, const Affine &A, bool WantGid1,
                 int &Lo, int &Hi) {
  if (!A.Valid)
    return false;
  Symbol Want{WantGid1 ? Symbol::Kind::Gid1 : Symbol::Kind::Gid0, nullptr};
  Affine Rest = A.add(Affine::symbol(Want), -1);
  if (Rest.coeff(Want) != 0)
    return false;
  Symbol Other{WantGid1 ? Symbol::Kind::Gid0 : Symbol::Kind::Gid1, nullptr};
  if (Rest.coeff(Other) != 0)
    return false;
  int64_t L, H;
  if (!Eval.valueRange(Rest, L, H))
    return false;
  if (L < INT32_MIN || H > INT32_MAX)
    return false;
  Lo = static_cast<int>(L);
  Hi = static_cast<int>(H);
  return true;
}

} // namespace

Expected<KernelAccessInfo> perf::analyzeKernelAccesses(ir::Function &F) {
  AffineEvaluator Eval(F);
  KernelAccessInfo Info;
  std::unordered_map<const ir::Argument *, size_t> InputIndex;

  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions()) {
      bool IsLoad = I->opcode() == ir::Opcode::Load;
      bool IsStore = I->opcode() == ir::Opcode::Store;
      if (!IsLoad && !IsStore)
        continue;
      auto *Gep = ir::dyn_cast<ir::Instruction>(I->operand(IsLoad ? 0 : 1));
      if (!Gep || Gep->opcode() != ir::Opcode::Gep)
        continue;
      const auto *Buf = ir::dyn_cast<ir::Argument>(Gep->operand(0));
      if (!Buf || !Buf->type().isPointer() ||
          Buf->type().addressSpace() != ir::AddressSpace::Global)
        continue;

      IndexMatch M;
      bool Matched = matchIndex(Eval, Gep->operand(1), M);

      if (IsStore) {
        if (!Matched || Buf->isConst())
          continue; // Stores to const args are rejected by the verifier.
        StoreSite S;
        S.Store = I.get();
        S.Gep = Gep;
        S.RowVal = M.RowVal;
        S.ColVal = M.ColVal;
        S.StoredValue = I->operand(0);
        S.Buffer = Buf;
        S.WidthArg = M.WidthArg;
        Info.Outputs.push_back(S);
        continue;
      }

      if (!Buf->isConst())
        continue; // Only read-only inputs are perforation candidates.
      if (!Matched) {
        ++Info.UnmatchedInputLoads;
        continue;
      }

      LoadSite L;
      L.Load = I.get();
      L.Gep = Gep;
      L.RowVal = M.RowVal;
      L.ColVal = M.ColVal;
      if (!offsetRange(Eval, Eval.evaluate(M.RowVal), /*WantGid1=*/true,
                       L.DyMin, L.DyMax) ||
          !offsetRange(Eval, Eval.evaluate(M.ColVal), /*WantGid1=*/false,
                       L.DxMin, L.DxMax)) {
        ++Info.UnmatchedInputLoads;
        continue;
      }

      auto It = InputIndex.find(Buf);
      if (It == InputIndex.end()) {
        BufferAccess A;
        A.Buffer = Buf;
        A.WidthArg = M.WidthArg;
        A.DyMin = L.DyMin;
        A.DyMax = L.DyMax;
        A.DxMin = L.DxMin;
        A.DxMax = L.DxMax;
        A.Loads.push_back(L);
        InputIndex[Buf] = Info.Inputs.size();
        Info.Inputs.push_back(std::move(A));
        continue;
      }
      BufferAccess &A = Info.Inputs[It->second];
      if (A.WidthArg != M.WidthArg) {
        // Inconsistent strides; treat this load as unmatched.
        ++Info.UnmatchedInputLoads;
        continue;
      }
      A.DyMin = std::min(A.DyMin, L.DyMin);
      A.DyMax = std::max(A.DyMax, L.DyMax);
      A.DxMin = std::min(A.DxMin, L.DxMin);
      A.DxMax = std::max(A.DxMax, L.DxMax);
      A.Loads.push_back(L);
    }
  }
  return Info;
}

Expected<const KernelAccessInfo *>
perf::analyzeKernelAccessesCached(ir::AnalysisManager &AM,
                                  ir::Function &F) {
  if (const KernelAccessInfo *Cached = AM.lookup<KernelAccessInfo>(F))
    return Cached;
  Expected<KernelAccessInfo> Info = analyzeKernelAccesses(F);
  if (!Info)
    return Info.takeError();
  return &AM.cache(F, Info.takeValue());
}
