//===- perforation/Pareto.h - Pareto-front utilities --------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pareto-front computation over (speedup, error) points, used for the
/// paper's Fig. 10 and by the autotuner: a configuration is Pareto-optimal
/// if no other configuration is at least as fast *and* at least as
/// accurate, with one of the two strictly better.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_PERFORATION_PARETO_H
#define KPERF_PERFORATION_PARETO_H

#include <cstddef>
#include <string>
#include <vector>

namespace kperf {
namespace perf {

/// One measured configuration.
struct TradeoffPoint {
  std::string Label;
  double Speedup = 0; ///< Higher is better.
  double Error = 0;   ///< Lower is better.
};

/// Returns true if \p A dominates \p B (A is no worse in both objectives
/// and strictly better in at least one).
bool dominates(const TradeoffPoint &A, const TradeoffPoint &B);

/// Returns the indices of Pareto-optimal points, sorted by ascending
/// speedup. Duplicate points are all kept.
std::vector<size_t> paretoFront(const std::vector<TradeoffPoint> &Points);

} // namespace perf
} // namespace kperf

#endif // KPERF_PERFORATION_PARETO_H
