//===- perforation/Tuner.cpp -----------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/Tuner.h"

#include "support/ParallelFor.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace kperf;
using namespace kperf::perf;

std::string TunerConfig::str() const {
  std::string S = format("%s@%ux%u", Scheme.str().c_str(), TileX, TileY);
  if (LoopStride > 1)
    S += format("/L%u", LoopStride);
  return S;
}

std::string TunerResult::summary() const {
  if (!Feasible)
    return format("%-24s infeasible: %s", Config.str().c_str(),
                  Note.c_str());
  std::string S = format("%-24s speedup %5.2fx  MRE %.5f",
                         Config.str().c_str(), M.Speedup, M.Error);
  if (!M.PassStats.Passes.empty())
    S += "  [" + M.PassStats.str() + "]";
  return S;
}

std::vector<std::pair<unsigned, unsigned>>
perf::figure9WorkGroupShapes() {
  return {{2, 128}, {4, 64}, {8, 8},  {8, 16}, {8, 32},
          {16, 8},  {16, 16}, {32, 8}, {64, 4}, {128, 2}};
}

std::vector<TunerConfig> perf::defaultTuningSpace() {
  std::vector<PerforationScheme> Schemes = {
      PerforationScheme::none(),
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
      PerforationScheme::rows(2, ReconstructionKind::Linear),
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor),
      PerforationScheme::rows(4, ReconstructionKind::Linear),
      PerforationScheme::stencil(),
      PerforationScheme::grid(2, ReconstructionKind::Linear),
  };
  std::vector<TunerConfig> Space;
  for (const PerforationScheme &S : Schemes)
    for (auto [X, Y] : figure9WorkGroupShapes())
      for (unsigned Stride : {1u, 2u})
        Space.push_back(TunerConfig{S, X, Y, Stride});
  return Space;
}

std::string perf::jointPipelineSpec(const std::string &Base,
                                    unsigned Stride) {
  if (Stride <= 1)
    return Base;
  std::string Pass = format("perforate-loop(%u)", Stride);
  if (Base.empty())
    return Pass;
  // Split at top-level commas only -- fixpoint(...) groups nest.
  std::vector<std::string> Elements;
  size_t Start = 0;
  int Depth = 0;
  for (size_t I = 0; I <= Base.size(); ++I) {
    if (I == Base.size() || (Base[I] == ',' && Depth == 0)) {
      Elements.push_back(Base.substr(Start, I - Start));
      Start = I + 1;
    } else if (Base[I] == '(') {
      ++Depth;
    } else if (Base[I] == ')') {
      --Depth;
    }
  }
  auto stripped = [](const std::string &S) {
    size_t B = S.find_first_not_of(" \t");
    if (B == std::string::npos)
      return std::string();
    return S.substr(B, S.find_last_not_of(" \t") - B + 1);
  };
  size_t At = Elements.size();
  for (size_t I = 0; I < Elements.size(); ++I) {
    std::string E = stripped(Elements[I]);
    if (E == "unroll" || E.rfind("unroll(", 0) == 0) {
      At = I;
      break;
    }
  }
  if (At == Elements.size()) {
    At = 0;
    while (At < Elements.size() && stripped(Elements[At]) == "mem2reg")
      ++At;
  }
  Elements.insert(Elements.begin() + static_cast<ptrdiff_t>(At), Pass);
  return join(Elements, ",");
}

std::vector<TunerResult>
perf::tuneExhaustive(const std::vector<TunerConfig> &Space,
                     const EvaluateFn &Evaluate) {
  std::vector<TunerResult> Results;
  Results.reserve(Space.size());
  for (const TunerConfig &Config : Space) {
    TunerResult R;
    R.Config = Config;
    Expected<Measurement> M = Evaluate(Config);
    if (M) {
      R.M = *M;
      R.Feasible = true;
    } else {
      R.Note = M.error().message();
    }
    Results.push_back(std::move(R));
  }
  return Results;
}

std::vector<TunerResult>
perf::tuneParallel(const std::vector<TunerConfig> &Space,
                   const EvaluateFn &Evaluate, unsigned Jobs) {
  // Each configuration writes into its own slot, so the result vector
  // is in space order no matter which worker finishes when.
  std::vector<TunerResult> Results(Space.size());
  parallelFor(Space.size(), Jobs, [&](size_t I) {
    TunerResult R;
    R.Config = Space[I];
    Expected<Measurement> M = Evaluate(Space[I]);
    if (M) {
      R.M = *M;
      R.Feasible = true;
    } else {
      R.Note = M.error().message();
    }
    Results[I] = std::move(R);
  });
  return Results;
}

size_t perf::bestWithinErrorBudget(const std::vector<TunerResult> &Results,
                                   double MaxError) {
  size_t Best = ~size_t(0);
  for (size_t I = 0; I < Results.size(); ++I) {
    // NaN compares false against any budget, so a degenerate measurement
    // (0/0 error on an all-skipped tile) would otherwise slip through the
    // filter and win on speedup. Non-finite error is infeasible, period.
    if (!Results[I].Feasible || !std::isfinite(Results[I].M.Error) ||
        Results[I].M.Error > MaxError)
      continue;
    // Fastest wins; an exact speedup tie goes to the lower error. Ties
    // are common, not exotic: the cost model is max(compute, memory),
    // so a config that only trims the non-bottleneck axis (e.g. a loop
    // stride inside a memory-bound tile) keeps the identical modeled
    // time while improving or degrading accuracy.
    if (Best == ~size_t(0) ||
        Results[I].M.Speedup > Results[Best].M.Speedup ||
        (Results[I].M.Speedup == Results[Best].M.Speedup &&
         Results[I].M.Error < Results[Best].M.Error))
      Best = I;
  }
  return Best;
}

std::vector<TradeoffPoint>
perf::toTradeoffPoints(const std::vector<TunerResult> &Results) {
  std::vector<TradeoffPoint> Points;
  for (const TunerResult &R : Results) {
    if (!R.Feasible)
      continue;
    TradeoffPoint P;
    P.Label = R.Config.str();
    P.Speedup = R.M.Speedup;
    P.Error = R.M.Error;
    Points.push_back(std::move(P));
  }
  return Points;
}
