//===- perforation/Tuner.cpp -----------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "perforation/Tuner.h"

#include "support/ParallelFor.h"
#include "support/StringUtils.h"

using namespace kperf;
using namespace kperf::perf;

std::string TunerConfig::str() const {
  return format("%s@%ux%u", Scheme.str().c_str(), TileX, TileY);
}

std::string TunerResult::summary() const {
  if (!Feasible)
    return format("%-24s infeasible: %s", Config.str().c_str(),
                  Note.c_str());
  std::string S = format("%-24s speedup %5.2fx  MRE %.5f",
                         Config.str().c_str(), M.Speedup, M.Error);
  if (!M.PassStats.Passes.empty())
    S += "  [" + M.PassStats.str() + "]";
  return S;
}

std::vector<std::pair<unsigned, unsigned>>
perf::figure9WorkGroupShapes() {
  return {{2, 128}, {4, 64}, {8, 8},  {8, 16}, {8, 32},
          {16, 8},  {16, 16}, {32, 8}, {64, 4}, {128, 2}};
}

std::vector<TunerConfig> perf::defaultTuningSpace() {
  std::vector<PerforationScheme> Schemes = {
      PerforationScheme::none(),
      PerforationScheme::rows(2, ReconstructionKind::NearestNeighbor),
      PerforationScheme::rows(2, ReconstructionKind::Linear),
      PerforationScheme::rows(4, ReconstructionKind::NearestNeighbor),
      PerforationScheme::rows(4, ReconstructionKind::Linear),
      PerforationScheme::stencil(),
      PerforationScheme::grid(2, ReconstructionKind::Linear),
  };
  std::vector<TunerConfig> Space;
  for (const PerforationScheme &S : Schemes)
    for (auto [X, Y] : figure9WorkGroupShapes())
      Space.push_back(TunerConfig{S, X, Y});
  return Space;
}

std::vector<TunerResult>
perf::tuneExhaustive(const std::vector<TunerConfig> &Space,
                     const EvaluateFn &Evaluate) {
  std::vector<TunerResult> Results;
  Results.reserve(Space.size());
  for (const TunerConfig &Config : Space) {
    TunerResult R;
    R.Config = Config;
    Expected<Measurement> M = Evaluate(Config);
    if (M) {
      R.M = *M;
      R.Feasible = true;
    } else {
      R.Note = M.error().message();
    }
    Results.push_back(std::move(R));
  }
  return Results;
}

std::vector<TunerResult>
perf::tuneParallel(const std::vector<TunerConfig> &Space,
                   const EvaluateFn &Evaluate, unsigned Jobs) {
  // Each configuration writes into its own slot, so the result vector
  // is in space order no matter which worker finishes when.
  std::vector<TunerResult> Results(Space.size());
  parallelFor(Space.size(), Jobs, [&](size_t I) {
    TunerResult R;
    R.Config = Space[I];
    Expected<Measurement> M = Evaluate(Space[I]);
    if (M) {
      R.M = *M;
      R.Feasible = true;
    } else {
      R.Note = M.error().message();
    }
    Results[I] = std::move(R);
  });
  return Results;
}

size_t perf::bestWithinErrorBudget(const std::vector<TunerResult> &Results,
                                   double MaxError) {
  size_t Best = ~size_t(0);
  for (size_t I = 0; I < Results.size(); ++I) {
    if (!Results[I].Feasible || Results[I].M.Error > MaxError)
      continue;
    if (Best == ~size_t(0) ||
        Results[I].M.Speedup > Results[Best].M.Speedup)
      Best = I;
  }
  return Best;
}

std::vector<TradeoffPoint>
perf::toTradeoffPoints(const std::vector<TunerResult> &Results) {
  std::vector<TradeoffPoint> Points;
  for (const TunerResult &R : Results) {
    if (!R.Feasible)
      continue;
    TradeoffPoint P;
    P.Label = R.Config.str();
    P.Speedup = R.M.Speedup;
    P.Error = R.M.Error;
    Points.push_back(std::move(P));
  }
  return Points;
}
