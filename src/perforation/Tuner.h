//===- perforation/Tuner.h - Perforation autotuner ----------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive autotuner over perforation configurations (scheme x
/// reconstruction x work-group shape), realizing the paper's future-work
/// item of a library that "automatically applies and tunes the technique".
/// The tuner is measurement-agnostic: callers supply an evaluation
/// callback (the runtime layer provides one that compiles, runs, and
/// scores a configuration on the simulator).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_PERFORATION_TUNER_H
#define KPERF_PERFORATION_TUNER_H

#include "ir/PassManager.h"
#include "perforation/Pareto.h"
#include "perforation/Scheme.h"
#include "support/Error.h"

#include <functional>
#include <vector>

namespace kperf {
namespace perf {

/// One point of the tuning space. LoopStride is the generalized
/// loop-perforation axis: 1 leaves the pipeline alone, higher strides
/// splice `perforate-loop(stride)` into the variant's pass pipeline (see
/// jointPipelineSpec), so the tuner searches scheme x tile x stride
/// jointly.
struct TunerConfig {
  PerforationScheme Scheme;
  unsigned TileX = 16;
  unsigned TileY = 16;
  unsigned LoopStride = 1;

  std::string str() const;
};

/// Measurement of one configuration.
struct Measurement {
  double Speedup = 0;
  double Error = 0;
  /// What the cleanup pipeline did while generating this variant's
  /// kernel (empty when the evaluation involved no transform, e.g. the
  /// accurate baseline).
  ir::PipelineStats PassStats;
};

/// Outcome of evaluating one configuration.
struct TunerResult {
  TunerConfig Config;
  Measurement M;
  bool Feasible = false;
  std::string Note; ///< Failure reason when !Feasible.

  /// One report line: configuration, speedup/error, and -- when the
  /// variant was compiled through the pipeline -- its per-pass stats.
  std::string summary() const;
};

/// Evaluation callback: measure one configuration or explain why it is
/// infeasible (e.g. stencil scheme on a 1x1 kernel).
using EvaluateFn =
    std::function<Expected<Measurement>(const TunerConfig &)>;

/// The default tuning space: the classic scheme x reconstruction points
/// crossed with the work-group shapes of the paper's Fig. 9 and with
/// loop-perforation strides {1, 2}, plus the accurate baseline.
std::vector<TunerConfig> defaultTuningSpace();

/// Splices `perforate-loop(Stride)` into pipeline spec \p Base: before
/// the first top-level `unroll` element when one exists (strided loops
/// must still flatten), otherwise after the leading `mem2reg` run (the
/// induction phis the pass matches exist only after promotion), else at
/// the front. \p Base is returned unchanged when Stride <= 1.
std::string jointPipelineSpec(const std::string &Base, unsigned Stride);

/// The ten work-group shapes swept in the paper's Fig. 9.
std::vector<std::pair<unsigned, unsigned>> figure9WorkGroupShapes();

/// Evaluates every configuration. Infeasible configurations are kept in
/// the result list with Feasible = false.
std::vector<TunerResult> tuneExhaustive(
    const std::vector<TunerConfig> &Space, const EvaluateFn &Evaluate);

/// Evaluates every configuration on a pool of \p Jobs worker threads
/// (0 = one per hardware thread), in the batched-measurement style of
/// OpenTuner/PetaBricks parallel drivers: workers pull configurations
/// from a shared queue and each runs its own simulator instance, so the
/// sweep scales with cores. Results come back in \p Space order, exactly
/// as tuneExhaustive would produce them, regardless of completion order.
///
/// \p Evaluate is called concurrently and must be thread-safe. The
/// runtime layer's contract fits: rt::Session serializes compiles
/// internally (shared read-only variants), so an Evaluate that checks
/// out its own session buffers and launches through the shared session
/// qualifies. With Jobs <= 1 this is tuneExhaustive.
std::vector<TunerResult> tuneParallel(const std::vector<TunerConfig> &Space,
                                      const EvaluateFn &Evaluate,
                                      unsigned Jobs);

/// Filters \p Results to those meeting \p MaxError (non-finite error is
/// always infeasible), then returns the index of the fastest, breaking
/// exact speedup ties toward the lower error; returns npos (~size_t(0))
/// if none qualifies.
size_t bestWithinErrorBudget(const std::vector<TunerResult> &Results,
                             double MaxError);

/// Converts feasible results into tradeoff points for Pareto analysis.
std::vector<TradeoffPoint>
toTradeoffPoints(const std::vector<TunerResult> &Results);

} // namespace perf
} // namespace kperf

#endif // KPERF_PERFORATION_TUNER_H
