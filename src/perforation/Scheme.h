//===- perforation/Scheme.h - Perforation scheme descriptors -----*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptors for the input-perforation schemes of the paper (section 4.4)
/// and the reconstruction techniques (section 5.1), plus the scheme mask
/// helper used for the scheme-visualization benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_PERFORATION_SCHEME_H
#define KPERF_PERFORATION_SCHEME_H

#include <cassert>
#include <string>
#include <vector>

namespace kperf {
namespace perf {

/// Which elements of a work-group tile the loading phase fetches.
enum class SchemeKind : uint8_t {
  None,    ///< Load everything (classic local-memory prefetch baseline).
  Rows,    ///< Load rows whose *global* row index is divisible by Period.
  Cols,    ///< Column variant of Rows (extension; matches memory poorly).
  Stencil, ///< Load only the tile center; approximate the halo ring
           ///< (paper Fig. 5, "Stencil1").
  Grid,    ///< Load only points where BOTH coordinates are divisible by
           ///< Period; reconstruct in two passes (along x on loaded
           ///< rows, then along y). Loads 1/Period^2 of the tile -- the
           ///< most aggressive scheme (extension beyond the paper).
};

/// How skipped elements are reconstructed in local memory.
enum class ReconstructionKind : uint8_t {
  NearestNeighbor, ///< Copy the nearest loaded row/column/element.
  Linear,          ///< Interpolate between enclosing loaded rows/columns;
                   ///< falls back to NN at tile edges (paper section 5.1).
};

/// A fully specified input-perforation configuration.
struct PerforationScheme {
  SchemeKind Kind = SchemeKind::None;
  /// Rows/Cols: one of every Period rows/columns is loaded. Period 2 is
  /// the paper's Rows1 (skip every other row); Period 4 is Rows2 (skip
  /// 3 of 4).
  unsigned Period = 2;
  ReconstructionKind Recon = ReconstructionKind::NearestNeighbor;

  static PerforationScheme none() { return {SchemeKind::None, 1, {}}; }
  static PerforationScheme rows(unsigned Period, ReconstructionKind R) {
    assert(Period >= 2 && "rows scheme needs period >= 2");
    return {SchemeKind::Rows, Period, R};
  }
  static PerforationScheme cols(unsigned Period, ReconstructionKind R) {
    assert(Period >= 2 && "cols scheme needs period >= 2");
    return {SchemeKind::Cols, Period, R};
  }
  static PerforationScheme stencil() {
    return {SchemeKind::Stencil, 1, ReconstructionKind::NearestNeighbor};
  }
  static PerforationScheme grid(unsigned Period, ReconstructionKind R) {
    assert(Period >= 2 && "grid scheme needs period >= 2");
    return {SchemeKind::Grid, Period, R};
  }

  /// Short name like "Rows2:NN" used in reports (the number is the
  /// actual skip period, so rows(2) and rows(3) label distinctly; the
  /// paper's Fig. 8 legend calls period 2 "Rows1").
  std::string str() const;

  /// Fraction of tile elements fetched from global memory, for a tile of
  /// \p TileW x \p TileH with the given halo (approximate; ignores the
  /// global-parity phase).
  double loadedFraction(unsigned TileW, unsigned TileH, unsigned HaloX,
                        unsigned HaloY) const;
};

/// Renders which elements of a \p TileH x \p TileW tile are loaded ('#')
/// versus reconstructed ('.'), assuming the tile starts at global row/col
/// \p OriginY / \p OriginX. Used by bench_schemes and the mask tests.
std::vector<std::string> schemeMask(const PerforationScheme &Scheme,
                                    unsigned TileW, unsigned TileH,
                                    unsigned HaloX, unsigned HaloY,
                                    int OriginX, int OriginY);

} // namespace perf
} // namespace kperf

#endif // KPERF_PERFORATION_SCHEME_H
