//===- ir/MemorySSA.cpp -----------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/MemorySSA.h"

#include "ir/InstructionUtils.h"

using namespace kperf;
using namespace kperf::ir;

//===----------------------------------------------------------------------===//
// MemoryLoc alias API
//===----------------------------------------------------------------------===//

MemoryLoc ir::memoryLocation(const Value *Ptr) {
  MemoryLoc L;
  L.ConstIndex = true;
  L.Index = 0;
  while (const auto *I = dyn_cast<Instruction>(Ptr)) {
    if (I->opcode() != Opcode::Gep)
      break;
    if (const auto *C = dyn_cast<ConstantInt>(I->operand(1)))
      L.Index += C->value();
    else
      L.ConstIndex = false; // Runtime index: any element of the root.
    Ptr = I->operand(0);
  }
  if (isa<Argument>(Ptr) ||
      (isa<Instruction>(Ptr) &&
       cast<Instruction>(Ptr)->opcode() == Opcode::Alloca))
    L.Root = Ptr;
  else
    L.Root = nullptr; // Pointer phi/select: opaque.
  return L;
}

bool ir::mayAliasLocations(const MemoryLoc &A, const MemoryLoc &B) {
  if (!A.Root || !B.Root)
    return true;
  if (A.Root == B.Root)
    return !(A.ConstIndex && B.ConstIndex) || A.Index == B.Index;
  // Distinct allocas are distinct objects, and allocas never overlap
  // argument buffers.
  const bool AIsAlloca = isa<Instruction>(A.Root);
  const bool BIsAlloca = isa<Instruction>(B.Root);
  if (AIsAlloca || BIsAlloca)
    return false;
  // Two distinct pointer arguments: the host may bind one buffer to
  // both, unless their address spaces differ.
  return A.Root->type().addressSpace() == B.Root->type().addressSpace();
}

bool ir::mustOverwrite(const MemoryLoc &Kill, const MemoryLoc &Victim) {
  return Kill.Root && Kill.Root == Victim.Root && Kill.ConstIndex &&
         Victim.ConstIndex && Kill.Index == Victim.Index;
}

bool ir::mayClobberLocation(const Instruction *Def, const MemoryLoc &L) {
  if (Def->opcode() == Opcode::Store) {
    MemoryLoc S = memoryLocation(Def->operand(1));
    if (!S.Root)
      return true; // Opaque target: could write anything, even const.
    if (const auto *A = dyn_cast<Argument>(L.Root))
      if (A->isConst())
        return false; // Nothing identifiable writes a const buffer.
    return mayAliasLocations(S, L);
  }
  assert(Def->opcode() == Opcode::Call &&
         Def->callee() == Builtin::Barrier && "not a memory def");
  if (!L.Root)
    return true;
  // A barrier publishes other work items' writes to shared memory;
  // private memory is per-item and unaffected.
  if (const auto *A = dyn_cast<Argument>(L.Root))
    return !A->isConst();
  return cast<Instruction>(L.Root)->allocaSpace() == AddressSpace::Local;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

namespace {

bool isMemoryDef(const Instruction *I) {
  return I->opcode() == Opcode::Store ||
         (I->opcode() == Opcode::Call && I->callee() == Builtin::Barrier);
}

} // namespace

MemorySSA::Access *MemorySSA::newAccess(AccessKind Kind,
                                        const BasicBlock *BB) {
  Accesses.push_back(std::make_unique<Access>());
  Access *A = Accesses.back().get();
  A->Kind = Kind;
  A->Block = BB;
  return A;
}

MemorySSA MemorySSA::compute(const Function &F, const DominatorTree &DT,
                             const DominanceFrontier &DF) {
  MemorySSA M;
  M.Live = M.newAccess(AccessKind::LiveOnEntry, nullptr);

  // Pass 1: classify every store target and find the defining blocks.
  std::unordered_set<const BasicBlock *> DefBlocks;
  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->instructions()) {
      const Instruction *I = IPtr.get();
      if (!isMemoryDef(I))
        continue;
      DefBlocks.insert(BB.get());
      if (I->opcode() != Opcode::Store)
        continue;
      MemoryLoc S = memoryLocation(I->operand(1));
      if (S.Root) {
        M.StoredRoots.insert(S.Root);
        M.HasArgStore |= isa<Argument>(S.Root);
      } else {
        M.OpaqueStore = true;
      }
    }

  // Pass 2: MemoryPhis on the (unpruned) iterated dominance frontier of
  // the defining blocks, reachable blocks only. Memory is one variable,
  // so pruning buys nothing -- every reachable join below a def merges.
  {
    std::vector<const BasicBlock *> Work(DefBlocks.begin(),
                                         DefBlocks.end());
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!DT.isReachable(BB))
        continue;
      for (const BasicBlock *Frontier : DF.frontier(BB)) {
        if (M.Phis.count(Frontier))
          continue;
        M.Phis[Frontier] = M.newAccess(AccessKind::Phi, Frontier);
        Work.push_back(Frontier); // A phi is itself a definition.
      }
    }
  }

  // Pass 3: dominator-tree renaming walk threading the current state.
  // Children inherit the state at the end of their idom -- sound because
  // any block a different state could reach sits on a frontier and got a
  // phi above (same argument as scalar SSA construction).
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
      Children;
  for (const auto &BB : F.blocks())
    if (const BasicBlock *IDom = DT.idom(BB.get()))
      Children[IDom].push_back(BB.get());

  struct Frame {
    const BasicBlock *BB;
    Access *State;
  };
  std::vector<Frame> Stack;
  Stack.push_back({F.entry(), M.Live});
  unsigned NextID = 1;

  while (!Stack.empty()) {
    Frame Fr = Stack.back();
    Stack.pop_back();

    Access *State = Fr.State;
    if (auto It = M.Phis.find(Fr.BB); It != M.Phis.end()) {
      State = It->second;
      if (!State->ID)
        State->ID = NextID++;
    }

    for (const auto &IPtr : Fr.BB->instructions()) {
      Instruction *I = IPtr.get();
      if (I->opcode() == Opcode::Load) {
        M.Reaching[I] = State;
        State->LoadUsers.push_back(I);
      } else if (isMemoryDef(I)) {
        M.Reaching[I] = State;
        Access *D = M.newAccess(AccessKind::Def, Fr.BB);
        D->ID = NextID++;
        D->Inst = I;
        D->Defining = State;
        State->DefUsers.push_back(D);
        M.Defs[I] = D;
        State = D;
      }
    }

    for (const BasicBlock *Succ : successors(Fr.BB))
      if (auto It = M.Phis.find(Succ); It != M.Phis.end()) {
        It->second->Incoming.push_back(State);
        It->second->IncomingBlocks.push_back(Fr.BB);
        State->DefUsers.push_back(It->second);
      }

    if (auto ChildIt = Children.find(Fr.BB); ChildIt != Children.end())
      // Push in reverse so the walk visits children in block order
      // (deterministic access IDs).
      for (auto It = ChildIt->second.rbegin();
           It != ChildIt->second.rend(); ++It)
        Stack.push_back({*It, State});
  }

  return M;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

bool MemorySSA::isImmutableLocation(const MemoryLoc &L) const {
  if (!L.Root || OpaqueStore)
    return false;
  if (const auto *A = dyn_cast<Argument>(L.Root))
    return A->isConst() || !HasArgStore;
  return !StoredRoots.count(L.Root);
}

const MemorySSA::Access *
MemorySSA::clobberingAccess(const Instruction *Load) const {
  const Access *A = reachingAccess(Load);
  if (!A)
    return nullptr; // Unreachable block: never executed, never keyed.
  MemoryLoc L = memoryLocation(Load->operand(0));
  if (isImmutableLocation(L))
    return Live;
  while (A->Kind == AccessKind::Def) {
    if (mayClobberLocation(A->Inst, L))
      return A;
    A = A->Defining;
  }
  return A; // Phi or LiveOnEntry.
}
