//===- ir/Instruction.h - IR instructions ------------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction set of the kernel IR. Instructions are Values (their result)
/// with an opcode and an operand list. Control flow is explicit via basic
/// blocks and Br/CondBr/Ret terminators. The frontend emits mutable
/// variables as private Alloca + Load/Store; the mem2reg pass then
/// promotes the scalar ones to SSA values with Phi nodes, so IR may be in
/// either form. Phis carry their incoming blocks out of line (parallel to
/// the operand list), must sit at the head of their block, and are the
/// only instructions whose operands may be defined in later blocks (loop
/// back edges).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_INSTRUCTION_H
#define KPERF_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <vector>

namespace kperf {
namespace ir {

class BasicBlock;

/// Instruction opcodes.
enum class Opcode : uint8_t {
  // Memory.
  Alloca, ///< Reserve Count elements in Private or Local space.
  Load,   ///< Load scalar through a pointer operand.
  Store,  ///< Store operand 0 through pointer operand 1.
  Gep,    ///< Pointer + element index -> pointer.
  // Integer/float arithmetic (operands and result share a numeric type).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  // Comparisons (numeric operands, bool result).
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Logical (bool operands).
  LogicalAnd,
  LogicalOr,
  LogicalNot,
  // Unary numeric.
  Neg,
  IntToFloat,
  FloatToInt,
  // Misc.
  Select, ///< Select(cond, a, b).
  Call,   ///< Builtin call, see Builtin.
  Phi,    ///< SSA merge; one value per predecessor block.
  // Terminators.
  Br,
  CondBr,
  Ret,
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Builtins callable from kernels. Work-item queries take a dimension
/// constant; math builtins are overloaded on int/float where sensible.
enum class Builtin : uint8_t {
  GetGlobalId,
  GetLocalId,
  GetGroupId,
  GetLocalSize,
  GetGlobalSize,
  GetNumGroups,
  Barrier, ///< Work-group barrier; interpreter synchronization point.
  Min,
  Max,
  Clamp, ///< clamp(x, lo, hi).
  Abs,
  Sqrt,
  Exp,
  Log,
  Pow,
  Floor,
};

/// Returns the source-level name of \p B.
const char *builtinName(Builtin B);

/// A single IR instruction.
class Instruction : public Value {
public:
  Instruction(Opcode Op, Type Ty, std::vector<Value *> Operands,
              std::string Name)
      : Value(ValueKind::Instruction, Ty, std::move(Name)), Op(Op),
        Operands(std::move(Operands)) {}

  Opcode opcode() const { return Op; }

  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces every use of \p From in this instruction's operand list.
  void replaceUsesOfWith(Value *From, Value *To) {
    for (Value *&Op : Operands)
      if (Op == From)
        Op = To;
  }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }

  // Alloca accessors.
  AddressSpace allocaSpace() const {
    assert(Op == Opcode::Alloca);
    return type().addressSpace();
  }
  unsigned allocaCount() const {
    assert(Op == Opcode::Alloca);
    return AllocaCount;
  }
  void setAllocaCount(unsigned N) {
    assert(Op == Opcode::Alloca);
    AllocaCount = N;
  }

  // Call accessors.
  Builtin callee() const {
    assert(Op == Opcode::Call);
    return Callee;
  }
  void setCallee(Builtin B) {
    assert(Op == Opcode::Call);
    Callee = B;
  }

  // Phi accessors. Incoming values live in the operand list; the matching
  // predecessor blocks are stored out of line, index-parallel to it.
  unsigned numIncoming() const {
    assert(Op == Opcode::Phi);
    return numOperands();
  }
  Value *incomingValue(unsigned I) const {
    assert(Op == Opcode::Phi);
    return operand(I);
  }
  void setIncomingValue(unsigned I, Value *V) {
    assert(Op == Opcode::Phi);
    setOperand(I, V);
  }
  BasicBlock *incomingBlock(unsigned I) const {
    assert(Op == Opcode::Phi && I < Incoming.size());
    return Incoming[I];
  }
  void addIncoming(Value *V, BasicBlock *Pred) {
    assert(Op == Opcode::Phi && V && Pred);
    Operands.push_back(V);
    Incoming.push_back(Pred);
  }
  /// Returns the value flowing in from \p Pred, or null if absent.
  Value *incomingValueFor(const BasicBlock *Pred) const {
    assert(Op == Opcode::Phi);
    for (unsigned I = 0; I < Incoming.size(); ++I)
      if (Incoming[I] == Pred)
        return Operands[I];
    return nullptr;
  }
  /// Drops the entry for \p Pred (no-op if absent). Used when a branch
  /// fold removes a CFG edge.
  void removeIncomingFor(const BasicBlock *Pred) {
    assert(Op == Opcode::Phi);
    for (unsigned I = 0; I < Incoming.size();) {
      if (Incoming[I] == Pred) {
        Operands.erase(Operands.begin() + I);
        Incoming.erase(Incoming.begin() + I);
      } else {
        ++I;
      }
    }
  }

  // Branch target accessors; targets are stored out of the operand list
  // because they are blocks, not values.
  BasicBlock *branchTarget(unsigned I) const {
    assert((Op == Opcode::Br || Op == Opcode::CondBr) && I < 2);
    return Targets[I];
  }
  void setBranchTarget(unsigned I, BasicBlock *BB) {
    assert((Op == Opcode::Br || Op == Opcode::CondBr) && I < 2);
    Targets[I] = BB;
  }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Instruction;
  }

private:
  Opcode Op;
  std::vector<Value *> Operands;
  BasicBlock *Parent = nullptr;
  BasicBlock *Targets[2] = {nullptr, nullptr};
  std::vector<BasicBlock *> Incoming; ///< Phi predecessor blocks.
  unsigned AllocaCount = 1;
  Builtin Callee = Builtin::Barrier;
};

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_INSTRUCTION_H
