//===- ir/Serializer.h - IR function (de)serialization -----------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compact, line-oriented text serialization of ir::Function, used by the
/// runtime's content-addressed on-disk variant cache (runtime/Session.h)
/// so warm restarts and cross-process sweeps skip recompiling generated
/// kernels. Unlike the Printer (write-only, human-facing), this format
/// round-trips: deserializeFunction() rebuilds a structurally identical
/// function inside a Module.
///
/// The format is versioned by kSerialFormatVersion; readers reject any
/// other stamp, so stale cache files from older builds are recompiled
/// instead of misparsed. Opcodes, builtins, and types are encoded by
/// mnemonic (not enum value), keeping the format stable across enum
/// reorderings within one version. Float constants are encoded as raw
/// IEEE-754 bit patterns so reloaded kernels are bit-identical.
///
/// Callers should run ir::verifyFunction over a deserialized function
/// before trusting it -- the deserializer checks structure (token shapes,
/// index ranges) but not the per-opcode type contracts.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_SERIALIZER_H
#define KPERF_IR_SERIALIZER_H

#include "ir/Function.h"
#include "support/Error.h"

#include <string>

namespace kperf {
namespace ir {

/// Format-version stamp; the first line of every serialized function.
/// Bump when the encoding changes incompatibly.
inline constexpr const char *kSerialFormatVersion = "kperf-ir-v1";

/// Renders \p F in the round-trippable serialization format.
std::string serializeFunction(const Function &F);

/// Rebuilds a function from \p Text (as produced by serializeFunction)
/// inside \p M. Constants are interned through \p M; the new function is
/// appended to the module. Fails with a descriptive error on a version
/// mismatch or any structural corruption, leaving \p M unchanged.
Expected<Function *> deserializeFunction(Module &M, const std::string &Text);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_SERIALIZER_H
