//===- ir/PassManager.cpp --------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/PassManager.h"

#include "ir/CSE.h"
#include "ir/DCE.h"
#include "ir/GVN.h"
#include "ir/LICM.h"
#include "ir/LoopPerforate.h"
#include "ir/LoopUnroll.h"
#include "ir/Mem2Reg.h"
#include "ir/MemOpt.h"
#include "ir/SROA.h"
#include "ir/Simplify.h"
#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>

using namespace kperf;
using namespace kperf::ir;

//===----------------------------------------------------------------------===//
// Built-in pass wrappers
//===----------------------------------------------------------------------===//

namespace {

/// Constant folding, identities, and condbr-on-constant cleanup. Folding
/// a conditional branch rewrites CFG edges, so nothing CFG-level is
/// preserved.
class SimplifyPass : public FunctionPass {
public:
  const char *name() const override { return "simplify"; }
  unsigned run(Function &F, Module &M, AnalysisManager &) override {
    return simplifyFunction(F, M);
  }
};

/// Local value numbering; redirects uses, never touches terminators.
class CSEPass : public FunctionPass {
public:
  const char *name() const override { return "cse"; }
  unsigned run(Function &F, Module &, AnalysisManager &) override {
    return eliminateCommonSubexpressions(F);
  }
  bool preservesCFG() const override { return true; }
};

/// Store-to-load forwarding half of MemOpt.
class MemOptForwardPass : public FunctionPass {
public:
  const char *name() const override { return "memopt-forward"; }
  unsigned run(Function &F, Module &, AnalysisManager &) override {
    return forwardStores(F);
  }
  bool preservesCFG() const override { return true; }
};

/// Dead-store elimination half of MemOpt, region-local over the cached
/// memory SSA.
class MemOptDSEPass : public FunctionPass {
public:
  const char *name() const override { return "memopt-dse"; }
  unsigned run(Function &F, Module &, AnalysisManager &AM) override {
    return eliminateDeadStores(F, AM.getMemorySSA(F));
  }
  bool preservesCFG() const override { return true; }
};

/// Loop-invariant code motion. Moves instructions between existing
/// blocks; the block set and branch edges stay intact, so the dominator
/// tree it reads from the AnalysisManager remains valid across its own
/// mutations -- this is the pass the analysis cache exists for. The
/// memory SSA it hands to the load-hoisting rule stays accurate too:
/// LICM never moves a store or barrier, so no def chain changes.
class LICMPass : public FunctionPass {
public:
  const char *name() const override { return "licm"; }
  unsigned run(Function &F, Module &, AnalysisManager &AM) override {
    return hoistLoopInvariants(F, AM.getDominatorTree(F),
                               AM.getMemorySSA(F));
  }
  bool preservesCFG() const override { return true; }
};

/// Scalar replacement of aggregates: splits constant-indexed private
/// array allocas into per-element scalars for mem2reg to promote.
/// Inserts and erases allocas/GEPs only; blocks and branch edges stay
/// intact.
class SROAPass : public FunctionPass {
public:
  const char *name() const override { return "sroa"; }
  unsigned run(Function &F, Module &, AnalysisManager &) override {
    return scalarizeAggregates(F);
  }
  bool preservesCFG() const override { return true; }
};

/// SSA promotion of private scalar allocas. Inserts phis and deletes
/// loads/stores/allocas but never touches the block set or branch edges,
/// so the dominator tree and frontier it reads stay valid.
class Mem2RegPass : public FunctionPass {
public:
  const char *name() const override { return "mem2reg"; }
  unsigned run(Function &F, Module &M, AnalysisManager &AM) override {
    return promoteMemoryToRegisters(F, M, AM);
  }
  bool preservesCFG() const override { return true; }
};

/// Trivial dead code elimination; removes non-terminators only.
class DCEPass : public FunctionPass {
public:
  const char *name() const override { return "dce"; }
  unsigned run(Function &F, Module &, AnalysisManager &) override {
    return eliminateDeadCode(F);
  }
  bool preservesCFG() const override { return true; }
};

/// Cross-block value numbering scoped by the dominator tree, with load
/// numbering over the cached memory SSA. Redirects uses to dominating
/// leaders; terminators and edges stay intact, so the tree it reads
/// remains valid across its own mutations.
class GVNPass : public FunctionPass {
public:
  const char *name() const override { return "gvn"; }
  unsigned run(Function &F, Module &, AnalysisManager &AM) override {
    return numberValuesGlobally(F, AM.getDominatorTree(F),
                                AM.getMemorySSA(F));
  }
  bool preservesCFG() const override { return true; }
};

/// Full unrolling of constant-trip loops under an IR-size budget, then
/// straight-line chain merging -- both rewrite the block set.
class UnrollPass : public FunctionPass {
public:
  explicit UnrollPass(unsigned Budget) : Budget(Budget) {}
  const char *name() const override { return "unroll"; }
  unsigned run(Function &F, Module &M, AnalysisManager &) override {
    return unrollConstantLoops(F, M, Budget);
  }

private:
  unsigned Budget;
};

/// Generalized loop perforation: strides eligible induction variables by
/// the knob (default 1 = structural no-op). Inserts arithmetic and
/// rewrites phi incomings only; the block set and branch edges stay
/// intact.
class LoopPerforatePass : public FunctionPass {
public:
  explicit LoopPerforatePass(unsigned Stride) : Stride(Stride) {}
  const char *name() const override { return "perforate-loop"; }
  unsigned run(Function &F, Module &M, AnalysisManager &AM) override {
    return perforateLoops(F, M, AM, Stride);
  }
  bool preservesCFG() const override { return true; }

private:
  unsigned Stride;
};

} // namespace

//===----------------------------------------------------------------------===//
// PassRegistry
//===----------------------------------------------------------------------===//

PassRegistry &PassRegistry::instance() {
  static PassRegistry *R = [] {
    auto *Reg = new PassRegistry();
    Reg->registerPass("simplify",
                      [] { return std::make_unique<SimplifyPass>(); });
    Reg->registerPass("cse", [] { return std::make_unique<CSEPass>(); });
    Reg->registerPass("memopt-forward", [] {
      return std::make_unique<MemOptForwardPass>();
    });
    Reg->registerPass("memopt-dse",
                      [] { return std::make_unique<MemOptDSEPass>(); });
    Reg->registerPass("licm", [] { return std::make_unique<LICMPass>(); });
    Reg->registerPass("mem2reg",
                      [] { return std::make_unique<Mem2RegPass>(); });
    Reg->registerPass("sroa",
                      [] { return std::make_unique<SROAPass>(); });
    Reg->registerPass("gvn", [] { return std::make_unique<GVNPass>(); });
    Reg->registerParameterizedPass(
        "unroll",
        [](unsigned Budget) { return std::make_unique<UnrollPass>(Budget); },
        DefaultUnrollBudget);
    Reg->registerParameterizedPass(
        "perforate-loop",
        [](unsigned Stride) {
          return std::make_unique<LoopPerforatePass>(Stride);
        },
        /*DefaultParam=*/1);
    Reg->registerPass("dce", [] { return std::make_unique<DCEPass>(); });
    return Reg;
  }();
  return *R;
}

PassRegistry::Entry *PassRegistry::find(const std::string &Name) {
  for (Entry &E : Factories)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

const PassRegistry::Entry *
PassRegistry::find(const std::string &Name) const {
  for (const Entry &E : Factories)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

void PassRegistry::registerPass(const std::string &Name, Factory MakePass) {
  if (Entry *E = find(Name)) {
    E->Make = std::move(MakePass);
    E->MakeParam = nullptr;
    return;
  }
  Factories.push_back({Name, std::move(MakePass), nullptr});
}

void PassRegistry::registerParameterizedPass(const std::string &Name,
                                             ParamFactory MakePass,
                                             unsigned DefaultParam) {
  Factory Default = [MakePass, DefaultParam] {
    return MakePass(DefaultParam);
  };
  if (Entry *E = find(Name)) {
    E->Make = std::move(Default);
    E->MakeParam = std::move(MakePass);
    return;
  }
  Factories.push_back({Name, std::move(Default), std::move(MakePass)});
}

std::unique_ptr<FunctionPass>
PassRegistry::create(const std::string &Name) const {
  const Entry *E = find(Name);
  return E ? E->Make() : nullptr;
}

std::unique_ptr<FunctionPass>
PassRegistry::create(const std::string &Name, unsigned Param) const {
  const Entry *E = find(Name);
  return E && E->MakeParam ? E->MakeParam(Param) : nullptr;
}

bool PassRegistry::contains(const std::string &Name) const {
  return find(Name) != nullptr;
}

bool PassRegistry::isParameterized(const std::string &Name) const {
  const Entry *E = find(Name);
  return E && E->MakeParam != nullptr;
}

std::vector<std::string> PassRegistry::registeredNames() const {
  std::vector<std::string> Names;
  Names.reserve(Factories.size());
  for (const Entry &E : Factories)
    Names.push_back(E.Name);
  std::sort(Names.begin(), Names.end());
  return Names;
}

//===----------------------------------------------------------------------===//
// PipelineStats
//===----------------------------------------------------------------------===//

unsigned PipelineStats::changes(const std::string &Name) const {
  for (const PassExecution &E : Passes)
    if (E.Name == Name)
      return E.Changes;
  return 0;
}

unsigned PipelineStats::total() const {
  unsigned Sum = 0;
  for (const PassExecution &E : Passes)
    Sum += E.Changes;
  return Sum;
}

double PipelineStats::totalMillis() const {
  double Sum = 0;
  for (const PassExecution &E : Passes)
    Sum += E.Millis;
  return Sum;
}

PassExecution &PipelineStats::entry(const std::string &Name) {
  for (PassExecution &E : Passes)
    if (E.Name == Name)
      return E;
  Passes.push_back(PassExecution{Name, 0, 0, 0, 0, 0});
  return Passes.back();
}

void PipelineStats::merge(const PipelineStats &Other) {
  for (const PassExecution &E : Other.Passes) {
    PassExecution &Mine = entry(E.Name);
    Mine.Invocations += E.Invocations;
    Mine.Changes += E.Changes;
    Mine.Millis += E.Millis;
    Mine.SizeDelta += E.SizeDelta;
    Mine.AluDelta += E.AluDelta;
  }
  Iterations += Other.Iterations;
}

std::string PipelineStats::str() const {
  std::string S;
  for (const PassExecution &E : Passes) {
    if (!S.empty())
      S += ' ';
    S += format("%s:%u", E.Name.c_str(), E.Changes);
  }
  S += format("%s(%u rounds, %.2f ms)", S.empty() ? "" : " ", Iterations,
              totalMillis());
  return S;
}

//===----------------------------------------------------------------------===//
// Pipeline parsing
//===----------------------------------------------------------------------===//

namespace kperf {
namespace ir {

struct PipelineParser {
  const std::string &Spec;
  size_t Pos = 0;
  Error Err;

  explicit PipelineParser(const std::string &Spec) : Spec(Spec) {}

  void skipSpace() {
    while (Pos < Spec.size() &&
           std::isspace(static_cast<unsigned char>(Spec[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Spec.size();
  }

  /// Reads a pass-name token ([A-Za-z0-9_-]+); empty on failure.
  std::string readName() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Spec.size()) {
      char Ch = Spec[Pos];
      if (std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_' ||
          Ch == '-')
        ++Pos;
      else
        break;
    }
    return Spec.substr(Start, Pos - Start);
  }

  bool consume(char Ch) {
    skipSpace();
    if (Pos < Spec.size() && Spec[Pos] == Ch) {
      ++Pos;
      return true;
    }
    return false;
  }

  /// pipeline := element (',' element)* | <empty-if AllowEmpty>
  bool parseList(std::vector<PassPipeline::Element> &Out, bool TopLevel) {
    skipSpace();
    if (TopLevel && atEnd())
      return true; // Empty spec: the no-op pipeline.
    while (true) {
      PassPipeline::Element E;
      if (!parseElement(E))
        return false;
      Out.push_back(std::move(E));
      skipSpace();
      if (!consume(','))
        return true;
    }
  }

  /// Reads the '(' integer ')' parameter of a parameterized pass.
  bool parseParam(const std::string &Name, PassPipeline::Element &E) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Spec.size() &&
           std::isdigit(static_cast<unsigned char>(Spec[Pos])))
      ++Pos;
    if (Pos == Start) {
      Err = makeError("pipeline spec: expected integer parameter for "
                      "'%s' in '%s'",
                      Name.c_str(), Spec.c_str());
      return false;
    }
    unsigned long long Raw =
        std::strtoull(Spec.substr(Start, Pos - Start).c_str(), nullptr,
                      10);
    if (Raw > std::numeric_limits<unsigned>::max()) {
      Err = makeError("pipeline spec: parameter for '%s' out of range "
                      "in '%s'",
                      Name.c_str(), Spec.c_str());
      return false;
    }
    E.HasParam = true;
    E.Param = static_cast<unsigned>(Raw);
    if (!consume(')')) {
      Err = makeError("pipeline spec: missing ')' after '%s(' in '%s'",
                      Name.c_str(), Spec.c_str());
      return false;
    }
    return true;
  }

  bool parseElement(PassPipeline::Element &E) {
    std::string Name = readName();
    if (Name.empty()) {
      Err = makeError("pipeline spec: expected pass name at position %zu "
                      "in '%s'",
                      Pos, Spec.c_str());
      return false;
    }
    if (Name == "fixpoint") {
      if (!consume('(')) {
        Err = makeError("pipeline spec: expected '(' after fixpoint in "
                        "'%s'",
                        Spec.c_str());
        return false;
      }
      E.IsFixpoint = true;
      if (!parseList(E.Children, /*TopLevel=*/false))
        return false;
      if (!consume(')')) {
        Err = makeError("pipeline spec: missing ')' in '%s'", Spec.c_str());
        return false;
      }
      if (E.Children.empty()) {
        Err = makeError("pipeline spec: empty fixpoint group in '%s'",
                        Spec.c_str());
        return false;
      }
      return true;
    }
    if (!PassRegistry::instance().contains(Name)) {
      Err = makeError("pipeline spec: unknown pass '%s' (registered: %s)",
                      Name.c_str(),
                      join(PassRegistry::instance().registeredNames(), ", ")
                          .c_str());
      return false;
    }
    E.PassName = Name;
    if (consume('(')) {
      if (!PassRegistry::instance().isParameterized(Name)) {
        Err = makeError("pipeline spec: pass '%s' takes no parameter in "
                        "'%s'",
                        Name.c_str(), Spec.c_str());
        return false;
      }
      return parseParam(Name, E);
    }
    return true;
  }
};

} // namespace ir
} // namespace kperf

Expected<PassPipeline> PassPipeline::parse(const std::string &Spec) {
  PipelineParser P(Spec);
  PassPipeline Pipeline;
  if (!P.parseList(Pipeline.Elements, /*TopLevel=*/true))
    return P.Err;
  if (!P.atEnd())
    return makeError("pipeline spec: trailing characters at position %zu "
                     "in '%s'",
                     P.Pos, Spec.c_str());
  return Pipeline;
}

std::string PassPipeline::print(const std::vector<Element> &Elements) {
  std::string S;
  for (const Element &E : Elements) {
    if (!S.empty())
      S += ',';
    if (E.IsFixpoint)
      S += "fixpoint(" + print(E.Children) + ")";
    else if (E.HasParam)
      S += format("%s(%u)", E.PassName.c_str(), E.Param);
    else
      S += E.PassName;
  }
  return S;
}

std::string PassPipeline::str() const { return print(Elements); }

//===----------------------------------------------------------------------===//
// Pipeline execution
//===----------------------------------------------------------------------===//

namespace kperf {
namespace ir {

struct PipelineRunner {
  Function &F;
  Module &M;
  AnalysisManager &AM;
  const PassRunOptions &Opts;
  PipelineStats &Stats;
  /// Pass instances are stateless; one per distinct name per run.
  std::map<std::string, std::unique_ptr<FunctionPass>> Instances;
  Error Err;

  PipelineRunner(Function &F, Module &M, AnalysisManager &AM,
                 const PassRunOptions &Opts, PipelineStats &Stats)
      : F(F), M(M), AM(AM), Opts(Opts), Stats(Stats) {}

  FunctionPass &passFor(const PassPipeline::Element &El) {
    // Instances are keyed by the canonical element spelling, so
    // unroll(64) and unroll(512) in one pipeline stay distinct; the
    // stats row is keyed by the bare pass name either way.
    std::string Key = El.HasParam
                          ? format("%s(%u)", El.PassName.c_str(), El.Param)
                          : El.PassName;
    std::unique_ptr<FunctionPass> &P = Instances[Key];
    if (!P) {
      P = El.HasParam
              ? PassRegistry::instance().create(El.PassName, El.Param)
              : PassRegistry::instance().create(El.PassName);
      assert(P && "unknown pass survived parsing");
    }
    return *P;
  }

  /// One fused walk for the two per-pass instrumentation numbers.
  std::pair<size_t, uint64_t> measureFunction() const {
    size_t Size = 0;
    uint64_t Alu = 0;
    for (const auto &BB : F.blocks()) {
      Size += BB->size();
      for (const auto &I : BB->instructions())
        Alu += staticAluWeight(*I);
    }
    return {Size, Alu};
  }

  /// Runs one pass invocation; returns its change count, or ~0u on a
  /// verify-each failure (Err is set).
  unsigned runOne(const PassPipeline::Element &El) {
    FunctionPass &P = passFor(El);
    auto [SizeBefore, AluBefore] = measureFunction();
    auto Start = std::chrono::steady_clock::now();
    unsigned Changes = P.run(F, M, AM);
    auto End = std::chrono::steady_clock::now();

    PassExecution &E = Stats.entry(El.PassName);
    ++E.Invocations;
    E.Changes += Changes;
    E.Millis +=
        std::chrono::duration<double, std::milli>(End - Start).count();
    if (Changes) {
      auto [SizeAfter, AluAfter] = measureFunction();
      E.SizeDelta += static_cast<long long>(SizeAfter) -
                     static_cast<long long>(SizeBefore);
      E.AluDelta += static_cast<long long>(AluAfter) -
                    static_cast<long long>(AluBefore);
    }

    if (Changes)
      AM.invalidate(F, P.preservesCFG());
    if (Opts.VerifyEach) {
      if (Error VE = verifyFunction(F)) {
        Err = makeError("verification failed after pass '%s': %s",
                        El.PassName.c_str(), VE.message().c_str());
        return ~0u;
      }
    }
    return Changes;
  }

  /// Runs \p Elements once; returns the change count, or ~0u on error.
  unsigned runList(const std::vector<PassPipeline::Element> &Elements) {
    unsigned Changes = 0;
    for (const PassPipeline::Element &E : Elements) {
      unsigned C;
      if (E.IsFixpoint)
        C = runFixpoint(E.Children);
      else
        C = runOne(E);
      if (C == ~0u)
        return ~0u;
      Changes += C;
    }
    return Changes;
  }

  /// Repeats \p Body until a whole round changes nothing (counting the
  /// final no-change round), capped defensively.
  unsigned runFixpoint(const std::vector<PassPipeline::Element> &Body) {
    unsigned Changes = 0;
    for (unsigned Round = 0; Round < Opts.MaxFixpointRounds; ++Round) {
      unsigned RoundChanges = runList(Body);
      if (RoundChanges == ~0u)
        return ~0u;
      ++Stats.Iterations;
      Changes += RoundChanges;
      if (RoundChanges == 0)
        break;
    }
    return Changes;
  }
};

} // namespace ir
} // namespace kperf

Expected<PipelineStats> PassPipeline::run(Function &F, Module &M,
                                          AnalysisManager &AM,
                                          const PassRunOptions &Opts) const {
  PipelineStats Stats;
  PipelineRunner Runner(F, M, AM, Opts, Stats);
  if (Runner.runList(Elements) == ~0u)
    return Runner.Err;
  return Stats;
}

Expected<PipelineStats> PassPipeline::run(Function &F, Module &M,
                                          const PassRunOptions &Opts) const {
  AnalysisManager AM;
  return run(F, M, AM, Opts);
}

const char *ir::defaultPipelineSpec() {
  // mem2reg leads: one application promotes everything it ever will.
  // unroll runs next (it needs the SSA induction phis, and one
  // application flattens every constant-trip loop it ever will), turning
  // the filter-window nests into straight-line blocks. The fixpoint
  // group then folds the collapsed induction arithmetic (simplify) --
  // which is what turns the window arrays' `ky*W+kx` GEP indices into
  // constants -- so sroa can split them into scalars and the in-group
  // mem2reg can promote those (plus anything unroll exposed) in the same
  // round; gvn then merges the cross-block recomputations unrolling and
  // perforation expose, and the memory cleanups iterate over IR that
  // carries almost no private traffic (memopt survives for what
  // promotion must skip: runtime-indexed arrays and local tiles).
  return "mem2reg,unroll,fixpoint(simplify,sroa,mem2reg,gvn,cse,"
         "memopt-forward,licm,memopt-dse,dce)";
}

size_t ir::functionInstructionCount(const Function &F) {
  size_t N = 0;
  for (const auto &BB : F.blocks())
    N += BB->size();
  return N;
}

unsigned ir::staticAluWeight(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Alloca:
  case Opcode::Load:  // Memory lanes, charged separately.
  case Opcode::Store:
  case Opcode::Phi:   // Free: codegen folds phis into predecessor moves.
  case Opcode::Ret:
    return 0;
  case Opcode::Call:
    switch (I.callee()) {
    case Builtin::Barrier:
      return 0;
    case Builtin::Sqrt:
    case Builtin::Exp:
    case Builtin::Log:
    case Builtin::Pow:
      return 4; // Transcendentals cost more (see sim::Interpreter).
    default:
      return 1;
    }
  default:
    return 1; // Arithmetic, comparisons, gep, branches.
  }
}

uint64_t ir::functionStaticAluWeight(const Function &F) {
  uint64_t W = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      W += staticAluWeight(*I);
  return W;
}
