//===- ir/Passes.h - Standard optimization pipeline ---------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility shim over the pass-manager layer (PassManager.h). The
/// standard pipeline run over generated kernels -- mem2reg and unroll
/// once, then simplify, SROA, mem2reg again, GVN, CSE, memopt
/// forwarding, LICM, memopt DSE, and DCE iterated to a fixpoint -- is
/// defaultPipelineSpec(); the PipelineOptions bool-struct survives only
/// so older call sites (and the pass-ablation benchmark's history) keep
/// compiling, and maps onto a pipeline spec string.
///
/// New code should parse and run PassPipeline directly, or use
/// runPipelineSpec() below.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_PASSES_H
#define KPERF_IR_PASSES_H

#include "ir/Function.h"
#include "ir/PassManager.h"

namespace kperf {
namespace ir {

/// Which passes the pipeline runs. Everything defaults on. Deprecated in
/// favor of pipeline spec strings; retained as the compatibility shim for
/// callers predating the pass manager.
struct PipelineOptions {
  bool Mem2Reg = true; ///< SSA promotion: ahead of the fixpoint group,
                       ///< and inside it (after SROA splits arrays).
  bool Unroll = true;  ///< Constant-trip full unrolling after mem2reg.
  bool Simplify = true;
  bool SROA = true; ///< Array-alloca scalarization in the fixpoint group.
  bool GVN = true;  ///< Cross-block value numbering in the fixpoint group.
  bool CSE = true;
  bool MemOpt = true; ///< Store forwarding + dead-store elimination.
  bool LICM = true;
  bool DCE = true;

  static PipelineOptions none() {
    return {false, false, false, false, false, false, false, false, false};
  }

  /// The pipeline spec these options describe: the default fixpoint
  /// pipeline with disabled passes dropped ("" when everything is off).
  std::string spec() const;
};

/// Parses \p Spec and runs it on \p F. \p M must own \p F (the
/// simplifier interns constants there). Fails on a malformed spec.
Expected<PipelineStats> runPipelineSpec(Function &F, Module &M,
                                        const std::string &Spec);

/// As above, sharing cached analyses through \p AM.
Expected<PipelineStats> runPipelineSpec(Function &F, Module &M,
                                        AnalysisManager &AM,
                                        const std::string &Spec);

/// Runs the passes enabled in \p Options on \p F until nothing changes.
PipelineStats runPipeline(Function &F, Module &M, PipelineOptions Options);

/// Runs the full default pipeline on \p F until nothing changes.
PipelineStats runDefaultPipeline(Function &F, Module &M);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_PASSES_H
