//===- ir/Passes.h - Standard optimization pipeline ---------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard pipeline run over generated kernels: simplify (constant
/// folding + peepholes), CSE (local value numbering), and DCE, iterated to
/// a fixpoint. The perforation and output-approximation transforms run it
/// on every kernel they emit; the simplifications interact (folding
/// exposes identical subexpressions, merging exposes dead code), which is
/// why a single ordering is owned here instead of by each transform.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_PASSES_H
#define KPERF_IR_PASSES_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// What the pipeline did, for statistics and the `kperfc passes` report.
struct PipelineStats {
  unsigned Simplified = 0; ///< Values rewritten by simplifyFunction().
  unsigned Merged = 0;     ///< Duplicates merged by CSE.
  unsigned Forwarded = 0;  ///< Loads replaced by store-to-load forwarding.
  unsigned Hoisted = 0;    ///< Instructions moved out of loops by LICM.
  unsigned DeadStores = 0; ///< Overwritten-before-read stores removed.
  unsigned Deleted = 0;    ///< Instructions removed by DCE.
  unsigned Iterations = 0; ///< Fixpoint rounds executed.

  unsigned total() const {
    return Simplified + Merged + Forwarded + Hoisted + DeadStores +
           Deleted;
  }
};

/// Which passes the pipeline runs. Everything defaults on; the switches
/// exist for the pass-ablation benchmark (bench_passes) and for debugging
/// a transform with the cleanups out of the way.
struct PipelineOptions {
  bool Simplify = true;
  bool CSE = true;
  bool MemOpt = true; ///< Store forwarding + dead-store elimination.
  bool LICM = true;
  bool DCE = true;

  static PipelineOptions none() {
    return {false, false, false, false, false};
  }
};

/// Runs the enabled passes on \p F until nothing changes. \p M must own
/// \p F (the simplifier interns constants there).
PipelineStats runPipeline(Function &F, Module &M, PipelineOptions Options);

/// Runs simplify + CSE + DCE on \p F until nothing changes.
PipelineStats runDefaultPipeline(Function &F, Module &M);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_PASSES_H
