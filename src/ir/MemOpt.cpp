//===- ir/MemOpt.cpp --------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/MemOpt.h"

#include "ir/InstructionUtils.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace kperf;
using namespace kperf::ir;

namespace {

bool isPrivateAlloca(const Value *Root) {
  const auto *A = dyn_cast<Instruction>(Root);
  return A && A->opcode() == Opcode::Alloca &&
         A->allocaSpace() == AddressSpace::Private;
}

bool isLocalAlloca(const Value *Root) {
  const auto *A = dyn_cast<Instruction>(Root);
  return A && A->opcode() == Opcode::Alloca &&
         A->allocaSpace() == AddressSpace::Local;
}

} // namespace

unsigned ir::forwardStores(Function &F) {
  // Load instruction -> value it must yield.
  std::unordered_map<const Value *, Value *> Replacement;

  for (const auto &BB : F.blocks()) {
    // Known memory contents, by exact pointer value. Entries keyed by a
    // pointer are only trusted while no aliasing write intervenes.
    std::unordered_map<const Value *, Value *> Known;

    auto InvalidateRoot = [&](const Value *Root) {
      for (auto It = Known.begin(); It != Known.end();)
        It = rootObject(It->first) == Root ? Known.erase(It)
                                           : std::next(It);
    };
    auto InvalidateIf = [&](auto Pred) {
      for (auto It = Known.begin(); It != Known.end();)
        It = Pred(rootObject(It->first)) ? Known.erase(It)
                                         : std::next(It);
    };

    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      // Route operands through earlier replacements so forwarded chains
      // collapse in one pass.
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }

      switch (I->opcode()) {
      case Opcode::Store: {
        const Value *Ptr = I->operand(1);
        const Value *Root = rootObject(Ptr);
        if (isa<Argument>(Root)) {
          // May alias any argument buffer; forget everything
          // argument-rooted. Private/local contents are unaffected.
          InvalidateIf(
              [](const Value *R) { return isa<Argument>(R); });
        } else {
          // A write to one alloca element may alias any other pointer
          // into the same alloca (indices are runtime values).
          InvalidateRoot(Root);
        }
        // Forwarding through argument pointers is unsafe (the host may
        // bind one buffer to two arguments); remember alloca contents
        // only.
        if (!isa<Argument>(Root))
          Known[Ptr] = I->operand(0);
        break;
      }
      case Opcode::Load: {
        const Value *Ptr = I->operand(0);
        auto It = Known.find(Ptr);
        if (It != Known.end())
          Replacement[I] = It->second;
        break;
      }
      case Opcode::Call:
        if (I->callee() == Builtin::Barrier)
          // Other work items' writes to local memory become visible;
          // private memory is per-item and survives.
          InvalidateIf([](const Value *R) {
            return isLocalAlloca(R) || isa<Argument>(R);
          });
        break;
      default:
        break;
      }
    }
  }

  if (Replacement.empty())
    return 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }
  return static_cast<unsigned>(Replacement.size());
}

unsigned ir::eliminateDeadStores(Function &F) {
  std::unordered_set<const Instruction *> Dead;

  for (const auto &BB : F.blocks()) {
    // Latest unobserved store per exact pointer (private allocas only --
    // local memory may be read by other work items, and argument
    // buffers by the host).
    std::unordered_map<const Value *, Instruction *> Pending;

    auto ForgetRoot = [&](const Value *Root) {
      for (auto It = Pending.begin(); It != Pending.end();)
        It = rootObject(It->first) == Root ? Pending.erase(It)
                                           : std::next(It);
    };

    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      switch (I->opcode()) {
      case Opcode::Store: {
        const Value *Ptr = I->operand(1);
        const Value *Root = rootObject(Ptr);
        if (!isPrivateAlloca(Root))
          break;
        auto It = Pending.find(Ptr);
        if (It != Pending.end())
          Dead.insert(It->second); // Overwritten before any read.
        // A store to a sibling element does not overwrite, but it also
        // does not observe: older pending stores to the same root stay
        // pending only if their pointer differs -- which is exactly the
        // state after the update below.
        Pending[Ptr] = I;
        break;
      }
      case Opcode::Load:
        // Any load from the same alloca might observe a pending store
        // (distinct gep values can compute equal addresses).
        ForgetRoot(rootObject(I->operand(0)));
        break;
      default:
        break;
      }
    }
  }

  if (Dead.empty())
    return 0;
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->mutableInstructions();
    Instrs.erase(std::remove_if(Instrs.begin(), Instrs.end(),
                                [&](const auto &I) {
                                  return Dead.count(I.get()) != 0;
                                }),
                 Instrs.end());
  }
  return static_cast<unsigned>(Dead.size());
}
