//===- ir/MemOpt.cpp --------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/MemOpt.h"

#include "ir/InstructionUtils.h"
#include "ir/MemorySSA.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace kperf;
using namespace kperf::ir;

namespace {

bool isLocalAlloca(const Value *Root) {
  const auto *A = dyn_cast<Instruction>(Root);
  return A && A->opcode() == Opcode::Alloca &&
         A->allocaSpace() == AddressSpace::Local;
}

} // namespace

unsigned ir::forwardStores(Function &F) {
  // Load instruction -> value it must yield.
  std::unordered_map<const Value *, Value *> Replacement;

  for (const auto &BB : F.blocks()) {
    // Known memory contents, by exact pointer value. Entries keyed by a
    // pointer are only trusted while no aliasing write intervenes.
    std::unordered_map<const Value *, Value *> Known;

    auto InvalidateRoot = [&](const Value *Root) {
      for (auto It = Known.begin(); It != Known.end();)
        It = rootObject(It->first) == Root ? Known.erase(It)
                                           : std::next(It);
    };
    auto InvalidateIf = [&](auto Pred) {
      for (auto It = Known.begin(); It != Known.end();)
        It = Pred(rootObject(It->first)) ? Known.erase(It)
                                         : std::next(It);
    };

    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      // Route operands through earlier replacements so forwarded chains
      // collapse in one pass.
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }

      switch (I->opcode()) {
      case Opcode::Store: {
        const Value *Ptr = I->operand(1);
        const Value *Root = rootObject(Ptr);
        if (isa<Argument>(Root)) {
          // May alias any argument buffer; forget everything
          // argument-rooted. Private/local contents are unaffected.
          InvalidateIf(
              [](const Value *R) { return isa<Argument>(R); });
        } else {
          // A write to one alloca element may alias any other pointer
          // into the same alloca (indices are runtime values).
          InvalidateRoot(Root);
        }
        // Forwarding through argument pointers is unsafe (the host may
        // bind one buffer to two arguments); remember alloca contents
        // only.
        if (!isa<Argument>(Root))
          Known[Ptr] = I->operand(0);
        break;
      }
      case Opcode::Load: {
        const Value *Ptr = I->operand(0);
        auto It = Known.find(Ptr);
        if (It != Known.end())
          Replacement[I] = It->second;
        break;
      }
      case Opcode::Call:
        if (I->callee() == Builtin::Barrier)
          // Other work items' writes to local memory become visible;
          // private memory is per-item and survives.
          InvalidateIf([](const Value *R) {
            return isLocalAlloca(R) || isa<Argument>(R);
          });
        break;
      default:
        break;
      }
    }
  }

  if (Replacement.empty())
    return 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }
  return static_cast<unsigned>(Replacement.size());
}

unsigned ir::eliminateDeadStores(Function &F) {
  DominatorTree DT = DominatorTree::compute(F);
  DominanceFrontier DF = DominanceFrontier::compute(F, DT);
  MemorySSA MSSA = MemorySSA::compute(F, DT, DF);
  return eliminateDeadStores(F, MSSA);
}

unsigned ir::eliminateDeadStores(Function &F, const MemorySSA &MSSA) {
  std::unordered_set<const Instruction *> Dead;

  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      if (I->opcode() != Opcode::Store)
        continue;
      // Only provably in-bounds constant-indexed private stores may
      // die: private memory is per-item and vanishes at kernel exit
      // (local may be read by other work items, argument buffers by
      // the host), and removing a store that could fault would change
      // fault behavior.
      MemoryLoc L = memoryLocation(I->operand(1));
      const auto *A = dyn_cast<Instruction>(L.Root);
      if (!A || A->opcode() != Opcode::Alloca ||
          A->allocaSpace() != AddressSpace::Private)
        continue;
      if (!L.ConstIndex || L.Index < 0 ||
          L.Index >= static_cast<int64_t>(A->allocaCount()))
        continue;
      const MemorySSA::Access *D = MSSA.defFor(I);
      if (!D)
        continue; // Unreachable block: leave it to DCE's sweeps.

      // Flood downward over the states in which the stored value may
      // still sit in L: the def itself, then every def/phi built on a
      // flooded state that does not provably overwrite L. A
      // may-aliasing load observed in any flooded state keeps the
      // store; exhausting the flood means every path overwrites L
      // before reading it or reaches kernel exit, where private memory
      // dies.
      bool Live = false;
      std::vector<const MemorySSA::Access *> Work = {D};
      std::unordered_set<const MemorySSA::Access *> Visited = {D};
      while (!Work.empty() && !Live) {
        const MemorySSA::Access *Cur = Work.back();
        Work.pop_back();
        for (const Instruction *Ld : Cur->LoadUsers)
          if (mayAliasLocations(memoryLocation(Ld->operand(0)), L)) {
            Live = true;
            break;
          }
        if (Live)
          break;
        for (const MemorySSA::Access *U : Cur->DefUsers) {
          if (U->Kind == MemorySSA::AccessKind::Def &&
              U->Inst->opcode() == Opcode::Store &&
              mustOverwrite(memoryLocation(U->Inst->operand(1)), L))
            continue; // Killed along this path before any read.
          if (Visited.insert(U).second)
            Work.push_back(U);
        }
      }
      if (!Live)
        Dead.insert(I);
    }

  if (Dead.empty())
    return 0;
  for (const auto &BB : F.blocks()) {
    auto &Instrs = BB->mutableInstructions();
    Instrs.erase(std::remove_if(Instrs.begin(), Instrs.end(),
                                [&](const auto &I) {
                                  return Dead.count(I.get()) != 0;
                                }),
                 Instrs.end());
  }
  return static_cast<unsigned>(Dead.size());
}
