//===- ir/LoopUnroll.cpp ----------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopUnroll.h"

#include "ir/Dominators.h"
#include "ir/InstructionUtils.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Everything known about one qualifying loop.
struct UnrollableLoop {
  BasicBlock *Header = nullptr;
  BasicBlock *Preheader = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *BodyEntry = nullptr; ///< Header's in-loop successor.
  BasicBlock *Exit = nullptr;      ///< Header's out-of-loop successor.
  std::unordered_set<const BasicBlock *> Body; ///< Header included.
  std::vector<BasicBlock *> BodyOrder;         ///< Function order.
  unsigned Trips = 0;
};

/// Collects the natural loop of back edge \p Latch -> \p Header.
void collectLoopBody(BasicBlock *Header, BasicBlock *Latch,
                     const std::unordered_map<const BasicBlock *,
                                              std::vector<BasicBlock *>>
                         &Preds,
                     std::unordered_set<const BasicBlock *> &Body) {
  Body.insert(Header);
  std::vector<BasicBlock *> Work;
  if (Body.insert(Latch).second)
    Work.push_back(Latch);
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    auto It = Preds.find(BB);
    if (It == Preds.end())
      continue;
    for (BasicBlock *P : It->second)
      if (Body.insert(P).second)
        Work.push_back(P);
  }
}

std::optional<int64_t> asConstInt(const Value *V) {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return C->value();
  return std::nullopt;
}

bool isCmp(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return true;
  default:
    return false;
  }
}

/// Computes the trip count of the loop by simulating the induction
/// arithmetic: iv starts at \p Init, advances by \p Step, and the loop
/// body runs while the header condition keeps selecting the body edge.
/// \returns nullopt when the loop does not terminate within \p MaxTrips
/// or the induction variable leaves the int32 range the interpreter
/// computes in.
std::optional<unsigned> simulateTripCount(int64_t Init, int64_t Step,
                                          Opcode CmpOp, bool IvOnLhs,
                                          int64_t Bound, bool TrueIsBody,
                                          unsigned MaxTrips) {
  int64_t V = Init;
  unsigned Trips = 0;
  while (true) {
    bool Cond = IvOnLhs ? evalIntCmp(CmpOp, V, Bound)
                        : evalIntCmp(CmpOp, Bound, V);
    if (Cond != TrueIsBody)
      return Trips;
    if (++Trips > MaxTrips)
      return std::nullopt;
    V += Step;
    if (V < INT32_MIN || V > INT32_MAX)
      return std::nullopt;
  }
}

/// Finds the first (innermost-first) loop of \p F that qualifies for
/// full unrolling within \p Budget.
std::optional<UnrollableLoop> findUnrollableLoop(Function &F,
                                                 const DominatorTree &DT,
                                                 unsigned Budget) {
  auto Preds = predecessors(F);

  // Back edges grouped by header; headers with several back edges are
  // not unrolled (the frontend never produces them).
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
      Latches;
  for (const auto &BB : F.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    for (BasicBlock *Succ : successors(BB.get()))
      if (DT.dominates(Succ, BB.get()))
        Latches[Succ].push_back(BB.get());
  }

  std::vector<UnrollableLoop> Candidates;
  for (const auto &BB : F.blocks()) {
    BasicBlock *Header = BB.get();
    auto LatchIt = Latches.find(Header);
    if (LatchIt == Latches.end() || LatchIt->second.size() != 1)
      continue;
    UnrollableLoop L;
    L.Header = Header;
    L.Latch = LatchIt->second.front();
    collectLoopBody(Header, L.Latch, Preds, L.Body);
    Candidates.push_back(std::move(L));
  }
  // Innermost first: smaller bodies unroll before their enclosing loop.
  std::sort(Candidates.begin(), Candidates.end(),
            [&](const UnrollableLoop &A, const UnrollableLoop &B) {
              if (A.Body.size() != B.Body.size())
                return A.Body.size() < B.Body.size();
              return F.blockIndex(A.Header) < F.blockIndex(B.Header);
            });

  for (UnrollableLoop &L : Candidates) {
    // Unique preheader ending in an unconditional branch.
    BasicBlock *Preheader = nullptr;
    bool Unique = true;
    for (BasicBlock *P : Preds[L.Header]) {
      if (L.Body.count(P))
        continue;
      if (Preheader)
        Unique = false;
      Preheader = P;
    }
    if (!Preheader || !Unique)
      continue;
    const Instruction *PT = Preheader->terminator();
    if (!PT || PT->opcode() != Opcode::Br)
      continue;
    L.Preheader = Preheader;

    // The only exit is the header's conditional branch.
    Instruction *HT = L.Header->terminator();
    if (!HT || HT->opcode() != Opcode::CondBr)
      continue;
    bool T0In = L.Body.count(HT->branchTarget(0)) != 0;
    bool T1In = L.Body.count(HT->branchTarget(1)) != 0;
    if (T0In == T1In)
      continue;
    bool TrueIsBody = T0In;
    L.BodyEntry = HT->branchTarget(TrueIsBody ? 0 : 1);
    L.Exit = HT->branchTarget(TrueIsBody ? 1 : 0);

    // Body blocks: no side exits, no returns, no allocas (an alloca
    // names one storage slot shared by all iterations; duplicating it
    // would split that storage).
    bool BodyOk = true;
    for (const BasicBlock *B : L.Body) {
      if (B == L.Header)
        continue;
      const Instruction *T = B->terminator();
      if (!T || T->opcode() == Opcode::Ret) {
        BodyOk = false;
        break;
      }
      for (BasicBlock *Succ : successors(B))
        BodyOk &= L.Body.count(Succ) != 0;
    }
    for (const BasicBlock *B : L.Body)
      for (const auto &I : B->instructions())
        BodyOk &= I->opcode() != Opcode::Alloca;
    if (!BodyOk)
      continue;

    // Layout: the unrolled copies are inserted at the header's position,
    // so the verifier's def-before-use block ordering survives iff the
    // header leads the body in function order, the preheader and every
    // outside definition the body reads sit before it, and the exit
    // (which will read the final header copy) sits behind it. The body
    // need not be contiguous -- the frontend puts for.end between a
    // loop's header and the blocks of a nested if or inner loop.
    size_t Start = F.blockIndex(L.Header);
    if (F.blockIndex(L.Preheader) >= Start ||
        F.blockIndex(L.Exit) <= Start)
      continue;
    L.BodyOrder.clear();
    for (const auto &B : F.blocks())
      if (L.Body.count(B.get()))
        L.BodyOrder.push_back(B.get());
    if (L.BodyOrder.front() != L.Header)
      continue;
    bool OperandsOk = true;
    for (const BasicBlock *B : L.Body)
      for (const auto &I : B->instructions()) {
        if (I->opcode() == Opcode::Phi)
          continue; // Edge values; cloning resolves them per copy.
        for (const Value *Op : I->operands())
          if (const auto *OpI = dyn_cast<Instruction>(Op))
            if (!L.Body.count(OpI->parent()))
              OperandsOk &= F.blockIndex(OpI->parent()) < Start;
      }
    if (!OperandsOk)
      continue;

    // Values defined below the header must stay inside the loop; values
    // escaping through the header (phis and its straight-line code) are
    // rewired to the final header copy.
    bool UsesOk = true;
    for (const auto &U : F.blocks()) {
      if (L.Body.count(U.get()))
        continue;
      for (const auto &I : U->instructions())
        for (const Value *Op : I->operands())
          if (const auto *OpI = dyn_cast<Instruction>(Op))
            UsesOk &= !L.Body.count(OpI->parent()) ||
                      OpI->parent() == L.Header;
    }
    if (!UsesOk)
      continue;

    // Induction variable: iv = phi [const, preheader], [iv +/- const,
    // latch], compared against a constant bound in the header.
    const auto *Cond = dyn_cast<Instruction>(HT->operand(0));
    if (!Cond || !isCmp(Cond->opcode()) || Cond->parent() != L.Header)
      continue;
    std::optional<unsigned> Trips;
    for (size_t PI = 0; PI < L.Header->firstNonPhiIndex(); ++PI) {
      Instruction *IV = L.Header->at(PI);
      if (IV->numIncoming() != 2)
        continue;
      Value *InitV = IV->incomingValueFor(L.Preheader);
      Value *NextV = IV->incomingValueFor(L.Latch);
      auto Init = InitV ? asConstInt(InitV) : std::nullopt;
      const auto *Next = dyn_cast<Instruction>(NextV);
      if (!Init || !Next || !L.Body.count(Next->parent()))
        continue;
      std::optional<int64_t> Step;
      if (Next->opcode() == Opcode::Add) {
        if (Next->operand(0) == IV)
          Step = asConstInt(Next->operand(1));
        else if (Next->operand(1) == IV)
          Step = asConstInt(Next->operand(0));
      } else if (Next->opcode() == Opcode::Sub &&
                 Next->operand(0) == IV) {
        if (auto C = asConstInt(Next->operand(1)))
          Step = -*C;
      }
      if (!Step)
        continue;
      std::optional<int64_t> Bound;
      bool IvOnLhs = false;
      if (Cond->operand(0) == IV) {
        Bound = asConstInt(Cond->operand(1));
        IvOnLhs = true;
      } else if (Cond->operand(1) == IV) {
        Bound = asConstInt(Cond->operand(0));
      }
      if (!Bound)
        continue;
      Trips = simulateTripCount(*Init, *Step, Cond->opcode(), IvOnLhs,
                                *Bound, TrueIsBody, Budget);
      if (Trips)
        break;
    }
    if (!Trips)
      continue;

    size_t LoopSize = 0;
    for (const BasicBlock *B : L.Body)
      LoopSize += B->size();
    if (static_cast<size_t>(*Trips) * LoopSize > Budget)
      continue;

    L.Trips = *Trips;
    return L;
  }
  return std::nullopt;
}

/// Clones the loop body Trips times (plus a final header copy computing
/// the loop-exit values) in place of the original blocks, collapsing the
/// header phis to the per-iteration reaching values, then deletes the
/// original loop.
void unrollLoop(Function &F, Module &M, const UnrollableLoop &L) {
  using ValueMap = std::unordered_map<const Value *, Value *>;
  auto mapped = [](const ValueMap &Map, Value *V) -> Value * {
    auto It = Map.find(V);
    return It == Map.end() ? V : It->second;
  };
  // Folds the collapsed induction arithmetic at clone time (with the
  // shared InstructionUtils semantics) so iteration constants feed the
  // next copy as constants; GVN/simplify finish the job on the rest.
  auto foldOrClone = [&](const Instruction *I,
                         const std::vector<Value *> &Ops) -> Value * {
    if (Ops.size() != 2)
      return nullptr;
    auto LC = asConstInt(Ops[0]);
    auto RC = asConstInt(Ops[1]);
    if (!LC || !RC || !Ops[0]->type().isInt() || !Ops[1]->type().isInt())
      return nullptr;
    if (auto Folded = foldIntBinary(I->opcode(),
                                    static_cast<int32_t>(*LC),
                                    static_cast<int32_t>(*RC)))
      return M.getInt(*Folded);
    if (isCmp(I->opcode()))
      return M.getBool(evalIntCmp(I->opcode(), *LC, *RC));
    return nullptr;
  };

  // Phase 1: create all blocks up front (latch clones must be able to
  // branch to the next iteration's header), inserted at the original
  // header's position so block order stays def-before-use.
  size_t InsertAt = F.blockIndex(L.Header);
  std::vector<std::unordered_map<const BasicBlock *, BasicBlock *>>
      BlockMaps(L.Trips);
  for (unsigned It = 0; It < L.Trips; ++It)
    for (BasicBlock *B : L.BodyOrder)
      BlockMaps[It][B] = F.createBlockAt(
          InsertAt++, B->name() + format(".it%u", It));
  BasicBlock *FinalHeader =
      F.createBlockAt(InsertAt++, L.Header->name() + ".done");
  auto headerOf = [&](unsigned It) {
    return It < L.Trips ? BlockMaps[It][L.Header] : FinalHeader;
  };

  // Phase 2: per iteration, seed the map with the header phis' reaching
  // values, then clone every body block (phis in interior blocks are
  // created empty and filled once the whole copy exists, mirroring
  // cloneFunction's back-edge handling for inner loops left rolled).
  std::vector<ValueMap> Maps(L.Trips + 1);
  size_t NumPhis = L.Header->firstNonPhiIndex();
  for (unsigned It = 0; It <= L.Trips; ++It) {
    ValueMap &Map = Maps[It];
    for (size_t PI = 0; PI < NumPhis; ++PI) {
      Instruction *Phi = L.Header->at(PI);
      Map[Phi] = It == 0
                     ? Phi->incomingValueFor(L.Preheader)
                     : mapped(Maps[It - 1],
                              Phi->incomingValueFor(L.Latch));
    }
    bool IsFinal = It == L.Trips;
    std::vector<std::pair<const Instruction *, Instruction *>> Phis;
    for (BasicBlock *B : IsFinal ? std::vector<BasicBlock *>{L.Header}
                                 : L.BodyOrder) {
      BasicBlock *NewB = IsFinal ? FinalHeader : BlockMaps[It][B];
      bool IsHeader = B == L.Header;
      for (const auto &IPtr : B->instructions()) {
        const Instruction *I = IPtr.get();
        if (I->opcode() == Opcode::Phi) {
          if (IsHeader)
            continue; // Collapsed through Map.
          auto NewPhi = std::make_unique<Instruction>(
              Opcode::Phi, I->type(), std::vector<Value *>{}, I->name());
          Phis.emplace_back(I, NewPhi.get());
          Map[I] = NewB->append(std::move(NewPhi));
          continue;
        }
        if (I->isTerminator()) {
          if (IsHeader) {
            // The in-loop edge is taken for iterations 0..Trips-1 and
            // the exit edge after the last; emit the decided branch.
            auto Br = std::make_unique<Instruction>(
                Opcode::Br, Type::voidTy(), std::vector<Value *>{}, "");
            Br->setBranchTarget(
                0, IsFinal ? L.Exit
                           : (L.BodyEntry == L.Header
                                  ? headerOf(It + 1)
                                  : BlockMaps[It][L.BodyEntry]));
            NewB->append(std::move(Br));
          } else {
            std::vector<Value *> Ops;
            for (Value *Op : I->operands())
              Ops.push_back(mapped(Map, Op));
            auto NewT = std::make_unique<Instruction>(
                I->opcode(), I->type(), std::move(Ops), I->name());
            for (unsigned TI = 0;
                 TI < (I->opcode() == Opcode::CondBr ? 2u : 1u); ++TI) {
              BasicBlock *Target = I->branchTarget(TI);
              NewT->setBranchTarget(TI, Target == L.Header
                                            ? headerOf(It + 1)
                                            : BlockMaps[It][Target]);
            }
            NewB->append(std::move(NewT));
          }
          continue;
        }
        std::vector<Value *> Ops;
        for (Value *Op : I->operands())
          Ops.push_back(mapped(Map, Op));
        if (Value *Folded = foldOrClone(I, Ops)) {
          Map[I] = Folded;
          continue;
        }
        auto NewI = std::make_unique<Instruction>(I->opcode(), I->type(),
                                                  std::move(Ops),
                                                  I->name());
        if (I->opcode() == Opcode::Call)
          NewI->setCallee(I->callee());
        Map[I] = NewB->append(std::move(NewI));
      }
    }
    // Phase 3 (per copy): fill interior phis now that every block and
    // value of this iteration exists.
    for (auto &[OldPhi, NewPhi] : Phis)
      for (unsigned PI = 0; PI < OldPhi->numIncoming(); ++PI)
        NewPhi->addIncoming(mapped(Map, OldPhi->incomingValue(PI)),
                            BlockMaps[It][OldPhi->incomingBlock(PI)]);
  }
  ValueMap &FinalMap = Maps[L.Trips];

  // Rewire the loop's surroundings: the preheader enters the first
  // iteration, exit phis take the final header copy's edge, and every
  // outside use of a header-defined value reads the final copy.
  L.Preheader->terminator()->setBranchTarget(0, headerOf(0));
  for (size_t PI = 0; PI < L.Exit->firstNonPhiIndex(); ++PI) {
    Instruction *Phi = L.Exit->at(PI);
    if (Value *V = Phi->incomingValueFor(L.Header)) {
      Phi->removeIncomingFor(L.Header);
      Phi->addIncoming(mapped(FinalMap, V), FinalHeader);
    }
  }
  for (const auto &BB : F.blocks()) {
    if (L.Body.count(BB.get()))
      continue;
    for (const auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        Value *R = mapped(FinalMap, I->operand(OpI));
        if (R != I->operand(OpI))
          I->setOperand(OpI, R);
      }
  }
  for (BasicBlock *B : L.BodyOrder)
    F.removeBlock(B);
}

/// Merges straight-line block chains: a block ending in an unconditional
/// branch absorbs its successor when it is the successor's only
/// predecessor. Fully unrolled loops become one block the block-local
/// passes see whole. \returns blocks merged.
unsigned mergeStraightChains(Function &F) {
  unsigned Merged = 0;
  auto Preds = predecessors(F);
  // One forward sweep; after absorbing B, A keeps merging into whatever
  // B used to branch to, so a K-block chain collapses in K steps with
  // the predecessor map maintained incrementally. Only forward merges
  // (B after A in layout) are taken: pulling an earlier block's code
  // behind A could move definitions below uses in blocks between them,
  // and removing a block below AI would desynchronize the index walk.
  // The frontend never lays a single-pred unconditional target backward,
  // so nothing real is skipped.
  for (size_t AI = 0; AI < F.numBlocks(); ++AI) {
    BasicBlock *A = F.block(AI);
    while (true) {
      Instruction *T = A->terminator();
      if (!T || T->opcode() != Opcode::Br)
        break;
      BasicBlock *B = T->branchTarget(0);
      if (B == A || B == F.entry() || F.blockIndex(B) < AI)
        break;
      auto PIt = Preds.find(B);
      if (PIt == Preds.end() || PIt->second.size() != 1)
        break;

      // Single-predecessor phis are copies of their one incoming value;
      // collect them all and rewrite their uses in one function sweep.
      std::unordered_map<const Value *, Value *> PhiVals;
      size_t NumPhis = B->firstNonPhiIndex();
      for (size_t PI = 0; PI < NumPhis; ++PI) {
        Value *V = B->at(PI)->incomingValueFor(A);
        assert(V && "single-pred phi missing its incoming value");
        PhiVals[B->at(PI)] = V;
      }
      // Resolve phi-feeds-phi chains so no use lands on a deleted phi.
      for (auto &[Phi, V] : PhiVals)
        for (size_t Hops = 0; Hops < NumPhis; ++Hops) {
          auto It = PhiVals.find(V);
          if (It == PhiVals.end())
            break;
          V = It->second;
        }
      if (!PhiVals.empty())
        for (const auto &BB : F.blocks())
          for (const auto &I : BB->instructions())
            for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
              auto It = PhiVals.find(I->operand(OpI));
              if (It != PhiVals.end())
                I->setOperand(OpI, It->second);
            }
      auto &BInstrs = B->mutableInstructions();
      BInstrs.erase(BInstrs.begin(),
                    BInstrs.begin() + static_cast<ptrdiff_t>(NumPhis));

      // Splice B's remaining instructions behind A (dropping A's
      // branch), retarget B's successors' phis and predecessor lists.
      A->mutableInstructions().pop_back();
      for (auto &I : BInstrs) {
        I->setParent(A);
        A->mutableInstructions().push_back(std::move(I));
      }
      BInstrs.clear();
      Preds.erase(B);
      for (BasicBlock *Succ : successors(A)) {
        for (BasicBlock *&P : Preds[Succ])
          if (P == B)
            P = A;
        for (size_t PI = 0; PI < Succ->firstNonPhiIndex(); ++PI) {
          Instruction *Phi = Succ->at(PI);
          if (Value *V = Phi->incomingValueFor(B)) {
            Phi->removeIncomingFor(B);
            Phi->addIncoming(V, A);
          }
        }
      }
      F.removeBlock(B);
      ++Merged;
    }
  }
  return Merged;
}

} // namespace

unsigned ir::unrollConstantLoops(Function &F, Module &M, unsigned Budget) {
  unsigned Changes = 0;
  while (true) {
    DominatorTree DT = DominatorTree::compute(F);
    std::optional<UnrollableLoop> L = findUnrollableLoop(F, DT, Budget);
    if (!L)
      break;
    unrollLoop(F, M, *L);
    ++Changes;
  }
  if (Changes)
    Changes += mergeStraightChains(F);
  return Changes;
}
