//===- ir/Lint.cpp ---------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Lint.h"

#include "ir/DivergenceAnalysis.h"
#include "ir/MemorySSA.h"

#include <unordered_set>

using namespace kperf;
using namespace kperf::ir;
using namespace kperf::ir::lint;

std::string LintResult::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.Sev == Severity::Error ? "error: " : "warning: ";
    Out += D.Check;
    Out += ": ";
    Out += D.Message;
    Out += "\n";
  }
  return Out;
}

namespace {

/// "block 'name' #3 (%v)" -- enough to find the instruction in dumped IR.
std::string locate(const Instruction *I) {
  std::string Loc =
      "block '" + I->parent()->name() + "' #" +
      std::to_string(I->parent()->indexOf(I));
  if (!I->name().empty())
    Loc += " (%" + I->name() + ")";
  return Loc;
}

Interval addIntervals(const Interval &A, const Interval &B) {
  if (A.isEmpty() || B.isEmpty())
    return Interval::empty();
  Interval S = Interval::make(A.Lo + B.Lo, A.Hi + B.Hi);
  if (S.Lo < INT32_MIN || S.Hi > INT32_MAX)
    return Interval::full();
  return S;
}

class Linter {
public:
  Linter(const Function &F, AnalysisManager &AM, const LintOptions &Opts)
      : F(F), DT(AM.getDominatorTree(F)), MSSA(AM.getMemorySSA(F)),
        RA(AM.getRangeAnalysis(F, Opts.Bounds)),
        DA(AM.getDivergenceAnalysis(F)) {}

  LintResult run() {
    for (const auto &BB : F.blocks()) {
      if (!DT.isReachable(BB.get()))
        continue;
      for (const auto &I : BB->instructions())
        visit(I.get());
    }
    checkLocalRaces();
    return std::move(R);
  }

private:
  void diag(Severity Sev, const char *Check, const Instruction *I,
            std::string Message) {
    R.Diags.push_back(Diagnostic{
        Sev, Check,
        "kernel '" + F.name() + "': " + std::move(Message) + " at " +
            locate(I),
        I});
  }

  void visit(const Instruction *I) {
    switch (I->opcode()) {
    case Opcode::Load:
      checkAccess(I, I->operand(0), /*IsStore=*/false);
      checkUninitPrivate(I);
      recordLocalAccess(I, I->operand(0), /*IsStore=*/false);
      break;
    case Opcode::Store:
      checkAccess(I, I->operand(1), /*IsStore=*/true);
      recordLocalAccess(I, I->operand(1), /*IsStore=*/true);
      break;
    case Opcode::Div:
    case Opcode::Rem:
      checkDivByZero(I);
      break;
    case Opcode::Call:
      if (I->callee() == Builtin::Barrier && DA.isDivergentBlock(I->parent()))
        diag(Severity::Error, "divergent-barrier", I,
             "barrier reachable under divergent control flow (work items "
             "of a group may not all execute it)");
      break;
    default:
      break;
    }
  }

  /// Sums the GEP-chain index ranges of \p Ptr at the access block.
  Interval indexRange(const Value *Ptr, const BasicBlock *At) {
    Interval Idx = Interval::constant(0);
    const Value *P = Ptr;
    while (const auto *G = dyn_cast<Instruction>(P)) {
      if (G->opcode() != Opcode::Gep)
        break;
      Idx = addIntervals(Idx, RA.rangeAt(G->operand(1), At));
      P = G->operand(0);
    }
    return Idx;
  }

  void checkAccess(const Instruction *I, const Value *Ptr, bool IsStore) {
    MemoryLoc L = memoryLocation(Ptr);
    if (!L.Root)
      return; // Opaque pointer chains have no extent to check against.
    Interval Idx = indexRange(Ptr, I->parent());
    if (Idx.isEmpty())
      return; // Refinement proved the access unreachable.
    const char *Kind = IsStore ? "write" : "read";
    if (const auto *A = dyn_cast<Instruction>(L.Root)) {
      // Alloca-backed private or local storage with a known extent.
      int64_t Extent = A->allocaCount();
      const char *Space =
          A->allocaSpace() == AddressSpace::Local ? "local" : "private";
      if (Idx.disjointFrom(0, Extent - 1))
        diag(Severity::Error, "oob", I,
             std::string("definite out-of-bounds ") + Space + " " + Kind +
                 ": index range " + Idx.str() + " outside '" +
                 A->name() + "'[0.." + std::to_string(Extent - 1) + "]");
      else if (!Idx.within(0, Extent - 1))
        diag(Severity::Warning, "oob", I,
             std::string("possible out-of-bounds ") + Space + " " + Kind +
                 ": index range " + Idx.str() + " exceeds '" + A->name() +
                 "'[0.." + std::to_string(Extent - 1) + "]");
      return;
    }
    // Global argument buffers: the extent is host-side, so only sign
    // information is actionable. A fully-unknown lower bound (typical
    // i*w+x arithmetic) stays quiet.
    if (Idx.Hi < 0)
      diag(Severity::Error, "oob", I,
           std::string("definite out-of-bounds global ") + Kind +
               ": index range " + Idx.str() + " into '" +
               L.Root->name() + "' is negative");
    else if (Idx.Lo < 0 && Idx.Lo != INT32_MIN)
      diag(Severity::Warning, "oob", I,
           std::string("possible out-of-bounds global ") + Kind +
               ": index range " + Idx.str() + " into '" +
               L.Root->name() + "' includes negative offsets");
  }

  void checkUninitPrivate(const Instruction *Load) {
    MemoryLoc L = memoryLocation(Load->operand(0));
    const auto *A = dyn_cast<Instruction>(L.Root);
    if (!A || A->allocaSpace() != AddressSpace::Private)
      return;
    if (MSSA.clobberingAccess(Load) == MSSA.liveOnEntry())
      diag(Severity::Warning, "uninit-private", Load,
           "load of never-stored private memory '" + A->name() +
               "' (reads the arena zero-fill)");
  }

  void checkDivByZero(const Instruction *I) {
    if (!I->type().isInt())
      return;
    Interval D = RA.rangeAt(I->operand(1), I->parent());
    if (D.isEmpty())
      return;
    if (D == Interval::constant(0))
      diag(Severity::Error, "div-by-zero", I,
           "definite integer division by zero");
    else if (D.contains(0) && !D.isFull())
      diag(Severity::Warning, "div-by-zero", I,
           "possible integer division by zero: divisor range " + D.str());
  }

  //===--- Local-memory race check -----------------------------------------//

  struct LocalAccess {
    const Instruction *I = nullptr;
    const Value *Ptr = nullptr;
    MemoryLoc Loc;
    bool IsStore = false;
    /// Barrier defs (or LiveOnEntry) that open this access's phase.
    std::unordered_set<const MemorySSA::Access *> Anchors;
  };

  void recordLocalAccess(const Instruction *I, const Value *Ptr,
                         bool IsStore) {
    MemoryLoc L = memoryLocation(Ptr);
    const auto *A = dyn_cast<Instruction>(L.Root);
    if (!A || A->opcode() != Opcode::Alloca ||
        A->allocaSpace() != AddressSpace::Local)
      return;
    LocalAccess LA;
    LA.I = I;
    LA.Ptr = Ptr;
    LA.Loc = L;
    LA.IsStore = IsStore;
    // Walk the memory-SSA chain upward to the defs that opened this
    // barrier phase; stores and phis are transparent, barriers and
    // LiveOnEntry anchor.
    std::vector<const MemorySSA::Access *> Stack = {
        MSSA.reachingAccess(I)};
    std::unordered_set<const MemorySSA::Access *> Seen;
    while (!Stack.empty()) {
      const MemorySSA::Access *Acc = Stack.back();
      Stack.pop_back();
      if (!Acc || !Seen.insert(Acc).second)
        continue;
      switch (Acc->Kind) {
      case MemorySSA::AccessKind::LiveOnEntry:
        LA.Anchors.insert(Acc);
        break;
      case MemorySSA::AccessKind::Def:
        if (Acc->Inst->opcode() == Opcode::Call) // A barrier def.
          LA.Anchors.insert(Acc);
        else
          Stack.push_back(Acc->Defining);
        break;
      case MemorySSA::AccessKind::Phi:
        for (const MemorySSA::Access *In : Acc->Incoming)
          Stack.push_back(In);
        break;
      }
    }
    LocalAccesses.push_back(std::move(LA));
  }

  bool samePhase(const LocalAccess &A, const LocalAccess &B) {
    for (const MemorySSA::Access *Anchor : A.Anchors)
      if (B.Anchors.count(Anchor))
        return true;
    return false;
  }

  void checkLocalRaces() {
    // Self race: a store all items execute, to one shared element, of
    // per-item values. Under a divergent guard this is the single-writer
    // idiom and stays quiet.
    for (const LocalAccess &A : LocalAccesses)
      if (A.IsStore && DA.isUniform(A.Ptr) &&
          DA.isDivergent(A.I->operand(0)) &&
          !DA.isDivergentBlock(A.I->parent()))
        diag(Severity::Warning, "local-race", A.I,
             "all work items write the same local element of '" +
                 A.Loc.Root->name() + "' with differing values");
    // Pair races: distinct address expressions that may alias inside one
    // barrier phase. A single divergent address shared by both accesses
    // is assumed per-item-distinct (the tile[lid] idiom).
    for (size_t I = 0; I < LocalAccesses.size(); ++I)
      for (size_t J = I + 1; J < LocalAccesses.size(); ++J) {
        const LocalAccess &A = LocalAccesses[I], &B = LocalAccesses[J];
        if (!A.IsStore && !B.IsStore)
          continue;
        if (A.Ptr == B.Ptr)
          continue;
        if (!mayAliasLocations(A.Loc, B.Loc) || !samePhase(A, B))
          continue;
        const LocalAccess &W = A.IsStore ? A : B;
        const LocalAccess &O = A.IsStore ? B : A;
        diag(Severity::Warning, "local-race", W.I,
             std::string("possible ") + (O.IsStore ? "write-write" : "read-write") +
                 " race between work items on '" + W.Loc.Root->name() +
                 "': no barrier between this write and the " +
                 (O.IsStore ? "write" : "read") + " at " + locate(O.I));
      }
  }

  const Function &F;
  const DominatorTree &DT;
  const MemorySSA &MSSA;
  const RangeAnalysis &RA;
  const DivergenceAnalysis &DA;
  std::vector<LocalAccess> LocalAccesses;
  LintResult R;
};

} // namespace

LintResult lint::run(const Function &F, AnalysisManager &AM,
                     const LintOptions &Opts) {
  return Linter(F, AM, Opts).run();
}
