//===- ir/IRBuilder.h - Instruction construction helper ----------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends instructions at an insertion point with per-opcode
/// type checking asserted at construction time (the verifier re-checks the
/// same invariants after transforms).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_IRBUILDER_H
#define KPERF_IR_IRBUILDER_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// Appends new instructions to a basic block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *BB) {
    Block = BB;
    InsertAtIndex = false;
  }

  /// Inserts before position \p Index of \p BB instead of appending; each
  /// created instruction advances the position.
  void setInsertPoint(BasicBlock *BB, size_t Index) {
    Block = BB;
    InsertAtIndex = true;
    Index_ = Index;
  }

  BasicBlock *insertBlock() const { return Block; }
  Module &module() const { return M; }

  // Constant helpers.
  ConstantInt *getInt(int32_t V) { return M.getInt(V); }
  ConstantFloat *getFloat(float V) { return M.getFloat(V); }
  ConstantBool *getBool(bool V) { return M.getBool(V); }

  /// Creates a private or local alloca of \p Count elements of \p Elem.
  Instruction *createAlloca(ScalarKind Elem, unsigned Count,
                            AddressSpace Space, std::string Name);

  Instruction *createLoad(Value *Ptr, std::string Name = "");
  Instruction *createStore(Value *Val, Value *Ptr);
  Instruction *createGep(Value *Ptr, Value *Index, std::string Name = "");

  Instruction *createBinary(Opcode Op, Value *LHS, Value *RHS,
                            std::string Name = "");
  Instruction *createAdd(Value *L, Value *R, std::string Name = "") {
    return createBinary(Opcode::Add, L, R, std::move(Name));
  }
  Instruction *createSub(Value *L, Value *R, std::string Name = "") {
    return createBinary(Opcode::Sub, L, R, std::move(Name));
  }
  Instruction *createMul(Value *L, Value *R, std::string Name = "") {
    return createBinary(Opcode::Mul, L, R, std::move(Name));
  }
  Instruction *createDiv(Value *L, Value *R, std::string Name = "") {
    return createBinary(Opcode::Div, L, R, std::move(Name));
  }
  Instruction *createRem(Value *L, Value *R, std::string Name = "") {
    return createBinary(Opcode::Rem, L, R, std::move(Name));
  }

  Instruction *createCmp(Opcode Op, Value *LHS, Value *RHS,
                         std::string Name = "");
  Instruction *createLogical(Opcode Op, Value *LHS, Value *RHS,
                             std::string Name = "");
  Instruction *createNot(Value *V, std::string Name = "");
  Instruction *createNeg(Value *V, std::string Name = "");
  Instruction *createIntToFloat(Value *V, std::string Name = "");
  Instruction *createFloatToInt(Value *V, std::string Name = "");
  Instruction *createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                            std::string Name = "");

  /// Creates a builtin call; result type is derived from the builtin and
  /// argument types.
  Instruction *createCall(Builtin B, std::vector<Value *> Args,
                          std::string Name = "");

  /// Creates an empty phi of type \p Ty at the head of the current block
  /// (after any existing phis), regardless of the insertion point. Fill it
  /// with Instruction::addIncoming.
  Instruction *createPhi(Type Ty, std::string Name = "");

  Instruction *createBr(BasicBlock *Target);
  Instruction *createCondBr(Value *Cond, BasicBlock *TrueBB,
                            BasicBlock *FalseBB);
  Instruction *createRet();

  // Convenience compositions used heavily by the transforms.

  /// i32 constant folding add: returns a constant if both are constants.
  Value *foldAdd(Value *L, Value *R);

  /// Emits min(max(V, Lo), Hi) via the Clamp builtin.
  Instruction *createClampInt(Value *V, Value *Lo, Value *Hi,
                              std::string Name = "");

private:
  Instruction *insert(std::unique_ptr<Instruction> I);

  Module &M;
  BasicBlock *Block = nullptr;
  bool InsertAtIndex = false;
  size_t Index_ = 0;
};

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_IRBUILDER_H
