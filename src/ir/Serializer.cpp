//===- ir/Serializer.cpp ----------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Serializer.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

using namespace kperf;
using namespace kperf::ir;

//===--- Encoding tables -----------------------------------------------------//

namespace {

const Opcode kAllOpcodes[] = {
    Opcode::Alloca,     Opcode::Load,     Opcode::Store,
    Opcode::Gep,        Opcode::Add,      Opcode::Sub,
    Opcode::Mul,        Opcode::Div,      Opcode::Rem,
    Opcode::CmpEq,      Opcode::CmpNe,    Opcode::CmpLt,
    Opcode::CmpLe,      Opcode::CmpGt,    Opcode::CmpGe,
    Opcode::LogicalAnd, Opcode::LogicalOr, Opcode::LogicalNot,
    Opcode::Neg,        Opcode::IntToFloat, Opcode::FloatToInt,
    Opcode::Select,     Opcode::Call,     Opcode::Phi,
    Opcode::Br,         Opcode::CondBr,   Opcode::Ret,
};

const Builtin kAllBuiltins[] = {
    Builtin::GetGlobalId,  Builtin::GetLocalId,  Builtin::GetGroupId,
    Builtin::GetLocalSize, Builtin::GetGlobalSize, Builtin::GetNumGroups,
    Builtin::Barrier,      Builtin::Min,         Builtin::Max,
    Builtin::Clamp,        Builtin::Abs,         Builtin::Sqrt,
    Builtin::Exp,          Builtin::Log,         Builtin::Pow,
    Builtin::Floor,
};

bool opcodeFromName(const std::string &Name, Opcode &Op) {
  for (Opcode Candidate : kAllOpcodes)
    if (Name == opcodeName(Candidate)) {
      Op = Candidate;
      return true;
    }
  return false;
}

bool builtinFromName(const std::string &Name, Builtin &B) {
  for (Builtin Candidate : kAllBuiltins)
    if (Name == builtinName(Candidate)) {
      B = Candidate;
      return true;
    }
  return false;
}

/// Type -> compact code: scalars "v"/"b"/"i"/"f"; pointers "p" + pointee
/// ("i"/"f") + space ("p"/"l"/"g").
std::string typeCode(const Type &Ty) {
  if (Ty.isPointer()) {
    std::string Code = "p";
    Code += Ty.scalarKind() == ScalarKind::Int ? 'i' : 'f';
    switch (Ty.addressSpace()) {
    case AddressSpace::Private:
      Code += 'p';
      break;
    case AddressSpace::Local:
      Code += 'l';
      break;
    case AddressSpace::Global:
      Code += 'g';
      break;
    }
    return Code;
  }
  if (Ty.isVoid())
    return "v";
  if (Ty.isBool())
    return "b";
  if (Ty.isInt())
    return "i";
  return "f";
}

bool typeFromCode(const std::string &Code, Type &Ty) {
  if (Code == "v") {
    Ty = Type::voidTy();
    return true;
  }
  if (Code == "b") {
    Ty = Type::boolTy();
    return true;
  }
  if (Code == "i") {
    Ty = Type::intTy();
    return true;
  }
  if (Code == "f") {
    Ty = Type::floatTy();
    return true;
  }
  if (Code.size() != 3 || Code[0] != 'p')
    return false;
  ScalarKind Elem;
  if (Code[1] == 'i')
    Elem = ScalarKind::Int;
  else if (Code[1] == 'f')
    Elem = ScalarKind::Float;
  else
    return false;
  AddressSpace Space;
  if (Code[2] == 'p')
    Space = AddressSpace::Private;
  else if (Code[2] == 'l')
    Space = AddressSpace::Local;
  else if (Code[2] == 'g')
    Space = AddressSpace::Global;
  else
    return false;
  Ty = Type::pointerTo(Elem, Space);
  return true;
}

/// Names are cosmetic; anything that would break the one-line-per-record
/// format is replaced by a placeholder.
std::string sanitizeName(const std::string &Name) {
  if (Name.empty())
    return "_";
  for (char C : Name)
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r')
      return "_";
  return Name;
}

/// Checked numeric parse; the cache files this reader consumes may be
/// truncated or hand-edited, and this library never throws.
bool parseU64(const std::string &S, uint64_t &Out, int Base = 10) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, Base);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

bool parseI64(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

uint32_t floatBits(float V) {
  uint32_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

float floatFromBits(uint32_t Bits) {
  float V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace

//===--- Serialization -------------------------------------------------------//

std::string ir::serializeFunction(const Function &F) {
  // Global instruction indices, in (block, position) order.
  std::map<const Value *, size_t> InstrIndex;
  std::map<const BasicBlock *, size_t> BlockIndex;
  size_t NextInstr = 0;
  for (size_t BI = 0; BI < F.numBlocks(); ++BI) {
    const BasicBlock *BB = F.block(BI);
    BlockIndex[BB] = BI;
    for (const auto &I : BB->instructions())
      InstrIndex[I.get()] = NextInstr++;
  }

  auto operandToken = [&](const Value *V) -> std::string {
    if (const auto *A = dyn_cast<Argument>(V))
      return format("a%u", A->index());
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return format("i%d", CI->value());
    if (const auto *CF = dyn_cast<ConstantFloat>(V))
      return format("f%08x", floatBits(CF->value()));
    if (const auto *CB = dyn_cast<ConstantBool>(V))
      return CB->value() ? "bt" : "bf";
    auto It = InstrIndex.find(V);
    assert(It != InstrIndex.end() && "operand outside the function");
    return format("v%zu", It->second);
  };

  std::ostringstream Out;
  Out << kSerialFormatVersion << "\n";
  Out << "function " << sanitizeName(F.name()) << "\n";
  for (unsigned AI = 0; AI < F.numArguments(); ++AI) {
    const Argument *A = F.argument(AI);
    Out << "arg " << typeCode(A->type()) << " "
        << (A->isConst() ? "c" : "m") << " " << sanitizeName(A->name())
        << "\n";
  }
  for (size_t BI = 0; BI < F.numBlocks(); ++BI) {
    const BasicBlock *BB = F.block(BI);
    Out << "block " << sanitizeName(BB->name()) << "\n";
    for (const auto &IP : BB->instructions()) {
      const Instruction *I = IP.get();
      Out << "inst " << typeCode(I->type()) << " "
          << opcodeName(I->opcode()) << " " << sanitizeName(I->name())
          << " " << I->numOperands();
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        Out << " " << operandToken(I->operand(OpI));
        if (I->opcode() == Opcode::Phi)
          Out << " P" << BlockIndex.at(I->incomingBlock(OpI));
      }
      switch (I->opcode()) {
      case Opcode::Alloca:
        Out << " n" << I->allocaCount();
        break;
      case Opcode::Call:
        Out << " @" << builtinName(I->callee());
        break;
      case Opcode::Br:
        Out << " T" << BlockIndex.at(I->branchTarget(0));
        break;
      case Opcode::CondBr:
        Out << " T" << BlockIndex.at(I->branchTarget(0)) << " T"
            << BlockIndex.at(I->branchTarget(1));
        break;
      default:
        break;
      }
      Out << "\n";
    }
  }
  Out << "endfunction\n";
  return Out.str();
}

//===--- Deserialization -----------------------------------------------------//

namespace {

/// One parsed "inst" record awaiting operand/target fixup.
struct PendingInstr {
  Instruction *I = nullptr;
  std::vector<std::string> OperandTokens;
  std::vector<size_t> PhiPreds; ///< Index-parallel to OperandTokens.
  size_t Targets[2] = {~size_t(0), ~size_t(0)};
};

Error corrupt(const char *What, size_t LineNo) {
  return makeError("deserialize: %s (line %zu)", What, LineNo);
}

} // namespace

Expected<Function *> ir::deserializeFunction(Module &M,
                                             const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;

  auto nextLine = [&]() -> bool {
    while (std::getline(In, Line)) {
      ++LineNo;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        return true;
    }
    return false;
  };

  if (!nextLine() || Line != kSerialFormatVersion)
    return makeError("deserialize: format-version stamp mismatch "
                     "(want '%s')",
                     kSerialFormatVersion);
  if (!nextLine())
    return corrupt("truncated input", LineNo);
  std::istringstream Header(Line);
  std::string Tag, FuncName;
  Header >> Tag >> FuncName;
  if (Tag != "function" || FuncName.empty())
    return corrupt("expected 'function <name>'", LineNo);

  Function *F = M.createFunction(FuncName == "_" ? "" : FuncName);
  // On any failure below, detach the half-built function again; interned
  // constants are harmless to keep.
  auto fail = [&](Error E) -> Expected<Function *> {
    M.takeFunction(F);
    return E;
  };

  std::vector<BasicBlock *> Blocks;
  std::vector<PendingInstr> Pending;
  BasicBlock *CurBB = nullptr;
  bool Ended = false;

  while (nextLine()) {
    std::istringstream LS(Line);
    LS >> Tag;
    if (Tag == "arg") {
      if (CurBB)
        return fail(corrupt("'arg' after first block", LineNo));
      std::string TyCode, ConstFlag, Name;
      LS >> TyCode >> ConstFlag >> Name;
      Type Ty;
      if (!typeFromCode(TyCode, Ty) ||
          (ConstFlag != "c" && ConstFlag != "m") || Name.empty())
        return fail(corrupt("malformed 'arg' record", LineNo));
      F->addArgument(Ty, Name == "_" ? "" : Name, ConstFlag == "c");
    } else if (Tag == "block") {
      std::string Name;
      LS >> Name;
      if (Name.empty())
        return fail(corrupt("malformed 'block' record", LineNo));
      CurBB = F->createBlock(Name == "_" ? "" : Name);
      Blocks.push_back(CurBB);
    } else if (Tag == "inst") {
      if (!CurBB)
        return fail(corrupt("'inst' before any block", LineNo));
      std::string TyCode, OpName, Name;
      unsigned NumOps = 0;
      LS >> TyCode >> OpName >> Name >> NumOps;
      Type Ty;
      Opcode Op;
      if (!typeFromCode(TyCode, Ty) || !opcodeFromName(OpName, Op) ||
          Name.empty() || LS.fail() || NumOps > 1u << 20)
        return fail(corrupt("malformed 'inst' record", LineNo));
      PendingInstr P;
      for (unsigned OpI = 0; OpI < NumOps; ++OpI) {
        std::string Token;
        LS >> Token;
        if (Token.empty())
          return fail(corrupt("missing operand token", LineNo));
        P.OperandTokens.push_back(Token);
        if (Op == Opcode::Phi) {
          LS >> Token;
          uint64_t Pred = 0;
          if (Token.size() < 2 || Token[0] != 'P' ||
              !parseU64(Token.substr(1), Pred))
            return fail(corrupt("missing phi predecessor", LineNo));
          P.PhiPreds.push_back(static_cast<size_t>(Pred));
        }
      }
      // Phis get their operands via addIncoming during fixup; everything
      // else is built with null placeholders patched below.
      std::vector<Value *> Placeholders(
          Op == Opcode::Phi ? 0 : P.OperandTokens.size(), nullptr);
      Instruction *I = CurBB->append(std::make_unique<Instruction>(
          Op, Ty, std::move(Placeholders), Name == "_" ? "" : Name));
      P.I = I;
      std::string Extra;
      while (LS >> Extra) {
        if (Extra.size() < 2)
          return fail(corrupt("malformed extra token", LineNo));
        switch (Extra[0]) {
        case 'n': {
          uint64_t Count = 0;
          if (Op != Opcode::Alloca || !parseU64(Extra.substr(1), Count))
            return fail(corrupt("count on non-alloca", LineNo));
          I->setAllocaCount(static_cast<unsigned>(Count));
          break;
        }
        case '@': {
          Builtin B;
          if (Op != Opcode::Call || !builtinFromName(Extra.substr(1), B))
            return fail(corrupt("bad callee", LineNo));
          I->setCallee(B);
          break;
        }
        case 'T': {
          uint64_t Target = 0;
          if ((Op != Opcode::Br && Op != Opcode::CondBr) ||
              !parseU64(Extra.substr(1), Target))
            return fail(corrupt("target on non-branch", LineNo));
          size_t Slot = P.Targets[0] == ~size_t(0) ? 0 : 1;
          P.Targets[Slot] = static_cast<size_t>(Target);
          break;
        }
        default:
          return fail(corrupt("unknown extra token", LineNo));
        }
      }
      Pending.push_back(std::move(P));
    } else if (Tag == "endfunction") {
      Ended = true;
      break;
    } else {
      return fail(corrupt("unknown record tag", LineNo));
    }
  }
  if (!Ended)
    return fail(corrupt("missing 'endfunction'", LineNo));

  // Fixup pass: resolve operand tokens, phi incomings, branch targets.
  std::vector<Instruction *> ByIndex;
  for (BasicBlock *BB : Blocks)
    for (const auto &I : BB->instructions())
      ByIndex.push_back(I.get());

  auto resolve = [&](const std::string &Token) -> Value * {
    if (Token.size() < 2)
      return nullptr;
    const std::string Payload = Token.substr(1);
    switch (Token[0]) {
    case 'a': {
      uint64_t Index = 0;
      if (!parseU64(Payload, Index) || Index >= F->numArguments())
        return nullptr;
      return F->argument(static_cast<unsigned>(Index));
    }
    case 'i': {
      int64_t V = 0;
      if (!parseI64(Payload, V))
        return nullptr;
      return M.getInt(static_cast<int32_t>(V));
    }
    case 'f': {
      uint64_t Bits = 0;
      if (!parseU64(Payload, Bits, 16))
        return nullptr;
      return M.getFloat(floatFromBits(static_cast<uint32_t>(Bits)));
    }
    case 'b':
      return Token == "bt" || Token == "bf" ? M.getBool(Token == "bt")
                                            : nullptr;
    case 'v': {
      uint64_t Index = 0;
      if (!parseU64(Payload, Index) || Index >= ByIndex.size())
        return nullptr;
      return ByIndex[static_cast<size_t>(Index)];
    }
    default:
      return nullptr;
    }
  };

  for (PendingInstr &P : Pending) {
    if (P.I->opcode() == Opcode::Phi) {
      for (size_t OpI = 0; OpI < P.OperandTokens.size(); ++OpI) {
        Value *V = resolve(P.OperandTokens[OpI]);
        if (!V || P.PhiPreds[OpI] >= Blocks.size())
          return fail(makeError("deserialize: unresolvable phi operand "
                                "'%s'",
                                P.OperandTokens[OpI].c_str()));
        P.I->addIncoming(V, Blocks[P.PhiPreds[OpI]]);
      }
    } else {
      for (size_t OpI = 0; OpI < P.OperandTokens.size(); ++OpI) {
        Value *V = resolve(P.OperandTokens[OpI]);
        if (!V)
          return fail(makeError("deserialize: unresolvable operand '%s'",
                                P.OperandTokens[OpI].c_str()));
        P.I->setOperand(static_cast<unsigned>(OpI), V);
      }
    }
    if (P.I->opcode() == Opcode::Br || P.I->opcode() == Opcode::CondBr) {
      unsigned Want = P.I->opcode() == Opcode::Br ? 1 : 2;
      for (unsigned TI = 0; TI < Want; ++TI) {
        if (P.Targets[TI] >= Blocks.size())
          return fail(makeError("deserialize: branch target out of "
                                "range"));
        P.I->setBranchTarget(TI, Blocks[P.Targets[TI]]);
      }
    }
  }
  return F;
}
