//===- ir/LoopUnroll.h - Constant-trip full loop unrolling --------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full unrolling of constant-trip natural loops under an IR-size budget,
/// targeting the 3x3/5x5 filter-window loops of the perforation apps.
/// A loop qualifies when:
///
///  * it has a unique preheader (unconditional branch in) and a single
///    back edge (one latch);
///  * the only exit is the header's conditional branch -- no body block
///    branches or returns out of the loop;
///  * the header has an induction phi `iv = phi [init, preheader],
///    [next, latch]` with `init` a constant, `next = iv +/- step` for a
///    constant step, and the exit condition a comparison of `iv` against
///    a constant bound;
///  * the trip count -- found by simulating the induction arithmetic
///    exactly as the interpreter would execute it -- times the loop's
///    instruction count fits the budget.
///
/// The body (including the header's non-phi instructions) is cloned once
/// per iteration with the induction phi collapsed to the iteration's
/// constant, loop-carried phis threaded through the copies, and a final
/// header copy computing the loop-exit values. Afterwards straight-line
/// block chains are merged, so a fully unrolled loop nest becomes one
/// block that the block-local passes (CSE, store forwarding, DSE) can
/// see whole, and simplify/GVN fold the now-constant induction
/// arithmetic.
///
/// Runs until no more loops qualify, so inner window loops unroll first
/// and the enclosing loop -- now straight-line -- unrolls next.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_LOOPUNROLL_H
#define KPERF_IR_LOOPUNROLL_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// Default IR-size budget: a loop unrolls when trip count x loop size
/// stays within this many instructions (sized so a perforated 5x5
/// filter-window nest flattens fully).
constexpr unsigned DefaultUnrollBudget = 2048;

/// Fully unrolls every qualifying constant-trip loop of \p F whose
/// unrolled size fits \p Budget, then merges straight-line block chains.
/// \p M interns the collapsed induction constants. \returns the number
/// of loops unrolled plus blocks merged (0 = untouched).
unsigned unrollConstantLoops(Function &F, Module &M,
                             unsigned Budget = DefaultUnrollBudget);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_LOOPUNROLL_H
