//===- ir/Mem2Reg.cpp -------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Mem2Reg.h"

#include "ir/AnalysisManager.h"
#include "ir/Dominators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Everything known about one candidate alloca.
struct AllocaInfo {
  Instruction *Alloca = nullptr;
  std::vector<Instruction *> Loads;
  std::vector<Instruction *> Stores;
  /// Blocks storing to the variable (definition points).
  std::unordered_set<const BasicBlock *> DefBlocks;
  /// Blocks reading the variable before writing it (upward-exposed).
  std::unordered_set<const BasicBlock *> UseBlocks;
  /// Blocks where the variable is live on entry (pruned phi placement).
  std::unordered_set<const BasicBlock *> LiveIn;
};

class PromoterImpl {
public:
  PromoterImpl(Function &F, Module &M, AnalysisManager &AM)
      : F(F), M(M), AM(AM) {}

  unsigned run() {
    collectCandidates();
    if (Candidates.empty())
      return 0;
    computeLiveness();
    for (size_t I = 0; I < Candidates.size(); ++I)
      CandidateIndex[Candidates[I].Alloca] = I;
    const DominatorTree &DT = AM.getDominatorTree(F);
    const DominanceFrontier &DF = AM.getDominanceFrontier(F);
    insertPhis(DF);
    rename(DT);
    rewriteOperands();
    fillMissingIncoming();
    erasePromoted();
    unsigned Trivial = removeTrivialPhis();
    unsigned Changes = static_cast<unsigned>(Candidates.size());
    for (const AllocaInfo &A : Candidates)
      Changes += static_cast<unsigned>(A.Loads.size() + A.Stores.size());
    assert(PhisInserted >= Trivial && "removed more phis than inserted");
    Changes += PhisInserted - Trivial;
    return Changes;
  }

private:
  //===--- Candidate selection ---------------------------------------------//

  /// Finds private scalar allocas whose every use is a direct load/store
  /// in a reachable block.
  void collectCandidates() {
    // Flat layout index per instruction and the use lists of every
    // alloca, in one walk.
    std::unordered_map<const Instruction *, size_t> FlatIndex;
    std::unordered_map<const Instruction *, AllocaInfo> Infos;
    std::unordered_set<const Instruction *> Disqualified;
    // Reachability without forcing a dominator-tree computation order
    // dependency: flood from the entry.
    std::unordered_set<const BasicBlock *> Reachable;
    {
      std::vector<const BasicBlock *> Work = {F.entry()};
      while (!Work.empty()) {
        const BasicBlock *BB = Work.back();
        Work.pop_back();
        if (!Reachable.insert(BB).second)
          continue;
        for (BasicBlock *Succ : successors(BB))
          Work.push_back(Succ);
      }
    }

    size_t Index = 0;
    for (const auto &BB : F.blocks()) {
      bool InReachable = Reachable.count(BB.get()) != 0;
      for (const auto &IPtr : BB->instructions()) {
        Instruction *I = IPtr.get();
        FlatIndex[I] = Index++;
        if (I->opcode() == Opcode::Alloca &&
            I->allocaSpace() == AddressSpace::Private &&
            I->allocaCount() == 1 && InReachable)
          Infos[I].Alloca = I;
        // Classify uses of alloca results.
        for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
          const auto *Op = dyn_cast<Instruction>(I->operand(OpI));
          if (!Op || Op->opcode() != Opcode::Alloca)
            continue;
          bool DirectLoad = I->opcode() == Opcode::Load && OpI == 0;
          bool DirectStore = I->opcode() == Opcode::Store && OpI == 1;
          if (!(DirectLoad || DirectStore) || !InReachable) {
            Disqualified.insert(Op); // Address escapes or dead-code use.
            continue;
          }
          auto It = Infos.find(Op);
          if (It == Infos.end())
            continue; // Local/array alloca; never a candidate.
          if (DirectLoad)
            It->second.Loads.push_back(I);
          else
            It->second.Stores.push_back(I);
          (DirectStore ? It->second.DefBlocks : It->second.UseBlocks)
              .insert(BB.get());
        }
      }
    }

    for (auto &[A, Info] : Infos) {
      if (!Disqualified.count(A))
        Candidates.push_back(std::move(Info));
    }
    // unordered_map iteration order is not deterministic; restore layout
    // order so phi insertion and naming are stable run to run.
    std::sort(Candidates.begin(), Candidates.end(),
              [&](const AllocaInfo &A, const AllocaInfo &B) {
                return FlatIndex[A.Alloca] < FlatIndex[B.Alloca];
              });
  }

  //===--- Liveness (block granularity) ------------------------------------//

  /// Backward flood from the upward-exposed-use blocks, stopping at
  /// definitions: LiveIn(B) holds iff some path from B's entry reaches a
  /// load before any store.
  void computeLiveness() {
    auto Preds = predecessors(F);
    for (AllocaInfo &Info : Candidates) {
      // Loads below a store in their own block are not upward-exposed;
      // refine the block sets computed during collection.
      std::unordered_set<const BasicBlock *> Exposed;
      for (const BasicBlock *BB : Info.UseBlocks) {
        for (const auto &I : BB->instructions()) {
          if (I->opcode() == Opcode::Store && I->numOperands() == 2 &&
              I->operand(1) == Info.Alloca)
            break; // Killed before any read on this block's paths.
          if (I->opcode() == Opcode::Load &&
              I->operand(0) == Info.Alloca) {
            Exposed.insert(BB);
            break;
          }
        }
      }
      std::vector<const BasicBlock *> Work(Exposed.begin(),
                                           Exposed.end());
      while (!Work.empty()) {
        const BasicBlock *BB = Work.back();
        Work.pop_back();
        if (!Info.LiveIn.insert(BB).second)
          continue;
        auto It = Preds.find(BB);
        if (It == Preds.end())
          continue;
        for (const BasicBlock *Pred : It->second)
          if (!Info.DefBlocks.count(Pred) && !Info.LiveIn.count(Pred))
            Work.push_back(Pred);
      }
    }
  }

  //===--- Phi placement ----------------------------------------------------//

  /// Standard iterated dominance frontier of the definition blocks,
  /// pruned to blocks where the variable is live on entry.
  void insertPhis(const DominanceFrontier &DF) {
    for (AllocaInfo &Info : Candidates) {
      std::vector<const BasicBlock *> Work(Info.DefBlocks.begin(),
                                           Info.DefBlocks.end());
      std::unordered_set<const BasicBlock *> HasPhi;
      while (!Work.empty()) {
        const BasicBlock *BB = Work.back();
        Work.pop_back();
        for (const BasicBlock *Frontier : DF.frontier(BB)) {
          if (HasPhi.count(Frontier) || !Info.LiveIn.count(Frontier))
            continue;
          HasPhi.insert(Frontier);
          auto Phi = std::make_unique<Instruction>(
              Opcode::Phi, Info.Alloca->type().pointeeType(),
              std::vector<Value *>{}, Info.Alloca->name());
          Instruction *P = const_cast<BasicBlock *>(Frontier)->insert(
              0, std::move(Phi));
          PhiAlloca[P] = Info.Alloca;
          ++PhisInserted;
          if (!Info.DefBlocks.count(Frontier))
            Work.push_back(Frontier); // A phi is itself a definition.
        }
      }
    }
  }

  //===--- Renaming ---------------------------------------------------------//

  Value *zeroFor(const Instruction *Alloca) {
    return Alloca->type().pointeeType().isFloat()
               ? static_cast<Value *>(M.getFloat(0.0f))
               : static_cast<Value *>(M.getInt(0));
  }

  /// Follows the replacement chain (a replaced load may have been stored
  /// into another promoted variable).
  Value *resolve(Value *V) {
    auto It = Replacements.find(V);
    while (It != Replacements.end()) {
      V = It->second;
      It = Replacements.find(V);
    }
    return V;
  }

  const Instruction *promotedPointer(const Instruction *I,
                                     unsigned PtrOp) const {
    const auto *A = dyn_cast<Instruction>(I->operand(PtrOp));
    return A && CandidateIndex.count(A) ? A : nullptr;
  }

  /// Dominator-tree walk threading the reaching definition of every
  /// candidate through loads, stores, and successor phis.
  void rename(const DominatorTree &DT) {
    // Children lists in function block order for determinism.
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
        Children;
    for (const auto &BB : F.blocks())
      if (const BasicBlock *IDom = DT.idom(BB.get()))
        Children[IDom].push_back(BB.get());

    using DefMap = std::unordered_map<const Instruction *, Value *>;
    struct Frame {
      BasicBlock *BB;
      DefMap Defs;
    };
    std::vector<Frame> Stack;
    Stack.push_back({F.entry(), {}});

    while (!Stack.empty()) {
      Frame Fr = std::move(Stack.back());
      Stack.pop_back();

      for (const auto &IPtr : Fr.BB->instructions()) {
        Instruction *I = IPtr.get();
        auto PhiIt = PhiAlloca.find(I);
        if (PhiIt != PhiAlloca.end()) {
          Fr.Defs[PhiIt->second] = I;
          continue;
        }
        if (I->opcode() == Opcode::Load) {
          if (const Instruction *A = promotedPointer(I, 0)) {
            auto DefIt = Fr.Defs.find(A);
            Replacements[I] = DefIt != Fr.Defs.end()
                                  ? resolve(DefIt->second)
                                  : zeroFor(A);
          }
        } else if (I->opcode() == Opcode::Store) {
          if (const Instruction *A = promotedPointer(I, 1))
            Fr.Defs[A] = resolve(I->operand(0));
        }
      }

      for (BasicBlock *Succ : successors(Fr.BB))
        for (const auto &IPtr : Succ->instructions()) {
          auto PhiIt = PhiAlloca.find(IPtr.get());
          if (PhiIt == PhiAlloca.end()) {
            if (IPtr->opcode() != Opcode::Phi)
              break; // Phis are contiguous at the head.
            continue; // Pre-existing phi; not ours to fill.
          }
          auto DefIt = Fr.Defs.find(PhiIt->second);
          IPtr->addIncoming(DefIt != Fr.Defs.end()
                                ? resolve(DefIt->second)
                                : zeroFor(PhiIt->second),
                            Fr.BB);
        }

      auto ChildIt = Children.find(Fr.BB);
      if (ChildIt != Children.end())
        for (BasicBlock *Child : ChildIt->second)
          Stack.push_back({Child, Fr.Defs});
    }
  }

  //===--- Cleanup -----------------------------------------------------------//

  /// Routes every remaining operand through the replacement chain.
  void rewriteOperands() {
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
          Value *R = resolve(I->operand(OpI));
          if (R != I->operand(OpI))
            I->setOperand(OpI, R);
        }
  }

  /// Phis in blocks with unreachable predecessors never saw those edges
  /// during the (reachable-only) renaming walk; feed them zeros so the
  /// one-incoming-per-predecessor invariant holds.
  void fillMissingIncoming() {
    auto Preds = predecessors(F);
    for (const auto &[Phi, Alloca] : PhiAlloca) {
      auto It = Preds.find(Phi->parent());
      if (It == Preds.end())
        continue;
      for (BasicBlock *Pred : It->second)
        if (!Phi->incomingValueFor(Pred))
          Phi->addIncoming(zeroFor(Alloca), Pred);
    }
  }

  /// Drops the promoted allocas and their loads and stores.
  void erasePromoted() {
    std::unordered_set<const Instruction *> Dead;
    for (const AllocaInfo &Info : Candidates) {
      Dead.insert(Info.Alloca);
      Dead.insert(Info.Loads.begin(), Info.Loads.end());
      Dead.insert(Info.Stores.begin(), Info.Stores.end());
    }
    for (const auto &BB : F.blocks()) {
      auto &Instrs = BB->mutableInstructions();
      Instrs.erase(std::remove_if(Instrs.begin(), Instrs.end(),
                                  [&](const auto &I) {
                                    return Dead.count(I.get()) != 0;
                                  }),
                   Instrs.end());
    }
  }

  /// Minimal-SSA placement plus single-store variables leave phis whose
  /// incoming values are all one value (or the phi itself, through loop
  /// back edges); collapse them until none remain.
  unsigned removeTrivialPhis() {
    unsigned Removed = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto It = PhiAlloca.begin(); It != PhiAlloca.end();) {
        Instruction *Phi = It->first;
        Value *Same = nullptr;
        bool Trivial = true;
        for (unsigned I = 0; I < Phi->numIncoming(); ++I) {
          Value *V = Phi->incomingValue(I);
          if (V == Phi)
            continue;
          if (Same && V != Same) {
            Trivial = false;
            break;
          }
          Same = V;
        }
        if (!Trivial) {
          ++It;
          continue;
        }
        if (!Same) // Only self-references: a dead cycle; feed it zero.
          Same = zeroFor(It->second);
        for (const auto &BB : F.blocks())
          for (const auto &I : BB->instructions())
            I->replaceUsesOfWith(Phi, Same);
        BasicBlock *BB = Phi->parent();
        auto &Instrs = BB->mutableInstructions();
        Instrs.erase(std::remove_if(Instrs.begin(), Instrs.end(),
                                    [&](const auto &I) {
                                      return I.get() == Phi;
                                    }),
                     Instrs.end());
        It = PhiAlloca.erase(It);
        ++Removed;
        Changed = true;
      }
    }
    return Removed;
  }

  Function &F;
  Module &M;
  AnalysisManager &AM;

  std::vector<AllocaInfo> Candidates;
  std::unordered_map<const Instruction *, size_t> CandidateIndex;
  /// Inserted phi -> the alloca it merges.
  std::unordered_map<Instruction *, const Instruction *> PhiAlloca;
  /// Replaced load (or collapsed phi) -> the value that reaches it.
  std::unordered_map<const Value *, Value *> Replacements;
  unsigned PhisInserted = 0;
};

} // namespace

unsigned ir::promoteMemoryToRegisters(Function &F, Module &M,
                                      AnalysisManager &AM) {
  return PromoterImpl(F, M, AM).run();
}
