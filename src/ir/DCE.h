//===- ir/DCE.h - Trivial dead code elimination -------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes instructions with no uses and no side effects. Run after the
/// perforation transforms so that dead address computations left behind by
/// load rewriting do not execute (they would otherwise inflate the
/// simulated ALU counts, just as they would waste real GPU cycles).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_DCE_H
#define KPERF_IR_DCE_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// Deletes dead instructions in \p F until a fixpoint.
/// Loads are considered side-effect free (a dead load would be removed by
/// any real kernel compiler too). Stores, calls, terminators, and allocas
/// with remaining uses are kept. \returns the number of deleted
/// instructions.
unsigned eliminateDeadCode(Function &F);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_DCE_H
