//===- ir/RangeAnalysis.h - Integer interval analysis ------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval analysis over the kernel's integer (and bool) SSA values.
/// Every value gets an inclusive [Lo, Hi] range of the int32 values it can
/// take at runtime:
///
///  * constants are singletons; work-item queries are seeded from the
///    optional NDRangeBounds (get_local_id(d) in [0, LocalSize[d]-1] when
///    the launch shape is known, [0, INT32_MAX] otherwise -- ids are
///    never negative);
///  * arithmetic uses standard interval transfer functions computed in
///    int64; any bound that leaves int32 collapses the result to the full
///    range (**wraparound conservatism**: the simulator's int32 wrap
///    could land anywhere, so no tighter claim is sound);
///  * loop phis are **widened**: once the ascending fixpoint has run two
///    rounds, a bound still growing jumps straight to its int32 extreme,
///    so `for (i = 0; i < n; i++)` converges to i in [0, INT32_MAX]
///    immediately instead of iterating;
///  * branch conditions **refine** dominated code: in a block dominated
///    by the true edge of `if (x < n)`, x's range is intersected with
///    [INT32_MIN, hi(n)-1] -- the edge's target must have the branch
///    block as its unique predecessor, which is what makes "dominated by
///    the target" equal "the condition holds". Refinements apply
///    transitively through a bounded recursion, so `x + 1` under the
///    same branch tightens too.
///
/// Float values are not tracked. The analysis is cached in the
/// AnalysisManager (getRangeAnalysis) keyed by the seeding bounds and is
/// dropped on any invalidation; it is the index-arithmetic half of the
/// lint diagnostics (ir/Lint.h) and self-contained enough to compute
/// standalone.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_RANGEANALYSIS_H
#define KPERF_IR_RANGEANALYSIS_H

#include "ir/Dominators.h"
#include "ir/Function.h"

#include <cstdint>
#include <unordered_map>

namespace kperf {
namespace ir {

/// An inclusive range of int32 values, carried in int64 so transfer
/// functions can detect overflow before clamping. Empty ranges (Lo > Hi)
/// arise from refinement along infeasible branches.
struct Interval {
  int64_t Lo = INT32_MIN;
  int64_t Hi = INT32_MAX;

  static Interval full() { return Interval(); }
  static Interval empty() { return Interval{1, 0}; }
  static Interval constant(int64_t V) { return Interval{V, V}; }
  static Interval make(int64_t Lo, int64_t Hi) { return Interval{Lo, Hi}; }

  bool isEmpty() const { return Lo > Hi; }
  bool isFull() const { return Lo == INT32_MIN && Hi == INT32_MAX; }
  bool isConstant() const { return Lo == Hi; }
  bool contains(int64_t V) const { return V >= Lo && V <= Hi; }
  /// True if every value of this range lies in [OtherLo, OtherHi].
  bool within(int64_t OtherLo, int64_t OtherHi) const {
    return isEmpty() || (Lo >= OtherLo && Hi <= OtherHi);
  }
  /// True if no value of this range lies in [OtherLo, OtherHi].
  bool disjointFrom(int64_t OtherLo, int64_t OtherHi) const {
    return isEmpty() || Hi < OtherLo || Lo > OtherHi;
  }

  bool operator==(const Interval &O) const {
    return (isEmpty() && O.isEmpty()) || (Lo == O.Lo && Hi == O.Hi);
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  Interval intersect(const Interval &O) const {
    return Interval{Lo > O.Lo ? Lo : O.Lo, Hi < O.Hi ? Hi : O.Hi};
  }
  Interval unite(const Interval &O) const {
    if (isEmpty())
      return O;
    if (O.isEmpty())
      return *this;
    return Interval{Lo < O.Lo ? Lo : O.Lo, Hi > O.Hi ? Hi : O.Hi};
  }

  /// Renders as "[lo,hi]" (bounds at the int32 extremes print as "min"/
  /// "max"), for diagnostics and tests.
  std::string str() const;
};

/// Launch-shape seeds for the work-item query builtins. A zero size means
/// "unknown": ids stay non-negative but unbounded, sizes stay >= 1.
struct NDRangeBounds {
  int64_t GlobalSize[2] = {0, 0};
  int64_t LocalSize[2] = {0, 0};

  bool operator==(const NDRangeBounds &O) const {
    return GlobalSize[0] == O.GlobalSize[0] &&
           GlobalSize[1] == O.GlobalSize[1] &&
           LocalSize[0] == O.LocalSize[0] && LocalSize[1] == O.LocalSize[1];
  }
  bool operator!=(const NDRangeBounds &O) const { return !(*this == O); }
};

/// Interval analysis of one function. Compute once; query per value, with
/// or without the branch refinements that hold at a given block.
class RangeAnalysis {
public:
  /// Computes ranges for \p F. \p DT must belong to \p F.
  static RangeAnalysis compute(const Function &F, const DominatorTree &DT,
                               const NDRangeBounds &Bounds = NDRangeBounds());

  /// Flow-insensitive range of \p V (full for untracked kinds: floats,
  /// pointers).
  Interval rangeOf(const Value *V) const;

  /// Range of \p V at \p At, refined by every branch condition whose
  /// guarded region dominates \p At. Falls back to rangeOf() when \p At
  /// is null or unreachable.
  Interval rangeAt(const Value *V, const BasicBlock *At) const;

  const NDRangeBounds &bounds() const { return Bounds; }

private:
  /// Intersections contributed by the branch condition guarding a block
  /// (the block is a unique-predecessor branch target).
  using RefineMap = std::unordered_map<const Value *, Interval>;

  Interval evalRefined(const Value *V, const RefineMap &Env,
                       unsigned Depth) const;

  std::unordered_map<const Value *, Interval> Ranges;
  std::unordered_map<const BasicBlock *, RefineMap> Refinements;
  /// Immediate dominators, copied out of the tree so query-time walks
  /// don't tie this object's lifetime to the DominatorTree's.
  std::unordered_map<const BasicBlock *, const BasicBlock *> IDom;
  NDRangeBounds Bounds;
};

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_RANGEANALYSIS_H
