//===- ir/Simplify.h - Constant folding and peepholes -------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local simplification pass: constant folding, algebraic identities, and
/// trivial control-flow cleanup. Run on generated kernels (after the
/// perforation transforms, before DCE) so that the constants the
/// transforms bake in -- tile widths, halos, periods -- fold away instead
/// of executing on the simulated device, mirroring what any real kernel
/// compiler would do.
///
/// Performed rewrites:
///  * integer/float/bool constant folding of all arithmetic, comparisons,
///    logicals, selects, and the pure math builtins;
///  * identities: x+0, x-0, x*1, x*0, x/1, 0/x, x&&true, x||false,
///    select(const, a, b), not(not(x)), double negation;
///  * condbr on a constant condition becomes an unconditional branch.
///
/// The pass never removes instructions itself (uses may remain); pair it
/// with eliminateDeadCode().
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_SIMPLIFY_H
#define KPERF_IR_SIMPLIFY_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// Simplifies \p F to a fixpoint, interning new constants in \p M (which
/// must own \p F). \returns the number of values rewritten.
unsigned simplifyFunction(Function &F, Module &M);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_SIMPLIFY_H
