//===- ir/SROA.cpp ----------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/SROA.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Everything known about one splittable array alloca.
struct ArrayInfo {
  Instruction *Alloca = nullptr;
  /// Constant-indexed GEPs over the array (each use only by direct
  /// loads/stores through it).
  std::vector<Instruction *> Geps;
  /// Direct loads of the array pointer itself (element 0).
  std::vector<Instruction *> DirectLoads;
  /// Direct stores through the array pointer itself (element 0).
  std::vector<Instruction *> DirectStores;
};

/// Returns the constant element index of GEP \p G into its array, or -1
/// when the index is a runtime value.
int64_t constGepIndex(const Instruction *G) {
  const auto *C = dyn_cast<ConstantInt>(G->operand(1));
  return C ? C->value() : -1;
}

} // namespace

unsigned ir::scalarizeAggregates(Function &F) {
  // Candidate arrays in layout order (deterministic element naming).
  std::vector<Instruction *> Arrays;
  std::unordered_map<const Instruction *, ArrayInfo> Infos;
  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      if (I->opcode() == Opcode::Alloca &&
          I->allocaSpace() == AddressSpace::Private &&
          I->allocaCount() > 1) {
        Arrays.push_back(I);
        Infos[I].Alloca = I;
      }
    }
  if (Arrays.empty())
    return 0;

  // Classify every use; any non-conforming one disqualifies its array.
  std::unordered_set<const Instruction *> Disqualified;
  auto ArrayOperand = [&](const Instruction *I,
                          unsigned OpI) -> Instruction * {
    auto *Op = dyn_cast<Instruction>(I->operand(OpI));
    return Op && Infos.count(Op) ? Op : nullptr;
  };

  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        Instruction *A = ArrayOperand(I, OpI);
        if (!A)
          continue;
        if (I->opcode() == Opcode::Load && OpI == 0) {
          Infos[A].DirectLoads.push_back(I);
        } else if (I->opcode() == Opcode::Store && OpI == 1) {
          Infos[A].DirectStores.push_back(I);
        } else if (I->opcode() == Opcode::Gep && OpI == 0) {
          int64_t Idx = constGepIndex(I);
          if (Idx < 0 || Idx >= static_cast<int64_t>(A->allocaCount())) {
            // Runtime index (could be any element) or out of bounds
            // (the access faults; splitting must not change that).
            Disqualified.insert(A);
            continue;
          }
          Infos[A].Geps.push_back(I);
        } else {
          // Stored as a value, fed to a call/select/phi/nested GEP:
          // the address escapes.
          Disqualified.insert(A);
        }
      }
    }

  // GEP results must feed only direct loads/stores through them.
  std::unordered_map<const Instruction *, const Instruction *> GepArray;
  for (auto &[A, Info] : Infos)
    if (!Disqualified.count(A))
      for (const Instruction *G : Info.Geps)
        GepArray[G] = A;
  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto *Op = dyn_cast<Instruction>(I->operand(OpI));
        if (!Op)
          continue;
        auto It = GepArray.find(Op);
        if (It == GepArray.end())
          continue;
        bool DirectLoad = I->opcode() == Opcode::Load && OpI == 0;
        bool DirectStore = I->opcode() == Opcode::Store && OpI == 1;
        if (!(DirectLoad || DirectStore))
          Disqualified.insert(It->second);
      }
    }

  unsigned Changes = 0;
  std::unordered_set<const Instruction *> Dead;
  // Load/store pointer operand -> replacement element alloca.
  std::unordered_map<const Value *, Instruction *> ElementFor;

  for (Instruction *A : Arrays) {
    if (Disqualified.count(A))
      continue;
    ArrayInfo &Info = Infos[A];
    BasicBlock *BB = A->parent();
    size_t Pos = BB->indexOf(A);
    Type ElemPtr = Type::pointerTo(A->type().pointeeType().scalarKind(),
                                   AddressSpace::Private);

    // One scalar alloca per element, at the array's position (so they
    // dominate every access the array dominated).
    std::vector<Instruction *> Elements(A->allocaCount(), nullptr);
    for (unsigned E = 0; E < A->allocaCount(); ++E) {
      auto Elem = std::make_unique<Instruction>(
          Opcode::Alloca, ElemPtr, std::vector<Value *>{},
          format("%s.%u", A->name().c_str(), E));
      Elements[E] = BB->insert(Pos + E, std::move(Elem));
      ++Changes;
    }

    for (Instruction *G : Info.Geps) {
      ElementFor[G] = Elements[static_cast<size_t>(constGepIndex(G))];
      Dead.insert(G);
    }
    if (!Info.DirectLoads.empty() || !Info.DirectStores.empty())
      ElementFor[A] = Elements[0];
    Dead.insert(A);
    ++Changes; // The split itself.
  }
  if (Dead.empty())
    return 0;

  // Rewrite every load/store pointer onto its element alloca.
  for (const auto &BB : F.blocks())
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      if (I->opcode() == Opcode::Load) {
        auto It = ElementFor.find(I->operand(0));
        if (It != ElementFor.end()) {
          I->setOperand(0, It->second);
          ++Changes;
        }
      } else if (I->opcode() == Opcode::Store) {
        auto It = ElementFor.find(I->operand(1));
        if (It != ElementFor.end()) {
          I->setOperand(1, It->second);
          ++Changes;
        }
      }
    }

  // Erase the split arrays and their GEPs.
  for (const auto &BB : F.blocks()) {
    auto &Instrs =
        const_cast<BasicBlock *>(BB.get())->mutableInstructions();
    Instrs.erase(std::remove_if(Instrs.begin(), Instrs.end(),
                                [&](const auto &I) {
                                  return Dead.count(I.get()) != 0;
                                }),
                 Instrs.end());
  }
  return Changes;
}
