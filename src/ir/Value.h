//===- ir/Value.h - IR value hierarchy ---------------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the root of the IR object hierarchy (LLVM-style custom RTTI via
/// a kind tag): kernel arguments, interned constants, and instructions.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_VALUE_H
#define KPERF_IR_VALUE_H

#include "ir/Type.h"

#include <cassert>
#include <string>

namespace kperf {
namespace ir {

class Function;

/// Root class of all IR values. Not copyable; owned by Function or Module.
class Value {
public:
  enum class ValueKind : uint8_t {
    Argument,
    ConstantInt,
    ConstantFloat,
    ConstantBool,
    Instruction,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind kind() const { return Kind; }
  const Type &type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

protected:
  Value(ValueKind Kind, Type Ty, std::string Name)
      : Kind(Kind), Ty(Ty), Name(std::move(Name)) {}

private:
  ValueKind Kind;
  Type Ty;
  std::string Name;
};

/// LLVM-style isa/cast/dyn_cast built on Value::kind().
template <typename To> bool isa(const Value *V) {
  assert(V && "isa on null value");
  return To::classof(V);
}

template <typename To> To *cast(Value *V) {
  assert(isa<To>(V) && "invalid cast");
  return static_cast<To *>(V);
}

template <typename To> const To *cast(const Value *V) {
  assert(isa<To>(V) && "invalid cast");
  return static_cast<const To *>(V);
}

template <typename To> To *dyn_cast(Value *V) {
  return V && isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To> const To *dyn_cast(const Value *V) {
  return V && isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// A kernel parameter. Pointer arguments may carry a "const" qualifier,
/// which marks them as read-only inputs eligible for perforation.
class Argument : public Value {
public:
  Argument(Type Ty, std::string Name, unsigned Index, bool IsConst)
      : Value(ValueKind::Argument, Ty, std::move(Name)), Index(Index),
        Const(IsConst) {}

  unsigned index() const { return Index; }
  bool isConst() const { return Const; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  unsigned Index;
  bool Const;
};

/// A 32-bit integer constant.
class ConstantInt : public Value {
public:
  explicit ConstantInt(int32_t Val)
      : Value(ValueKind::ConstantInt, Type::intTy(), ""), Val(Val) {}

  int32_t value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstantInt;
  }

private:
  int32_t Val;
};

/// A 32-bit float constant.
class ConstantFloat : public Value {
public:
  explicit ConstantFloat(float Val)
      : Value(ValueKind::ConstantFloat, Type::floatTy(), ""), Val(Val) {}

  float value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstantFloat;
  }

private:
  float Val;
};

/// A boolean constant.
class ConstantBool : public Value {
public:
  explicit ConstantBool(bool Val)
      : Value(ValueKind::ConstantBool, Type::boolTy(), ""), Val(Val) {}

  bool value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstantBool;
  }

private:
  bool Val;
};

/// Returns true if \p V is any constant kind.
bool isConstant(const Value *V);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_VALUE_H
