//===- ir/MemorySSA.h - Memory SSA over kernel memory -------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A walk-based memory-SSA analysis over the kernel's one conceptual
/// memory variable (private allocas, local tiles, and global argument
/// buffers together). Every Store and every work-group Barrier is a
/// **MemoryDef** producing a new memory state on top of the one it
/// observed; every Load is a **MemoryUse** of the state reaching it;
/// joins where distinct states meet get a **MemoryPhi**, placed on the
/// iterated dominance frontier of the defining blocks and filled in by
/// the same dominator-tree renaming walk mem2reg uses for scalars. The
/// distinguished **LiveOnEntry** access is the state at function entry
/// (the simulator zero-fills private arenas, so it reads as zero for
/// private memory and as the bound buffer contents for arguments).
///
/// The analysis records, per access, the loads that observe it and the
/// defs built on top of it, so clients can walk both up (reaching /
/// clobbering queries, GVN) and down (dead-store elimination). Aliasing
/// uses this system's contracts, exposed as the free MemoryLoc API
/// below:
///
///  * distinct allocas never overlap, and never overlap arguments;
///  * two distinct pointer *arguments* may alias (the host may bind one
///    buffer twice) -- unless one is `const`, the system-wide contract
///    that nothing writes that buffer during a launch;
///  * same-root accesses disambiguate by constant GEP index; any
///    variable index aliases every element of its root;
///  * a store through a pointer whose chain does not bottom out at an
///    alloca or argument (a pointer-typed phi/select) could target
///    anything and clobbers every location;
///  * barriers publish other work items' writes: they clobber local
///    allocas and non-const argument buffers, never private memory.
///
/// Cached in AnalysisManager (getMemorySSA) and dropped on *any*
/// invalidation: unlike the dominator tree, memory SSA is
/// instruction-sensitive, so even CFG-preserving mutations stale it.
/// Accesses are keyed by instruction pointer; passes that only *move*
/// instructions (LICM) may keep querying a snapshot, because moving a
/// non-def never changes any def chain.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_MEMORYSSA_H
#define KPERF_IR_MEMORYSSA_H

#include "ir/Dominators.h"
#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kperf {
namespace ir {

/// What a pointer operand provably addresses: the underlying object and,
/// when every GEP on the chain has a constant index, the exact element.
struct MemoryLoc {
  /// The underlying Alloca instruction or Argument; null when the chain
  /// bottoms out in something opaque (pointer phi/select), which must be
  /// treated as aliasing everything.
  const Value *Root = nullptr;
  /// True when the full GEP chain uses constant indices only.
  bool ConstIndex = false;
  /// Element index relative to Root (sum of the chain); valid only when
  /// ConstIndex.
  int64_t Index = 0;
};

/// Resolves \p Ptr to its MemoryLoc by walking the GEP chain.
MemoryLoc memoryLocation(const Value *Ptr);

/// True if locations \p A and \p B may address the same element.
bool mayAliasLocations(const MemoryLoc &A, const MemoryLoc &B);

/// True if a write to \p Kill provably overwrites all of \p Victim
/// (same root, both constant-indexed, equal index).
bool mustOverwrite(const MemoryLoc &Kill, const MemoryLoc &Victim);

/// True if executing \p Def (a Store or Barrier call) may change the
/// contents of \p L.
bool mayClobberLocation(const Instruction *Def, const MemoryLoc &L);

/// Memory SSA form of one function. Compute with compute(); query by
/// instruction. All Access pointers stay valid for the lifetime of the
/// MemorySSA object (moves included).
class MemorySSA {
public:
  enum class AccessKind : uint8_t {
    LiveOnEntry, ///< Memory state at function entry.
    Def,         ///< A Store or Barrier: new state on top of Defining.
    Phi,         ///< Join of the incoming predecessors' states.
  };

  struct Access {
    AccessKind Kind = AccessKind::LiveOnEntry;
    /// Stable numbering (0 = LiveOnEntry) in renaming-walk order; used
    /// for deterministic printing and test assertions.
    unsigned ID = 0;
    /// The defining Store or Barrier call (Def only).
    Instruction *Inst = nullptr;
    /// Owning block (null for LiveOnEntry).
    const BasicBlock *Block = nullptr;
    /// The state this Def was built on (null for LiveOnEntry and Phi).
    Access *Defining = nullptr;
    /// Phi only: incoming state per predecessor, index-parallel.
    std::vector<Access *> Incoming;
    std::vector<const BasicBlock *> IncomingBlocks;
    /// Loads whose reaching state is this access.
    std::vector<const Instruction *> LoadUsers;
    /// Defs built directly on this state, and phis it flows into.
    std::vector<Access *> DefUsers;
  };

  /// Builds memory SSA for \p F. \p DT and \p DF must belong to \p F.
  static MemorySSA compute(const Function &F, const DominatorTree &DT,
                           const DominanceFrontier &DF);

  /// The state at function entry.
  const Access *liveOnEntry() const { return Live; }

  /// The memory state observed just before \p I executes; recorded for
  /// every Load, Store, and Barrier call in a reachable block (null
  /// otherwise).
  const Access *reachingAccess(const Instruction *I) const {
    auto It = Reaching.find(I);
    return It == Reaching.end() ? nullptr : It->second;
  }

  /// The MemoryDef created by \p I (a Store or Barrier call in a
  /// reachable block; null otherwise).
  const Access *defFor(const Instruction *I) const {
    auto It = Defs.find(I);
    return It == Defs.end() ? nullptr : It->second;
  }

  /// The MemoryPhi of \p BB, or null if the block has none.
  const Access *phiFor(const BasicBlock *BB) const {
    auto It = Phis.find(BB);
    return It == Phis.end() ? nullptr : It->second;
  }

  /// The nearest access that may actually change what \p Load reads:
  /// walks the def chain upward from the load's reaching state, skipping
  /// defs that provably cannot alias the loaded location, and stops at
  /// the first may-aliasing Def, at a Phi, or at LiveOnEntry. Locations
  /// that are immutable for the whole launch (see isImmutableLocation)
  /// short-circuit to LiveOnEntry even across phis -- this is what lets
  /// GVN merge const-buffer loads across joins and barriers. Null for
  /// loads in unreachable blocks.
  const Access *clobberingAccess(const Instruction *Load) const;

  /// True if nothing can write \p L during a launch: no store in the
  /// function targets an opaque root, and \p L's root is either never
  /// stored to (allocas; every work item runs this same function, so no
  /// store here means no store anywhere) or a `const` argument; a
  /// non-const argument qualifies only when no argument-rooted store
  /// exists at all (two argument pointers may be one buffer).
  bool isImmutableLocation(const MemoryLoc &L) const;

  /// True if some store in the function writes through a pointer with no
  /// identifiable root object.
  bool hasOpaqueStore() const { return OpaqueStore; }

  /// Total number of accesses including LiveOnEntry.
  size_t numAccesses() const { return Accesses.size(); }

private:
  Access *newAccess(AccessKind Kind, const BasicBlock *BB);

  std::vector<std::unique_ptr<Access>> Accesses;
  Access *Live = nullptr;
  std::unordered_map<const Instruction *, Access *> Reaching;
  std::unordered_map<const Instruction *, Access *> Defs;
  std::unordered_map<const BasicBlock *, Access *> Phis;
  /// Roots (allocas / arguments) some store writes through.
  std::unordered_set<const Value *> StoredRoots;
  bool OpaqueStore = false;
  bool HasArgStore = false;
};

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_MEMORYSSA_H
