//===- ir/Type.h - Kernel IR types -------------------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: scalar types (void, bool, int32, float32) and
/// pointers to scalars qualified by an OpenCL-style address space. Types are
/// small value types, compared structurally.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_TYPE_H
#define KPERF_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace kperf {
namespace ir {

/// OpenCL-style disjoint address spaces.
enum class AddressSpace : uint8_t {
  Private, ///< Per-work-item memory (registers / spills).
  Local,   ///< Per-work-group shared memory.
  Global,  ///< Device-wide memory backed by host buffers.
};

/// Returns the OpenCL keyword for \p Space.
const char *addressSpaceName(AddressSpace Space);

/// Scalar component of a type.
enum class ScalarKind : uint8_t { Void, Bool, Int, Float };

/// A scalar or pointer-to-scalar type.
class Type {
public:
  Type() = default;

  static Type voidTy() { return Type(ScalarKind::Void, false, {}); }
  static Type boolTy() { return Type(ScalarKind::Bool, false, {}); }
  static Type intTy() { return Type(ScalarKind::Int, false, {}); }
  static Type floatTy() { return Type(ScalarKind::Float, false, {}); }

  /// Builds a pointer to \p Elem in \p Space. \p Elem must be int or float.
  static Type pointerTo(ScalarKind Elem, AddressSpace Space) {
    assert((Elem == ScalarKind::Int || Elem == ScalarKind::Float) &&
           "pointers must point to int or float");
    return Type(Elem, true, Space);
  }

  bool isVoid() const { return !Pointer && Kind == ScalarKind::Void; }
  bool isBool() const { return !Pointer && Kind == ScalarKind::Bool; }
  bool isInt() const { return !Pointer && Kind == ScalarKind::Int; }
  bool isFloat() const { return !Pointer && Kind == ScalarKind::Float; }
  bool isPointer() const { return Pointer; }
  bool isNumeric() const { return isInt() || isFloat(); }

  /// For pointers, the pointee scalar kind; for scalars, the kind itself.
  ScalarKind scalarKind() const { return Kind; }

  /// For pointers, the address space. Asserts on scalars.
  AddressSpace addressSpace() const {
    assert(Pointer && "addressSpace() on non-pointer type");
    return Space;
  }

  /// Returns the scalar type a load through this pointer produces.
  Type pointeeType() const {
    assert(Pointer && "pointeeType() on non-pointer type");
    return Kind == ScalarKind::Int ? intTy() : floatTy();
  }

  /// Size in bytes of the pointee (pointers) or the scalar itself.
  unsigned storeSizeInBytes() const {
    assert(Kind == ScalarKind::Int || Kind == ScalarKind::Float);
    return 4;
  }

  bool operator==(const Type &Other) const {
    return Kind == Other.Kind && Pointer == Other.Pointer &&
           (!Pointer || Space == Other.Space);
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  /// Renders the type as OpenCL-like text, e.g. "global float*".
  std::string str() const;

private:
  Type(ScalarKind Kind, bool Pointer, AddressSpace Space)
      : Kind(Kind), Pointer(Pointer), Space(Space) {}

  ScalarKind Kind = ScalarKind::Void;
  bool Pointer = false;
  AddressSpace Space = AddressSpace::Private;
};

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_TYPE_H
