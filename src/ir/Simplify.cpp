//===- ir/Simplify.cpp ------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Simplify.h"

#include "ir/InstructionUtils.h"

#include <optional>

#include <cmath>
#include <unordered_map>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// One simplification sweep over a function. Replacement works by value
/// substitution: when an instruction simplifies to V, every use of the
/// instruction is rewritten to V (the dead instruction is left for DCE).
class Simplifier {
public:
  Simplifier(Function &F, Module &M) : F(F), M(M) {}

  unsigned run() {
    unsigned Total = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F.blocks()) {
        for (const auto &I : BB->instructions()) {
          if (Value *V = simplify(*I)) {
            // Progress is measured by *uses actually rewritten*: a dead
            // instruction that folds but feeds nothing must not keep the
            // fixpoint loop spinning (it is left for DCE).
            if (replaceUses(I.get(), V)) {
              ++Total;
              Changed = true;
            }
          }
        }
        if (foldTerminator(*BB)) {
          ++Total;
          Changed = true;
        }
      }
    }
    return Total;
  }

private:
  /// Rewrites every use of \p From to \p To; returns the number of
  /// operand slots changed.
  unsigned replaceUses(Instruction *From, Value *To) {
    unsigned NumChanged = 0;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions()) {
        if (I.get() == From)
          continue;
        for (unsigned OI = 0; OI < I->numOperands(); ++OI)
          if (I->operand(OI) == From) {
            I->setOperand(OI, To);
            ++NumChanged;
          }
      }
    return NumChanged;
  }

  /// Turns `condbr const, a, b` into `br a-or-b`. Returns true on change.
  bool foldTerminator(BasicBlock &BB) {
    Instruction *T = BB.terminator();
    if (!T || T->opcode() != Opcode::CondBr)
      return false;
    const auto *C = dyn_cast<ConstantBool>(T->operand(0));
    if (!C)
      return false;
    BasicBlock *Target = T->branchTarget(C->value() ? 0 : 1);
    BasicBlock *Dropped = T->branchTarget(C->value() ? 1 : 0);
    // The edge BB -> Dropped disappears; phis there must shed the
    // matching incoming entry or the verifier's exact-predecessor-match
    // rule breaks.
    if (Dropped != Target)
      for (const auto &I : Dropped->instructions()) {
        if (I->opcode() != Opcode::Phi)
          break; // Phis are contiguous at the head.
        I->removeIncomingFor(&BB);
      }
    auto Br = std::make_unique<Instruction>(
        Opcode::Br, Type::voidTy(), std::vector<Value *>{}, "");
    Br->setBranchTarget(0, Target);
    auto &Instrs = BB.mutableInstructions();
    Br->setParent(&BB);
    Instrs.back() = std::move(Br);
    return true;
  }

  // Constant accessors returning nullopt for non-constants.
  static std::optional<int32_t> asInt(const Value *V) {
    if (const auto *C = dyn_cast<ConstantInt>(V))
      return C->value();
    return std::nullopt;
  }
  static std::optional<float> asFloat(const Value *V) {
    if (const auto *C = dyn_cast<ConstantFloat>(V))
      return C->value();
    return std::nullopt;
  }
  static std::optional<bool> asBool(const Value *V) {
    if (const auto *C = dyn_cast<ConstantBool>(V))
      return C->value();
    return std::nullopt;
  }

  /// Returns the replacement value for \p I, or null if none applies.
  Value *simplify(const Instruction &I) {
    switch (I.opcode()) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
      return simplifyArith(I);
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      return simplifyCmp(I);
    case Opcode::LogicalAnd: {
      auto L = asBool(I.operand(0)), R = asBool(I.operand(1));
      if (L && R)
        return M.getBool(*L && *R);
      if (L)
        return *L ? I.operand(1) : M.getBool(false);
      if (R)
        return *R ? I.operand(0) : M.getBool(false);
      return nullptr;
    }
    case Opcode::LogicalOr: {
      auto L = asBool(I.operand(0)), R = asBool(I.operand(1));
      if (L && R)
        return M.getBool(*L || *R);
      if (L)
        return *L ? M.getBool(true) : I.operand(1);
      if (R)
        return *R ? M.getBool(true) : I.operand(0);
      return nullptr;
    }
    case Opcode::LogicalNot: {
      if (auto V = asBool(I.operand(0)))
        return M.getBool(!*V);
      // not(not(x)) == x.
      if (const auto *Inner = dyn_cast<Instruction>(I.operand(0)))
        if (Inner->opcode() == Opcode::LogicalNot)
          return Inner->operand(0);
      return nullptr;
    }
    case Opcode::Neg: {
      if (auto V = asInt(I.operand(0)))
        return M.getInt(-*V);
      if (auto V = asFloat(I.operand(0)))
        return M.getFloat(-*V);
      if (const auto *Inner = dyn_cast<Instruction>(I.operand(0)))
        if (Inner->opcode() == Opcode::Neg)
          return Inner->operand(0);
      return nullptr;
    }
    case Opcode::IntToFloat:
      if (auto V = asInt(I.operand(0)))
        return M.getFloat(static_cast<float>(*V));
      return nullptr;
    case Opcode::FloatToInt:
      if (auto V = asFloat(I.operand(0)))
        return M.getInt(static_cast<int32_t>(*V));
      return nullptr;
    case Opcode::Select: {
      if (auto C = asBool(I.operand(0)))
        return *C ? I.operand(1) : I.operand(2);
      if (I.operand(1) == I.operand(2))
        return I.operand(1);
      return nullptr;
    }
    case Opcode::Call:
      return simplifyCall(I);
    case Opcode::Phi: {
      // A phi whose incoming values (ignoring self-references through
      // loop back edges) agree is that value.
      Value *Same = nullptr;
      for (unsigned OI = 0; OI < I.numIncoming(); ++OI) {
        Value *V = I.incomingValue(OI);
        if (V == &I)
          continue;
        if (Same && V != Same)
          return nullptr;
        Same = V;
      }
      return Same;
    }
    default:
      return nullptr;
    }
  }

  Value *simplifyArith(const Instruction &I) {
    Value *L = I.operand(0);
    Value *R = I.operand(1);
    if (I.type().isInt()) {
      auto LC = asInt(L), RC = asInt(R);
      if (LC && RC) {
        // Add/sub/mul fold through the shared helper (the same
        // semantics loop unrolling folds with); div/rem keep their
        // divide-by-zero guard here.
        if (auto Folded = foldIntBinary(I.opcode(), *LC, *RC))
          return M.getInt(*Folded);
        switch (I.opcode()) {
        case Opcode::Div:
          return *RC == 0 ? nullptr : M.getInt(*LC / *RC);
        case Opcode::Rem:
          return *RC == 0 ? nullptr : M.getInt(*LC % *RC);
        default:
          return nullptr;
        }
      }
      // Identities (integer only; float identities are unsafe for NaN
      // and signed zero and are deliberately not applied).
      switch (I.opcode()) {
      case Opcode::Add:
        if (LC && *LC == 0)
          return R;
        if (RC && *RC == 0)
          return L;
        break;
      case Opcode::Sub:
        if (RC && *RC == 0)
          return L;
        if (L == R)
          return M.getInt(0);
        break;
      case Opcode::Mul:
        if (LC && *LC == 1)
          return R;
        if (RC && *RC == 1)
          return L;
        if ((LC && *LC == 0) || (RC && *RC == 0))
          return M.getInt(0);
        break;
      case Opcode::Div:
        if (RC && *RC == 1)
          return L;
        break;
      case Opcode::Rem:
        if (RC && *RC == 1)
          return M.getInt(0);
        break;
      default:
        break;
      }
      return nullptr;
    }
    // Float: constant folding only.
    auto LC = asFloat(L), RC = asFloat(R);
    if (!LC || !RC)
      return nullptr;
    switch (I.opcode()) {
    case Opcode::Add:
      return M.getFloat(*LC + *RC);
    case Opcode::Sub:
      return M.getFloat(*LC - *RC);
    case Opcode::Mul:
      return M.getFloat(*LC * *RC);
    case Opcode::Div:
      return M.getFloat(*LC / *RC);
    default:
      return nullptr;
    }
  }

  Value *simplifyCmp(const Instruction &I) {
    Value *L = I.operand(0);
    Value *R = I.operand(1);
    auto fold = [&](auto A, auto B) -> Value * {
      switch (I.opcode()) {
      case Opcode::CmpEq:
        return M.getBool(A == B);
      case Opcode::CmpNe:
        return M.getBool(A != B);
      case Opcode::CmpLt:
        return M.getBool(A < B);
      case Opcode::CmpLe:
        return M.getBool(A <= B);
      case Opcode::CmpGt:
        return M.getBool(A > B);
      default:
        return M.getBool(A >= B);
      }
    };
    if (L->type().isInt()) {
      auto LC = asInt(L), RC = asInt(R);
      if (LC && RC)
        return M.getBool(evalIntCmp(I.opcode(), *LC, *RC));
    } else {
      auto LC = asFloat(L), RC = asFloat(R);
      if (LC && RC)
        return fold(*LC, *RC);
    }
    return nullptr;
  }

  Value *simplifyCall(const Instruction &I) {
    switch (I.callee()) {
    case Builtin::Min:
    case Builtin::Max: {
      bool IsMin = I.callee() == Builtin::Min;
      if (I.type().isInt()) {
        auto A = asInt(I.operand(0)), B = asInt(I.operand(1));
        if (A && B)
          return M.getInt(IsMin ? std::min(*A, *B) : std::max(*A, *B));
      } else {
        auto A = asFloat(I.operand(0)), B = asFloat(I.operand(1));
        if (A && B)
          return M.getFloat(IsMin ? std::min(*A, *B) : std::max(*A, *B));
      }
      if (I.operand(0) == I.operand(1))
        return I.operand(0);
      return nullptr;
    }
    case Builtin::Clamp: {
      if (I.type().isInt()) {
        auto V = asInt(I.operand(0)), Lo = asInt(I.operand(1)),
             Hi = asInt(I.operand(2));
        if (V && Lo && Hi)
          return M.getInt(std::min(std::max(*V, *Lo), *Hi));
      } else {
        auto V = asFloat(I.operand(0)), Lo = asFloat(I.operand(1)),
             Hi = asFloat(I.operand(2));
        if (V && Lo && Hi)
          return M.getFloat(std::min(std::max(*V, *Lo), *Hi));
      }
      return nullptr;
    }
    case Builtin::Abs:
      if (I.type().isInt()) {
        if (auto V = asInt(I.operand(0)))
          return M.getInt(std::abs(*V));
      } else if (auto V = asFloat(I.operand(0))) {
        return M.getFloat(std::fabs(*V));
      }
      return nullptr;
    case Builtin::Sqrt:
      if (auto V = asFloat(I.operand(0)))
        return M.getFloat(std::sqrt(*V));
      return nullptr;
    case Builtin::Floor:
      if (auto V = asFloat(I.operand(0)))
        return M.getFloat(std::floor(*V));
      return nullptr;
    default:
      return nullptr;
    }
  }

  Function &F;
  Module &M;
};

} // namespace

unsigned ir::simplifyFunction(Function &F, Module &M) {
  return Simplifier(F, M).run();
}
