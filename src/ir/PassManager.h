//===- ir/PassManager.h - Registered passes and pipelines --------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass-manager layer, modeled on LLVM's new pass manager reduced to
/// this project's needs:
///
///  * FunctionPass -- the pass interface: run on one function, report how
///    many changes were made, declare whether the CFG survived;
///  * PassRegistry -- maps textual names ("mem2reg", "sroa", "simplify",
///    "cse", "memopt-forward", "memopt-dse", "licm", "gvn", "unroll",
///    "perforate-loop", "dce") to pass factories; passes taking an
///    integer knob (unroll's IR-size budget, perforate-loop's stride)
///    register a parameterized factory with a default;
///  * PassPipeline -- a parsed pipeline specification such as
///
///      mem2reg,unroll,fixpoint(simplify,gvn,cse,dce)
///
///    where a bare name runs a pass once, name(N) runs a parameterized
///    pass with knob N (e.g. unroll(512)), and fixpoint(...) repeats its
///    body until a whole round changes nothing (groups nest). Parsing
///    round-trips through str().
///
/// Running a pipeline produces a PipelineStats: one table row per pass
/// with invocation count, change count, wall-clock time, and the net
/// IR-size and static-ALU-weight deltas the pass's invocations caused
/// (the instrumentation bench_passes and kperfc surface). All derived
/// numbers (total(), the named convenience accessors) are computed from
/// that single table, so they cannot drift apart.
///
/// Analyses are shared across passes through an AnalysisManager; the
/// pipeline invalidates it after every pass that reports changes, keeping
/// CFG-level analyses when the pass declares preservesCFG(). This is what
/// makes LICM's dominator tree a per-fixpoint-round computation instead
/// of a per-invocation one.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_PASSMANAGER_H
#define KPERF_IR_PASSMANAGER_H

#include "ir/AnalysisManager.h"
#include "ir/Function.h"
#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace kperf {
namespace ir {

/// A transformation over one function.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;

  /// The registered name of this pass.
  virtual const char *name() const = 0;

  /// Runs the pass on \p F. \p M owns \p F (passes that intern constants
  /// need it). Cached analyses are read through \p AM. \returns the
  /// number of changes made (0 = the function is untouched).
  virtual unsigned run(Function &F, Module &M, AnalysisManager &AM) = 0;

  /// True if this pass never changes the block set or branch edges, so
  /// CFG-level analyses stay valid across its mutations.
  virtual bool preservesCFG() const { return false; }
};

/// Global name -> factory map of the available passes.
class PassRegistry {
public:
  using Factory = std::function<std::unique_ptr<FunctionPass>()>;
  /// Factory of a pass taking one integer knob (e.g. unroll's budget).
  using ParamFactory =
      std::function<std::unique_ptr<FunctionPass>(unsigned)>;

  /// The process-wide registry, with the built-in passes registered.
  static PassRegistry &instance();

  /// Registers \p MakePass under \p Name, replacing any previous entry.
  void registerPass(const std::string &Name, Factory MakePass);

  /// Registers a parameterized pass: specs may spell it bare (\p Name,
  /// instantiated with \p DefaultParam) or as name(N).
  void registerParameterizedPass(const std::string &Name,
                                 ParamFactory MakePass,
                                 unsigned DefaultParam);

  /// Instantiates the pass registered as \p Name (parameterized passes
  /// get their default knob), or null if unknown.
  std::unique_ptr<FunctionPass> create(const std::string &Name) const;

  /// Instantiates a parameterized pass with knob \p Param; null when
  /// \p Name is unknown or not parameterized.
  std::unique_ptr<FunctionPass> create(const std::string &Name,
                                       unsigned Param) const;

  bool contains(const std::string &Name) const;

  /// True if \p Name is registered and accepts a name(N) parameter.
  bool isParameterized(const std::string &Name) const;

  /// All registered names, sorted.
  std::vector<std::string> registeredNames() const;

private:
  struct Entry {
    std::string Name;
    Factory Make;           ///< Always set (default knob baked in).
    ParamFactory MakeParam; ///< Set for parameterized passes only.
  };
  Entry *find(const std::string &Name);
  const Entry *find(const std::string &Name) const;
  std::vector<Entry> Factories;
};

/// One row of the per-pass statistics table.
struct PassExecution {
  std::string Name;
  unsigned Invocations = 0; ///< Times the pass ran.
  unsigned Changes = 0;     ///< Total changes reported.
  double Millis = 0;        ///< Wall-clock time spent in the pass.
  /// Net instruction-count change across this pass's invocations
  /// (negative = the pass shrank the function).
  long long SizeDelta = 0;
  /// Net static ALU-weight change, in the simulator's cost units (what
  /// one dynamic execution of the remaining instructions would charge
  /// the ALU; see staticAluWeight).
  long long AluDelta = 0;
};

/// What a pipeline run did. Every derived number comes from the one
/// per-pass table, so counters cannot drift from totals.
struct PipelineStats {
  /// One row per distinct pass name, in first-execution order.
  std::vector<PassExecution> Passes;
  /// Fixpoint rounds executed (summed over fixpoint groups, including the
  /// final no-change round).
  unsigned Iterations = 0;

  /// Changes reported by the pass registered as \p Name (0 if it did not
  /// run).
  unsigned changes(const std::string &Name) const;

  /// Sum of all changes across the table.
  unsigned total() const;

  /// Sum of all per-pass wall-clock times.
  double totalMillis() const;

  /// Named accessors for the classic pipeline's reporting.
  unsigned promoted() const { return changes("mem2reg"); }
  unsigned scalarized() const { return changes("sroa"); }
  unsigned unrolled() const { return changes("unroll"); }
  unsigned simplified() const { return changes("simplify"); }
  unsigned numbered() const { return changes("gvn"); }
  unsigned merged() const { return changes("cse"); }
  unsigned forwarded() const { return changes("memopt-forward"); }
  unsigned hoisted() const { return changes("licm"); }
  unsigned deadStores() const { return changes("memopt-dse"); }
  unsigned deleted() const { return changes("dce"); }

  /// Finds or creates the row for \p Name.
  PassExecution &entry(const std::string &Name);

  /// Accumulates \p Other into this (multi-function compiles).
  void merge(const PipelineStats &Other);

  /// One-line summary, e.g. "simplify:12 cse:8 dce:20 (3 rounds, 0.4 ms)".
  std::string str() const;
};

/// Execution knobs for PassPipeline::run.
struct PassRunOptions {
  /// Verify the function after every pass invocation; the first failure
  /// aborts the run and names the offending pass.
  bool VerifyEach = false;
  /// Defensive cap on fixpoint rounds; real kernels settle in two or
  /// three.
  unsigned MaxFixpointRounds = 16;
};

/// A parsed, runnable pipeline specification.
class PassPipeline {
public:
  PassPipeline() = default;

  /// Parses \p Spec. Grammar:
  ///
  ///   pipeline := element (',' element)*  |  <empty>
  ///   element  := 'fixpoint' '(' pipeline ')'
  ///             | pass-name [ '(' integer ')' ]
  ///
  /// Whitespace is ignored. Unknown pass names, empty fixpoint groups,
  /// and name(N) on a pass that takes no parameter are errors.
  static Expected<PassPipeline> parse(const std::string &Spec);

  /// Canonical textual form; parse(str()) reproduces this pipeline.
  std::string str() const;

  bool empty() const { return Elements.empty(); }

  /// Runs the pipeline on \p F, sharing analyses through \p AM. Fails
  /// only when Opts.VerifyEach finds malformed IR.
  Expected<PipelineStats> run(Function &F, Module &M, AnalysisManager &AM,
                              const PassRunOptions &Opts = {}) const;

  /// Convenience overload with a run-local AnalysisManager.
  Expected<PipelineStats> run(Function &F, Module &M,
                              const PassRunOptions &Opts = {}) const;

private:
  /// A bare pass (IsFixpoint false) or a fixpoint group over Children.
  /// Parameterized passes spelled name(N) carry the knob in Param.
  struct Element {
    bool IsFixpoint = false;
    std::string PassName;
    bool HasParam = false;
    unsigned Param = 0;
    std::vector<Element> Children;
  };

  std::vector<Element> Elements;

  friend struct PipelineParser;
  friend struct PipelineRunner;
  static std::string print(const std::vector<Element> &Elements);
};

/// The standard cleanup pipeline run over generated kernels.
const char *defaultPipelineSpec();

/// Static instruction count of \p F (every block's instructions).
size_t functionInstructionCount(const Function &F);

/// The ALU cost the simulator charges for one execution of \p I: 0 for
/// phis, allocas, memory accesses (counted as memory, not ALU), rets and
/// barriers; 4 for transcendental builtins; 1 for everything else.
unsigned staticAluWeight(const Instruction &I);

/// Sum of staticAluWeight over \p F -- the straight-line ALU work one
/// work item would execute if every instruction ran once. The per-pass
/// AluDelta instrumentation is the change in this number.
uint64_t functionStaticAluWeight(const Function &F);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_PASSMANAGER_H
