//===- ir/DCE.cpp -----------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/DCE.h"

#include <algorithm>
#include <unordered_map>

using namespace kperf;
using namespace kperf::ir;

namespace {

bool hasSideEffects(const Instruction &I) {
  switch (I.opcode()) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return true;
  case Opcode::Call:
    return I.callee() == Builtin::Barrier;
  default:
    return false;
  }
}

} // namespace

unsigned ir::eliminateDeadCode(Function &F) {
  unsigned Deleted = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::unordered_map<const Value *, unsigned> UseCount;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        for (const Value *Op : I->operands())
          if (Op != I.get()) // A phi's self-edge is not a real use.
            ++UseCount[Op];

    for (const auto &BB : F.blocks()) {
      // Collect-then-erase to keep iteration simple.
      std::vector<const Instruction *> Dead;
      for (const auto &I : BB->instructions()) {
        if (hasSideEffects(*I))
          continue;
        if (UseCount[I.get()] == 0)
          Dead.push_back(I.get());
      }
      if (Dead.empty())
        continue;
      auto &Instrs = BB->mutableInstructions();
      Instrs.erase(std::remove_if(Instrs.begin(), Instrs.end(),
                                  [&](const auto &I) {
                                    for (const Instruction *D : Dead)
                                      if (D == I.get())
                                        return true;
                                    return false;
                                  }),
                   Instrs.end());
      Deleted += static_cast<unsigned>(Dead.size());
      Changed = true;
    }
  }
  return Deleted;
}
