//===- ir/DivergenceAnalysis.h - Uniformity of values and blocks --*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every SSA value as **uniform** (provably identical across
/// all work items of a group that compute it) or **divergent** (may
/// differ), and every block as divergently executed or not -- the
/// GPU-compiler facts behind the lint diagnostics (barriers under
/// divergent control flow, per-item-distinct local addresses) and the
/// batched executor's uniform-branch fast path.
///
/// Sources of divergence are the work-item id queries (get_local_id /
/// get_global_id; group ids and sizes are uniform per group) and loads --
/// except loads at a uniform address whose pointer provably bottoms out
/// in a `const` global argument, the one kind of memory whose contents
/// cannot differ between items. Divergence propagates through:
///
///  * **data dependence**: any instruction with a divergent operand;
///  * **sync dependence**: control dependence is computed from a
///    post-dominator tree over the reversed CFG (virtual exit joining
///    every Ret), a block is divergently executed iff it is
///    control-dependent on a block with a divergent terminator or on a
///    divergently executed block (transitively: whether you reach a
///    uniform branch at all can be divergent), and a multi-predecessor
///    phi is divergent when any incoming edge can be traversed by only a
///    subset of the items (its predecessor is divergently executed or
///    ends in a divergent conditional branch).
///
/// Reconvergence falls out of post-dominance: past the join of an `if`,
/// blocks are no longer control-dependent on its branch, so a barrier
/// after the join is uniform even when the branch was divergent.
///
/// Cached in the AnalysisManager (getDivergenceAnalysis, dropped on any
/// invalidation); also computed standalone by the bytecode compiler,
/// which has no manager at hand.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_DIVERGENCEANALYSIS_H
#define KPERF_IR_DIVERGENCEANALYSIS_H

#include "ir/Function.h"

#include <unordered_set>

namespace kperf {
namespace ir {

class DivergenceAnalysis {
public:
  /// Computes uniformity facts for \p F.
  static DivergenceAnalysis compute(const Function &F);

  /// True if \p V may evaluate to different values on different work
  /// items of one group.
  bool isDivergent(const Value *V) const {
    return DivergentValues.count(V) != 0;
  }
  bool isUniform(const Value *V) const { return !isDivergent(V); }

  /// True if some items of a group may execute \p BB while others do not
  /// (the block sits under divergent control flow). A barrier here is the
  /// static image of the simulator's divergent-barrier fault.
  bool isDivergentBlock(const BasicBlock *BB) const {
    return DivergentBlocks.count(BB) != 0;
  }

  /// True if \p BB ends in a conditional branch all items agree on: a
  /// CondBr with a uniform condition. Such branches cannot split a
  /// work-group fragment.
  bool hasUniformBranch(const BasicBlock *BB) const;

  size_t numDivergentValues() const { return DivergentValues.size(); }

private:
  std::unordered_set<const Value *> DivergentValues;
  std::unordered_set<const BasicBlock *> DivergentBlocks;
};

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_DIVERGENCEANALYSIS_H
