//===- ir/Dominators.cpp ----------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include <algorithm>
#include <unordered_set>

using namespace kperf;
using namespace kperf::ir;

std::vector<BasicBlock *> ir::successors(const BasicBlock *BB) {
  std::vector<BasicBlock *> Succs;
  const Instruction *T = BB->terminator();
  if (!T)
    return Succs;
  if (T->opcode() == Opcode::Br) {
    Succs.push_back(T->branchTarget(0));
  } else if (T->opcode() == Opcode::CondBr) {
    Succs.push_back(T->branchTarget(0));
    if (T->branchTarget(1) != T->branchTarget(0))
      Succs.push_back(T->branchTarget(1));
  }
  return Succs;
}

std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
ir::predecessors(const Function &F) {
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : successors(BB.get()))
      Preds[Succ].push_back(BB.get());
  return Preds;
}

DominatorTree DominatorTree::compute(const Function &F) {
  DominatorTree DT;
  DT.Entry = F.entry();

  // Postorder over the reachable subgraph (iterative DFS).
  std::vector<const BasicBlock *> PostOrder;
  {
    std::unordered_map<const BasicBlock *, unsigned> State; // 0/1/2
    std::vector<const BasicBlock *> Stack = {DT.Entry};
    while (!Stack.empty()) {
      const BasicBlock *BB = Stack.back();
      unsigned &S = State[BB];
      if (S == 0) {
        S = 1;
        for (BasicBlock *Succ : successors(BB))
          if (State[Succ] == 0)
            Stack.push_back(Succ);
      } else {
        Stack.pop_back();
        if (S == 1) {
          S = 2;
          PostOrder.push_back(BB);
        }
      }
    }
  }
  for (unsigned I = 0; I < PostOrder.size(); ++I)
    DT.PostOrderIndex[PostOrder[I]] = I;

  auto Preds = predecessors(F);

  // Cooper-Harvey-Kennedy: walk reverse postorder intersecting
  // predecessors' dominators until a fixpoint.
  auto Intersect = [&](const BasicBlock *A, const BasicBlock *B) {
    while (A != B) {
      while (DT.PostOrderIndex.at(A) < DT.PostOrderIndex.at(B))
        A = DT.IDom.at(A);
      while (DT.PostOrderIndex.at(B) < DT.PostOrderIndex.at(A))
        B = DT.IDom.at(B);
    }
    return A;
  };

  DT.IDom[DT.Entry] = DT.Entry;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = PostOrder.rbegin(), E = PostOrder.rend(); It != E;
         ++It) {
      const BasicBlock *BB = *It;
      if (BB == DT.Entry)
        continue;
      const BasicBlock *NewIDom = nullptr;
      for (const BasicBlock *Pred : Preds[BB]) {
        if (!DT.IDom.count(Pred))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? Intersect(Pred, NewIDom) : Pred;
      }
      if (!NewIDom)
        continue; // All predecessors unreachable.
      auto It2 = DT.IDom.find(BB);
      if (It2 == DT.IDom.end() || It2->second != NewIDom) {
        DT.IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
  return DT;
}

DominanceFrontier DominanceFrontier::compute(const Function &F,
                                             const DominatorTree &DT) {
  DominanceFrontier DF;
  // A block B is in the frontier of every block on the idom chain from
  // each of its predecessors down to (but excluding) idom(B).
  std::unordered_map<const BasicBlock *,
                     std::unordered_set<const BasicBlock *>>
      Sets;
  auto Preds = predecessors(F);
  for (const auto &BBPtr : F.blocks()) {
    const BasicBlock *BB = BBPtr.get();
    if (!DT.isReachable(BB))
      continue;
    auto It = Preds.find(BB);
    if (It == Preds.end() || It->second.size() < 2)
      continue; // Join points only; single-pred blocks have no merges.
    for (const BasicBlock *Runner : It->second) {
      if (!DT.isReachable(Runner))
        continue;
      while (Runner != DT.idom(BB) && Runner != nullptr) {
        Sets[Runner].insert(BB);
        Runner = DT.idom(Runner);
      }
    }
  }
  // Freeze into vectors ordered by function block position so downstream
  // worklists are deterministic.
  std::unordered_map<const BasicBlock *, size_t> BlockIndex;
  size_t Index = 0;
  for (const auto &BBPtr : F.blocks())
    BlockIndex[BBPtr.get()] = Index++;
  for (auto &[BB, Set] : Sets) {
    std::vector<const BasicBlock *> &Out = DF.Frontiers[BB];
    Out.assign(Set.begin(), Set.end());
    std::sort(Out.begin(), Out.end(),
              [&](const BasicBlock *A, const BasicBlock *B) {
                return BlockIndex[A] < BlockIndex[B];
              });
  }
  return DF;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk B's dominator chain up to the entry.
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    if (Cur == Entry)
      return false;
    Cur = IDom.at(Cur);
  }
}
