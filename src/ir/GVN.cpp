//===- ir/GVN.cpp -----------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/GVN.h"

#include "ir/Dominators.h"
#include "ir/InstructionUtils.h"
#include "ir/MemorySSA.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Maximum operand arity participating in keys (clamp/select take 3;
/// phis of up to 3 predecessors are keyed too).
constexpr unsigned MaxKeyOperands = 3;

/// Identity of one pure computation. For phis the operand slots hold the
/// incoming values in predecessor-index order and Scope pins the parent
/// block (phi equality only makes sense within one block, where the
/// predecessor list is shared). For loads Scope pins the memory-SSA
/// clobbering access: same pointer + same clobber => same value.
struct GvnKey {
  Opcode Op = Opcode::Add;
  Builtin Callee = Builtin::Barrier;      // Valid when Op == Call.
  const void *Scope = nullptr;            // Valid when Op is Phi or Load.
  const Value *Operands[MaxKeyOperands] = {nullptr, nullptr, nullptr};

  bool operator==(const GvnKey &O) const {
    return Op == O.Op && Callee == O.Callee && Scope == O.Scope &&
           Operands[0] == O.Operands[0] && Operands[1] == O.Operands[1] &&
           Operands[2] == O.Operands[2];
  }
};

struct GvnKeyHash {
  size_t operator()(const GvnKey &K) const {
    uint64_t H = static_cast<uint64_t>(K.Op) * 0x9e3779b97f4a7c15ull;
    H ^= static_cast<uint64_t>(K.Callee) + (H << 6) + (H >> 2);
    H ^= reinterpret_cast<uintptr_t>(K.Scope) + (H << 6) + (H >> 2);
    for (const Value *Op : K.Operands)
      H ^= reinterpret_cast<uintptr_t>(Op) + 0x9e3779b97f4a7c15ull +
           (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

class GvnImpl {
public:
  GvnImpl(Function &F, const DominatorTree &DT, const MemorySSA &MSSA)
      : F(F), DT(DT), MSSA(MSSA) {}

  unsigned run() {
    for (unsigned I = 0; I < F.numArguments(); ++I)
      Order.rank(F.argument(I));
    walkDomTree();
    if (Replacement.empty())
      return UsesRewritten;
    // One global sweep: every use of a replaced instruction -- including
    // phi edge uses, which the leader dominates because it dominates the
    // replaced definition -- is routed to the leader. The dead originals
    // are left for DCE. Progress is counted in uses actually rewritten:
    // a dead duplicate that keys equal to its leader but feeds nothing
    // must not keep a fixpoint group spinning.
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
          Value *R = resolve(I->operand(OpI));
          if (R != I->operand(OpI)) {
            I->setOperand(OpI, R);
            ++UsesRewritten;
          }
        }
    return UsesRewritten;
  }

private:
  Value *resolve(Value *V) {
    auto It = Replacement.find(V);
    while (It != Replacement.end()) {
      V = It->second;
      It = Replacement.find(V);
    }
    return V;
  }

  /// Builds the key for \p I, or false if \p I is not numberable.
  bool makeKey(Instruction *I, GvnKey &Key) {
    switch (I->opcode()) {
    case Opcode::Phi: {
      // Phis merge only within their own block, where the predecessor
      // set is shared; key on the incoming values in predecessor order.
      // Self-references keep the key distinct per phi, which is correct:
      // two self-referential phis need not carry the same value.
      if (I->numIncoming() > MaxKeyOperands)
        return false;
      Key.Op = Opcode::Phi;
      Key.Scope = I->parent();
      // Incoming entries are stored in insertion order, which can differ
      // between two equivalent phis; canonicalize by the predecessor's
      // position in the function block list.
      std::vector<std::pair<size_t, const Value *>> Entries;
      for (unsigned OpI = 0; OpI < I->numIncoming(); ++OpI)
        Entries.emplace_back(F.blockIndex(I->incomingBlock(OpI)),
                             I->incomingValue(OpI));
      std::sort(Entries.begin(), Entries.end());
      for (unsigned E = 0; E < Entries.size(); ++E)
        Key.Operands[E] = Entries[E].second;
      return true;
    }
    case Opcode::Load: {
      // Two loads of one pointer with the same memory-SSA clobbering
      // access must read the same value: the upward clobber walk visits
      // every memory state between them, and any def that could change
      // the location would have stopped it. Immutable locations (const
      // buffers, never-stored allocas) clobber at LiveOnEntry, so their
      // loads merge across joins and barriers. The walk only reaches
      // loads in reachable blocks; an unkeyed load is simply not merged.
      const MemorySSA::Access *Clobber = MSSA.clobberingAccess(I);
      if (!Clobber)
        return false;
      Key.Op = Opcode::Load;
      Key.Scope = Clobber;
      Key.Operands[0] = I->operand(0);
      return true;
    }
    case Opcode::Call:
      if (!isPureBuiltin(I->callee()) ||
          I->numOperands() > MaxKeyOperands)
        return false;
      Key.Op = Opcode::Call;
      Key.Callee = I->callee();
      break;
    default:
      if (!isAlwaysPureOpcode(I->opcode()) ||
          I->numOperands() > MaxKeyOperands)
        return false;
      Key.Op = I->opcode();
      break;
    }
    for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI)
      Key.Operands[OpI] = I->operand(OpI);
    bool Canonicalize =
        I->numOperands() == 2 &&
        ((Key.Op != Opcode::Call && isCommutativeOpcode(Key.Op)) ||
         (Key.Op == Opcode::Call && isCommutativeBuiltin(Key.Callee)));
    if (Canonicalize &&
        Order.rank(Key.Operands[0]) > Order.rank(Key.Operands[1]))
      std::swap(Key.Operands[0], Key.Operands[1]);
    return true;
  }

  /// Preorder walk of the dominator tree with a scoped leader table:
  /// entries added in a block are removed when its subtree is done, so a
  /// leader is visible exactly where it dominates.
  void walkDomTree() {
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
        Children;
    for (const auto &BB : F.blocks())
      if (const BasicBlock *IDom = DT.idom(BB.get()))
        Children[IDom].push_back(BB.get());

    // Explicit stack of (block, entered) frames; on the second visit the
    // block's scope is popped via the undo log.
    std::vector<std::pair<BasicBlock *, bool>> Stack;
    Stack.push_back({F.entry(), false});
    std::vector<std::vector<GvnKey>> UndoLog;

    while (!Stack.empty()) {
      auto &[BB, Entered] = Stack.back();
      if (Entered) {
        for (const GvnKey &K : UndoLog.back())
          Leaders.erase(K);
        UndoLog.pop_back();
        Stack.pop_back();
        continue;
      }
      Entered = true;
      UndoLog.emplace_back();
      processBlock(BB, UndoLog.back());
      auto ChildIt = Children.find(BB);
      if (ChildIt != Children.end())
        // Push in reverse so children are visited in function block
        // order (deterministic leader choice and ValueOrder ranks).
        for (auto It = ChildIt->second.rbegin();
             It != ChildIt->second.rend(); ++It)
          Stack.push_back({*It, false});
    }
  }

  void processBlock(BasicBlock *BB, std::vector<GvnKey> &Undo) {
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      // Route operands through earlier replacements so duplicate chains
      // collapse in one pass. Phi incomings may be defined in blocks not
      // yet visited (back edges); resolve() is identity for them.
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        Value *R = resolve(I->operand(OpI));
        if (R != I->operand(OpI)) {
          I->setOperand(OpI, R);
          ++UsesRewritten;
        }
      }
      GvnKey Key;
      if (!makeKey(I, Key))
        continue;
      auto [It, Inserted] = Leaders.try_emplace(Key, I);
      if (Inserted)
        Undo.push_back(Key);
      else
        Replacement[I] = It->second;
    }
  }

  Function &F;
  const DominatorTree &DT;
  const MemorySSA &MSSA;
  std::unordered_map<GvnKey, Instruction *, GvnKeyHash> Leaders;
  std::unordered_map<const Value *, Value *> Replacement;
  ValueOrder Order;
  unsigned UsesRewritten = 0;
};

} // namespace

unsigned ir::numberValuesGlobally(Function &F, const DominatorTree &DT) {
  DominanceFrontier DF = DominanceFrontier::compute(F, DT);
  MemorySSA MSSA = MemorySSA::compute(F, DT, DF);
  return numberValuesGlobally(F, DT, MSSA);
}

unsigned ir::numberValuesGlobally(Function &F, const DominatorTree &DT,
                                  const MemorySSA &MSSA) {
  return GvnImpl(F, DT, MSSA).run();
}
