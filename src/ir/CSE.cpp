//===- ir/CSE.cpp -----------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/CSE.h"

#include "ir/InstructionUtils.h"

#include <unordered_map>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Maximum instruction arity participating in keys (clamp/select take 3).
constexpr unsigned MaxKeyOperands = 3;

/// Identity of one pure computation within a block. Loads additionally
/// carry the memory epoch of their root object so that a load is only
/// merged with an earlier one when no intervening write can have changed
/// the value.
struct ExprKey {
  Opcode Op = Opcode::Add;
  Builtin Callee = Builtin::Barrier; // Valid when Op == Call.
  const Value *Operands[MaxKeyOperands] = {nullptr, nullptr, nullptr};
  uint64_t Epoch = 0; // Valid when Op == Load.

  bool operator==(const ExprKey &O) const {
    return Op == O.Op && Callee == O.Callee && Epoch == O.Epoch &&
           Operands[0] == O.Operands[0] && Operands[1] == O.Operands[1] &&
           Operands[2] == O.Operands[2];
  }
};

struct ExprKeyHash {
  size_t operator()(const ExprKey &K) const {
    uint64_t H = static_cast<uint64_t>(K.Op) * 0x9e3779b97f4a7c15ull;
    H ^= static_cast<uint64_t>(K.Callee) + (H << 6) + (H >> 2);
    for (const Value *Op : K.Operands)
      H ^= reinterpret_cast<uintptr_t>(Op) + 0x9e3779b97f4a7c15ull +
           (H << 6) + (H >> 2);
    H ^= K.Epoch + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

/// Tracks which writes have happened so far in the block, so load keys can
/// express "same address, unchanged memory".
class MemoryEpochs {
public:
  uint64_t epochOf(const Value *Root) {
    if (isa<Argument>(Root))
      return ArgEpoch;
    auto It = AllocaEpoch.find(Root);
    return It == AllocaEpoch.end() ? 0 : It->second;
  }

  void noteStore(const Value *Root) {
    // Two argument pointers may be bound to the same host buffer, so a
    // store through any argument invalidates every argument-rooted load.
    // Allocas are distinct objects; only the stored-to one changes.
    if (isa<Argument>(Root)) {
      ++ArgEpoch;
      return;
    }
    ++AllocaEpoch[Root];
  }

  void noteBarrier(const Function &F) {
    // After a barrier other work items' global and local writes become
    // visible; private memory is untouched.
    ++ArgEpoch;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (I->opcode() == Opcode::Alloca &&
            I->allocaSpace() == AddressSpace::Local)
          ++AllocaEpoch[I.get()];
  }

private:
  uint64_t ArgEpoch = 1;
  std::unordered_map<const Value *, uint64_t> AllocaEpoch;
};

} // namespace

unsigned ir::eliminateCommonSubexpressions(Function &F) {
  // Dup -> canonical first occurrence (always an earlier instruction of
  // the same block, so dominance is preserved).
  std::unordered_map<const Value *, Value *> Replacement;
  ValueOrder Order;

  // Pre-rank arguments so canonical commutative order is stable across
  // functions with the same shape.
  for (unsigned I = 0; I < F.numArguments(); ++I)
    Order.rank(F.argument(I));

  for (const auto &BB : F.blocks()) {
    std::unordered_map<ExprKey, Instruction *, ExprKeyHash> Available;
    MemoryEpochs Epochs;

    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      // Route operands through earlier replacements first so duplicate
      // chains collapse in a single pass.
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }

      switch (I->opcode()) {
      case Opcode::Store:
        Epochs.noteStore(rootObject(I->operand(1)));
        continue;
      case Opcode::Call:
        if (I->callee() == Builtin::Barrier) {
          Epochs.noteBarrier(F);
          continue;
        }
        break;
      default:
        break;
      }

      bool Keyable = isAlwaysPureOpcode(I->opcode()) ||
                     I->opcode() == Opcode::Load ||
                     (I->opcode() == Opcode::Call &&
                      isPureBuiltin(I->callee()));
      if (!Keyable || I->numOperands() > MaxKeyOperands)
        continue;

      ExprKey Key;
      Key.Op = I->opcode();
      if (I->opcode() == Opcode::Call)
        Key.Callee = I->callee();
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI)
        Key.Operands[OpI] = I->operand(OpI);
      if (I->opcode() == Opcode::Load)
        Key.Epoch = Epochs.epochOf(rootObject(I->operand(0)));
      bool Canonicalize =
          (isCommutativeOpcode(I->opcode()) && I->numOperands() == 2) ||
          (I->opcode() == Opcode::Call &&
           isCommutativeBuiltin(I->callee()) && I->numOperands() == 2);
      if (Canonicalize &&
          Order.rank(Key.Operands[0]) > Order.rank(Key.Operands[1]))
        std::swap(Key.Operands[0], Key.Operands[1]);

      auto [It, Inserted] = Available.try_emplace(Key, I);
      if (!Inserted)
        Replacement[I] = It->second;
    }
  }

  if (Replacement.empty())
    return 0;

  // Rewrite uses in later blocks (in-block uses were rewritten above).
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }
  return static_cast<unsigned>(Replacement.size());
}
