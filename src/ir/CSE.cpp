//===- ir/CSE.cpp -----------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/CSE.h"

#include <unordered_map>

using namespace kperf;
using namespace kperf::ir;

namespace {

/// Maximum instruction arity participating in keys (clamp/select take 3).
constexpr unsigned MaxKeyOperands = 3;

/// Identity of one pure computation within a block. Loads additionally
/// carry the memory epoch of their root object so that a load is only
/// merged with an earlier one when no intervening write can have changed
/// the value.
struct ExprKey {
  Opcode Op = Opcode::Add;
  Builtin Callee = Builtin::Barrier; // Valid when Op == Call.
  const Value *Operands[MaxKeyOperands] = {nullptr, nullptr, nullptr};
  uint64_t Epoch = 0; // Valid when Op == Load.

  bool operator==(const ExprKey &O) const {
    return Op == O.Op && Callee == O.Callee && Epoch == O.Epoch &&
           Operands[0] == O.Operands[0] && Operands[1] == O.Operands[1] &&
           Operands[2] == O.Operands[2];
  }
};

struct ExprKeyHash {
  size_t operator()(const ExprKey &K) const {
    uint64_t H = static_cast<uint64_t>(K.Op) * 0x9e3779b97f4a7c15ull;
    H ^= static_cast<uint64_t>(K.Callee) + (H << 6) + (H >> 2);
    for (const Value *Op : K.Operands)
      H ^= reinterpret_cast<uintptr_t>(Op) + 0x9e3779b97f4a7c15ull +
           (H << 6) + (H >> 2);
    H ^= K.Epoch + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

/// Returns true if merging two instances of \p B is always valid. Barrier
/// is a synchronization point; everything else has no side effects and
/// returns the same value for the same work item within a launch.
bool isPureBuiltin(Builtin B) { return B != Builtin::Barrier; }

/// Returns true if \p Op combined with identical operands always produces
/// an identical value (loads are handled separately via epochs).
bool isAlwaysPure(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::LogicalAnd:
  case Opcode::LogicalOr:
  case Opcode::LogicalNot:
  case Opcode::Neg:
  case Opcode::IntToFloat:
  case Opcode::FloatToInt:
  case Opcode::Select:
  case Opcode::Gep:
    return true;
  case Opcode::Alloca: // Distinct storage per instruction.
  case Opcode::Phi:    // Identity depends on incoming edges, not operands.
  case Opcode::Load:
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return false;
  }
  return false;
}

bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::LogicalAnd:
  case Opcode::LogicalOr:
    return true;
  default:
    return false;
  }
}

bool isCommutativeCall(Builtin B) {
  return B == Builtin::Min || B == Builtin::Max;
}

/// Walks GEP chains back to the underlying object (argument or alloca).
const Value *rootObject(const Value *Ptr) {
  while (const auto *I = dyn_cast<Instruction>(Ptr)) {
    if (I->opcode() != Opcode::Gep)
      break;
    Ptr = I->operand(0);
  }
  return Ptr;
}

/// Tracks which writes have happened so far in the block, so load keys can
/// express "same address, unchanged memory".
class MemoryEpochs {
public:
  uint64_t epochOf(const Value *Root) {
    if (isa<Argument>(Root))
      return ArgEpoch;
    auto It = AllocaEpoch.find(Root);
    return It == AllocaEpoch.end() ? 0 : It->second;
  }

  void noteStore(const Value *Root) {
    // Two argument pointers may be bound to the same host buffer, so a
    // store through any argument invalidates every argument-rooted load.
    // Allocas are distinct objects; only the stored-to one changes.
    if (isa<Argument>(Root)) {
      ++ArgEpoch;
      return;
    }
    ++AllocaEpoch[Root];
  }

  void noteBarrier(const Function &F) {
    // After a barrier other work items' global and local writes become
    // visible; private memory is untouched.
    ++ArgEpoch;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (I->opcode() == Opcode::Alloca &&
            I->allocaSpace() == AddressSpace::Local)
          ++AllocaEpoch[I.get()];
  }

private:
  uint64_t ArgEpoch = 1;
  std::unordered_map<const Value *, uint64_t> AllocaEpoch;
};

/// Deterministic operand ordering for commutative keys: values are ranked
/// in first-encounter order, never by pointer value (which would make the
/// canonical form run-dependent).
class ValueOrder {
public:
  unsigned rank(const Value *V) {
    auto It = Ranks.find(V);
    if (It != Ranks.end())
      return It->second;
    unsigned R = static_cast<unsigned>(Ranks.size());
    Ranks.emplace(V, R);
    return R;
  }

private:
  std::unordered_map<const Value *, unsigned> Ranks;
};

} // namespace

unsigned ir::eliminateCommonSubexpressions(Function &F) {
  // Dup -> canonical first occurrence (always an earlier instruction of
  // the same block, so dominance is preserved).
  std::unordered_map<const Value *, Value *> Replacement;
  ValueOrder Order;

  // Pre-rank arguments so canonical commutative order is stable across
  // functions with the same shape.
  for (unsigned I = 0; I < F.numArguments(); ++I)
    Order.rank(F.argument(I));

  for (const auto &BB : F.blocks()) {
    std::unordered_map<ExprKey, Instruction *, ExprKeyHash> Available;
    MemoryEpochs Epochs;

    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      // Route operands through earlier replacements first so duplicate
      // chains collapse in a single pass.
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }

      switch (I->opcode()) {
      case Opcode::Store:
        Epochs.noteStore(rootObject(I->operand(1)));
        continue;
      case Opcode::Call:
        if (I->callee() == Builtin::Barrier) {
          Epochs.noteBarrier(F);
          continue;
        }
        break;
      default:
        break;
      }

      bool Keyable = isAlwaysPure(I->opcode()) ||
                     I->opcode() == Opcode::Load ||
                     (I->opcode() == Opcode::Call &&
                      isPureBuiltin(I->callee()));
      if (!Keyable || I->numOperands() > MaxKeyOperands)
        continue;

      ExprKey Key;
      Key.Op = I->opcode();
      if (I->opcode() == Opcode::Call)
        Key.Callee = I->callee();
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI)
        Key.Operands[OpI] = I->operand(OpI);
      if (I->opcode() == Opcode::Load)
        Key.Epoch = Epochs.epochOf(rootObject(I->operand(0)));
      bool Canonicalize =
          (isCommutative(I->opcode()) && I->numOperands() == 2) ||
          (I->opcode() == Opcode::Call && isCommutativeCall(I->callee()) &&
           I->numOperands() == 2);
      if (Canonicalize &&
          Order.rank(Key.Operands[0]) > Order.rank(Key.Operands[1]))
        std::swap(Key.Operands[0], Key.Operands[1]);

      auto [It, Inserted] = Available.try_emplace(Key, I);
      if (!Inserted)
        Replacement[I] = It->second;
    }
  }

  if (Replacement.empty())
    return 0;

  // Rewrite uses in later blocks (in-block uses were rewritten above).
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (unsigned OpI = 0; OpI < I->numOperands(); ++OpI) {
        auto It = Replacement.find(I->operand(OpI));
        if (It != Replacement.end())
          I->setOperand(OpI, It->second);
      }
  return static_cast<unsigned>(Replacement.size());
}
