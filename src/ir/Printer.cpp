//===- ir/Printer.cpp ------------------------------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/StringUtils.h"

#include <unordered_map>

using namespace kperf;
using namespace kperf::ir;

namespace {

class PrinterImpl {
public:
  explicit PrinterImpl(const Function &F) : F(F) {}

  std::string run() {
    nameValues();
    Out += "kernel " + F.name() + "(";
    for (unsigned I = 0; I < F.numArguments(); ++I) {
      if (I)
        Out += ", ";
      const Argument *A = F.argument(I);
      if (A->isConst())
        Out += "const ";
      Out += A->type().str() + " %" + A->name();
    }
    Out += ") {\n";
    for (const auto &BB : F.blocks()) {
      Out += BB->name() + ":\n";
      for (const auto &I : BB->instructions())
        printInstruction(*I);
    }
    Out += "}\n";
    return Out;
  }

private:
  void nameValues() {
    // Passes may hand several instructions the same name (mem2reg names
    // every phi after its alloca); uniquify with a ".N" suffix so the
    // printed IR stays unambiguous.
    unsigned Next = 0;
    std::unordered_map<std::string, unsigned> Taken;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (!I->type().isVoid()) {
          std::string Name = I->name().empty()
                                 ? format("%u", Next++)
                                 : I->name();
          unsigned Dup = Taken[Name]++;
          if (Dup > 0)
            Name += format(".%u", Dup);
          Names[I.get()] = Name;
        }
  }

  std::string ref(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return format("%d", CI->value());
    if (const auto *CF = dyn_cast<ConstantFloat>(V))
      return format("%g", static_cast<double>(CF->value()));
    if (const auto *CB = dyn_cast<ConstantBool>(V))
      return CB->value() ? "true" : "false";
    if (const auto *A = dyn_cast<Argument>(V))
      return "%" + A->name();
    auto It = Names.find(cast<Instruction>(V));
    assert(It != Names.end() && "reference to unnamed instruction");
    return "%" + It->second;
  }

  void printInstruction(const Instruction &I) {
    Out += "  ";
    if (!I.type().isVoid())
      Out += "%" + Names[&I] + " = ";
    switch (I.opcode()) {
    case Opcode::Alloca:
      Out += format("alloca %s x %u", I.type().str().c_str(),
                    I.allocaCount());
      break;
    case Opcode::Br:
      Out += "br " + I.branchTarget(0)->name();
      break;
    case Opcode::CondBr:
      Out += "condbr " + ref(I.operand(0)) + ", " +
             I.branchTarget(0)->name() + ", " + I.branchTarget(1)->name();
      break;
    case Opcode::Call:
      Out += std::string("call ") + builtinName(I.callee()) + "(";
      for (unsigned OI = 0; OI < I.numOperands(); ++OI) {
        if (OI)
          Out += ", ";
        Out += ref(I.operand(OI));
      }
      Out += ")";
      break;
    case Opcode::Phi:
      Out += "phi";
      for (unsigned OI = 0; OI < I.numIncoming(); ++OI) {
        Out += OI ? ", [" : " [";
        Out += ref(I.incomingValue(OI)) + ", " +
               I.incomingBlock(OI)->name() + "]";
      }
      break;
    default:
      Out += opcodeName(I.opcode());
      for (unsigned OI = 0; OI < I.numOperands(); ++OI)
        Out += (OI ? ", " : " ") + ref(I.operand(OI));
      break;
    }
    Out += "\n";
  }

  const Function &F;
  std::string Out;
  std::unordered_map<const Instruction *, std::string> Names;
};

} // namespace

std::string ir::printFunction(const Function &F) {
  return PrinterImpl(F).run();
}

std::string ir::printModule(const Module &M) {
  std::string Out;
  for (size_t I = 0; I < M.numFunctions(); ++I) {
    if (I)
      Out += "\n";
    Out += printFunction(*M.functionAt(I));
  }
  return Out;
}
