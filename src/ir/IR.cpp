//===- ir/IR.cpp - Out-of-line IR methods ---------------------------------==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace kperf;
using namespace kperf::ir;

Value::~Value() = default;

const char *ir::addressSpaceName(AddressSpace Space) {
  switch (Space) {
  case AddressSpace::Private:
    return "private";
  case AddressSpace::Local:
    return "local";
  case AddressSpace::Global:
    return "global";
  }
  return "?";
}

std::string Type::str() const {
  std::string S;
  if (Pointer) {
    S += addressSpaceName(Space);
    S += ' ';
  }
  switch (Kind) {
  case ScalarKind::Void:
    S += "void";
    break;
  case ScalarKind::Bool:
    S += "bool";
    break;
  case ScalarKind::Int:
    S += "int";
    break;
  case ScalarKind::Float:
    S += "float";
    break;
  }
  if (Pointer)
    S += '*';
  return S;
}

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Gep:
    return "gep";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::CmpEq:
    return "cmp.eq";
  case Opcode::CmpNe:
    return "cmp.ne";
  case Opcode::CmpLt:
    return "cmp.lt";
  case Opcode::CmpLe:
    return "cmp.le";
  case Opcode::CmpGt:
    return "cmp.gt";
  case Opcode::CmpGe:
    return "cmp.ge";
  case Opcode::LogicalAnd:
    return "and";
  case Opcode::LogicalOr:
    return "or";
  case Opcode::LogicalNot:
    return "not";
  case Opcode::Neg:
    return "neg";
  case Opcode::IntToFloat:
    return "itof";
  case Opcode::FloatToInt:
    return "ftoi";
  case Opcode::Select:
    return "select";
  case Opcode::Call:
    return "call";
  case Opcode::Phi:
    return "phi";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

const char *ir::builtinName(Builtin B) {
  switch (B) {
  case Builtin::GetGlobalId:
    return "get_global_id";
  case Builtin::GetLocalId:
    return "get_local_id";
  case Builtin::GetGroupId:
    return "get_group_id";
  case Builtin::GetLocalSize:
    return "get_local_size";
  case Builtin::GetGlobalSize:
    return "get_global_size";
  case Builtin::GetNumGroups:
    return "get_num_groups";
  case Builtin::Barrier:
    return "barrier";
  case Builtin::Min:
    return "min";
  case Builtin::Max:
    return "max";
  case Builtin::Clamp:
    return "clamp";
  case Builtin::Abs:
    return "abs";
  case Builtin::Sqrt:
    return "sqrt";
  case Builtin::Exp:
    return "exp";
  case Builtin::Log:
    return "log";
  case Builtin::Pow:
    return "pow";
  case Builtin::Floor:
    return "floor";
  }
  return "?";
}

bool ir::isConstant(const Value *V) {
  switch (V->kind()) {
  case Value::ValueKind::ConstantInt:
  case Value::ValueKind::ConstantFloat:
  case Value::ValueKind::ConstantBool:
    return true;
  default:
    return false;
  }
}

ConstantInt *Module::getInt(int32_t V) {
  auto &Slot = IntConstants[V];
  if (!Slot)
    Slot = std::make_unique<ConstantInt>(V);
  return Slot.get();
}

ConstantFloat *Module::getFloat(float V) {
  auto &Slot = FloatConstants[V];
  if (!Slot)
    Slot = std::make_unique<ConstantFloat>(V);
  return Slot.get();
}

ConstantBool *Module::getBool(bool V) {
  auto &Slot = V ? TrueConstant : FalseConstant;
  if (!Slot)
    Slot = std::make_unique<ConstantBool>(V);
  return Slot.get();
}

//===----------------------------------------------------------------------===//
// IRBuilder
//===----------------------------------------------------------------------===//

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> I) {
  assert(Block && "no insertion point set");
  if (!InsertAtIndex)
    return Block->append(std::move(I));
  Instruction *Res = Block->insert(Index_, std::move(I));
  ++Index_;
  return Res;
}

Instruction *IRBuilder::createAlloca(ScalarKind Elem, unsigned Count,
                                     AddressSpace Space, std::string Name) {
  assert(Space != AddressSpace::Global && "cannot alloca global memory");
  assert(Count >= 1 && "alloca of zero elements");
  auto I = std::make_unique<Instruction>(
      Opcode::Alloca, Type::pointerTo(Elem, Space), std::vector<Value *>{},
      std::move(Name));
  I->setAllocaCount(Count);
  return insert(std::move(I));
}

Instruction *IRBuilder::createLoad(Value *Ptr, std::string Name) {
  assert(Ptr->type().isPointer() && "load from non-pointer");
  return insert(std::make_unique<Instruction>(
      Opcode::Load, Ptr->type().pointeeType(), std::vector<Value *>{Ptr},
      std::move(Name)));
}

Instruction *IRBuilder::createStore(Value *Val, Value *Ptr) {
  assert(Ptr->type().isPointer() && "store to non-pointer");
  assert(Val->type() == Ptr->type().pointeeType() &&
         "store value/pointee type mismatch");
  return insert(std::make_unique<Instruction>(
      Opcode::Store, Type::voidTy(), std::vector<Value *>{Val, Ptr}, ""));
}

Instruction *IRBuilder::createGep(Value *Ptr, Value *Index,
                                  std::string Name) {
  assert(Ptr->type().isPointer() && "gep base must be a pointer");
  assert(Index->type().isInt() && "gep index must be int");
  return insert(std::make_unique<Instruction>(
      Opcode::Gep, Ptr->type(), std::vector<Value *>{Ptr, Index},
      std::move(Name)));
}

Instruction *IRBuilder::createBinary(Opcode Op, Value *LHS, Value *RHS,
                                     std::string Name) {
  assert(LHS->type() == RHS->type() && "binary operand type mismatch");
  assert(LHS->type().isNumeric() && "binary operands must be numeric");
  return insert(std::make_unique<Instruction>(
      Op, LHS->type(), std::vector<Value *>{LHS, RHS}, std::move(Name)));
}

Instruction *IRBuilder::createCmp(Opcode Op, Value *LHS, Value *RHS,
                                  std::string Name) {
  assert(LHS->type() == RHS->type() && "cmp operand type mismatch");
  assert(LHS->type().isNumeric() && "cmp operands must be numeric");
  return insert(std::make_unique<Instruction>(
      Op, Type::boolTy(), std::vector<Value *>{LHS, RHS}, std::move(Name)));
}

Instruction *IRBuilder::createLogical(Opcode Op, Value *LHS, Value *RHS,
                                      std::string Name) {
  assert(LHS->type().isBool() && RHS->type().isBool() &&
         "logical operands must be bool");
  return insert(std::make_unique<Instruction>(
      Op, Type::boolTy(), std::vector<Value *>{LHS, RHS}, std::move(Name)));
}

Instruction *IRBuilder::createNot(Value *V, std::string Name) {
  assert(V->type().isBool() && "not operand must be bool");
  return insert(std::make_unique<Instruction>(
      Opcode::LogicalNot, Type::boolTy(), std::vector<Value *>{V},
      std::move(Name)));
}

Instruction *IRBuilder::createNeg(Value *V, std::string Name) {
  assert(V->type().isNumeric() && "neg operand must be numeric");
  return insert(std::make_unique<Instruction>(
      Opcode::Neg, V->type(), std::vector<Value *>{V}, std::move(Name)));
}

Instruction *IRBuilder::createIntToFloat(Value *V, std::string Name) {
  assert(V->type().isInt() && "itof operand must be int");
  return insert(std::make_unique<Instruction>(
      Opcode::IntToFloat, Type::floatTy(), std::vector<Value *>{V},
      std::move(Name)));
}

Instruction *IRBuilder::createFloatToInt(Value *V, std::string Name) {
  assert(V->type().isFloat() && "ftoi operand must be float");
  return insert(std::make_unique<Instruction>(
      Opcode::FloatToInt, Type::intTy(), std::vector<Value *>{V},
      std::move(Name)));
}

Instruction *IRBuilder::createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                                     std::string Name) {
  assert(Cond->type().isBool() && "select condition must be bool");
  assert(TrueV->type() == FalseV->type() && "select arm type mismatch");
  return insert(std::make_unique<Instruction>(
      Opcode::Select, TrueV->type(),
      std::vector<Value *>{Cond, TrueV, FalseV}, std::move(Name)));
}

Instruction *IRBuilder::createCall(Builtin B, std::vector<Value *> Args,
                                   std::string Name) {
  Type ResultTy = Type::voidTy();
  switch (B) {
  case Builtin::GetGlobalId:
  case Builtin::GetLocalId:
  case Builtin::GetGroupId:
  case Builtin::GetLocalSize:
  case Builtin::GetGlobalSize:
  case Builtin::GetNumGroups:
    assert(Args.size() == 1 && Args[0]->type().isInt() &&
           "work-item query takes one int dimension");
    ResultTy = Type::intTy();
    break;
  case Builtin::Barrier:
    assert(Args.empty() && "barrier takes no arguments");
    break;
  case Builtin::Min:
  case Builtin::Max:
  case Builtin::Pow:
    assert(Args.size() == 2 && Args[0]->type() == Args[1]->type() &&
           Args[0]->type().isNumeric() && "bad binary math builtin args");
    ResultTy = Args[0]->type();
    break;
  case Builtin::Clamp:
    assert(Args.size() == 3 && Args[0]->type() == Args[1]->type() &&
           Args[0]->type() == Args[2]->type() &&
           Args[0]->type().isNumeric() && "bad clamp args");
    ResultTy = Args[0]->type();
    break;
  case Builtin::Abs:
    assert(Args.size() == 1 && Args[0]->type().isNumeric() &&
           "bad abs args");
    ResultTy = Args[0]->type();
    break;
  case Builtin::Sqrt:
  case Builtin::Exp:
  case Builtin::Log:
  case Builtin::Floor:
    assert(Args.size() == 1 && Args[0]->type().isFloat() &&
           "unary float builtin takes one float");
    ResultTy = Type::floatTy();
    break;
  }
  auto I = std::make_unique<Instruction>(Opcode::Call, ResultTy,
                                         std::move(Args), std::move(Name));
  I->setCallee(B);
  return insert(std::move(I));
}

Instruction *IRBuilder::createPhi(Type Ty, std::string Name) {
  assert(!Ty.isVoid() && "phi must produce a value");
  assert(Block && "no insertion point set");
  auto I = std::make_unique<Instruction>(Opcode::Phi, Ty,
                                         std::vector<Value *>{},
                                         std::move(Name));
  size_t At = Block->firstNonPhiIndex();
  if (InsertAtIndex && At <= Index_)
    ++Index_; // Keep an index-mode insertion point stable.
  return Block->insert(At, std::move(I));
}

Instruction *IRBuilder::createBr(BasicBlock *Target) {
  auto I = std::make_unique<Instruction>(Opcode::Br, Type::voidTy(),
                                         std::vector<Value *>{}, "");
  I->setBranchTarget(0, Target);
  return insert(std::move(I));
}

Instruction *IRBuilder::createCondBr(Value *Cond, BasicBlock *TrueBB,
                                     BasicBlock *FalseBB) {
  assert(Cond->type().isBool() && "condbr condition must be bool");
  auto I = std::make_unique<Instruction>(Opcode::CondBr, Type::voidTy(),
                                         std::vector<Value *>{Cond}, "");
  I->setBranchTarget(0, TrueBB);
  I->setBranchTarget(1, FalseBB);
  return insert(std::move(I));
}

Instruction *IRBuilder::createRet() {
  return insert(std::make_unique<Instruction>(
      Opcode::Ret, Type::voidTy(), std::vector<Value *>{}, ""));
}

Value *IRBuilder::foldAdd(Value *L, Value *R) {
  auto *CL = dyn_cast<ConstantInt>(L);
  auto *CR = dyn_cast<ConstantInt>(R);
  if (CL && CR)
    return getInt(CL->value() + CR->value());
  if (CL && CL->value() == 0)
    return R;
  if (CR && CR->value() == 0)
    return L;
  return createAdd(L, R);
}

Instruction *IRBuilder::createClampInt(Value *V, Value *Lo, Value *Hi,
                                       std::string Name) {
  return createCall(Builtin::Clamp, {V, Lo, Hi}, std::move(Name));
}
