//===- ir/Clone.h - Function cloning -----------------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies a function into the same module under a new name, returning
/// the value map so transforms can keep talking about "the load of input X"
/// across the copy. Used by the perforation transforms, which never mutate
/// the original (accurate) kernel.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_CLONE_H
#define KPERF_IR_CLONE_H

#include "ir/Function.h"

#include <unordered_map>

namespace kperf {
namespace ir {

/// Maps original values/blocks to their clones.
struct CloneMap {
  std::unordered_map<const Value *, Value *> Values;
  std::unordered_map<const BasicBlock *, BasicBlock *> Blocks;

  Value *lookup(const Value *V) const {
    if (isConstant(V))
      return const_cast<Value *>(V); // Constants are module-interned.
    auto It = Values.find(V);
    assert(It != Values.end() && "value not cloned");
    return It->second;
  }

  BasicBlock *lookup(const BasicBlock *BB) const {
    auto It = Blocks.find(BB);
    assert(It != Blocks.end() && "block not cloned");
    return It->second;
  }
};

/// Clones \p F into \p M as a new function named \p NewName.
/// \returns the new function; \p Map receives the old->new mapping.
Function *cloneFunction(Module &M, const Function &F,
                        const std::string &NewName, CloneMap &Map);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_CLONE_H
