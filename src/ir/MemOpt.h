//===- ir/MemOpt.h - Private-memory traffic optimizations ---------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local memory traffic cleanups over alloca-based variables. In
/// the default pipeline mem2reg first promotes private scalars to SSA
/// outright; these passes then cover what promotion must skip -- arrays
/// indexed through GEPs, local-memory tiles, and scalars whose live
/// range crosses a barrier -- and any pipeline that runs without
/// mem2reg:
///
///  * **store-to-load forwarding** -- a load that follows a store to the
///    same address in the same block, with no intervening write that
///    could alias, yields the stored value directly;
///  * **dead-store elimination** -- a store to a private alloca that is
///    overwritten by a later store to the same address in the same block,
///    with no intervening read that could observe it, is removed.
///
/// Aliasing is resolved with the same conservative rules as CSE: allocas
/// are distinct objects (and never alias arguments); any store through an
/// argument pointer may alias every other argument; barriers publish
/// local and global memory but leave private memory alone. Forwarding is
/// additionally restricted to private and local allocas -- forwarding
/// through an argument pointer could hide host-visible buffer aliasing.
///
/// Forwarded loads become dead; run eliminateDeadCode() afterwards (the
/// pipeline does).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_MEMOPT_H
#define KPERF_IR_MEMOPT_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// Forwards stored values to subsequent same-address loads in \p F.
/// \returns the number of loads replaced.
unsigned forwardStores(Function &F);

/// Deletes private-alloca stores that are overwritten before any read.
/// \returns the number of stores removed.
unsigned eliminateDeadStores(Function &F);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_MEMOPT_H
