//===- ir/MemOpt.h - Private-memory traffic optimizations ---------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory traffic cleanups over alloca-based variables. In the default
/// pipeline mem2reg and sroa promote private scalars and
/// constant-indexed arrays to SSA outright; these passes then cover what
/// promotion must skip -- runtime-indexed arrays, local-memory tiles --
/// and any pipeline that runs without promotion:
///
///  * **store-to-load forwarding** (block-local) -- a load that follows a
///    store to the same address in the same block, with no intervening
///    write that could alias, yields the stored value directly;
///  * **dead-store elimination** (region-local, over memory SSA) -- a
///    store to a provably in-bounds constant-indexed private location
///    whose value no later load can observe is removed. Observability is
///    decided by flooding the memory-SSA def/phi graph downward from the
///    store: a path that overwrites the location before any may-aliasing
///    load kills it there, and a path that reaches kernel exit kills it
///    too (private memory is per-item and dies with the item), so stores
///    overwritten *across block boundaries* and stores that are simply
///    never read both go away.
///
/// Aliasing comes from the shared MemoryLoc rules (ir/MemorySSA.h):
/// allocas are distinct objects (and never alias arguments); any store
/// through an argument pointer may alias every other argument;
/// same-root accesses disambiguate by constant GEP index; barriers
/// publish local and global memory but leave private memory alone.
/// Forwarding is additionally restricted to private and local allocas --
/// forwarding through an argument pointer could hide host-visible buffer
/// aliasing.
///
/// Forwarded loads become dead; run eliminateDeadCode() afterwards (the
/// pipeline does).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_MEMOPT_H
#define KPERF_IR_MEMOPT_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

class MemorySSA;

/// Forwards stored values to subsequent same-address loads in \p F.
/// \returns the number of loads replaced.
unsigned forwardStores(Function &F);

/// Deletes private-alloca stores no later load can observe, deriving a
/// local memory SSA. \returns the number of stores removed.
unsigned eliminateDeadStores(Function &F);

/// Variant reusing a precomputed memory SSA for \p F (the pass pipeline
/// hands in the AnalysisManager-cached one).
unsigned eliminateDeadStores(Function &F, const MemorySSA &MSSA);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_MEMOPT_H
