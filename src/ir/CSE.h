//===- ir/CSE.h - Common subexpression elimination ----------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local common subexpression elimination (local value numbering).
/// The perforation transforms clone the original address arithmetic into
/// the tile-loading, reconstruction, and body phases, so generated kernels
/// are full of repeated `y * w + x` chains and repeated `get_global_id`
/// queries; merging them shrinks the simulated ALU counts the same way a
/// real kernel compiler would.
///
/// What is merged:
///  * pure arithmetic, comparisons, logicals, casts, selects, and GEPs
///    with identical (commutativity-canonicalized) operands;
///  * calls of pure builtins (work-item queries and math functions);
///  * loads from the same address while no intervening store or barrier
///    can change the loaded value (per-root memory epochs: a store through
///    an argument pointer invalidates all argument-rooted loads because
///    host buffers may alias; a store to an alloca invalidates only that
///    alloca; a barrier invalidates everything except private allocas).
///
/// Duplicates are left in place with their uses redirected; run
/// eliminateDeadCode() afterwards to delete them.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_CSE_H
#define KPERF_IR_CSE_H

#include "ir/Function.h"

namespace kperf {
namespace ir {

/// Merges block-local common subexpressions in \p F.
/// \returns the number of instructions whose uses were redirected.
unsigned eliminateCommonSubexpressions(Function &F);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_CSE_H
