//===- ir/Lint.h - Static kernel diagnostics ----------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A GPUVerify-flavoured static checker over the kernel SSA: every safety
/// property the simulator enforces dynamically (gpusim/Interpreter.cpp
/// faults) gets a compile-time image here, built on RangeAnalysis,
/// DivergenceAnalysis, and MemorySSA. Checks and their severities:
///
///  * **oob** -- the pointer of each load/store is resolved to its root
///    object and the GEP-chain index range is intersected with the
///    object's extent. Range fully outside an alloca: *error* ("definite
///    out of bounds"); range partly outside: *warning*. Global argument
///    buffers have host-side extents the kernel cannot see, so only
///    provably-negative indices are reported (definitely negative:
///    error; possibly negative with an informative bound: warning) --
///    an unknown `i*w+x` stays quiet rather than flagging every kernel.
///  * **divergent-barrier** -- a barrier in a divergently executed block
///    is the static image of the simulator's "barrier not reached by all
///    items" fault: *error*.
///  * **local-race** -- two local-memory accesses, at least one a store,
///    that may alias and share a barrier phase (their memory-SSA
///    upward walks meet the same phase anchor: a barrier def or
///    LiveOnEntry). Reported as *warnings*: the check leans on one
///    usability heuristic -- a divergent address reused by both
///    accesses (the `tile[lid]` idiom) is assumed per-item-distinct --
///    so its positives are "likely", not proven. A store to a uniform
///    local address of a divergent value outside divergent control is
///    reported too (every item writes the same element, each a
///    different value); the same store under a divergent guard is the
///    single-writer idiom and stays quiet.
///  * **uninit-private** -- a load whose clobber walk reaches
///    LiveOnEntry through private memory reads the arena's zero-fill,
///    which is almost always a missing initialization: *warning*.
///  * **div-by-zero** -- an integer divisor whose range is exactly
///    [0,0]: *error*; a range that merely contains 0 but is otherwise
///    informative: *warning* (a fully-unknown divisor stays quiet).
///
/// The severity contract the tests pin: *error* means the analysis
/// proved the fault (no false positives on kernels that run fault-free),
/// *warning* means it could not prove safety. `kperfc lint` maps errors
/// to a nonzero exit (warnings too under --Werror), and rt::Session can
/// run the same checks as an opt-in gate after perforation.
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_LINT_H
#define KPERF_IR_LINT_H

#include "ir/AnalysisManager.h"
#include "ir/RangeAnalysis.h"

#include <string>
#include <vector>

namespace kperf {
namespace ir {
namespace lint {

enum class Severity : uint8_t { Warning, Error };

struct Diagnostic {
  Severity Sev = Severity::Warning;
  /// Stable check id: "oob", "divergent-barrier", "local-race",
  /// "uninit-private", "div-by-zero".
  std::string Check;
  /// Full human-readable text including the instruction location.
  std::string Message;
  const Instruction *Inst = nullptr;
};

struct LintOptions {
  /// Launch-shape seeds for RangeAnalysis (zero sizes = unknown).
  NDRangeBounds Bounds;
};

struct LintResult {
  std::vector<Diagnostic> Diags;

  unsigned numErrors() const {
    unsigned N = 0;
    for (const Diagnostic &D : Diags)
      N += D.Sev == Severity::Error;
    return N;
  }
  unsigned numWarnings() const {
    return static_cast<unsigned>(Diags.size()) - numErrors();
  }
  bool hasErrors() const { return numErrors() != 0; }

  /// All diagnostics, one "severity: check: message" line each.
  std::string str() const;
};

/// Runs every check over \p F, pulling (and caching) the analyses
/// through \p AM.
LintResult run(const Function &F, AnalysisManager &AM,
               const LintOptions &Opts = LintOptions());

} // namespace lint
} // namespace ir
} // namespace kperf

#endif // KPERF_IR_LINT_H
