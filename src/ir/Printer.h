//===- ir/Printer.h - Textual IR dump ----------------------------*- C++ -*-==//
//
// Part of the kernel-perforation project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders functions as readable text for debugging, golden tests, and the
/// example binaries. The format is write-only (there is no IR parser; the
/// PCL frontend is the only producer of IR from text).
///
//===----------------------------------------------------------------------===//

#ifndef KPERF_IR_PRINTER_H
#define KPERF_IR_PRINTER_H

#include "ir/Function.h"

#include <string>

namespace kperf {
namespace ir {

/// Renders \p F as text. Unnamed values get sequential %N names.
std::string printFunction(const Function &F);

/// Renders every function in \p M.
std::string printModule(const Module &M);

} // namespace ir
} // namespace kperf

#endif // KPERF_IR_PRINTER_H
